"""Quickstart: the unified analysis API on a small ODE model.

Walks the core loop of the paper (Fig. 2) end to end on logistic
growth -- build a model, calibrate it against data bands, reject an
inconsistent hypothesis, check a reachability-style property -- all
through one surface: a declarative :class:`TaskSpec` per question, one
:class:`Engine`, one :class:`AnalysisReport` shape back.

Run:  python examples/quickstart.py
"""

from repro.api import Engine, Model, TaskSpec
from repro.models import logistic
from repro.odes import rk45


def main() -> None:
    engine = Engine(seed=0)

    # ------------------------------------------------------------------
    # 1. A model hypothesis: logistic growth with unknown rate r
    # ------------------------------------------------------------------
    model = Model.builtin("logistic")
    print(f"model: {model}")

    # ------------------------------------------------------------------
    # 2. "Experimental" data: bands around samples of a ground truth run
    # ------------------------------------------------------------------
    truth = {"r": 0.65, "K": 10.0}
    traj = rk45(logistic(), {"x": 0.5}, (0.0, 8.0), params=truth)
    samples = [[t, {"x": traj.value("x", t)}] for t in (2.0, 4.0, 8.0)]
    print(f"data samples: {[(t, round(v['x'], 3)) for t, v in samples]}")

    # ------------------------------------------------------------------
    # 3. Calibration: delta-decision parameter synthesis (Sec. IV-A)
    # ------------------------------------------------------------------
    calibration = engine.run(TaskSpec(
        task="calibrate",
        model=model,
        query={
            "data": {"samples": samples, "tolerance": 0.15},
            "param_ranges": {"r": [0.1, 2.0]},
            "x0": {"x": 0.5},
        },
    ))
    print(f"calibration: {calibration.status.value}, "
          f"r = {calibration.witness['r']:.4f} (true {truth['r']})")

    # ------------------------------------------------------------------
    # 4. Falsification: an impossible hypothesis gets rejected (unsat)
    # ------------------------------------------------------------------
    falsification = engine.run(TaskSpec(
        task="falsify",
        model=model,
        query={
            "method": "data",
            # up then down: not logistic
            "data": {"samples": [[1.0, {"x": 5.0}], [2.0, {"x": 0.2}]],
                     "tolerance": 0.1},
            "param_ranges": {"r": [0.1, 2.0]},
            "x0": {"x": 0.5},
        },
    ))
    print(f"falsification of inconsistent data: "
          f"{falsification.status.value} ({falsification.detail})")

    # ------------------------------------------------------------------
    # 5. The same questions as a declarative batch (JSON-able specs)
    # ------------------------------------------------------------------
    probability = engine.run({
        "task": "smc",
        "model": {"builtin": "logistic", "args": {"r": 0.65}},
        "query": {
            "phi": {"op": "F", "bound": 8.0, "arg": "x >= 5.0"},
            "init": {"x": [0.3, 0.7]},
            "horizon": 8.0,
            "epsilon": 0.2,
            "alpha": 0.1,
        },
    })
    print(f"smc: P(x reaches 5 within 8) ~ "
          f"{probability.metrics['probability']:.2f} "
          f"({int(probability.metrics['samples'])} samples)")

    # sanity for CI-style usage
    assert calibration.status.value == "delta-sat"
    assert abs(calibration.witness["r"] - truth["r"]) < 0.1
    assert falsification.status.value == "falsified"
    assert probability.metrics["probability"] > 0.9
    print("quickstart OK")


if __name__ == "__main__":
    main()
