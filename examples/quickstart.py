"""Quickstart: the scenario catalog on a small ODE model.

The core loop of the paper (Fig. 2) on logistic growth -- calibrate
against data bands, reject an inconsistent hypothesis, estimate a
reachability probability -- where every analysis is a *named catalog
entry* (see ``repro scenarios list``) instead of hand-written specs:
one :func:`get_scenario` call binds parameters into a TaskSpec, one
:class:`Engine` runs it, one :class:`AnalysisReport` shape comes back.

Run:  python examples/quickstart.py
"""

from repro.api import Engine
from repro.scenarios import get_scenario


def run_entry(engine, name, **overrides):
    """Run one catalog entry and assert its recorded expected verdict."""
    scenario = get_scenario(name)
    report = engine.run(scenario.spec(**overrides))
    if not overrides:
        assert report.status.value == scenario.expected, (
            f"{name}: got {report.status.value!r}, expected {scenario.expected!r}"
        )
    return scenario, report


def main() -> None:
    engine = Engine(seed=0)

    # ------------------------------------------------------------------
    # 1. Calibration: delta-decision parameter synthesis (Sec. IV-A)
    # ------------------------------------------------------------------
    scenario, calibration = run_entry(engine, "logistic-calibrate")
    print(f"[{scenario.name}] {scenario.summary}")
    print(f"  {calibration.status.value}: r = {calibration.witness['r']:.4f} "
          "(ground truth 0.65)")

    # ------------------------------------------------------------------
    # 2. Falsification: an impossible hypothesis gets rejected (unsat)
    # ------------------------------------------------------------------
    scenario, falsification = run_entry(engine, "logistic-falsify")
    print(f"[{scenario.name}] {scenario.summary}")
    print(f"  {falsification.status.value}: {falsification.detail}")

    # ------------------------------------------------------------------
    # 3. SMC: probability estimation under initial-state uncertainty
    # ------------------------------------------------------------------
    scenario, probability = run_entry(engine, "logistic-growth-smc")
    print(f"[{scenario.name}] {scenario.summary}")
    print(f"  P ~ {probability.metrics['probability']:.2f} "
          f"({int(probability.metrics['samples'])} samples)")
    assert probability.metrics["probability"] > 0.9

    # ------------------------------------------------------------------
    # 4. Parameterized re-runs: the same entry at another precision
    # ------------------------------------------------------------------
    _, precise = run_entry(engine, "logistic-growth-smc", epsilon=0.1)
    print(f"[logistic-growth-smc[epsilon=0.1]] "
          f"{int(precise.metrics['samples'])} samples at the tighter bound")
    assert precise.metrics["samples"] > probability.metrics["samples"]

    print("quickstart OK")


if __name__ == "__main__":
    main()
