"""Quickstart: the delta-decision workflow on a small ODE model.

Walks the core loop of the paper (Fig. 2) end to end on logistic
growth: build a model, calibrate it against data bands with the
delta-decision procedure, reject an inconsistent hypothesis, and verify
a reachability property of the calibrated model.

Run:  python examples/quickstart.py
"""

import math

from repro.apps import SMTCalibrator, TimeSeriesData, falsify_with_data
from repro.expr import var
from repro.logic import in_range
from repro.odes import ODESystem, rk45
from repro.solver import DeltaSolver


def main() -> None:
    # ------------------------------------------------------------------
    # 1. A model hypothesis: logistic growth with unknown rate r
    # ------------------------------------------------------------------
    x = var("x")
    model = ODESystem(
        {"x": var("r") * x * (1.0 - x / var("K"))},
        {"r": 1.0, "K": 10.0},
        name="logistic",
    )
    print(f"model: {model}")

    # ------------------------------------------------------------------
    # 2. "Experimental" data: bands around samples of a ground truth run
    # ------------------------------------------------------------------
    truth = {"r": 0.65, "K": 10.0}
    traj = rk45(model, {"x": 0.5}, (0.0, 8.0), params=truth)
    data = TimeSeriesData.from_samples(
        [(t, {"x": traj.value("x", t)}) for t in (2.0, 4.0, 8.0)],
        tolerance=0.15,
    )
    print(f"data bands: {[(c.t, c.bands['x']) for c in data.checkpoints]}")

    # ------------------------------------------------------------------
    # 3. Calibration: delta-decision parameter synthesis (Sec. IV-A)
    # ------------------------------------------------------------------
    calib = SMTCalibrator(model, data, {"r": (0.1, 2.0)}, {"x": 0.5}, delta=0.05)
    result = calib.calibrate()
    print(f"calibration: {result.status.value}, r = {result.params['r']:.4f} "
          f"(true {truth['r']})")

    # ------------------------------------------------------------------
    # 4. Falsification: an impossible hypothesis gets rejected (unsat)
    # ------------------------------------------------------------------
    impossible = TimeSeriesData.from_samples(
        [(1.0, {"x": 5.0}), (2.0, {"x": 0.2})],  # up then down: not logistic
        tolerance=0.1,
    )
    verdict = falsify_with_data(model, impossible, {"r": (0.1, 2.0)}, {"x": 0.5})
    print(f"falsification of inconsistent data: rejected={verdict.rejected} "
          f"({verdict.detail})")

    # ------------------------------------------------------------------
    # 5. A pure L_RF query answered by the delta-complete solver (Sec. III)
    # ------------------------------------------------------------------
    from repro.intervals import Box

    y = var("y")
    phi = in_range(y * y + var("b") * y + 1.0, -0.001, 0.001)  # root of y^2+by+1
    res = DeltaSolver(delta=1e-3).solve(
        phi, Box.from_bounds({"y": (-3.0, 3.0), "b": (2.0, 3.0)})
    )
    w = res.witness
    print(f"solver: {res.status.value}, witness y={w['y']:.4f} b={w['b']:.4f} "
          f"(residual {w['y']**2 + w['b']*w['y'] + 1:.2e})")

    # sanity for CI-style usage
    assert result.status.value == "delta-sat"
    assert abs(result.params["r"] - truth["r"]) < 0.1
    assert verdict.rejected
    assert res.status.value == "delta-sat"
    print("quickstart OK")


if __name__ == "__main__":
    main()
