"""Statistical model checking workflow (paper Fig. 2 left loop).

When a model has probabilistic initial states (cell-to-cell
variability), BLTL properties are checked statistically:

1. estimate the probability that an SIR outbreak exceeds 30% prevalence
   (Chernoff-bounded estimation and Bayesian posterior),
2. hypothesis-test a requirement with Wald's SPRT, and
3. recover an unknown infection rate by SMC-driven parameter search
   (cross-entropy over BLTL robustness).

Run:  python examples/smc_analysis.py
"""

from repro.expr import var
from repro.models import sir
from repro.odes import rk45
from repro.smc import (
    F,
    G,
    InitialDistribution,
    StatisticalModelChecker,
    cross_entropy_search,
    robustness,
)


def probabilistic_outbreak() -> None:
    print("=" * 66)
    print("1. P(outbreak > 30%) with i(0) ~ U(0.005, 0.03), beta ~ U(0.25, 0.5)")
    print("=" * 66)
    model = sir()
    init = InitialDistribution(
        {"s": 0.99, "i": (0.005, 0.03), "r": 0.0, "beta": (0.25, 0.5)}
    )
    checker = StatisticalModelChecker(model, init, horizon=120.0, seed=4)
    phi = F(120.0, var("i") >= 0.3)

    p_hat, n = checker.probability(phi, epsilon=0.1, alpha=0.05)
    print(f"  Chernoff estimate: P = {p_hat:.3f}  ({n} simulations, +/-0.1 @95%)")

    bayes = checker.bayesian(phi, n=150)
    print(f"  Bayesian posterior: mean {bayes.mean:.3f}, "
          f"95% CI [{bayes.ci_low:.3f}, {bayes.ci_high:.3f}]")

    res = checker.hypothesis_test(phi, theta=0.2, alpha=0.01, beta=0.01)
    print(f"  SPRT 'P >= 0.2': {res.decision} accepted "
          f"after {res.samples_used} samples")
    print()


def herd_safety() -> None:
    print("=" * 66)
    print("2. Safety: with gamma = 0.4 (fast recovery), outbreaks stay small")
    print("=" * 66)
    model = sir(beta=0.3, gamma=0.4)  # R0 < 1
    init = InitialDistribution({"s": 0.99, "i": (0.005, 0.03), "r": 0.0})
    checker = StatisticalModelChecker(model, init, horizon=120.0, seed=5)
    phi = G(120.0, var("i") <= 0.05)
    p_hat, n = checker.probability(phi, epsilon=0.1, alpha=0.05)
    print(f"  P(i stays <= 5%) = {p_hat:.3f}  ({n} simulations)")
    print()


def recover_beta() -> None:
    print("=" * 66)
    print("3. SMC-based estimation of beta from an epidemic-peak constraint")
    print("=" * 66)
    truth = 0.42
    model = sir()
    ref = rk45(model, {"s": 0.99, "i": 0.01, "r": 0.0}, (0.0, 120.0),
               params={"beta": truth, "gamma": 0.1})
    peak = ref.column("i").max()
    print(f"  true beta = {truth}, observed peak prevalence = {peak:.3f}")

    band = (var("i") >= peak - 0.02) & (var("i") <= peak + 0.02)
    phi = F(120.0, band) & G(120.0, var("i") <= peak + 0.02)

    def objective(params):
        traj = rk45(model, {"s": 0.99, "i": 0.01, "r": 0.0}, (0.0, 120.0),
                    params={"beta": params["beta"], "gamma": 0.1})
        return robustness(phi, traj)

    res = cross_entropy_search(objective, {"beta": (0.2, 0.8)},
                               population=24, iterations=10, seed=0)
    print(f"  recovered beta = {res.best_params['beta']:.4f} "
          f"(fitness {res.best_fitness:.4f}, {res.evaluations} evaluations)")
    print()


def main() -> None:
    probabilistic_outbreak()
    herd_safety()
    recover_beta()


if __name__ == "__main__":
    main()
