"""Statistical model checking workflow (paper Fig. 2 left loop).

The SIR outbreak study, driven entirely from the scenario catalog:

1. the three statistical methods (Chernoff estimation, Bayesian
   posterior, Wald's SPRT) are the catalog entries ``sir-outbreak``,
   ``sir-outbreak-bayes`` and ``sir-outbreak-sprt``, submitted as
   concurrent *jobs* with live progress events;
2. the herd-safety property is ``sir-herd-safety``; and
3. one lower-level SMC-driven parameter search (cross-entropy over
   BLTL robustness) shows what the catalog entries wrap.

Run:  python examples/smc_analysis.py
"""

import sys

from repro.api import Engine
from repro.expr import var
from repro.models import sir
from repro.odes import rk45
from repro.scenarios import get_scenario
from repro.smc import F, G, cross_entropy_search, robustness


def show_progress(job, event) -> None:
    """Engine-level progress sink: one line per (rate-limited) event."""
    print(f"  .. [{job.spec.name}] {event.describe()}", file=sys.stderr)


def probabilistic_outbreak(engine: Engine) -> None:
    print("=" * 66)
    print("1. P(outbreak > 30%) with i(0) ~ U(0.005, 0.03), beta ~ U(0.25, 0.5)")
    print("   (three catalog entries, submitted as concurrent jobs)")
    print("=" * 66)
    entries = [
        get_scenario("sir-outbreak"),
        get_scenario("sir-outbreak-bayes"),
        get_scenario("sir-outbreak-sprt"),
    ]
    jobs = engine.submit_batch(
        [s.spec() for s in entries], workers=3, backend="thread"
    )
    chernoff, bayes, sprt = (job.result(timeout=300.0) for job in jobs)
    for scenario, report in zip(entries, (chernoff, bayes, sprt)):
        assert report.status.value == scenario.expected, (
            f"{scenario.name}: got {report.status.value!r}, "
            f"expected {scenario.expected!r}"
        )
    total_events = sum(job.event_count for job in jobs)
    print(f"  ({total_events} progress events across {len(jobs)} jobs)")
    m = chernoff.metrics
    print(f"  Chernoff estimate: P = {m['probability']:.3f}  "
          f"({int(m['samples'])} simulations, +/-0.1 @95%)")
    m = bayes.metrics
    print(f"  Bayesian posterior: mean {m['probability']:.3f}, "
          f"95% CI [{m['ci_low']:.3f}, {m['ci_high']:.3f}]")
    print(f"  SPRT 'P >= 0.2': {sprt.payload['decision']} accepted "
          f"after {int(sprt.metrics['samples'])} samples")
    print()


def herd_safety(engine: Engine) -> None:
    print("=" * 66)
    print("2. Safety: with gamma = 0.4 (fast recovery), outbreaks stay small")
    print("=" * 66)
    scenario = get_scenario("sir-herd-safety")
    report = engine.run(scenario.spec())
    assert report.status.value == scenario.expected
    print(f"  P(i stays <= 5%) = {report.metrics['probability']:.3f}  "
          f"({int(report.metrics['samples'])} simulations)")
    print()


def recover_beta() -> None:
    print("=" * 66)
    print("3. SMC-based estimation of beta from an epidemic-peak constraint")
    print("=" * 66)
    truth = 0.42
    model = sir()
    ref = rk45(model, {"s": 0.99, "i": 0.01, "r": 0.0}, (0.0, 120.0),
               params={"beta": truth, "gamma": 0.1})
    peak = ref.column("i").max()
    print(f"  true beta = {truth}, observed peak prevalence = {peak:.3f}")

    band = (var("i") >= peak - 0.02) & (var("i") <= peak + 0.02)
    phi = F(120.0, band) & G(120.0, var("i") <= peak + 0.02)

    def objective(params):
        traj = rk45(model, {"s": 0.99, "i": 0.01, "r": 0.0}, (0.0, 120.0),
                    params={"beta": params["beta"], "gamma": 0.1})
        return robustness(phi, traj)

    res = cross_entropy_search(objective, {"beta": (0.2, 0.8)},
                               population=24, iterations=10, seed=0)
    print(f"  recovered beta = {res.best_params['beta']:.4f} "
          f"(fitness {res.best_fitness:.4f}, {res.evaluations} evaluations)")
    print()


def main() -> None:
    engine = Engine(seed=0, progress=show_progress, progress_interval=0.5)
    probabilistic_outbreak(engine)
    herd_safety(engine)
    recover_beta()
    engine.close()


if __name__ == "__main__":
    main()
