"""Radiation-injury combination therapy (paper Section IV-B, Fig. 3).

The TBI multi-mode model has a live mode, five drug modes (A: JP4-039
apoptosis inhibition, B: necrostatin-1 necroptosis, C: baicalein
ferroptosis, D: MCC950 pyroptosis, E: XJB-veliparib parthanatos) and an
absorbing death mode.  Delivering drug X is a mode switch guarded by
its pathway signature crossing the decision threshold theta_X --
"determining which drug to deliver at what time evolves into a
parameter synthesis problem for hybrid automata".

This example

1. shows the dose-response structure: untreated cells die above a dose
   threshold while the default treatment policy rescues a window;
2. runs the catalog entry ``tbi-plan`` -- a minimum-drug treatment plan
   (threshold + schedule) synthesized with the BMC route on a reduced
   drug set; and
3. shows threshold choice matters: at high dose only early intervention
   (low theta) survives.

Run:  python examples/tbi_combination_therapy.py
"""

from repro.api import Engine
from repro.hybrid import simulate_hybrid
from repro.models import tbi_model
from repro.scenarios import get_scenario


def dose_response() -> None:
    print("=" * 70)
    print("1. Dose response: untreated vs default policy (theta = 0.5)")
    print("=" * 70)
    print(f"{'dose':>6s} {'untreated':>10s} {'treated':>10s} {'drugs used':<30s}")
    no_treatment = {f"theta_{X}": 10.0 for X in "ABCD"} | {"theta_E": -1.0}
    for dose in (0.3, 0.5, 0.7, 0.9, 1.1):
        un = simulate_hybrid(
            tbi_model(no_treatment, dose=dose), t_final=120.0, max_jumps=10
        )
        tr = simulate_hybrid(tbi_model(dose=dose), t_final=120.0, max_jumps=25)
        drugs = " -> ".join(dict.fromkeys(
            m for m in tr.mode_path() if m.startswith("drug")
        )) or "-"
        print(f"{dose:6.1f} {un.mode_path()[-1]:>10s} {tr.mode_path()[-1]:>10s} "
              f"{drugs:<30s}")
    print()


def synthesize_plan(engine: Engine) -> None:
    print("=" * 70)
    print("2. Minimum-drug plan synthesis (drug A only available, dose 0.55)")
    print("=" * 70)
    scenario = get_scenario("tbi-plan")
    plan = engine.run(scenario.spec())
    assert plan.status.value == scenario.expected, (
        f"{scenario.name}: got {plan.status.value!r}, expected {scenario.expected!r}"
    )
    print(f"  [{scenario.name}] plan found: "
          f"{' -> '.join(plan.payload['mode_path'])}")
    print(f"  decision threshold theta_A = {plan.witness['theta_A']:.3f}")
    print(f"  drugs used: {int(plan.metrics['n_drugs'])}  ({plan.detail})")
    print()


def threshold_matters() -> None:
    print("=" * 70)
    print("3. Early vs late intervention at dose 1.1 (all drugs available)")
    print("=" * 70)
    print(f"{'theta':>7s} {'outcome':>9s} {'switches':>9s} {'path (first 6)':<44s}")
    for th in (0.2, 0.3, 0.4, 0.5):
        params = {f"theta_{X}": th for X in "ABCD"} | {"theta_E": 0.5}
        traj = simulate_hybrid(tbi_model(params, dose=1.1), t_final=120.0, max_jumps=25)
        path = traj.mode_path()
        print(f"{th:7.2f} {path[-1]:>9s} {len(traj.jumps_taken):9d} "
              f"{' -> '.join(path[:6]):<44s}")
    print()


def main() -> None:
    dose_response()
    synthesize_plan(Engine(seed=0))
    threshold_matters()


if __name__ == "__main__":
    main()
