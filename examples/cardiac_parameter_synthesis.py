"""Cardiac case study (paper Section IV-A, after [37] CMSB'14).

Three results on the minimal cardiac AP models:

1. **Morphology comparison** -- simulate Fenton-Karma and
   Bueno-Cherry-Fenton (epicardial) action potentials and extract
   features: BCF shows the epicardial spike-and-dome, FK cannot.
2. **Falsification** -- the catalog entries ``cardiac-fk-dome``
   (delta-decisions prove *no* FK parameters reproduce a dome: UNSAT)
   and ``cardiac-bcf-dome`` (the BCF control is delta-sat).
3. **Disorder-inducing parameter sweep** -- tau_so1 values driving the
   BCF action potential into tachycardia-like and repolarization-
   failure regimes.

Run:  python examples/cardiac_parameter_synthesis.py
"""

from repro.api import Engine
from repro.models import (
    action_potential,
    ap_features,
    bueno_cherry_fenton,
    fenton_karma,
)
from repro.scenarios import get_scenario


def morphology_table() -> None:
    print("=" * 66)
    print("1. Action-potential morphology (stimulus: u0 = 0.4)")
    print("=" * 66)
    print(f"{'model':28s} {'peak':>6s} {'APD90':>8s} {'dome':>6s}")
    for name, system in (
        ("Fenton-Karma (BR fit)", fenton_karma()),
        ("Bueno-Cherry-Fenton (EPI)", bueno_cherry_fenton()),
    ):
        traj = action_potential(system, u0=0.4, t_final=500.0)
        f = ap_features(traj)
        apd = f"{f.apd90:7.1f}" if f.apd90 else "    n/a"
        print(f"{name:28s} {f.peak:6.2f} {apd:>8s} {str(f.has_dome):>6s}")
    print()


def falsify_fk_dome(engine: Engine) -> None:
    print("=" * 66)
    print("2. Falsification: can Fenton-Karma produce a spike-and-dome?")
    print("=" * 66)
    # A dome requires the voltage to RISE back from the notch through the
    # dome window; in the excited regime the FK fast gate only decays, so
    # the catalog's barrier query is UNSAT for all physiological
    # parameters -- the structural deficiency shown in [37].
    fk = get_scenario("cardiac-fk-dome")
    verdict = engine.run(fk.spec())
    assert verdict.status.value == fk.expected, (
        f"{fk.name}: got {verdict.status.value!r}, expected {fk.expected!r}"
    )
    print(f"  [{fk.name}] {verdict.status.value}: {verdict.detail}")

    # Control: the BCF (epicardial) dynamics CAN ascend through its dome
    # window -- same query shape, delta-sat with a witness.
    bcf = get_scenario("cardiac-bcf-dome")
    verdict_bcf = engine.run(bcf.spec())
    assert verdict_bcf.status.value == bcf.expected, (
        f"{bcf.name}: got {verdict_bcf.status.value!r}, expected {bcf.expected!r}"
    )
    print(f"  [{bcf.name}] {verdict_bcf.status.value}: "
          f"witness = {verdict_bcf.witness}")
    print()


def apd_sweep() -> None:
    print("=" * 66)
    print("3. BCF: APD90 vs tau_so1 (tachycardia and repolarization failure)")
    print("=" * 66)
    print(f"{'tau_so1':>8s} {'APD90 [ms]':>11s} {'regime':<28s}")
    for tau in (5.0, 10.0, 20.0, 30.0181, 45.0, 60.0, 90.0):
        traj = action_potential(
            bueno_cherry_fenton({"tau_so1": tau}), u0=0.4, t_final=900.0
        )
        f = ap_features(traj)
        if not f.repolarized:
            regime = "NO repolarization (fibrillation-prone)"
            apd = "  >900"
        else:
            apd = f"{f.apd90:7.1f}"
            if f.apd90 < 150:
                regime = "short APD (tachycardia-inducing)"
            elif f.apd90 > 400:
                regime = "prolonged APD"
            else:
                regime = "normal epicardial"
        print(f"{tau:8.2f} {apd:>11s} {regime:<28s}")
    print()


def main() -> None:
    morphology_table()
    falsify_fk_dome(Engine(seed=0))
    apd_sweep()


if __name__ == "__main__":
    main()
