"""Cardiac case study (paper Section IV-A, after [37] CMSB'14).

Three results on the minimal cardiac AP models:

1. **Morphology comparison** -- simulate Fenton-Karma and
   Bueno-Cherry-Fenton (epicardial) action potentials and extract
   features: BCF shows the epicardial spike-and-dome, FK cannot.
2. **Falsification** -- delta-decision calibration proves that *no*
   FK parameters reproduce a dome-shaped AP (bands that require the
   voltage to rise again after the notch): UNSAT.
3. **Disorder-inducing parameter synthesis** -- find tau_so1 values
   driving the BCF action potential duration into tachycardia-like
   (short APD) and repolarization-failure regimes.

Run:  python examples/cardiac_parameter_synthesis.py
"""

from repro.apps import TimeSeriesData, falsify_with_data
from repro.models import (
    action_potential,
    ap_features,
    bueno_cherry_fenton,
    fenton_karma,
)


def morphology_table() -> None:
    print("=" * 66)
    print("1. Action-potential morphology (stimulus: u0 = 0.4)")
    print("=" * 66)
    print(f"{'model':28s} {'peak':>6s} {'APD90':>8s} {'dome':>6s}")
    for name, system in (
        ("Fenton-Karma (BR fit)", fenton_karma()),
        ("Bueno-Cherry-Fenton (EPI)", bueno_cherry_fenton()),
    ):
        traj = action_potential(system, u0=0.4, t_final=500.0)
        f = ap_features(traj)
        apd = f"{f.apd90:7.1f}" if f.apd90 else "    n/a"
        print(f"{name:28s} {f.peak:6.2f} {apd:>8s} {str(f.has_dome):>6s}")
    print()


def falsify_fk_dome() -> None:
    print("=" * 66)
    print("2. Falsification: can Fenton-Karma produce a spike-and-dome?")
    print("=" * 66)
    from repro.apps import falsify_ascent
    from repro.models import bcf_hybrid, fenton_karma_hybrid

    # A dome requires the voltage to RISE back from the notch (u <= 0.75)
    # through the dome window (u >= 0.85).  By the mean value theorem,
    # that ascent needs a state in u in [0.75, 0.85] with du/dt >= 0.
    # In the excited regime the FK fast gate only decays
    # (dv/dt = -v / tau_v_plus), so v <= 0.01 by the notch time; the
    # barrier query below is therefore UNSAT for all parameters in the
    # physiological ranges -- the structural deficiency shown in [37].
    fk_excited = fenton_karma_hybrid().mode_system("excited")
    verdict = falsify_ascent(
        fk_excited, "u", from_level=0.75, to_level=0.85,
        state_bounds={"u": (0.0, 1.2), "v": (0.0, 0.01), "w": (0.0, 1.0)},
        param_ranges={"tau_r": (10.0, 38.0), "tau_si": (28.0, 130.0)},
    )
    print(f"FK spike-and-dome: rejected={verdict.rejected} "
          f"conclusive={verdict.conclusive}")
    print(f"  -> {verdict.detail}")

    # Control: the BCF (epicardial) dynamics CAN ascend through its
    # dome window -- the barrier query is delta-sat with a witness
    # (and a concrete simulated AP exhibits the dome, section 1 above).
    bcf_m4 = bcf_hybrid().mode_system("m4")
    verdict_bcf = falsify_ascent(
        bcf_m4, "u", from_level=1.0, to_level=1.2,
        state_bounds={"u": (0.0, 1.6), "v": (0.0, 1.0), "w": (0.0, 1.0),
                      "s": (0.0, 1.0)},
        param_ranges={"tau_so1": (25.0, 35.0)},
    )
    print(f"BCF spike-and-dome: rejected={verdict_bcf.rejected} "
          f"witness={verdict_bcf.witness_params}")
    print()


def apd_sweep() -> None:
    print("=" * 66)
    print("3. BCF: APD90 vs tau_so1 (tachycardia and repolarization failure)")
    print("=" * 66)
    print(f"{'tau_so1':>8s} {'APD90 [ms]':>11s} {'regime':<28s}")
    for tau in (5.0, 10.0, 20.0, 30.0181, 45.0, 60.0, 90.0):
        traj = action_potential(
            bueno_cherry_fenton({"tau_so1": tau}), u0=0.4, t_final=900.0
        )
        f = ap_features(traj)
        if not f.repolarized:
            regime = "NO repolarization (fibrillation-prone)"
            apd = "  >900"
        else:
            apd = f"{f.apd90:7.1f}"
            if f.apd90 < 150:
                regime = "short APD (tachycardia-inducing)"
            elif f.apd90 > 400:
                regime = "prolonged APD"
            else:
                regime = "normal epicardial"
        print(f"{tau:8.2f} {apd:>11s} {regime:<28s}")
    print()


def main() -> None:
    morphology_table()
    falsify_fk_dome()
    apd_sweep()


if __name__ == "__main__":
    main()
