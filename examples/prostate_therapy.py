"""Personalized prostate-cancer therapy (paper Section IV-B, after [38]).

The intermittent androgen suppression (IAS) model is a two-mode hybrid
automaton whose treatment thresholds (pause at PSA <= r0, resume at
PSA >= r1) are the *personalizable* parameters.  This example

1. sweeps the catalog entry ``ias-cohort-burden`` over the whole
   synthetic patient cohort (one :class:`ScenarioSweep`, one engine
   batch) -- the responder keeps the burden bounded with probability
   ~1, the relapsing profiles with probability ~0;
2. synthesizes patient-specific thresholds for the responder with the
   catalog entry ``ias-policy``; and
3. shows that for the non-responder no schedule in the same family
   works (the verdicts differ per patient -- the personalization
   message of [38]).

Run:  python examples/prostate_therapy.py
"""

from repro.api import Engine
from repro.scenarios import ScenarioSweep, get_scenario


def cohort_sweep(engine: Engine) -> None:
    print("=" * 70)
    print("1. Cohort sweep: P(burden x+y <= 40 for 600 days) per patient")
    print("=" * 70)
    scenario = get_scenario("ias-cohort-burden")
    sweep = ScenarioSweep(scenario.name, cohort="patients")
    reports = sweep.run(engine)
    assert all(r.status.value == scenario.expected for r in reports)
    print(f"{'scenario':>42s} {'P(controlled)':>14s}")
    for report in reports:
        print(f"{report.name:>42s} {report.metrics['probability']:14.2f}")
    probs = [r.metrics["probability"] for r in reports]
    assert probs[0] > 0.9      # patient_A: responder, controlled
    assert max(probs[1:]) < 0.5  # patient_B / patient_C: relapse
    print()


def personalize(engine: Engine, patient: str, expect_found: bool) -> None:
    print("=" * 70)
    print(f"2. Threshold synthesis for {patient} "
          "(objective: burden x+y <= 40 for 600 days)")
    print("=" * 70)
    scenario = get_scenario("ias-policy")
    report = engine.run(scenario.spec(patient=patient))
    if patient == scenario.params["patient"]:
        assert report.status.value == scenario.expected
    assert bool(report) == expect_found
    if report:
        print(f"  thresholds: r0={report.witness['r0']:.2f} "
              f"r1={report.witness['r1']:.2f}")
        print(f"  robustness margin: {report.metrics['robustness']:.3f}, "
              f"Monte-Carlo success: {report.metrics['success_probability']:.0%}")
    else:
        print(f"  no feasible schedule found "
              f"(best margin {report.metrics['robustness']:.3f})")
    print()


def main() -> None:
    engine = Engine(seed=0)
    cohort_sweep(engine)
    personalize(engine, "patient_A", expect_found=True)
    personalize(engine, "patient_C", expect_found=False)  # non-responder


if __name__ == "__main__":
    main()
