"""Personalized prostate-cancer therapy (paper Section IV-B, after [38]).

The intermittent androgen suppression (IAS) model is a two-mode hybrid
automaton whose treatment thresholds (pause at PSA <= r0, resume at
PSA >= r1) are the *personalizable* parameters.  This example

1. simulates the three synthetic patient profiles under the default
   schedule, showing the responder / relapse regimes;
2. synthesizes patient-specific thresholds for the responder using the
   SMC-based policy search (objective: keep total tumor burden bounded
   for 600 days); and
3. shows that for the non-responder no schedule in the same family
   prevents CRPC growth (the verdicts differ per patient -- the
   personalization message of [38]).

Run:  python examples/prostate_therapy.py
"""

from repro.apps import synthesize_threshold_policy
from repro.expr import var
from repro.hybrid import simulate_hybrid
from repro.models import PATIENT_PROFILES, ias_model, psa
from repro.smc import G


def simulate_patients() -> None:
    print("=" * 70)
    print("1. IAS under the default schedule (r0=4, r1=10), 1500 days")
    print("=" * 70)
    print(f"{'patient':>10s} {'d':>5s} {'cycles':>7s} {'final PSA':>12s} "
          f"{'CRPC y':>10s} {'outcome':<12s}")
    for name, prof in PATIENT_PROFILES.items():
        h = ias_model(name)
        traj = simulate_hybrid(h, t_final=1500.0, max_jumps=60)
        final = traj.final()
        cycles = max(0, len(traj.segments) - 1) // 2
        relapsed = final["y"] > 5.0
        print(f"{name:>10s} {prof['d']:5.2f} {cycles:7d} {psa(final):12.2f} "
              f"{final['y']:10.3f} {'RELAPSE' if relapsed else 'controlled':<12s}")
    print()


def personalize(patient: str) -> None:
    print("=" * 70)
    print(f"2. Threshold synthesis for {patient} "
          "(objective: burden x+y <= 40 for 600 days)")
    print("=" * 70)
    h = ias_model(patient)
    phi = G(600.0, (var("x") + var("y")) <= 40.0)
    res = synthesize_threshold_policy(
        h,
        phi,
        {"r0": (0.5, 8.0), "r1": (8.5, 25.0)},
        init={"x": 15.0, "y": 0.01, "z": 12.0},
        horizon=610.0,
        population=10,
        iterations=5,
        seed=2,
        confirm_samples=10,
    )
    if res.found:
        print(f"  thresholds: r0={res.thresholds['r0']:.2f} "
              f"r1={res.thresholds['r1']:.2f}")
        print(f"  robustness margin: {res.robustness:.3f}, "
              f"Monte-Carlo success: {res.success_probability:.0%}")
        # show the schedule it induces
        traj = simulate_hybrid(h, t_final=600.0, params=res.thresholds, max_jumps=40)
        print(f"  induced mode path: {' -> '.join(traj.mode_path()[:8])}"
              f"{' ...' if len(traj.segments) > 8 else ''}")
    else:
        print(f"  no feasible schedule found (best margin {res.robustness:.3f})")
    print()


def main() -> None:
    simulate_patients()
    personalize("patient_A")
    personalize("patient_C")  # non-responder: expected to fail


if __name__ == "__main__":
    main()
