"""Lyapunov stability analysis via delta-decisions (paper Section IV-C).

Synthesizes and certifies Lyapunov functions with the exists-forall
CEGIS solver for

1. the T-cell kinetic-proofreading network (the canonical example of
   Lyapunov-enabled mass-action analysis [60]),
2. the simplified ERK cascade, and
3. a damped oscillator where the natural energy candidate *fails* the
   robust conditions and a cross-term certificate succeeds -- showing
   the counterexample machinery at work.

Run:  python examples/lyapunov_stability.py
"""

from repro.expr import var
from repro.intervals import Box
from repro.lyapunov import LyapunovAnalyzer, quadratic_template
from repro.models import erk_cascade, kinetic_proofreading
from repro.odes import ODESystem
from repro.solver import Status


def analyze_mass_action(name: str, system, equilibrium, radius: float) -> None:
    print("=" * 70)
    print(f"{name}: equilibrium "
          + ", ".join(f"{k}={v:.4f}" for k, v in equilibrium.items()))
    print("=" * 70)
    region = Box.from_bounds(
        {k: (max(1e-6, v - radius), v + radius) for k, v in equilibrium.items()}
    )
    analyzer = LyapunovAnalyzer(
        system, region, equilibrium,
        exclusion_radius=0.02, eps_v=1e-3, eps_dv=1e-5,
    )
    res = analyzer.synthesize(seed=1)
    if res.status is Status.DELTA_SAT:
        print(f"  Lyapunov function found in {res.iterations} CEGIS rounds:")
        print(f"    V = {res.V}")
        check = analyzer.certify(res.V)
        print(f"  independent certification: {check.status.value}")
        roa = analyzer.region_of_attraction(res.V, levels=8)
        print(f"  verified sublevel (region of attraction estimate): "
              f"V <= {roa:.4f}")
    else:
        print(f"  synthesis failed: {res.status.value}")
    print()


def damped_oscillator_demo() -> None:
    print("=" * 70)
    print("Damped oscillator x' = v, v' = -x - v")
    print("=" * 70)
    x, v = var("x"), var("v")
    system = ODESystem({"x": v, "v": -x - v})
    region = Box.from_bounds({"x": (-1, 1), "v": (-1, 1)})
    analyzer = LyapunovAnalyzer(system, region, eps_dv=1e-2)

    energy = x * x + v * v
    res1 = analyzer.certify(energy)
    print(f"  energy V = x^2 + v^2: {res1.status.value} "
          f"(dV/dt = -2v^2 vanishes on the v=0 axis)")
    if res1.counterexample:
        ce = res1.counterexample
        print(f"    counterexample: x={ce['x']:.3f} v={ce['v']:.3f}")

    cross = 1.5 * x * x + x * v + v * v
    res2 = analyzer.certify(cross)
    print(f"  cross-term V = 1.5x^2 + xv + v^2: {res2.status.value}")

    synth = analyzer.synthesize(template=quadratic_template(["x", "v"]), seed=3)
    if synth.status is Status.DELTA_SAT:
        print(f"  CEGIS-synthesized: V = {synth.V}")
    print()


def main() -> None:
    kp_sys, kp_eq = kinetic_proofreading(n_steps=2)
    analyze_mass_action("T-cell kinetic proofreading (2 steps)", kp_sys, kp_eq, 0.15)

    erk_sys, erk_eq = erk_cascade()
    analyze_mass_action("ERK cascade (2-tier)", erk_sys, erk_eq, 0.2)

    damped_oscillator_demo()


if __name__ == "__main__":
    main()
