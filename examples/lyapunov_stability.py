"""Lyapunov stability analysis via delta-decisions (paper Section IV-C).

Synthesizes and certifies Lyapunov functions with the exists-forall
CEGIS solver:

1. the catalog entries ``kp-lyapunov`` and ``erk-lyapunov`` -- the
   T-cell kinetic-proofreading network and the ERK cascade (the
   canonical examples of Lyapunov-enabled mass-action analysis [60]);
2. the catalog entry ``oscillator-lyapunov`` -- a damped oscillator
   where the natural energy candidate *fails* the robust conditions and
   a cross-term certificate succeeds; and
3. the counterexample machinery at work on the failing energy
   candidate, using the analyzer directly.

Run:  python examples/lyapunov_stability.py
"""

from repro.api import Engine
from repro.expr import var
from repro.intervals import Box
from repro.lyapunov import LyapunovAnalyzer
from repro.odes import ODESystem
from repro.scenarios import get_scenario


def run_entry(engine: Engine, name: str):
    """Run one catalog entry and assert its recorded expected verdict."""
    scenario = get_scenario(name)
    report = engine.run(scenario.spec())
    assert report.status.value == scenario.expected, (
        f"{name}: got {report.status.value!r}, expected {scenario.expected!r}"
    )
    return scenario, report


def mass_action_demo(engine: Engine) -> None:
    print("=" * 70)
    print("1. Mass-action networks: CEGIS synthesis (kinetic proofreading, ERK)")
    print("=" * 70)
    for name in ("kp-lyapunov", "erk-lyapunov"):
        scenario, report = run_entry(engine, name)
        print(f"  [{scenario.name}] {report.status.value} after "
              f"{int(report.stats['iterations'])} CEGIS rounds")
        print(f"    V = {report.payload['V']}")
    print()


def oscillator_demo(engine: Engine) -> None:
    print("=" * 70)
    print("2. Damped oscillator x' = v, v' = -x - v: certification")
    print("=" * 70)
    scenario, report = run_entry(engine, "oscillator-lyapunov")
    print(f"  [{scenario.name}] cross-term V = 1.5x^2 + xv + v^2: "
          f"{report.status.value}")
    print()


def failing_energy_demo() -> None:
    print("=" * 70)
    print("3. Why the cross term? The energy candidate fails robustly")
    print("=" * 70)
    x, v = var("x"), var("v")
    system = ODESystem({"x": v, "v": -x - v})
    region = Box.from_bounds({"x": (-1, 1), "v": (-1, 1)})
    analyzer = LyapunovAnalyzer(system, region, eps_dv=1e-2)

    energy = x * x + v * v
    res = analyzer.certify(energy)
    print(f"  energy V = x^2 + v^2: {res.status.value} "
          f"(dV/dt = -2v^2 vanishes on the v=0 axis)")
    if res.counterexample:
        ce = res.counterexample
        print(f"    counterexample: x={ce['x']:.3f} v={ce['v']:.3f}")
    print()


def main() -> None:
    engine = Engine(seed=0)
    mass_action_demo(engine)
    oscillator_demo(engine)
    failing_energy_demo()


if __name__ == "__main__":
    main()
