"""Property tests for the scenario corpus pipeline.

Three invariants the corpus machinery promises:

* **Generation is byte-deterministic**: the same ``(family, seed)``
  always yields the same JSON bytes, and different seeds yield
  different (but equally valid) entries.
* **The SBML writer/parser are exact mirrors**: for any generated
  :class:`~repro.scenarios.generate.ReactionNetwork`,
  ``parse_sbml(net.to_sbml())`` reproduces ``net.to_ode()``
  expression-for-expression, and the native JSON model format
  round-trips the result.
* **Every corpus entry survives the scenario JSON round-trip**:
  ``Scenario.from_dict(json.loads(json.dumps(s.to_dict()))) == s``.
"""

import json
import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.io.native import ode_from_dict, ode_to_dict
from repro.io.sbml import parse_sbml
from repro.scenarios import (
    Scenario,
    all_scenarios,
    family_names,
    generate_family,
)
from repro.scenarios.generate import random_network
from repro.scenarios.ingest import entries_json, ingest_file

SEEDS = st.integers(min_value=0, max_value=2 ** 16)


# ----------------------------------------------------------------------
# Generation determinism
# ----------------------------------------------------------------------


@given(family=st.sampled_from(family_names()), seed=SEEDS)
@settings(max_examples=25, deadline=None)
def test_generation_is_byte_deterministic(family, seed):
    """The same (family, seed) always serializes to the same bytes."""
    first = entries_json(generate_family(family, seed=seed, count=4))
    second = entries_json(generate_family(family, seed=seed, count=4))
    assert first == second


@given(family=st.sampled_from(family_names()), seed=SEEDS)
@settings(max_examples=10, deadline=None)
def test_generated_entries_build_specs(family, seed):
    """Every generated entry carries its family tag and binds to a
    runnable TaskSpec."""
    for entry in generate_family(family, seed=seed, count=3):
        assert entry.family == family
        assert "corpus" in entry.tags
        assert entry.spec().name == entry.name


def test_distinct_seeds_yield_distinct_corpora():
    """Seeds are part of entry names, so corpora never collide."""
    a = {s.name for s in generate_family("mass-action", seed=1, count=4)}
    b = {s.name for s in generate_family("mass-action", seed=2, count=4)}
    assert a.isdisjoint(b)


# ----------------------------------------------------------------------
# SBML round-trip identity
# ----------------------------------------------------------------------


def _exprs(mapping):
    return {k: str(v) for k, v in mapping.items()}


@given(seed=SEEDS, cycle=st.booleans())
@settings(max_examples=25, deadline=None)
def test_sbml_writer_parser_mirror(seed, cycle):
    """``parse_sbml(net.to_sbml())`` reproduces ``net.to_ode()``
    expression-for-expression, numerically exactly."""
    net = random_network(random.Random(seed), f"prop{seed}", cycle=cycle)
    system, initial = net.to_ode()
    model = parse_sbml(net.to_sbml())
    assert _exprs(model.system.derivatives) == _exprs(system.derivatives)
    assert model.system.params == system.params
    assert model.initial == initial


@given(seed=SEEDS, cycle=st.booleans())
@settings(max_examples=15, deadline=None)
def test_imported_model_survives_native_json(seed, cycle):
    """SBML import -> native JSON -> reload preserves the ODE system."""
    net = random_network(random.Random(seed), f"native{seed}", cycle=cycle)
    model = parse_sbml(net.to_sbml())
    reloaded = ode_from_dict(json.loads(json.dumps(ode_to_dict(model.system))))
    assert _exprs(reloaded.derivatives) == _exprs(model.system.derivatives)
    assert reloaded.params == model.system.params


@given(seed=SEEDS, cycle=st.booleans())
@settings(max_examples=10, deadline=None)
def test_ingestion_is_byte_deterministic(seed, cycle, tmp_path_factory):
    """Re-ingesting the same SBML file yields byte-identical entries."""
    tmp_path = tmp_path_factory.mktemp("ingest")
    net = random_network(random.Random(seed), f"re{seed}", cycle=cycle)
    path = tmp_path / f"re{seed}.xml"
    path.write_text(net.to_sbml())
    assert entries_json(ingest_file(path)) == entries_json(ingest_file(path))


def test_ingest_entries_round_trip_scenario_json(tmp_path):
    """Fresh ingestion output survives the scenario JSON round-trip."""
    net = random_network(random.Random(7), "rt", cycle=False)
    path = tmp_path / "rt.xml"
    path.write_text(net.to_sbml())
    entries = ingest_file(path)
    assert entries
    for entry in entries:
        clone = Scenario.from_dict(json.loads(json.dumps(entry.to_dict())))
        assert clone == entry


# ----------------------------------------------------------------------
# Registered corpus round-trip
# ----------------------------------------------------------------------


def test_every_registered_entry_round_trips():
    """All 150+ registered entries survive dict -> JSON -> dict."""
    entries = list(all_scenarios())
    assert len(entries) >= 150
    for entry in entries:
        clone = Scenario.from_dict(json.loads(json.dumps(entry.to_dict())))
        assert clone == entry
