"""Warm-vs-cold conformance over the golden scenario set.

The golden corpus (``tests/test_golden_corpus.py``) pins the golden
set's verdicts across the three solver paths; this module pins the
*incremental* axis: for each of those scenarios, a warm-started re-solve
of a perturbed variant (delta tightened, or one query bound nudged)
must project to exactly the report a cold solve of that variant
produces.  The store may only ever change *how fast* an answer
arrives, never *which* answer.

Also covered here: the ``--paving-store`` / ``--cold`` CLI flags and
the store counters surfaced on ``GET /cluster``.
"""

import dataclasses
import json
from urllib.request import urlopen

import pytest

from repro.api import Engine
from repro.scenarios import get_scenario
from repro.tools.golden import golden_scenario_names, project_report

#: Scenarios whose repeated runs are expensive (policy search over SMC
#: scoring); exercised only in the full (non-PR) workflow.
SLOW_SCENARIOS = {"ias-policy"}

#: Relative nudge applied to the first float query leaf: exactly
#: representable (2^-10), large enough to change the compiled tape,
#: small enough to keep every catalog query well-posed.
PERTURB = 1.0 + 2.0 ** -10


def _perturb_first_float(obj):
    """A deep copy of ``obj`` with its first float leaf scaled, plus
    whether one was found (bools and ints are left alone)."""
    if isinstance(obj, float):
        return obj * PERTURB, True
    if isinstance(obj, dict):
        out, done = {}, False
        for k, v in obj.items():
            if done:
                out[k] = v
            else:
                out[k], done = _perturb_first_float(v)
        return out, done
    if isinstance(obj, list):
        out, done = [], False
        for v in obj:
            if done:
                out.append(v)
            else:
                nv, done = _perturb_first_float(v)
                out.append(nv)
        return out, done
    return obj, False


def _variants(spec):
    """The perturbed re-solve variants of one scenario spec."""
    tightened = spec.replace(
        solver=dataclasses.replace(spec.solver, delta=spec.solver.delta * 0.5)
    )
    out = [("tightened-delta", tightened)]
    query, found = _perturb_first_float(dict(spec.query))
    if found:
        out.append(("perturbed-bound", spec.replace(query=query)))
    return out


def _run(spec):
    with Engine(seed=0) as engine:
        return project_report(engine.run(spec))


def _scenario_params():
    # the golden set (core + promoted corpus entries); warm-vs-cold over
    # the full corpus runs in tests/test_corpus_conformance.py
    for name in golden_scenario_names():
        marks = [pytest.mark.slow] if name in SLOW_SCENARIOS else []
        yield pytest.param(name, marks=marks, id=name)


@pytest.mark.parametrize("name", _scenario_params())
def test_warm_resolve_matches_cold_resolve(name, tmp_path):
    """Store-assisted re-solves of every catalog scenario variant
    project identically to cold solves of the same variant."""
    base = get_scenario(name).spec()
    store = str(tmp_path / "store")
    warmed = lambda s: s.replace(  # noqa: E731
        solver=dataclasses.replace(s.solver, paving_store=store)
    )
    _run(warmed(base))  # populate the store from the base solve
    for label, variant in _variants(base):
        warm = _run(warmed(variant))
        cold = _run(variant)
        assert warm == cold, (
            f"{name}/{label}: warm-started projection diverged from cold"
        )


# ----------------------------------------------------------------------
# CLI flags
# ----------------------------------------------------------------------


class TestCli:
    def _scenario_file(self, tmp_path):
        spec = get_scenario("cardiac-fk-dome").spec()
        path = tmp_path / "scenario.json"
        path.write_text(spec.to_json())
        return str(path)

    def test_run_with_paving_store_warm_equals_cold(self, tmp_path, capsys):
        from repro.api.cli import main

        scenario = self._scenario_file(tmp_path)
        store = str(tmp_path / "store")
        assert main(["run", scenario, "--paving-store", store, "--json"]) == 0
        first = json.loads(capsys.readouterr().out)
        assert main(["run", scenario, "--paving-store", store, "--json"]) == 0
        second = json.loads(capsys.readouterr().out)
        assert second["status"] == first["status"]
        # artifacts really landed on disk
        assert any((tmp_path / "store").rglob("*.json"))

    def test_cold_flag_disables_warm_start(self, tmp_path, capsys):
        from repro.api.cli import main

        scenario = self._scenario_file(tmp_path)
        store = str(tmp_path / "store")
        assert main([
            "run", scenario, "--paving-store", store, "--cold", "--json",
        ]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["status"]  # ran to completion, recorded cold


# ----------------------------------------------------------------------
# Service counters
# ----------------------------------------------------------------------


class TestServiceCounters:
    def test_engine_reports_store_stats(self, tmp_path):
        store = str(tmp_path / "store")
        spec = get_scenario("cardiac-fk-dome").spec()
        with Engine(seed=0, paving_store=store) as engine:
            assert engine.paving_store_stats()["stores"] == 0
            first = engine.run(spec)
            stats = engine.paving_store_stats()
            assert stats["stores"] >= 1 and stats["path"] == store
            second = engine.run(spec)
            assert engine.paving_store_stats()["hits"] >= 1
        assert second.status == first.status

    def test_engine_without_store_reports_none(self):
        with Engine(seed=0) as engine:
            assert engine.paving_store_stats() is None

    def test_cluster_route_exposes_store_counters(self, tmp_path):
        from repro.api import ServiceServer

        store = str(tmp_path / "store")
        spec = get_scenario("cardiac-fk-dome").spec()
        engine = Engine(seed=0, paving_store=store)
        server = ServiceServer(engine, port=0).start()
        try:
            engine.run(spec)
            engine.run(spec)
            with urlopen(f"{server.url}/cluster", timeout=30) as resp:
                cluster = json.load(resp)
            counters = cluster["paving_store"]
            assert counters["path"] == store
            assert counters["stores"] >= 1 and counters["hits"] >= 1
        finally:
            server.shutdown()
            engine.close(wait=False)
