"""Unit tests for the satellites of the streaming-monitor PR.

Covers the pieces the online monitor stack leans on but that are
useful on their own: the shared :func:`repro.smc.bltl.window_times`
discretization convention, the incremental
:class:`repro.smc.stats.SPRTState`, and the process-wide default
progress sink.
"""

import threading

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import progress
from repro.smc.bltl import WINDOW_EPS, window_times
from repro.smc.stats import SPRTState, sprt


class TestWindowTimes:
    def test_closed_on_both_endpoints(self):
        ts = np.array([0.0, 1.0, 2.0, 3.0, 4.0])
        assert window_times(ts, 1.0, 3.0) == [1.0, 2.0, 3.0]

    def test_samples_within_eps_stand_in_for_endpoints(self):
        ts = np.array([1.0 + 0.5 * WINDOW_EPS, 2.0, 3.0 - 0.5 * WINDOW_EPS])
        out = window_times(ts, 1.0, 3.0)
        # the near-endpoint samples are selected; the exact endpoints
        # are NOT additionally inserted
        assert out == [float(ts[0]), 2.0, float(ts[2])]

    def test_missing_endpoints_are_inserted(self):
        ts = np.array([0.0, 1.5, 2.5, 4.0])
        assert window_times(ts, 1.0, 3.0) == [1.0, 1.5, 2.5, 3.0]

    def test_empty_window_still_evaluates_both_bounds(self):
        ts = np.array([0.0, 10.0])
        assert window_times(ts, 3.0, 5.0) == [3.0, 5.0]

    def test_degenerate_window_single_instant(self):
        ts = np.array([0.0, 1.0, 2.0])
        assert window_times(ts, 1.5, 1.5) == [1.5]
        assert window_times(ts, 1.0, 1.0) == [1.0]

    def test_inserted_endpoints_clamped_selected_samples_not(self):
        ts = np.array([0.0, 1.0, 2.0])
        # hi overshoots the sampled span: the inserted endpoint clamps
        # to t_max instead of asking the interpolant for t=2.4 (the
        # clamped instant may duplicate the last sample -- harmless
        # under max/min semantics, and kept for batch byte-identity)
        assert window_times(ts, 1.5, 2.4, 0.0, 2.0) == [1.5, 2.0, 2.0]
        # a sample just past hi (within eps) is selected and NOT clamped
        ts2 = np.array([0.0, 2.4 + 0.5 * WINDOW_EPS])
        out = window_times(ts2, 1.5, 2.4, 0.0, 2.0)
        assert out[-1] == float(ts2[-1])

    def test_monotone_output(self):
        rng = np.random.default_rng(0)
        for _ in range(50):
            ts = np.sort(rng.uniform(0.0, 10.0, 20))
            lo = float(rng.uniform(0.0, 9.0))
            hi = lo + float(rng.uniform(0.0, 3.0))
            out = window_times(ts, lo, hi, float(ts[0]), float(ts[-1]))
            assert out == sorted(out)
            assert out  # never empty: the window always evaluates


class TestSPRTStateIncremental:
    @settings(max_examples=100, deadline=None)
    @given(
        outcomes=st.lists(st.booleans(), min_size=1, max_size=400),
        theta=st.floats(0.1, 0.9),
        alpha=st.floats(0.01, 0.2),
        beta=st.floats(0.01, 0.2),
        indifference=st.floats(0.01, 0.09),
    )
    def test_one_by_one_equals_batch(self, outcomes, theta, alpha, beta,
                                     indifference):
        """Feeding outcomes one at a time reaches the batch decision
        after the identical number of samples."""
        max_samples = len(outcomes)
        batch = sprt(iter(outcomes), theta, alpha, beta, indifference,
                     max_samples=max_samples)

        state = SPRTState(theta, alpha, beta, indifference,
                          max_samples=max_samples)
        incremental = None
        for i, o in enumerate(outcomes):
            incremental = state.update(o)
            if incremental is not None:
                break
        assert incremental is not None  # max_samples budget forces a call
        assert incremental.accept == batch.accept
        assert incremental.samples_used == batch.samples_used
        assert incremental.successes == batch.successes

    def test_decision_is_sticky(self):
        state = SPRTState(0.5, 0.05, 0.05, 0.05, max_samples=1000)
        result = None
        while result is None:
            result = state.update(True)
        again = state.update(False)  # ignored after the decision
        assert again is result
        assert state.decided

    def test_all_true_accepts_h0_all_false_accepts_h1(self):
        up = SPRTState(0.5)
        res = None
        while res is None:
            res = up.update(True)
        assert res.accept and res.decision == "H0"

        down = SPRTState(0.5)
        res = None
        while res is None:
            res = down.update(False)
        assert not res.accept and res.decision == "H1"

    def test_budget_exhaustion_falls_back_to_empirical_mean(self):
        state = SPRTState(0.5, indifference=0.4, max_samples=6)
        seq = [True, False, True, False, True, False]
        results = [state.update(o) for o in seq]
        assert results[-1] is not None
        assert results[-1].samples_used == 6


class TestDefaultProgressSink:
    def test_unscoped_emit_is_noop_without_default_sink(self):
        assert progress.set_default_sink(None) is None  # clean slate
        progress.emit("a", "b", n=1.0)  # must not raise, must not deliver

    def test_unscoped_emit_delivers_to_default_sink(self):
        seen = []
        prev = progress.set_default_sink(seen.append)
        try:
            progress.emit("a", "b", n=1.0)
        finally:
            progress.set_default_sink(prev)
        assert len(seen) == 1
        assert (seen[0].source, seen[0].stage, seen[0].counters) == (
            "a", "b", {"n": 1.0})

    def test_scoped_sink_takes_precedence(self):
        fallback, scoped = [], []
        prev = progress.set_default_sink(fallback.append)
        try:
            with progress.progress_scope(sink=scoped.append):
                progress.emit("a", "b", n=1.0)
        finally:
            progress.set_default_sink(prev)
        assert len(scoped) == 1 and fallback == []

    def test_cancel_only_scope_falls_back_to_default_sink(self):
        seen = []
        prev = progress.set_default_sink(seen.append)
        try:
            with progress.progress_scope(cancel=threading.Event()):
                progress.emit("a", "b", n=1.0)
        finally:
            progress.set_default_sink(prev)
        assert len(seen) == 1

    def test_cancellation_still_wins_over_default_sink(self):
        seen = []
        cancel = threading.Event()
        cancel.set()
        prev = progress.set_default_sink(seen.append)
        try:
            with progress.progress_scope(cancel=cancel):
                with pytest.raises(progress.JobCancelled):
                    progress.emit("a", "b", n=1.0)
        finally:
            progress.set_default_sink(prev)
        assert seen == []

    def test_uninstall_restores_previous(self):
        first, second = [], []
        prev = progress.set_default_sink(first.append)
        try:
            inner_prev = progress.set_default_sink(second.append)
            assert inner_prev is not None
            progress.emit("a", "b")
            progress.set_default_sink(inner_prev)
            progress.emit("a", "c")
        finally:
            progress.set_default_sink(prev)
        assert [e.stage for e in second] == ["b"]
        assert [e.stage for e in first] == ["c"]
