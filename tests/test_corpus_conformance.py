"""Whole-corpus differential conformance: every entry, every path.

The golden corpus (``tests/test_golden_corpus.py``) pins the core
catalog plus a handful of promoted corpus entries byte-for-byte; this
module covers the *rest* of the 150+ entry corpus differentially: for
every ingested/generated entry the serial, vectorized and sharded
solver paths must produce identical verdict projections, a
store-assisted warm re-solve must project exactly like a cold solve,
and the verdict must match the pre-triaged ``expected`` committed in
``data/corpus.json``.

PRs run a fast deterministic subset (the first ``FAST_PER_FAMILY``
sorted entries of each family); the remaining entries carry
``@pytest.mark.slow`` and run only in the full (non-PR) workflow.
"""

import dataclasses

import pytest

from repro.api import Engine
from repro.scenarios import corpus_families, find_scenarios, get_scenario
from repro.tools.golden import MODES, project_report, scenario_projection

#: Entries per family in the fast (PR) subset.
FAST_PER_FAMILY = 2


def _family_members(family):
    """Sorted entry names of one corpus family."""
    return sorted(s.name for s in find_scenarios(family=family))


def _fast_names():
    """The deterministic PR subset: first N sorted names per family."""
    names = []
    for family in sorted(corpus_families()):
        names.extend(_family_members(family)[:FAST_PER_FAMILY])
    return names


def _corpus_params():
    """One param per corpus entry; non-subset entries are slow-marked."""
    fast = set(_fast_names())
    for family in sorted(corpus_families()):
        for name in _family_members(family):
            marks = [] if name in fast else [pytest.mark.slow]
            yield pytest.param(name, marks=marks, id=name)


def test_corpus_is_at_scale():
    """The registered corpus holds 150+ entries and 4+ families."""
    families = corpus_families()
    assert sum(families.values()) >= 132
    assert len(families) >= 4
    total = len(find_scenarios(family="")) + sum(families.values())
    assert total >= 150


@pytest.mark.parametrize("name", _corpus_params())
def test_modes_agree_and_match_triage(name):
    """Serial, vectorized and sharded projections are identical and
    reproduce the committed triage verdict."""
    entry = get_scenario(name)
    projections = {mode: scenario_projection(name, mode) for mode in MODES}
    baseline = projections["vectorized"]
    for mode, projection in projections.items():
        assert projection == baseline, (
            f"{name}: the {mode} path diverges from the vectorized path"
        )
    assert baseline["status"] == entry.expected, (
        f"{name}: solved verdict {baseline['status']!r} no longer matches "
        f"the triaged expected verdict {entry.expected!r}; regenerate "
        "data/corpus.json with `python -m repro.tools.regen_corpus`"
    )


@pytest.mark.parametrize("name", [pytest.param(n, id=n) for n in _fast_names()])
def test_kernel_axis_agrees(name):
    """The compiled tape kernel reproduces the numpy projection.

    Runs on the fast subset only: with the [jit] extra installed this
    compares real jitted solves, without it the fallback must leave the
    projection untouched.
    """
    base = scenario_projection(name, "vectorized")
    jit = scenario_projection(name, "vectorized", overrides={"kernel": "numba"})
    assert jit == base, (
        f"{name}: kernel='numba' diverges from the numpy interpreter"
    )


@pytest.mark.parametrize("name", _corpus_params())
def test_warm_resolve_matches_cold(name, tmp_path):
    """A paving-store warm re-solve projects exactly like a cold solve."""
    spec = get_scenario(name).spec()
    store = str(tmp_path / "store")
    warmed = spec.replace(
        solver=dataclasses.replace(spec.solver, paving_store=store)
    )
    with Engine(seed=0) as engine:
        engine.run(warmed)  # populate the store
        warm = project_report(engine.run(warmed))
        cold = project_report(engine.run(spec))
    assert warm == cold, (
        f"{name}: warm-started projection diverged from cold"
    )
