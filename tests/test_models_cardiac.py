"""Tests for the cardiac models (paper Section IV-A phenomena)."""

import pytest

from repro.hybrid import simulate_hybrid
from repro.models import (
    BCF_EPI_PARAMS,
    FK_BR_PARAMS,
    action_potential,
    ap_features,
    bcf_hybrid,
    bueno_cherry_fenton,
    fenton_karma,
    fenton_karma_hybrid,
)


@pytest.fixture(scope="module")
def fk_traj():
    return action_potential(fenton_karma(), u0=0.4, t_final=500.0)


@pytest.fixture(scope="module")
def bcf_traj():
    return action_potential(bueno_cherry_fenton(), u0=0.4, t_final=500.0)


class TestFentonKarma:
    def test_action_potential_fires(self, fk_traj):
        f = ap_features(fk_traj)
        assert f.peak > 0.8
        assert f.repolarized
        assert f.apd90 is not None and 80 < f.apd90 < 350

    def test_no_dome(self, fk_traj):
        """The paper's falsification claim: FK has no spike-and-dome."""
        f = ap_features(fk_traj)
        assert not f.has_dome

    def test_subthreshold_stimulus_no_ap(self):
        traj = action_potential(fenton_karma(), u0=0.05, t_final=100.0)
        # voltage decays without firing
        assert traj.column("u").max() <= 0.06

    def test_parameters_default(self):
        sys_ = fenton_karma()
        assert sys_.params["u_c"] == FK_BR_PARAMS["u_c"]
        assert set(sys_.state_names) == {"u", "v", "w"}

    def test_hybrid_matches_smooth_qualitatively(self):
        h = fenton_karma_hybrid()
        traj = simulate_hybrid(
            h, {"u": 0.4, "v": 1.0, "w": 1.0}, t_final=400.0, max_jumps=10,
            max_step=1.0,
        )
        us = traj.flatten().column("u")
        assert us.max() > 0.8  # AP fires
        assert us[-1] < 0.15   # repolarizes
        assert "excited" in traj.mode_path()

    def test_hybrid_mode_structure(self):
        h = fenton_karma_hybrid()
        assert set(h.mode_names) == {"rest", "gate", "excited"}
        assert len(h.jumps) == 4


class TestBuenoCherryFenton:
    def test_epicardial_ap(self, bcf_traj):
        f = ap_features(bcf_traj)
        assert f.peak > 1.2
        assert f.repolarized
        # published epicardial APD90 ~ 270 ms
        assert 200 < f.apd90 < 350

    def test_spike_and_dome(self, bcf_traj):
        """Epicardial BCF reproduces the dome that FK cannot."""
        f = ap_features(bcf_traj)
        assert f.has_dome
        assert f.notch_depth is not None and f.notch_depth > 0.1
        assert f.dome_peak is not None and f.dome_peak > 1.0

    def test_tau_so1_shortens_apd(self):
        """Small tau_so1 -> strong outward current -> short APD
        (the tachycardia-inducing regime identified in [37])."""
        apds = []
        for tau in (10.0, BCF_EPI_PARAMS["tau_so1"], 60.0):
            traj = action_potential(
                bueno_cherry_fenton({"tau_so1": tau}), u0=0.4, t_final=800.0
            )
            apds.append(ap_features(traj).apd90)
        assert apds[0] < apds[1] < apds[2]

    def test_extreme_tau_so1_blocks_repolarization_within_window(self):
        traj = action_potential(
            bueno_cherry_fenton({"tau_so1": 200.0}), u0=0.4, t_final=400.0
        )
        f = ap_features(traj)
        # at 400 ms the cell has not repolarized (fibrillation-prone)
        assert not f.repolarized

    def test_hybrid_mode_structure(self):
        h = bcf_hybrid()
        assert set(h.mode_names) == {"m1", "m2", "m3", "m4"}
        assert len(h.jumps) == 6

    def test_hybrid_simulation(self):
        h = bcf_hybrid()
        traj = simulate_hybrid(
            h, {"u": 0.4, "v": 1.0, "w": 1.0, "s": 0.0}, t_final=400.0,
            max_jumps=12, max_step=1.0,
        )
        us = traj.flatten().column("u")
        assert us.max() > 1.2
        assert traj.mode_path()[0] == "m4"


class TestAPFeatures:
    def test_no_ap_features(self):
        import numpy as np

        from repro.odes import Trajectory

        ts = np.linspace(0, 10, 50)
        traj = Trajectory(ts, np.zeros((50, 1)), ["u"])
        f = ap_features(traj)
        assert not f.has_dome and f.peak == 0.0

    def test_synthetic_dome_detected(self):
        import numpy as np

        from repro.odes import Trajectory

        # spike to 1.0, notch to 0.6, dome to 0.9, repolarize
        ts = np.linspace(0, 100, 401)

        def u(t):
            if t < 5:
                return t / 5.0
            if t < 20:
                return 1.0 - 0.4 * (t - 5) / 15.0
            if t < 40:
                return 0.6 + 0.3 * (t - 20) / 20.0
            return max(0.0, 0.9 - 0.9 * (t - 40) / 30.0)

        traj = Trajectory(ts, np.array([[u(t)] for t in ts]), ["u"])
        f = ap_features(traj)
        assert f.has_dome
        assert f.apd90 is not None

    def test_monotone_repolarization_no_dome(self):
        import numpy as np

        from repro.odes import Trajectory

        ts = np.linspace(0, 100, 401)
        us = np.maximum(0.0, 1.0 - ts / 50.0)
        traj = Trajectory(ts, us.reshape(-1, 1), ["u"])
        assert not ap_features(traj).has_dome
