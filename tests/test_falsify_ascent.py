"""Tests for barrier falsification (falsify_ascent)."""

import pytest

from repro.apps import falsify_ascent
from repro.expr import var
from repro.odes import ODESystem

x, y = var("x"), var("y")


@pytest.fixture
def decay():
    return ODESystem({"x": -var("k") * x}, {"k": 1.0})


class TestAscentBarrier:
    def test_pure_decay_cannot_ascend(self, decay):
        v = falsify_ascent(
            decay, "x", 0.2, 0.5, {"x": (0.0, 1.0)}, {"k": (0.5, 2.0)}
        )
        assert v.rejected and v.conclusive

    def test_growth_can_ascend(self):
        sys_ = ODESystem({"x": var("r") * x}, {"r": 1.0})
        v = falsify_ascent(
            sys_, "x", 0.2, 0.5, {"x": (0.0, 1.0)}, {"r": (0.5, 2.0)}
        )
        assert not v.rejected and v.conclusive
        assert v.witness_params is not None

    def test_descent_direction(self, decay):
        # decay certainly CAN descend
        v = falsify_ascent(
            decay, "x", 0.5, 0.2, {"x": (0.0, 1.0)}, {"k": (0.5, 2.0)}
        )
        assert not v.rejected

    def test_growth_cannot_descend(self):
        sys_ = ODESystem({"x": var("r") * x}, {"r": 1.0})
        v = falsify_ascent(
            sys_, "x", 0.5, 0.2, {"x": (0.1, 1.0)}, {"r": (0.5, 2.0)}
        )
        assert v.rejected

    def test_coupled_state_bounds_matter(self):
        # dx/dt = y - x: ascent through [0.4, 0.6] possible iff y can
        # exceed x there
        sys_ = ODESystem({"x": y - x, "y": -y})
        blocked = falsify_ascent(
            sys_, "x", 0.4, 0.6, {"x": (0, 1), "y": (0.0, 0.3)}
        )
        assert blocked.rejected
        open_ = falsify_ascent(
            sys_, "x", 0.4, 0.6, {"x": (0, 1), "y": (0.0, 2.0)}
        )
        assert not open_.rejected

    def test_no_params_allowed(self):
        sys_ = ODESystem({"x": -x})
        v = falsify_ascent(sys_, "x", 0.2, 0.5, {"x": (0.0, 1.0)})
        assert v.rejected
        assert v.witness_params is None or v.witness_params == {}

    def test_validation_errors(self, decay):
        with pytest.raises(ValueError, match="unknown state"):
            falsify_ascent(decay, "zz", 0, 1, {"x": (0, 1)})
        with pytest.raises(ValueError, match="unknown parameters"):
            falsify_ascent(decay, "x", 0, 1, {"x": (0, 1)}, {"zz": (0, 1)})
        with pytest.raises(ValueError, match="bounds missing"):
            falsify_ascent(ODESystem({"x": y - x, "y": -y}), "x", 0, 1, {"x": (0, 1)})


class TestCardiacHeadline:
    def test_fk_dome_barrier_unsat(self):
        """The paper's Section IV-A falsification in its barrier form."""
        from repro.models import fenton_karma_hybrid

        fk_excited = fenton_karma_hybrid().mode_system("excited")
        v = falsify_ascent(
            fk_excited, "u", 0.75, 0.85,
            {"u": (0.0, 1.2), "v": (0.0, 0.01), "w": (0.0, 1.0)},
            {"tau_r": (10.0, 38.0), "tau_si": (28.0, 130.0)},
        )
        assert v.rejected and v.conclusive

    def test_fk_dome_possible_with_recovered_gate(self):
        """Sanity check on the encoding: if the fast gate were allowed
        to recover (v up to 1), the ascent WOULD be possible -- the
        falsification hinges on the gate invariant, as it should."""
        from repro.models import fenton_karma_hybrid

        fk_excited = fenton_karma_hybrid().mode_system("excited")
        v = falsify_ascent(
            fk_excited, "u", 0.75, 0.85,
            {"u": (0.0, 1.2), "v": (0.0, 1.0), "w": (0.0, 1.0)},
            {"tau_r": (10.0, 38.0), "tau_si": (28.0, 130.0)},
        )
        assert not v.rejected

    def test_bcf_dome_barrier_sat(self):
        from repro.models import bcf_hybrid

        bcf_m4 = bcf_hybrid().mode_system("m4")
        v = falsify_ascent(
            bcf_m4, "u", 1.0, 1.2,
            {"u": (0.0, 1.6), "v": (0.0, 1.0), "w": (0.0, 1.0), "s": (0.0, 1.0)},
            {"tau_so1": (25.0, 35.0)},
        )
        assert not v.rejected and v.conclusive
