"""Unit tests of the sharded work-stealing ICP driver."""

import numpy as np
import pytest

from repro.expr import var, variables
from repro.intervals import Box
from repro.logic import And, Or, in_range
from repro.service.backends import ThreadBackend
from repro.solver import DeltaSolver, Status, split_into_shards
from repro.solver.shard import (
    ShardPlan,
    _rebalance,
    _ShardQueue,
    box_sort_key,
    lex_key,
)

x, y = variables("x y")


def box2(xb=(-1.5, 1.5), yb=(-1.5, 1.5)) -> Box:
    return Box.from_bounds({"x": xb, "y": yb})


def annulus():
    phi = And(in_range(x ** 2 + y ** 2, 0.55, 0.95), in_range(x * y, -0.2, 0.6))
    return phi, box2()


def paving_tuples(parts):
    return [
        [tuple((k, b[k].lo, b[k].hi) for k in b.names) for b in part]
        for part in parts
    ]


class TestSplitIntoShards:
    def test_counts_and_disjoint_cover(self):
        b = box2()
        for n in (1, 2, 3, 4, 7, 8):
            pieces = split_into_shards(b, n)
            assert len(pieces) == n
            total = sum(p.volume() for p in pieces)
            assert total == pytest.approx(b.volume(), rel=1e-12)
            for p in pieces:
                assert b.contains_box(p)
            for i, p in enumerate(pieces):
                for q in pieces[i + 1:]:
                    inter = p.intersect(q)
                    assert inter.is_empty or inter.volume() == 0.0

    def test_deterministic_and_sorted(self):
        a = split_into_shards(box2(), 5)
        b = split_into_shards(box2(), 5)
        assert a == b
        assert [box_sort_key(p) for p in a] == sorted(box_sort_key(p) for p in a)

    def test_point_box_stops_early(self):
        b = Box.from_bounds({"x": (1.0, 1.0)})
        assert split_into_shards(b, 4) == [b]

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            split_into_shards(box2(), 0)


class TestLexTieBreak:
    """Regression: result ordering must not depend on heap pop order."""

    def test_paving_order_identical_across_frontier_sizes(self):
        # before the total tie-break + sorted outputs, the serialized
        # paving order depended on how many boxes each pass popped
        phi, b = annulus()
        pavings = [
            paving_tuples(
                DeltaSolver(delta=1e-3, frontier_size=k, max_boxes=200_000)
                .pave(phi, b, min_width=0.1)
            )
            for k in (1, 8, 64)
        ]
        assert pavings[0] == pavings[1] == pavings[2]

    def test_witness_independent_of_disjunct_order(self):
        # two symmetric certifiable cells: the lex-least certified box
        # must win no matter how the formula lists them
        cells = [in_range(x, 0.5, 0.9), in_range(x, -0.9, -0.5)]
        b = Box.from_bounds({"x": (-1.0, 1.0)})
        r1 = DeltaSolver(delta=0.01)._solve_impl(Or(*cells), b)
        r2 = DeltaSolver(delta=0.01)._solve_impl(Or(*reversed(cells)), b)
        assert r1.status is r2.status is Status.DELTA_SAT
        assert r1.witness_box == r2.witness_box

    def test_lex_key_totality(self):
        assert lex_key([0.0, 1.0], [1.0, 2.0]) < lex_key([0.0, 1.5], [1.0, 2.0])
        assert lex_key([0.0], [1.0]) < lex_key([0.0], [2.0])


class TestShardedConformance:
    @pytest.mark.parametrize("shards", [2, 3, 5])
    def test_paving_identical_to_serial(self, shards):
        phi, b = annulus()
        base = DeltaSolver(delta=1e-3, max_boxes=200_000)
        sharded = DeltaSolver(
            delta=1e-3, max_boxes=200_000, shards=shards, shard_backend="inline"
        )
        assert paving_tuples(base.pave(phi, b, min_width=0.1)) == paving_tuples(
            sharded.pave(phi, b, min_width=0.1)
        )

    @pytest.mark.parametrize("backend", ["inline", "thread"])
    def test_backend_does_not_change_results(self, backend):
        phi, b = annulus()
        solver = DeltaSolver(
            delta=1e-3, max_boxes=200_000, shards=3, shard_backend=backend
        )
        ref = DeltaSolver(
            delta=1e-3, max_boxes=200_000, shards=3, shard_backend="inline"
        )
        assert paving_tuples(solver.pave(phi, b, min_width=0.1)) == paving_tuples(
            ref.pave(phi, b, min_width=0.1)
        )
        r1 = solver._solve_impl(phi, b)
        r2 = ref._solve_impl(phi, b)
        assert r1.status is r2.status
        assert r1.witness_box == r2.witness_box

    @pytest.mark.slow
    def test_process_backend_round_trip(self):
        # formulas and box chunks must pickle to worker processes and
        # classify identically there
        phi, b = annulus()
        serial = DeltaSolver(delta=1e-3, max_boxes=200_000)
        sharded = DeltaSolver(
            delta=1e-3, max_boxes=200_000, shards=2, shard_backend="process"
        )
        assert paving_tuples(serial.pave(phi, b, min_width=0.1)) == paving_tuples(
            sharded.pave(phi, b, min_width=0.1)
        )

    def test_sharded_verdicts(self):
        b = Box.from_bounds({"x": (-2.0, 2.0)})
        sat = in_range(var("x") * var("x"), 0.5, 1.0)
        unsat = And(var("x") >= 1.5, var("x") * var("x") <= 1.0)
        for phi, expected in ((sat, Status.DELTA_SAT), (unsat, Status.UNSAT)):
            res = DeltaSolver(
                delta=1e-3, shards=3, shard_backend="inline"
            )._solve_impl(phi, b)
            assert res.status is expected

    def test_budget_exhaustion_returns_unknown_with_box(self):
        phi, b = annulus()
        res = DeltaSolver(
            delta=1e-9, max_boxes=12, shards=3, shard_backend="inline"
        )._solve_impl(phi, b)
        assert res.status is Status.UNKNOWN
        assert res.witness_box is not None
        assert res.stats.boxes_processed <= 12 + 3  # one epoch of slack

    def test_sharded_run_is_reproducible(self):
        phi, b = annulus()
        solver = DeltaSolver(
            delta=1e-3, max_boxes=200_000, shards=4, shard_backend="thread"
        )
        first = paving_tuples(solver.pave(phi, b, min_width=0.1))
        second = paving_tuples(solver.pave(phi, b, min_width=0.1))
        assert first == second


class TestWorkStealing:
    @staticmethod
    def _queue_with(widths):
        q = _ShardQueue()
        for i, w in enumerate(widths):
            q.push(np.array([float(i)]), np.array([float(i) + w]), 0)
        return q

    def test_rebalance_moves_widest_to_starved(self):
        rich = self._queue_with([8.0, 4.0, 2.0, 1.0, 0.5, 0.25])
        poor = _ShardQueue()
        moved = _rebalance([rich, poor])
        assert moved == 3
        assert len(rich) == 3 and len(poor) == 3
        # the starved shard received the widest pending boxes
        widths = sorted(-e[0] for e in poor.entries)
        assert widths == [2.0, 4.0, 8.0]

    def test_rebalance_noop_when_balanced(self):
        a = self._queue_with([1.0, 2.0])
        b = self._queue_with([1.5, 2.5])
        assert _rebalance([a, b]) == 0
        assert len(a) == len(b) == 2

    def test_rebalance_empty(self):
        assert _rebalance([_ShardQueue(), _ShardQueue()]) == 0

    def test_take_chunk_orders_widest_then_lex(self):
        q = _ShardQueue()
        q.push(np.array([1.0]), np.array([2.0]), 0)   # width 1, lex later
        q.push(np.array([0.0]), np.array([1.0]), 0)   # width 1, lex first
        q.push(np.array([0.0]), np.array([3.0]), 0)   # width 3
        chunk = q.take_chunk(3)
        assert [float(e[4][0] - e[3][0]) for e in chunk] == [3.0, 1.0, 1.0]
        assert float(chunk[1][3][0]) == 0.0  # lex tie-break among width-1


class TestShardPlan:
    def test_injected_backend_survives_for_reuse(self):
        # a caller-provided pool is NOT torn down between calls: the
        # CEGIS loop reuses one pool across its propose/verify solves
        phi, b = annulus()
        backend = ThreadBackend(workers=2)
        solver = DeltaSolver(
            delta=1e-3, max_boxes=50_000, shards=2, shard_backend=backend
        )
        first = paving_tuples(solver.pave(phi, b, min_width=0.3))
        assert backend._pool is not None  # still warm
        second = paving_tuples(solver.pave(phi, b, min_width=0.3))
        assert first == second
        backend.shutdown()

    def test_named_backend_is_owned_and_released(self):
        import repro.solver.shard as shard_mod

        created = []
        original = shard_mod.make_backend

        def recording(name, workers=None):
            backend = original(name, workers)
            created.append(backend)
            return backend

        phi, b = annulus()
        shard_mod.make_backend = recording
        try:
            DeltaSolver(
                delta=1e-3, max_boxes=50_000, shards=2, shard_backend="thread"
            ).pave(phi, b, min_width=0.3)
        finally:
            shard_mod.make_backend = original
        assert len(created) == 1
        assert created[0]._pool is None  # shutdown() ran inside the call

    def test_plan_shutdown_respects_ownership(self):
        backend = ThreadBackend(workers=1)
        backend.submit(lambda: None).result()
        ShardPlan(1, backend, owns_backend=False).shutdown()
        assert backend._pool is not None  # caller-owned: left running
        owned = ShardPlan(1, backend, owns_backend=True)
        owned.shutdown()
        owned.shutdown()  # idempotent
        assert backend._pool is None
