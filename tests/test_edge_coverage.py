"""Edge-case coverage across modules: quantifier judgments, enclosure
method agreement, BMC witness replay, and hybrid trajectory utilities."""

import math

import numpy as np
import pytest

from repro.expr import var, variables
from repro.hybrid import HybridAutomaton, Jump, Mode, simulate_hybrid
from repro.intervals import Box, Interval
from repro.logic import Exists, Forall
from repro.odes import ODESystem, flow_enclosure
from repro.solver import Certainty, eval_formula

x, y = variables("x y")


class TestQuantifierJudgments:
    def test_exists_true_everywhere_is_true(self):
        phi = Exists("y", 0, 1, x + y >= 0)
        assert eval_formula(phi, Box.from_bounds({"x": (5, 6)})) is Certainty.CERTAIN_TRUE

    def test_exists_false_everywhere_is_false(self):
        phi = Exists("y", 0, 1, x + y >= 100)
        assert eval_formula(phi, Box.from_bounds({"x": (0, 1)})) is Certainty.CERTAIN_FALSE

    def test_empty_domain_semantics(self):
        # forall over empty domain: vacuously true; exists: false
        f_all = Forall("y", 1, 0, x >= 100)
        f_ex = Exists("y", 1, 0, x >= -100)
        box = Box.from_bounds({"x": (0, 1)})
        assert eval_formula(f_all, box) is Certainty.CERTAIN_TRUE
        assert eval_formula(f_ex, box) is Certainty.CERTAIN_FALSE

    def test_unknown_propagates(self):
        phi = Forall("y", 0, 1, x - y >= 0)
        assert eval_formula(phi, Box.from_bounds({"x": (0.5, 1.5)})) is Certainty.UNKNOWN

    def test_nested_quantifiers(self):
        inner = Forall("y", 0, 1, x + y >= 0)
        assert eval_formula(inner, Box.from_bounds({"x": (1, 2)})) is Certainty.CERTAIN_TRUE


class TestEnclosureMethods:
    @pytest.fixture
    def decay(self):
        return ODESystem({"x": -var("x")})

    def test_methods_agree_on_inclusion(self, decay):
        start = Box.from_bounds({"x": (0.9, 1.1)})
        truth = [v * math.exp(-0.5) for v in (0.9, 1.0, 1.1)]
        for method in ("lognorm", "taylor"):
            tube = flow_enclosure(decay, start, 0.5, max_step=0.05, method=method)
            for t in truth:
                assert tube.final()["x"].contains(t), method

    def test_lognorm_contracts_on_stable(self, decay):
        start = Box.from_bounds({"x": (0.5, 1.5)})
        tube = flow_enclosure(decay, start, 3.0, max_step=0.1, method="lognorm")
        assert tube.final()["x"].width() < start["x"].width()

    def test_unknown_method_rejected(self, decay):
        with pytest.raises(ValueError, match="unknown enclosure method"):
            flow_enclosure(decay, Box.from_point({"x": 1.0}), 1.0, method="magic")

    def test_param_uncertainty_both_methods(self):
        sys_ = ODESystem({"x": -var("k") * var("x")}, {"k": 1.0})
        pb = Box.from_bounds({"k": (0.8, 1.2)})
        for method in ("lognorm", "taylor"):
            tube = flow_enclosure(
                sys_, Box.from_point({"x": 1.0}), 1.0, pb,
                max_step=0.05, method=method,
            )
            for k in (0.8, 1.0, 1.2):
                assert tube.final()["x"].contains(math.exp(-k)), method

    def test_tube_step_times_contiguous(self, decay):
        tube = flow_enclosure(decay, Box.from_point({"x": 1.0}), 1.0, max_step=0.3)
        for a, b in zip(tube.steps, tube.steps[1:]):
            assert a.time.hi == pytest.approx(b.time.lo)
        assert tube.steps[0].time.lo == 0.0
        assert tube.t_end == pytest.approx(1.0)


class TestBMCWitnessReplay:
    def test_witness_schedule_replays(self):
        """A delta-sat witness must be realizable by concrete simulation
        following the same mode path."""
        from repro.bmc import BMCChecker, BMCOptions, ReachSpec
        from repro.logic import in_range

        h = HybridAutomaton(
            ["x"],
            [Mode("a", {"x": -x}), Mode("b", {"x": x})],
            [Jump("a", "b", guard=(x <= 0.5))],
            "a",
            Box.from_bounds({"x": (1.0, 1.0)}),
        )
        spec = ReachSpec(goal=in_range(x, 0.8, 1.2), goal_mode="b",
                         max_jumps=1, time_bound=3.0)
        res = BMCChecker(h, BMCOptions(enclosure_step=0.1)).check(spec)
        assert res
        traj = simulate_hybrid(h, res.witness_x0, t_final=sum(res.witness_dwells) + 0.5)
        assert traj.mode_path() == res.mode_path()
        # goal realized near the witness end time
        t_end = sum(res.witness_dwells)
        v = traj.value("x", min(t_end, traj.t_end))
        assert 0.7 <= v <= 1.3


class TestHybridTrajectoryUtilities:
    @pytest.fixture
    def traj(self):
        h = HybridAutomaton(
            ["x"],
            [Mode("a", {"x": -x}), Mode("b", {"x": 0.0 * x})],
            [Jump("a", "b", guard=(x <= 0.5), reset={"x": 2.0})],
            "a",
            Box.from_bounds({"x": (1.0, 1.0)}),
        )
        return simulate_hybrid(h, {"x": 1.0}, t_final=3.0)

    def test_dwell_times_sum(self, traj):
        assert sum(traj.dwell_times()) == pytest.approx(traj.t_end - traj.t0)

    def test_mode_at_boundaries(self, traj):
        t_switch = traj.segments[0].t_end
        assert traj.mode_at(t_switch - 1e-6) == "a"
        assert traj.mode_at(traj.t_end) == "b"

    def test_reset_discontinuity_preserved_in_flatten(self, traj):
        flat = traj.flatten()
        xs = flat.column("x")
        # the reset to 2.0 appears
        assert xs.max() == pytest.approx(2.0, abs=1e-6)
        assert np.all(np.diff(flat.times) > 0)

    def test_out_of_range_queries(self, traj):
        with pytest.raises(ValueError):
            traj.at(traj.t_end + 1.0)
        with pytest.raises(ValueError):
            traj.mode_at(-1.0)


class TestIntervalMiscellany:
    def test_interval_iteration(self):
        lo, hi = Interval(1.0, 2.0)
        assert (lo, hi) == (1.0, 2.0)

    def test_repr_forms(self):
        assert "EMPTY" in repr(Interval.make(2, 1))
        assert "Interval" in repr(Interval(0, 1))
        assert "Box" in repr(Box.from_bounds({"x": (0, 1)}))

    def test_box_without_everything(self):
        b = Box.from_bounds({"x": (0, 1), "y": (0, 1)})
        assert len(b.without("x", "y")) == 0

    def test_clamp(self):
        assert Interval(-5, 5).clamp(0, 1) == Interval(0, 1)
