"""HTTP round-trips against the ``repro serve`` job service, bound to
an ephemeral port."""

import json
from urllib.error import HTTPError
from urllib.request import Request, urlopen

import pytest

from repro.api import Engine, ServiceServer


def smc_spec(name="http-smc"):
    return {
        "task": "smc",
        "name": name,
        "model": {"builtin": "logistic"},
        "query": {
            "phi": {"op": "F", "bound": 6.0, "arg": "x >= 5.0"},
            "init": {"x": [0.3, 0.7]},
            "horizon": 6.0,
            "method": "probability",
            "epsilon": 0.25,
            "alpha": 0.2,
        },
    }


def _get(url, timeout=30.0):
    with urlopen(url, timeout=timeout) as resp:
        return resp.status, json.load(resp)


def _post(url, payload, timeout=30.0):
    req = Request(
        url,
        data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    with urlopen(req, timeout=timeout) as resp:
        return resp.status, json.load(resp)


@pytest.fixture(scope="module")
def server():
    engine = Engine(seed=0, cache=True)
    with ServiceServer(engine, port=0) as srv:  # port 0 -> ephemeral
        yield srv
    engine.close()


class TestServe:
    def test_health(self, server):
        status, payload = _get(f"{server.url}/health")
        assert status == 200
        assert payload["ok"] is True
        assert "calibrate" in payload["tasks"]

    def test_submit_poll_report_roundtrip(self, server):
        status, sub = _post(f"{server.url}/run", smc_spec("roundtrip"))
        assert status == 202
        job_id = sub["job"]

        # ?wait= blocks server-side until the job is done
        status, job = _get(f"{server.url}/jobs/{job_id}?wait=60")
        assert status == 200
        assert job["state"] == "done"
        assert job["status"] == "estimated"
        assert job["report"]["metrics"]["probability"] == pytest.approx(1.0, abs=0.05)
        assert job["events"] > 0

        # identical resubmission is served from the result cache
        _, sub2 = _post(f"{server.url}/run", smc_spec("roundtrip"))
        _, job2 = _get(f"{server.url}/jobs/{sub2['job']}?wait=60")
        assert job2["from_cache"] is True
        assert job2["report"] == job["report"]

    def test_jobs_table_lists_submissions(self, server):
        _post(f"{server.url}/run", smc_spec("listed"))
        status, payload = _get(f"{server.url}/jobs")
        assert status == 200
        names = [j["name"] for j in payload["jobs"]]
        assert "listed" in names
        assert payload["cache"] is not None

    def test_cancel_endpoint(self, server):
        slow = {
            "task": "calibrate",
            "name": "http-slow",
            "model": {"builtin": "logistic"},
            "query": {
                "data": {"samples": [[2.0, {"x": 1.45}]], "tolerance": 1e-6},
                "param_ranges": {"r": [0.1, 2.0]},
                "x0": {"x": 0.5},
            },
            "solver": {
                "delta": 1e-9,
                "max_boxes": 200_000,
                "use_simulation_guidance": False,
            },
        }
        _, sub = _post(f"{server.url}/run", slow)
        status, cancelled = _post(f"{server.url}/jobs/{sub['job']}/cancel", {})
        assert status == 200
        _, job = _get(f"{server.url}/jobs/{sub['job']}?wait=30")
        assert job["state"] == "cancelled"
        assert job["status"] == "cancelled"

    def test_unknown_job_404(self, server):
        with pytest.raises(HTTPError) as err:
            _get(f"{server.url}/jobs/j999999")
        assert err.value.code == 404

    def test_bad_spec_400(self, server):
        with pytest.raises(HTTPError) as err:
            _post(f"{server.url}/run", {"model": {"builtin": "logistic"}})
        assert err.value.code == 400

    def test_string_spec_rejected_not_read_as_path(self, server):
        # a path-string spec must never reach TaskSpec.from_file: that
        # would let network clients read/execute server-local files
        with pytest.raises(HTTPError) as err:
            _post(f"{server.url}/run", {"spec": "/etc/hostname"})
        assert err.value.code == 400
        assert "path" in json.loads(err.value.read())["error"]

    def test_unknown_backend_rejected_at_the_door(self, server):
        # must 400 at submit time: pre-validation the bad name raised
        # later inside the scheduler pump and wedged dispatching
        with pytest.raises(HTTPError) as err:
            _post(
                f"{server.url}/run",
                {"spec": smc_spec("gpu-job"), "backend": "gpu"},
            )
        assert err.value.code == 400
        assert "backend" in json.loads(err.value.read())["error"]
        with pytest.raises(HTTPError) as err:
            _post(
                f"{server.url}/run",
                {"spec": smc_spec("bad-addr"), "backend": "cluster:nope"},
            )
        assert err.value.code == 400
        # the service still dispatches afterwards
        _, sub = _post(f"{server.url}/run", smc_spec("after-bad-backend"))
        _, job = _get(f"{server.url}/jobs/{sub['job']}?wait=60")
        assert job["state"] == "done"

    def test_backend_override_per_request(self, server):
        _, sub = _post(
            f"{server.url}/run",
            {"spec": smc_spec("inline-job"), "backend": "inline"},
        )
        _, job = _get(f"{server.url}/jobs/{sub['job']}")
        assert job["state"] in ("done",)  # inline finishes before the response

    def test_cli_jobs_command(self, server, capsys):
        from repro.api.cli import main

        assert main(["jobs", server.url]) == 0
        out = capsys.readouterr().out
        assert "id" in out and "state" in out
