"""Docstring coverage of the public surface (repro.api, repro.monitor,
repro.scenarios, repro.tools).

Mirrors the ruff pydocstyle D1 rules enabled in pyproject.toml
(D100-D104, D106) so the check also runs where ruff is not installed:
every module, public class, and public function/method in the two
packages must carry a docstring.
"""

import ast
import pathlib

import pytest

import repro

SRC = pathlib.Path(repro.__file__).resolve().parent
PACKAGES = (SRC / "api", SRC / "monitor", SRC / "scenarios", SRC / "tools")


def _public_surface():
    for package in PACKAGES:
        for path in sorted(package.rglob("*.py")):
            tree = ast.parse(path.read_text(encoding="utf-8"))
            yield path, None, tree

            def walk(node, prefix):
                for child in ast.iter_child_nodes(node):
                    if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        if not child.name.startswith("_"):
                            yield path, f"{prefix}{child.name}", child
                    elif isinstance(child, ast.ClassDef):
                        if not child.name.startswith("_"):
                            yield path, f"class {prefix}{child.name}", child
                        yield from walk(child, f"{prefix}{child.name}.")

            yield from walk(tree, "")


@pytest.mark.parametrize(
    "path,name,node",
    [
        pytest.param(p, n, node, id=f"{p.parent.name}/{p.name}:{n or 'module'}")
        for p, n, node in _public_surface()
    ],
)
def test_has_docstring(path, name, node):
    label = name or "module docstring"
    assert ast.get_docstring(node), f"{path}: missing docstring for {label}"
