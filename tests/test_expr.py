"""Unit tests for the expression DSL (AST, eval, diff, subs)."""

import math

import pytest

from repro.expr import (
    Binary,
    Const,
    Unary,
    Var,
    abs_,
    as_expr,
    cos,
    exp,
    hill,
    log,
    maximum,
    minimum,
    mm,
    sigmoid,
    sin,
    sqrt,
    square,
    tanh,
    var,
    variables,
)
from repro.intervals import Interval

x, y = variables("x y")


class TestConstruction:
    def test_var(self):
        assert var("a").name == "a"
        with pytest.raises(ValueError):
            Var("")

    def test_as_expr(self):
        assert isinstance(as_expr(3), Const)
        assert as_expr(x) is x
        with pytest.raises(TypeError):
            as_expr("nope")

    def test_operators_build_tree(self):
        e = x + y * 2 - 1
        assert isinstance(e, Binary)
        assert e.variables() == {"x", "y"}

    def test_constant_folding(self):
        e = as_expr(2) + as_expr(3)
        assert isinstance(e, Const) and e.value == 5.0

    def test_unknown_ops_rejected(self):
        with pytest.raises(ValueError):
            Unary("bogus", x)
        with pytest.raises(ValueError):
            Binary("bogus", x, y)

    def test_structural_equality(self):
        assert x + 1 == x + 1
        assert x + 1 != x + 2
        assert hash(x * y) == hash(x * y)


class TestEval:
    def test_arith(self):
        e = (x + 2) * y - x / y
        assert e.eval({"x": 1.0, "y": 2.0}) == pytest.approx(5.5)

    def test_pow(self):
        assert (x ** 3).eval({"x": 2.0}) == 8.0
        assert (2 ** x).eval({"x": 3.0}) == 8.0

    def test_unary_functions(self):
        env = {"x": 0.5}
        assert exp(x).eval(env) == pytest.approx(math.exp(0.5))
        assert log(x).eval(env) == pytest.approx(math.log(0.5))
        assert sin(x).eval(env) == pytest.approx(math.sin(0.5))
        assert cos(x).eval(env) == pytest.approx(math.cos(0.5))
        assert tanh(x).eval(env) == pytest.approx(math.tanh(0.5))
        assert sqrt(x).eval(env) == pytest.approx(math.sqrt(0.5))
        assert abs_(-x).eval(env) == pytest.approx(0.5)

    def test_sigmoid_stable(self):
        assert sigmoid(x).eval({"x": 1000.0}) == pytest.approx(1.0)
        assert sigmoid(x).eval({"x": -1000.0}) == pytest.approx(0.0)
        assert sigmoid(x).eval({"x": 0.0}) == pytest.approx(0.5)

    def test_min_max(self):
        assert minimum(x, y).eval({"x": 1, "y": 2}) == 1
        assert maximum(x, y).eval({"x": 1, "y": 2}) == 2

    def test_unbound_raises(self):
        with pytest.raises(KeyError, match="not bound"):
            x.eval({})

    def test_division_by_zero_raises(self):
        with pytest.raises(ArithmeticError):
            (x / y).eval({"x": 1.0, "y": 0.0})

    def test_log_domain_raises(self):
        with pytest.raises(ArithmeticError):
            log(x).eval({"x": -1.0})


class TestIntervalEval:
    def test_var_lookup(self):
        env = {"x": Interval(1, 2)}
        assert x.eval_interval(env) == Interval(1, 2)

    def test_arith_enclosure(self):
        e = x * x - 2 * x
        iv = e.eval_interval({"x": Interval(0, 2)})
        # true range over [0,2] is [-1, 0]; enclosure must contain it
        assert iv.contains(-1.0) and iv.contains(0.0)

    def test_pow_point_exponent(self):
        iv = (x ** 2).eval_interval({"x": Interval(-1, 2)})
        assert iv.contains(0.0) and iv.contains(4.0) and not iv.contains(-0.5)

    def test_float_in_env_coerced(self):
        assert x.eval_interval({"x": 1.5}).contains(1.5)


class TestDiff:
    def test_polynomial(self):
        e = x ** 3 + 2 * x
        d = e.diff("x").simplify()
        assert d.eval({"x": 2.0}) == pytest.approx(14.0)

    def test_product_rule(self):
        d = (x * y).diff("x").simplify()
        assert d.eval({"x": 5.0, "y": 3.0}) == pytest.approx(3.0)

    def test_quotient_rule(self):
        d = (x / y).diff("y")
        assert d.eval({"x": 1.0, "y": 2.0}) == pytest.approx(-0.25)

    def test_chain_rule_exp(self):
        d = exp(x * x).diff("x")
        assert d.eval({"x": 1.0}) == pytest.approx(2.0 * math.e)

    @pytest.mark.parametrize(
        "fn,dfn",
        [
            (sin, lambda v: math.cos(v)),
            (cos, lambda v: -math.sin(v)),
            (tanh, lambda v: 1 - math.tanh(v) ** 2),
            (log, lambda v: 1 / v),
            (sqrt, lambda v: 0.5 / math.sqrt(v)),
        ],
    )
    def test_unary_derivatives(self, fn, dfn):
        d = fn(x).diff("x")
        assert d.eval({"x": 0.7}) == pytest.approx(dfn(0.7), rel=1e-10)

    def test_sigmoid_derivative(self):
        d = sigmoid(x).diff("x")
        s = sigmoid(x).eval({"x": 0.3})
        assert d.eval({"x": 0.3}) == pytest.approx(s * (1 - s))

    def test_general_power(self):
        d = (x ** y).diff("x")
        assert d.eval({"x": 2.0, "y": 3.0}) == pytest.approx(12.0)

    def test_gradient(self):
        g = (x * x + y).gradient(["x", "y"])
        assert g["x"].eval({"x": 3.0, "y": 0.0}) == 6.0
        assert g["y"].eval({"x": 3.0, "y": 0.0}) == 1.0

    def test_min_not_differentiable(self):
        with pytest.raises(NotImplementedError):
            minimum(x, y).diff("x")


class TestSubs:
    def test_substitute_value(self):
        e = (x + y).subs({"x": 3})
        assert e.eval({"y": 1.0}) == 4.0

    def test_substitute_expr(self):
        e = (x * x).subs({"x": y + 1})
        assert e.eval({"y": 2.0}) == 9.0

    def test_variables_after_subs(self):
        assert (x + y).subs({"x": 1}).variables() == {"y"}


class TestDomainHelpers:
    def test_hill(self):
        h = hill(x, 2.0, 4)
        assert h.eval({"x": 2.0}) == pytest.approx(0.5)
        assert h.eval({"x": 100.0}) == pytest.approx(1.0, abs=1e-5)

    def test_mm(self):
        r = mm(x, 10.0, 2.0)
        assert r.eval({"x": 2.0}) == pytest.approx(5.0)

    def test_square(self):
        assert square(x).eval({"x": 3.0}) == 9.0

    def test_str_roundtrippable_tokens(self):
        s = str((x + 1) * exp(y))
        assert "x" in s and "exp" in s
