"""Hypothesis property tests: the inclusion property of interval arithmetic.

Soundness of the whole delta-decision stack rests on these invariants:
for x in X and y in Y, op(x, y) must lie in op(X, Y).
"""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.intervals import Interval

FINITE = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)


@st.composite
def interval_with_member(draw):
    """An interval together with a point guaranteed to lie inside it."""
    a = draw(FINITE)
    b = draw(FINITE)
    lo, hi = min(a, b), max(a, b)
    t = draw(st.floats(min_value=0.0, max_value=1.0, allow_nan=False))
    x = lo + t * (hi - lo)
    x = min(max(x, lo), hi)
    return Interval(lo, hi), x


@given(interval_with_member(), interval_with_member())
@settings(max_examples=300)
def test_add_inclusion(ab, cd):
    (X, x), (Y, y) = ab, cd
    assert (X + Y).contains(x + y)


@given(interval_with_member(), interval_with_member())
@settings(max_examples=300)
def test_sub_inclusion(ab, cd):
    (X, x), (Y, y) = ab, cd
    assert (X - Y).contains(x - y)


@given(interval_with_member(), interval_with_member())
@settings(max_examples=300)
def test_mul_inclusion(ab, cd):
    (X, x), (Y, y) = ab, cd
    assert (X * Y).contains(x * y)


@given(interval_with_member(), interval_with_member())
@settings(max_examples=300)
def test_div_inclusion(ab, cd):
    (X, x), (Y, y) = ab, cd
    if y == 0.0:
        return
    q = x / y
    assert (X / Y).contains(q)


@given(interval_with_member())
@settings(max_examples=300)
def test_neg_abs_sqr_inclusion(ab):
    X, x = ab
    assert (-X).contains(-x)
    assert abs(X).contains(abs(x))
    assert X.sqr().contains(x * x)


@given(interval_with_member(), st.integers(min_value=0, max_value=6))
@settings(max_examples=300)
def test_pow_inclusion(ab, n):
    X, x = ab
    v = x ** n
    if math.isfinite(v):
        assert X.pow(n).contains(v)


@given(interval_with_member())
@settings(max_examples=300)
def test_exp_inclusion(ab):
    X, x = ab
    try:
        v = math.exp(x)
    except OverflowError:
        return
    assert X.exp().contains(v)


@given(interval_with_member())
@settings(max_examples=300)
def test_log_inclusion(ab):
    X, x = ab
    if x <= 0.0:
        return
    assert X.log().contains(math.log(x))


@given(interval_with_member())
@settings(max_examples=300)
def test_sqrt_inclusion(ab):
    X, x = ab
    if x < 0.0:
        return
    assert X.sqrt().contains(math.sqrt(x))


@given(interval_with_member())
@settings(max_examples=300)
def test_trig_inclusion(ab):
    X, x = ab
    assert X.sin().contains(math.sin(x))
    assert X.cos().contains(math.cos(x))
    assert X.tanh().contains(math.tanh(x))


@given(interval_with_member())
@settings(max_examples=200)
def test_sigmoid_inclusion(ab):
    X, x = ab
    sig = 1.0 / (1.0 + math.exp(-x)) if x >= 0 else math.exp(x) / (1.0 + math.exp(x))
    assert X.sigmoid().contains(sig)


@given(interval_with_member())
@settings(max_examples=200)
def test_split_covers(ab):
    X, x = ab
    left, right = X.split()
    assert left.contains(x) or right.contains(x)
    assert left.hull(right) == X


@given(interval_with_member(), interval_with_member())
@settings(max_examples=200)
def test_intersection_exactness(ab, cd):
    (X, x), (Y, _) = ab, cd
    inter = X.intersect(Y)
    if Y.contains(x):
        assert inter.contains(x)
    if not inter.is_empty:
        assert X.contains_interval(inter) and Y.contains_interval(inter)


@given(interval_with_member(), interval_with_member())
@settings(max_examples=200)
def test_min_max_inclusion(ab, cd):
    (X, x), (Y, y) = ab, cd
    assert X.min_with(Y).contains(min(x, y))
    assert X.max_with(Y).contains(max(x, y))
