"""Tests for the DBN approximation of ODE dynamics (paper Sec. V
future work, prototype of the technique in [5])."""

import numpy as np
import pytest

from repro.expr import var
from repro.odes import ODESystem, rk4
from repro.smc import Discretization, InitialDistribution, build_dbn


@pytest.fixture(scope="module")
def decay_dbn():
    sys_ = ODESystem({"x": -var("x")})
    init = InitialDistribution({"x": (0.8, 1.0)})
    return build_dbn(
        sys_,
        {"x": (0.0, 1.2)},
        init.sample,
        dt=0.2,
        levels=6,
        n_samples=400,
        horizon_steps=20,
        seed=1,
    )


class TestDiscretization:
    def test_uniform_levels(self):
        d = Discretization.uniform({"x": (0.0, 1.0)}, 4)
        assert d.n_levels("x") == 4
        assert d.level("x", 0.1) == 0
        assert d.level("x", 0.30) == 1
        assert d.level("x", 0.99) == 3

    def test_clamping(self):
        d = Discretization.uniform({"x": (0.0, 1.0)}, 4)
        assert d.level("x", -5.0) == 0
        assert d.level("x", 5.0) == 3

    def test_validation(self):
        with pytest.raises(ValueError):
            Discretization.uniform({"x": (0.0, 1.0)}, 1)
        with pytest.raises(ValueError):
            Discretization.uniform({"x": (1.0, 0.0)}, 4)


class TestStructure:
    def test_parents_from_vector_field(self):
        sys_ = ODESystem({"x": var("y"), "y": -var("y")})
        init = InitialDistribution({"x": (0, 1), "y": (0, 1)})
        dbn = build_dbn(sys_, {"x": (-1, 3), "y": (-1, 2)}, init.sample,
                        n_samples=50, horizon_steps=5, seed=0)
        assert dbn.parents["x"] == ["x", "y"]  # dx/dt mentions y
        assert dbn.parents["y"] == ["y"]       # dy/dt self-contained

    def test_missing_range_rejected(self):
        sys_ = ODESystem({"x": -var("x")})
        with pytest.raises(ValueError, match="ranges missing"):
            build_dbn(sys_, {}, lambda rng: {"x": 1.0}, n_samples=5)


class TestInference:
    def test_decay_mass_moves_down(self, decay_dbn):
        # start concentrated in the highest *trained* cell (the very top
        # cell [1.0, 1.2] is never visited from x0 in [0.8, 1.0])
        n = decay_dbn.disc.n_levels("x")
        top = decay_dbn.disc.level("x", 0.9)
        init = {"x": [1.0 if i == top else 0.0 for i in range(n)]}
        m0 = decay_dbn.marginal_after(init, 0)
        m10 = decay_dbn.marginal_after(init, 10)
        mean0 = float(np.dot(m0["x"], np.arange(n)))
        mean10 = float(np.dot(m10["x"], np.arange(n)))
        assert mean10 < mean0 - 1.5  # mass shifted down substantially

    def test_probability_query_matches_ode(self, decay_dbn):
        """P(x below 0.4 after 1.6 time units) should be ~1 for decay
        from [0.8, 1.0] (true value x(1.6) ~ 0.18-0.2)."""
        n = decay_dbn.disc.n_levels("x")
        # initial marginal: uniform over the cells covering [0.8, 1.0]
        init_vec = np.zeros(n)
        lo_cell = decay_dbn.disc.level("x", 0.8)
        hi_cell = decay_dbn.disc.level("x", 0.99)
        init_vec[lo_cell : hi_cell + 1] = 1.0
        threshold_cell = decay_dbn.disc.level("x", 0.4)
        p = decay_dbn.probability(
            {"x": init_vec}, "x", (0, threshold_cell), steps=8
        )
        assert p > 0.9

    def test_marginals_normalized(self, decay_dbn):
        n = decay_dbn.disc.n_levels("x")
        init = {"x": np.ones(n)}
        out = decay_dbn.marginal_after(init, 5)
        assert out["x"].sum() == pytest.approx(1.0)

    def test_bad_marginal_rejected(self, decay_dbn):
        with pytest.raises(ValueError, match="wrong length"):
            decay_dbn.marginal_after({"x": [1.0, 0.0]}, 1)
        n = decay_dbn.disc.n_levels("x")
        with pytest.raises(ValueError, match="sums to zero"):
            decay_dbn.marginal_after({"x": [0.0] * n}, 1)

    def test_dbn_vs_monte_carlo(self):
        """DBN filtering approximates direct Monte-Carlo estimates."""
        import random

        sys_ = ODESystem({"x": -var("x")})
        init = InitialDistribution({"x": (0.6, 1.0)})
        dbn = build_dbn(sys_, {"x": (0.0, 1.2)}, init.sample,
                        dt=0.2, levels=8, n_samples=600, horizon_steps=15,
                        seed=3)
        n = dbn.disc.n_levels("x")
        init_vec = np.zeros(n)
        for c in range(dbn.disc.level("x", 0.6), dbn.disc.level("x", 0.99) + 1):
            init_vec[c] = 1.0
        cell = dbn.disc.level("x", 0.3)
        p_dbn = dbn.probability({"x": init_vec}, "x", (0, cell), steps=6)

        rng = random.Random(9)
        hits = 0
        trials = 400
        for _ in range(trials):
            x0 = init.sample(rng)
            traj = rk4(sys_, x0, (0.0, 1.2), dt=0.05)
            # level() maps values to cells; threshold uses the cell edge
            if dbn.disc.level("x", traj.value("x", 1.2)) <= cell:
                hits += 1
        p_mc = hits / trials
        assert abs(p_dbn - p_mc) < 0.25  # coarse approximation contract
