"""Bulk SBML ingestion: bounds inference, skip-with-reason, CLI.

Regression tests for the bounds-inference edge cases the ingestion
pipeline must survive (satellite of the corpus PR): missing/ambiguous
initial values, non-finite and non-positive numbers, zero-width
inferred bounds and oversized models all surface as parse errors or
skip rows — never as crashes or silently wrong entries.  Plus smoke
tests for the ``repro scenarios ingest/generate/coverage`` CLI.
"""

import json

import pytest

from repro.io.sbml import SBMLError, parse_sbml
from repro.scenarios.ingest import (
    IngestSkip,
    infer_bounds,
    ingest_dir,
    ingest_file,
    triage,
)


def _sbml(species: str, params: str = "", compartment: str = "") -> str:
    """A minimal one-reaction SBML document with injectable sections."""
    comp = compartment or '<compartment id="cell" size="1"/>'
    return f"""<?xml version="1.0" encoding="UTF-8"?>
<sbml xmlns="http://www.sbml.org/sbml/level3/version2/core" level="3" version="2">
  <model id="m">
    <listOfCompartments>{comp}</listOfCompartments>
    <listOfSpecies>{species}</listOfSpecies>
    <listOfParameters>{params}</listOfParameters>
    <listOfReactions>
      <reaction id="r1" reversible="false">
        <listOfReactants>
          <speciesReference species="a" stoichiometry="1"/>
        </listOfReactants>
        <listOfProducts>
          <speciesReference species="b" stoichiometry="1"/>
        </listOfProducts>
        <kineticLaw>
          <math xmlns="http://www.w3.org/1998/Math/MathML">
            <apply><times/><ci>k</ci><ci>a</ci></apply>
          </math>
        </kineticLaw>
      </reaction>
    </listOfReactions>
  </model>
</sbml>
"""


SPECIES_OK = (
    '<species id="a" compartment="cell" initialConcentration="2.0"/>'
    '<species id="b" compartment="cell" initialConcentration="0.5"/>'
)
PARAM_OK = '<parameter id="k" value="0.8"/>'


# ----------------------------------------------------------------------
# parser hardening (repro.io.sbml)
# ----------------------------------------------------------------------


class TestParserHardening:
    """Malformed numeric inputs raise SBMLError, not ValueError/garbage."""

    def test_well_formed_document_parses(self):
        model = parse_sbml(_sbml(SPECIES_OK, PARAM_OK))
        assert model.initial == {"a": 2.0, "b": 0.5}
        assert model.system.params == {"k": 0.8}

    def test_missing_initial_defaults_to_zero(self):
        species = (
            '<species id="a" compartment="cell" initialConcentration="2.0"/>'
            '<species id="b" compartment="cell"/>'
        )
        model = parse_sbml(_sbml(species, PARAM_OK))
        assert model.initial["b"] == 0.0

    def test_both_initial_units_is_ambiguous(self):
        species = (
            '<species id="a" compartment="cell" initialConcentration="2.0"'
            ' initialAmount="4.0"/>'
            '<species id="b" compartment="cell" initialConcentration="0.5"/>'
        )
        with pytest.raises(SBMLError, match="units are ambiguous"):
            parse_sbml(_sbml(species, PARAM_OK))

    def test_negative_initial_rejected(self):
        species = SPECIES_OK.replace('"0.5"', '"-0.5"')
        with pytest.raises(SBMLError, match="negative initial"):
            parse_sbml(_sbml(species, PARAM_OK))

    @pytest.mark.parametrize("bad", ["nan", "inf", "-inf", "banana"])
    def test_non_finite_initial_rejected(self, bad):
        species = SPECIES_OK.replace('"0.5"', f'"{bad}"')
        with pytest.raises(SBMLError, match="initial value"):
            parse_sbml(_sbml(species, PARAM_OK))

    @pytest.mark.parametrize("size", ["0", "-2", "nan", "x"])
    def test_bad_compartment_size_rejected(self, size):
        comp = f'<compartment id="cell" size="{size}"/>'
        with pytest.raises(SBMLError, match="compartment"):
            parse_sbml(_sbml(SPECIES_OK, PARAM_OK, compartment=comp))

    @pytest.mark.parametrize("value", ["nan", "inf", ""])
    def test_non_finite_parameter_rejected(self, value):
        with pytest.raises(SBMLError, match="parameter"):
            parse_sbml(_sbml(SPECIES_OK, f'<parameter id="k" value="{value}"/>'))

    def test_non_finite_stoichiometry_rejected(self):
        text = _sbml(SPECIES_OK, PARAM_OK).replace(
            'stoichiometry="1"', 'stoichiometry="inf"', 1
        )
        with pytest.raises(SBMLError, match="stoichiometry"):
            parse_sbml(text)


# ----------------------------------------------------------------------
# bounds inference
# ----------------------------------------------------------------------


class TestInferBounds:
    def test_conservation_caps_and_param_ranges(self):
        model = parse_sbml(_sbml(SPECIES_OK, PARAM_OK))
        bounds, ranges = infer_bounds(model)
        # cap = max(2*x0, total initial mass); total = 2.5
        assert bounds == {"a": [0.0, 4.0], "b": [0.0, 2.5]}
        assert ranges == {"k": [0.4, 1.2]}

    def test_negative_parameter_range_is_sorted(self):
        model = parse_sbml(_sbml(SPECIES_OK, '<parameter id="k" value="-2.0"/>'))
        _, ranges = infer_bounds(model)
        assert ranges["k"] == [-3.0, -1.0]

    def test_zero_parameter_dropped(self):
        model = parse_sbml(_sbml(SPECIES_OK, '<parameter id="k" value="0"/>'))
        _, ranges = infer_bounds(model)
        assert ranges == {}

    def test_all_zero_initials_is_zero_width_skip(self):
        species = (
            '<species id="a" compartment="cell" initialConcentration="0"/>'
            '<species id="b" compartment="cell"/>'
        )
        model = parse_sbml(_sbml(species, PARAM_OK))
        with pytest.raises(IngestSkip, match="zero-width"):
            infer_bounds(model)


# ----------------------------------------------------------------------
# file/directory ingestion
# ----------------------------------------------------------------------


class TestIngestion:
    def _write(self, tmp_path, name, text):
        path = tmp_path / name
        path.write_text(text)
        return path

    def test_ingest_file_emits_three_templates(self, tmp_path):
        path = self._write(tmp_path, "toy.xml", _sbml(SPECIES_OK, PARAM_OK))
        entries = ingest_file(path)
        assert [s.name for s in entries] == [
            "sbml-toy-rise", "sbml-toy-settle", "sbml-toy-smc",
        ]
        assert all(s.family == "sbml" for s in entries)
        assert all(s.expected is None for s in entries)

    def test_oversized_model_skips(self, tmp_path):
        species = "".join(
            f'<species id="s{i}" compartment="cell" initialConcentration="1"/>'
            for i in range(9)
        )
        text = _sbml(species, PARAM_OK).replace(
            'species="a"', 'species="s0"'
        ).replace('species="b"', 'species="s1"')
        text = text.replace("<ci>a</ci>", "<ci>s0</ci>")
        path = self._write(tmp_path, "big.xml", text)
        with pytest.raises(IngestSkip, match="corpus cap"):
            ingest_file(path)

    def test_boundary_only_model_skips(self, tmp_path):
        species = SPECIES_OK.replace(
            "/>", ' boundaryCondition="true"/>'
        )
        path = self._write(tmp_path, "frozen.xml", _sbml(species, PARAM_OK))
        with pytest.raises(IngestSkip, match="no dynamic species"):
            ingest_file(path)

    def test_ingest_dir_records_skip_rows(self, tmp_path):
        self._write(tmp_path, "good.xml", _sbml(SPECIES_OK, PARAM_OK))
        self._write(tmp_path, "good.sbml", _sbml(SPECIES_OK, PARAM_OK))
        self._write(tmp_path, "broken.xml", "<not-sbml/>")
        zero = _sbml(
            '<species id="a" compartment="cell"/>'
            '<species id="b" compartment="cell"/>',
            PARAM_OK,
        )
        self._write(tmp_path, "zero.xml", zero)
        result = ingest_dir(tmp_path)
        assert result.files == 4
        assert [s.name for s in result.entries] == [
            "sbml-good-rise", "sbml-good-settle", "sbml-good-smc",
        ]
        reasons = dict(result.skipped)
        # *.sbml sorts before *.xml, so the .xml twin is the duplicate
        assert reasons["good.xml"] == "duplicate model stem"
        assert "expected <sbml>" in reasons["broken.xml"]
        assert "zero-width" in reasons["zero.xml"]
        assert "3 entries from 1/4 files (3 skipped)" == result.summary()

    def test_ingest_dir_rejects_non_directory(self, tmp_path):
        with pytest.raises(ValueError, match="not a directory"):
            ingest_dir(tmp_path / "missing")

    def test_triage_fills_expected_verdicts(self, tmp_path):
        path = self._write(tmp_path, "toy.xml", _sbml(SPECIES_OK, PARAM_OK))
        triaged = triage(ingest_file(path))
        assert all(isinstance(s.expected, str) and s.expected for s in triaged)


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------


class TestCli:
    def test_ingest_writes_entries_json(self, tmp_path, capsys):
        from repro.api.cli import main

        (tmp_path / "toy.xml").write_text(_sbml(SPECIES_OK, PARAM_OK))
        out = tmp_path / "entries.json"
        assert main([
            "scenarios", "ingest", str(tmp_path), "--out", str(out),
        ]) == 0
        assert "3 entries from 1/1 files" in capsys.readouterr().out
        names = [e["name"] for e in json.loads(out.read_text())]
        assert names == ["sbml-toy-rise", "sbml-toy-settle", "sbml-toy-smc"]

    def test_ingest_empty_dir_fails(self, tmp_path, capsys):
        from repro.api.cli import main

        assert main(["scenarios", "ingest", str(tmp_path)]) == 1
        capsys.readouterr()

    def test_generate_json_and_list(self, tmp_path, capsys):
        from repro.api.cli import main

        assert main([
            "scenarios", "generate", "mass-action",
            "--seed", "5", "--count", "2", "--json",
        ]) == 0
        entries = json.loads(capsys.readouterr().out)
        assert [e["name"] for e in entries] == [
            "ma-s5-00-drain", "ma-s5-00-smc",
        ]
        assert main(["scenarios", "generate", "--list"]) == 0
        listing = capsys.readouterr().out
        for family in ("mass-action", "switched", "cardiac-perturbed"):
            assert family in listing

    def test_generate_unknown_family_errors(self, capsys):
        from repro.api.cli import main

        assert main(["scenarios", "generate", "nope"]) == 2
        assert "unknown scenario family" in capsys.readouterr().err

    def test_coverage_check_passes_and_writes_report(self, tmp_path, capsys):
        from repro.api.cli import main

        out = tmp_path / "coverage.json"
        assert main([
            "scenarios", "coverage", "--check", "--out", str(out),
        ]) == 0
        assert "falsify" in capsys.readouterr().out
        report = json.loads(out.read_text())
        assert report["empty_supported"] == []
        assert report["total"] >= 150
