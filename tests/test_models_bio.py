"""Tests for prostate IAS, TBI radiation, mass-action and toy models."""

import pytest

from repro.hybrid import simulate_hybrid
from repro.models import (
    PATIENT_PROFILES,
    bouncing_ball,
    damped_oscillator,
    erk_cascade,
    find_equilibrium,
    ias_model,
    ias_on_treatment_ode,
    kinetic_proofreading,
    logistic,
    lotka_volterra,
    psa,
    receptor_ligand,
    sir,
    tbi_model,
    thermostat,
    van_der_pol,
)
from repro.odes import rk45, simulate


class TestProstateIAS:
    def test_responder_cycles_and_stays_controlled(self):
        traj = simulate_hybrid(ias_model("patient_A"), t_final=2000.0, max_jumps=60)
        assert len(traj.segments) >= 6  # several on/off cycles
        final = traj.final()
        assert psa(final) < 50.0
        assert final["y"] < 1.0  # resistant clone controlled

    def test_nonresponder_relapses(self):
        traj = simulate_hybrid(ias_model("patient_C"), t_final=2000.0, max_jumps=60)
        assert traj.final()["y"] > 100.0  # CRPC takes over

    def test_psa_decreases_on_treatment(self):
        traj = simulate_hybrid(ias_model("patient_A"), t_final=100.0, max_jumps=2)
        p0 = psa(traj.at(0.0))
        p1 = psa(traj.at(100.0))
        assert p1 < p0

    def test_androgen_recovers_off_treatment(self):
        traj = simulate_hybrid(ias_model("patient_A"), t_final=2000.0, max_jumps=60)
        # find an off segment and check z rises there
        for seg in traj.segments:
            if seg.mode == "off" and seg.t_end - seg.t0 > 20:
                zs = seg.trajectory.column("z")
                assert zs[-1] > zs[0]
                break
        else:
            pytest.fail("no substantial off-treatment segment found")

    def test_unknown_patient_rejected(self):
        with pytest.raises(KeyError, match="unknown patient"):
            ias_model("patient_Z")

    def test_override_dict(self):
        h = ias_model({"d": 2.0})
        assert h.params["d"] == 2.0

    def test_continuous_therapy_ode(self):
        sys_ = ias_on_treatment_ode("patient_C")
        traj = rk45(sys_, {"x": 15.0, "y": 0.01, "z": 12.0}, (0.0, 1500.0))
        # continuous androgen suppression cannot stop CRPC for d<1 patients
        assert traj.final()["y"] > 1.0

    def test_profiles_cover_regimes(self):
        ds = [PATIENT_PROFILES[p]["d"] for p in ("patient_A", "patient_B", "patient_C")]
        assert ds[0] > 1.0 and ds[2] < 1.0


class TestTBIModel:
    def test_untreated_high_dose_dies(self):
        h = tbi_model(
            {"theta_A": 10, "theta_B": 10, "theta_C": 10, "theta_D": 10, "theta_E": -1},
            dose=1.0,
        )
        traj = simulate_hybrid(h, t_final=120.0, max_jumps=10)
        assert traj.mode_path()[-1] == "death"

    def test_untreated_low_dose_survives(self):
        h = tbi_model(
            {"theta_A": 10, "theta_B": 10, "theta_C": 10, "theta_D": 10, "theta_E": -1},
            dose=0.3,
        )
        traj = simulate_hybrid(h, t_final=120.0, max_jumps=10)
        assert traj.mode_path() == ["live"]

    def test_treatment_rescues_intermediate_dose(self):
        h = tbi_model(dose=0.8)
        traj = simulate_hybrid(h, t_final=120.0, max_jumps=25)
        assert traj.mode_path()[-1] != "death"
        assert len(traj.jumps_taken) >= 1  # at least one drug delivered

    def test_threshold_choice_changes_outcome(self):
        """The therapy-synthesis phenomenon: at dose 1.1, early
        intervention (theta=0.3) survives, late (theta=0.5) dies."""
        base = {"theta_E": 0.5}
        early = {**base, **{f"theta_{X}": 0.3 for X in "ABCD"}}
        late = {**base, **{f"theta_{X}": 0.5 for X in "ABCD"}}
        t_early = simulate_hybrid(tbi_model(early, dose=1.1), t_final=120.0, max_jumps=25)
        t_late = simulate_hybrid(tbi_model(late, dose=1.1), t_final=120.0, max_jumps=25)
        assert t_early.mode_path()[-1] != "death"
        assert t_late.mode_path()[-1] == "death"

    def test_death_is_absorbing(self):
        h = tbi_model(
            {"theta_A": 10, "theta_B": 10, "theta_C": 10, "theta_D": 10, "theta_E": -1},
            dose=2.0,
        )
        traj = simulate_hybrid(h, t_final=200.0, max_jumps=10)
        path = traj.mode_path()
        assert path[-1] == "death"
        assert path.count("death") == 1  # never leaves

    def test_restricted_drug_set(self):
        h = tbi_model(drugs=("drug_A", "drug_B"))
        assert set(h.mode_names) == {"live", "death", "drug_A", "drug_B"}
        with pytest.raises(ValueError, match="unknown drug"):
            tbi_model(drugs=("drug_Z",))

    def test_signature_dynamics_drug_effect(self):
        """In drug_A, CLox production is suppressed relative to live."""
        h = tbi_model(dose=1.0)
        state = {"dmg": 1.0, "clox": 0.5, "rip3": 0.2, "peox": 0.1, "il": 0.1, "nad": 0.9}
        live_rate = h.mode_system("live").eval_field(state)["clox"]
        drug_rate = h.mode_system("drug_A").eval_field(state)["clox"]
        assert drug_rate < live_rate


class TestMassAction:
    def test_receptor_ligand_equilibrium(self):
        sys_, eq = receptor_ligand()
        res = sys_.eval_field(eq)
        assert abs(res["c"]) < 1e-9
        assert 0 < eq["c"] < 2.0

    def test_receptor_ligand_converges_to_equilibrium(self):
        sys_, eq = receptor_ligand()
        traj = rk45(sys_, {"c": 0.0}, (0.0, 50.0))
        assert traj.final()["c"] == pytest.approx(eq["c"], abs=1e-6)

    def test_kinetic_proofreading_equilibrium(self):
        sys_, eq = kinetic_proofreading(n_steps=3)
        res = sys_.eval_field(eq)
        assert max(abs(v) for v in res.values()) < 1e-9
        assert all(v > 0 for v in eq.values())

    def test_proofreading_chain_attenuates(self):
        """Later complexes have lower steady-state levels: the
        proofreading ladder discards weak signals."""
        _sys, eq = kinetic_proofreading(n_steps=4, koff=1.0, kp=0.3)
        levels = [eq[f"c{i}"] for i in range(4)]
        assert all(a > b for a, b in zip(levels, levels[1:]))

    def test_proofreading_convergence(self):
        sys_, eq = kinetic_proofreading(n_steps=2)
        traj = rk45(sys_, {"c0": 0.0, "c1": 0.0}, (0.0, 100.0))
        for k, v in eq.items():
            assert traj.final()[k] == pytest.approx(v, abs=1e-5)

    def test_erk_equilibrium(self):
        sys_, eq = erk_cascade()
        res = sys_.eval_field(eq)
        assert max(abs(v) for v in res.values()) < 1e-9
        assert 0 < eq["e"] < 1

    def test_bad_equilibrium_guess_raises(self):
        sys_ = logistic()
        # fsolve from 0 converges to the unstable equilibrium 0 -- fine;
        # check that the function at least returns a true root
        eq = find_equilibrium(sys_, {"x": 8.0})
        assert abs(sys_.eval_field(eq)["x"]) < 1e-9

    def test_invalid_steps(self):
        with pytest.raises(ValueError):
            kinetic_proofreading(n_steps=0)


class TestToys:
    def test_logistic_carrying_capacity(self):
        traj = simulate(logistic(r=1.0, K=10.0), {"x": 0.5}, (0.0, 30.0))
        assert traj.final()["x"] == pytest.approx(10.0, rel=1e-3)

    def test_lotka_volterra_oscillates(self):
        traj = simulate(lotka_volterra(), {"x": 2.0, "y": 1.0}, (0.0, 40.0))
        xs = traj.column("x")
        assert xs.max() > 2.5 and xs.min() < 2.0

    def test_sir_epidemic_peaks(self):
        traj = simulate(sir(beta=0.5, gamma=0.1), {"s": 0.99, "i": 0.01, "r": 0.0},
                        (0.0, 100.0))
        infected = traj.column("i")
        assert infected.max() > 0.3
        assert traj.final()["i"] < 0.05

    def test_sir_conserves_population(self):
        import numpy as np

        traj = simulate(sir(), {"s": 0.99, "i": 0.01, "r": 0.0}, (0.0, 50.0))
        total = traj.column("s") + traj.column("i") + traj.column("r")
        assert np.allclose(total, 1.0, atol=1e-6)

    def test_van_der_pol_limit_cycle(self):
        traj = simulate(van_der_pol(mu=1.0), {"x": 0.1, "v": 0.0}, (0.0, 60.0))
        xs = traj.column("x")
        assert xs[-500:].max() > 1.5  # reached the limit cycle

    def test_damped_oscillator_decays(self):
        traj = simulate(damped_oscillator(), {"x": 1.0, "v": 0.0}, (0.0, 30.0))
        assert abs(traj.final()["x"]) < 0.01

    def test_thermostat_parametric_thresholds(self):
        h = thermostat(theta_on=15.0, theta_off=25.0)
        traj = simulate_hybrid(h, {"x": 20.0}, t_final=10.0)
        temps = traj.flatten().column("x")
        assert temps.min() > 14.0

    def test_bouncing_ball_loses_energy(self):
        h = bouncing_ball(c=0.5)
        traj = simulate_hybrid(h, t_final=3.0, max_jumps=10)
        assert len(traj.jumps_taken) >= 2
