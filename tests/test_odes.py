"""Tests for ODESystem, integrators and event location."""

import math

import numpy as np
import pytest

from repro.expr import var, variables
from repro.odes import (
    IntegrationError,
    ODESystem,
    Trajectory,
    find_event,
    rk4,
    rk45,
    simulate,
)

x, y = variables("x y")


@pytest.fixture
def decay():
    """dx/dt = -k x, solution x0 * exp(-k t)."""
    return ODESystem({"x": -var("k") * var("x")}, {"k": 1.0}, name="decay")


@pytest.fixture
def oscillator():
    """Harmonic oscillator: x'' = -x as first-order system."""
    return ODESystem({"x": var("v"), "v": -var("x")}, name="oscillator")


class TestODESystem:
    def test_properties(self, decay):
        assert decay.state_names == ["x"]
        assert decay.param_names == ["k"]
        assert decay.dim == 1
        assert decay.is_autonomous()

    def test_unbound_symbol_rejected(self):
        with pytest.raises(ValueError, match="unbound"):
            ODESystem({"x": var("x") * var("mystery")})

    def test_time_dependence_allowed(self):
        from repro.expr import sin

        sys_ = ODESystem({"x": sin(var("t"))})
        assert not sys_.is_autonomous()

    def test_eval_field(self, oscillator):
        f = oscillator.eval_field({"x": 1.0, "v": 2.0})
        assert f == {"x": 2.0, "v": -1.0}

    def test_eval_field_interval(self, decay):
        from repro.intervals import Box

        f = decay.eval_field_interval(Box.from_bounds({"x": (1, 2)}))
        assert f["x"].contains(-1.5)

    def test_jacobian(self, oscillator):
        J = oscillator.jacobian()
        assert J["x"]["v"].eval({}) == 1.0
        assert J["v"]["x"].eval({}) == -1.0
        assert J["x"]["x"].eval({}) == 0.0

    def test_lie_derivative(self, oscillator):
        # V = x^2 + v^2 is conserved: dV/dt = 0
        v = var("x") ** 2 + var("v") ** 2
        lie = oscillator.lie_derivative(v)
        assert lie.eval({"x": 0.3, "v": -1.2}) == pytest.approx(0.0, abs=1e-12)

    def test_with_params(self, decay):
        d2 = decay.with_params(k=2.0)
        assert d2.params["k"] == 2.0
        assert decay.params["k"] == 1.0
        with pytest.raises(KeyError):
            decay.with_params(nope=1.0)

    def test_substitute_params(self, decay):
        inlined = decay.substitute_params()
        assert inlined.params == {}
        assert inlined.eval_field({"x": 2.0}) == {"x": -2.0}

    def test_equilibria_conditions(self, decay):
        phi = decay.equilibria_conditions()
        assert phi.eval({"x": 0.0, "k": 1.0})
        assert not phi.eval({"x": 1.0, "k": 1.0})


class TestRK4:
    def test_exponential_decay(self, decay):
        traj = rk4(decay, {"x": 1.0}, (0.0, 2.0), dt=0.01)
        assert traj.value("x", 2.0) == pytest.approx(math.exp(-2.0), rel=1e-6)

    def test_convergence_order(self, decay):
        """Halving dt must reduce error ~16x for a 4th-order method."""
        errs = []
        for dt in (0.2, 0.1, 0.05):
            traj = rk4(decay, {"x": 1.0}, (0.0, 1.0), dt=dt)
            errs.append(abs(traj.value("x", 1.0) - math.exp(-1.0)))
        assert errs[0] / errs[1] > 12.0
        assert errs[1] / errs[2] > 12.0

    def test_param_override(self, decay):
        traj = rk4(decay, {"x": 1.0}, (0.0, 1.0), dt=0.01, params={"k": 2.0})
        assert traj.value("x", 1.0) == pytest.approx(math.exp(-2.0), rel=1e-5)

    def test_invalid_args(self, decay):
        with pytest.raises(ValueError):
            rk4(decay, {"x": 1.0}, (1.0, 0.0), dt=0.1)
        with pytest.raises(ValueError):
            rk4(decay, {"x": 1.0}, (0.0, 1.0), dt=-0.1)

    def test_blowup_detected(self):
        sys_ = ODESystem({"x": var("x") * var("x")})
        with pytest.raises(IntegrationError):
            rk4(sys_, {"x": 3.0}, (0.0, 5.0), dt=0.05)


class TestRK45:
    def test_oscillator_period(self, oscillator):
        traj = rk45(oscillator, {"x": 1.0, "v": 0.0}, (0.0, 2 * math.pi), rtol=1e-9)
        final = traj.final()
        assert final["x"] == pytest.approx(1.0, abs=1e-6)
        assert final["v"] == pytest.approx(0.0, abs=1e-6)

    def test_energy_conservation(self, oscillator):
        traj = rk45(oscillator, {"x": 0.0, "v": 1.0}, (0.0, 20.0), rtol=1e-9)
        e = traj.column("x") ** 2 + traj.column("v") ** 2
        assert np.max(np.abs(e - 1.0)) < 1e-5

    def test_adaptive_beats_tolerance(self, decay):
        traj = rk45(decay, {"x": 1.0}, (0.0, 3.0), rtol=1e-8, atol=1e-10)
        for t in np.linspace(0.1, 3.0, 7):
            assert traj.value("x", t) == pytest.approx(math.exp(-t), rel=1e-6)

    def test_stiff_ish_system(self):
        sys_ = ODESystem({"x": -50.0 * var("x")})
        traj = rk45(sys_, {"x": 1.0}, (0.0, 1.0), rtol=1e-6)
        assert traj.value("x", 1.0) == pytest.approx(math.exp(-50.0), abs=1e-8)

    def test_simulate_front_door(self, decay):
        t1 = simulate(decay, {"x": 1.0}, (0.0, 1.0))
        t2 = simulate(decay, {"x": 1.0}, (0.0, 1.0), method="rk4", dt=0.001)
        assert t1.value("x", 1.0) == pytest.approx(t2.value("x", 1.0), rel=1e-5)
        with pytest.raises(ValueError):
            simulate(decay, {"x": 1.0}, (0.0, 1.0), method="euler")


class TestTrajectory:
    def test_at_interpolates(self, decay):
        traj = rk45(decay, {"x": 1.0}, (0.0, 1.0))
        st = traj.at(0.5)
        assert st["x"] == pytest.approx(math.exp(-0.5), rel=1e-3)

    def test_at_out_of_range(self, decay):
        traj = rk45(decay, {"x": 1.0}, (0.0, 1.0))
        with pytest.raises(ValueError):
            traj.at(2.0)

    def test_restricted(self, decay):
        traj = rk45(decay, {"x": 1.0}, (0.0, 2.0))
        sub = traj.restricted(0.5, 1.5)
        assert sub.t0 == pytest.approx(0.5)
        assert sub.t_end == pytest.approx(1.5)
        assert sub.value("x", 1.0) == pytest.approx(math.exp(-1.0), rel=1e-3)

    def test_concat(self, decay):
        a = rk45(decay, {"x": 1.0}, (0.0, 1.0))
        b = rk45(decay, a.final(), (1.0, 2.0))
        joined = a.concat(b)
        assert joined.t_end == pytest.approx(2.0)
        assert joined.value("x", 2.0) == pytest.approx(math.exp(-2.0), rel=1e-4)

    def test_concat_name_mismatch(self, decay, oscillator):
        a = rk45(decay, {"x": 1.0}, (0.0, 1.0))
        b = rk45(oscillator, {"x": 1.0, "v": 0.0}, (1.0, 2.0))
        with pytest.raises(ValueError):
            a.concat(b)

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            Trajectory(np.array([0.0, 1.0]), np.zeros((3, 1)), ["x"])


class TestEventLocation:
    def test_threshold_crossing(self, decay):
        traj = rk45(decay, {"x": 1.0}, (0.0, 3.0), rtol=1e-9, max_step=0.05)
        t_cross = find_event(traj, lambda s: 0.5 - s["x"], direction=+1)
        assert t_cross == pytest.approx(math.log(2.0), abs=1e-4)

    def test_direction_filter(self, oscillator):
        traj = rk45(oscillator, {"x": 1.0, "v": 0.0}, (0.0, 7.0), max_step=0.02)
        # x falls through zero at t = pi/2 (falling), rises at 3pi/2
        t_fall = find_event(traj, lambda s: s["x"], direction=-1)
        assert t_fall == pytest.approx(math.pi / 2, abs=1e-3)
        t_rise = find_event(traj, lambda s: s["x"], direction=+1)
        assert t_rise == pytest.approx(3 * math.pi / 2, abs=1e-3)

    def test_no_event(self, decay):
        traj = rk45(decay, {"x": 1.0}, (0.0, 1.0))
        assert find_event(traj, lambda s: s["x"] - 100.0) is None
