"""Cluster worker pool: protocol/lease units + golden conformance.

The first half unit-tests the moving parts of :mod:`repro.cluster` --
the framed-pickle protocol guards, the coordinator's lease lifecycle
(expiry, re-queue at the front, stale-result rejection, poisoned-unit
give-up), token auth, and backend reuse after shutdown.

The second half is the distributed arm of the golden-verdict corpus:
every catalog scenario and every paving problem must be byte-identical
through a live :class:`~repro.cluster.backend.ClusterBackend` (one and
two subprocess workers), including after a worker is killed mid-run
and its lease is re-queued onto the survivor.
"""

import json
import pickle
import socket
import threading
import time

import pytest

from repro.cluster import ClusterBackend, ClusterCoordinator, ClusterError
from repro.cluster._work import add, boom, echo
from repro.cluster.protocol import (
    _LEN,
    _MAC_LEN,
    AuthError,
    fn_ref,
    parse_address,
    recv_msg,
    request,
    resolve_fn,
    send_msg,
)
from repro.cluster.worker import run_worker
from repro.service.backends import BACKEND_NAMES, make_backend
from repro.tools.golden import (
    PAVING_PROBLEMS,
    golden_dir,
    golden_scenario_names,
    paving_digest,
    projection_digest,
    scenario_projection,
)

GOLDEN = golden_dir()

#: Mirrors test_golden_corpus.SLOW_SCENARIOS: the policy-search scenario
#: is expensive on every path; exercised only in the full CI workflow.
SLOW_SCENARIOS = {"ias-policy"}


def _load(stem: str) -> dict:
    return json.loads((GOLDEN / f"{stem}.json").read_text())


def _poll(coord, worker, hold=0.0):
    return request(
        coord.address, {"op": "poll", "worker": worker, "hold": hold}
    )


def _wait_until(predicate, timeout=10.0, interval=0.02):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return False


#: Set by :func:`_trip` -- proof a hostile pickle reached the deserializer.
TRIPPED = []


def _trip():
    TRIPPED.append(True)
    return {"op": "pwn"}


class _Canary:
    """Pickles to a call of :func:`_trip` on deserialization."""

    def __reduce__(self):
        return (_trip, ())


# ----------------------------------------------------------------------
# Protocol guards
# ----------------------------------------------------------------------


class TestProtocol:
    def test_parse_address(self):
        assert parse_address("127.0.0.1:9999") == ("127.0.0.1", 9999)
        assert parse_address("node-3.local:80") == ("node-3.local", 80)
        for bad in ("", "hostonly", ":80", "host:", "host:eighty"):
            with pytest.raises(ValueError):
                parse_address(bad)

    def test_fn_ref_round_trip(self):
        ref = fn_ref(echo)
        assert ref == "repro.cluster._work:echo"
        assert resolve_fn(ref) is echo

    def test_fn_ref_rejects_foreign_and_nested(self):
        with pytest.raises(ClusterError):
            fn_ref(json.dumps)  # outside the repro package
        with pytest.raises(ClusterError):
            fn_ref(lambda: None)  # <lambda> qualname
        with pytest.raises(ClusterError):
            fn_ref(ClusterCoordinator.submit)  # nested qualname

    def test_resolve_fn_refuses_escapes(self):
        for ref in ("os:system", "subprocess:run", "repro.cluster._work",
                    "repro.cluster._work:does_not_exist",
                    "repro.cluster._work:MAX_FRAME"):
            with pytest.raises(ClusterError):
                resolve_fn(ref)

    def test_hmac_frames_round_trip(self):
        a, b = socket.socketpair()
        try:
            send_msg(a, {"op": "ok", "n": 1}, token="s3cret")
            assert recv_msg(b, token="s3cret")["n"] == 1
            send_msg(a, {"op": "ok"})  # tokenless pools use the empty key
            assert recv_msg(b)["op"] == "ok"
            send_msg(a, {"op": "ok"}, token="left")
            with pytest.raises(AuthError):
                recv_msg(b, token="right")
        finally:
            a.close()
            b.close()

    def test_bad_mac_is_rejected_before_unpickling(self):
        # a crafted pickle from a peer without the token must never
        # reach pickle.loads -- the MAC check is the pre-auth gate
        TRIPPED.clear()
        blob = pickle.dumps(_Canary())
        a, b = socket.socketpair()
        try:
            a.sendall(_LEN.pack(len(blob)) + bytes(_MAC_LEN) + blob)
            with pytest.raises(AuthError):
                recv_msg(b, token="s3cret")
        finally:
            a.close()
            b.close()
        assert TRIPPED == []  # payload discarded undeserialized


# ----------------------------------------------------------------------
# Coordinator lease lifecycle
# ----------------------------------------------------------------------


class TestCoordinator:
    def test_round_trip_with_inline_worker(self):
        with ClusterCoordinator() as coord:
            future = coord.submit(add, 2, 3)
            executed = run_worker(coord.address, once=True, poll_hold=2.0)
            assert executed == 1
            assert future.result(timeout=10) == 5
            status = coord.status()
            assert status["counters"]["completed"] == 1
            assert status["pending"] == 0 and status["leased"] == 0

    def test_worker_failure_propagates(self):
        with ClusterCoordinator() as coord:
            future = coord.submit(boom, "kaput")
            run_worker(coord.address, once=True)
            with pytest.raises(ClusterError, match="ValueError: kaput"):
                future.result(timeout=10)
            assert coord.status()["counters"]["failed"] == 1

    def test_token_auth(self):
        with ClusterCoordinator(token="sesame") as coord:
            with pytest.raises(AuthError):
                request(coord.address, {"op": "status"})
            reply = request(
                coord.address, {"op": "status", "token": "sesame"}
            )
            assert reply["op"] == "status"
            with pytest.raises(AuthError):
                run_worker(coord.address, token="wrong", once=True)

    def test_lease_expiry_requeues_then_stale_result_is_ignored(self):
        with ClusterCoordinator(lease_ttl=0.3) as coord:
            f1 = coord.submit(echo, "first")
            coord.submit(echo, "second")
            # w1 takes the lease and never heartbeats (a dead worker)
            lease = _poll(coord, "w1")
            assert lease["op"] == "work"
            unit = lease["unit"]
            assert _wait_until(
                lambda: coord.counters["requeued"] >= 1, timeout=5.0
            ), "janitor never re-queued the expired lease"
            # the abandoned worker's heartbeat now reports a lost lease
            beat = request(
                coord.address,
                {"op": "heartbeat", "worker": "w1", "unit": unit},
            )
            assert beat["known"] is False
            # recovered work goes to the FRONT: w2 gets the same unit
            release = _poll(coord, "w2", hold=2.0)
            assert release["op"] == "work" and release["unit"] == unit
            done = request(
                coord.address,
                {"op": "result", "worker": "w2", "unit": unit,
                 "ok": True, "payload": ("first",)},
            )
            assert done["stale"] is False
            assert f1.result(timeout=10) == ("first",)
            # w1 rises from the dead and reports the same unit: stale
            late = request(
                coord.address,
                {"op": "result", "worker": "w1", "unit": unit,
                 "ok": True, "payload": ("zombie",)},
            )
            assert late["stale"] is True
            assert f1.result() == ("first",)  # exactly-once completion
            assert coord.counters["stale_results"] == 1

    def test_poisoned_unit_gives_up_after_max_attempts(self):
        with ClusterCoordinator(lease_ttl=0.25, max_attempts=2) as coord:
            future = coord.submit(echo, "cursed")
            for attempt in range(2):
                lease = None

                def leased():
                    nonlocal lease
                    reply = _poll(coord, f"victim{attempt}")
                    if reply["op"] == "work":
                        lease = reply
                    return lease is not None

                assert _wait_until(leased, timeout=5.0)
            with pytest.raises(ClusterError, match="lost 2 leases"):
                future.result(timeout=10)
            assert coord.counters["failed"] == 1

    def test_cancelled_future_is_never_leased(self):
        with ClusterCoordinator() as coord:
            f1 = coord.submit(echo, "a")
            coord.submit(echo, "b")
            assert f1.cancel()
            lease = _poll(coord, "w1")
            assert lease["op"] == "work"
            assert request(
                coord.address,
                {"op": "result", "worker": "w1", "unit": lease["unit"],
                 "ok": True, "payload": ("b",)},
            )["stale"] is False
            assert coord.status()["pending"] == 0

    def test_stop_fails_outstanding_and_is_idempotent(self):
        coord = ClusterCoordinator()
        future = coord.submit(echo, "never")
        coord.stop()
        coord.stop()
        with pytest.raises(ClusterError, match="shut down"):
            future.result(timeout=5)
        with pytest.raises(ClusterError):
            coord.submit(echo, "late")

    def test_partial_frame_times_out_without_pinning_the_pool(self):
        with ClusterCoordinator(io_timeout=0.3) as coord:
            with socket.create_connection(coord.address, timeout=5) as sock:
                sock.sendall(b"\x00\x00")  # half a length prefix, then stall
                sock.settimeout(5.0)
                try:
                    leftovers = sock.recv(1)
                except OSError:
                    leftovers = b""
                assert leftovers == b""  # coordinator dropped the connection
            # the handler thread was freed, not pinned: the pool still works
            future = coord.submit(add, 1, 1)
            assert run_worker(coord.address, once=True, poll_hold=2.0) == 1
            assert future.result(timeout=10) == 2

    def test_worker_survives_error_reply_on_result_delivery(self, monkeypatch):
        from repro.cluster import worker as worker_mod

        with ClusterCoordinator(lease_ttl=0.3) as coord:
            future = coord.submit(add, 2, 2)
            real_request = worker_mod.request
            rejected = []

            def flaky(address, msg, timeout=30.0, token=None):
                if msg.get("op") == "result" and not rejected:
                    rejected.append(msg["unit"])
                    raise ClusterError("transient dispatch failure")
                return real_request(address, msg, timeout=timeout, token=token)

            monkeypatch.setattr(worker_mod, "request", flaky)
            # pre-fix the ClusterError propagated out of run_worker and
            # silently killed the worker process
            assert run_worker(coord.address, once=True, poll_hold=2.0) == 1
            assert rejected and not future.done()  # result lost, worker alive
            # the abandoned lease expires; the janitor re-queues the unit
            assert _wait_until(
                lambda: coord.counters["requeued"] >= 1, timeout=5.0
            )
            assert run_worker(coord.address, once=True, poll_hold=2.0) == 1
            assert future.result(timeout=10) == 4


# ----------------------------------------------------------------------
# Backend plumbing
# ----------------------------------------------------------------------


class TestBackend:
    def test_backend_names_include_cluster(self):
        assert "cluster" in BACKEND_NAMES

    def test_make_backend_parses_addressed_form(self):
        backend = make_backend("cluster:127.0.0.1:7345", None)
        assert isinstance(backend, ClusterBackend)
        assert (backend.host, backend.port) == ("127.0.0.1", 7345)
        assert backend.workers == 0  # open pool: external workers join

    def test_backend_is_reusable_after_shutdown(self):
        backend = ClusterBackend(workers=1)
        try:
            assert backend.submit(add, 1, 2).result(timeout=60) == 3
            backend.shutdown()
            assert backend._coordinator is None and backend.procs == []
            assert backend.submit(add, 30, 4).result(timeout=60) == 34
        finally:
            backend.shutdown()


# ----------------------------------------------------------------------
# Golden conformance through the cluster path
# ----------------------------------------------------------------------


@pytest.fixture(scope="module", params=[1, 2], ids=["1worker", "2workers"])
def pool(request):
    """A live local pool shared by the conformance sweep."""
    backend = ClusterBackend(workers=request.param)
    backend.wait_for_workers(request.param, timeout=60.0)
    yield backend
    backend.shutdown()


def _scenario_params():
    # the golden set (core + promoted corpus entries); the full corpus
    # is conformance-checked in tests/test_corpus_conformance.py
    for name in golden_scenario_names():
        marks = [pytest.mark.slow] if name in SLOW_SCENARIOS else []
        yield pytest.param(name, marks=marks, id=name)


@pytest.mark.parametrize("name", _scenario_params())
def test_scenario_verdict_conformance_cluster(name, pool):
    """Every catalog scenario reproduces its golden verdict via the pool."""
    golden = _load(name)
    projection = scenario_projection(
        name, "sharded", overrides={"shard_backend": pool}
    )
    assert projection == golden["projection"], (
        f"{name} via the cluster backend ({pool.workers} workers) diverges "
        f"from the golden verdict {golden['status']!r}"
    )
    assert projection_digest(projection) == golden["digest"]


@pytest.mark.parametrize("problem", sorted(PAVING_PROBLEMS))
def test_paving_conformance_cluster(problem, pool):
    """Cluster pavings classify byte-identical boxes to the golden partition."""
    golden = _load(f"paving-{problem}")
    result = paving_digest(
        problem, "sharded", overrides={"shard_backend": pool}
    )
    assert result["counts"] == golden["counts"]
    assert result["digest"] == golden["digest"], (
        f"paving of {problem!r} through the cluster backend classified "
        "different boxes than the golden partition"
    )


def test_paving_survives_worker_death():
    """Killing a worker mid-run re-queues its lease; the digest still matches.

    A short ``lease_ttl`` keeps the janitor's recovery inside the test
    budget.  The kill lands while epochs are in flight, so the dead
    worker's leased units expire and re-run on the survivor -- and the
    lock-step epoch merge above must produce the exact golden bytes
    regardless.
    """
    backend = ClusterBackend(workers=2, lease_ttl=1.5)
    try:
        backend.wait_for_workers(2, timeout=60.0)
        killed = threading.Event()

        def assassinate():
            # let the first epochs get leased before striking
            time.sleep(0.3)
            backend.procs[0].kill()
            killed.set()

        hitman = threading.Thread(target=assassinate, daemon=True)
        hitman.start()
        result = paving_digest(
            "annulus", "sharded", overrides={"shard_backend": backend}
        )
        hitman.join(timeout=10)
        assert killed.is_set()
        golden = _load("paving-annulus")
        assert result["counts"] == golden["counts"]
        assert result["digest"] == golden["digest"]
        assert backend.status()["local_workers"]["alive"] == 1
    finally:
        backend.shutdown()
