"""Cross-module integration tests: the full stacks wired together."""

import math

import pytest

from repro.apps import (
    SMTCalibrator,
    TimeSeriesData,
    check_robustness,
)
from repro.bmc import BMCChecker, BMCOptions, BMCStatus, ReachSpec
from repro.expr import parse_expr, var
from repro.hybrid import simulate_hybrid
from repro.intervals import Box
from repro.io import hybrid_from_dict, hybrid_to_dict, ode_from_dict, ode_to_dict, parse_sbml
from repro.logic import in_range
from repro.models import thermostat
from repro.odes import ODESystem, flow_enclosure, rk45
from repro.smc import F, G, InitialDistribution, StatisticalModelChecker
from repro.solver import DeltaSolver, Status


class TestSBMLToAnalysis:
    """An SBML model flows through calibration and SMC untouched."""

    SBML = """<?xml version="1.0"?>
    <sbml xmlns="http://www.sbml.org/sbml/level2/version4" level="2" version="4">
      <model id="deg">
        <listOfCompartments><compartment id="c" size="1"/></listOfCompartments>
        <listOfSpecies><species id="A" compartment="c" initialConcentration="1"/></listOfSpecies>
        <listOfParameters><parameter id="k" value="1.0"/></listOfParameters>
        <listOfReactions>
          <reaction id="r"><listOfReactants><speciesReference species="A"/></listOfReactants>
            <kineticLaw><math xmlns="http://www.w3.org/1998/Math/MathML">
              <apply><times/><ci>k</ci><ci>A</ci></apply>
            </math></kineticLaw></reaction>
        </listOfReactions>
      </model>
    </sbml>"""

    def test_sbml_calibration(self):
        model = parse_sbml(self.SBML)
        k_true = 0.8
        data = TimeSeriesData.from_samples(
            [(1.0, {"A": math.exp(-k_true)}), (2.0, {"A": math.exp(-2 * k_true)})],
            tolerance=0.02,
        )
        calib = SMTCalibrator(
            model.system, data, {"k": (0.2, 2.0)}, model.initial, delta=0.02
        )
        res = calib.calibrate()
        assert res.params["k"] == pytest.approx(k_true, abs=0.1)

    def test_sbml_smc(self):
        model = parse_sbml(self.SBML)
        checker = StatisticalModelChecker(
            model.system,
            InitialDistribution({"A": (0.9, 1.1)}),
            horizon=3.0,
            seed=0,
        )
        p, _ = checker.probability(F(3.0, var("A") <= 0.2), epsilon=0.2, alpha=0.1)
        assert p == 1.0


class TestJSONRoundtripAnalysis:
    """Serialized models keep their analysis behavior."""

    def test_ode_roundtrip_preserves_enclosures(self):
        sys_ = ODESystem({"x": -var("k") * var("x")}, {"k": 1.0})
        back = ode_from_dict(ode_to_dict(sys_))
        t1 = flow_enclosure(sys_, Box.from_point({"x": 1.0}), 1.0, max_step=0.1)
        t2 = flow_enclosure(back, Box.from_point({"x": 1.0}), 1.0, max_step=0.1)
        assert t1.final()["x"].lo == pytest.approx(t2.final()["x"].lo, rel=1e-9)

    def test_hybrid_roundtrip_preserves_bmc_verdict(self):
        h = thermostat()
        back = hybrid_from_dict(hybrid_to_dict(h))
        spec = ReachSpec(goal=(var("x") >= 31.0), max_jumps=1, time_bound=2.0)
        opt = BMCOptions(enclosure_step=0.2, max_boxes_per_path=50)
        r1 = BMCChecker(h, opt).check(spec)
        r2 = BMCChecker(back, opt).check(spec)
        assert r1.status == r2.status == BMCStatus.UNSAT


class TestSolverOdeCoupling:
    def test_equilibrium_via_solver_matches_simulation(self):
        """Solve f(x)=0 with the delta-solver; verify the point is an
        attractor by simulating toward it."""
        sys_ = ODESystem({"x": var("r") * var("x") * (1 - var("x") / 10.0)}, {"r": 1.0})
        phi = sys_.equilibria_conditions().subs({"r": 1.0}) & (var("x") >= 5.0)
        res = DeltaSolver(delta=1e-4).solve(phi, Box.from_bounds({"x": (0.5, 20.0)}))
        assert res.status is Status.DELTA_SAT
        eq = res.witness["x"]
        assert eq == pytest.approx(10.0, abs=0.1)
        traj = rk45(sys_, {"x": 3.0}, (0.0, 50.0))
        assert traj.final()["x"] == pytest.approx(10.0, rel=1e-4)


class TestHybridSmcBmcAgreement:
    def test_simulation_and_bmc_agree_on_reachability(self):
        """What concrete simulation reaches, BMC must find (delta-sat);
        what BMC proves unreachable, simulation must never reach."""
        h = thermostat()
        traj = simulate_hybrid(h, {"x": 20.5}, t_final=5.0)
        reached_on = "on" in traj.mode_path()
        assert reached_on

        spec_sat = ReachSpec(
            goal=in_range(var("x"), 17.9, 18.5), goal_mode="on",
            max_jumps=1, time_bound=2.0,
        )
        opt = BMCOptions(enclosure_step=0.1, max_boxes_per_path=100)
        res = BMCChecker(h, opt).check(spec_sat)
        assert res.status is BMCStatus.DELTA_SAT

        spec_unsat = ReachSpec(goal=(var("x") >= 35.0), max_jumps=3, time_bound=3.0)
        res2 = BMCChecker(h, opt).check(spec_unsat)
        assert res2.status is BMCStatus.UNSAT
        temps = traj.flatten().column("x")
        assert temps.max() < 35.0

    def test_smc_confirms_robustness_verdict(self):
        """An UNSAT robustness certificate implies SMC estimates
        probability ~0 for the same bad event."""
        u = var("u")
        from repro.hybrid import HybridAutomaton, Jump, Mode

        h = HybridAutomaton(
            ["u"],
            [
                Mode("rest", {"u": -u}, invariant=(u <= 0.2 + 1e-6)),
                Mode("fire", {"u": 3.0 * (1.0 - u)}, invariant=(u >= 0.2 - 1e-6)),
            ],
            [
                Jump("rest", "fire", guard=(u >= 0.2)),
                Jump("fire", "rest", guard=(u <= 0.2)),
            ],
            "rest",
            Box.from_bounds({"u": (0.0, 0.1)}),
        )
        cert = check_robustness(
            h, {"u": (0.0, 0.1)}, bad=(u >= 0.8), time_bound=10.0, max_jumps=2,
            options=BMCOptions(enclosure_step=0.2, max_boxes_per_path=60),
        )
        assert cert.robust is True
        checker = StatisticalModelChecker(
            h, InitialDistribution({"u": (0.0, 0.1)}), horizon=10.0, seed=0
        )
        p, _ = checker.probability(F(10.0, u >= 0.8), epsilon=0.2, alpha=0.1)
        assert p == 0.0


class TestParserToSolver:
    def test_parsed_constraint_solved(self):
        phi_expr = parse_expr("x^3 - 2*x - 5")
        phi = in_range(phi_expr, -1e-3, 1e-3)
        res = DeltaSolver(delta=1e-4).solve(phi, Box.from_bounds({"x": (0.0, 3.0)}))
        assert res.status is Status.DELTA_SAT
        # classic Wallis cubic root ~ 2.0946
        assert res.witness["x"] == pytest.approx(2.0946, abs=0.01)
