"""Online/batch conformance of the streaming monitor stack.

The contract under test: feeding a trajectory's samples one at a time
through :class:`repro.monitor.OnlineMonitor` yields **exactly** the
batch verdict (:func:`repro.smc.bltl.monitor`) and robustness margin
(:func:`repro.smc.bltl.robustness`) -- and any verdict reported *before*
the horizon completes is irrevocable under every possible continuation
of the stream.  Plus the stream/store/supervisor layers on top:
out-of-order admission, episode punctuation, per-stream SPRTs,
journal replay recovery, and the vectorized predicate pre-screen.
"""

import math
import os

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.expr import parse_expr
from repro.logic import Atom
from repro.monitor import (
    EventStore,
    FleetSupervisor,
    MonitorResult,
    OnlineMonitor,
    StreamState,
    Verdict,
    replay_source,
    scenario_property,
    stream_scenario,
    tail_source,
)
from repro.odes import Trajectory
from repro.smc.bltl import F, G, U, at_time, monitor, prop, robustness, _as_bltl
import repro.scenarios.library  # noqa: F401  (register the catalog)
from repro.scenarios import all_scenarios


def atom(text, strict=False):
    return Atom(parse_expr(text), strict)


FORMULAS = [
    prop(atom("x - 1")),
    prop(atom("x + y", True)),
    F(3.0, atom("x")),
    G(2.5, atom("y - 0.5", True)),
    U(4.0, atom("x + 2"), atom("y - 1")),
    F(2.0, G(1.5, atom("x + y"))),
    G(2.0, F(1.5, atom("x - y"))),
    ~G(3.0, atom("x")) & F(1.0, atom("y")),
    at_time(2.0, F(1.0, atom("x - y"))),
    G(2.0, F(1.0, atom("x"))) | U(1.0, atom("y"), atom("x - 3", True)),
    U(3.0, F(0.5, atom("x")), G(0.5, atom("y"))),
]


def random_trajectory(rng, n=40, span=10.0):
    ts = np.sort(rng.uniform(0.0, span, n))
    ts[0] = 0.0
    ts = np.unique(ts)
    xs = rng.normal(0.0, 1.0, (len(ts), 2)).cumsum(axis=0)
    return Trajectory(ts, xs, ["x", "y"])


def feed(om, traj):
    """Stream a trajectory into an online monitor, checking invariants."""
    prev = Verdict.UNKNOWN
    for i, t in enumerate(traj.times):
        values = dict(zip(traj.names, map(float, traj.states[i])))
        derivs = (dict(zip(traj.names, map(float, traj.derivs[i])))
                  if traj.derivs is not None else None)
        v = om.step(float(t), values, derivs)
        assert not (prev.decided and v is not prev), "decided verdict flipped"
        prev = v
    return om.finish()


class TestOnlineBatchConformance:
    """Exact agreement with the batch semantics, formula by formula."""

    @pytest.mark.parametrize("idx", range(len(FORMULAS)))
    def test_final_verdict_and_margin_exact(self, idx):
        phi = FORMULAS[idx]
        rng = np.random.default_rng(idx)
        checked = 0
        while checked < 25:
            traj = random_trajectory(rng)
            if _as_bltl(phi).horizon() > traj.t_end - traj.t0:
                continue
            want_sat = monitor(phi, traj, float(traj.t0))
            want_rob = robustness(phi, traj, float(traj.t0))
            result = feed(OnlineMonitor(phi), traj)
            assert result.complete
            assert result.verdict is Verdict.of(want_sat)
            assert result.margin == want_rob  # bit-exact, not approx
            checked += 1

    def test_margin_interval_always_brackets_batch_margin(self):
        rng = np.random.default_rng(7)
        for idx, phi in enumerate(FORMULAS):
            traj = random_trajectory(rng, n=60, span=12.0)
            want = robustness(phi, traj, float(traj.t0))
            om = OnlineMonitor(phi)
            for i, t in enumerate(traj.times):
                om.step(float(t), dict(zip(traj.names, map(float, traj.states[i]))))
                lo, hi = om.margin_interval()
                assert lo <= want <= hi
            lo, hi = om.margin_interval()
            assert lo == want == hi  # collapsed after completion

    def test_extra_env_constants(self):
        phi = G(2.0, atom("x - thresh"))
        rng = np.random.default_rng(3)
        traj = random_trajectory(rng)
        env = {"thresh": 0.25}
        om = OnlineMonitor(phi, extra_env=env)
        result = feed(om, traj)
        assert result.verdict is Verdict.of(monitor(phi, traj, float(traj.t0), env))
        assert result.margin == robustness(phi, traj, float(traj.t0), env)

    def test_interpolated_endpoints_match(self):
        # a window endpoint falling between samples exercises the
        # inserted-instant (dense output) path on both sides
        phi = F(1.7, atom("x - 0.3"))
        ts = np.array([0.0, 0.6, 1.3, 2.1, 2.9, 3.5])
        xs = np.array([[0.0, 0.0], [1.0, 0.1], [-0.4, 0.2], [0.8, 0.3],
                       [0.2, 0.4], [-0.9, 0.5]])
        ds = np.array([[1.5, 0.1]] * 6)
        traj = Trajectory(ts, xs, ["x", "y"], ds)
        result = feed(OnlineMonitor(phi), traj)
        assert result.verdict is Verdict.of(monitor(phi, traj, 0.0))
        assert result.margin == robustness(phi, traj, 0.0)

    def test_partial_stream_stays_unknown_or_sound(self):
        phi = G(5.0, atom("x"))
        om = OnlineMonitor(phi)
        om.step(0.0, {"x": 1.0})
        om.step(1.0, {"x": 2.0})
        result = om.finish()
        assert not result.complete and result.margin is None
        assert result.verdict is Verdict.UNKNOWN

    def test_early_false_of_always_is_immediate(self):
        phi = G(100.0, atom("x"))
        om = OnlineMonitor(phi)
        assert om.step(0.0, {"x": 1.0}) is Verdict.UNKNOWN
        assert om.step(1.0, {"x": -1.0}) is Verdict.FALSE
        assert om.decided_at == 1.0
        assert not om.finished  # horizon not covered; verdict still final

    def test_monotone_time_enforced(self):
        om = OnlineMonitor(G(5.0, atom("x")))
        om.step(1.0, {"x": 1.0})
        with pytest.raises(ValueError, match="strictly increasing"):
            om.step(1.0, {"x": 1.0})


# ----------------------------------------------------------------------
# Hypothesis: random formulas, random traces
# ----------------------------------------------------------------------

_atoms = st.builds(
    atom,
    st.sampled_from(["x", "y", "x + y", "x - y", "2*x - 1", "y + 0.5", "x*y"]),
    st.booleans(),
)


def _formulas(max_bound=3.0):
    bounds = st.floats(0.25, max_bound)
    return st.recursive(
        st.builds(prop, _atoms),
        lambda kids: st.one_of(
            st.builds(lambda a: ~a, kids),
            st.builds(lambda a, b: a & b, kids, kids),
            st.builds(lambda a, b: a | b, kids, kids),
            st.builds(F, bounds, kids),
            st.builds(G, bounds, kids),
            st.builds(U, bounds, kids, kids),
            st.builds(at_time, st.floats(0.0, 1.5), kids),
        ),
        max_leaves=5,
    ).filter(lambda f: f.horizon() <= 8.0)


_traces = st.integers(0, 2**32 - 1).map(
    lambda s: random_trajectory(np.random.default_rng(s), n=30, span=12.0)
)


class TestHypothesisConformance:
    @settings(max_examples=60, deadline=None)
    @given(phi=_formulas(), traj=_traces)
    def test_random_formula_random_trace(self, phi, traj):
        if phi.horizon() > traj.t_end - traj.t0:
            return
        result = feed(OnlineMonitor(phi), traj)
        assert result.verdict is Verdict.of(monitor(phi, traj, float(traj.t0)))
        assert result.margin == robustness(phi, traj, float(traj.t0))

    @settings(max_examples=60, deadline=None)
    @given(
        phi=_formulas(max_bound=2.0),
        seed=st.integers(0, 2**32 - 1),
        cut=st.integers(3, 27),
    )
    def test_early_termination_is_irrevocable(self, phi, seed, cut):
        """A pre-horizon verdict must hold under EVERY continuation.

        Stream a prefix; the moment the monitor decides early, splice an
        adversarial continuation (drawn from a different distribution)
        after the decision point and check the batch verdict over the
        spliced trajectory agrees.
        """
        rng = np.random.default_rng(seed)
        traj = random_trajectory(rng, n=30, span=12.0)
        om = OnlineMonitor(phi)
        decided_idx = None
        for i, t in enumerate(traj.times[:cut]):
            v = om.step(float(t), dict(zip(traj.names, map(float, traj.states[i]))))
            if v.decided and not om.finished:
                decided_idx = i
                break
        if decided_idx is None:
            return
        early = om.verdict
        horizon = phi.horizon()
        t_dec = float(traj.times[decided_idx])
        # adversarial continuations: huge positive, huge negative, wild
        for mode, scale in (("pos", 50.0), ("neg", -50.0), ("wild", None)):
            n_ext = 25
            ext_ts = np.linspace(t_dec + 1e-3, traj.t0 + horizon + 1.0, n_ext)
            if scale is None:
                ext_xs = np.random.default_rng(seed ^ 0xBEEF).normal(
                    0.0, 30.0, (n_ext, 2))
            else:
                ext_xs = np.full((n_ext, 2), scale)
            full = Trajectory(
                np.concatenate([traj.times[: decided_idx + 1], ext_ts]),
                np.concatenate([traj.states[: decided_idx + 1], ext_xs]),
                list(traj.names),
            )
            assert monitor(phi, full, float(full.t0)) == (early is Verdict.TRUE), (
                f"early verdict {early} refuted by {mode} continuation"
            )


# ----------------------------------------------------------------------
# the scenario catalog
# ----------------------------------------------------------------------

# core entries only: the generated corpus families reuse the same
# model shapes, and their SMC probes are conformance-checked in
# tests/test_corpus_conformance.py
_SMC_SCENARIOS = [s.name for s in all_scenarios() if s.query.get("phi")
                  and s.task == "smc" and not s.family]


class TestCatalogConformance:
    @pytest.mark.parametrize("name", _SMC_SCENARIOS)
    def test_smc_scenario_online_equals_batch(self, name):
        phi, horizon, checker, _theta = scenario_property(name, seed=11)
        for _ in range(2):
            traj = checker.sample_trajectory()
            result = feed(OnlineMonitor(phi), traj)
            assert result.complete
            assert result.verdict is Verdict.of(monitor(phi, traj, float(traj.t0)))
            assert result.margin == robustness(phi, traj, float(traj.t0))

    @pytest.mark.slow
    def test_whole_catalog_trajectories_conform(self):
        """Every catalog scenario's dynamics, monitored online vs batch.

        Scenarios without a BLTL query are monitored with synthetic
        formulas over their own state variables, so all 18 entries
        exercise the monitor on their trajectory shapes.
        """
        from repro.odes import ODESystem, rk45
        from repro.hybrid import HybridAutomaton, simulate_hybrid

        covered = 0
        for sc in all_scenarios():
            if sc.name == "ias-policy":
                continue  # the slow therapy pipeline; dynamics covered by ias-cohort
            if sc.family:
                continue  # corpus entries reuse core dynamics shapes
            spec = sc.spec()
            x0 = dict(spec.query.get("x0") or spec.model.initial or {})
            system = spec.model.system
            if not x0:
                if not isinstance(system, ODESystem):
                    continue
                x0 = {n: 1.0 for n in system.state_names}
            try:
                if isinstance(system, HybridAutomaton):
                    traj = simulate_hybrid(system, x0, t_final=5.0).flatten()
                else:
                    traj = rk45(system, x0, (0.0, 5.0))
            except (ValueError, RuntimeError):
                continue
            span = float(traj.t_end - traj.t0)
            names = list(traj.names)
            mid = {
                n: float(np.median(traj.states[:, i]))
                for i, n in enumerate(names)
            }
            v = names[0]
            probes = [
                G(0.4 * span, atom(f"{v} - {mid[v]:.6g}")),
                F(0.6 * span, atom(f"{mid[v]:.6g} - {v}", True)),
                U(0.5 * span, atom(f"{v} - {mid[v]:.6g}"),
                  atom(f"{mid[v]:.6g} - {v}")),
            ]
            for phi in probes:
                if phi.horizon() > span:
                    continue
                result = feed(OnlineMonitor(phi), traj)
                assert result.verdict is Verdict.of(
                    monitor(phi, traj, float(traj.t0)))
                assert result.margin == robustness(phi, traj, float(traj.t0))
            covered += 1
        assert covered >= 12  # nearly the whole catalog must participate


# ----------------------------------------------------------------------
# streams: reordering, episodes, SPRT
# ----------------------------------------------------------------------


class TestStreamState:
    def test_out_of_order_within_window_matches_in_order(self):
        phi = G(2.0, atom("x"))
        rng = np.random.default_rng(5)
        traj = random_trajectory(rng, n=50, span=9.0)
        samples = [
            (float(t), dict(zip(traj.names, map(float, traj.states[i]))))
            for i, t in enumerate(traj.times)
        ]

        ordered = StreamState("a", phi, reorder_window=0.0, early_stop=False)
        events_a = []
        for t, v in samples:
            events_a.extend(ordered.push(t, v))
        events_a.extend(ordered.close())

        shuffled = samples[:]
        # swap neighbours within the tolerance window
        for i in range(0, len(shuffled) - 1, 2):
            shuffled[i], shuffled[i + 1] = shuffled[i + 1], shuffled[i]
        window = max(
            b[0] - a[0] for a, b in zip(samples, samples[1:])
        ) * 2.01
        scrambled = StreamState("a", phi, reorder_window=window, early_stop=False)
        events_b = []
        for t, v in shuffled:
            events_b.extend(scrambled.push(t, v))
        events_b.extend(scrambled.close())

        key = [(e.kind, e.episode, e.verdict) for e in events_a if e.kind != "sample"]
        key_b = [(e.kind, e.episode, e.verdict) for e in events_b if e.kind != "sample"]
        assert key == key_b
        assert scrambled.late_dropped == 0

    def test_late_samples_are_counted_not_silent(self):
        s = StreamState("a", prop(atom("x")), reorder_window=0.0)
        s.push(1.0, {"x": 1.0})
        s.push(2.0, {"x": 1.0})
        s.push(1.5, {"x": 1.0})  # older than the released watermark
        assert s.late_dropped == 1

    def test_episode_rollover_and_sprt_decision(self):
        phi = G(1.0, atom("x"))
        s = StreamState("a", phi, theta=0.5, early_stop=False)
        t = 0.0
        while not s.done:
            for dt in (0.0, 0.5, 1.0):  # one full horizon per episode
                s.push(t + dt, {"x": 1.0})
            s.end_episode()
            t += 2.0
        assert s.sprt.decided and s.sprt.result.accept  # all-true => H0
        assert s.episodes_done == s.sprt.result.samples_used

    def test_early_stop_frees_stream_before_horizon(self):
        phi = G(50.0, atom("x"))
        s = StreamState("a", phi, early_stop=True)
        s.push(0.0, {"x": 1.0})
        events = s.push(1.0, {"x": -2.0})
        kinds = [e.kind for e in events]
        assert "episode" in kinds
        assert s.last_result.verdict is Verdict.FALSE
        assert not s.last_result.complete

    def test_closed_stream_drops_stragglers(self):
        s = StreamState("a", prop(atom("x")))
        s.push(0.0, {"x": 1.0})
        s.close()
        assert s.push(5.0, {"x": 1.0}) == []
        assert s.ignored_done == 1


# ----------------------------------------------------------------------
# store: journal, torn tail, replay recovery
# ----------------------------------------------------------------------


class TestStoreRecovery:
    def _run_fleet(self, path, seed=3):
        store = EventStore(path, flush_every=1)
        sup = FleetSupervisor(store=store)
        stream_scenario(sup, "logistic-growth-smc", streams=3, episodes=3,
                        seed=seed, theta=0.5)
        sup.close_all()
        store.close()
        return sup

    def test_kill_and_restart_reproduces_transitions(self, tmp_path):
        path = tmp_path / "events.jsonl"
        self._run_fleet(path)
        store = EventStore(path)
        original = [
            (e.stream, e.kind, e.episode, e.verdict) for e in store.transitions()
        ]
        assert original, "fleet journaled no transitions"

        phi, _h, _c, theta = scenario_property("logistic-growth-smc", seed=3)
        sup2 = FleetSupervisor()
        for sid in store.streams():
            sup2.add_stream(sid, phi, theta=0.5)
        regen = sup2.restore(store)
        sup2.close_all()
        regenerated = [
            (e.stream, e.kind, e.episode, e.verdict)
            for e in regen if e.kind != "sample"
        ]

        def per_stream(rows):
            out = {}
            for r in rows:
                out.setdefault(r[0], []).append(r[1:])
            return out

        assert per_stream(original) == per_stream(regenerated)

    def test_torn_tail_is_recoverable(self, tmp_path):
        path = tmp_path / "events.jsonl"
        self._run_fleet(path)
        with open(path, "a", encoding="utf-8") as fh:
            fh.write('{"kind": "verdict", "stream": "x", "tru')  # killed mid-write
        store = EventStore(path)
        events = list(store.replay())
        assert events  # parsed everything before the torn line
        assert all(e.kind != "verdict" or e.stream != "x" for e in events)

    def test_corrupt_middle_line_raises(self, tmp_path):
        path = tmp_path / "events.jsonl"
        store = EventStore(path)
        from repro.monitor import MonitorEvent
        store.append(MonitorEvent("start", "a", 0.0, 0))
        store.close()
        with open(path, "r+", encoding="utf-8") as fh:
            content = fh.read()
            fh.seek(0)
            fh.write("garbage\n" + content)
        with pytest.raises(ValueError, match="corrupt journal"):
            list(EventStore(path).replay())

    def test_replay_source_preserves_interleaving(self, tmp_path):
        path = tmp_path / "events.jsonl"
        self._run_fleet(path)
        store = EventStore(path)
        samples = list(replay_source(store))
        assert samples
        per_stream_times = {}
        for sid, t, _values, _derivs in samples:
            per_stream_times.setdefault(sid, []).append(t)
        for times in per_stream_times.values():
            assert times == sorted(times)


# ----------------------------------------------------------------------
# supervisor: priming conformance, progress, cancellation
# ----------------------------------------------------------------------


class TestSupervisor:
    def test_tape_priming_does_not_change_any_event(self):
        runs = []
        for batching in (True, False):
            sup = FleetSupervisor(batch_predicates=batching)
            events = []
            sup.on_event = events.append
            stream_scenario(sup, "sir-outbreak", streams=3, episodes=2, seed=9,
                            theta=0.5)
            sup.close_all()
            runs.append([(e.stream, e.kind, e.episode, e.verdict) for e in events])
        assert runs[0] == runs[1]

    def test_progress_events_scoped_and_unscoped(self):
        from repro import progress

        # scoped: flips surface through the active progress scope
        seen = []
        with progress.progress_scope(sink=seen.append):
            sup = FleetSupervisor()
            sup.add_stream("s", G(1.0, atom("x")))
            sup.push("s", 0.0, {"x": 1.0})
            sup.push("s", 0.5, {"x": -1.0})  # early FALSE -> verdict event
        assert any(e.source == "monitor" and e.stage == "verdict" for e in seen)

        # unscoped: the process-wide default sink catches the same flip
        seen2 = []
        previous = progress.set_default_sink(seen2.append)
        try:
            sup = FleetSupervisor()
            sup.add_stream("s", G(1.0, atom("x")))
            sup.push("s", 0.0, {"x": 1.0})
            sup.push("s", 0.5, {"x": -1.0})
        finally:
            progress.set_default_sink(previous)
        assert any(e.source == "monitor" and e.stage == "verdict" for e in seen2)

    def test_cooperative_cancellation(self):
        import threading

        from repro import progress

        cancel = threading.Event()
        cancel.set()
        sup = FleetSupervisor()
        sup.add_stream("s", G(10.0, atom("x")))
        source = (("s", float(t), {"x": 1.0}) for t in range(100))
        with progress.progress_scope(cancel=cancel):
            with pytest.raises(progress.JobCancelled):
                sup.run(source, checkpoint_every=1)

    def test_fleet_summary_counts(self):
        sup = FleetSupervisor()
        sup.add_stream("t", G(1.0, atom("x")))
        sup.add_stream("f", G(1.0, atom("x")))
        for t in (0.0, 0.5, 1.0):
            sup.push("t", t, {"x": 1.0})
            sup.push("f", t, {"x": -1.0 if t else 1.0})
        s = sup.summary()
        assert s["streams"] == 2
        assert s["true"] == 1 and s["false"] == 1
        assert s["samples"] == 6

    def test_ring_is_bounded_by_episode_not_history(self):
        """Per-sample cost must not grow with stream lifetime: the
        episode ring resets at every rollover."""
        phi = G(1.0, atom("x"))
        s = StreamState("a", phi, early_stop=False)
        t = 0.0
        for _ in range(50):  # 50 episodes
            for dt in (0.0, 0.5, 1.0):
                s.push(t + dt, {"x": 1.0})
            s.end_episode()
            t += 2.0
        assert s.episodes_done == 50
        # a fresh episode's monitor holds only its own samples
        s.push(t, {"x": 1.0})
        assert s.monitor.n_samples == 1


# ----------------------------------------------------------------------
# file sources
# ----------------------------------------------------------------------


class TestTailSource:
    def test_jsonl_flat_and_nested(self, tmp_path):
        import json as _json

        p = tmp_path / "x.jsonl"
        rows = [
            {"stream": "a", "t": 0.0, "x": 1.0},
            {"stream": "a", "time": 1.0, "values": {"x": 2.0}},
            {"t": 2.0, "x": 3.0},  # stream defaults to the file stem
        ]
        p.write_text("\n".join(_json.dumps(r) for r in rows) + "\n")
        out = list(tail_source(p))
        assert [(s, t, v["x"]) for s, t, v, _ in out] == [
            ("a", 0.0, 1.0), ("a", 1.0, 2.0), ("x", 2.0, 3.0)
        ]

    def test_csv(self, tmp_path):
        p = tmp_path / "data.csv"
        p.write_text("t,stream,x,y\n0.0,s1,1.0,2.0\n0.5,s1,1.5,2.5\n")
        out = list(tail_source(p))
        assert len(out) == 2
        assert out[1] == ("s1", 0.5, {"x": 1.5, "y": 2.5}, None)

    def test_monitoring_a_file_end_to_end(self, tmp_path):
        import json as _json

        p = tmp_path / "feed.jsonl"
        with open(p, "w", encoding="utf-8") as fh:
            for i in range(30):
                fh.write(_json.dumps({"stream": "s", "t": i * 0.25,
                                      "x": 1.0 if i < 20 else -1.0}) + "\n")
        sup = FleetSupervisor()
        sup.add_stream("s", G(2.0, atom("x")), early_stop=False)
        sup.run(iter(tail_source(p)))
        sup.close_all()
        assert sup.streams["s"].episodes_done >= 2
        verdicts = {r for r in (sup.streams["s"].last_result.verdict,)}
        assert verdicts <= {Verdict.TRUE, Verdict.FALSE, Verdict.UNKNOWN}
