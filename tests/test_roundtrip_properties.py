"""Property tests for representation round-trips.

The native JSON model format stores expressions as ``str(expr)`` and
reloads them with ``parse_expr``; these tests establish that the
round-trip preserves semantics on randomly generated expression trees.
"""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.expr import (
    Binary,
    Const,
    Unary,
    Var,
    parse_expr,
    simplify,
)

NAMES = ("x", "y", "z")


def expr_strategy(max_depth=4):
    leaves = st.one_of(
        st.sampled_from(NAMES).map(Var),
        st.floats(min_value=-5, max_value=5, allow_nan=False).map(
            lambda v: Const(round(v, 3))
        ),
    )

    def extend(children):
        unary = st.tuples(
            st.sampled_from(["neg", "exp", "sin", "cos", "tanh", "abs"]), children
        ).map(lambda t: Unary(t[0], t[1]))
        binary = st.tuples(
            st.sampled_from(["add", "sub", "mul", "div"]), children, children
        ).map(lambda t: Binary(t[0], t[1], t[2]))
        power = st.tuples(
            children, st.integers(min_value=0, max_value=3)
        ).map(lambda t: Binary("pow", t[0], Const(float(t[1]))))
        return st.one_of(unary, binary, power)

    return st.recursive(leaves, extend, max_leaves=12)


ENV = st.fixed_dictionaries(
    {n: st.floats(min_value=-3, max_value=3, allow_nan=False) for n in NAMES}
)


def _safe_eval(e, env):
    try:
        v = e.eval(env)
        return v if math.isfinite(v) else None
    except ArithmeticError:
        return None


@given(expr_strategy(), ENV)
@settings(max_examples=200, deadline=None)
def test_str_parse_roundtrip_semantics(e, env):
    text = str(e)
    back = parse_expr(text)
    v1 = _safe_eval(e, env)
    v2 = _safe_eval(back, env)
    if v1 is None or v2 is None:
        return
    assert v2 == v1 or abs(v2 - v1) <= 1e-9 * max(1.0, abs(v1)), (text, v1, v2)


@given(expr_strategy(), ENV)
@settings(max_examples=200, deadline=None)
def test_simplify_preserves_semantics(e, env):
    s = simplify(e)
    v1 = _safe_eval(e, env)
    v2 = _safe_eval(s, env)
    if v1 is None or v2 is None:
        return
    assert abs(v2 - v1) <= 1e-7 * max(1.0, abs(v1)), (str(e), str(s), v1, v2)


@given(expr_strategy(), ENV)
@settings(max_examples=150, deadline=None)
def test_interval_eval_contains_point_eval(e, env):
    """The inclusion property lifted to whole expression trees."""
    from repro.intervals import Interval

    v = _safe_eval(e, env)
    if v is None:
        return
    iv_env = {k: Interval.point(val) for k, val in env.items()}
    iv = e.eval_interval(iv_env)
    assert iv.contains(v), (str(e), env, v, iv)


@given(expr_strategy(), ENV)
@settings(max_examples=100, deadline=None)
def test_derivative_matches_finite_difference(e, env):
    """Symbolic d/dx agrees with central differences where smooth."""
    h = 1e-6
    try:
        d = e.diff("x")
    except NotImplementedError:
        return
    v = _safe_eval(d, env)
    up = _safe_eval(e, {**env, "x": env["x"] + h})
    dn = _safe_eval(e, {**env, "x": env["x"] - h})
    if v is None or up is None or dn is None:
        return
    fd = (up - dn) / (2 * h)
    # |abs| kinks and steep regions excluded by tolerance scaling
    scale = max(1.0, abs(v), abs(fd))
    if abs(v - fd) > 1e-3 * scale:
        # allow disagreement at non-smooth points of |.|
        assert "abs" in str(e) or "sign" in str(e), (str(e), v, fd)
