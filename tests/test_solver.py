"""Tests for the delta-decision procedure: delta-sat/unsat verdicts,
one-sided soundness, witnesses, paving, and exists-forall CEGIS."""

import math

import pytest

from repro.expr import exp, parse_expr, sin, variables
from repro.intervals import Box
from repro.logic import And, Atom, Exists, Forall, Or, equals_within, in_range
from repro.solver import (
    Certainty,
    DeltaSolver,
    ExistsForallSolver,
    Status,
    eval_formula,
    solve,
)

x, y, p = variables("x y p")


def box(**bounds) -> Box:
    return Box.from_bounds({k: tuple(v) for k, v in bounds.items()})


class TestEval3:
    def test_certainly_true(self):
        assert eval_formula(x >= 0, box(x=(1, 2))) is Certainty.CERTAIN_TRUE

    def test_certainly_false(self):
        assert eval_formula(x > 0, box(x=(-2, -1))) is Certainty.CERTAIN_FALSE

    def test_unknown(self):
        assert eval_formula(x > 0, box(x=(-1, 1))) is Certainty.UNKNOWN

    def test_boundary_strict_vs_weak(self):
        assert eval_formula(x >= 0, box(x=(0, 1))) is Certainty.CERTAIN_TRUE
        assert eval_formula(x > 0, box(x=(0, 1))) is Certainty.UNKNOWN

    def test_delta_relaxation(self):
        # x >= 0 over [-0.05, -0.01] is false, but 0.1-weakened is true
        b = box(x=(-0.05, -0.01))
        assert eval_formula(x >= 0, b) is Certainty.CERTAIN_FALSE
        assert eval_formula(x >= 0, b, delta=0.1) is Certainty.CERTAIN_TRUE

    def test_and_or(self):
        b = box(x=(1, 2), y=(-3, -2))
        assert eval_formula(And(x > 0, y < 0), b) is Certainty.CERTAIN_TRUE
        assert eval_formula(Or(x < 0, y > 0), b) is Certainty.CERTAIN_FALSE

    def test_forall_judgment(self):
        phi = Forall("x", 0, 1, x * (1 - x) + 0.1 >= 0)
        assert eval_formula(phi, Box({})) is Certainty.CERTAIN_TRUE

    def test_forall_false(self):
        phi = Forall("x", 2, 3, 1 - x > 0)
        assert eval_formula(phi, Box({})) is Certainty.CERTAIN_FALSE


class TestDeltaSat:
    def test_simple_sat(self):
        r = solve(x >= 1, box(x=(0, 2)))
        assert r.status is Status.DELTA_SAT
        assert r.witness["x"] >= 1.0 - r.delta

    def test_simple_unsat(self):
        r = solve(x - 10 >= 0, box(x=(0, 2)))
        assert r.status is Status.UNSAT

    def test_circle_intersection_sat(self):
        phi = And(
            equals_within(x ** 2 + y ** 2, 1.0, 1e-3),
            equals_within(x - y, 0.0, 1e-3),
        )
        r = solve(phi, box(x=(-2, 2), y=(-2, 2)), delta=1e-3)
        assert r.status is Status.DELTA_SAT
        w = r.witness
        s = 1.0 / math.sqrt(2.0)
        assert abs(abs(w["x"]) - s) < 0.05 and abs(w["x"] - w["y"]) < 0.05

    def test_circle_line_unsat(self):
        # unit circle does not meet x + y = 10
        phi = And(
            equals_within(x ** 2 + y ** 2, 1.0, 1e-4),
            equals_within(x + y, 10.0, 1e-4),
        )
        r = solve(phi, box(x=(-3, 3), y=(-3, 3)), delta=1e-4)
        assert r.status is Status.UNSAT

    def test_transcendental_root(self):
        # exp(x) = 2  ->  x = ln 2
        phi = equals_within(exp(x), 2.0, 1e-4)
        r = solve(phi, box(x=(0, 2)), delta=1e-4)
        assert r.status is Status.DELTA_SAT
        assert r.witness["x"] == pytest.approx(math.log(2), abs=1e-2)

    def test_sin_root(self):
        phi = And(equals_within(sin(x), 0.0, 1e-4), x >= 1)
        r = solve(phi, box(x=(1, 4)), delta=1e-4)
        assert r.status is Status.DELTA_SAT
        assert r.witness["x"] == pytest.approx(math.pi, abs=0.05)

    def test_disjunction(self):
        phi = Or(
            And(in_range(x, 0.4, 0.6), x >= 10),  # infeasible conjunct
            in_range(x, 0.1, 0.2),
        )
        r = solve(phi, box(x=(0, 1)))
        assert r.status is Status.DELTA_SAT
        assert 0.1 - 0.01 <= r.witness["x"] <= 0.2 + 0.01

    def test_witness_box_entirely_delta_sat(self):
        phi = in_range(x * x, 0.25, 0.5)
        r = solve(phi, box(x=(0, 2)), delta=1e-3)
        assert r.status is Status.DELTA_SAT
        # every corner of the witness box satisfies the weakened formula
        for pt in r.witness_box.corners():
            assert phi.delta_weaken(r.delta).eval(pt)

    def test_unbounded_variable_raises(self):
        with pytest.raises(ValueError, match="free variables"):
            solve(x + y >= 0, box(x=(0, 1)))

    def test_budget_exhaustion_unknown(self):
        # a hard equality with tiny delta and tiny budget
        phi = equals_within(sin(x) * exp(x) + x ** 3, 0.3333, 1e-9)
        r = DeltaSolver(delta=1e-9, max_boxes=5).solve(phi, box(x=(-2, 2)))
        assert r.status is Status.UNKNOWN
        assert r.witness_box is not None


class TestOneSidedGuarantees:
    """Randomized checks of Theorem 1's one-sided error contract."""

    def test_unsat_implies_truly_empty(self):
        import random

        rng = random.Random(7)
        # polynomial with no roots in the box
        phi = equals_within(x ** 2 + 1, 0.0, 1e-3)
        r = solve(phi, box(x=(-3, 3)), delta=1e-3)
        assert r.status is Status.UNSAT
        for _ in range(200):
            v = rng.uniform(-3, 3)
            assert not phi.eval({"x": v})

    def test_delta_sat_witness_satisfies_weakening(self):
        phi = And(
            in_range(x ** 3 - y, -0.001, 0.001),
            in_range(x + y, 0.9, 1.1),
        )
        r = solve(phi, box(x=(-2, 2), y=(-2, 2)), delta=0.01)
        assert r.status is Status.DELTA_SAT
        assert phi.delta_weaken(0.011).eval(r.witness)


class TestExistentialHoisting:
    def test_exists_hoisted(self):
        phi = Exists("y", 0, 1, And(equals_within(x - y, 0.0, 1e-3), x >= 0.5))
        r = solve(phi, box(x=(0, 1)))
        assert r.status is Status.DELTA_SAT
        assert r.witness["x"] >= 0.45

    def test_exists_name_clash_freshened(self):
        phi = Exists("x", 0.8, 1.0, x >= 0.9)  # inner x shadows outer
        r = solve(And(in_range(x, 0.0, 0.1), phi), box(x=(0, 1)))
        # outer x in [0, 0.1] and inner (renamed) x in [0.9, 1.0]
        assert r.status is Status.DELTA_SAT
        assert r.witness["x"] <= 0.11


class TestPaving:
    def test_pave_partitions_interval(self):
        solver = DeltaSolver(delta=1e-3)
        sat, unsat, undecided = solver.pave(
            in_range(x, 0.25, 0.75), box(x=(0, 1)), min_width=1e-3
        )
        assert sat, "expected green boxes"
        # all sat boxes inside [0.25 - delta, 0.75 + delta]
        for b in sat:
            assert b["x"].lo >= 0.25 - 0.01 and b["x"].hi <= 0.75 + 0.01
        # sat volume close to 0.5
        vol = sum(b["x"].width() for b in sat)
        assert vol == pytest.approx(0.5, abs=0.05)

    def test_pave_unsat_only(self):
        solver = DeltaSolver(delta=1e-3)
        sat, unsat, und = solver.pave(x - 5 >= 0, box(x=(0, 1)), min_width=1e-2)
        assert not sat
        assert unsat

    def test_pave_2d_disc(self):
        solver = DeltaSolver(delta=1e-2)
        phi = 1 - x ** 2 - y ** 2 >= 0
        sat, unsat, und = solver.pave(phi, box(x=(-1, 1), y=(-1, 1)), min_width=0.1)
        area = sum(b.volume() for b in sat)
        # disc area pi ~ 3.14 inside square of area 4
        assert 2.2 < area <= 3.5


class TestExistsForall:
    def test_linear_bound_synthesis(self):
        # exists p in [0,4]: forall x in [0,1]: p - x^2 >= 0   (any p >= 1)
        phi = p - x ** 2 >= 0
        ef = ExistsForallSolver(delta=1e-3, max_iterations=20)
        res = ef.solve(phi, box(p=(0, 4)), box(x=(0, 1)))
        assert res.status is Status.DELTA_SAT
        assert res.candidate["p"] >= 1.0 - 0.05

    def test_unsat_when_impossible(self):
        # exists p in [0, 0.5]: forall x in [0,1]: p - x >= 0  (needs p >= 1)
        phi = p - x >= 0
        ef = ExistsForallSolver(delta=1e-3, max_iterations=20)
        res = ef.solve(phi, box(p=(0, 0.5)), box(x=(0, 1)))
        assert res.status in (Status.UNSAT, Status.UNKNOWN)
        assert res.status is Status.UNSAT

    def test_quadratic_lyapunov_style(self):
        # exists c in [0.1, 10]: forall x in [-1,1]: c*x^2 - x^4 + 0.01 >= 0
        c = variables("c")[0]
        phi = c * x ** 2 - x ** 4 + 0.01 >= 0
        ef = ExistsForallSolver(delta=1e-3, max_iterations=25)
        res = ef.solve(phi, box(c=(0.1, 10)), box(x=(-1, 1)))
        assert res.status is Status.DELTA_SAT
        # any c >= 1 works; candidate must be >= ~0.9
        assert res.candidate["c"] >= 0.8

    def test_shared_names_rejected(self):
        with pytest.raises(ValueError):
            ExistsForallSolver().solve(x >= 0, box(x=(0, 1)), box(x=(0, 1)))
