"""Hypothesis property tests for the delta-decision stack.

These check the one-sided soundness contract (Theorem 1) on randomly
generated polynomial problems: UNSAT answers must never contradict a
directly evaluated satisfying point, and delta-sat witnesses must
satisfy the delta-weakened formula.
"""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.expr import Const, var
from repro.intervals import Box
from repro.logic import And, Atom, in_range
from repro.solver import DeltaSolver, Status, hc4_revise

x, y = var("x"), var("y")

COEF = st.floats(min_value=-3.0, max_value=3.0, allow_nan=False)


@st.composite
def quadratic_atom(draw):
    """Random atom a*x^2 + b*x*y + c*y^2 + d*x + e*y + f >= 0."""
    a, b, c, d, e, f = (draw(COEF) for _ in range(6))
    term = (
        Const(a) * x * x + Const(b) * x * y + Const(c) * y * y
        + Const(d) * x + Const(e) * y + Const(f)
    )
    return Atom(term, strict=False)


BOX = Box.from_bounds({"x": (-2.0, 2.0), "y": (-2.0, 2.0)})


@given(quadratic_atom())
@settings(max_examples=60, deadline=None)
def test_hc4_preserves_all_sampled_solutions(atom):
    contracted = hc4_revise(atom, BOX)
    # every grid point satisfying the atom must survive contraction
    for pt in BOX.sample_grid(7):
        if atom.eval(pt):
            assert contracted.contains_point(pt), (atom, pt)


@given(quadratic_atom(), quadratic_atom())
@settings(max_examples=40, deadline=None)
def test_unsat_never_contradicts_sampling(a1, a2):
    phi = And(a1, a2)
    solver = DeltaSolver(delta=0.05, max_boxes=4000)
    result = solver.solve(phi, BOX)
    if result.status is Status.UNSAT:
        for pt in BOX.sample_grid(9):
            assert not phi.eval(pt), (phi, pt)


@given(quadratic_atom(), quadratic_atom())
@settings(max_examples=40, deadline=None)
def test_delta_sat_witness_satisfies_weakening(a1, a2):
    phi = And(a1, a2)
    solver = DeltaSolver(delta=0.05, max_boxes=4000)
    result = solver.solve(phi, BOX)
    if result.status is Status.DELTA_SAT:
        # every corner of the witness box delta-satisfies
        weak = phi.delta_weaken(0.05 + 1e-9)
        for pt in result.witness_box.corners():
            assert weak.eval(pt)


@given(
    st.floats(min_value=-1.5, max_value=1.5, allow_nan=False),
    st.floats(min_value=0.05, max_value=0.5, allow_nan=False),
)
@settings(max_examples=40, deadline=None)
def test_feasible_band_always_found(center, half):
    """A nonempty band inside the box must be delta-sat (completeness
    on easy instances)."""
    lo, hi = center - half, center + half
    phi = in_range(x, max(lo, -2.0), min(hi, 2.0))
    result = DeltaSolver(delta=1e-3, max_boxes=20_000).solve(
        phi, Box.from_bounds({"x": (-2.0, 2.0)})
    )
    assert result.status is Status.DELTA_SAT
    w = result.witness["x"]
    assert max(lo, -2.0) - 0.01 <= w <= min(hi, 2.0) + 0.01


@given(st.floats(min_value=0.1, max_value=2.5, allow_nan=False))
@settings(max_examples=30, deadline=None)
def test_sqrt_root_localization(target):
    """solve(x^2 = t) localizes sqrt(t) within delta tolerance."""
    phi = in_range(x * x, target - 1e-3, target + 1e-3)
    result = DeltaSolver(delta=1e-3, max_boxes=50_000).solve(
        phi, Box.from_bounds({"x": (0.0, 2.0)})
    )
    if target <= 4.0:
        assert result.status is Status.DELTA_SAT
        assert abs(result.witness["x"] - math.sqrt(target)) < 0.05
