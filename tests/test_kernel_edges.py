"""Interval edge cases, exercised through BOTH kernels.

Every case is checked against the scalar :class:`Interval` and the
vectorized :class:`IntervalArray`: EMPTY propagation, unbounded (+/-inf)
operands, division through zero, and outward-rounding monotonicity.
"""

import math

import numpy as np
import pytest

from repro.intervals import EMPTY, Interval, IntervalArray

INF = math.inf


def batch1(iv: Interval) -> IntervalArray:
    return IntervalArray.from_intervals([iv])


def as_interval(ia: IntervalArray, i: int = 0) -> Interval:
    return Interval(float(ia.lo[i]), float(ia.hi[i]))


def both(op_scalar, op_vector, *operands: Interval) -> tuple[Interval, Interval]:
    """Apply an operation through each kernel, returning both results."""
    s = op_scalar(*operands)
    v = as_interval(op_vector(*[batch1(o) for o in operands]))
    return s, v


BINOPS = [
    ("add", lambda a, b: a + b),
    ("sub", lambda a, b: a - b),
    ("mul", lambda a, b: a * b),
    ("div", lambda a, b: a / b),
    ("min", lambda a, b: a.min_with(b)),
    ("max", lambda a, b: a.max_with(b)),
]

UNOPS = [
    ("neg", lambda a: -a),
    ("abs", abs),
    ("sqr", lambda a: a.sqr()),
    ("sqrt", lambda a: a.sqrt()),
    ("exp", lambda a: a.exp()),
    ("log", lambda a: a.log()),
    ("sin", lambda a: a.sin()),
    ("cos", lambda a: a.cos()),
    ("tan", lambda a: a.tan()),
    ("tanh", lambda a: a.tanh()),
    ("sigmoid", lambda a: a.sigmoid()),
    ("inverse", lambda a: a.inverse()),
]


class TestEmptyPropagation:
    @pytest.mark.parametrize("name,op", BINOPS, ids=[n for n, _ in BINOPS])
    def test_binary_empty_operand(self, name, op):
        other = Interval(1.0, 2.0)
        for args in [(EMPTY, other), (other, EMPTY), (EMPTY, EMPTY)]:
            s, v = both(op, op, *args)
            assert s.is_empty, name
            assert v.is_empty, name

    @pytest.mark.parametrize("name,op", UNOPS, ids=[n for n, _ in UNOPS])
    def test_unary_empty_operand(self, name, op):
        s, v = both(op, op, EMPTY)
        assert s.is_empty, name
        assert v.is_empty, name

    def test_pow_empty(self):
        for n in (0, 1, 2, 3, -2):
            assert EMPTY.pow(n).is_empty
            assert bool(batch1(EMPTY).pow_int(n).is_empty[0])

    def test_empty_measures(self):
        assert EMPTY.width() == 0.0
        ia = batch1(EMPTY)
        assert ia.width()[0] == 0.0
        assert not ia.contains(0.0)[0]


class TestUnboundedOperands:
    CASES = [
        (Interval(0.0, INF), Interval(1.0, 2.0)),
        (Interval(-INF, 0.0), Interval(-2.0, 5.0)),
        (Interval(-INF, INF), Interval(0.5, 1.5)),
        (Interval(-INF, INF), Interval(-INF, INF)),
        (Interval(3.0, INF), Interval(-INF, -1.0)),
    ]

    @pytest.mark.parametrize("name,op", BINOPS, ids=[n for n, _ in BINOPS])
    def test_binary_agree(self, name, op):
        for a, b in self.CASES:
            s, v = both(op, op, a, b)
            assert (s.is_empty and v.is_empty) or (s.lo, s.hi) == (v.lo, v.hi), (
                f"{name}({a}, {b}): scalar {s}, vector {v}"
            )

    @pytest.mark.parametrize("name,op", UNOPS, ids=[n for n, _ in UNOPS])
    def test_unary_agree(self, name, op):
        for a, _ in self.CASES:
            s, v = both(op, op, a)
            assert (s.is_empty and v.is_empty) or (s.lo, s.hi) == (v.lo, v.hi), (
                f"{name}({a}): scalar {s}, vector {v}"
            )

    def test_lower_bound_of_overflowed_sum_stays_finite(self):
        # [big, inf] + [big, inf]: the lo bound overflows to inf and must
        # clamp back to the largest finite double in both kernels.
        big = 1.5e308
        a = Interval(big, INF)
        s = a + a
        v = as_interval(batch1(a) + batch1(a))
        assert s.lo == v.lo == math.nextafter(INF, 0.0)
        assert s.hi == v.hi == INF

    def test_entire_line_trig(self):
        e = Interval.entire()
        assert (e.sin().lo, e.sin().hi) == (-1.0, 1.0)
        ve = batch1(e).sin()
        assert (ve.lo[0], ve.hi[0]) == (-1.0, 1.0)


class TestDivisionThroughZero:
    def test_zero_interior_gives_entire(self):
        num, den = Interval(1.0, 2.0), Interval(-1.0, 1.0)
        s = num / den
        v = as_interval(batch1(num) / batch1(den))
        assert (s.lo, s.hi) == (-INF, INF)
        assert (v.lo, v.hi) == (-INF, INF)

    def test_zero_at_lo_gives_half_line(self):
        num, den = Interval(1.0, 2.0), Interval(0.0, 1.0)
        s = num / den
        v = as_interval(batch1(num) / batch1(den))
        assert (s.lo, s.hi) == (v.lo, v.hi)
        assert s.lo == pytest.approx(1.0, abs=1e-12) and s.hi == INF

    def test_zero_at_hi_gives_half_line(self):
        num, den = Interval(1.0, 2.0), Interval(-1.0, 0.0)
        s = num / den
        v = as_interval(batch1(num) / batch1(den))
        assert (s.lo, s.hi) == (v.lo, v.hi)
        assert s.lo == -INF and s.hi == pytest.approx(-1.0, abs=1e-12)

    def test_division_by_zero_point_is_empty(self):
        num, den = Interval(1.0, 2.0), Interval(0.0, 0.0)
        assert (num / den).is_empty
        assert bool((batch1(num) / batch1(den)).is_empty[0])

    def test_zero_over_zero_spanning(self):
        num, den = Interval(0.0, 0.0), Interval(-1.0, 1.0)
        s = num / den
        v = as_interval(batch1(num) / batch1(den))
        assert (s.lo, s.hi) == (v.lo, v.hi) == (0.0, 0.0)


class TestOutwardRoundingMonotonicity:
    """Outward rounding may only widen: results contain the exact value
    and bumped bounds move monotonically outward."""

    def test_bounds_bracket_exact_value(self):
        # 0.1 + 0.2 is inexact in binary; both kernels must bracket it
        a, b = Interval.point(0.1), Interval.point(0.2)
        s = a + b
        v = as_interval(batch1(a) + batch1(b))
        exact = 0.30000000000000001665334536937735  # 0.1+0.2 over the reals
        assert s.lo < exact < s.hi
        assert v.lo < exact < v.hi
        assert (s.lo, s.hi) == (v.lo, v.hi)

    def test_exact_sums_not_widened(self):
        # representable sums stay points in both kernels (TwoSum residual)
        a, b = Interval.point(0.25), Interval.point(0.5)
        s = a + b
        v = as_interval(batch1(a) + batch1(b))
        assert s.lo == s.hi == 0.75
        assert v.lo == v.hi == 0.75

    def test_exact_products_not_widened(self):
        a, b = Interval.point(3.0), Interval.point(0.125)
        s = a * b
        v = as_interval(batch1(a) * batch1(b))
        assert s.lo == s.hi == 0.375
        assert v.lo == v.hi == 0.375

    def test_inexact_products_widened_one_ulp(self):
        a, b = Interval.point(0.1), Interval.point(0.3)
        s = a * b
        v = as_interval(batch1(a) * batch1(b))
        assert (s.lo, s.hi) == (v.lo, v.hi)
        p = 0.1 * 0.3  # inexact: both bounds bump one ulp outward
        assert s.lo == math.nextafter(p, -INF)
        assert s.hi == math.nextafter(p, INF)

    def test_repeated_ops_monotone(self):
        # iterating x -> x + 0.1 can only keep or grow the enclosure width
        s = Interval.point(0.0)
        v = IntervalArray.point(np.zeros(1))
        tenth_s = Interval.point(0.1)
        tenth_v = IntervalArray.point(np.full(1, 0.1))
        w_prev_s = w_prev_v = -1.0
        for _ in range(50):
            s = s + tenth_s
            v = v + tenth_v
            assert s.width() >= w_prev_s >= -1.0
            assert float(v.width()[0]) >= w_prev_v
            w_prev_s, w_prev_v = s.width(), float(v.width()[0])
        assert (s.lo, s.hi) == (float(v.lo[0]), float(v.hi[0]))

    def test_width_never_shrinks_under_rounding(self):
        # lo is rounded down, hi up: op([a,a],[b,b]) width is >= 0 and
        # bounds sandwich the double result
        for (x, y) in [(1e-300, 1e300), (3.3, 7.7), (-2.5, 1e-8)]:
            s = Interval.point(x) * Interval.point(y)
            v = as_interval(batch1(Interval.point(x)) * batch1(Interval.point(y)))
            assert s.lo <= x * y <= s.hi
            assert v.lo <= x * y <= v.hi
            assert s.width() >= 0.0 and v.width() >= 0.0
