"""Interval edge cases, exercised through BOTH kernels.

Every case is checked against the scalar :class:`Interval` and the
vectorized :class:`IntervalArray`: EMPTY propagation, unbounded (+/-inf)
operands, division through zero, and outward-rounding monotonicity.
"""

import math

import numpy as np
import pytest

from repro.intervals import EMPTY, Interval, IntervalArray

INF = math.inf


def batch1(iv: Interval) -> IntervalArray:
    return IntervalArray.from_intervals([iv])


def as_interval(ia: IntervalArray, i: int = 0) -> Interval:
    return Interval(float(ia.lo[i]), float(ia.hi[i]))


def both(op_scalar, op_vector, *operands: Interval) -> tuple[Interval, Interval]:
    """Apply an operation through each kernel, returning both results."""
    s = op_scalar(*operands)
    v = as_interval(op_vector(*[batch1(o) for o in operands]))
    return s, v


BINOPS = [
    ("add", lambda a, b: a + b),
    ("sub", lambda a, b: a - b),
    ("mul", lambda a, b: a * b),
    ("div", lambda a, b: a / b),
    ("min", lambda a, b: a.min_with(b)),
    ("max", lambda a, b: a.max_with(b)),
]

UNOPS = [
    ("neg", lambda a: -a),
    ("abs", abs),
    ("sqr", lambda a: a.sqr()),
    ("sqrt", lambda a: a.sqrt()),
    ("exp", lambda a: a.exp()),
    ("log", lambda a: a.log()),
    ("sin", lambda a: a.sin()),
    ("cos", lambda a: a.cos()),
    ("tan", lambda a: a.tan()),
    ("tanh", lambda a: a.tanh()),
    ("sigmoid", lambda a: a.sigmoid()),
    ("inverse", lambda a: a.inverse()),
]


class TestEmptyPropagation:
    @pytest.mark.parametrize("name,op", BINOPS, ids=[n for n, _ in BINOPS])
    def test_binary_empty_operand(self, name, op):
        other = Interval(1.0, 2.0)
        for args in [(EMPTY, other), (other, EMPTY), (EMPTY, EMPTY)]:
            s, v = both(op, op, *args)
            assert s.is_empty, name
            assert v.is_empty, name

    @pytest.mark.parametrize("name,op", UNOPS, ids=[n for n, _ in UNOPS])
    def test_unary_empty_operand(self, name, op):
        s, v = both(op, op, EMPTY)
        assert s.is_empty, name
        assert v.is_empty, name

    def test_pow_empty(self):
        for n in (0, 1, 2, 3, -2):
            assert EMPTY.pow(n).is_empty
            assert bool(batch1(EMPTY).pow_int(n).is_empty[0])

    def test_empty_measures(self):
        assert EMPTY.width() == 0.0
        ia = batch1(EMPTY)
        assert ia.width()[0] == 0.0
        assert not ia.contains(0.0)[0]


class TestUnboundedOperands:
    CASES = [
        (Interval(0.0, INF), Interval(1.0, 2.0)),
        (Interval(-INF, 0.0), Interval(-2.0, 5.0)),
        (Interval(-INF, INF), Interval(0.5, 1.5)),
        (Interval(-INF, INF), Interval(-INF, INF)),
        (Interval(3.0, INF), Interval(-INF, -1.0)),
    ]

    @pytest.mark.parametrize("name,op", BINOPS, ids=[n for n, _ in BINOPS])
    def test_binary_agree(self, name, op):
        for a, b in self.CASES:
            s, v = both(op, op, a, b)
            assert (s.is_empty and v.is_empty) or (s.lo, s.hi) == (v.lo, v.hi), (
                f"{name}({a}, {b}): scalar {s}, vector {v}"
            )

    @pytest.mark.parametrize("name,op", UNOPS, ids=[n for n, _ in UNOPS])
    def test_unary_agree(self, name, op):
        for a, _ in self.CASES:
            s, v = both(op, op, a)
            assert (s.is_empty and v.is_empty) or (s.lo, s.hi) == (v.lo, v.hi), (
                f"{name}({a}): scalar {s}, vector {v}"
            )

    def test_lower_bound_of_overflowed_sum_stays_finite(self):
        # [big, inf] + [big, inf]: the lo bound overflows to inf and must
        # clamp back to the largest finite double in both kernels.
        big = 1.5e308
        a = Interval(big, INF)
        s = a + a
        v = as_interval(batch1(a) + batch1(a))
        assert s.lo == v.lo == math.nextafter(INF, 0.0)
        assert s.hi == v.hi == INF

    def test_entire_line_trig(self):
        e = Interval.entire()
        assert (e.sin().lo, e.sin().hi) == (-1.0, 1.0)
        ve = batch1(e).sin()
        assert (ve.lo[0], ve.hi[0]) == (-1.0, 1.0)


class TestDivisionThroughZero:
    def test_zero_interior_gives_entire(self):
        num, den = Interval(1.0, 2.0), Interval(-1.0, 1.0)
        s = num / den
        v = as_interval(batch1(num) / batch1(den))
        assert (s.lo, s.hi) == (-INF, INF)
        assert (v.lo, v.hi) == (-INF, INF)

    def test_zero_at_lo_gives_half_line(self):
        num, den = Interval(1.0, 2.0), Interval(0.0, 1.0)
        s = num / den
        v = as_interval(batch1(num) / batch1(den))
        assert (s.lo, s.hi) == (v.lo, v.hi)
        assert s.lo == pytest.approx(1.0, abs=1e-12) and s.hi == INF

    def test_zero_at_hi_gives_half_line(self):
        num, den = Interval(1.0, 2.0), Interval(-1.0, 0.0)
        s = num / den
        v = as_interval(batch1(num) / batch1(den))
        assert (s.lo, s.hi) == (v.lo, v.hi)
        assert s.lo == -INF and s.hi == pytest.approx(-1.0, abs=1e-12)

    def test_division_by_zero_point_is_empty(self):
        num, den = Interval(1.0, 2.0), Interval(0.0, 0.0)
        assert (num / den).is_empty
        assert bool((batch1(num) / batch1(den)).is_empty[0])

    def test_zero_over_zero_spanning(self):
        num, den = Interval(0.0, 0.0), Interval(-1.0, 1.0)
        s = num / den
        v = as_interval(batch1(num) / batch1(den))
        assert (s.lo, s.hi) == (v.lo, v.hi) == (0.0, 0.0)


class TestOutwardRoundingMonotonicity:
    """Outward rounding may only widen: results contain the exact value
    and bumped bounds move monotonically outward."""

    def test_bounds_bracket_exact_value(self):
        # 0.1 + 0.2 is inexact in binary; both kernels must bracket it
        a, b = Interval.point(0.1), Interval.point(0.2)
        s = a + b
        v = as_interval(batch1(a) + batch1(b))
        exact = 0.30000000000000001665334536937735  # 0.1+0.2 over the reals
        assert s.lo < exact < s.hi
        assert v.lo < exact < v.hi
        assert (s.lo, s.hi) == (v.lo, v.hi)

    def test_exact_sums_not_widened(self):
        # representable sums stay points in both kernels (TwoSum residual)
        a, b = Interval.point(0.25), Interval.point(0.5)
        s = a + b
        v = as_interval(batch1(a) + batch1(b))
        assert s.lo == s.hi == 0.75
        assert v.lo == v.hi == 0.75

    def test_exact_products_not_widened(self):
        a, b = Interval.point(3.0), Interval.point(0.125)
        s = a * b
        v = as_interval(batch1(a) * batch1(b))
        assert s.lo == s.hi == 0.375
        assert v.lo == v.hi == 0.375

    def test_inexact_products_widened_one_ulp(self):
        a, b = Interval.point(0.1), Interval.point(0.3)
        s = a * b
        v = as_interval(batch1(a) * batch1(b))
        assert (s.lo, s.hi) == (v.lo, v.hi)
        p = 0.1 * 0.3  # inexact: both bounds bump one ulp outward
        assert s.lo == math.nextafter(p, -INF)
        assert s.hi == math.nextafter(p, INF)

    def test_repeated_ops_monotone(self):
        # iterating x -> x + 0.1 can only keep or grow the enclosure width
        s = Interval.point(0.0)
        v = IntervalArray.point(np.zeros(1))
        tenth_s = Interval.point(0.1)
        tenth_v = IntervalArray.point(np.full(1, 0.1))
        w_prev_s = w_prev_v = -1.0
        for _ in range(50):
            s = s + tenth_s
            v = v + tenth_v
            assert s.width() >= w_prev_s >= -1.0
            assert float(v.width()[0]) >= w_prev_v
            w_prev_s, w_prev_v = s.width(), float(v.width()[0])
        assert (s.lo, s.hi) == (float(v.lo[0]), float(v.hi[0]))

    def test_width_never_shrinks_under_rounding(self):
        # lo is rounded down, hi up: op([a,a],[b,b]) width is >= 0 and
        # bounds sandwich the double result
        for (x, y) in [(1e-300, 1e300), (3.3, 7.7), (-2.5, 1e-8)]:
            s = Interval.point(x) * Interval.point(y)
            v = as_interval(batch1(Interval.point(x)) * batch1(Interval.point(y)))
            assert s.lo <= x * y <= s.hi
            assert v.lo <= x * y <= v.hi
            assert s.width() >= 0.0 and v.width() >= 0.0


class TestWidthOrdering:
    """Regression: widths feed the widest-first heaps of the solver, so
    they must be totally ordered floats -- an ``inf - inf = NaN`` width
    (boxes with one endpoint pushed past the float range by outward
    rounding) used to poison every heap comparison after it."""

    def test_doubly_infinite_endpoint_width_is_zero(self):
        # [inf, inf] is a degenerate point at infinity, not a NaN width
        assert Interval(INF, INF).width() == 0.0
        assert Interval(-INF, -INF).width() == 0.0
        assert batch1(Interval(INF, INF)).width()[0] == 0.0

    def test_half_infinite_width_is_inf(self):
        assert Interval(2.0, INF).width() == INF
        assert Interval(-INF, 2.0).width() == INF
        assert Interval(-INF, INF).width() == INF
        assert batch1(Interval(2.0, INF)).width()[0] == INF

    def test_no_nan_widths_in_batch(self):
        ia = IntervalArray.from_intervals([
            Interval(INF, INF), Interval(-INF, -INF), Interval(1.0, INF),
            Interval(-INF, INF), EMPTY, Interval(0.0, 1.0),
        ])
        w = ia.width()
        assert not np.isnan(w).any()
        assert list(w) == [0.0, 0.0, INF, INF, 0.0, 1.0]

    def test_box_max_width_never_nan(self):
        from repro.intervals import BoxArray

        lo = np.array([[0.0, INF], [0.0, 0.0]])
        hi = np.array([[1.0, INF], [2.0, 0.5]])
        boxes = BoxArray(("x", "y"), lo, hi)
        w = boxes.max_width()
        assert not np.isnan(w).any()
        # the [inf, inf] dimension is degenerate: row 0's width is its
        # finite x-extent, so widest-first ordering picks row 1 first
        assert list(w) == [1.0, 2.0]
        assert sorted(range(2), key=lambda i: -w[i]) == [1, 0]

    def test_heap_ordering_is_well_defined(self):
        import heapq

        widths = [
            Interval(INF, INF).width(),
            Interval(0.0, 3.0).width(),
            Interval(-INF, INF).width(),
            Interval(1.0, 1.0).width(),
        ]
        heap = [(-w, i) for i, w in enumerate(widths)]
        heapq.heapify(heap)
        order = [heapq.heappop(heap)[1] for _ in range(len(heap))]
        assert order == [2, 1, 0, 3]  # entire line first, points last


class TestPowDomainEdges:
    """Regression: fractional/integer pow at domain boundaries, checked
    identically through both kernels."""

    @staticmethod
    def _pow_both(iv: Interval, n) -> tuple[Interval, Interval]:
        ia = batch1(iv)
        v = ia.pow_int(n) if isinstance(n, int) else ia.pow_scalar(n)
        return iv.pow(n), as_interval(v)

    def test_zero_pow_zero_is_one(self):
        s, v = self._pow_both(Interval(0.0, 0.0), 0)
        assert (s.lo, s.hi) == (v.lo, v.hi) == (1.0, 1.0)

    def test_negative_base_fractional_exponent_is_empty(self):
        s, v = self._pow_both(Interval(-2.0, -1.0), 0.5)
        assert s.is_empty and v.is_empty

    def test_zero_base_negative_fractional_exponent_is_empty(self):
        s, v = self._pow_both(Interval(0.0, 0.0), -1.5)
        assert s.is_empty and v.is_empty

    def test_zero_crossing_base_clips_to_domain(self):
        # [-1, 4] ** 0.5: the negative part leaves the real domain, the
        # rest must still bracket sqrt on [0, 4]
        s, v = self._pow_both(Interval(-1.0, 4.0), 0.5)
        assert (s.lo, s.hi) == (v.lo, v.hi)
        assert s.lo == 0.0 and s.hi >= 2.0

    def test_zero_touching_negative_exponent_unbounded(self):
        # [0, 4] ** -0.5 blows up at 0: the result must contain every
        # x**-0.5 for x in (0, 4], e.g. 10.0 at x = 0.01
        s, v = self._pow_both(Interval(0.0, 4.0), -0.5)
        assert (s.lo, s.hi) == (v.lo, v.hi)
        assert s.hi == INF and s.lo <= 0.5
        assert s.contains(10.0)

    def test_huge_base_integer_pow_saturates(self):
        # 1e200 ** 3 overflows the double range; the bound must saturate
        # to inf instead of raising OverflowError
        s, v = self._pow_both(Interval(1e200, 1e200), 3)
        assert (s.hi, v.hi) == (INF, INF)
        assert s.lo == v.lo == math.nextafter(INF, 0.0)

    def test_infinite_point_base_even_pow(self):
        s, v = self._pow_both(Interval(INF, INF), 2)
        assert (s.lo, s.hi) == (v.lo, v.hi)
        assert s.hi == INF and not s.is_empty

    def test_inclusion_across_fractional_exponents(self):
        # dense member-point inclusion sweep over the bugfixed branches
        rngs = [(-3.0, 5.0), (0.0, 2.0), (1e-8, 1e8), (-1.0, 0.0)]
        for n in (0.5, 1.5, 2.5, -0.5, -1.5):
            for lo, hi in rngs:
                iv = Interval(lo, hi)
                s, v = self._pow_both(iv, n)
                for x in np.linspace(lo, hi, 25):
                    # only member points inside the real domain of x**n
                    if x < 0 or (x == 0 and n < 0):
                        continue
                    y = x ** n
                    assert s.is_empty or (s.lo <= y <= s.hi), (n, lo, hi, x)
                    assert v.is_empty or (v.lo <= y <= v.hi), (n, lo, hi, x)
