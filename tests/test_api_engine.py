"""Engine round-trips: every registered task kind returns a populated
AnalysisReport, and parallel batches reproduce serial results."""

import math

import pytest

from repro.api import AnalysisStatus, Engine, Model, TaskSpec, run, task_names

HYBRID_SWITCH = {
    "type": "hybrid",
    "name": "switch",
    "variables": ["x"],
    "params": {},
    "initial_mode": "a",
    "init": {"x": [1.0, 1.0]},
    "modes": [
        {"name": "a", "derivatives": {"x": "-x"}, "invariant": {"op": "true"}},
        {"name": "b", "derivatives": {"x": "x"}, "invariant": {"op": "true"}},
    ],
    "jumps": [
        {
            "source": "a",
            "target": "b",
            "guard": {"op": "atom", "term": "0.5 - x", "strict": False},
            "reset": {},
        }
    ],
}

HYBRID_DECAY = {
    "type": "hybrid",
    "name": "decay",
    "variables": ["x"],
    "params": {},
    "initial_mode": "m",
    "init": {"x": [0.9, 1.1]},
    "modes": [{"name": "m", "derivatives": {"x": "-x"}, "invariant": {"op": "true"}}],
    "jumps": [],
}

STABLE_LINEAR = {
    "type": "ode",
    "name": "stable_linear",
    "derivatives": {"x": "-x", "y": "-2*y"},
    "params": {},
}


def _logistic_truth(t, r=0.65, K=10.0, x0=0.5):
    return K / (1.0 + (K / x0 - 1.0) * math.exp(-r * t))


def calibrate_spec(name="cal", tolerance=0.2):
    return {
        "task": "calibrate",
        "name": name,
        "model": {"builtin": "logistic"},
        "query": {
            "data": {
                "samples": [[t, {"x": _logistic_truth(t)}] for t in (2.0, 4.0)],
                "tolerance": tolerance,
            },
            "param_ranges": {"r": [0.1, 2.0]},
            "x0": {"x": 0.5},
        },
        "solver": {"delta": 0.05, "max_boxes": 400},
    }


def smc_spec(name="smc", seed=None):
    spec = {
        "task": "smc",
        "name": name,
        "model": {"builtin": "logistic"},
        "query": {
            "phi": {"op": "F", "bound": 6.0, "arg": "x >= 5.0"},
            "init": {"x": [0.3, 0.7]},
            "horizon": 6.0,
            "method": "probability",
            "epsilon": 0.25,
            "alpha": 0.2,
        },
    }
    if seed is not None:
        spec["seed"] = seed
    return spec


class TestEveryTaskKind:
    """Each registered kind round-trips through Engine.run with status,
    timing and stats/metrics populated."""

    def _check(self, report, task, statuses):
        assert report.task == task
        assert report.status in statuses
        assert report.ok
        assert report.wall_time > 0.0
        assert report.seed is not None
        assert report.stats or report.metrics

    def test_registry_has_all_eight(self):
        assert task_names() == [
            "calibrate", "falsify", "lyapunov", "pipeline",
            "reach", "robustness", "smc", "therapy",
        ]

    def test_calibrate(self):
        report = run(calibrate_spec())
        self._check(report, "calibrate", {AnalysisStatus.DELTA_SAT})
        assert abs(report.witness["r"] - 0.65) < 0.15
        assert report.witness_box is not None

    def test_falsify(self):
        report = run({
            "task": "falsify",
            "model": {"builtin": "logistic"},
            "query": {
                "method": "data",
                "data": {
                    "samples": [[1.0, {"x": 5.0}], [2.0, {"x": 0.2}]],
                    "tolerance": 0.1,
                },
                "param_ranges": {"r": [0.1, 2.0]},
                "x0": {"x": 0.5},
            },
        })
        self._check(report, "falsify", {AnalysisStatus.FALSIFIED})
        assert report.payload["rejected"] is True

    def test_reach(self):
        report = run({
            "task": "reach",
            "model": HYBRID_SWITCH,
            "query": {
                "goal": "x >= 2.0",
                "goal_mode": "b",
                "max_jumps": 2,
                "time_bound": 4.0,
            },
            "solver": {"delta": 0.1, "max_boxes": 200},
        })
        self._check(report, "reach", {AnalysisStatus.DELTA_SAT})
        assert report.payload["mode_path"] == ["a", "b"]
        assert report.stats["paths_explored"] >= 1

    def test_smc(self):
        report = run(smc_spec())
        self._check(report, "smc", {AnalysisStatus.ESTIMATED})
        assert report.metrics["probability"] == pytest.approx(1.0, abs=0.05)
        assert report.metrics["samples"] > 0

    def test_lyapunov(self):
        report = run({
            "task": "lyapunov",
            "model": STABLE_LINEAR,
            "query": {
                "region": {"x": [-1.0, 1.0], "y": [-1.0, 1.0]},
                "mode": "certify",
                "V": "x^2 + y^2",
            },
            "solver": {"delta": 1e-3, "max_boxes": 50000},
        })
        self._check(report, "lyapunov", {AnalysisStatus.DELTA_SAT})
        assert report.payload["V"]

    def test_therapy_policy(self):
        report = run({
            "task": "therapy",
            "model": {"builtin": "thermostat"},
            "query": {
                "method": "policy",
                "phi": {
                    "op": "G",
                    "bound": 6.0,
                    "arg": ["x >= 14.0", "x <= 26.0"],
                },
                "threshold_ranges": {
                    "theta_on": [15.0, 19.0],
                    "theta_off": [21.0, 25.0],
                },
                "init": {"x": [20.0, 21.0]},
                "horizon": 6.0,
                "population": 4,
                "iterations": 2,
                "confirm_samples": 5,
            },
        })
        self._check(report, "therapy", {AnalysisStatus.DELTA_SAT})
        assert set(report.witness) == {"theta_on", "theta_off"}
        assert report.metrics["robustness"] > 0.0

    def test_robustness(self):
        report = run({
            "task": "robustness",
            "model": HYBRID_DECAY,
            "query": {
                "disturbance": {"x": [0.9, 1.1]},
                "bad": "x >= 2.0",
                "time_bound": 3.0,
                "max_jumps": 0,
            },
            "solver": {"delta": 0.05, "max_boxes": 200},
        })
        self._check(report, "robustness", {AnalysisStatus.VALIDATED})

    def test_pipeline(self):
        report = run({
            "task": "pipeline",
            "model": {"builtin": "logistic"},
            "query": {
                "train": {
                    "samples": [[t, {"x": _logistic_truth(t)}] for t in (2.0, 4.0)],
                    "tolerance": 0.15,
                },
                "test": {
                    "samples": [[6.0, {"x": _logistic_truth(6.0)}]],
                    "tolerance": 0.2,
                },
                "param_ranges": {"r": [0.1, 2.0]},
                "x0": {"x": 0.5},
            },
        })
        self._check(report, "pipeline", {AnalysisStatus.VALIDATED})
        assert report.payload["stage"] == "validated"


class TestEngineBehavior:
    def test_model_file_loading(self, tmp_path):
        from repro.io import dump_model
        from repro.models import logistic

        path = tmp_path / "logistic.json"
        dump_model(logistic(), str(path))
        spec = calibrate_spec()
        spec["model"] = {"file": str(path)}
        report = run(spec)
        assert report.status is AnalysisStatus.DELTA_SAT

    def test_model_handle_accepts_raw_system(self):
        from repro.models import logistic

        spec = calibrate_spec()
        ts = TaskSpec.from_dict(spec)
        ts.model = Model.of(logistic())
        assert run(ts).status is AnalysisStatus.DELTA_SAT

    def test_unknown_task_becomes_error_report(self):
        report = run({"task": "nope", "model": {"builtin": "logistic"}})
        assert report.status is AnalysisStatus.ERROR
        assert not report.ok
        assert "unknown task" in report.detail

    def test_bad_query_becomes_error_report(self):
        report = run({"task": "calibrate", "model": {"builtin": "logistic"}})
        assert report.status is AnalysisStatus.ERROR
        assert "data" in report.detail

    def test_engine_seed_defaults_are_recorded(self):
        report = Engine(seed=11).run(smc_spec())
        assert report.seed == 11
        report = Engine(seed=11).run(smc_spec(seed=3))
        assert report.seed == 3

    def test_seed_changes_smc_sampling(self):
        spec = smc_spec()
        spec["query"]["init"] = {"x": [0.05, 0.9]}
        spec["query"]["phi"] = {"op": "F", "bound": 4.0, "arg": "x >= 5.0"}
        spec["query"]["horizon"] = 4.0
        a = Engine(seed=1).run(spec)
        b = Engine(seed=1).run(spec)
        assert a.metrics == b.metrics  # same seed -> same estimate


class TestParallelBatch:
    def test_batch_parallel_matches_serial(self):
        specs = [
            calibrate_spec("a"),
            smc_spec("b"),
            smc_spec("c", seed=7),
            calibrate_spec("d", tolerance=0.3),
        ]
        engine = Engine(seed=0)
        serial = engine.run_batch(specs, workers=1)
        parallel = engine.run_batch(specs, workers=2)
        assert [r.name for r in parallel] == ["a", "b", "c", "d"]
        for s, p in zip(serial, parallel):
            s.wall_time = p.wall_time = 0.0
            assert s.to_dict() == p.to_dict()

    def test_batch_error_isolation(self):
        reports = Engine().run_batch(
            [{"task": "nope", "model": {"builtin": "logistic"}}, smc_spec()],
            workers=2,
        )
        assert reports[0].status is AnalysisStatus.ERROR
        assert reports[1].status is AnalysisStatus.ESTIMATED

    def test_batch_with_unserializable_query_runs_locally(self):
        # a live BLTL object cannot travel to a worker process; the
        # batch must fall back to in-process execution for that spec
        from repro.api.serialize import bltl_from_value

        live = TaskSpec.from_dict(smc_spec("live"))
        live.query["phi"] = bltl_from_value(live.query["phi"])
        reports = Engine(seed=0).run_batch(
            [live, smc_spec("plain")], workers=2
        )
        assert [r.name for r in reports] == ["live", "plain"]
        assert all(r.status is AnalysisStatus.ESTIMATED for r in reports)
        assert reports[0].metrics == reports[1].metrics
