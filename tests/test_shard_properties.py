"""Hypothesis property tests of the sharded paving driver.

Random polynomial problems over random boxes, checked against the
driver's contracts: sharded verdicts equal serial verdicts, merged
pavings cover every solution with disjoint in-box pieces, and results
are deterministic across shard counts, backends and repeated runs.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.expr import Const, var
from repro.intervals import Box
from repro.logic import And
from repro.solver import DeltaSolver, Status

x, y = var("x"), var("y")

# subnormal coefficients are excluded: a product like 5e-324 * -0.5
# underflows to -0.0 in the scalar eval (so `>= 0` holds) while the
# interval kernel soundly proves the real value negative -- a float
# semantics mismatch, not a paving bug
COEF = st.floats(
    min_value=-3.0, max_value=3.0, allow_nan=False, allow_subnormal=False
)


@st.composite
def quadratic_atom(draw):
    """Random atom a*x^2 + b*x*y + c*y^2 + d*x + e*y + f >= 0."""
    a, b, c, d, e, f = (draw(COEF) for _ in range(6))
    term = (
        Const(a) * x * x + Const(b) * x * y + Const(c) * y * y
        + Const(d) * x + Const(e) * y + Const(f)
    )
    return term >= 0


@st.composite
def search_box(draw):
    """A random nondegenerate box around the origin."""
    cx = draw(st.floats(min_value=-1.0, max_value=1.0, allow_nan=False))
    cy = draw(st.floats(min_value=-1.0, max_value=1.0, allow_nan=False))
    hx = draw(st.floats(min_value=0.4, max_value=2.0, allow_nan=False))
    hy = draw(st.floats(min_value=0.4, max_value=2.0, allow_nan=False))
    return Box.from_bounds({"x": (cx - hx, cx + hx), "y": (cy - hy, cy + hy)})


def _sharded(shards, backend="inline", **kw):
    return DeltaSolver(
        delta=0.05, max_boxes=4000, shards=shards, shard_backend=backend, **kw
    )


def _tuples(parts):
    return [
        [tuple((k, b[k].lo, b[k].hi) for k in b.names) for b in part]
        for part in parts
    ]


@given(quadratic_atom(), quadratic_atom(), st.integers(min_value=2, max_value=5))
@settings(max_examples=30, deadline=None)
def test_sharded_verdict_equals_serial(a1, a2, shards):
    phi = And(a1, a2)
    box = Box.from_bounds({"x": (-2.0, 2.0), "y": (-2.0, 2.0)})
    serial = DeltaSolver(delta=0.05, max_boxes=4000)._solve_impl(phi, box)
    sharded = _sharded(shards)._solve_impl(phi, box)
    assert sharded.status is serial.status
    if sharded.status is Status.DELTA_SAT:
        # any witness must delta-satisfy the weakened formula
        weak = phi.delta_weaken(0.05 + 1e-9)
        for pt in sharded.witness_box.corners():
            assert weak.eval(pt)


@given(quadratic_atom(), search_box(), st.integers(min_value=2, max_value=4))
@settings(max_examples=25, deadline=None)
def test_merged_paving_partitions_the_box(atom, box, shards):
    """Merged shard pavings: in-box, pairwise disjoint, and every
    solution point is covered by a sat or undecided piece (contraction
    only ever discards non-solutions)."""
    sat, unsat, und = _sharded(shards).pave(atom, box, min_width=0.4)
    pieces = sat + unsat + und
    for b in pieces:
        assert box.inflate(1e-9).contains_box(b)
    for i, b in enumerate(pieces):
        for other in pieces[i + 1:]:
            inter = b.intersect(other)
            assert inter.is_empty or inter.volume() == 0.0, (b, other)
    covered = sat + und
    for pt in box.sample_grid(5):
        if atom.eval(pt):
            assert any(b.inflate(1e-9).contains_point(pt) for b in covered), pt


@given(quadratic_atom(), quadratic_atom(), st.integers(min_value=2, max_value=4))
@settings(max_examples=20, deadline=None)
def test_determinism_across_shard_counts(a1, a2, shards):
    """The bootstrap walks the serial tree, so the merged paving is the
    same for every shard count -- including no sharding at all."""
    phi = And(a1, a2)
    box = Box.from_bounds({"x": (-2.0, 2.0), "y": (-2.0, 2.0)})
    serial = DeltaSolver(delta=0.05, max_boxes=4000).pave(phi, box, min_width=0.4)
    sharded = _sharded(shards).pave(phi, box, min_width=0.4)
    assert _tuples(serial) == _tuples(sharded)


@given(quadratic_atom(), quadratic_atom())
@settings(max_examples=10, deadline=None)
def test_determinism_across_backend_types(a1, a2):
    """Thread scheduling must not leak into the merged result."""
    phi = And(a1, a2)
    box = Box.from_bounds({"x": (-2.0, 2.0), "y": (-2.0, 2.0)})
    inline = _sharded(3, "inline").pave(phi, box, min_width=0.4)
    threaded = _sharded(3, "thread").pave(phi, box, min_width=0.4)
    again = _sharded(3, "thread").pave(phi, box, min_width=0.4)
    assert _tuples(inline) == _tuples(threaded) == _tuples(again)
