"""Tests for SMT calibration, paving, and falsification apps."""

import math

import pytest

from repro.apps import (
    CalibrationStatus,
    Checkpoint,
    SMTCalibrator,
    TimeSeriesData,
    falsify_with_data,
)
from repro.expr import var
from repro.intervals import Box
from repro.models import logistic
from repro.odes import ODESystem, rk45


def decay_system():
    return ODESystem({"x": -var("k") * var("x")}, {"k": 1.0}, name="decay")


def decay_data(k_true=1.5, times=(0.5, 1.0, 2.0), tol=0.02):
    samples = [(t, {"x": math.exp(-k_true * t)}) for t in times]
    return TimeSeriesData.from_samples(samples, tolerance=tol)


class TestTimeSeriesData:
    def test_from_samples_absolute(self):
        d = TimeSeriesData.from_samples([(1.0, {"x": 2.0})], tolerance=0.1)
        assert d.checkpoints[0].bands["x"] == (1.9, 2.1)

    def test_from_samples_relative(self):
        d = TimeSeriesData.from_samples([(1.0, {"x": 2.0})], tolerance=0.1, relative=True)
        assert d.checkpoints[0].bands["x"] == pytest.approx((1.8, 2.2))

    def test_sorted_by_time(self):
        d = TimeSeriesData([Checkpoint(2.0, {"x": (0, 1)}), Checkpoint(1.0, {"x": (0, 1)})])
        assert [c.t for c in d.checkpoints] == [1.0, 2.0]

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            TimeSeriesData([Checkpoint(-1.0, {"x": (0, 1)})])

    def test_horizon(self):
        assert decay_data().horizon == 2.0

    def test_per_variable_tolerance(self):
        d = TimeSeriesData.from_samples(
            [(1.0, {"x": 1.0, "y": 1.0})], tolerance={"x": 0.1, "y": 0.5}
        )
        assert d.checkpoints[0].bands["x"] == (0.9, 1.1)
        assert d.checkpoints[0].bands["y"] == (0.5, 1.5)


class TestCalibration:
    def test_recovers_true_parameter(self):
        calib = SMTCalibrator(
            decay_system(), decay_data(k_true=1.5), {"k": (0.1, 3.0)},
            {"x": 1.0}, delta=0.02,
        )
        res = calib.calibrate()
        assert res.status is CalibrationStatus.DELTA_SAT
        assert res.params["k"] == pytest.approx(1.5, abs=0.1)

    def test_calibrated_params_reproduce_data(self):
        data = decay_data(k_true=0.7, tol=0.01)
        calib = SMTCalibrator(
            decay_system(), data, {"k": (0.1, 3.0)}, {"x": 1.0}, delta=0.01
        )
        res = calib.calibrate()
        assert res
        traj = rk45(decay_system(), {"x": 1.0}, (0.0, 2.0), params=res.params)
        for cp in data.checkpoints:
            v = traj.value("x", cp.t)
            lo, hi = cp.bands["x"]
            assert lo - 0.02 <= v <= hi + 0.02

    def test_unsat_when_data_inconsistent(self):
        # x(1) = 0.9 and x(2) = 0.1 cannot both hold for any single k:
        # exp(-k) = 0.9 => k = 0.105; then x(2) = 0.81 != 0.1
        data = TimeSeriesData.from_samples(
            [(1.0, {"x": 0.9}), (2.0, {"x": 0.1})], tolerance=0.02
        )
        calib = SMTCalibrator(
            decay_system(), data, {"k": (0.01, 5.0)}, {"x": 1.0},
            delta=0.01, max_boxes=800,
        )
        res = calib.calibrate()
        assert res.status is CalibrationStatus.UNSAT

    def test_logistic_two_parameters(self):
        sys_ = logistic()
        true = {"r": 0.8, "K": 8.0}
        traj = rk45(sys_, {"x": 0.5}, (0.0, 10.0), params=true)
        samples = [(t, {"x": traj.value("x", t)}) for t in (2.0, 5.0, 10.0)]
        data = TimeSeriesData.from_samples(samples, tolerance=0.05)
        calib = SMTCalibrator(
            sys_, data, {"r": (0.2, 2.0), "K": (4.0, 12.0)}, {"x": 0.5},
            delta=0.05, enclosure_step=0.1,
        )
        res = calib.calibrate()
        assert res.status is CalibrationStatus.DELTA_SAT
        assert res.params["K"] == pytest.approx(8.0, abs=0.8)

    def test_uncertain_initial_condition(self):
        data = decay_data(k_true=1.0, times=(1.0,), tol=0.05)
        calib = SMTCalibrator(
            decay_system(), data, {"k": (0.5, 2.0)},
            Box.from_bounds({"x": (0.99, 1.01)}), delta=0.05,
        )
        res = calib.calibrate()
        assert res.status is CalibrationStatus.DELTA_SAT

    def test_unknown_param_rejected(self):
        with pytest.raises(ValueError, match="unknown parameters"):
            SMTCalibrator(decay_system(), decay_data(), {"zz": (0, 1)}, {"x": 1.0})

    def test_nonstate_band_rejected(self):
        data = TimeSeriesData([Checkpoint(1.0, {"bogus": (0, 1)})])
        with pytest.raises(ValueError, match="non-states"):
            SMTCalibrator(decay_system(), data, {"k": (0, 1)}, {"x": 1.0})

    def test_empty_data_rejected(self):
        with pytest.raises(ValueError, match="no checkpoints"):
            SMTCalibrator(decay_system(), TimeSeriesData([]), {"k": (0, 1)}, {"x": 1.0})


class TestPaving:
    def test_region_synthesis_brackets_truth(self):
        # x(1) in [exp(-1.6), exp(-1.4)] <=> k in [1.4, 1.6]
        data = TimeSeriesData(
            [Checkpoint(1.0, {"x": (math.exp(-1.6), math.exp(-1.4))})]
        )
        calib = SMTCalibrator(
            decay_system(), data, {"k": (0.5, 2.5)}, {"x": 1.0},
            delta=0.005, max_boxes=400,
        )
        sat, unsat, und = calib.synthesize_region(min_width=0.01)
        assert sat, "expected inner boxes"
        for b in sat:
            assert 1.35 <= b["k"].lo and b["k"].hi <= 1.65
        sat_width = sum(b["k"].width() for b in sat)
        assert sat_width > 0.1  # most of [1.4, 1.6] certified
        # unsat boxes cover the far ends
        assert any(b["k"].hi <= 1.4 for b in unsat)
        assert any(b["k"].lo >= 1.6 for b in unsat)

    def test_all_unsat_region(self):
        data = TimeSeriesData([Checkpoint(1.0, {"x": (0.9, 0.95)})])
        calib = SMTCalibrator(
            decay_system(), data, {"k": (1.0, 3.0)}, {"x": 1.0}, delta=0.01
        )
        sat, unsat, und = calib.synthesize_region(min_width=0.05)
        assert not sat
        assert unsat


class TestFalsification:
    def test_consistent_model_survives(self):
        verdict = falsify_with_data(
            decay_system(), decay_data(k_true=1.0), {"k": (0.5, 2.0)}, {"x": 1.0}
        )
        assert not verdict.rejected
        assert verdict.conclusive
        assert verdict.witness_params is not None

    def test_inconsistent_model_rejected(self):
        # ask decay model to *grow*: x(1) = 2.0 from x(0) = 1 with k > 0
        data = TimeSeriesData.from_samples([(1.0, {"x": 2.0})], tolerance=0.1)
        verdict = falsify_with_data(
            decay_system(), data, {"k": (0.01, 5.0)}, {"x": 1.0}, max_boxes=400
        )
        assert verdict.rejected
        assert verdict.conclusive
