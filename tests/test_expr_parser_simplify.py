"""Tests for the infix parser, simplifier, and numpy compiler."""

import math

import numpy as np
import pytest

from repro.expr import (
    Const,
    ParseError,
    compile_numpy,
    compile_vector_field,
    exp,
    parse_expr,
    simplify,
    var,
    variables,
)

x, y = variables("x y")


class TestParser:
    @pytest.mark.parametrize(
        "text,env,expected",
        [
            ("1 + 2 * 3", {}, 7.0),
            ("(1 + 2) * 3", {}, 9.0),
            ("2 ^ 3 ^ 1", {}, 8.0),
            ("2 ** 3", {}, 8.0),
            ("-x^2", {"x": 3.0}, -9.0),  # unary minus binds looser than ^
            ("x / y / 2", {"x": 8.0, "y": 2.0}, 2.0),  # left assoc
            ("exp(0)", {}, 1.0),
            ("sin(pi)", {}, math.sin(math.pi)),
            ("min(3, 4) + max(1, 2)", {}, 5.0),
            ("pow(2, 10)", {}, 1024.0),
            ("sigmoid(0)", {}, 0.5),
            ("1.5e2 + .5", {}, 150.5),
            ("sqrt(abs(-4))", {}, 2.0),
        ],
    )
    def test_eval_matches(self, text, env, expected):
        assert parse_expr(text).eval(env) == pytest.approx(expected)

    def test_variables_extracted(self):
        e = parse_expr("k1 * s / (km + s)")
        assert e.variables() == {"k1", "s", "km"}

    @pytest.mark.parametrize(
        "bad",
        ["", "1 +", "(1", "foo(1, 2, 3)", "1 2", "bogusfn(1)", "min(1)", "@"],
    )
    def test_errors(self, bad):
        with pytest.raises(ParseError):
            parse_expr(bad)

    def test_precedence_pow_right_assoc(self):
        assert parse_expr("2^2^3").eval({}) == 256.0

    def test_power_negative_exponent(self):
        assert parse_expr("2^-1").eval({}) == 0.5


class TestSimplify:
    @pytest.mark.parametrize(
        "e,expected",
        [
            (x + 0, x),
            (0 + x, x),
            (x - 0, x),
            (x * 1, x),
            (1 * x, x),
            (x * 0, Const(0.0)),
            (x / 1, x),
            (x - x, Const(0.0)),
            (x / x, Const(1.0)),
            (x ** 1, x),
            (x ** 0, Const(1.0)),
            (-(-x), x),
        ],
    )
    def test_identities(self, e, expected):
        assert simplify(e) == expected

    def test_constant_folding_nested(self):
        e = parse_expr("2 * 3 + 4 * x * 0")
        assert simplify(e) == Const(6.0)

    def test_exp_log_cancel(self):
        assert simplify(exp(parse_expr("log(x)"))) == x

    def test_preserves_semantics_random(self):
        import random

        rng = random.Random(0)
        e = parse_expr("x^2 * (y - y) + (x + 0) * 1 + exp(log(y))")
        s = simplify(e)
        for _ in range(30):
            env = {"x": rng.uniform(-5, 5), "y": rng.uniform(0.1, 5)}
            assert s.eval(env) == pytest.approx(e.eval(env), rel=1e-12)

    def test_derivative_simplification_shrinks(self):
        e = (x * x * x).diff("x")
        s = simplify(e)
        assert s.eval({"x": 2.0}) == pytest.approx(12.0)


class TestCompileNumpy:
    def test_scalar_matches_eval(self):
        e = parse_expr("x^2 + sin(y) * exp(-x)")
        f = compile_numpy(e, ["x", "y"])
        env = {"x": 0.7, "y": 1.3}
        assert f(0.7, 1.3) == pytest.approx(e.eval(env))

    def test_vectorised(self):
        e = parse_expr("x * y + 1")
        f = compile_numpy(e, ["x", "y"])
        xs = np.linspace(0, 1, 5)
        out = f(xs, 2.0)
        assert np.allclose(out, xs * 2.0 + 1)

    def test_sigmoid_compiled(self):
        e = parse_expr("sigmoid(x)")
        f = compile_numpy(e, ["x"])
        assert f(0.0) == pytest.approx(0.5)
        assert f(50.0) == pytest.approx(1.0)

    def test_unbound_variable_compile_error(self):
        with pytest.raises(KeyError):
            compile_numpy(parse_expr("x + z"), ["x"])

    def test_vector_field(self):
        fx = parse_expr("a * x - b * x * y")
        fy = parse_expr("-c * y + d * x * y")
        f = compile_vector_field([fx, fy], ["x", "y"], ["a", "b", "c", "d"])
        p = {"a": 1.0, "b": 0.5, "c": 1.0, "d": 0.25}
        out = f(0.0, np.array([2.0, 1.0]), p)
        assert out == pytest.approx([2.0 - 1.0, -1.0 + 0.5])

    def test_vector_field_time_dependent(self):
        f = compile_vector_field([parse_expr("sin(t) + x")], ["x"], [])
        out = f(math.pi / 2, np.array([1.0]), {})
        assert out[0] == pytest.approx(2.0)
