"""Tests for the IO layer: SBML subset, native JSON, CSV time series."""

import math

import pytest

from repro.io import (
    SBMLError,
    dump_model,
    hybrid_from_dict,
    hybrid_to_dict,
    load_model,
    ode_from_dict,
    ode_to_dict,
    parse_sbml,
    parse_timeseries_csv,
)
from repro.models import ias_model, logistic, thermostat
from repro.odes import rk45

SBML_DECAY = """<?xml version="1.0" encoding="UTF-8"?>
<sbml xmlns="http://www.sbml.org/sbml/level2/version4" level="2" version="4">
  <model id="decay">
    <listOfCompartments>
      <compartment id="cell" size="1"/>
    </listOfCompartments>
    <listOfSpecies>
      <species id="A" compartment="cell" initialConcentration="2.0"/>
    </listOfSpecies>
    <listOfParameters>
      <parameter id="k" value="0.5"/>
    </listOfParameters>
    <listOfReactions>
      <reaction id="deg" reversible="false">
        <listOfReactants>
          <speciesReference species="A" stoichiometry="1"/>
        </listOfReactants>
        <kineticLaw>
          <math xmlns="http://www.w3.org/1998/Math/MathML">
            <apply><times/><ci>k</ci><ci>A</ci></apply>
          </math>
        </kineticLaw>
      </reaction>
    </listOfReactions>
  </model>
</sbml>
"""

SBML_ENZYME = """<?xml version="1.0"?>
<sbml xmlns="http://www.sbml.org/sbml/level2/version4" level="2" version="4">
  <model id="mm">
    <listOfCompartments><compartment id="c" size="2"/></listOfCompartments>
    <listOfSpecies>
      <species id="S" compartment="c" initialConcentration="10"/>
      <species id="P" compartment="c" initialConcentration="0"/>
      <species id="E" compartment="c" initialConcentration="1" boundaryCondition="true"/>
    </listOfSpecies>
    <listOfParameters>
      <parameter id="Vmax" value="4"/>
      <parameter id="Km" value="2"/>
    </listOfParameters>
    <listOfReactions>
      <reaction id="cat">
        <listOfReactants><speciesReference species="S"/></listOfReactants>
        <listOfProducts><speciesReference species="P"/></listOfProducts>
        <kineticLaw>
          <math xmlns="http://www.w3.org/1998/Math/MathML">
            <apply><divide/>
              <apply><times/><ci>Vmax</ci><ci>E</ci><ci>S</ci></apply>
              <apply><plus/><ci>Km</ci><ci>S</ci></apply>
            </apply>
          </math>
        </kineticLaw>
      </reaction>
    </listOfReactions>
  </model>
</sbml>
"""


class TestSBML:
    def test_decay_parsed(self):
        model = parse_sbml(SBML_DECAY)
        assert model.name == "decay"
        assert model.initial == {"A": 2.0}
        assert model.system.params["k"] == 0.5
        f = model.system.eval_field({"A": 2.0})
        assert f["A"] == pytest.approx(-1.0)

    def test_decay_simulates_correctly(self):
        model = parse_sbml(SBML_DECAY)
        traj = rk45(model.system, model.initial, (0.0, 2.0))
        assert traj.value("A", 2.0) == pytest.approx(2.0 * math.exp(-1.0), rel=1e-5)

    def test_enzyme_compartment_scaling_and_boundary(self):
        model = parse_sbml(SBML_ENZYME)
        assert set(model.system.state_names) == {"S", "P"}  # E is boundary
        # rate = Vmax*E*S/(Km+S)/size = 4*1*10/12/2
        f = model.system.eval_field({"S": 10.0, "P": 0.0})
        assert f["S"] == pytest.approx(-4.0 * 10.0 / 12.0 / 2.0)
        assert f["P"] == pytest.approx(+4.0 * 10.0 / 12.0 / 2.0)

    def test_mass_conservation(self):
        model = parse_sbml(SBML_ENZYME)
        traj = rk45(model.system, model.initial, (0.0, 5.0))
        total = traj.column("S") + traj.column("P")
        assert abs(total - 10.0).max() < 1e-6

    @pytest.mark.parametrize(
        "bad,msg",
        [
            ("<notsbml/>", "expected <sbml>"),
            ("<sbml xmlns='x'></sbml>", "no <model>"),
            ("not xml at all <", "XML parse error"),
        ],
    )
    def test_malformed(self, bad, msg):
        with pytest.raises(SBMLError, match=msg):
            parse_sbml(bad)

    def test_missing_kinetic_law(self):
        text = SBML_DECAY.replace(
            '<kineticLaw>', '<notes><p>x</p></notes><kineticLaw hidden="'
        ).replace('</kineticLaw>', '"/>')
        with pytest.raises(SBMLError):
            parse_sbml(text)

    def test_unsupported_event(self):
        text = SBML_DECAY.replace(
            "</model>", "<listOfEvents><event/></listOfEvents></model>"
        )
        with pytest.raises(SBMLError, match="listOfEvents"):
            parse_sbml(text)

    def test_e_notation(self):
        text = SBML_DECAY.replace(
            "<apply><times/><ci>k</ci><ci>A</ci></apply>",
            '<apply><times/><cn type="e-notation">5<sep/>-1</cn><ci>A</ci></apply>',
        )
        model = parse_sbml(text)
        f = model.system.eval_field({"A": 2.0})
        assert f["A"] == pytest.approx(-1.0)


class TestNativeJSON:
    def test_ode_roundtrip(self):
        sys_ = logistic(r=0.7, K=5.0)
        d = ode_to_dict(sys_)
        back = ode_from_dict(d)
        assert back.params == sys_.params
        f1 = sys_.eval_field({"x": 2.0})
        f2 = back.eval_field({"x": 2.0})
        assert f1["x"] == pytest.approx(f2["x"])

    def test_hybrid_roundtrip_thermostat(self):
        h = thermostat()
        back = hybrid_from_dict(hybrid_to_dict(h))
        assert back.mode_names == h.mode_names
        assert back.params == h.params
        from repro.hybrid import simulate_hybrid

        t1 = simulate_hybrid(h, {"x": 21.0}, t_final=5.0)
        t2 = simulate_hybrid(back, {"x": 21.0}, t_final=5.0)
        assert t1.mode_path() == t2.mode_path()
        assert t1.value("x", 5.0) == pytest.approx(t2.value("x", 5.0), rel=1e-6)

    def test_hybrid_roundtrip_ias(self):
        h = ias_model("patient_A")
        back = hybrid_from_dict(hybrid_to_dict(h))
        f1 = h.mode_system("on").eval_field({"x": 10.0, "y": 0.1, "z": 6.0})
        f2 = back.mode_system("on").eval_field({"x": 10.0, "y": 0.1, "z": 6.0})
        for k in f1:
            assert f1[k] == pytest.approx(f2[k], rel=1e-12)

    def test_file_roundtrip(self, tmp_path):
        path = str(tmp_path / "model.json")
        dump_model(logistic(), path)
        back = load_model(path)
        assert back.name == "logistic"

        hpath = str(tmp_path / "h.json")
        dump_model(thermostat(), hpath)
        hback = load_model(hpath)
        assert hback.name == "thermostat"

    def test_bad_type_rejected(self):
        with pytest.raises(ValueError):
            ode_from_dict({"type": "hybrid"})
        with pytest.raises(ValueError):
            hybrid_from_dict({"type": "ode"})


class TestCSV:
    def test_parse_basic(self):
        text = "time,x,y\n0.5,1.0,2.0\n1.0,0.5,1.5\n"
        data = parse_timeseries_csv(text, tolerance=0.1)
        assert len(data.checkpoints) == 2
        assert data.checkpoints[0].bands["x"] == (0.9, 1.1)

    def test_missing_cells_skipped(self):
        text = "time,x,y\n0.5,1.0,\n1.0,,1.5\n"
        data = parse_timeseries_csv(text)
        assert "y" not in data.checkpoints[0].bands
        assert "x" not in data.checkpoints[1].bands

    def test_missing_time_column(self):
        with pytest.raises(ValueError, match="time"):
            parse_timeseries_csv("a,b\n1,2\n")

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="no data"):
            parse_timeseries_csv("time,x\n")

    def test_relative_tolerance(self):
        data = parse_timeseries_csv("time,x\n1.0,10.0\n", tolerance=0.1, relative=True)
        assert data.checkpoints[0].bands["x"] == pytest.approx((9.0, 11.0))

    def test_file_reading(self, tmp_path):
        from repro.io import read_timeseries_csv

        p = tmp_path / "d.csv"
        p.write_text("time,x\n1.0,2.0\n")
        data = read_timeseries_csv(str(p), tolerance=0.5)
        assert data.checkpoints[0].bands["x"] == (1.5, 2.5)
