"""Incremental solving: warm-started re-solves must equal cold solves.

The :mod:`repro.solver.incremental` contract is *mandatory-safe* reuse:
whatever the :class:`PavingStore` warm-start planner returns must be
byte-identical to what the cold solver would have produced for the same
query -- across the scalar, vectorized and sharded execution paths, for
exact replays, tightened deltas, tightened ``min_width``, perturbed
constants and shrunk boxes alike.  These tests pin that contract at
three levels: unit (fingerprints, covers, the store), solver
(warm-vs-cold verdicts and pavings, property-based), and system (the
full scenario catalog through the engine, the CLI flags, the service
counters).
"""

import json
import math
import os

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.expr import Const, sin, var, variables
from repro.intervals import Box
from repro.logic import And, Atom, in_range
from repro.progress import progress_scope
from repro.solver import DeltaSolver, Status
from repro.solver.incremental import (
    CoverRecorder,
    PavingStore,
    formula_fingerprint,
    get_store,
    shell_slabs,
)

x, y = var("x"), var("y")


def annulus():
    phi = And(
        in_range(x ** 2 + y ** 2 + 0.3 * sin(3 * x) * sin(3 * y), 0.55, 0.95),
        in_range(x * y, -0.2, 0.6),
    )
    return phi, Box.from_bounds({"x": (-1.5, 1.5), "y": (-1.5, 1.5)})


def ring(lo=1.0, hi=2.0):
    return And(x * x + y * y >= lo, x * x + y * y <= hi)


BOX2 = Box.from_bounds({"x": (-2.0, 2.0), "y": (-2.0, 2.0)})


def paving_key(parts):
    """Byte-exact identity of a paving (tuple of bound tuples per class)."""
    return tuple(
        tuple(tuple((n, b[n].lo, b[n].hi) for n in b.names) for b in part)
        for part in parts
    )


# ----------------------------------------------------------------------
# Fingerprints
# ----------------------------------------------------------------------


class TestFingerprint:
    def test_same_skeleton_different_constants(self):
        a = formula_fingerprint(ring(1.0, 2.0))
        b = formula_fingerprint(ring(1.0, 2.5))
        assert a.skeleton == b.skeleton
        assert a.constants != b.constants
        assert a.constants == (1.0, 2.0) and b.constants == (1.0, 2.5)

    def test_structure_changes_skeleton(self):
        a = formula_fingerprint(Atom(x * x - Const(1.0), strict=False))
        b = formula_fingerprint(Atom(x + x - Const(1.0), strict=False))
        c = formula_fingerprint(Atom(y * y - Const(1.0), strict=False))
        assert len({a.skeleton, b.skeleton, c.skeleton}) == 3

    def test_identical_formula_identical_fingerprint(self):
        assert formula_fingerprint(ring()) == formula_fingerprint(ring())


# ----------------------------------------------------------------------
# Covers
# ----------------------------------------------------------------------


class TestCover:
    def test_shell_slabs_cover_the_difference(self):
        b_lo, b_hi = np.array([0.0, 0.0]), np.array([4.0, 4.0])
        c_lo, c_hi = np.array([1.0, 0.5]), np.array([3.0, 4.0])
        slabs = shell_slabs(b_lo, b_hi, c_lo, c_hi)
        # every sampled point of B is in C or in some slab
        for px in np.linspace(0.0, 4.0, 17):
            for py in np.linspace(0.0, 4.0, 17):
                in_c = c_lo[0] <= px <= c_hi[0] and c_lo[1] <= py <= c_hi[1]
                in_slab = any(
                    lo[0] <= px <= hi[0] and lo[1] <= py <= hi[1]
                    for lo, hi in slabs
                )
                assert in_c or in_slab, (px, py)

    def test_shell_slabs_empty_when_contraction_is_identity(self):
        lo, hi = np.array([0.0]), np.array([1.0])
        assert shell_slabs(lo, hi, lo, hi) == []

    def test_recorder_overflow_disables_cover(self):
        rec = CoverRecorder(cap=3)
        for i in range(5):
            rec.add(np.array([float(i)]), np.array([float(i) + 1.0]))
        assert rec.overflow and rec.arrays() is None

    def test_recorder_pruned_and_pairs(self):
        rec = CoverRecorder()
        rec.add_pruned(
            np.array([0.0]), np.array([2.0]),
            np.array([0.5]), np.array([1.5]), empty=False,
        )
        rec.add_pruned(
            np.array([5.0]), np.array([6.0]),
            np.array([5.5]), np.array([5.5]), empty=True,
        )
        rec.extend_pairs([(np.array([9.0]), np.array([10.0]))])
        lo, hi = rec.arrays()
        # contracted box + two shell slabs + raw empty box + shipped pair
        assert lo.shape == (5, 1)
        assert float(lo[3, 0]) == 5.0 and float(hi[4, 0]) == 10.0


# ----------------------------------------------------------------------
# Solve reuse rules
# ----------------------------------------------------------------------


class TestWarmSolve:
    def test_exact_hit_returns_stored_verdict(self, tmp_path):
        store = PavingStore(tmp_path)
        phi, box = annulus()
        mk = lambda: DeltaSolver(delta=1e-3, paving_store=store)  # noqa: E731
        cold = mk().solve(phi, box)
        warm = mk().solve(phi, box)
        assert warm.status is cold.status is Status.DELTA_SAT
        assert warm.witness_box == cold.witness_box
        assert warm.witness == cold.witness
        assert warm.stats.boxes_processed == 0  # no search happened
        s = store.stats()
        assert s["hits"] == 1 and s["misses"] == 1 and s["stores"] == 1

    def test_delta_tightened_unsat_replays_instantly(self, tmp_path):
        store = PavingStore(tmp_path)
        phi = Atom(x * x + y * y - Const(9.0), strict=False)  # >= 9: empty
        mk = lambda d: DeltaSolver(delta=d, paving_store=store)  # noqa: E731
        assert mk(1e-3).solve(phi, BOX2).status is Status.UNSAT
        warm = mk(5e-4).solve(phi, BOX2)
        assert warm.status is Status.UNSAT
        assert warm.stats.boxes_processed == 0
        assert store.stats()["partial"] == 1
        # tightened delta must equal the cold verdict too
        assert DeltaSolver(delta=5e-4).solve(phi, BOX2).status is Status.UNSAT

    def test_perturbed_constant_rejudges_cover(self, tmp_path):
        store = PavingStore(tmp_path)
        mk = lambda c: Atom(x * x + y * y - Const(c), strict=False)  # noqa: E731
        sv = lambda: DeltaSolver(delta=1e-3, paving_store=store)  # noqa: E731
        assert sv().solve(mk(9.0), BOX2).status is Status.UNSAT
        warm = sv().solve(mk(8.9), BOX2)  # still infeasible: reuse
        assert warm.status is Status.UNSAT
        assert warm.stats.boxes_processed == 0
        assert store.stats()["partial"] == 1
        assert DeltaSolver(delta=1e-3).solve(mk(8.9), BOX2).status is Status.UNSAT
        # flipping the verdict must fall back cold, not claim UNSAT
        flipped = sv().solve(mk(7.9), BOX2)
        assert flipped.status is Status.DELTA_SAT
        assert flipped.stats.boxes_processed > 0

    def test_shrunk_box_reuses_unsat_cover(self, tmp_path):
        store = PavingStore(tmp_path)
        phi = Atom(x * x + y * y - Const(9.0), strict=False)
        sv = lambda: DeltaSolver(delta=1e-3, paving_store=store)  # noqa: E731
        assert sv().solve(phi, BOX2).status is Status.UNSAT
        inner = Box.from_bounds({"x": (-1.0, 1.5), "y": (-0.5, 2.0)})
        warm = sv().solve(phi, inner)
        assert warm.status is Status.UNSAT and warm.stats.boxes_processed == 0

    def test_witness_carries_over_to_perturbed_bound(self, tmp_path):
        store = PavingStore(tmp_path)
        mk = lambda c: Atom(Const(c) - x * x - y * y, strict=False)  # noqa: E731
        sv = lambda: DeltaSolver(delta=1e-3, paving_store=store)  # noqa: E731
        cold = sv().solve(mk(1.0), BOX2)
        assert cold.status is Status.DELTA_SAT
        warm = sv().solve(mk(1.001), BOX2)  # looser bound: witness survives
        assert warm.status is Status.DELTA_SAT
        assert warm.witness_box == cold.witness_box
        assert warm.stats.boxes_processed == 0

    def test_cold_flag_skips_reuse_but_still_records(self, tmp_path):
        store = PavingStore(tmp_path)
        phi, box = annulus()
        mk = lambda: DeltaSolver(  # noqa: E731
            delta=1e-3, paving_store=store, warm_start=False
        )
        mk().solve(phi, box)
        again = mk().solve(phi, box)
        assert again.stats.boxes_processed > 0  # really solved cold
        s = store.stats()
        assert s["hits"] == 0 and s["stores"] == 2

    def test_budget_bound_artifacts_never_reused(self, tmp_path):
        store = PavingStore(tmp_path)
        phi, box = annulus()
        tiny = DeltaSolver(delta=1e-3, max_boxes=2, paving_store=store)
        assert tiny.solve(phi, box).status is Status.UNKNOWN
        # UNKNOWN is never stored, so the warm pass has nothing to reuse
        warm = DeltaSolver(delta=1e-3, paving_store=store).solve(phi, box)
        assert warm.status is Status.DELTA_SAT
        assert warm.stats.boxes_processed > 0
        assert store.stats()["hits"] == 0


# ----------------------------------------------------------------------
# Pave reuse
# ----------------------------------------------------------------------


MODE_KW = {
    "serial": {"frontier_size": 1},
    "vectorized": {},
    "sharded": {"shards": 2, "shard_backend": "thread"},
}


class TestWarmPave:
    @pytest.mark.parametrize("mode", sorted(MODE_KW))
    def test_exact_hit_is_byte_identical(self, tmp_path, mode):
        store = PavingStore(tmp_path)
        phi, box = annulus()
        mk = lambda: DeltaSolver(  # noqa: E731
            delta=1e-3, max_boxes=1_000_000, paving_store=store, **MODE_KW[mode]
        )
        cold = mk().pave(phi, box, min_width=0.1)
        warm = mk().pave(phi, box, min_width=0.1)
        assert paving_key(warm) == paving_key(cold)
        assert store.stats()["hits"] == 1

    @pytest.mark.parametrize("mode", sorted(MODE_KW))
    def test_tightened_delta_resume_equals_cold(self, tmp_path, mode):
        store = PavingStore(tmp_path)
        phi, box = annulus()
        mk = lambda d, s: DeltaSolver(  # noqa: E731
            delta=d, max_boxes=1_000_000, paving_store=s, **MODE_KW[mode]
        )
        mk(1e-2, store).pave(phi, box, min_width=0.1)
        warm = mk(1e-3, store).pave(phi, box, min_width=0.1)
        cold = mk(1e-3, None).pave(phi, box, min_width=0.1)
        assert paving_key(warm) == paving_key(cold)
        assert store.stats()["partial"] >= 1

    def test_tightened_min_width_resume_equals_cold(self, tmp_path):
        store = PavingStore(tmp_path)
        phi, box = annulus()
        mk = lambda w, s: DeltaSolver(  # noqa: E731
            delta=1e-3, max_boxes=1_000_000, paving_store=s
        ).pave(phi, box, min_width=w)
        mk(0.1, store)
        store_warm = PavingStore(tmp_path)  # fresh counters, same disk
        warm = DeltaSolver(
            delta=1e-3, max_boxes=1_000_000, paving_store=store_warm
        ).pave(phi, box, min_width=0.05)
        cold = DeltaSolver(delta=1e-3, max_boxes=1_000_000).pave(
            phi, box, min_width=0.05
        )
        assert paving_key(warm) == paving_key(cold)

    def test_cross_kernel_artifact_reuse(self, tmp_path):
        """A sharded run's artifact warm-starts a scalar solver."""
        store = PavingStore(tmp_path)
        phi, box = annulus()
        DeltaSolver(
            delta=1e-3, max_boxes=1_000_000, paving_store=store,
            shards=2, shard_backend="thread",
        ).pave(phi, box, min_width=0.1)
        warm = DeltaSolver(
            delta=1e-3, max_boxes=1_000_000, paving_store=store,
            frontier_size=1,
        ).pave(phi, box, min_width=0.1)
        cold = DeltaSolver(
            delta=1e-3, max_boxes=1_000_000, frontier_size=1
        ).pave(phi, box, min_width=0.1)
        assert paving_key(warm) == paving_key(cold)


# ----------------------------------------------------------------------
# Property: warm always equals cold
# ----------------------------------------------------------------------


COEF = st.floats(min_value=-2.0, max_value=2.0, allow_nan=False)


@st.composite
def conic(draw):
    a, b, c = draw(COEF), draw(COEF), draw(COEF)
    return in_range(
        Const(a) * x * x + Const(b) * y * y + Const(c) * x * y, -0.5, 0.5
    )


@given(conic(), st.floats(min_value=0.3, max_value=0.9))
@settings(max_examples=25, deadline=None)
def test_warm_pave_equals_cold_pave(tmp_path_factory, phi, scale):
    """Recording then re-paving at a tighter delta/width matches cold."""
    root = tmp_path_factory.mktemp("store")
    store = PavingStore(root)
    box = Box.from_bounds({"x": (-1.5, 1.5), "y": (-1.5, 1.5)})
    DeltaSolver(delta=1e-2, max_boxes=50_000, paving_store=store).pave(
        phi, box, min_width=0.4
    )
    d, w = 1e-2 * scale, 0.4 * scale
    warm = DeltaSolver(delta=d, max_boxes=50_000, paving_store=store).pave(
        phi, box, min_width=w
    )
    cold = DeltaSolver(delta=d, max_boxes=50_000).pave(phi, box, min_width=w)
    assert paving_key(warm) == paving_key(cold)


@given(conic())
@settings(max_examples=25, deadline=None)
def test_warm_solve_agrees_with_cold_solve(tmp_path_factory, phi):
    """A verdict served from the store matches a from-scratch solve."""
    root = tmp_path_factory.mktemp("store")
    store = PavingStore(root)
    box = Box.from_bounds({"x": (-1.5, 1.5), "y": (-1.5, 1.5)})
    DeltaSolver(delta=1e-2, max_boxes=20_000, paving_store=store).solve(phi, box)
    warm = DeltaSolver(delta=1e-2, max_boxes=20_000, paving_store=store).solve(
        phi, box
    )
    cold = DeltaSolver(delta=1e-2, max_boxes=20_000).solve(phi, box)
    assert warm.status is cold.status
    if warm.status is Status.DELTA_SAT:
        assert not math.isnan(sum(warm.witness.values()))


# ----------------------------------------------------------------------
# Store robustness
# ----------------------------------------------------------------------


class TestStoreRobustness:
    def _artifact_paths(self, root):
        return [
            os.path.join(dirpath, f)
            for dirpath, _, files in os.walk(root)
            for f in files
            if f.endswith(".json")
        ]

    def test_corrupt_artifact_quarantined_and_solved_cold(self, tmp_path):
        store = PavingStore(tmp_path)
        phi, box = annulus()
        mk = lambda: DeltaSolver(delta=1e-3, paving_store=store)  # noqa: E731
        cold = mk().solve(phi, box)
        (path,) = self._artifact_paths(tmp_path)
        with open(path, "w", encoding="utf-8") as fh:
            fh.write('{"version": 1, "kind": "solve", "names"')  # torn write
        warm = mk().solve(phi, box)
        assert warm.status is cold.status
        assert warm.stats.boxes_processed > 0  # fell back cold
        assert store.stats()["quarantined"] == 1
        assert any(
            f.endswith(".corrupt")
            for _, _, files in os.walk(tmp_path)
            for f in files
        )

    def test_schema_version_mismatch_quarantined(self, tmp_path):
        store = PavingStore(tmp_path)
        phi, box = annulus()
        DeltaSolver(delta=1e-3, paving_store=store).solve(phi, box)
        (path,) = self._artifact_paths(tmp_path)
        payload = json.loads(open(path, encoding="utf-8").read())
        payload["version"] = 999
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(payload, fh)
        fp = formula_fingerprint(phi)
        assert store.candidates("solve", fp.skeleton, tuple(box.names)) == []
        assert store.stats()["quarantined"] == 1

    def test_group_prune_keeps_newest(self, tmp_path):
        store = PavingStore(tmp_path, max_group_entries=2)
        for i in range(4):
            store.put(
                "solve", "skel", ("x",), [i],
                {"version": 1, "kind": "solve", "names": ["x"], "i": i},
            )
        assert len(self._artifact_paths(tmp_path)) == 2

    def test_get_store_is_per_path_singleton(self, tmp_path):
        a = get_store(tmp_path / "s")
        b = get_store(os.path.join(str(tmp_path), "s"))
        assert a is b
        assert get_store(a) is a
        assert get_store(tmp_path / "other") is not a


# ----------------------------------------------------------------------
# Anytime reporting
# ----------------------------------------------------------------------


class TestAnytime:
    def test_solve_stream_is_monotone(self):
        phi, box = annulus()
        events = []
        with progress_scope(sink=events.append):
            DeltaSolver(delta=1e-3, anytime=True).solve(phi, box)
        stream = [e for e in events if e.stage == "anytime"]
        assert len(stream) >= 2
        # first snapshot arrives before any box is settled
        assert stream[0].message == Status.UNKNOWN.value
        assert stream[0].counters["settled"] == 0
        # verdict moves unknown -> terminal exactly once, at the end
        messages = [e.message for e in stream]
        assert messages[-1] == Status.DELTA_SAT.value
        assert set(messages[:-1]) == {Status.UNKNOWN.value}
        assert stream[-1].counters["final"] == 1
        assert all(e.counters["final"] == 0 for e in stream[:-1])
        # settled/pruned counters never decrease
        for prev, cur in zip(stream, stream[1:]):
            assert cur.counters["settled"] >= prev.counters["settled"]
            assert cur.counters["pruned"] >= prev.counters["pruned"]

    @pytest.mark.parametrize("mode", sorted(MODE_KW))
    def test_pave_stream_is_monotone(self, mode):
        phi, box = annulus()
        events = []
        with progress_scope(sink=events.append):
            DeltaSolver(delta=1e-3, anytime=True, **MODE_KW[mode]).pave(
                phi, box, min_width=0.1
            )
        stream = [e for e in events if e.stage == "anytime"]
        assert stream[0].message == "paving"
        assert stream[-1].message == "paved"
        assert stream[-1].counters["final"] == 1
        for prev, cur in zip(stream[1:], stream[2:]):
            for k in ("sat", "unsat"):
                if k in prev.counters and k in cur.counters:
                    assert cur.counters[k] >= prev.counters[k]

    def test_warm_hit_still_reports_terminal_snapshot(self, tmp_path):
        store = PavingStore(tmp_path)
        phi, box = annulus()
        DeltaSolver(delta=1e-3, paving_store=store).solve(phi, box)
        events = []
        with progress_scope(sink=events.append):
            DeltaSolver(delta=1e-3, paving_store=store, anytime=True).solve(
                phi, box
            )
        stream = [e for e in events if e.stage == "anytime"]
        assert stream[-1].message == Status.DELTA_SAT.value
        assert stream[-1].counters["final"] == 1

    def test_anytime_off_emits_nothing(self):
        phi, box = annulus()
        events = []
        with progress_scope(sink=events.append):
            DeltaSolver(delta=1e-3).solve(phi, box)
        assert not [e for e in events if e.stage == "anytime"]


# ----------------------------------------------------------------------
# Uncacheable-spec warning (service/cache.py regression)
# ----------------------------------------------------------------------


class TestSpecKeyWarning:
    def test_non_jsonable_spec_warns_once_per_task(self):
        import repro.service.cache as cache_mod
        from repro.api.spec import TaskSpec

        spec = TaskSpec(
            task="falsify", model={"builtin": "logistic"},
            query={"live": object()},  # not JSON-able
        )
        cache_mod._UNCACHEABLE_WARNED.discard("falsify")
        with pytest.warns(RuntimeWarning, match="not JSON-serializable"):
            assert cache_mod.spec_key(spec) is None
        # second offense of the same task kind stays silent
        import warnings as _warnings

        with _warnings.catch_warnings():
            _warnings.simplefilter("error")
            assert cache_mod.spec_key(spec) is None

    def test_jsonable_spec_still_hashes(self):
        from repro.api.spec import TaskSpec
        from repro.service.cache import spec_key

        spec = TaskSpec(task="falsify", model={"builtin": "logistic"})
        key = spec_key(spec)
        assert key is not None and len(key) == 64
