"""Tests for SMC statistics, the engine, and parameter search."""

import math
import random

import pytest

from repro.expr import var
from repro.hybrid import HybridAutomaton, Jump, Mode
from repro.intervals import Box
from repro.odes import ODESystem
from repro.smc import (
    F,
    G,
    InitialDistribution,
    StatisticalModelChecker,
    bayesian_estimate,
    chernoff_sample_size,
    cross_entropy_search,
    estimate_probability,
    genetic_search,
    smc_objective,
    sprt,
)

x = var("x")


def coin(p, seed=0):
    rng = random.Random(seed)
    return lambda: rng.random() < p


class TestSPRT:
    def test_clear_accept(self):
        res = sprt(coin(0.9), theta=0.5)
        assert res.accept and res.decision == "H0"

    def test_clear_reject(self):
        res = sprt(coin(0.1), theta=0.5)
        assert not res.accept and res.decision == "H1"

    def test_sequential_efficiency(self):
        # easy decisions need few samples
        res = sprt(coin(0.95), theta=0.5)
        assert res.samples_used < 50

    def test_iterator_sampler(self):
        res = sprt(iter([True] * 1000), theta=0.5)
        assert res.accept

    def test_budget_fallback(self):
        res = sprt(coin(0.5), theta=0.5, indifference=0.01, max_samples=50)
        assert res.samples_used == 50

    def test_collapsed_indifference_rejected(self):
        with pytest.raises(ValueError):
            sprt(coin(0.5), theta=0.0, indifference=0.0)

    def test_error_rate_empirical(self):
        # true p = 0.8 >> theta 0.5: H0 should be accepted nearly always
        accepts = sum(
            1 for i in range(50) if sprt(coin(0.8, seed=i), theta=0.5).accept
        )
        assert accepts >= 48


class TestChernoff:
    def test_sample_size_formula(self):
        n = chernoff_sample_size(0.05, 0.05)
        assert n == math.ceil(math.log(40.0) / (2 * 0.0025))

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            chernoff_sample_size(0.0, 0.05)
        with pytest.raises(ValueError):
            chernoff_sample_size(0.1, 1.5)

    def test_estimate_within_epsilon(self):
        p_hat, n = estimate_probability(coin(0.3), epsilon=0.05, alpha=0.01)
        assert abs(p_hat - 0.3) < 0.05
        assert n == chernoff_sample_size(0.05, 0.01)


class TestBayesian:
    def test_posterior_concentrates(self):
        est = bayesian_estimate(coin(0.7), n=500)
        assert est.ci_low < 0.7 < est.ci_high
        assert est.ci_high - est.ci_low < 0.15
        assert est.n == 500

    def test_prior_influence_small_n(self):
        est = bayesian_estimate(coin(1.0), n=3, prior_a=1, prior_b=1)
        assert est.mean == pytest.approx(4 / 5)


class TestEngine:
    @pytest.fixture
    def checker(self):
        sys_ = ODESystem({"x": -var("k") * x}, {"k": 1.0})
        init = InitialDistribution({"x": (0.8, 1.2)})
        return StatisticalModelChecker(sys_, init, horizon=3.0, seed=42)

    def test_sample_trajectory(self, checker):
        traj = checker.sample_trajectory()
        assert 0.8 <= traj.value("x", 0.0) <= 1.2
        assert traj.t_end == pytest.approx(3.0)

    def test_probability_certain_property(self, checker):
        p, n = checker.probability(G(2.0, x >= 0.0), epsilon=0.2, alpha=0.1)
        assert p == 1.0

    def test_probability_impossible_property(self, checker):
        p, _n = checker.probability(F(2.0, x >= 5.0), epsilon=0.2, alpha=0.1)
        assert p == 0.0

    def test_probability_intermediate(self):
        # x0 ~ U(0, 1); property x0 >= 0.5 at t=0 has p = 0.5
        sys_ = ODESystem({"x": 0.0 * x})
        init = InitialDistribution({"x": (0.0, 1.0)})
        checker = StatisticalModelChecker(sys_, init, horizon=1.0, seed=7)
        p, _ = checker.probability(G(0.0, x >= 0.5), epsilon=0.1, alpha=0.05)
        assert 0.35 < p < 0.65

    def test_hypothesis_test(self, checker):
        res = checker.hypothesis_test(G(2.0, x >= 0.0), theta=0.9)
        assert res.accept

    def test_bayesian(self, checker):
        est = checker.bayesian(G(2.0, x >= 0.0), n=40)
        assert est.mean > 0.9

    def test_probabilistic_parameters(self):
        sys_ = ODESystem({"x": -var("k") * x}, {"k": 1.0})
        init = InitialDistribution({"x": 1.0, "k": (0.1, 3.0)})
        checker = StatisticalModelChecker(sys_, init, horizon=2.0, seed=3)
        # x(1) = e^-k: below 0.2 iff k > ln 5 ~ 1.61; p ~ (3-1.61)/2.9 ~ 0.48
        p, _ = checker.probability(F(1.5, 0.2 - x >= 0), epsilon=0.12, alpha=0.1)
        assert 0.25 < p < 0.75

    def test_missing_state_rejected(self):
        sys_ = ODESystem({"x": -x})
        checker = StatisticalModelChecker(
            sys_, InitialDistribution({}), horizon=1.0
        )
        with pytest.raises(ValueError, match="misses states"):
            checker.sample_trajectory()

    def test_hybrid_model(self):
        h = HybridAutomaton(
            ["x"],
            [Mode("a", {"x": -x}), Mode("b", {"x": x})],
            [Jump("a", "b", guard=(x <= 0.5))],
            "a",
            Box.from_bounds({"x": (0.9, 1.1)}),
        )
        checker = StatisticalModelChecker(
            h, InitialDistribution({"x": (0.9, 1.1)}), horizon=3.0, seed=1
        )
        p, _ = checker.probability(F(3.0, x >= 0.8), epsilon=0.2, alpha=0.1)
        assert p > 0.9  # after the switch, x grows back above 0.8

    def test_callable_sampler(self):
        sys_ = ODESystem({"x": 0.0 * x})
        init = InitialDistribution({"x": lambda rng: rng.gauss(5.0, 0.1)})
        checker = StatisticalModelChecker(sys_, init, horizon=1.0, seed=0)
        traj = checker.sample_trajectory()
        assert 4.0 < traj.value("x", 0.0) < 6.0

    def test_reproducible_with_seed(self):
        sys_ = ODESystem({"x": -x})
        init = InitialDistribution({"x": (0.0, 1.0)})
        a = StatisticalModelChecker(sys_, init, horizon=1.0, seed=9).sample_trajectory()
        b = StatisticalModelChecker(sys_, init, horizon=1.0, seed=9).sample_trajectory()
        assert a.value("x", 0.0) == b.value("x", 0.0)


class TestParameterSearch:
    @pytest.fixture
    def objective(self):
        """Recover k such that decay x(1) ~ e^-2 (i.e. k ~ 2)."""
        sys_ = ODESystem({"x": -var("k") * x}, {"k": 1.0})
        target = math.exp(-2.0)
        band = G(0.0, (x - (target - 0.02) >= 0) & ((target + 0.02) - x >= 0))
        from repro.smc import BLTL, prop  # noqa: F401

        # robustness of hitting the band at t=1: use F with tiny window at 1
        phi = F(0.05, band)

        def fit(params):
            from repro.odes import rk45

            traj = rk45(sys_, {"x": 1.0}, (0.0, 1.05), params=dict(params))
            from repro.smc import robustness

            return robustness(phi, traj, t_start=1.0 - 0.05)

        return fit

    def test_cross_entropy_recovers_k(self, objective):
        res = cross_entropy_search(
            objective, {"k": (0.1, 5.0)}, population=30, iterations=15, seed=0
        )
        assert res.satisfied
        assert res.best_params["k"] == pytest.approx(2.0, abs=0.15)

    def test_genetic_recovers_k(self, objective):
        res = genetic_search(
            objective, {"k": (0.1, 5.0)}, population=30, generations=15, seed=0
        )
        assert res.satisfied
        assert res.best_params["k"] == pytest.approx(2.0, abs=0.2)

    def test_history_monotone(self, objective):
        res = cross_entropy_search(
            objective, {"k": (0.1, 5.0)}, population=20, iterations=8, seed=1
        )
        assert all(b >= a - 1e-12 for a, b in zip(res.history, res.history[1:]))

    def test_early_stop_on_target(self, objective):
        res = cross_entropy_search(
            objective, {"k": (0.1, 5.0)}, population=30, iterations=50,
            seed=0, target=0.0,
        )
        assert len(res.history) < 50

    def test_smc_objective_wrapper(self):
        sys_ = ODESystem({"x": -var("k") * x}, {"k": 1.0})
        phi = F(2.0, 0.2 - x >= 0)
        fit = smc_objective(sys_, phi, {"x": (0.9, 1.1)}, horizon=2.0, n_samples=3)
        # k=2 decays fast enough; k=0.1 does not
        assert fit({"k": 2.0}) > 0
        assert fit({"k": 0.1}) < 0

    def test_smc_objective_failure_scores_neg_inf(self):
        sys_ = ODESystem({"x": var("k") * x * x}, {"k": 1.0})
        phi = G(1.0, x >= 0)
        fit = smc_objective(sys_, phi, {"x": (5.0, 6.0)}, horizon=5.0, n_samples=2)
        assert fit({"k": 10.0}) == -math.inf
