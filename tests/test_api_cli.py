"""The ``python -m repro`` command-line front door."""

import json
import subprocess
import sys

import pytest

from repro.api.cli import main

CALIBRATE_SCENARIO = {
    "task": "calibrate",
    "name": "cli-cal",
    "model": {"builtin": "logistic"},
    "query": {
        "data": {"samples": [[2.0, {"x": 1.45}]], "tolerance": 0.2},
        "param_ranges": {"r": [0.1, 2.0]},
        "x0": {"x": 0.5},
    },
    "solver": {"delta": 0.05, "max_boxes": 400},
}


@pytest.fixture
def scenario_file(tmp_path):
    path = tmp_path / "scenario.json"
    path.write_text(json.dumps(CALIBRATE_SCENARIO))
    return str(path)


class TestListTasks:
    def test_lists_all_kinds(self, capsys):
        assert main(["list-tasks"]) == 0
        out = capsys.readouterr().out
        for kind in ("calibrate", "falsify", "reach", "smc",
                     "lyapunov", "therapy", "robustness", "pipeline"):
            assert kind in out

    def test_module_invocation(self):
        import os
        from pathlib import Path

        import repro

        src_dir = str(Path(repro.__file__).parent.parent)
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in (src_dir, env.get("PYTHONPATH")) if p
        )
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "list-tasks"],
            capture_output=True, text=True, env=env,
        )
        assert proc.returncode == 0
        assert "calibrate" in proc.stdout


class TestRun:
    def test_run_prints_report(self, scenario_file, capsys):
        assert main(["run", scenario_file]) == 0
        out = capsys.readouterr().out
        assert "cli-cal" in out
        assert "delta-sat" in out

    def test_run_json_output(self, scenario_file, capsys):
        assert main(["run", scenario_file, "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["status"] == "delta-sat"
        assert report["task"] == "calibrate"

    def test_run_shards_flag_drives_sharded_solver(self, tmp_path, capsys):
        # a falsify/ascent spec actually routes through the sharded
        # driver (calibrate-style tasks accept but ignore the option)
        path = tmp_path / "ascent.json"
        path.write_text(json.dumps({
            "task": "falsify",
            "name": "cli-ascent",
            "model": {"builtin": "logistic"},
            "query": {
                "method": "ascent", "variable": "x",
                "from_level": 2.0, "to_level": 4.0,
                "state_bounds": {"x": [0.0, 12.0]},
                "param_ranges": {"r": [0.1, 2.0]},
            },
        }))
        assert main(["run", str(path), "--shards", "2", "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        # logistic growth ascends through [2, 4]: a delta-sat witness
        assert report["status"] == "delta-sat"
        assert main(["run", str(path), "--json"]) == 0
        unsharded = json.loads(capsys.readouterr().out)
        assert unsharded["status"] == report["status"]

    def test_apply_solver_overrides_helper(self):
        from repro.api.cli import _apply_solver_overrides
        from repro.api.spec import TaskSpec

        spec = TaskSpec.from_dict(CALIBRATE_SCENARIO)
        assert _apply_solver_overrides([spec], None)[0].solver.shards == 1
        overridden = _apply_solver_overrides([spec], 4)[0]
        assert overridden.solver.shards == 4
        assert spec.solver.shards == 1  # original untouched
        warmed = _apply_solver_overrides(
            [spec], None, paving_store="/tmp/store", cold=True
        )[0]
        assert warmed.solver.paving_store == "/tmp/store"
        assert warmed.solver.warm_start is False
        assert spec.solver.warm_start is True  # original untouched

    def test_run_bad_scenario_exits_nonzero(self, tmp_path, capsys):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({
            "task": "nope", "model": {"builtin": "logistic"},
        }))
        assert main(["run", str(path)]) == 1
        assert "error" in capsys.readouterr().out


class TestBatch:
    def test_batch_with_workers_and_out(self, tmp_path, capsys):
        scenarios = []
        for i, tol in enumerate((0.2, 0.3)):
            s = json.loads(json.dumps(CALIBRATE_SCENARIO))
            s["name"] = f"sweep-{i}"
            s["query"]["data"]["tolerance"] = tol
            scenarios.append(s)
        path = tmp_path / "sweep.json"
        path.write_text(json.dumps({"scenarios": scenarios}))
        out_path = tmp_path / "reports.json"
        assert main([
            "batch", str(path), "--workers", "2", "--out", str(out_path),
        ]) == 0
        reports = json.loads(out_path.read_text())
        assert [r["name"] for r in reports] == ["sweep-0", "sweep-1"]
        assert all(r["status"] == "delta-sat" for r in reports)
