"""Tests for the therapy synthesis, robustness and pipeline apps."""

import pytest

from repro.apps import (
    AnalysisPipeline,
    TimeSeriesData,
    check_robustness,
    evaluate_policy,
    stimulus_threshold,
    synthesize_reach_therapy,
    synthesize_threshold_policy,
)
from repro.bmc import BMCOptions
from repro.expr import var
from repro.hybrid import HybridAutomaton, Jump, Mode
from repro.intervals import Box
from repro.logic import And, in_range
from repro.models import ias_model, psa, tbi_model
from repro.odes import ODESystem, rk45
from repro.smc import G

x = var("x")


def small_therapy_automaton() -> HybridAutomaton:
    """A miniature treat/no-treat automaton: damage x grows untreated,
    decays under drug; therapy threshold theta is synthesizable.  The
    live/drug invariants force the death jump at x = 2 (may-jump
    semantics would otherwise let runs simply ignore it)."""
    theta = var("theta")
    alive = x <= 2.0 + 1e-9
    return HybridAutomaton(
        variables=["x"],
        modes=[
            Mode("live", {"x": 0.5 * x}, invariant=alive),
            Mode("drug_A", {"x": -1.0 * x}, invariant=alive),
            Mode("death", {"x": 0.0 * x}),
        ],
        jumps=[
            Jump("live", "drug_A", guard=(x >= theta)),
            Jump("live", "death", guard=(x >= 2.0)),
            Jump("drug_A", "death", guard=(x >= 2.0)),
            Jump("drug_A", "live", guard=(x <= 0.2)),
        ],
        initial_mode="live",
        init=Box.from_bounds({"x": (0.5, 0.5)}),
        params={"theta": 1.0},
        name="mini_therapy",
    )


class TestReachTherapy:
    def test_mini_therapy_synthesized(self):
        h = small_therapy_automaton()
        plan = synthesize_reach_therapy(
            h,
            goal=in_range(x, 0.0, 0.25),
            threshold_ranges={"theta": (0.6, 1.9)},
            goal_mode="live",
            max_drugs=2,
            time_bound=6.0,
            options=BMCOptions(enclosure_step=0.1, max_boxes_per_path=60),
        )
        assert plan.found
        assert plan.mode_path == ["live", "drug_A", "live"]
        assert plan.n_drugs == 1
        assert 0.6 <= plan.thresholds["theta"] <= 1.9

    def test_infeasible_when_threshold_too_high(self):
        h = small_therapy_automaton()
        # theta >= 2.0 can never fire before death at x = 2.0 kills first;
        # restrict the range to a region where the guard x >= theta fires
        # after the death guard -> no live recovery
        plan = synthesize_reach_therapy(
            h,
            goal=in_range(x, 0.0, 0.25),
            threshold_ranges={"theta": (2.5, 3.0)},
            goal_mode="live",
            max_drugs=2,
            time_bound=4.0,
            options=BMCOptions(enclosure_step=0.1, max_boxes_per_path=40),
        )
        assert not plan.found

    def test_tbi_threshold_synthesis_small(self):
        """TBI with a single drug available: synthesize theta_A."""
        h = tbi_model(dose=0.55, drugs=("drug_A",))
        goal = And(
            var("clox") <= 0.9, var("rip3") <= 0.9, var("peox") <= 0.9,
            var("il") <= 0.9, var("nad") >= 0.25,
        )
        plan = synthesize_reach_therapy(
            h,
            goal=goal,
            threshold_ranges={"theta_A": (0.2, 0.8)},
            goal_mode="drug_A",
            max_drugs=1,
            time_bound=30.0,
            options=BMCOptions(
                enclosure_step=0.5, max_boxes_per_path=40, verify_step=0.25,
                delta=0.2,
            ),
        )
        assert plan.found
        assert plan.mode_path == ["live", "drug_A"]


class TestThresholdPolicy:
    def test_ias_policy_search(self):
        h = ias_model("patient_A")
        # objective: keep total burden below 40 for 500 days
        phi = G(500.0, (var("x") + var("y")) <= 40.0)
        res = synthesize_threshold_policy(
            h,
            phi,
            {"r0": (1.0, 8.0), "r1": (8.5, 20.0)},
            init={"x": 15.0, "y": 0.01, "z": 12.0},
            horizon=510.0,
            population=8,
            iterations=4,
            seed=0,
            confirm_samples=5,
        )
        assert res.found
        assert res.success_probability == 1.0

    def test_evaluate_policy(self):
        h = small_therapy_automaton()
        traj = evaluate_policy(h, {"theta": 1.0}, horizon=6.0)
        assert "drug_A" in traj.mode_path()


class TestRobustnessApp:
    @pytest.fixture
    def excitable(self):
        """1D excitable toy: u decays below 0.2, fires toward 1 above."""
        u = var("u")
        return HybridAutomaton(
            ["u"],
            [
                Mode("rest", {"u": -u}, invariant=(u <= 0.2 + 1e-6)),
                Mode("fire", {"u": 3.0 * (1.0 - u)}, invariant=(u >= 0.2 - 1e-6)),
            ],
            [
                Jump("rest", "fire", guard=(u >= 0.2)),
                Jump("fire", "rest", guard=(u <= 0.2)),
            ],
            "rest",
            Box.from_bounds({"u": (0.0, 0.1)}),
            name="excitable_toy",
        )

    def test_subthreshold_robust(self, excitable):
        res = check_robustness(
            excitable, {"u": (0.0, 0.1)}, bad=(var("u") >= 0.8),
            time_bound=10.0, max_jumps=2,
            options=BMCOptions(enclosure_step=0.2, max_boxes_per_path=60),
        )
        assert res.robust is True

    def test_suprathreshold_excitable(self, excitable):
        h2 = HybridAutomaton(
            excitable.variables, excitable.modes, excitable.jumps, "fire",
            Box.from_bounds({"u": (0.25, 0.35)}), name="excitable_hi",
        )
        res = check_robustness(
            h2, {"u": (0.25, 0.35)}, bad=(var("u") >= 0.8),
            time_bound=10.0, max_jumps=2,
            options=BMCOptions(enclosure_step=0.1, max_boxes_per_path=60,
                               verify_step=0.02, delta=0.1),
        )
        assert res.robust is False
        assert res.witness is not None

    def test_stimulus_threshold_bracket(self, excitable):
        lo, hi = stimulus_threshold(
            excitable, "u", bad=(var("u") >= 0.8), lo=0.0, hi=0.19,
            time_bound=10.0, max_jumps=2, iterations=3,
            options=BMCOptions(enclosure_step=0.2, max_boxes_per_path=60),
        )
        # everything below 0.19 stays in rest mode: fully robust
        assert lo >= 0.15


class TestPipeline:
    def _make_data(self, k_true, times, tol):
        import math

        samples = [(t, {"x": math.exp(-k_true * t)}) for t in times]
        return TimeSeriesData.from_samples(samples, tolerance=tol)

    def test_validated_path(self):
        sys_ = ODESystem({"x": -var("k") * x}, {"k": 1.0})
        train = self._make_data(1.3, (0.5, 1.0), 0.03)
        test = self._make_data(1.3, (1.5, 2.0), 0.05)
        report = AnalysisPipeline(
            sys_, train, test, {"k": (0.5, 2.5)}, {"x": 1.0}, delta=0.03
        ).run()
        assert report.validated
        assert report.calibrated_params["k"] == pytest.approx(1.3, abs=0.1)

    def test_falsified_path(self):
        sys_ = ODESystem({"x": -var("k") * x}, {"k": 1.0})
        # training data that decays then grows: impossible for pure decay
        train = TimeSeriesData.from_samples(
            [(1.0, {"x": 0.5}), (2.0, {"x": 0.9})], tolerance=0.02
        )
        report = AnalysisPipeline(
            sys_, train, train, {"k": (0.05, 3.0)}, {"x": 1.0},
            delta=0.02, max_boxes=600,
        ).run()
        assert report.falsified

    def test_refine_path_with_smc(self):
        import math

        sys_ = ODESystem({"x": -var("k") * x}, {"k": 1.0})
        train = self._make_data(1.0, (0.5,), 0.05)
        # test data from a *different* k: calibrated model misses it
        test = TimeSeriesData.from_samples(
            [(2.0, {"x": math.exp(-2.0 * 2.0)})], tolerance=0.01
        )
        report = AnalysisPipeline(
            sys_, train, test, {"k": (0.8, 1.2)}, {"x": 1.0}, delta=0.05
        ).run(smc_samples_epsilon=0.25)
        assert report.stage == "refine"
        assert report.validation_errors
        assert report.smc_probability is not None
        assert report.smc_probability < 0.5
