"""Tests for bounded reachability checking and parameter synthesis."""

import math

import pytest

from repro.bmc import BMCChecker, BMCOptions, BMCStatus, Path, ReachSpec, enumerate_paths
from repro.expr import var
from repro.hybrid import HybridAutomaton, Jump, Mode
from repro.intervals import Box
from repro.logic import And, in_range

x = var("x")
v = var("v")


def decay_automaton(k=1.0) -> HybridAutomaton:
    """Single mode: dx/dt = -k x from x(0) = 1."""
    return HybridAutomaton(
        ["x"],
        [Mode("m", {"x": -var("k") * x})],
        [],
        "m",
        Box.from_bounds({"x": (1.0, 1.0)}),
        params={"k": k},
    )


def two_mode_switch() -> HybridAutomaton:
    """Mode a: x decays; jump to b when x <= 0.5; mode b: x grows."""
    return HybridAutomaton(
        ["x"],
        [
            Mode("a", {"x": -x}),
            Mode("b", {"x": x}),
        ],
        [Jump("a", "b", guard=(x <= 0.5))],
        "a",
        Box.from_bounds({"x": (1.0, 1.0)}),
    )


class TestPathEnumeration:
    def test_single_mode(self):
        paths = list(enumerate_paths(decay_automaton(), max_jumps=3))
        assert len(paths) == 1
        assert paths[0].modes == ["m"]

    def test_two_mode(self):
        paths = list(enumerate_paths(two_mode_switch(), max_jumps=2))
        assert [p.modes for p in paths] == [["a"], ["a", "b"]]

    def test_goal_mode_filter(self):
        paths = list(enumerate_paths(two_mode_switch(), max_jumps=2, goal_mode="b"))
        assert [p.modes for p in paths] == [["a", "b"]]

    def test_shortest_first(self):
        h = HybridAutomaton(
            ["x"],
            [Mode("a", {"x": -x}), Mode("b", {"x": x})],
            [Jump("a", "b"), Jump("b", "a")],
            "a",
            Box.from_bounds({"x": (0, 1)}),
        )
        paths = list(enumerate_paths(h, max_jumps=4, goal_mode="a"))
        lengths = [len(p) for p in paths]
        assert lengths == sorted(lengths)

    def test_unknown_goal_mode(self):
        with pytest.raises(ValueError):
            list(enumerate_paths(decay_automaton(), 1, goal_mode="zz"))

    def test_bad_chain_rejected(self):
        h = two_mode_switch()
        with pytest.raises(ValueError, match="chain"):
            Path("b", [h.jumps[0]])

    def test_self_loop_control(self):
        h = HybridAutomaton(
            ["x"],
            [Mode("a", {"x": -x})],
            [Jump("a", "a")],
            "a",
            Box.from_bounds({"x": (0, 1)}),
        )
        with_loops = list(enumerate_paths(h, 2))
        without = list(enumerate_paths(h, 2, allow_self_loops=False))
        assert len(with_loops) == 3 and len(without) == 1


class TestSingleModeReachability:
    def test_reachable_level(self):
        h = decay_automaton()
        spec = ReachSpec(goal=in_range(x, 0.35, 0.40), max_jumps=0, time_bound=3.0)
        res = BMCChecker(h).check(spec)
        assert res.status is BMCStatus.DELTA_SAT
        # decay reaches 0.375 at t = ln(1/0.375) ~ 0.98
        assert res.witness_dwells[0] == pytest.approx(math.log(1 / 0.375), abs=0.1)

    def test_unreachable_level(self):
        h = decay_automaton()
        # x only decays from 1; it can never exceed 1.5
        spec = ReachSpec(goal=(x >= 1.5), max_jumps=0, time_bound=2.0)
        res = BMCChecker(h).check(spec)
        assert res.status is BMCStatus.UNSAT

    def test_unreachable_within_time_bound(self):
        h = decay_automaton()
        # x(t) = e^-t >= 0.1 requires t ~ 2.3 > bound 1.0
        spec = ReachSpec(goal=(0.05 - x >= 0), max_jumps=0, time_bound=1.0)
        res = BMCChecker(h).check(spec)
        assert res.status is BMCStatus.UNSAT

    def test_parameter_synthesis(self):
        h = decay_automaton()
        # find k such that x(1.0) ~ 0.2 => k = ln 5 ~ 1.609
        spec = ReachSpec(
            goal=And(in_range(x, 0.19, 0.21), in_range(var("t_marker") * 0 + x, 0.0, 1.0)),
            max_jumps=0,
            time_bound=1.0,
        )
        # simpler: x in [0.19, 0.21] reachable within t <= 1 requires k >= ln(1/0.21)
        spec = ReachSpec(goal=in_range(x, 0.19, 0.21), max_jumps=0, time_bound=1.0)
        res = BMCChecker(h).check(spec, param_ranges={"k": (0.1, 3.0)})
        assert res.status is BMCStatus.DELTA_SAT
        k = res.witness_params["k"]
        assert k >= math.log(1 / 0.21) - 0.1

    def test_parameter_synthesis_unsat(self):
        h = decay_automaton()
        # k in [0.1, 0.5]: x(t) >= e^{-0.5 * 1} ~ 0.606 for t <= 1;
        # asking for x <= 0.3 within 1 time unit is infeasible
        spec = ReachSpec(goal=(0.3 - x >= 0), max_jumps=0, time_bound=1.0)
        res = BMCChecker(h).check(spec, param_ranges={"k": (0.1, 0.5)})
        assert res.status is BMCStatus.UNSAT

    def test_unknown_param_rejected(self):
        h = decay_automaton()
        with pytest.raises(ValueError):
            BMCChecker(h).check(
                ReachSpec(goal=(x >= 0), max_jumps=0), param_ranges={"zz": (0, 1)}
            )


class TestMultiModeReachability:
    def test_two_mode_path_found(self):
        h = two_mode_switch()
        # after switching at x=0.5, growth can reach 0.8 again
        spec = ReachSpec(goal=(x >= 0.8), goal_mode="b", max_jumps=1, time_bound=3.0)
        res = BMCChecker(h).check(spec)
        assert res.status is BMCStatus.DELTA_SAT
        assert res.mode_path() == ["a", "b"]
        # dwell in mode a until x = 0.5: t = ln 2
        assert res.witness_dwells[0] >= math.log(2.0) - 0.05

    def test_goal_in_initial_mode_unreachable(self):
        h = two_mode_switch()
        # in mode a alone, x never grows above 1
        spec = ReachSpec(goal=(x >= 1.2), goal_mode="a", max_jumps=0, time_bound=3.0)
        res = BMCChecker(h).check(spec)
        assert res.status is BMCStatus.UNSAT

    def test_guard_blocks_path(self):
        # jump requires x >= 2 which decay never reaches
        h = HybridAutomaton(
            ["x"],
            [Mode("a", {"x": -x}), Mode("b", {"x": x})],
            [Jump("a", "b", guard=(x >= 2.0))],
            "a",
            Box.from_bounds({"x": (1.0, 1.0)}),
        )
        spec = ReachSpec(goal=(x >= 0.0), goal_mode="b", max_jumps=1, time_bound=3.0)
        res = BMCChecker(h).check(spec)
        assert res.status is BMCStatus.UNSAT

    def test_reset_applied(self):
        h = HybridAutomaton(
            ["x"],
            [Mode("a", {"x": -x}), Mode("b", {"x": 0.0 * x})],
            [Jump("a", "b", guard=(x <= 0.5), reset={"x": x + 10.0})],
            "a",
            Box.from_bounds({"x": (1.0, 1.0)}),
        )
        spec = ReachSpec(goal=(x >= 10.0), goal_mode="b", max_jumps=1, time_bound=3.0)
        res = BMCChecker(h).check(spec)
        assert res.status is BMCStatus.DELTA_SAT

    def test_invariant_prunes(self):
        # mode a has invariant x >= 0.8, guard needs x <= 0.5: unreachable
        h = HybridAutomaton(
            ["x"],
            [
                Mode("a", {"x": -x}, invariant=(x >= 0.8)),
                Mode("b", {"x": x}),
            ],
            [Jump("a", "b", guard=(x <= 0.5))],
            "a",
            Box.from_bounds({"x": (1.0, 1.0)}),
        )
        spec = ReachSpec(goal=(x >= 0.0), goal_mode="b", max_jumps=1, time_bound=3.0)
        res = BMCChecker(h).check(spec)
        assert res.status is BMCStatus.UNSAT

    def test_min_dwell_excludes_instant_jump(self):
        h = HybridAutomaton(
            ["x"],
            [Mode("a", {"x": -x}), Mode("b", {"x": x})],
            [Jump("a", "b", guard=(x <= 2.0))],  # enabled immediately
            "a",
            Box.from_bounds({"x": (1.0, 1.0)}),
        )
        spec = ReachSpec(goal=(x >= 0.9), goal_mode="b", max_jumps=1,
                         time_bound=2.0, min_dwell=0.0)
        res = BMCChecker(h).check(spec)
        assert res.status is BMCStatus.DELTA_SAT


class TestInitialStateSearch:
    def test_searches_initial_box(self):
        h = HybridAutomaton(
            ["x"],
            [Mode("m", {"x": -x})],
            [],
            "m",
            Box.from_bounds({"x": (0.5, 2.0)}),
        )
        # only initial states >= ~1.8 reach x >= 1.8 (at t=0)
        spec = ReachSpec(goal=(x >= 1.8), max_jumps=0, time_bound=1.0)
        res = BMCChecker(h).check(spec)
        assert res.status is BMCStatus.DELTA_SAT
        assert res.witness_x0["x"] >= 1.7

    def test_custom_init_box_overrides(self):
        h = decay_automaton()
        spec = ReachSpec(goal=(x >= 4.5), max_jumps=0, time_bound=1.0)
        res = BMCChecker(h).check(spec, init_box=Box.from_bounds({"x": (4.0, 5.0)}))
        assert res.status is BMCStatus.DELTA_SAT


class TestOptions:
    def test_without_simulation_guidance(self):
        h = decay_automaton()
        spec = ReachSpec(goal=in_range(x, 0.3, 0.5), max_jumps=0, time_bound=3.0)
        opt = BMCOptions(use_simulation_guidance=False, max_boxes_per_path=2000)
        res = BMCChecker(h, opt).check(spec)
        assert res.status is BMCStatus.DELTA_SAT

    def test_budget_exhaustion_unknown(self):
        h = decay_automaton()
        spec = ReachSpec(goal=in_range(x, 0.35, 0.351), max_jumps=0, time_bound=3.0)
        opt = BMCOptions(
            use_simulation_guidance=False, max_boxes_per_path=2, delta=1e-6,
        )
        res = BMCChecker(h, opt).check(spec)
        assert res.status in (BMCStatus.UNKNOWN, BMCStatus.DELTA_SAT)
