"""The declarative scenario catalog: registry, sweeps, CLI, caching."""

import json

import pytest

from repro.api import Engine, TaskSpec
from repro.api.cli import main
from repro.api.tasks import task_names
from repro.models import PATIENT_PROFILES
from repro.scenarios import (
    Scenario,
    ScenarioSweep,
    all_scenarios,
    find_scenarios,
    gallery_markdown,
    get_scenario,
    register_scenario,
    scenario_names,
)
from repro.scenarios.catalog import _REGISTRY, _substitute
from repro.status import AnalysisStatus

FAST_ENTRIES = (
    "logistic-falsify",
    "decay-pipeline",
    "thermostat-reach",
    "tbi-plan",
)


# ----------------------------------------------------------------------
# registry and entry integrity
# ----------------------------------------------------------------------


class TestCatalogIntegrity:
    def test_catalog_is_populated(self):
        assert len(scenario_names()) >= 12

    def test_every_entry_is_well_formed(self):
        statuses = {s.value for s in AnalysisStatus}
        kinds = set(task_names())
        for s in all_scenarios():
            assert s.task in kinds
            assert s.summary and s.description and s.tags
            assert s.expected in statuses
            spec = s.spec()  # binds defaults, builds the Model
            assert isinstance(spec, TaskSpec)
            assert spec.name == s.name
            spec.to_json()  # must be JSON-able (cache-friendly)

    def test_round_trip_json_identical(self):
        for s in all_scenarios():
            clone = Scenario.from_json(s.to_json())
            assert clone.to_dict() == s.to_dict()
            assert clone.to_json() == s.to_json()
            # the bound specs agree too
            assert clone.spec().to_dict() == s.spec().to_dict()

    def test_get_scenario_unknown(self):
        with pytest.raises(ValueError, match="unknown scenario"):
            get_scenario("no-such-entry")

    def test_find_scenarios_filters(self):
        cardiac = find_scenarios(tag="cardiac")
        assert {s.name for s in cardiac} >= {"cardiac-fk-dome", "cardiac-bcf-dome"}
        smc = find_scenarios(task="smc")
        assert all(s.task == "smc" for s in smc) and smc

    def test_register_rejects_duplicates_and_junk(self):
        with pytest.raises(ValueError, match="already registered"):
            register_scenario(get_scenario("sir-outbreak"))
        with pytest.raises(TypeError):
            register_scenario({"name": "not-a-scenario"})

    def test_register_decorator_form(self):
        @register_scenario
        def _entry():
            return Scenario(
                name="test-decorated-entry",
                summary="registered via the decorator form",
                task="smc",
                model={"builtin": "sir"},
            )

        try:
            assert get_scenario("test-decorated-entry").task == "smc"
        finally:
            del _REGISTRY["test-decorated-entry"]


class TestParameterBinding:
    def test_placeholder_substitution(self):
        bound = _substitute(
            {"a": {"$param": "x"}, "b": ["$x", "keep"], "c": {"n": 1}},
            {"x": 0.5},
        )
        assert bound == {"a": 0.5, "b": [0.5, "keep"], "c": {"n": 1}}

    def test_unknown_placeholder_raises(self):
        with pytest.raises(ValueError, match="unknown parameter"):
            _substitute({"a": {"$param": "nope"}}, {"x": 1})

    def test_override_changes_query_and_name(self):
        s = get_scenario("sir-outbreak")
        spec = s.spec(epsilon=0.3)
        assert spec.query["epsilon"] == 0.3
        assert spec.name == "sir-outbreak[epsilon=0.3]"
        # defaults leave the plain name
        assert s.spec().name == "sir-outbreak"
        assert s.spec().query["epsilon"] == 0.1

    def test_unknown_override_rejected(self):
        with pytest.raises(ValueError, match="no parameter"):
            get_scenario("sir-outbreak").spec(bogus=1)

    def test_seed_override(self):
        s = get_scenario("sir-outbreak")
        assert s.spec().seed == 4
        assert s.spec(seed=11).seed == 11


# ----------------------------------------------------------------------
# running entries
# ----------------------------------------------------------------------


class TestRunEntries:
    @pytest.mark.parametrize("name", FAST_ENTRIES)
    def test_fast_entries_report_expected_verdict(self, name):
        s = get_scenario(name)
        report = Engine(seed=0).run(s.spec())
        assert report.status.value == s.expected
        assert report.name == s.name


# ----------------------------------------------------------------------
# sweeps
# ----------------------------------------------------------------------


class TestSweepExpansion:
    def test_grid_expansion_order_and_names(self):
        sweep = ScenarioSweep("sir-outbreak", grid={"epsilon": [0.3, 0.2]})
        specs = sweep.expand()
        assert [s.name for s in specs] == [
            "sir-outbreak[epsilon=0.3]", "sir-outbreak[epsilon=0.2]",
        ]
        assert [s.query["epsilon"] for s in specs] == [0.3, 0.2]

    def test_cohort_patients(self):
        sweep = ScenarioSweep("ias-cohort-burden", cohort="patients")
        specs = sweep.expand()
        assert len(specs) == len(PATIENT_PROFILES)
        patients = [s.model.to_dict()["args"]["patient"] for s in specs]
        assert patients == sorted(PATIENT_PROFILES)

    def test_unknown_symbolic_cohort(self):
        with pytest.raises(ValueError, match="symbolic cohort"):
            ScenarioSweep("ias-cohort-burden", cohort="aliens").expand()

    def test_seeds_axis(self):
        sweep = ScenarioSweep("sir-outbreak", seeds=[0, 1])
        specs = sweep.expand()
        assert [s.seed for s in specs] == [0, 1]
        assert [s.name for s in specs] == ["sir-outbreak#s0", "sir-outbreak#s1"]

    def test_random_needs_samples(self):
        sweep = ScenarioSweep("sir-outbreak", random={"epsilon": (0.1, 0.3)})
        with pytest.raises(ValueError, match="samples"):
            sweep.expand()

    def test_random_is_deterministic_under_seed(self):
        def draws(seed):
            sweep = ScenarioSweep(
                "sir-outbreak", random={"epsilon": (0.1, 0.3)},
                samples=4, seed=seed,
            )
            return [s.query["epsilon"] for s in sweep.expand()]

        assert draws(7) == draws(7)
        assert draws(7) != draws(8)
        assert all(0.1 <= e <= 0.3 for e in draws(7))

    def test_grid_times_random(self):
        sweep = ScenarioSweep(
            "ias-policy",
            grid={"patient": ["patient_A", "patient_B"]},
            random={"population": (6.0, 12.0)},
            samples=3,
            seed=1,
        )
        specs = sweep.expand()
        assert len(specs) == 6
        # each grid point gets the SAME draws (cache-friendly pairing)
        pops = [s.query["population"] for s in specs]
        assert pops[:3] == pops[3:]

    def test_sweep_json_round_trip(self):
        sweep = ScenarioSweep(
            "sir-outbreak",
            grid={"epsilon": [0.1, 0.2]},
            random={"n": (10, 20)},
            samples=2,
            seed=3,
            cohort=["a", "b"],
            cohort_param="who",
            seeds=[0, 1],
        )
        clone = ScenarioSweep.from_json(sweep.to_json())
        assert clone.to_dict() == sweep.to_dict()

    def test_empty_grid_axis_rejected(self):
        with pytest.raises(ValueError, match="no values"):
            ScenarioSweep("sir-outbreak", grid={"epsilon": []}).expand()


class TestSweepCaching:
    def test_ias_cohort_cached_runs_byte_identical(self):
        """The acceptance check: per-patient reports are byte-identical
        between the uncached and the cache-served sweep submission."""
        sweep = ScenarioSweep("ias-cohort-burden", cohort="patients")
        with Engine(seed=0, cache=True) as engine:
            first = [h.result() for h in sweep.submit(engine)]
            second = [h.result() for h in sweep.submit(engine)]
            stats = engine.cache.stats()
        assert [r.to_json() for r in first] == [r.to_json() for r in second]
        assert stats["hits"] == len(PATIENT_PROFILES)
        assert stats["misses"] == len(PATIENT_PROFILES)
        # the responder/relapse split of the paper's cohort
        by_name = {r.name: r.metrics["probability"] for r in first}
        assert by_name["ias-cohort-burden[patient=patient_A]"] > 0.9
        assert by_name["ias-cohort-burden[patient=patient_C]"] < 0.1

    def test_random_sweep_resubmission_hits_cache(self):
        sweep = ScenarioSweep(
            "logistic-growth-smc", random={"epsilon": (0.2, 0.4)},
            samples=2, seed=5,
        )
        with Engine(seed=0, cache=True) as engine:
            first = [h.result() for h in sweep.submit(engine)]
            again = [h.result() for h in sweep.submit(engine)]
            assert engine.cache.stats()["hits"] == 2
        assert [r.to_json() for r in first] == [r.to_json() for r in again]


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------


class TestScenariosCLI:
    def test_list_table(self, capsys):
        assert main(["scenarios", "list"]) == 0
        out = capsys.readouterr().out
        for name in scenario_names():
            assert name in out

    def test_list_json_and_filters(self, capsys):
        assert main(["scenarios", "list", "--tag", "cardiac",
                     "--format", "json"]) == 0
        entries = json.loads(capsys.readouterr().out)
        assert {e["name"] for e in entries} == {
            s.name for s in find_scenarios(tag="cardiac")
        }

    def test_list_markdown_matches_renderer(self, capsys):
        assert main(["scenarios", "list", "--format", "markdown"]) == 0
        assert capsys.readouterr().out == gallery_markdown()

    def test_list_no_match(self, capsys):
        assert main(["scenarios", "list", "--tag", "nope"]) == 1

    def test_show(self, capsys):
        assert main(["scenarios", "show", "sir-outbreak"]) == 0
        out = capsys.readouterr().out
        assert "sir-outbreak" in out and "epsilon" in out and '"task"' in out

    def test_show_unknown_exits_2(self, capsys):
        assert main(["scenarios", "show", "nope"]) == 2
        assert "unknown scenario" in capsys.readouterr().err

    def test_run_with_check_and_json(self, capsys):
        assert main(["scenarios", "run", "logistic-falsify",
                     "--check", "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["status"] == "falsified"
        assert report["name"] == "logistic-falsify"

    def test_run_with_param_override(self, capsys):
        assert main(["scenarios", "run", "logistic-growth-smc",
                     "-p", "epsilon=0.3", "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["name"] == "logistic-growth-smc[epsilon=0.3]"

    def test_run_bad_param_exits_2(self, capsys):
        assert main(["scenarios", "run", "logistic-growth-smc",
                     "-p", "bogus=1"]) == 2
        assert "no parameter" in capsys.readouterr().err

    def test_run_check_rejects_param_overrides(self, capsys):
        # expected verdicts are recorded for the defaults: --check with
        # -p must refuse rather than silently pass (even when the
        # override equals the default)
        assert main(["scenarios", "run", "logistic-growth-smc",
                     "-p", "epsilon=0.2", "--check"]) == 2
        assert "--check" in capsys.readouterr().err

    def test_sweep_seed_zero_overrides_file(self, tmp_path, capsys):
        sweep_file = tmp_path / "sweep.json"
        sweep_file.write_text(ScenarioSweep(
            "logistic-growth-smc", random={"epsilon": (0.2, 0.4)},
            samples=2, seed=3,
        ).to_json())
        def epsilons(extra):
            assert main(["scenarios", "sweep", str(sweep_file),
                         "--dry-run", *extra]) == 0
            return [s["query"]["epsilon"]
                    for s in json.loads(capsys.readouterr().out)]
        assert epsilons(["--sweep-seed", "0"]) != epsilons([])  # 0 is not "unset"
        assert epsilons([]) == [
            s.query["epsilon"]
            for s in ScenarioSweep.from_json(sweep_file.read_text()).expand()
        ]

    def test_sweep_dry_run(self, capsys):
        assert main(["scenarios", "sweep", "sir-outbreak",
                     "--set", "epsilon=0.2,0.3", "--dry-run"]) == 0
        specs = json.loads(capsys.readouterr().out)
        assert [s["name"] for s in specs] == [
            "sir-outbreak[epsilon=0.2]", "sir-outbreak[epsilon=0.3]",
        ]

    def test_sweep_from_file_with_cache(self, tmp_path, capsys):
        sweep_file = tmp_path / "sweep.json"
        sweep_file.write_text(ScenarioSweep(
            "logistic-growth-smc", grid={"epsilon": [0.3, 0.4]},
        ).to_json())
        cache_dir = str(tmp_path / "rcache")
        out1 = tmp_path / "r1.json"
        out2 = tmp_path / "r2.json"
        assert main(["scenarios", "sweep", str(sweep_file),
                     "--cache-dir", cache_dir, "--out", str(out1)]) == 0
        assert main(["scenarios", "sweep", str(sweep_file),
                     "--cache-dir", cache_dir, "--out", str(out2)]) == 0
        capsys.readouterr()
        assert json.loads(out1.read_text()) == json.loads(out2.read_text())

    def test_sweep_cohort_cli_expansion(self, capsys):
        assert main(["scenarios", "sweep", "ias-cohort-burden",
                     "--cohort", "patients", "--dry-run"]) == 0
        specs = json.loads(capsys.readouterr().out)
        assert len(specs) == len(PATIENT_PROFILES)


# ----------------------------------------------------------------------
# docs gallery staleness (the local mirror of the CI check)
# ----------------------------------------------------------------------


def test_committed_gallery_page_is_current():
    import pathlib

    page = pathlib.Path(__file__).resolve().parent.parent / "docs" / "scenarios.md"
    assert page.exists(), "docs/scenarios.md is missing"
    assert page.read_text() == gallery_markdown(), (
        "docs/scenarios.md is stale; regenerate with: "
        "python -m repro scenarios list --format markdown > docs/scenarios.md"
    )
