"""Tests for the L_RF logic layer: atoms, connectives, quantifiers,
negation-as-NNF, and delta-weakening (paper Definitions 1-4)."""

import pytest

from repro.expr import var, variables
from repro.intervals import Box
from repro.logic import (
    FALSE,
    TRUE,
    And,
    Atom,
    Exists,
    Forall,
    Implies,
    Not,
    Or,
    box_formula,
    eq_zero,
    equals_within,
    in_range,
)

x, y = variables("x y")


class TestAtoms:
    def test_strict_atom_from_comparison(self):
        a = x > 0
        assert isinstance(a, Atom) and a.strict

    def test_weak_atom_from_comparison(self):
        a = x >= 0
        assert isinstance(a, Atom) and not a.strict

    def test_lt_le_swap_operands(self):
        assert (x < 1).eval({"x": 0.5})
        assert not (x < 1).eval({"x": 1.0})
        assert (x <= 1).eval({"x": 1.0})

    def test_eval_boundary(self):
        assert not (x > 0).eval({"x": 0.0})
        assert (x >= 0).eval({"x": 0.0})

    def test_variables(self):
        assert (x + y > 0).variables() == {"x", "y"}


class TestNegationNNF:
    def test_negate_strict(self):
        # not(t > 0) == -t >= 0
        n = (x > 0).negate()
        assert isinstance(n, Atom) and not n.strict
        assert n.eval({"x": -1.0}) and not n.eval({"x": 1.0})
        assert n.eval({"x": 0.0})  # boundary flips to weak

    def test_negate_weak(self):
        n = (x >= 0).negate()
        assert isinstance(n, Atom) and n.strict
        assert not n.eval({"x": 0.0})

    def test_de_morgan(self):
        phi = And(x > 0, y > 0)
        n = Not(phi)
        assert isinstance(n, Or)
        # check semantics on samples
        for env in [{"x": 1.0, "y": 1.0}, {"x": -1.0, "y": 1.0}, {"x": -1.0, "y": -1.0}]:
            assert n.eval(env) == (not phi.eval(env))

    def test_double_negation_semantics(self):
        phi = Or(x > 1, And(y >= 0, x <= 0))
        nn = Not(Not(phi))
        for env in [
            {"x": 2.0, "y": -1.0},
            {"x": 0.0, "y": 0.0},
            {"x": 0.5, "y": -0.5},
        ]:
            assert nn.eval(env) == phi.eval(env)

    def test_quantifier_swap(self):
        phi = Forall("x", 0, 1, x > 0)
        n = Not(phi)
        assert isinstance(n, Exists)


class TestConnectives:
    def test_and_flattening(self):
        f = And(x > 0, And(y > 0, x > 1))
        assert len(f.parts) == 3

    def test_or_flattening(self):
        f = Or(x > 0, Or(y > 0, x > 1))
        assert len(f.parts) == 3

    def test_constants_absorbed(self):
        assert And(TRUE, x > 0) == (x > 0)
        assert And(FALSE, x > 0) == FALSE
        assert Or(TRUE, x > 0) == TRUE
        assert Or(FALSE, x > 0) == (x > 0)
        assert And() == TRUE
        assert Or() == FALSE

    def test_operators(self):
        f = (x > 0) & (y > 0)
        assert isinstance(f, And)
        g = (x > 0) | (y > 0)
        assert isinstance(g, Or)
        assert isinstance(~(x > 0), Atom)

    def test_implies(self):
        f = Implies(x > 0, y > 0)
        assert f.eval({"x": -1.0, "y": -1.0})  # vacuous
        assert f.eval({"x": 1.0, "y": 1.0})
        assert not f.eval({"x": 1.0, "y": -1.0})

    def test_atoms_collection(self):
        f = And(x > 0, Or(y >= 1, x > 2))
        assert len(f.atoms()) == 3


class TestDeltaWeakening:
    def test_atom_weakening_monotone(self):
        a = x > 0
        w = a.delta_weaken(0.5)
        # anything satisfying a satisfies w, plus boundary slack
        assert w.eval({"x": 0.1})
        assert w.eval({"x": -0.4})
        assert not w.eval({"x": -0.6})

    def test_weaken_zero_identity(self):
        a = x >= 0
        assert a.delta_weaken(0.0) == a

    def test_strengthen_dual(self):
        a = (x >= 0).delta_strengthen(0.5)
        assert a.eval({"x": 0.6})
        assert not a.eval({"x": 0.4})

    def test_weakening_distributes(self):
        phi = And(x > 0, Or(y >= 0, x > 1))
        w = phi.delta_weaken(0.25)
        # weakened formula accepts everything original accepts
        for env in [{"x": 0.5, "y": 0.0}, {"x": 2.0, "y": -5.0}]:
            if phi.eval(env):
                assert w.eval(env)
        # and strictly more
        assert w.eval({"x": -0.2, "y": -0.2})

    def test_weaken_quantified(self):
        phi = Forall("x", 0, 1, x * (1 - x) >= -0.1)
        assert phi.delta_weaken(0.2).eval({})


class TestQuantifiers:
    def test_exists_grid_eval(self):
        phi = Exists("x", 0, 1, (x - 0.5) * (x - 0.5) <= 0.01)
        assert phi.eval({})

    def test_forall_grid_eval(self):
        assert Forall("x", 0, 1, x >= 0).eval({})
        assert not Forall("x", 0, 1, x > 0.5).eval({})

    def test_bound_variable_not_free(self):
        phi = Exists("x", 0, 1, (x + y) > 0)
        assert phi.variables() == {"y"}

    def test_bounds_may_reference_outer_vars(self):
        phi = Exists("x", y, y + 1, x >= y)
        assert "y" in phi.variables()
        assert phi.eval({"y": 3.0})

    def test_self_referencing_bound_rejected(self):
        with pytest.raises(ValueError):
            Exists("x", x, 1, x > 0)

    def test_subs_avoids_capture(self):
        phi = Exists("x", 0, 1, (x + y) > 10)
        phi2 = phi.subs({"y": 100.0})
        assert phi2.eval({})
        phi3 = phi.subs({"x": 99.0})  # bound x must not be replaced
        assert phi3.eval({"y": 0.0}) is False


class TestBuilders:
    def test_in_range(self):
        f = in_range(x, 0.0, 1.0)
        assert f.eval({"x": 0.0}) and f.eval({"x": 1.0}) and f.eval({"x": 0.5})
        assert not f.eval({"x": 1.01})

    def test_equals_within(self):
        f = equals_within(x, 5.0, 0.1)
        assert f.eval({"x": 5.05})
        assert not f.eval({"x": 5.2})

    def test_eq_zero(self):
        f = eq_zero(x - 3)
        assert f.eval({"x": 3.0})
        assert not f.eval({"x": 3.1})

    def test_box_formula(self):
        f = box_formula(Box.from_bounds({"x": (0, 1), "y": (2, 3)}))
        assert f.eval({"x": 0.5, "y": 2.5})
        assert not f.eval({"x": 0.5, "y": 4.0})

    def test_box_formula_from_mapping(self):
        f = box_formula({"x": (0, 1)})
        assert f.eval({"x": 1.0})
