"""Fuzz the vectorized interval kernel against the scalar one.

Two properties, checked over ~10k seeded random interval pairs:

* **agreement** -- every batched op must reproduce the scalar kernel's
  bounds (bit-identical for the rational operations, which share the
  exactness-aware rounding algorithms; within a couple of ulps for the
  libm-backed transcendentals), and
* **inclusion** -- every op result must contain the pointwise result
  for member points of the operands (the soundness contract the whole
  delta-decision stack rests on).
"""

import math
import random

import numpy as np
import pytest

from repro.intervals import Interval, IntervalArray

N = 10_000
SEED = 20260728


def _random_pairs(rng: random.Random, n: int):
    """n (interval, member, interval, member) tuples over mixed scales."""
    xs, xpts, ys, ypts = [], [], [], []
    for _ in range(n):
        scale = 10.0 ** rng.uniform(-3, 3)
        a, b = sorted(rng.uniform(-scale, scale) for _ in range(2))
        c, d = sorted(rng.uniform(-scale, scale) for _ in range(2))
        xs.append(Interval(a, b))
        ys.append(Interval(c, d))
        xpts.append(min(max(rng.uniform(a, b), a), b))
        ypts.append(min(max(rng.uniform(c, d), c), d))
    return xs, xpts, ys, ypts


@pytest.fixture(scope="module")
def pairs():
    rng = random.Random(SEED)
    xs, xpts, ys, ypts = _random_pairs(rng, N)
    return {
        "X": xs, "xs": np.array(xpts),
        "Y": ys, "ys": np.array(ypts),
        "Xa": IntervalArray.from_intervals(xs),
        "Ya": IntervalArray.from_intervals(ys),
    }


def _assert_agrees(vec: IntervalArray, scal: list[Interval], ulps: int, op: str):
    lo_s = np.array([iv.lo for iv in scal])
    hi_s = np.array([iv.hi for iv in scal])
    lo_v, hi_v = vec.lo, vec.hi
    if ulps == 0:
        bad = ~((lo_v == lo_s) & (hi_v == hi_s))
    else:
        tol_lo = np.abs(np.spacing(lo_s)) * ulps
        tol_hi = np.abs(np.spacing(hi_s)) * ulps
        bad = (np.abs(lo_v - lo_s) > tol_lo) | (np.abs(hi_v - hi_s) > tol_hi)
        # empty-vs-empty rows agree regardless of canonical bounds
        bad &= ~((lo_v > hi_v) & (lo_s > hi_s))
    assert not bad.any(), (
        f"{op}: {int(bad.sum())} disagreements, first at row "
        f"{int(np.flatnonzero(bad)[0])}"
    )


def _assert_includes(vec: IntervalArray, pts: np.ndarray, op: str):
    ok = np.isnan(pts) | ((vec.lo <= pts) & (pts <= vec.hi))
    assert ok.all(), (
        f"{op}: inclusion violated on {int((~ok).sum())} rows, first at "
        f"{int(np.flatnonzero(~ok)[0])}"
    )


BINARY_CASES = [
    ("add", lambda X, Y: X + Y, lambda x, y: x + y, 0),
    ("sub", lambda X, Y: X - Y, lambda x, y: x - y, 0),
    ("mul", lambda X, Y: X * Y, lambda x, y: x * y, 0),
    ("div", lambda X, Y: X / Y, lambda x, y: x / y if y != 0 else math.nan, 0),
    ("min", lambda X, Y: X.min_with(Y), min, 0),
    ("max", lambda X, Y: X.max_with(Y), max, 0),
]

UNARY_CASES = [
    ("neg", lambda X: -X, lambda x: -x, 0),
    ("abs", abs, abs, 0),
    ("sqr", lambda X: X.sqr(), lambda x: x * x, 0),
    # numpy's pow fast-paths small integer exponents (x*x) while CPython
    # always calls libm pow -- both correctly rounded to within an ulp
    ("pow2", lambda X: X.pow(2) if isinstance(X, Interval) else X.pow_int(2),
     lambda x: x * x, 1),
    ("pow3", lambda X: X.pow(3) if isinstance(X, Interval) else X.pow_int(3),
     lambda x: x ** 3, 1),
    ("pow-1", lambda X: X.pow(-1) if isinstance(X, Interval) else X.pow_int(-1),
     lambda x: 1.0 / x if x != 0 else math.nan, 0),
    # fractional exponents hit the domain-edge branches (negative bases
    # are clipped to the [0, inf) domain, zero bases of negative powers
    # go unbounded) -- the random operands cross zero constantly.  Both
    # kernels compute exp(n*log x), so a one-ulp libm-vs-numpy
    # difference in log amplifies by |n*log x| (~10 over the fuzz
    # domain) before the exp; 32 ulps bounds the stack-up while still
    # catching branch-selection bugs, which are off by whole factors.
    ("pow0.5", lambda X: X.pow(0.5) if isinstance(X, Interval) else X.pow_scalar(0.5),
     lambda x: math.sqrt(x) if x >= 0 else math.nan, 32),
    ("pow1.5", lambda X: X.pow(1.5) if isinstance(X, Interval) else X.pow_scalar(1.5),
     lambda x: x ** 1.5 if x >= 0 else math.nan, 32),
    ("pow-0.5", lambda X: X.pow(-0.5) if isinstance(X, Interval) else X.pow_scalar(-0.5),
     lambda x: x ** -0.5 if x > 0 else math.nan, 32),
    ("inverse", lambda X: X.inverse(), lambda x: 1.0 / x if x != 0 else math.nan, 0),
    ("sqrt", lambda X: X.sqrt(), lambda x: math.sqrt(x) if x >= 0 else math.nan, 2),
    ("exp", lambda X: X.exp(), math.exp, 2),
    ("log", lambda X: X.log(), lambda x: math.log(x) if x > 0 else math.nan, 2),
    ("sin", lambda X: X.sin(), math.sin, 2),
    ("cos", lambda X: X.cos(), math.cos, 2),
    ("tan", lambda X: X.tan(), math.tan, 2),
    ("tanh", lambda X: X.tanh(), math.tanh, 2),
    ("sigmoid", lambda X: X.sigmoid(),
     lambda x: 1.0 / (1.0 + math.exp(-x)) if x >= 0
     else math.exp(x) / (1.0 + math.exp(x)), 2),
]


@pytest.mark.parametrize("name,vop,pop,ulps", BINARY_CASES, ids=[c[0] for c in BINARY_CASES])
def test_binary_agreement_and_inclusion(pairs, name, vop, pop, ulps):
    vec = vop(pairs["Xa"], pairs["Ya"])
    scal = [vop(X, Y) for X, Y in zip(pairs["X"], pairs["Y"])]
    _assert_agrees(vec, scal, ulps, name)
    pts = np.array([pop(x, y) for x, y in zip(pairs["xs"], pairs["ys"])])
    _assert_includes(vec, pts, name)


def _safe(pop, *args) -> float:
    try:
        return pop(*args)
    except OverflowError:
        return math.inf  # true value is huge; only an inf bound contains it


@pytest.mark.parametrize("name,vop,pop,ulps", UNARY_CASES, ids=[c[0] for c in UNARY_CASES])
def test_unary_agreement_and_inclusion(pairs, name, vop, pop, ulps):
    vec = vop(pairs["Xa"])
    scal = [vop(X) for X in pairs["X"]]
    _assert_agrees(vec, scal, ulps, name)
    pts = np.array([_safe(pop, float(x)) for x in pairs["xs"]])
    _assert_includes(vec, pts, name)


def test_set_ops_agree(pairs):
    for name, vop in [
        ("intersect", lambda A, B: A.intersect(B)),
        ("hull", lambda A, B: A.hull(B)),
    ]:
        vec = vop(pairs["Xa"], pairs["Ya"])
        scal = [vop(X, Y) for X, Y in zip(pairs["X"], pairs["Y"])]
        for i, iv in enumerate(scal):
            if iv.is_empty:
                assert vec.lo[i] > vec.hi[i], name
            else:
                assert (vec.lo[i], vec.hi[i]) == (iv.lo, iv.hi), name


def test_roundtrip_conversion(pairs):
    back = pairs["Xa"].to_intervals()
    assert back == pairs["X"]
