"""The job-oriented service layer: submit/poll/cancel, progress events,
the content-addressed result cache, and executor backends."""

import math
import threading
import time

import pytest

from repro.api import Engine, JobState, ResultCache, TaskSpec
from repro.progress import JobCancelled, ProgressEvent, emit, progress_scope
from repro.service import make_backend, spec_key
from repro.status import AnalysisStatus


def smc_spec(name="smc", epsilon=0.25, seed=None):
    spec = {
        "task": "smc",
        "name": name,
        "model": {"builtin": "logistic"},
        "query": {
            "phi": {"op": "F", "bound": 6.0, "arg": "x >= 5.0"},
            "init": {"x": [0.3, 0.7]},
            "horizon": 6.0,
            "method": "probability",
            "epsilon": epsilon,
            "alpha": 0.2,
        },
    }
    if seed is not None:
        spec["seed"] = seed
    return spec


def slow_calibrate_spec():
    """A branch-and-prune search that cannot terminate quickly: the
    tolerance is far below the enclosure width, so no box ever
    verifies and the solver grinds through its whole budget."""
    return {
        "task": "calibrate",
        "name": "slow",
        "model": {"builtin": "logistic"},
        "query": {
            "data": {"samples": [[2.0, {"x": 1.45}]], "tolerance": 1e-6},
            "param_ranges": {"r": [0.1, 2.0]},
            "x0": {"x": 0.5},
        },
        "solver": {
            "delta": 1e-9,
            "max_boxes": 200_000,
            "use_simulation_guidance": False,
        },
    }


@pytest.fixture
def engine():
    eng = Engine(seed=0)
    yield eng
    eng.close()


# ----------------------------------------------------------------------
# progress / cancellation primitives
# ----------------------------------------------------------------------


class TestProgressPrimitives:
    def test_emit_is_noop_without_scope(self):
        emit("icp", "branch-and-prune", boxes=1)  # must not raise

    def test_scope_delivers_ordered_events(self):
        seen = []
        with progress_scope(sink=seen.append):
            for i in range(3):
                emit("smc", "sampling", samples=i)
        assert [e.counters["samples"] for e in seen] == [0.0, 1.0, 2.0]
        assert all(e.source == "smc" for e in seen)

    def test_cancel_event_raises_at_checkpoint(self):
        cancel = threading.Event()
        cancel.set()
        with progress_scope(cancel=cancel):
            with pytest.raises(JobCancelled):
                emit("icp", "branch-and-prune", boxes=1)

    def test_interval_rate_limits_but_still_cancels(self):
        seen = []
        cancel = threading.Event()
        with progress_scope(sink=seen.append, cancel=cancel, interval=3600.0):
            for i in range(10):
                emit("smc", "sampling", samples=i)
            assert len(seen) == 1  # rate-limited to the first
            cancel.set()
            with pytest.raises(JobCancelled):
                emit("smc", "sampling", samples=99)

    def test_cancellation_mid_icp_stops_iteration(self):
        """The ICP loop must stop within one progress event of cancel."""
        from repro.intervals import Box
        from repro.logic import eq_zero
        from repro.expr import var
        from repro.solver.icp import DeltaSolver

        x, y = var("x"), var("y")
        # inconsistent by a hair: forces deep splitting before any verdict
        phi = eq_zero(y - x * x) & eq_zero(x * x + 1e-12 - y)
        box = Box.from_bounds({"x": (-10.0, 10.0), "y": (-5.0, 100.0)})
        solver = DeltaSolver(delta=1e-12, max_boxes=1_000_000)

        cancel = threading.Event()
        boxes_seen = []

        def sink(event):
            boxes_seen.append(event.counters["boxes"])
            if len(boxes_seen) >= 3:
                cancel.set()

        with progress_scope(sink=sink, cancel=cancel):
            with pytest.raises(JobCancelled):
                solver._solve_impl(phi, box)
        # stopped right after the cancel flag was observed (one progress
        # event per popped frontier; the frontier doubles while the heap
        # is smaller than K, so the first events count 1, 3, 7, 15 boxes)
        assert 3 <= len(boxes_seen) <= 4
        assert max(boxes_seen) <= 15


# ----------------------------------------------------------------------
# job lifecycle
# ----------------------------------------------------------------------


class TestJobLifecycle:
    def test_submit_poll_result(self, engine):
        job = engine.submit(smc_spec(), backend="thread")
        assert job.id.startswith("j")
        report = job.result(timeout=60.0)
        assert job.status is JobState.DONE
        assert job.done()
        assert report.status is AnalysisStatus.ESTIMATED
        assert report.metrics["probability"] == pytest.approx(1.0, abs=0.05)
        # the ordered event stream saw the SMC sampling loop
        events = job.events()
        assert events, "no progress events recorded"
        assert [e.seq for e in events] == list(range(len(events)))
        assert all(e.job_id == job.id for e in events)
        assert any(e.source == "smc" and e.stage == "sampling" for e in events)

    def test_submit_matches_run(self, engine):
        sync = engine.run(smc_spec())
        job = engine.submit(smc_spec(), backend="thread")
        r = job.result(timeout=60.0)
        sync_d, r_d = sync.to_dict(), r.to_dict()
        sync_d["wall_time"] = r_d["wall_time"] = 0.0
        assert sync_d == r_d

    def test_result_timeout(self, engine):
        job = engine.submit(slow_calibrate_spec(), backend="thread")
        with pytest.raises(TimeoutError):
            job.result(timeout=0.05)
        assert job.cancel()
        report = job.result(timeout=30.0)
        assert report.status is AnalysisStatus.CANCELLED

    def test_cancel_running_job_stops_within_one_event(self, engine):
        t0 = time.perf_counter()
        job = engine.submit(slow_calibrate_spec(), backend="thread")
        assert job.wait_event(1, timeout=30.0), "job never emitted progress"
        assert job.cancel()
        report = job.result(timeout=30.0)
        elapsed = time.perf_counter() - t0
        assert job.status is JobState.CANCELLED
        assert report.status is AnalysisStatus.CANCELLED
        assert not report.ok
        # it stopped long before the 200k-box budget (within ~one event)
        assert job.event_count < 50
        assert elapsed < 20.0

    def test_cancel_after_done_returns_false(self, engine):
        job = engine.submit(smc_spec(), backend="inline")
        assert job.done()
        assert job.cancel() is False
        assert job.status is JobState.DONE

    def test_sync_wrappers_do_not_retain_jobs(self, engine):
        engine.run(smc_spec("sync-one"))
        engine.run_batch([smc_spec("sync-a"), smc_spec("sync-b")])
        assert engine.jobs() == []  # no memory growth for run()-loop callers
        job = engine.submit(smc_spec("async"), backend="inline")
        assert engine.jobs() == [job]  # async submissions stay pollable

    def test_jobs_table_and_lookup(self, engine):
        job = engine.submit(smc_spec("tracked"), backend="inline")
        assert engine.job(job.id) is job
        assert engine.job("nope") is None
        assert job in engine.jobs()
        summary = job.summary()
        assert summary["id"] == job.id
        assert summary["name"] == "tracked"
        assert summary["state"] == "done"
        assert summary["status"] == "estimated"

    def test_engine_level_progress_sink(self):
        seen = []
        eng = Engine(seed=0, progress=lambda job, ev: seen.append((job.id, ev)))
        try:
            job = eng.submit(smc_spec(), backend="inline")
            job.result(timeout=60.0)
        finally:
            eng.close()
        assert seen
        assert all(jid == job.id for jid, _ in seen)
        assert all(isinstance(ev, ProgressEvent) for _, ev in seen)


# ----------------------------------------------------------------------
# result cache
# ----------------------------------------------------------------------


class TestResultCache:
    def test_spec_key_canonical_and_seed_sensitive(self):
        a = TaskSpec.from_dict(smc_spec(seed=1))
        b = TaskSpec.from_dict(smc_spec(seed=1))
        c = TaskSpec.from_dict(smc_spec(seed=2))
        assert spec_key(a) == spec_key(b)
        assert spec_key(a) != spec_key(c)

    def test_spec_key_none_for_live_objects(self):
        from repro.api.serialize import bltl_from_value

        ts = TaskSpec.from_dict(smc_spec())
        ts.query["phi"] = bltl_from_value(ts.query["phi"])
        assert spec_key(ts) is None

    def test_cache_hit_returns_identical_report_without_rerun(self):
        eng = Engine(seed=0, cache=True)
        try:
            first = eng.run(smc_spec())
            assert eng.cache.stats()["misses"] == 1
            job = eng.submit(smc_spec(), backend="thread")
            second = job.result(timeout=60.0)
            assert job.from_cache
            assert job.status is JobState.DONE
            assert eng.cache.stats()["hits"] == 1
            # byte-identical, including the original wall time
            assert second.to_json() == first.to_json()
            # served from cache: no task-level progress events were emitted
            assert all(e.source == "engine" for e in job.events())
        finally:
            eng.close()

    def test_error_reports_are_not_cached(self):
        eng = Engine(seed=0, cache=True)
        try:
            bad = {"task": "nope", "model": {"builtin": "logistic"}}
            assert eng.run(bad).status is AnalysisStatus.ERROR
            assert eng.run(bad).status is AnalysisStatus.ERROR
            assert eng.cache.stats()["stores"] == 0
            assert eng.cache.stats()["hits"] == 0
        finally:
            eng.close()

    def test_disk_store_survives_engine_restart(self, tmp_path):
        cache_dir = str(tmp_path / "rcache")
        eng1 = Engine(seed=0, cache=cache_dir)
        first = eng1.run(smc_spec())
        eng1.close()

        eng2 = Engine(seed=0, cache=cache_dir)
        try:
            job = eng2.submit(smc_spec(), backend="inline")
            assert job.from_cache
            assert job.result(timeout=10.0).to_json() == first.to_json()
            assert eng2.cache.stats()["hits"] == 1
        finally:
            eng2.close()

    def test_corrupt_disk_entry_is_a_miss_not_a_crash(self, tmp_path):
        import pathlib

        cache_dir = str(tmp_path / "c")
        eng1 = Engine(seed=0, cache=cache_dir)
        first = eng1.run(smc_spec())
        eng1.close()
        (entry,) = pathlib.Path(cache_dir).glob("*.json")
        entry.write_text(first.to_json()[:20])  # truncated: partial write

        eng2 = Engine(seed=0, cache=cache_dir)
        try:
            job = eng2.submit(smc_spec(), backend="inline")
            report = job.result(timeout=60.0)
            assert not job.from_cache  # re-ran instead of crashing
            assert report.metrics == first.metrics
            assert eng2.cache.stats()["misses"] == 1
            assert eng2.cache.stats()["stores"] == 1  # entry repaired
        finally:
            eng2.close()

    def test_lru_eviction(self):
        cache = ResultCache(max_entries=2)
        from repro.api.report import AnalysisReport

        for i in range(3):
            cache.put(f"k{i}", AnalysisReport("smc", AnalysisStatus.ESTIMATED))
        assert len(cache) == 2
        assert cache.get("k0") is None  # evicted
        assert cache.get("k2") is not None


# ----------------------------------------------------------------------
# backends and batches
# ----------------------------------------------------------------------


def _logistic_truth(t, r=0.65, K=10.0, x0=0.5):
    return K / (1.0 + (K / x0 - 1.0) * math.exp(-r * t))


def four_scenarios():
    cal = {
        "task": "calibrate",
        "name": "cal",
        "model": {"builtin": "logistic"},
        "query": {
            "data": {
                "samples": [[t, {"x": _logistic_truth(t)}] for t in (2.0, 4.0)],
                "tolerance": 0.2,
            },
            "param_ranges": {"r": [0.1, 2.0]},
            "x0": {"x": 0.5},
        },
        "solver": {"delta": 0.05, "max_boxes": 400},
    }
    return [
        smc_spec("s1"),
        smc_spec("s2", epsilon=0.3),
        smc_spec("s3", seed=7),
        cal,
    ]


class TestBackendsAndBatches:
    def test_make_backend_unknown_name(self):
        with pytest.raises(ValueError, match="unknown backend"):
            make_backend("gpu")

    @pytest.mark.parametrize("backend", ["inline", "thread", "process"])
    def test_every_backend_same_results(self, backend, engine):
        reports = engine.run_batch(four_scenarios(), workers=2, backend=backend)
        assert [r.name for r in reports] == ["s1", "s2", "s3", "cal"]
        assert all(r.ok for r in reports)

    def test_parallel_equals_serial_equals_cached(self):
        """The acceptance batch: 4 scenarios, process backend, twice.

        serial == parallel (modulo wall time), and the second parallel
        submission is served byte-identically from the cache.
        """
        specs = four_scenarios()
        serial_eng = Engine(seed=0)
        par_eng = Engine(workers=2, seed=0, cache=True)
        try:
            serial = serial_eng.run_batch(specs, workers=1)

            first = par_eng.run_batch(specs, backend="process")
            assert par_eng.cache.stats() == {
                "hits": 0, "misses": 4, "stores": 4, "entries": 4,
                "quarantined": 0,
            }

            handles = par_eng.submit_batch(specs, backend="process")
            second = [h.result(timeout=120.0) for h in handles]
            assert all(h.from_cache for h in handles)
            assert par_eng.cache.stats()["hits"] == 4

            # cached == parallel, byte for byte
            assert [r.to_json() for r in second] == [r.to_json() for r in first]
            # parallel == serial once timing is masked
            for s, p in zip(serial, first):
                sd, pd = s.to_dict(), p.to_dict()
                sd["wall_time"] = pd["wall_time"] = 0.0
                assert sd == pd
        finally:
            serial_eng.close()
            par_eng.close()

    def test_run_batch_order_and_compat(self, engine):
        """The historical surface is unchanged: workers>1 parallelizes,
        order follows submission."""
        reports = engine.run_batch(four_scenarios(), workers=2)
        assert [r.name for r in reports] == ["s1", "s2", "s3", "cal"]

    def test_non_picklable_spec_warns_and_runs_inline(self, engine):
        from repro.api.serialize import bltl_from_value

        live = TaskSpec.from_dict(smc_spec("live"))
        live.query["phi"] = bltl_from_value(live.query["phi"])
        with pytest.warns(RuntimeWarning, match="live.*non-serializable"):
            handles = engine.submit_batch(
                [live, smc_spec("plain")], workers=2, backend="process"
            )
        reports = [h.result(timeout=120.0) for h in handles]
        assert [r.name for r in reports] == ["live", "plain"]
        assert handles[0].backend_name == "inline"
        assert handles[1].backend_name == "process"
        assert reports[0].metrics == reports[1].metrics

    def test_taskspec_replace(self):
        ts = TaskSpec.from_dict(smc_spec("orig", seed=3))
        swapped = ts.replace(seed=9, name="copy")
        assert swapped.seed == 9 and swapped.name == "copy"
        assert swapped.task == ts.task and swapped.query == ts.query
        assert ts.seed == 3 and ts.name == "orig"  # original untouched

    def test_engine_context_manager_closes_pools(self):
        with Engine(seed=0) as eng:
            report = eng.run(smc_spec())
            assert report.ok
        assert eng._backends == {}
