"""HTTP-level cluster behavior: dedup races, cancel races, tenant
quotas, graceful drain, and restart durability of ``repro serve``.

The engine's ``_execute`` is patched with a gated probe so the races
are deterministic: a "block-*" spec parks inside the solve until the
test releases it, which holds jobs in exactly the in-flight window the
race needs (identical concurrent submissions, cancel-vs-finish,
wait-timeouts, drain with queued work).
"""

import contextlib
import json
import os
import signal
import threading
import time
from urllib.error import HTTPError
from urllib.request import Request, urlopen

import pytest

import repro.api.engine as engine_mod
from repro.api import Engine, ServiceServer
from repro.api.report import AnalysisReport
from repro.cluster import JobStore, TenantPolicy, TenantScheduler
from repro.status import AnalysisStatus


def spec(name="http-probe"):
    return {
        "task": "smc",
        "name": name,
        "model": {"builtin": "logistic"},
        "query": {
            "phi": {"op": "F", "bound": 6.0, "arg": "x >= 5.0"},
            "init": {"x": [0.3, 0.7]},
            "horizon": 6.0,
            "method": "probability",
            "epsilon": 0.25,
            "alpha": 0.2,
        },
    }


def _get(url, timeout=30.0):
    with urlopen(url, timeout=timeout) as resp:
        return resp.status, json.load(resp)


def _post(url, payload, headers=None, timeout=30.0):
    req = Request(
        url,
        data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json", **(headers or {})},
        method="POST",
    )
    try:
        with urlopen(req, timeout=timeout) as resp:
            return resp.status, json.load(resp), resp.headers
    except HTTPError as exc:
        return exc.code, json.loads(exc.read() or b"{}"), exc.headers


class _Gate:
    """Patched ``_execute``: records calls; ``block-*`` specs park."""

    def __init__(self):
        self.calls = []
        self.started = threading.Event()
        self.release = threading.Event()
        self._lock = threading.Lock()

    def __call__(self, task_spec, seed_default):
        from repro.progress import emit

        with self._lock:
            self.calls.append(task_spec.name)
        emit("probe", "start")
        if (task_spec.name or "").startswith("block"):
            self.started.set()
            self.release.wait(timeout=30.0)
            emit("probe", "finish")  # cancellation checkpoint after release
        return AnalysisReport(
            task_spec.task,
            AnalysisStatus.DELTA_SAT,
            name=task_spec.name,
            seed=task_spec.seed,
        )


@pytest.fixture
def gate(monkeypatch):
    g = _Gate()
    monkeypatch.setattr(engine_mod, "_execute", g)
    return g


@contextlib.contextmanager
def serve(engine, **kwargs):
    server = ServiceServer(engine, port=0, **kwargs).start()
    try:
        yield server
    finally:
        with contextlib.suppress(OSError):
            server.shutdown()
        engine.close(wait=False)


# ----------------------------------------------------------------------
# Single-flight over HTTP
# ----------------------------------------------------------------------


class TestHttpDedup:
    def test_concurrent_identical_posts_one_compute(self, gate):
        with serve(Engine(seed=0, dedup=True)) as server:
            results = []

            def submit():
                results.append(_post(f"{server.url}/run", spec("block-same")))

            threads = [threading.Thread(target=submit) for _ in range(8)]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=30)
            assert [code for code, _, _ in results] == [202] * 8
            assert gate.started.wait(timeout=10)

            _, cluster = _get(f"{server.url}/cluster")
            assert cluster["dedup"] == {
                "leaders": 1, "followers": 7, "in_flight": 1
            }
            gate.release.set()
            reports = []
            for _, sub, _ in results:
                _, job = _get(f"{server.url}/jobs/{sub['job']}?wait=30")
                assert job["state"] == "done"
                reports.append(job["report"])
            assert gate.calls == ["block-same"]  # exactly one solve
            assert all(r == reports[0] for r in reports)  # equal reports

    def test_cluster_route_shape_without_store(self, gate):
        with serve(Engine(seed=0, dedup=True)) as server:
            _, cluster = _get(f"{server.url}/cluster")
            assert cluster["draining"] is False
            assert cluster["store"] is None and cluster["pool"] is None
            assert "counters" in cluster["scheduler"]


# ----------------------------------------------------------------------
# Cancel-vs-finish races and bounded waits
# ----------------------------------------------------------------------


class TestHttpRaces:
    def test_cancel_beats_finish(self, gate):
        with serve(Engine(seed=0)) as server:
            _, sub, _ = _post(f"{server.url}/run", spec("block-cancel"))
            assert gate.started.wait(timeout=10)
            code, summary, _ = _post(
                f"{server.url}/jobs/{sub['job']}/cancel", {}
            )
            assert code == 200
            gate.release.set()  # the probe now hits its cancel checkpoint
            _, job = _get(f"{server.url}/jobs/{sub['job']}?wait=30")
            assert job["state"] == "cancelled"
            assert job["status"] == "cancelled"

    def test_cancel_after_finish_is_a_noop(self, gate):
        gate.release.set()
        with serve(Engine(seed=0)) as server:
            _, sub, _ = _post(f"{server.url}/run", spec("fast-finish"))
            _, done = _get(f"{server.url}/jobs/{sub['job']}?wait=30")
            assert done["state"] == "done"
            code, summary, _ = _post(
                f"{server.url}/jobs/{sub['job']}/cancel", {}
            )
            assert code == 200
            assert summary["state"] == "done"  # finish won; report kept
            _, again = _get(f"{server.url}/jobs/{sub['job']}?wait=5")
            assert again["state"] == "done" and "report" in again

    def test_cancel_queued_job_never_dispatches(self, gate):
        scheduler = TenantScheduler(max_running=1)
        with serve(Engine(seed=0), scheduler=scheduler) as server:
            _, head, _ = _post(f"{server.url}/run", spec("block-head"))
            assert gate.started.wait(timeout=10)
            _, queued, _ = _post(f"{server.url}/run", spec("starved"))
            code, summary, _ = _post(
                f"{server.url}/jobs/{queued['job']}/cancel", {}
            )
            assert code == 200 and summary["state"] == "cancelled"
            gate.release.set()
            _, job = _get(f"{server.url}/jobs/{head['job']}?wait=30")
            assert job["state"] == "done"
            assert "starved" not in gate.calls  # retired without compute

    def test_wait_times_out_on_a_running_job(self, gate):
        with serve(Engine(seed=0)) as server:
            _, sub, _ = _post(f"{server.url}/run", spec("block-wait"))
            assert gate.started.wait(timeout=10)
            t0 = time.monotonic()
            _, job = _get(f"{server.url}/jobs/{sub['job']}?wait=0.2")
            assert time.monotonic() - t0 < 10.0
            assert job["state"] == "running"  # timeout, not an error
            gate.release.set()
            _, job = _get(f"{server.url}/jobs/{sub['job']}?wait=30")
            assert job["state"] == "done"


# ----------------------------------------------------------------------
# Scheduler pump resilience
# ----------------------------------------------------------------------


class TestPumpResilience:
    def test_undispatchable_job_fails_without_wedging_the_pump(self, gate):
        gate.release.set()
        with serve(Engine(seed=0)) as server:
            # bypass the door validation: simulate a dispatch blowing up
            # inside the pump loop itself (the review's wedge scenario)
            job = server.engine.submit_deferred(spec("bad-backend"))
            job._backend_args = ("gpu", None)
            server._offer(job)
            report = job.result(timeout=10)
            assert report.status is AnalysisStatus.ERROR
            assert "gpu" in report.detail
            # the pump survived: a normal submission still dispatches
            _, sub, _ = _post(f"{server.url}/run", spec("after-bad"))
            _, done = _get(f"{server.url}/jobs/{sub['job']}?wait=30")
            assert done["state"] == "done"


# ----------------------------------------------------------------------
# Tenant quotas over HTTP
# ----------------------------------------------------------------------


class TestHttpQuotas:
    def test_over_rate_tenant_gets_429_with_retry_after(self, gate):
        gate.release.set()
        scheduler = TenantScheduler(
            policies={"ratty": TenantPolicy(rate=0.1, burst=1.0)}
        )
        with serve(Engine(seed=0), scheduler=scheduler) as server:
            code, first, _ = _post(
                f"{server.url}/run", spec("quota-a"),
                headers={"X-Tenant": "ratty"},
            )
            assert code == 202
            code, body, headers = _post(
                f"{server.url}/run", spec("quota-b"),
                headers={"X-Tenant": "ratty"},
            )
            assert code == 429
            assert body["retry_after"] > 0.0
            assert int(headers["Retry-After"]) >= 1
            # other tenants are unaffected by ratty's bucket
            code, _, _ = _post(
                f"{server.url}/run", spec("quota-c"),
                headers={"X-Tenant": "calm"},
            )
            assert code == 202
            _, snap = _get(f"{server.url}/cluster")
            assert snap["scheduler"]["counters"]["throttled"] == 1
            # tenants are attributed on the job summaries
            _, job = _get(f"{server.url}/jobs/{first['job']}?wait=30")
            assert job["tenant"] == "ratty"


# ----------------------------------------------------------------------
# Graceful shutdown + restart durability
# ----------------------------------------------------------------------


class TestDurability:
    def test_sigterm_drains_gracefully(self, gate):
        gate.release.set()
        engine = Engine(seed=0)
        server = ServiceServer(engine, port=0).start()
        old_term = signal.getsignal(signal.SIGTERM)
        old_int = signal.getsignal(signal.SIGINT)
        try:
            server.install_signal_handlers()
            _, sub, _ = _post(f"{server.url}/run", spec("pre-drain"))
            _, job = _get(f"{server.url}/jobs/{sub['job']}?wait=30")
            assert job["state"] == "done"
            os.kill(os.getpid(), signal.SIGTERM)
            assert server._drained.wait(timeout=15)
        finally:
            signal.signal(signal.SIGTERM, old_term)
            signal.signal(signal.SIGINT, old_int)
            engine.close(wait=False)

    def test_restart_recovers_interrupted_and_queued_jobs(self, gate, tmp_path):
        store_path = str(tmp_path / "jobs.jsonl")
        engine1 = Engine(seed=0)
        server1 = ServiceServer(
            engine1,
            port=0,
            job_store=store_path,
            scheduler=TenantScheduler(max_running=1),
        ).start()

        # one job completes before the crash...
        gate.release.set()
        _, done_sub, _ = _post(f"{server1.url}/run", spec("done-before"))
        _, done_job = _get(f"{server1.url}/jobs/{done_sub['job']}?wait=30")
        assert done_job["state"] == "done"

        # ...one is mid-solve and one is still queued when SIGTERM lands
        gate.release.clear()
        gate.started.clear()
        _, run_sub, _ = _post(
            f"{server1.url}/run", spec("block-interrupted"),
            headers={"X-Tenant": "acme"},
        )
        assert gate.started.wait(timeout=10)
        _, queued_sub, _ = _post(f"{server1.url}/run", spec("tail-queued"))
        assert "tail-queued" not in gate.calls
        server1.graceful_shutdown(timeout=0.3)

        # the journal marks both unfinished jobs as interrupted (re-run),
        # not cancelled (terminal) -- the drain is no fault of the work
        recovered = JobStore(store_path).recover()
        assert recovered[done_sub["job"]]["state"] == "done"
        assert recovered[done_sub["job"]]["report"] is not None
        assert recovered[run_sub["job"]]["state"] == "interrupted"
        assert recovered[run_sub["job"]]["tenant"] == "acme"
        assert recovered[queued_sub["job"]]["state"] == "interrupted"

        # let the parked solve observe its cancellation and settle
        gate.release.set()
        leftover = engine1.job(run_sub["job"])
        assert leftover is not None
        assert leftover.result(timeout=10).status is AnalysisStatus.CANCELLED
        engine1.close(wait=False)

        # a replica restarting on the same journal re-runs both under
        # their original ids and serves the finished one read-only
        engine2 = Engine(seed=0)
        with serve(engine2, job_store=store_path) as server2:
            for sub in (run_sub, queued_sub):
                _, job = _get(f"{server2.url}/jobs/{sub['job']}?wait=30")
                assert job["state"] == "done"
                assert job["status"] == "delta-sat"
            _, old = _get(f"{server2.url}/jobs/{done_sub['job']}")
            assert old["recovered"] is True
            assert old["state"] == "done" and old["backend"] == "journal"
            assert old["report"]["status"] == "delta-sat"
            _, cluster = _get(f"{server2.url}/cluster")
            assert cluster["store"]["path"] == store_path
        # the queued job never computed in the first server's life
        assert gate.calls.count("tail-queued") == 1
        assert gate.calls.count("block-interrupted") == 2

    def test_recovery_is_scoped_to_this_replicas_prefix(self, gate, tmp_path):
        gate.release.set()
        store_path = str(tmp_path / "shared.jsonl")
        with JobStore(store_path) as store:
            # replica b is still alive and holds b-j000001; only this
            # replica's own unfinished job may re-run here
            store.record_submit("b-j000001", spec("foreign-live"))
            store.record_submit("a-j000001", spec("mine-unfinished"))
        engine = Engine(seed=0, job_prefix="a-j")
        with serve(engine, job_store=store_path) as server:
            _, mine = _get(f"{server.url}/jobs/a-j000001?wait=30")
            assert mine["state"] == "done"
            _, foreign = _get(f"{server.url}/jobs/b-j000001")
            assert foreign["recovered"] is True
            assert foreign["state"] == "queued"  # readable, never re-run
        assert "mine-unfinished" in gate.calls
        assert "foreign-live" not in gate.calls  # no duplicate execution


# ----------------------------------------------------------------------
# Client-side retries: repro jobs --retry
# ----------------------------------------------------------------------


class TestJobsRetry:
    def test_retries_until_the_server_comes_up(self, gate):
        from socket import socket

        from repro.api.cli import _fetch_with_retry

        with socket() as probe:
            probe.bind(("127.0.0.1", 0))
            port = probe.getsockname()[1]

        engine = Engine(seed=0)
        server_box = {}

        def come_up_late():
            time.sleep(0.6)
            server_box["server"] = ServiceServer(engine, port=port).start()

        starter = threading.Thread(target=come_up_late, daemon=True)
        starter.start()
        try:
            # first attempts hit a closed port (URLError) and back off;
            # a later one lands once the server binds
            payload = _fetch_with_retry(
                f"http://127.0.0.1:{port}/jobs", retries=8, timeout=5.0
            )
            assert payload["jobs"] == []
        finally:
            starter.join(timeout=10.0)
            with contextlib.suppress(OSError):
                server_box["server"].shutdown()
            engine.close(wait=False)

    def test_http_errors_are_never_retried(self, gate):
        from repro.api.cli import _fetch_with_retry

        engine = Engine(seed=0)
        with serve(engine) as server:
            t0 = time.monotonic()
            with pytest.raises(HTTPError) as excinfo:
                _fetch_with_retry(
                    f"{server.url}/jobs/no-such-job", retries=8, timeout=5.0
                )
            assert excinfo.value.code == 404
            # 8 retries would back off for seconds; a 404 fails at once
            assert time.monotonic() - t0 < 2.0

    def test_exhausted_retries_raise_the_connection_error(self):
        from urllib.error import URLError

        from repro.api.cli import _fetch_with_retry

        from socket import socket

        with socket() as probe:
            probe.bind(("127.0.0.1", 0))
            port = probe.getsockname()[1]
        with pytest.raises((URLError, OSError)):
            _fetch_with_retry(
                f"http://127.0.0.1:{port}/jobs", retries=1, timeout=1.0
            )
