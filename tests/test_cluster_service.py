"""Cluster service plumbing: job journal, single-flight dedup, quotas,
cache quarantine.

Everything here runs without sockets or subprocesses: the JobStore is
exercised on temp files, the single-flight layer through an engine
whose ``_execute`` is patched with a gated probe, and the scheduler
with bare fake jobs -- so the semantics (recovery folding, exactly-one
solve, weighted fairness) are pinned deterministically.
"""

import json
import threading

import pytest

import repro.api.engine as engine_mod
from repro.api import Engine
from repro.api.report import AnalysisReport
from repro.cluster import JobStore, SingleFlight, TenantPolicy, TenantScheduler, TokenBucket
from repro.cluster.jobstore import RERUN_STATES
from repro.service import JobState, ResultCache, spec_key
from repro.status import AnalysisStatus


def probe_spec(name="probe", knob=0):
    return {
        "task": "smc",
        "name": name,
        "model": {"builtin": "logistic"},
        "query": {
            "phi": {"op": "F", "bound": 6.0, "arg": "x >= 5.0"},
            "init": {"x": [0.3, 0.7]},
            "horizon": 6.0,
            "method": "probability",
            "epsilon": 0.25 + knob * 1e-6,
            "alpha": 0.2,
        },
    }


# ----------------------------------------------------------------------
# JobStore: append-only journal + recovery folding
# ----------------------------------------------------------------------


class TestJobStore:
    def test_submit_done_recover_roundtrip(self, tmp_path):
        path = tmp_path / "jobs.jsonl"
        with JobStore(path) as store:
            store.record_submit("j1", {"task": "smc"}, tenant="acme")
            store.record_done("j1", "done", {"status": "delta-sat"})
            store.record_submit("j2", {"task": "reach"})
        recovered = JobStore(path).recover()
        assert recovered["j1"]["state"] == "done"
        assert recovered["j1"]["tenant"] == "acme"
        assert recovered["j1"]["report"] == {"status": "delta-sat"}
        assert recovered["j2"]["state"] == "queued"  # died holding it
        assert recovered["j2"]["report"] is None

    def test_rerun_states(self):
        assert "queued" in RERUN_STATES
        assert "interrupted" in RERUN_STATES  # graceful drain: run again
        assert "cancelled" not in RERUN_STATES  # user intent: final
        assert "done" not in RERUN_STATES

    def test_record_done_is_idempotent_per_process(self, tmp_path):
        store = JobStore(tmp_path / "jobs.jsonl")
        store.record_submit("j1", {})
        assert store.record_done("j1", "interrupted") is True
        # the drain path and the done-hook race; only the first wins
        assert store.record_done("j1", "cancelled") is False
        assert JobStore(store.path).recover()["j1"]["state"] == "interrupted"

    def test_torn_tail_is_tolerated(self, tmp_path):
        path = tmp_path / "jobs.jsonl"
        with JobStore(path) as store:
            store.record_submit("j1", {"task": "smc"})
        with open(path, "a", encoding="utf-8") as fh:
            fh.write('{"kind": "done", "id": "j1", "sta')  # crash mid-append
        recovered = JobStore(path).recover()
        assert recovered["j1"]["state"] == "queued"  # tail dropped

    def test_mid_file_corruption_raises(self, tmp_path):
        path = tmp_path / "jobs.jsonl"
        path.write_text('not json at all\n{"kind":"submit","id":"j1"}\n')
        with pytest.raises(ValueError, match="corrupt journal line 1"):
            JobStore(path).recover()

    def test_closed_store_refuses_appends(self, tmp_path):
        store = JobStore(tmp_path / "jobs.jsonl")
        store.close()
        store.close()  # idempotent
        with pytest.raises(ValueError, match="closed"):
            store.record_submit("j1", {})


# ----------------------------------------------------------------------
# Dispatch hardening: a bad backend fails the job, never the caller
# ----------------------------------------------------------------------


class TestDispatchNeverRaises:
    def test_bad_backend_fails_the_job_instead_of_raising(self):
        with Engine(seed=0) as engine:
            job = engine.submit_deferred(probe_spec("bad-backend"))
            engine.dispatch(job, "gpu")  # scheduler loops rely on no-raise
            report = job.result(timeout=10)
            assert report.status is AnalysisStatus.ERROR
            assert "gpu" in report.detail
            assert job.status is JobState.FAILED

    def test_done_hook_fires_on_dispatch_failure(self):
        # the service frees a job's scheduler slot in on_job_done: a
        # dispatch failure that skipped the hook would leak the slot
        seen = []
        with Engine(seed=0, on_job_done=seen.append) as engine:
            job = engine.submit_deferred(probe_spec("hooked"))
            engine.dispatch(job, "no-such-backend")
            assert job.result(timeout=10).status is AnalysisStatus.ERROR
            assert seen == [job]


# ----------------------------------------------------------------------
# SingleFlight registry
# ----------------------------------------------------------------------


class TestSingleFlight:
    def test_leader_then_followers(self):
        sf = SingleFlight()
        assert sf.lead_or_follow("k", "L") is None
        assert sf.lead_or_follow("k", "f1") == "L"
        assert sf.lead_or_follow("k", "f2") == "L"
        assert sf.followers_of("k", "L") == ("f1", "f2")
        assert sf.land("k", "L") == ["f1", "f2"]
        assert sf.stats() == {"leaders": 1, "followers": 2, "in_flight": 0}

    def test_stale_landing_is_a_noop(self):
        sf = SingleFlight()
        sf.lead_or_follow("k", "L1")
        sf.land("k", "L1")
        sf.lead_or_follow("k", "L2")  # key re-led
        assert sf.land("k", "L1") == []  # stale leader cannot land it
        assert sf.land("k", "L2") == []

    def test_detach_removes_one_follower(self):
        sf = SingleFlight()
        sf.lead_or_follow("k", "L")
        sf.lead_or_follow("k", "f1")
        assert sf.detach("k", "f1") is True
        assert sf.detach("k", "f1") is False
        assert sf.detach("nope", "f1") is False
        assert sf.land("k", "L") == []


# ----------------------------------------------------------------------
# Engine-level dedup: N identical in-flight submissions, one solve
# ----------------------------------------------------------------------


class _GatedExecute:
    """A patched ``_execute``: counts calls, blocks until released."""

    def __init__(self):
        self.calls = 0
        self.started = threading.Event()
        self.release = threading.Event()
        self._lock = threading.Lock()

    def __call__(self, spec, seed_default):
        from repro.progress import emit

        with self._lock:
            self.calls += 1
        emit("probe", "start")  # cancellation checkpoint + follower fan-out
        self.started.set()
        self.release.wait(timeout=30.0)
        emit("probe", "finish")  # post-release checkpoint: honors cancel
        return AnalysisReport(
            spec.task, AnalysisStatus.DELTA_SAT, name=spec.name, seed=spec.seed
        )


@pytest.fixture
def gated(monkeypatch):
    gate = _GatedExecute()
    monkeypatch.setattr(engine_mod, "_execute", gate)
    return gate


class TestEngineSingleFlight:
    def test_eight_identical_submissions_one_solve(self, gated):
        with Engine(seed=0, dedup=True) as engine:
            leader = engine.submit(probe_spec(), backend="thread")
            assert gated.started.wait(timeout=10)
            followers = [
                engine.submit(probe_spec(), backend="thread") for _ in range(7)
            ]
            stats = engine.dedup_stats()
            assert stats == {"leaders": 1, "followers": 7, "in_flight": 1}
            assert all(f.backend_name == "single-flight" for f in followers)
            gated.release.set()
            reports = [j.result(timeout=30) for j in [leader] + followers]
            assert gated.calls == 1  # exactly one solve for all eight
            assert len({r.to_json() for r in reports}) == 1
            assert all(j.status is JobState.DONE for j in followers)
            # the leader's progress events were fanned out as copies
            for f in followers:
                sources = [e.source for e in f.events()]
                assert "probe" in sources

    def test_different_specs_do_not_collapse(self, gated):
        gated.release.set()
        with Engine(seed=0, dedup=True) as engine:
            a = engine.submit(probe_spec(knob=1), backend="thread")
            b = engine.submit(probe_spec(knob=2), backend="thread")
            a.result(timeout=30), b.result(timeout=30)
            assert gated.calls == 2
            assert engine.dedup_stats()["followers"] == 0

    def test_cancelled_follower_detaches_and_terminates(self, gated):
        with Engine(seed=0, dedup=True) as engine:
            leader = engine.submit(probe_spec(), backend="thread")
            assert gated.started.wait(timeout=10)
            follower = engine.submit(probe_spec(), backend="thread")
            assert follower.cancel() is True
            # terminal immediately: nothing else ever finishes a follower
            assert follower.status is JobState.CANCELLED
            assert follower.result().status is AnalysisStatus.CANCELLED
            gated.release.set()
            assert leader.result(timeout=30).status is AnalysisStatus.DELTA_SAT
            assert gated.calls == 1

    def test_cancelled_leader_promotes_a_follower(self, gated):
        with Engine(seed=0, dedup=True) as engine:
            leader = engine.submit(probe_spec(), backend="thread")
            assert gated.started.wait(timeout=10)
            follower = engine.submit(probe_spec(), backend="thread")
            leader.cancel()
            gated.release.set()  # leader hits the post-release checkpoint
            assert leader.result(timeout=30).status is AnalysisStatus.CANCELLED
            # the follower's work was NOT cancelled: it re-runs as the
            # new leader and completes
            assert follower.result(timeout=30).status is AnalysisStatus.DELTA_SAT
            assert gated.calls == 2

    def test_dedup_disabled_reports_none(self):
        with Engine(seed=0) as engine:
            assert engine.dedup_stats() is None


# ----------------------------------------------------------------------
# ResultCache quarantine (regression: corrupt disk entry poisoned reads)
# ----------------------------------------------------------------------


class TestCacheQuarantine:
    def _key(self):
        from repro.api.spec import TaskSpec

        return spec_key(TaskSpec.from_dict(probe_spec()))

    def test_truncated_disk_entry_is_quarantined(self, tmp_path):
        cache = ResultCache(cache_dir=tmp_path)
        key = self._key()
        entry = tmp_path / f"{key}.json"
        entry.write_text('{"task": "smc", "status": "delt')  # torn write
        assert cache.get(key) is None  # a miss, not an exception
        assert not entry.exists()
        corrupt = tmp_path / f"{key}.corrupt"
        assert corrupt.exists()  # evidence preserved for inspection
        assert corrupt.read_text().startswith('{"task"')
        stats = cache.stats()
        assert stats["quarantined"] == 1 and stats["misses"] == 1

    def test_schema_garbage_is_quarantined_too(self, tmp_path):
        cache = ResultCache(cache_dir=tmp_path)
        key = self._key()
        (tmp_path / f"{key}.json").write_text('{"bogus": []}')  # valid JSON
        assert cache.get(key) is None
        assert (tmp_path / f"{key}.corrupt").exists()

    def test_put_after_quarantine_serves_again(self, tmp_path):
        cache = ResultCache(cache_dir=tmp_path)
        key = self._key()
        (tmp_path / f"{key}.json").write_text("garbage")
        assert cache.get(key) is None
        report = AnalysisReport("smc", AnalysisStatus.DELTA_SAT, name="probe")
        cache.put(key, report)
        cache.clear()  # force the disk path
        again = cache.get(key)
        assert again is not None and again.status is AnalysisStatus.DELTA_SAT

    def test_memory_only_corruption_never_quarantines(self):
        cache = ResultCache()  # no cache_dir
        assert cache.get("deadbeef") is None
        assert cache.stats()["quarantined"] == 0


# ----------------------------------------------------------------------
# Tenant quotas and weighted fair scheduling
# ----------------------------------------------------------------------


class FakeJob:
    def __init__(self, jid, tenant=""):
        self.id = jid
        self.tenant = tenant
        self.cancel_requested = False

    def done(self):
        return False


class TestTokenBucket:
    def test_burst_then_throttle(self):
        bucket = TokenBucket(rate=0.5, burst=2)
        assert bucket.try_acquire() == 0.0
        assert bucket.try_acquire() == 0.0
        wait = bucket.try_acquire()
        assert 0.0 < wait <= 2.0  # ~1 token / 0.5 per s

    def test_zero_rate_never_refills(self):
        bucket = TokenBucket(rate=0.0, burst=1)
        assert bucket.try_acquire() == 0.0
        assert bucket.try_acquire() == float("inf")


class TestTenantScheduler:
    def test_weighted_fair_dequeue_order(self):
        sched = TenantScheduler(
            policies={"a": TenantPolicy(weight=2.0), "b": TenantPolicy(weight=1.0)}
        )
        for jid in ("a1", "a2", "a3"):
            sched.enqueue(FakeJob(jid, "a"))
        for jid in ("b1", "b2", "b3"):
            sched.enqueue(FakeJob(jid, "b"))
        order = [sched.next_job().id for _ in range(6)]
        # weight 2 drains twice as fast: a gets 2 of every 3 slots
        assert order == ["a1", "b1", "a2", "a3", "b2", "b3"]
        assert sched.next_job() is None

    def test_global_cap_blocks_until_release(self):
        sched = TenantScheduler(max_running=1)
        a, b = FakeJob("a1", "a"), FakeJob("b1", "b")
        sched.enqueue(a), sched.enqueue(b)
        assert sched.next_job() is a
        assert sched.next_job() is None  # at the global ceiling
        assert sched.release(a) is True
        assert sched.release(a) is False  # slot given back once
        assert sched.next_job() is b

    def test_per_tenant_cap_only_blocks_that_tenant(self):
        sched = TenantScheduler(
            policies={"a": TenantPolicy(max_running=1)}
        )
        a1, a2, b1 = FakeJob("a1", "a"), FakeJob("a2", "a"), FakeJob("b1", "b")
        for job in (a1, a2, b1):
            sched.enqueue(job)
        assert sched.next_job() is a1
        assert sched.next_job() is b1  # a is capped; b flows freely
        assert sched.next_job() is None
        sched.release(a1)
        assert sched.next_job() is a2

    def test_cancelled_queued_jobs_are_skipped(self):
        sched = TenantScheduler()
        doomed, live = FakeJob("d1"), FakeJob("l1")
        doomed.cancel_requested = True
        sched.enqueue(doomed), sched.enqueue(live)
        assert sched.next_job() is live
        assert sched.next_job() is None

    def test_remove_drops_a_queued_job(self):
        sched = TenantScheduler()
        job = FakeJob("j1")
        sched.enqueue(job)
        assert sched.remove(job) is True
        assert sched.remove(job) is False
        assert sched.next_job() is None

    def test_admission_counters_and_snapshot(self):
        sched = TenantScheduler(
            policies={"ratty": TenantPolicy(rate=1000.0, burst=1.0)}
        )
        assert sched.admit("ratty") == 0.0
        assert sched.admit("ratty") > 0.0  # burst of one exhausted
        assert sched.admit("calm") == 0.0  # default policy: unlimited
        sched.enqueue(FakeJob("j1", "calm"))
        snap = sched.snapshot()
        assert snap["counters"]["admitted"] == 2
        assert snap["counters"]["throttled"] == 1
        assert snap["queued"] == {"calm": 1}

    def test_unlimited_scheduler_dispatches_everything(self):
        sched = TenantScheduler()  # max_running=None: no queueing caps
        jobs = [FakeJob(f"j{i}") for i in range(5)]
        for job in jobs:
            sched.enqueue(job)
        assert [sched.next_job() for _ in range(5)] == jobs
