"""Tests for hybrid automata: construction, validation, and simulation
(thermostat and bouncing-ball classics)."""

import math

import pytest

from repro.expr import var
from repro.hybrid import (
    HybridAutomaton,
    Jump,
    Mode,
    formula_margin,
    simulate_hybrid,
)
from repro.intervals import Box
from repro.logic import And, Atom, Or, in_range

x = var("x")
v = var("v")


def thermostat(theta_on=18.0, theta_off=22.0) -> HybridAutomaton:
    """Two-mode heater: dx/dt = -x (off), dx/dt = 30 - x (on)."""
    return HybridAutomaton(
        variables=["x"],
        modes=[
            Mode("off", {"x": -x}, invariant=(x >= theta_on - 5.0)),
            Mode("on", {"x": 30.0 - x}, invariant=(x <= theta_off + 5.0)),
        ],
        jumps=[
            Jump("off", "on", guard=(x <= theta_on)),
            Jump("on", "off", guard=(x >= theta_off)),
        ],
        initial_mode="off",
        init=Box.from_bounds({"x": (20.0, 21.0)}),
        params={},
        name="thermostat",
    )


def bouncing_ball(c=0.8) -> HybridAutomaton:
    g = 9.81
    return HybridAutomaton(
        variables=["x", "v"],
        modes=[Mode("fall", {"x": v, "v": -g}, invariant=(x >= -1e-6))],
        jumps=[
            Jump("fall", "fall", guard=And(x <= 0.0, v <= 0.0),
                 reset={"v": -c * v, "x": 1e-9})
        ],
        initial_mode="fall",
        init=Box.from_bounds({"x": (1.0, 1.0), "v": (0.0, 0.0)}),
        params={},
        name="ball",
    )


class TestConstruction:
    def test_valid(self):
        h = thermostat()
        assert h.mode_names == ["off", "on"]
        assert len(h.jumps_from("off")) == 1

    def test_duplicate_modes_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            HybridAutomaton(
                ["x"],
                [Mode("a", {"x": x}), Mode("a", {"x": -x})],
                [],
                "a",
                Box.from_bounds({"x": (0, 1)}),
            )

    def test_unknown_initial_mode(self):
        with pytest.raises(ValueError, match="initial mode"):
            HybridAutomaton(["x"], [Mode("a", {"x": x})], [], "b",
                            Box.from_bounds({"x": (0, 1)}))

    def test_incomplete_derivatives(self):
        with pytest.raises(ValueError, match="derivatives cover"):
            HybridAutomaton(["x", "v"], [Mode("a", {"x": x})], [], "a",
                            Box.from_bounds({"x": (0, 1), "v": (0, 1)}))

    def test_unbound_symbol_in_guard(self):
        with pytest.raises(ValueError, match="unbound"):
            HybridAutomaton(
                ["x"],
                [Mode("a", {"x": -x})],
                [Jump("a", "a", guard=(var("mystery") > 0))],
                "a",
                Box.from_bounds({"x": (0, 1)}),
            )

    def test_unknown_jump_mode(self):
        with pytest.raises(ValueError, match="unknown mode"):
            HybridAutomaton(
                ["x"],
                [Mode("a", {"x": -x})],
                [Jump("a", "zz")],
                "a",
                Box.from_bounds({"x": (0, 1)}),
            )

    def test_reset_unknown_variable(self):
        with pytest.raises(ValueError, match="reset of unknown"):
            HybridAutomaton(
                ["x"],
                [Mode("a", {"x": -x})],
                [Jump("a", "a", reset={"zz": 0.0})],
                "a",
                Box.from_bounds({"x": (0, 1)}),
            )

    def test_mode_system(self):
        h = thermostat()
        sys_ = h.mode_system("on")
        assert sys_.eval_field({"x": 10.0}) == {"x": 20.0}

    def test_with_params(self):
        h = HybridAutomaton(
            ["x"],
            [Mode("a", {"x": -var("k") * x})],
            [],
            "a",
            Box.from_bounds({"x": (1, 1)}),
            params={"k": 1.0},
        )
        h2 = h.with_params(k=3.0)
        assert h2.params["k"] == 3.0

    def test_single_mode(self):
        h = thermostat()
        assert h.single_mode() is None
        h1 = HybridAutomaton(["x"], [Mode("a", {"x": -x})], [], "a",
                             Box.from_bounds({"x": (1, 1)}))
        assert h1.single_mode() is not None

    def test_init_formula(self):
        h = thermostat()
        f = h.init_formula()
        assert f.eval({"x": 20.5})
        assert not f.eval({"x": 25.0})


class TestFormulaMargin:
    def test_atom(self):
        assert formula_margin(x >= 2, {"x": 5.0}) == pytest.approx(3.0)
        assert formula_margin(x >= 2, {"x": 1.0}) == pytest.approx(-1.0)

    def test_and_min(self):
        phi = And(x >= 1, x <= 3)
        assert formula_margin(phi, {"x": 2.0}) == pytest.approx(1.0)
        assert formula_margin(phi, {"x": 0.0}) == pytest.approx(-1.0)

    def test_or_max(self):
        phi = Or(x >= 10, x <= 1)
        assert formula_margin(phi, {"x": 0.5}) > 0
        assert formula_margin(phi, {"x": 5.0}) < 0

    def test_sign_iff_satisfaction(self):
        import random

        rng = random.Random(3)
        phi = Or(And(x >= 1, x <= 2), x >= 4)
        for _ in range(100):
            val = rng.uniform(-1, 6)
            sat = phi.eval({"x": val})
            margin = formula_margin(phi, {"x": val})
            if margin > 1e-9:
                assert sat
            if margin < -1e-9:
                assert not sat


class TestThermostatSimulation:
    def test_oscillates_between_thresholds(self):
        h = thermostat()
        traj = simulate_hybrid(h, {"x": 21.0}, t_final=20.0)
        assert len(traj.segments) >= 3
        path = traj.mode_path()
        assert path[0] == "off"
        assert "on" in path
        # temperature stays within the hysteresis band (plus overshoot slack)
        for seg in traj.segments[1:]:
            temps = seg.trajectory.column("x")
            assert temps.min() > 17.5 and temps.max() < 22.5

    def test_jump_times_at_thresholds(self):
        h = thermostat()
        traj = simulate_hybrid(h, {"x": 21.0}, t_final=10.0)
        first = traj.segments[0]
        # off-mode decay from 21 to 18: t = ln(21/18)
        assert first.t_end == pytest.approx(math.log(21.0 / 18.0), abs=1e-5)
        assert first.trajectory.final()["x"] == pytest.approx(18.0, abs=1e-6)

    def test_mode_at_and_value(self):
        h = thermostat()
        traj = simulate_hybrid(h, {"x": 21.0}, t_final=5.0)
        assert traj.mode_at(0.0) == "off"
        assert traj.value("x", 0.0) == pytest.approx(21.0)

    def test_flatten_monotone_times(self):
        h = thermostat()
        traj = simulate_hybrid(h, {"x": 21.0}, t_final=10.0)
        flat = traj.flatten()
        import numpy as np

        assert np.all(np.diff(flat.times) > 0)

    def test_max_jumps_respected(self):
        h = thermostat()
        traj = simulate_hybrid(h, {"x": 21.0}, t_final=1000.0, max_jumps=4)
        assert len(traj.jumps_taken) <= 4


class TestBouncingBall:
    def test_bounces_decay(self):
        h = bouncing_ball(c=0.8)
        traj = simulate_hybrid(h, t_final=3.0, max_jumps=20)
        assert len(traj.jumps_taken) >= 2
        # peak height after first bounce ~ c^2 * h0
        seg2 = traj.segments[1]
        peak = seg2.trajectory.column("x").max()
        assert peak == pytest.approx(0.64, abs=0.05)

    def test_first_impact_time(self):
        h = bouncing_ball()
        traj = simulate_hybrid(h, t_final=2.0)
        t_impact = traj.segments[0].t_end
        assert t_impact == pytest.approx(math.sqrt(2 * 1.0 / 9.81), abs=1e-4)

    def test_reset_applied(self):
        h = bouncing_ball(c=0.5)
        traj = simulate_hybrid(h, t_final=2.0, max_jumps=3)
        v_before = traj.segments[0].trajectory.final()["v"]
        v_after = traj.segments[1].trajectory.at(traj.segments[1].t0)["v"]
        assert v_after == pytest.approx(-0.5 * v_before, rel=1e-3)


class TestDefaultsAndEdgeCases:
    def test_default_x0_from_init_box(self):
        h = thermostat()
        traj = simulate_hybrid(h, t_final=1.0)
        assert traj.value("x", 0.0) == pytest.approx(20.5)

    def test_no_jump_single_mode(self):
        h = HybridAutomaton(["x"], [Mode("a", {"x": -x})], [], "a",
                            Box.from_bounds({"x": (1, 1)}))
        traj = simulate_hybrid(h, t_final=2.0)
        assert traj.mode_path() == ["a"]
        assert traj.value("x", 2.0) == pytest.approx(math.exp(-2.0), rel=1e-4)

    def test_invariant_violation_stops(self):
        # invariant x >= 0.5 but dynamics decay through it, no enabled jump
        h = HybridAutomaton(
            ["x"],
            [Mode("a", {"x": -x}, invariant=(x >= 0.5))],
            [],
            "a",
            Box.from_bounds({"x": (1, 1)}),
        )
        traj = simulate_hybrid(h, t_final=5.0)
        assert traj.stopped_reason == "invariant"
        assert traj.t_end == pytest.approx(math.log(2.0), abs=1e-4)

    def test_guard_enabled_at_start_fires_immediately(self):
        h = HybridAutomaton(
            ["x"],
            [Mode("a", {"x": -x}), Mode("b", {"x": 0.0 * x})],
            [Jump("a", "b", guard=(x >= 0.5))],
            "a",
            Box.from_bounds({"x": (1, 1)}),
        )
        traj = simulate_hybrid(h, {"x": 1.0}, t_final=2.0)
        assert traj.mode_path()[:2] == ["a", "b"]
        assert traj.segments[0].t_end == pytest.approx(0.0, abs=1e-9)

    def test_param_dependent_guard(self):
        th = var("theta")
        h = HybridAutomaton(
            ["x"],
            [Mode("a", {"x": -x}), Mode("b", {"x": 0.0 * x})],
            [Jump("a", "b", guard=(th - x >= 0))],
            "a",
            Box.from_bounds({"x": (1, 1)}),
            params={"theta": 0.5},
        )
        traj = simulate_hybrid(h, {"x": 1.0}, t_final=5.0)
        assert traj.segments[0].t_end == pytest.approx(math.log(2.0), abs=1e-4)
        traj2 = simulate_hybrid(h, {"x": 1.0}, t_final=5.0, params={"theta": 0.25})
        assert traj2.segments[0].t_end == pytest.approx(math.log(4.0), abs=1e-4)
