"""Tests for validated flow enclosures (Picard + interval Taylor)."""

import math

import pytest

from repro.expr import var
from repro.intervals import Box, Interval
from repro.odes import EnclosureError, ODESystem, flow_enclosure, rk45


@pytest.fixture
def decay():
    return ODESystem({"x": -var("x")}, name="decay")


@pytest.fixture
def logistic():
    r, K = var("r"), var("K")
    xx = var("x")
    return ODESystem({"x": r * xx * (1 - xx / K)}, {"r": 1.0, "K": 2.0})


class TestBasicSoundness:
    def test_contains_true_solution_decay(self, decay):
        tube = flow_enclosure(decay, {"x": (1.0, 1.0)}, duration=1.0, max_step=0.05)
        final = tube.final()
        assert final["x"].contains(math.exp(-1.0))

    def test_contains_solutions_from_box(self, decay):
        tube = flow_enclosure(decay, {"x": (0.8, 1.2)}, duration=1.0, max_step=0.05)
        final = tube.final()
        for x0 in (0.8, 1.0, 1.2):
            assert final["x"].contains(x0 * math.exp(-1.0))

    def test_whole_tube_contains_trajectory(self, logistic):
        tube = flow_enclosure(logistic, {"x": (0.5, 0.5)}, duration=2.0, max_step=0.05)
        traj = rk45(logistic, {"x": 0.5}, (0.0, 2.0), rtol=1e-10)
        for step in tube.steps:
            mid_t = step.time.midpoint()
            assert step.enclosure["x"].contains(traj.value("x", mid_t))

    def test_param_box_uncertainty(self, decay):
        # make the decay rate symbolic via a parameterized copy
        k = var("k")
        sys_ = ODESystem({"x": -k * var("x")}, {"k": 1.0})
        tube = flow_enclosure(
            sys_,
            {"x": (1.0, 1.0)},
            duration=1.0,
            param_box=Box.from_bounds({"k": (0.5, 1.5)}),
            max_step=0.05,
        )
        final = tube.final()
        for kv in (0.5, 1.0, 1.5):
            assert final["x"].contains(math.exp(-kv))

    def test_oscillator_both_orders(self):
        sys_ = ODESystem({"x": var("v"), "v": -var("x")})
        for order in (1, 2):
            tube = flow_enclosure(
                sys_, {"x": (1.0, 1.0), "v": (0.0, 0.0)}, duration=1.0,
                max_step=0.02, order=order,
            )
            final = tube.final()
            assert final["x"].contains(math.cos(1.0))
            assert final["v"].contains(-math.sin(1.0))

    def test_second_order_tighter(self, decay):
        t1 = flow_enclosure(decay, {"x": (1.0, 1.0)}, duration=0.5, max_step=0.05, order=1)
        t2 = flow_enclosure(decay, {"x": (1.0, 1.0)}, duration=0.5, max_step=0.05, order=2)
        assert t2.final()["x"].width() <= t1.final()["x"].width()


class TestTubeQueries:
    def test_enclosure_over_window(self, decay):
        tube = flow_enclosure(decay, {"x": (1.0, 1.0)}, duration=1.0, max_step=0.1)
        mid = tube.enclosure_over(Interval(0.4, 0.6))
        assert mid is not None
        assert mid["x"].contains(math.exp(-0.5))

    def test_enclosure_over_disjoint_window(self, decay):
        tube = flow_enclosure(decay, {"x": (1.0, 1.0)}, duration=1.0, max_step=0.1)
        assert tube.enclosure_over(Interval(5.0, 6.0)) is None

    def test_t_end(self, decay):
        tube = flow_enclosure(decay, {"x": (1.0, 1.0)}, duration=0.7, max_step=0.1)
        assert tube.t_end == pytest.approx(0.7)

    def test_whole_hull(self, decay):
        tube = flow_enclosure(decay, {"x": (1.0, 1.0)}, duration=1.0, max_step=0.1)
        whole = tube.whole()
        assert whole["x"].contains(1.0) and whole["x"].contains(math.exp(-1.0))


class TestFailureModes:
    def test_missing_dimension_rejected(self, decay):
        with pytest.raises(ValueError, match="misses state"):
            flow_enclosure(decay, Box.from_bounds({"y": (0, 1)}), duration=1.0)

    def test_blowup_guard(self):
        # x' = x^2 from x=5 blows up at t = 0.2
        sys_ = ODESystem({"x": var("x") * var("x")})
        with pytest.raises(EnclosureError):
            flow_enclosure(sys_, {"x": (5.0, 5.0)}, duration=1.0, max_step=0.05,
                           max_growth=100.0)

    def test_extra_dimensions_ignored(self, decay):
        tube = flow_enclosure(
            decay, Box.from_bounds({"x": (1.0, 1.0), "unused": (0, 1)}), duration=0.2
        )
        assert tube.names == ["x"]
