"""The compiled tape and the batched ICP frontier against the scalar
reference: same judgments, sound contraction, same verdicts and pavings.
"""

import random

import numpy as np
import pytest

from repro.expr import abs_, exp, sin, variables
from repro.intervals import Box, BoxArray, Interval
from repro.logic import And, Exists, Forall, Or, equals_within, in_range
from repro.solver import DeltaSolver, Status
from repro.solver.contractor import fixpoint_contract
from repro.solver.eval3 import _eval_formula_impl
from repro.solver.tape import compile_formula

x, y = variables("x y")


def box(**bounds) -> Box:
    return Box.from_bounds({k: tuple(v) for k, v in bounds.items()})


FORMULAS = [
    x >= 0,
    x > 0,
    And(x > 0, y < 0),
    Or(x < 0, y > 0),
    equals_within(x ** 2 + y ** 2, 1.0, 1e-3),
    in_range(x * y, 0.25, 0.5),
    equals_within(exp(x), 2.0, 1e-3),
    And(equals_within(sin(x), 0.0, 1e-3), x >= 1),
    in_range(abs_(x) / (1 + y ** 2), 0.1, 0.4),
    Forall("z", 0, 1, x * (1 - x) + 0.1 >= 0),
    Exists("z", 0, 1, And(equals_within(x - y, 0.0, 1e-2), x >= 0.5)),
]


def random_boxes(n: int, seed: int) -> list[Box]:
    rng = random.Random(seed)
    out = []
    for _ in range(n):
        a, b = sorted(rng.uniform(-3, 3) for _ in range(2))
        c, d = sorted(rng.uniform(-3, 3) for _ in range(2))
        out.append(box(x=(a, b), y=(c, d)))
    return out


class TestTapeJudgment:
    @pytest.mark.parametrize("phi", FORMULAS, ids=[str(f)[:50] for f in FORMULAS])
    @pytest.mark.parametrize("delta", [0.0, 0.05])
    def test_matches_scalar_judgment(self, phi, delta):
        boxes = random_boxes(150, seed=hash(str(phi)) % 2 ** 31)
        verdicts = compile_formula(phi).judge(BoxArray.from_boxes(boxes), delta)
        for i, b in enumerate(boxes):
            assert int(verdicts[i]) == _eval_formula_impl(phi, b, delta).value, (
                f"row {i}: {b}"
            )

    def test_empty_box_is_certainly_false(self):
        phi = x >= 0
        b = Box({"x": Interval(1.0, -1.0)})
        assert int(compile_formula(phi).judge(BoxArray.from_box(b))[0]) == -1


class TestTapeContraction:
    @pytest.mark.parametrize(
        "phi", [f for f in FORMULAS if not isinstance(f, (Forall, Exists))],
        ids=lambda f: str(f)[:50],
    )
    def test_sound_and_at_least_as_tight_as_scalar(self, phi):
        rng = random.Random(7)
        boxes = random_boxes(60, seed=3)
        compiled = compile_formula(phi)
        contracted = compiled.fixpoint_contract(BoxArray.from_boxes(boxes), tol=1e-2)
        for i, b in enumerate(boxes):
            scal = fixpoint_contract(phi, b, tol=1e-2)
            vec = contracted.row(i)
            # never wider than the scalar contraction...
            if not vec.is_empty:
                assert scal.contains_box(vec), f"row {i}"
            # ...and sound: satisfying sample points survive
            for _ in range(20):
                pt = {
                    "x": rng.uniform(b["x"].lo, b["x"].hi),
                    "y": rng.uniform(b["y"].lo, b["y"].hi),
                }
                try:
                    sat = phi.eval(pt)
                except (ArithmeticError, ZeroDivisionError, OverflowError):
                    continue
                if sat:
                    assert vec.contains_point(pt), f"row {i} lost {pt}"


class TestFrontierSolver:
    CASES = [
        (x >= 1, dict(x=(0, 2)), Status.DELTA_SAT),
        (x - 10 >= 0, dict(x=(0, 2)), Status.UNSAT),
        (
            And(equals_within(x ** 2 + y ** 2, 1.0, 1e-3), equals_within(x - y, 0.0, 1e-3)),
            dict(x=(-2, 2), y=(-2, 2)),
            Status.DELTA_SAT,
        ),
        (
            And(equals_within(x ** 2 + y ** 2, 1.0, 1e-4), equals_within(x + y, 10.0, 1e-4)),
            dict(x=(-3, 3), y=(-3, 3)),
            Status.UNSAT,
        ),
        (equals_within(exp(x), 2.0, 1e-4), dict(x=(0, 2)), Status.DELTA_SAT),
        (
            Or(And(in_range(x, 0.4, 0.6), x >= 10), in_range(x, 0.1, 0.2)),
            dict(x=(0, 1)),
            Status.DELTA_SAT,
        ),
        (
            Exists("y", 0, 1, And(equals_within(x - y, 0.0, 1e-3), x >= 0.5)),
            dict(x=(0, 1)),
            Status.DELTA_SAT,
        ),
    ]

    @pytest.mark.parametrize("phi,bounds,expected", CASES,
                             ids=[str(c[0])[:45] for c in CASES])
    @pytest.mark.parametrize("k", [2, 64, 512])
    def test_same_verdict_as_scalar_loop(self, phi, bounds, expected, k):
        b = box(**bounds)
        scalar = DeltaSolver(delta=1e-3, frontier_size=1)._solve_impl(phi, b)
        batched = DeltaSolver(delta=1e-3, frontier_size=k)._solve_impl(phi, b)
        assert scalar.status is expected
        assert batched.status is expected
        if expected is Status.DELTA_SAT and not isinstance(phi, Exists):
            # the witness box certifies the weakened formula in full
            # (skipped for quantified formulas: Formula.eval only grid-
            # approximates quantifier bodies)
            for pt in batched.witness_box.corners():
                assert phi.delta_weaken(batched.delta + 1e-9).eval(pt)

    def test_budget_exhaustion_unknown(self):
        phi = equals_within(sin(x) * exp(x) + x ** 3, 0.3333, 1e-9)
        r = DeltaSolver(delta=1e-9, max_boxes=5, frontier_size=16)._solve_impl(
            phi, box(x=(-2, 2))
        )
        assert r.status is Status.UNKNOWN
        assert r.witness_box is not None

    def test_unbounded_variable_raises(self):
        with pytest.raises(ValueError, match="free variables"):
            DeltaSolver(frontier_size=8)._solve_impl(x + y >= 0, box(x=(0, 1)))

    def test_stats_populated(self):
        r = DeltaSolver(delta=1e-3, frontier_size=32)._solve_impl(
            equals_within(x ** 2, 2.0, 1e-3), box(x=(0, 2))
        )
        assert r.stats.boxes_processed >= 1
        assert r.stats.wall_time >= 0.0


class TestFrontierPaving:
    def test_partition_identical_to_scalar(self):
        phi = in_range(x, 0.25, 0.75)
        b = box(x=(0, 1))
        s = DeltaSolver(delta=1e-3, frontier_size=1).pave(phi, b, min_width=1e-3)
        v = DeltaSolver(delta=1e-3, frontier_size=64).pave(phi, b, min_width=1e-3)
        for part_s, part_v in zip(s, v):
            assert sorted(part_s, key=hash) == sorted(part_v, key=hash)

    def test_2d_disc_area(self):
        solver = DeltaSolver(delta=1e-2, frontier_size=128)
        phi = 1 - x ** 2 - y ** 2 >= 0
        sat, unsat, und = solver.pave(phi, box(x=(-1, 1), y=(-1, 1)), min_width=0.1)
        area = sum(bx.volume() for bx in sat)
        assert 2.2 < area <= 3.5


class TestBoxArray:
    def test_split_widest_matches_scalar_split(self):
        boxes = random_boxes(40, seed=11)
        ba = BoxArray.from_boxes(boxes)
        children = ba.split_widest()
        for i, b in enumerate(boxes):
            left, right = b.split()
            assert children.row(2 * i) == left
            assert children.row(2 * i + 1) == right

    def test_roundtrip(self):
        boxes = random_boxes(10, seed=2)
        assert BoxArray.from_boxes(boxes).to_boxes() == boxes

    def test_with_column_overrides(self):
        ba = BoxArray.from_boxes(random_boxes(5, seed=4))
        from repro.intervals import IntervalArray

        replaced = ba.with_column("x", IntervalArray.constant(1.0, 5))
        assert replaced.names == ba.names
        assert (replaced.column("x").lo == 1.0).all()
        appended = ba.with_column("z", IntervalArray.constant(2.0, 5))
        assert appended.names == ba.names + ("z",)

    def test_empty_mask(self):
        b1 = box(x=(0, 1), y=(0, 1))
        b2 = Box({"x": Interval(1.0, -1.0), "y": Interval(0.0, 1.0)})
        ba = BoxArray.from_boxes([b1, b2])
        assert list(ba.is_empty) == [False, True]
