"""Legacy entry points still work — as deprecation shims that delegate
to the same implementations the unified API uses."""

import math

import pytest

from repro.apps import (
    AnalysisPipeline,
    PipelineStage,
    SMTCalibrator,
    TimeSeriesData,
    check_robustness,
    falsify_with_data,
)
from repro.bmc import BMCChecker, BMCStatus, ReachSpec
from repro.expr import var
from repro.hybrid import HybridAutomaton, Mode
from repro.intervals import Box
from repro.logic import in_range
from repro.models import logistic
from repro.odes import rk45
from repro.solver import DeltaSolver, Status, solve
from repro.status import AnalysisStatus


def _logistic_data(times, tolerance=0.2):
    model = logistic()
    traj = rk45(model, {"x": 0.5}, (0.0, max(times)), params={"r": 0.65, "K": 10.0})
    return TimeSeriesData.from_samples(
        [(t, {"x": traj.value("x", t)}) for t in times], tolerance=tolerance
    )


class TestDeprecatedEntryPoints:
    def test_delta_solver_solve_warns_and_works(self):
        phi = in_range(var("y") * var("y") - 2.0, -0.01, 0.01)
        box = Box.from_bounds({"y": (0.0, 2.0)})
        with pytest.warns(DeprecationWarning, match="DeltaSolver.solve"):
            res = DeltaSolver(delta=1e-3).solve(phi, box)
        assert res.status is Status.DELTA_SAT
        assert res.witness["y"] == pytest.approx(math.sqrt(2.0), abs=0.05)

    def test_module_level_solve_warns(self):
        phi = in_range(var("y"), 0.4, 0.6)
        with pytest.warns(DeprecationWarning, match="repro.solver.solve"):
            res = solve(phi, Box.from_bounds({"y": (0.0, 1.0)}))
        assert res.status is Status.DELTA_SAT

    def test_eval_formula_warns_and_matches_tape(self):
        # the scalar eval path is a deprecation shim over the tape
        # evaluator: same judgments, with a warning
        from repro.solver import Certainty, eval_formula

        y = var("y")
        cases = [
            (y >= 0, Box.from_bounds({"y": (1.0, 2.0)}), Certainty.CERTAIN_TRUE),
            (y > 0, Box.from_bounds({"y": (-2.0, -1.0)}), Certainty.CERTAIN_FALSE),
            (y > 0, Box.from_bounds({"y": (-1.0, 1.0)}), Certainty.UNKNOWN),
        ]
        for phi, b, expected in cases:
            with pytest.warns(DeprecationWarning, match="eval_formula is deprecated"):
                assert eval_formula(phi, b) is expected

    def test_smt_calibrator_calibrate_warns_and_works(self):
        calib = SMTCalibrator(
            logistic(), _logistic_data((2.0, 4.0)), {"r": (0.1, 2.0)}, {"x": 0.5},
            delta=0.05,
        )
        with pytest.warns(DeprecationWarning, match="SMTCalibrator.calibrate"):
            res = calib.calibrate()
        assert res.status.value == "delta-sat"
        assert abs(res.params["r"] - 0.65) < 0.15

    def test_analysis_pipeline_run_warns_and_works(self):
        pipeline = AnalysisPipeline(
            logistic(),
            _logistic_data((2.0, 4.0), tolerance=0.15),
            _logistic_data((6.0,), tolerance=0.2),
            {"r": (0.1, 2.0)},
            {"x": 0.5},
        )
        with pytest.warns(DeprecationWarning, match="AnalysisPipeline.run"):
            report = pipeline.run()
        assert report.validated
        assert report.stage is PipelineStage.VALIDATED

    def test_bmc_check_warns_and_works(self):
        x = var("x")
        automaton = HybridAutomaton(
            ["x"],
            [Mode("m", {"x": -var("k") * x})],
            [],
            "m",
            Box.from_bounds({"x": (1.0, 1.0)}),
            params={"k": 1.0},
        )
        spec = ReachSpec(goal=(x <= 0.5), max_jumps=0, time_bound=3.0)
        with pytest.warns(DeprecationWarning, match="BMCChecker.check"):
            res = BMCChecker(automaton).check(spec)
        assert res.status is BMCStatus.DELTA_SAT

    def test_falsify_with_data_warns(self):
        impossible = TimeSeriesData.from_samples(
            [(1.0, {"x": 5.0}), (2.0, {"x": 0.2})], tolerance=0.1
        )
        with pytest.warns(DeprecationWarning, match="falsify_with_data"):
            verdict = falsify_with_data(
                logistic(), impossible, {"r": (0.1, 2.0)}, {"x": 0.5}
            )
        assert verdict.rejected

    def test_check_robustness_warns(self):
        x = var("x")
        automaton = HybridAutomaton(
            ["x"],
            [Mode("m", {"x": -x})],
            [],
            "m",
            Box.from_bounds({"x": (0.9, 1.1)}),
        )
        with pytest.warns(DeprecationWarning, match="check_robustness"):
            res = check_robustness(
                automaton, {"x": (0.9, 1.1)}, (x >= 2.0),
                time_bound=3.0, max_jumps=0,
            )
        assert res.robust is True


class TestPipelineStageEnum:
    def test_stage_is_shared_with_analysis_status(self):
        assert PipelineStage is AnalysisStatus

    def test_string_comparisons_still_work(self):
        from repro.apps.pipeline import PipelineReport

        report = PipelineReport(PipelineStage.REFINE)
        assert report.stage == "refine"
        assert report.stage is PipelineStage.REFINE

    def test_string_coercion_in_constructor(self):
        from repro.apps.pipeline import PipelineReport

        report = PipelineReport("validated")
        assert report.stage is PipelineStage.VALIDATED
        assert report.validated

    def test_bad_stage_rejected(self):
        from repro.apps.pipeline import PipelineReport

        with pytest.raises(ValueError):
            PipelineReport("not-a-stage")


class TestNoWarningsThroughFacade:
    def test_engine_path_is_warning_free(self, recwarn):
        import warnings

        from repro.api import run

        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            report = run({
                "task": "falsify",
                "model": {"builtin": "logistic"},
                "query": {
                    "method": "data",
                    "data": {
                        "samples": [[1.0, {"x": 5.0}], [2.0, {"x": 0.2}]],
                        "tolerance": 0.1,
                    },
                    "param_ranges": {"r": [0.1, 2.0]},
                    "x0": {"x": 0.5},
                },
            })
        assert report.status.value == "falsified"
