"""JSON round-trips of specs, reports and the query value codecs."""

import json

import pytest

from repro.api import AnalysisReport, AnalysisStatus, Model, SimOptions, SolverOptions, TaskSpec
from repro.api.serialize import (
    bltl_from_value,
    bltl_to_value,
    bounds_from_value,
    formula_from_value,
    formula_to_value,
    timeseries_from_value,
    timeseries_to_value,
)
from repro.smc import Always, At, Eventually, Prop


class TestTaskSpecRoundTrip:
    def spec(self):
        return TaskSpec(
            task="calibrate",
            model=Model.builtin("logistic", r=0.7),
            query={
                "data": {"samples": [[2.0, {"x": 1.45}]], "tolerance": 0.2},
                "param_ranges": {"r": [0.1, 2.0]},
                "x0": {"x": 0.5},
            },
            solver=SolverOptions(delta=0.01, max_boxes=123),
            sim=SimOptions(rtol=1e-7),
            seed=42,
            name="roundtrip",
        )

    def test_json_round_trip(self):
        spec = self.spec()
        back = TaskSpec.from_json(spec.to_json())
        assert back.to_dict() == spec.to_dict()
        assert back.task == "calibrate"
        assert back.name == "roundtrip"
        assert back.seed == 42
        assert back.solver.delta == 0.01
        assert back.solver.max_boxes == 123
        assert back.sim.rtol == 1e-7
        assert back.model.system.params == {"r": 0.7, "K": 10.0}

    def test_builtin_model_survives(self):
        back = TaskSpec.from_json(self.spec().to_json())
        assert back.model.to_dict() == {"builtin": "logistic", "args": {"r": 0.7}}

    def test_inline_model_survives(self):
        spec = self.spec()
        spec.model = Model.from_dict(
            {"type": "ode", "name": "lin", "derivatives": {"x": "-x"}, "params": {}}
        )
        back = TaskSpec.from_json(spec.to_json())
        assert back.model.name == "lin"
        assert back.model.system.state_names == ["x"]

    def test_unknown_solver_option_rejected(self):
        with pytest.raises(ValueError, match="unknown solver options"):
            TaskSpec.from_dict(
                {"task": "calibrate", "model": {"builtin": "logistic"},
                 "solver": {"typo": 1}}
            )

    def test_missing_fields_rejected(self):
        with pytest.raises(ValueError, match="task"):
            TaskSpec.from_dict({"model": {"builtin": "logistic"}})
        with pytest.raises(ValueError, match="model"):
            TaskSpec.from_dict({"task": "calibrate"})


class TestReportRoundTrip:
    def test_json_round_trip(self):
        report = AnalysisReport(
            task="reach",
            status=AnalysisStatus.DELTA_SAT,
            witness={"k": 1.5},
            witness_box={"k": (1.4, 1.6)},
            metrics={"probability": 0.75},
            stats={"boxes_processed": 42.0},
            wall_time=0.5,
            seed=7,
            detail="found",
            payload={"mode_path": ["a", "b"]},
            name="scenario-1",
        )
        back = AnalysisReport.from_json(report.to_json())
        assert back == report
        assert back.status is AnalysisStatus.DELTA_SAT
        assert isinstance(json.loads(report.to_json())["status"], str)

    def test_status_string_coercion(self):
        report = AnalysisReport(task="smc", status="estimated")
        assert report.status is AnalysisStatus.ESTIMATED

    def test_truthiness(self):
        assert AnalysisReport("t", AnalysisStatus.DELTA_SAT)
        assert AnalysisReport("t", AnalysisStatus.VALIDATED)
        assert not AnalysisReport("t", AnalysisStatus.UNSAT)
        assert not AnalysisReport("t", AnalysisStatus.ERROR)
        assert AnalysisReport("t", AnalysisStatus.UNKNOWN).ok
        assert not AnalysisReport("t", AnalysisStatus.ERROR).ok

    def test_falsify_truthiness_matches_legacy_verdict(self):
        # FalsificationVerdict.__bool__ is True when the model IS
        # rejected; ported `if result:` code must keep its meaning
        assert AnalysisReport("falsify", AnalysisStatus.FALSIFIED)
        assert not AnalysisReport("falsify", AnalysisStatus.DELTA_SAT)
        assert not AnalysisReport("falsify", AnalysisStatus.UNKNOWN)


class TestQueryCodecs:
    def test_formula_string_forms(self):
        phi = formula_from_value("x >= 0.5")
        assert phi.eval({"x": 0.6}) and not phi.eval({"x": 0.4})
        phi = formula_from_value("x - y < 2")
        assert phi.eval({"x": 1.0, "y": 0.0}) and not phi.eval({"x": 3.0, "y": 0.0})

    def test_formula_conjunction_list(self):
        phi = formula_from_value(["x >= 0.0", "x <= 1.0"])
        assert phi.eval({"x": 0.5}) and not phi.eval({"x": 2.0})

    def test_formula_dict_round_trip(self):
        phi = formula_from_value("x >= 0.5")
        back = formula_from_value(formula_to_value(phi))
        assert back.eval({"x": 0.6}) and not back.eval({"x": 0.4})

    def test_formula_bad_string(self):
        with pytest.raises(ValueError, match="cannot parse formula"):
            formula_from_value("x ~ 1")

    def test_bltl_round_trip(self):
        phi = Always(5.0, Eventually(1.0, Prop(formula_from_value("x >= 1.0"))))
        back = bltl_from_value(bltl_to_value(phi))
        assert back == phi
        at = At(2.0, Prop(formula_from_value("x <= 3.0")))
        assert bltl_from_value(bltl_to_value(at)) == at

    def test_bltl_string_shorthand(self):
        phi = bltl_from_value("x >= 1.0")
        assert isinstance(phi, Prop)

    def test_timeseries_round_trip(self):
        data = timeseries_from_value(
            {"samples": [[1.0, {"x": 2.0}], [3.0, {"x": 4.0}]], "tolerance": 0.5}
        )
        assert data.horizon == 3.0
        back = timeseries_from_value(timeseries_to_value(data))
        assert back.checkpoints == data.checkpoints

    def test_bounds(self):
        assert bounds_from_value({"x": [1, 2]}) == {"x": (1.0, 2.0)}

    def test_bounds_scalar_is_point_interval(self):
        assert bounds_from_value({"x": 0.99}) == {"x": (0.99, 0.99)}

    def test_bounds_bad_value_names_the_field(self):
        with pytest.raises(ValueError, match="'x'"):
            bounds_from_value({"x": "wide"})
