"""Mid-shard cooperative cancellation: no orphaned worker processes.

Submits a long sharded falsification through ``Engine.submit``, cancels
after the first per-shard progress event, and asserts the job lands in
``CANCELLED`` with every shard worker pool drained and shut down
(checked via backend introspection and process-table inspection).
"""

import multiprocessing
import time

import pytest

import repro.solver.shard as shard_mod
from repro.api import Engine, TaskSpec
from repro.service.jobs import JobState
from repro.status import AnalysisStatus

#: A falsification hard enough to pave for minutes: the FK ascent
#: barrier over a wide dome window at tight delta/contraction settings.
GRINDING_SPEC = dict(
    task="falsify",
    model={"builtin": "fenton_karma_mode", "args": {"mode": "excited"}},
    query={
        "method": "ascent", "variable": "u",
        "from_level": 0.3, "to_level": 0.9,
        "state_bounds": {"u": [0.0, 1.2], "v": [0.0, 0.01], "w": [0.0, 1.0]},
        "param_ranges": {"tau_r": [10.0, 38.0], "tau_si": [28.0, 130.0]},
    },
    solver={
        "delta": 1e-7, "max_boxes": 100_000, "contract_tol": 1e-4,
        "shards": 2, "shard_backend": "process",
    },
)


def _wait_for_shard_event(job, timeout: float = 60.0) -> bool:
    deadline = time.monotonic() + timeout
    seen = 0
    while time.monotonic() < deadline:
        job.wait_event(min_count=seen + 1, timeout=1.0)
        events = job.events()
        if any(e.source == "shard" for e in events):
            return True
        seen = len(events)
        if job.done():
            return False
    return False


def test_cancel_mid_shard_leaves_no_orphans(monkeypatch):
    created = []
    original = shard_mod.make_backend

    def recording_make_backend(name, workers=None):
        backend = original(name, workers)
        created.append(backend)
        return backend

    monkeypatch.setattr(shard_mod, "make_backend", recording_make_backend)

    with Engine(seed=0) as engine:
        job = engine.submit(TaskSpec(**GRINDING_SPEC), backend="thread")
        assert _wait_for_shard_event(job), (
            "no per-shard progress event before the job finished: "
            f"{job.status} {job.events()[:5]}"
        )
        assert job.cancel()
        report = job.result(timeout=120.0)

    assert job.status is JobState.CANCELLED
    assert report.status is AnalysisStatus.CANCELLED

    # backend introspection: the shard driver owned a worker pool and
    # tore it down on the cancellation unwind
    assert created, "the sharded driver never created its backend"
    for backend in created:
        assert backend._pool is None, f"{backend!r} still holds a pool"

    # and no worker process survived the shutdown
    deadline = time.monotonic() + 10.0
    while multiprocessing.active_children() and time.monotonic() < deadline:
        time.sleep(0.1)
    assert multiprocessing.active_children() == []


@pytest.mark.slow
def test_cancel_before_any_epoch_is_clean():
    """Cancelling immediately still lands in CANCELLED, not ERROR."""
    with Engine(seed=0) as engine:
        job = engine.submit(TaskSpec(**GRINDING_SPEC), backend="thread")
        job.cancel()
        report = job.result(timeout=120.0)
    assert job.status is JobState.CANCELLED
    assert report.status is AnalysisStatus.CANCELLED
