"""Tests for BLTL syntax, boolean monitoring and robustness semantics."""

import math

import numpy as np
import pytest

from repro.expr import var
from repro.odes import ODESystem, Trajectory, rk45
from repro.smc import F, G, U, monitor, prop, robustness

x = var("x")


def make_traj(fn, t_end=10.0, n=501):
    ts = np.linspace(0.0, t_end, n)
    return Trajectory(ts, np.array([[fn(t)] for t in ts]), ["x"])


@pytest.fixture
def decay_traj():
    sys_ = ODESystem({"x": -x})
    return rk45(sys_, {"x": 1.0}, (0.0, 10.0), max_step=0.05)


class TestSyntax:
    def test_horizon(self):
        phi = F(5.0, G(2.0, x >= 0))
        assert phi.horizon() == pytest.approx(7.0)

    def test_connective_horizon(self):
        phi = F(3.0, x >= 0) & G(4.0, x >= 0)
        assert phi.horizon() == pytest.approx(4.0)

    def test_operators_build(self):
        phi = ~prop(x >= 0) | prop(x <= 1)
        assert phi.horizon() == 0.0

    def test_until_horizon(self):
        phi = U(2.0, x >= 0, F(1.0, x >= 1))
        assert phi.horizon() == pytest.approx(3.0)

    def test_formula_coerced(self):
        # passing a raw L_RF formula wraps it into a Prop
        assert monitor(F(1.0, x >= 0), make_traj(lambda t: 1.0))

    def test_bad_type_rejected(self):
        with pytest.raises(TypeError):
            F(1.0, "x > 0")


class TestMonitor:
    def test_eventually_true(self, decay_traj):
        # x decays below 0.5 at t = ln 2 < 1
        assert monitor(F(1.0, 0.5 - x >= 0), decay_traj)

    def test_eventually_false_window_too_short(self, decay_traj):
        # below 0.1 needs t = ln 10 ~ 2.3 > 1
        assert not monitor(F(1.0, 0.1 - x >= 0), decay_traj)

    def test_always(self, decay_traj):
        assert monitor(G(5.0, x >= 0), decay_traj)
        assert not monitor(G(5.0, x >= 0.5), decay_traj)

    def test_nested(self, decay_traj):
        # eventually (within 3) it's always (for 2) below 0.2
        phi = F(3.0, G(2.0, 0.2 - x >= 0))
        assert monitor(phi, decay_traj)

    def test_until(self):
        # x(t) = t: (x <= 5) U (x >= 3) within 10
        traj = make_traj(lambda t: t)
        assert monitor(U(10.0, 5.0 - x >= 0, x - 3 >= 0), traj)
        # (x <= 1) U (x >= 3): left fails before right becomes true
        assert not monitor(U(10.0, 1.0 - x >= 0, x - 3 >= 0), traj)

    def test_until_right_immediately(self):
        traj = make_traj(lambda t: t)
        # right true at t=0: left irrelevant
        assert monitor(U(5.0, x >= 100, x >= 0), traj)

    def test_not_and_or(self, decay_traj):
        assert monitor(~F(1.0, x >= 2.0), decay_traj)
        assert monitor(F(1.0, x >= 0.9) & G(1.0, x >= 0.3), decay_traj)
        assert monitor(F(1.0, x >= 2.0) | G(1.0, x >= 0.1), decay_traj)

    def test_horizon_exceeds_trajectory(self, decay_traj):
        with pytest.raises(ValueError, match="horizon"):
            monitor(F(100.0, x >= 0), decay_traj)

    def test_t_start_offset(self):
        traj = make_traj(lambda t: t)
        assert monitor(G(1.0, x >= 4.9), traj, t_start=5.0)
        assert not monitor(G(1.0, x >= 4.9), traj, t_start=0.0)

    def test_extra_env(self):
        traj = make_traj(lambda t: t)
        thr = var("thr")
        assert monitor(F(10.0, x >= thr), traj, extra_env={"thr": 8.0})
        assert not monitor(F(10.0, x >= thr), traj, extra_env={"thr": 100.0})


class TestRobustness:
    def test_sign_matches_monitor(self, decay_traj):
        cases = [
            F(1.0, 0.5 - x >= 0),
            F(1.0, 0.1 - x >= 0),
            G(5.0, x >= 0),
            G(5.0, x >= 0.5),
            F(3.0, G(2.0, 0.2 - x >= 0)),
        ]
        for phi in cases:
            sat = monitor(phi, decay_traj)
            rob = robustness(phi, decay_traj)
            if rob > 1e-9:
                assert sat, f"{phi} rob={rob}"
            if rob < -1e-9:
                assert not sat, f"{phi} rob={rob}"

    def test_eventually_is_max(self):
        traj = make_traj(lambda t: math.sin(t))
        rob = robustness(F(10.0, x >= 0.5), traj)
        # max margin = max sin - 0.5 = 0.5
        assert rob == pytest.approx(0.5, abs=1e-3)

    def test_always_is_min(self):
        traj = make_traj(lambda t: math.sin(t))
        rob = robustness(G(10.0, x >= -2.0), traj)
        assert rob == pytest.approx(1.0, abs=1e-3)  # min sin + 2 = 1

    def test_negation_flips(self):
        traj = make_traj(lambda t: 1.0)
        assert robustness(~prop(x >= 0), traj) == pytest.approx(-1.0)

    def test_until_robustness(self):
        traj = make_traj(lambda t: t)
        rob = robustness(U(10.0, 20.0 - x >= 0, x - 3 >= 0), traj)
        assert rob > 0
