"""Tests for Lyapunov templates, synthesis, certification and ROA."""

import pytest

from repro.expr import var, variables
from repro.intervals import Box
from repro.lyapunov import (
    LyapunovAnalyzer,
    diagonal_template,
    polynomial_template,
    quadratic_template,
)
from repro.odes import ODESystem
from repro.solver import Status

x, y = variables("x y")


@pytest.fixture
def stable_linear():
    """x' = -x, y' = -2y: globally stable at origin."""
    return ODESystem({"x": -x, "y": -2.0 * y})


@pytest.fixture
def unstable_linear():
    return ODESystem({"x": x, "y": -y})  # saddle


@pytest.fixture
def damped_oscillator():
    """x' = v, v' = -x - v (underdamped, stable)."""
    return ODESystem({"x": var("v"), "v": -x - var("v")})


def region2(r=1.0):
    return Box.from_bounds({"x": (-r, r), "y": (-r, r)})


class TestTemplates:
    def test_quadratic_template_structure(self):
        t = quadratic_template(["x", "y"])
        assert len(t.coefficients) == 3  # xx, xy, yy
        V = t.instantiate({c: 1.0 for c in t.coefficients})
        assert V.eval({"x": 1.0, "y": 1.0}) == pytest.approx(3.0)

    def test_diagonal_template(self):
        t = diagonal_template(["x", "y"])
        assert len(t.coefficients) == 2
        V = t.instantiate({"c_x": 2.0, "c_y": 3.0})
        assert V.eval({"x": 1.0, "y": 1.0}) == pytest.approx(5.0)

    def test_shifted_equilibrium(self):
        t = diagonal_template(["x"], equilibrium={"x": 2.0})
        V = t.instantiate({"c_x": 1.0})
        assert V.eval({"x": 2.0}) == pytest.approx(0.0)
        assert V.eval({"x": 3.0}) == pytest.approx(1.0)

    def test_polynomial_template(self):
        t = polynomial_template(["x"], degree=4)
        # monomials: x^2, x^4 (even only)
        assert len(t.coefficients) == 2
        with pytest.raises(ValueError):
            polynomial_template(["x"], degree=1)

    def test_missing_coefficient_rejected(self):
        t = diagonal_template(["x", "y"])
        with pytest.raises(KeyError):
            t.instantiate({"c_x": 1.0})


class TestCertification:
    def test_certify_known_good(self, stable_linear):
        V = x * x + y * y
        an = LyapunovAnalyzer(stable_linear, region2())
        res = an.certify(V)
        assert res.status is Status.DELTA_SAT

    def test_certify_rejects_bad(self, unstable_linear):
        V = x * x + y * y
        an = LyapunovAnalyzer(unstable_linear, region2())
        res = an.certify(V)
        assert res.status is Status.UNSAT
        assert res.counterexample is not None
        # counterexample should violate decrease along x-axis
        ce = res.counterexample
        assert abs(ce["x"]) > 0.0

    def test_certify_rejects_indefinite_candidate(self, stable_linear):
        V = x * x - y * y  # not positive definite
        an = LyapunovAnalyzer(stable_linear, region2())
        res = an.certify(V)
        assert res.status is Status.UNSAT

    def test_damped_oscillator_cross_term(self, damped_oscillator):
        # classic certificate needs a cross term: V = x^2 + xv/... use
        # V = 1.5x^2 + xv + v^2 (valid for x' = v, v' = -x - v)
        v = var("v")
        V = 1.5 * x * x + x * v + v * v
        an = LyapunovAnalyzer(
            damped_oscillator,
            Box.from_bounds({"x": (-1, 1), "v": (-1, 1)}),
            eps_v=1e-4,
            eps_dv=1e-4,
        )
        res = an.certify(V)
        assert res.status is Status.DELTA_SAT

    def test_pure_energy_fails_for_damped_oscillator(self, damped_oscillator):
        # V = x^2 + v^2 has dV/dt = -2v^2 <= 0, not strictly negative on
        # the v=0 axis: the robust (eps_dv) condition must fail
        v = var("v")
        an = LyapunovAnalyzer(
            damped_oscillator,
            Box.from_bounds({"x": (-1, 1), "v": (-1, 1)}),
            eps_dv=1e-2,
        )
        res = an.certify(x * x + v * v)
        assert res.status is Status.UNSAT

    def test_non_equilibrium_rejected(self, stable_linear):
        with pytest.raises(ValueError, match="not an equilibrium"):
            LyapunovAnalyzer(stable_linear, region2(), equilibrium={"x": 1.0, "y": 0.0})


class TestSynthesis:
    def test_synthesize_stable_linear(self, stable_linear):
        an = LyapunovAnalyzer(stable_linear, region2())
        res = an.synthesize(seed=1)
        assert res.status is Status.DELTA_SAT
        assert res.V is not None
        # verify independently
        check = an.certify(res.V)
        assert check.status is Status.DELTA_SAT

    def test_synthesis_fails_unstable(self, unstable_linear):
        an = LyapunovAnalyzer(unstable_linear, region2())
        res = an.synthesize(max_iterations=10, seed=0)
        assert res.status in (Status.UNSAT, Status.UNKNOWN)

    def test_synthesize_nonlinear(self):
        # x' = -x + x^3/4 is stable near origin (|x| < 2)
        sys_ = ODESystem({"x": -x + 0.25 * x ** 3})
        an = LyapunovAnalyzer(sys_, Box.from_bounds({"x": (-1, 1)}))
        res = an.synthesize(seed=0)
        assert res.status is Status.DELTA_SAT

    def test_shifted_equilibrium_synthesis(self):
        # x' = 1 - x: equilibrium at x = 1
        sys_ = ODESystem({"x": 1.0 - x})
        an = LyapunovAnalyzer(
            sys_,
            Box.from_bounds({"x": (0.0, 2.0)}),
            equilibrium={"x": 1.0},
        )
        res = an.synthesize(seed=0)
        assert res.status is Status.DELTA_SAT
        assert res.V.eval({"x": 1.0}) == pytest.approx(0.0, abs=1e-9)


class TestRegionOfAttraction:
    def test_roa_positive_for_stable(self, stable_linear):
        V = x * x + y * y
        an = LyapunovAnalyzer(stable_linear, region2())
        roa = an.region_of_attraction(V, levels=8)
        # {x^2+y^2 <= c} must stay inside [-1,1]^2 => c < 1
        assert 0.3 < roa <= 1.0

    def test_roa_zero_for_bad_candidate(self, unstable_linear):
        V = x * x + y * y
        an = LyapunovAnalyzer(unstable_linear, region2())
        roa = an.region_of_attraction(V, levels=6)
        assert roa <= 0.2
