"""Unit tests for repro.intervals.Interval."""

import math

import pytest

from repro.intervals import EMPTY, Interval


class TestConstruction:
    def test_point(self):
        iv = Interval.point(3.0)
        assert iv.lo == iv.hi == 3.0
        assert iv.is_point

    def test_make_ordered(self):
        iv = Interval.make(1.0, 2.0)
        assert (iv.lo, iv.hi) == (1.0, 2.0)

    def test_make_inverted_is_empty(self):
        assert Interval.make(2.0, 1.0).is_empty

    def test_make_nan_is_empty(self):
        assert Interval.make(math.nan, 1.0).is_empty

    def test_entire(self):
        iv = Interval.entire()
        assert iv.lo == -math.inf and iv.hi == math.inf
        assert not iv.is_bounded

    def test_hull_of(self):
        assert Interval.hull_of([3.0, -1.0, 2.0]) == Interval(-1.0, 3.0)
        assert Interval.hull_of([]).is_empty


class TestPredicates:
    def test_contains(self):
        iv = Interval(1.0, 2.0)
        assert iv.contains(1.0) and iv.contains(2.0) and iv.contains(1.5)
        assert not iv.contains(0.999)

    def test_empty_contains_nothing(self):
        assert not EMPTY.contains(0.0)

    def test_contains_interval(self):
        assert Interval(0, 10).contains_interval(Interval(1, 2))
        assert not Interval(1, 2).contains_interval(Interval(0, 10))
        assert Interval(1, 2).contains_interval(EMPTY)

    def test_sign_predicates(self):
        assert Interval(1, 2).strictly_positive()
        assert Interval(-2, -1).strictly_negative()
        assert Interval(0, 2).nonnegative()
        assert not Interval(0, 2).strictly_positive()
        assert Interval(-2, 0).nonpositive()

    def test_overlaps(self):
        assert Interval(0, 2).overlaps(Interval(1, 3))
        assert Interval(0, 1).overlaps(Interval(1, 2))  # touching counts
        assert not Interval(0, 1).overlaps(Interval(2, 3))


class TestMeasures:
    def test_width_midpoint(self):
        iv = Interval(1.0, 3.0)
        assert iv.width() == 2.0
        assert iv.midpoint() == 2.0

    def test_midpoint_unbounded(self):
        assert Interval(0.0, math.inf).midpoint() == 1.0
        assert Interval(-math.inf, 0.0).midpoint() == -1.0
        assert Interval.entire().midpoint() == 0.0

    def test_midpoint_empty_raises(self):
        with pytest.raises(ValueError):
            EMPTY.midpoint()

    def test_magnitude_mignitude(self):
        assert Interval(-3, 2).magnitude() == 3.0
        assert Interval(-3, 2).mignitude() == 0.0
        assert Interval(1, 2).mignitude() == 1.0
        assert Interval(-5, -2).mignitude() == 2.0


class TestSetOps:
    def test_intersect(self):
        assert Interval(0, 2).intersect(Interval(1, 3)) == Interval(1, 2)
        assert Interval(0, 1).intersect(Interval(2, 3)).is_empty

    def test_hull(self):
        assert Interval(0, 1).hull(Interval(2, 3)) == Interval(0, 3)
        assert EMPTY.hull(Interval(1, 2)) == Interval(1, 2)

    def test_split(self):
        left, right = Interval(0, 2).split()
        assert left == Interval(0, 1) and right == Interval(1, 2)

    def test_split_at(self):
        left, right = Interval(0, 2).split(at=0.5)
        assert left == Interval(0, 0.5) and right == Interval(0.5, 2)

    def test_split_clamps_cut(self):
        left, right = Interval(0, 2).split(at=5.0)
        assert left == Interval(0, 2) and right == Interval(2, 2)

    def test_inflate(self):
        assert Interval(1, 2).inflate(0.5) == Interval(0.5, 2.5)

    def test_sample(self):
        pts = Interval(0, 1).sample(3)
        assert pts == [0.0, 0.5, 1.0]
        assert Interval(0, 1).sample(1) == [0.5]
        assert EMPTY.sample(5) == []


class TestArithmetic:
    def test_add(self):
        r = Interval(1, 2) + Interval(3, 4)
        assert r.lo <= 4.0 <= 6.0 <= r.hi
        assert r.width() < 3.0 + 1e-9

    def test_add_scalar(self):
        r = Interval(1, 2) + 1.0
        assert r.contains(2.0) and r.contains(3.0)

    def test_sub(self):
        r = Interval(1, 2) - Interval(0.5, 1.0)
        assert r.contains(0.0) and r.contains(1.5)

    def test_neg(self):
        assert -Interval(1, 2) == Interval(-2, -1)

    def test_mul_signs(self):
        assert (Interval(-1, 2) * Interval(3, 4)).contains(-4.0)
        assert (Interval(-1, 2) * Interval(3, 4)).contains(8.0)
        assert (Interval(-2, -1) * Interval(-3, -2)).contains(2.0)

    def test_mul_zero_inf(self):
        r = Interval(0, 0) * Interval.entire()
        assert r.contains(0.0)

    def test_div(self):
        r = Interval(1, 2) / Interval(2, 4)
        assert r.contains(0.25) and r.contains(1.0)

    def test_div_by_zero_spanning(self):
        r = Interval(1, 2) / Interval(-1, 1)
        assert not r.is_bounded

    def test_inverse_half_lines(self):
        r = Interval(0, 2).inverse()
        assert r.contains(0.5) and r.hi == math.inf
        r2 = Interval(-2, 0).inverse()
        assert r2.contains(-0.5) and r2.lo == -math.inf

    def test_inverse_of_zero_point_is_empty(self):
        assert Interval.point(0.0).inverse().is_empty

    def test_abs(self):
        assert abs(Interval(-3, 2)) == Interval(0, 3)
        assert abs(Interval(1, 2)) == Interval(1, 2)
        assert abs(Interval(-2, -1)) == Interval(1, 2)

    def test_sqr_even_power(self):
        r = Interval(-2, 3).sqr()
        assert r.lo <= 0.0 and r.contains(9.0) and not r.contains(-0.1)

    def test_pow_odd(self):
        r = Interval(-2, 2).pow(3)
        assert r.contains(-8.0) and r.contains(8.0)

    def test_pow_zero(self):
        assert Interval(-5, 5).pow(0) == Interval.point(1.0)

    def test_pow_negative(self):
        r = Interval(2, 4).pow(-1)
        assert r.contains(0.25) and r.contains(0.5)

    def test_pow_fractional(self):
        r = Interval(4, 9).pow(0.5)
        assert r.contains(2.0) and r.contains(3.0)

    def test_sqrt(self):
        r = Interval(4, 9).sqrt()
        assert r.contains(2.0) and r.contains(3.0)
        assert Interval(-4, -1).sqrt().is_empty
        # negative part is clipped
        assert Interval(-1, 4).sqrt().contains(0.0)


class TestTranscendental:
    def test_exp_log_roundtrip(self):
        iv = Interval(0.5, 2.0)
        r = iv.exp().log()
        assert r.contains_interval(Interval(0.5 + 1e-12, 2.0 - 1e-12))

    def test_exp_overflow(self):
        r = Interval(700, 800).exp()
        assert r.hi == math.inf

    def test_log_domain(self):
        assert Interval(-2, -1).log().is_empty
        r = Interval(0, 1).log()
        assert r.lo == -math.inf and r.contains(0.0)

    def test_sin_small(self):
        r = Interval(0.0, 0.1).sin()
        assert r.contains(0.0) and r.contains(math.sin(0.1))

    def test_sin_captures_max(self):
        r = Interval(0.0, math.pi).sin()
        assert r.hi >= 1.0 - 1e-12

    def test_sin_captures_min(self):
        r = Interval(math.pi, 2 * math.pi).sin()
        assert r.lo <= -1.0 + 1e-12

    def test_sin_wide(self):
        assert Interval(0, 100).sin() == Interval(-1, 1)

    def test_cos_captures_extrema(self):
        r = Interval(0.0, math.pi).cos()
        assert r.hi >= 1.0 - 1e-12 and r.lo <= -1.0 + 1e-12

    def test_cos_small(self):
        r = Interval(1.0, 1.5).cos()
        assert r.contains(math.cos(1.2))

    def test_tan_monotone_branch(self):
        r = Interval(-0.5, 0.5).tan()
        assert r.contains(math.tan(0.3)) and r.is_bounded

    def test_tan_pole(self):
        assert not Interval(1.0, 2.0).tan().is_bounded

    def test_tanh(self):
        r = Interval(-1, 1).tanh()
        assert r.contains(math.tanh(-1)) and r.contains(math.tanh(1))
        assert -1.0 <= r.lo and r.hi <= 1.0

    def test_sigmoid(self):
        r = Interval(-100, 100).sigmoid()
        assert 0.0 <= r.lo <= 0.001 and 0.999 <= r.hi <= 1.0
        assert Interval.point(0.0).sigmoid().contains(0.5)

    def test_min_max_with(self):
        assert Interval(0, 2).min_with(Interval(1, 3)) == Interval(0, 2)
        assert Interval(0, 2).max_with(Interval(1, 3)) == Interval(1, 3)


class TestEmptyPropagation:
    @pytest.mark.parametrize(
        "op",
        [
            lambda e: e + Interval(1, 2),
            lambda e: e - Interval(1, 2),
            lambda e: e * Interval(1, 2),
            lambda e: e / Interval(1, 2),
            lambda e: -e,
            lambda e: abs(e),
            lambda e: e.exp(),
            lambda e: e.log(),
            lambda e: e.sin(),
            lambda e: e.cos(),
            lambda e: e.sqrt(),
            lambda e: e.sqr(),
            lambda e: e.tanh(),
        ],
    )
    def test_ops_propagate_empty(self, op):
        assert op(EMPTY).is_empty
