"""Tests for HC4-revise and formula-level contraction."""

import pytest

from repro.expr import abs_, exp, log, parse_expr, sigmoid, sqrt, tanh, var, variables
from repro.intervals import Box, Interval
from repro.logic import And, Atom, Or, in_range
from repro.solver import contract_formula, fixpoint_contract, hc4_revise

x, y = variables("x y")


def box(**bounds) -> Box:
    return Box.from_bounds({k: tuple(v) for k, v in bounds.items()})


class TestHC4Atoms:
    def test_linear(self):
        # x - 3 >= 0 over x in [0, 10] -> x in [3, 10]
        b = hc4_revise(Atom(x - 3, strict=False), box(x=(0, 10)))
        assert b["x"].lo == pytest.approx(3.0, abs=1e-9)
        assert b["x"].hi == 10.0

    def test_upper_bound(self):
        # 5 - x >= 0 -> x <= 5
        b = hc4_revise(Atom(5 - x, strict=False), box(x=(0, 10)))
        assert b["x"].hi == pytest.approx(5.0, abs=1e-9)

    def test_infeasible_gives_empty(self):
        b = hc4_revise(Atom(x - 20, strict=False), box(x=(0, 10)))
        assert b.is_empty

    def test_two_variables(self):
        # x + y - 10 >= 0 with x in [0,3] -> y >= 7
        b = hc4_revise(Atom(x + y - 10, strict=False), box(x=(0, 3), y=(0, 100)))
        assert b["y"].lo == pytest.approx(7.0, abs=1e-6)

    def test_multiplication(self):
        # x * y - 10 >= 0, x in [1,2] -> y >= 5
        b = hc4_revise(Atom(x * y - 10, strict=False), box(x=(1, 2), y=(0, 100)))
        assert b["y"].lo == pytest.approx(5.0, rel=1e-6)

    def test_division(self):
        # x / y - 2 >= 0 with y in [1,2], x in [0,10] -> x >= 2
        b = hc4_revise(Atom(x / y - 2, strict=False), box(x=(0, 10), y=(1, 2)))
        assert b["x"].lo == pytest.approx(2.0, rel=1e-6)

    def test_even_power(self):
        # x^2 - 4 <= 0 -> -2 <= x <= 2 encoded as 4 - x^2 >= 0
        b = hc4_revise(Atom(4 - x ** 2, strict=False), box(x=(-10, 10)))
        assert b["x"].lo == pytest.approx(-2.0, abs=1e-6)
        assert b["x"].hi == pytest.approx(2.0, abs=1e-6)

    def test_even_power_sign_restricted(self):
        b = hc4_revise(Atom(4 - x ** 2, strict=False), box(x=(0, 10)))
        assert b["x"].hi == pytest.approx(2.0, abs=1e-6)
        assert b["x"].lo == 0.0

    def test_odd_power(self):
        # x^3 - 8 >= 0 -> x >= 2
        b = hc4_revise(Atom(x ** 3 - 8, strict=False), box(x=(-10, 10)))
        assert b["x"].lo == pytest.approx(2.0, rel=1e-6)

    def test_exp(self):
        import math

        # exp(x) - 10 >= 0 -> x >= ln 10
        b = hc4_revise(Atom(exp(x) - 10, strict=False), box(x=(-10, 10)))
        assert b["x"].lo == pytest.approx(math.log(10), rel=1e-6)

    def test_log(self):
        import math

        # 1 - log(x) >= 0 -> x <= e
        b = hc4_revise(Atom(1 - log(x), strict=False), box(x=(0.1, 100)))
        assert b["x"].hi == pytest.approx(math.e, rel=1e-6)

    def test_sqrt(self):
        # sqrt(x) - 2 >= 0 -> x >= 4
        b = hc4_revise(Atom(sqrt(x) - 2, strict=False), box(x=(0, 100)))
        assert b["x"].lo == pytest.approx(4.0, rel=1e-6)

    def test_abs(self):
        # 1 - |x| >= 0 -> x in [-1, 1]
        b = hc4_revise(Atom(1 - abs_(x), strict=False), box(x=(-10, 10)))
        assert b["x"].lo == pytest.approx(-1.0, abs=1e-6)
        assert b["x"].hi == pytest.approx(1.0, abs=1e-6)

    def test_tanh(self):
        import math

        # tanh(x) - 0.5 >= 0 -> x >= atanh(0.5)
        b = hc4_revise(Atom(tanh(x) - 0.5, strict=False), box(x=(-5, 5)))
        assert b["x"].lo == pytest.approx(math.atanh(0.5), abs=1e-6)

    def test_sigmoid(self):
        # sigmoid(x) - 0.5 >= 0 -> x >= 0
        b = hc4_revise(Atom(sigmoid(x) - 0.5, strict=False), box(x=(-5, 5)))
        assert b["x"].lo == pytest.approx(0.0, abs=1e-6)

    def test_neg(self):
        # -x >= 0 -> x <= 0
        b = hc4_revise(Atom(-x, strict=False), box(x=(-5, 5)))
        assert b["x"].hi == pytest.approx(0.0, abs=1e-12)

    def test_sin_no_contraction_but_sound(self):
        from repro.expr import sin

        b = hc4_revise(Atom(sin(x), strict=False), box(x=(-5, 5)))
        assert not b.is_empty
        assert b["x"].contains(0.5)  # a true solution survives


class TestSoundness:
    """Contraction must never remove true solutions."""

    @pytest.mark.parametrize(
        "text,sol",
        [
            ("x^2 + y^2 - 1", {"x": 1.0, "y": 1.0}),
            ("x * y - 1", {"x": 2.0, "y": 0.5}),
            ("exp(x) - y", {"x": 0.0, "y": 0.5}),
            ("y - x^3", {"x": 1.0, "y": 2.0}),
            ("x / y - 0.5", {"x": 1.0, "y": 2.0}),
        ],
    )
    def test_solution_preserved(self, text, sol):
        atom = Atom(parse_expr(text), strict=False)
        assert atom.eval(sol)  # sanity: it is a solution
        b = box(x=(-5, 5), y=(0.1, 5))
        contracted = hc4_revise(atom, b)
        assert contracted.contains_point(sol)

    def test_fixpoint_preserves_solution(self):
        phi = And(
            Atom(parse_expr("y - x^2"), strict=False),
            Atom(parse_expr("x - y + 0.25"), strict=False),
        )
        sol = {"x": 0.5, "y": 0.25 + 0.5}  # y >= x^2 and y <= x + 0.25
        # actually pick the solution y = x^2 = 0.25, x=0.5: y-x^2=0 ok, x-y+0.25=0.5 ok
        sol = {"x": 0.5, "y": 0.25}
        assert phi.eval(sol)
        contracted = fixpoint_contract(phi, box(x=(-2, 2), y=(-2, 2)))
        assert contracted.contains_point(sol)


class TestFormulaContraction:
    def test_conjunction_narrows_both(self):
        phi = And(Atom(x - 2, strict=False), Atom(8 - x, strict=False))
        b = contract_formula(phi, box(x=(0, 10)))
        assert b["x"].lo == pytest.approx(2.0, abs=1e-6)
        assert b["x"].hi == pytest.approx(8.0, abs=1e-6)

    def test_disjunction_hull(self):
        phi = Or(
            And(Atom(x - 1, strict=False), Atom(2 - x, strict=False)),  # [1,2]
            And(Atom(x - 7, strict=False), Atom(9 - x, strict=False)),  # [7,9]
        )
        b = contract_formula(phi, box(x=(0, 10)))
        assert b["x"].lo == pytest.approx(1.0, abs=1e-6)
        assert b["x"].hi == pytest.approx(9.0, abs=1e-6)

    def test_disjunction_one_branch_infeasible(self):
        phi = Or(
            Atom(x - 100, strict=False),  # infeasible in box
            And(Atom(x - 1, strict=False), Atom(2 - x, strict=False)),
        )
        b = contract_formula(phi, box(x=(0, 10)))
        assert b["x"].hi == pytest.approx(2.0, abs=1e-6)

    def test_all_branches_infeasible(self):
        phi = Or(Atom(x - 100, strict=False), Atom(-x - 100, strict=False))
        b = contract_formula(phi, box(x=(0, 10)))
        assert b.is_empty

    def test_in_range_contraction(self):
        b = contract_formula(in_range(x, 3.0, 4.0), box(x=(0, 10)))
        assert b["x"].lo == pytest.approx(3.0, abs=1e-6)
        assert b["x"].hi == pytest.approx(4.0, abs=1e-6)

    def test_fixpoint_converges(self):
        # x = y and y = x/2 over positive box forces both toward 0
        phi = And(
            Atom(x - y, strict=False),
            Atom(y - x, strict=False),
            Atom(y - 2 * x, strict=False),
            Atom(2 * x - y, strict=False),
        )
        b = fixpoint_contract(phi, box(x=(0.0, 8.0), y=(0.0, 8.0)), tol=1e-6, max_sweeps=200)
        # only solution is x=y=0
        assert b["x"].hi < 1.0
