"""The compiled tape kernel (`repro.solver.lower`) vs the interpreter.

The lowering's contract is *bit-identity*: judge, contract and
fixpoint results of a lowered kernel must equal the numpy tape
interpreter's exactly, so verdicts, witnesses and paving digests never
depend on ``SolverOptions.kernel``.

Locally that contract is checked through the ``"pyexec"`` mode -- the
same generated per-row source run by the plain interpreter -- which is
bit-identical to numpy by construction (scalar numpy ufunc calls match
array ufunc calls).  The ``"numba"`` mode runs the identical source
jitted; the tests marked ``needs numba`` execute it for real on the CI
kernel job and fall back to a skip when the extra is not installed.
"""

import math
import warnings

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.expr import abs_, maximum, minimum, sin, sqrt, tanh, var
from repro.intervals import Box, BoxArray
from repro.logic import Atom, in_range
from repro.solver import DeltaSolver, Status
from repro.solver.lower import (
    HAS_NUMBA,
    KERNELS,
    PYEXEC_KERNEL,
    available_kernels,
    lower_tape,
    numba_usable,
    resolve_kernel,
    validate_kernel,
)
from repro.solver.tape import ExprTape, compile_formula

needs_numba = pytest.mark.skipif(
    not numba_usable(), reason="numba not installed (the [jit] extra)"
)

x, y = var("x"), var("y")
NAMES = ("x", "y")


def random_frontier(rng: np.random.Generator, n: int) -> BoxArray:
    """Random boxes incl. degenerate, inf-endpoint and empty rows."""
    lo = rng.uniform(-3.0, 3.0, size=(n, 2))
    hi = lo + rng.uniform(0.0, 2.0, size=(n, 2))
    lo[0] = hi[0] = (0.0, 0.0)          # degenerate at the origin
    if n > 3:
        hi[1, 0] = math.inf             # half-infinite
        lo[2, 1] = math.inf             # empty row (lo > hi)
        hi[2, 1] = -math.inf
        lo[3] = (-0.0, 0.0)             # signed-zero bounds
        hi[3] = (0.0, 0.0)
    return BoxArray(NAMES, lo, hi)


# ----------------------------------------------------------------------
# Bit-identity: pyexec (and numba when present) vs the interpreter
# ----------------------------------------------------------------------

EXPRS = [
    x * y + 0.5,
    x * x - y * y + x * 0.25,
    sin(x) * y + sqrt(abs_(y)),
    x ** 2 + y ** 3 - 1.0,
    x ** 0.5 + y ** 2,
    minimum(x, y) * maximum(x, y) - 0.1,
    tanh(x) / (y + 2.5),
    x ** y,
]


def _identity_kernels():
    ks = [PYEXEC_KERNEL]
    if numba_usable():
        ks.append("numba")
    return ks


@pytest.mark.parametrize("expr", EXPRS, ids=[str(i) for i in range(len(EXPRS))])
def test_judge_and_contract_bit_identical(expr):
    phi = Atom(expr, strict=False)
    ref = compile_formula(phi, kernel="numpy")
    rng = np.random.default_rng(7)
    boxes = random_frontier(rng, 64)
    for kernel in _identity_kernels():
        cf = compile_formula(phi, kernel=kernel, names=NAMES)
        assert (cf.judge(boxes, 0.0) == ref.judge(boxes, 0.0)).all(), kernel
        assert (cf.judge(boxes, 0.1) == ref.judge(boxes, 0.1)).all(), kernel
        a, b = cf.contract(boxes), ref.contract(boxes)
        np.testing.assert_array_equal(a.lo, b.lo, err_msg=kernel)
        np.testing.assert_array_equal(a.hi, b.hi, err_msg=kernel)
        # signbits too: -0.0 == 0.0 compares equal but hashes differently
        assert (np.signbit(a.lo) == np.signbit(b.lo)).all(), kernel
        assert (np.signbit(a.hi) == np.signbit(b.hi)).all(), kernel
        fa = cf.fixpoint_contract(boxes, tol=1e-2)
        fb = ref.fixpoint_contract(boxes, tol=1e-2)
        np.testing.assert_array_equal(fa.lo, fb.lo, err_msg=kernel)
        np.testing.assert_array_equal(fa.hi, fb.hi, err_msg=kernel)


COEF = st.floats(min_value=-2.0, max_value=2.0, allow_nan=False)
UNARY = st.sampled_from([None, sin, tanh, abs_])


@st.composite
def random_atom(draw):
    """Random two-variable term mixing rational and lowered unary ops."""
    a, b, c, d = (draw(COEF) for _ in range(4))
    term = a * x * y + b * x + c * y + d
    f = draw(UNARY)
    if f is not None:
        term = f(term) + draw(COEF) * x
    if draw(st.booleans()):
        term = term + x ** draw(st.sampled_from([2, 3, 0.5]))
    return Atom(term, strict=False)


@given(random_atom(), st.integers(min_value=0, max_value=2 ** 31 - 1))
@settings(max_examples=60, deadline=None)
def test_property_lowered_equals_interpreter(atom, seed):
    rng = np.random.default_rng(seed)
    boxes = random_frontier(rng, 16)
    ref = compile_formula(atom, kernel="numpy")
    for kernel in _identity_kernels():
        cf = compile_formula(atom, kernel=kernel, names=NAMES)
        assert (cf.judge(boxes, 0.0) == ref.judge(boxes, 0.0)).all()
        a, b = cf.contract(boxes), ref.contract(boxes)
        np.testing.assert_array_equal(a.lo, b.lo)
        np.testing.assert_array_equal(a.hi, b.hi)


def test_lowered_tape_unit():
    tape = ExprTape(sin(x) * y + x ** 2)
    lt = lower_tape(tape, NAMES, PYEXEC_KERNEL)
    assert lt is not None
    rng = np.random.default_rng(3)
    boxes = random_frontier(rng, 32)
    ia, ib = lt.eval(boxes), tape.eval(boxes)
    np.testing.assert_array_equal(ia.lo, ib.lo)
    np.testing.assert_array_equal(ia.hi, ib.hi)
    ca, cb = lt.hc4(boxes), tape.hc4(boxes, strict=False)
    np.testing.assert_array_equal(ca.lo, cb.lo)
    np.testing.assert_array_equal(ca.hi, cb.hi)
    # the lowering is cached by tape content
    assert lower_tape(ExprTape(sin(x) * y + x ** 2), NAMES, PYEXEC_KERNEL) is lt


# ----------------------------------------------------------------------
# Solver-level equivalence
# ----------------------------------------------------------------------

PHI = in_range(x ** 2 + y ** 2 + 0.3 * sin(3 * x), 0.5, 0.9)
BOX = Box.from_bounds({"x": (-1.5, 1.5), "y": (-1.5, 1.5)})


def test_solver_results_identical_across_kernels():
    base = DeltaSolver(delta=1e-3, max_boxes=20_000)._solve_impl(PHI, BOX)
    for kernel in _identity_kernels():
        res = DeltaSolver(
            delta=1e-3, max_boxes=20_000, kernel=kernel
        )._solve_impl(PHI, BOX)
        assert res.status == base.status
        if base.witness is not None:
            assert res.witness is not None
            for n in NAMES:
                assert res.witness[n] == base.witness[n]


def test_paving_identical_across_kernels():
    base = DeltaSolver(delta=1e-3, max_boxes=50_000).pave(PHI, BOX, min_width=0.1)
    for kernel in _identity_kernels():
        parts = DeltaSolver(
            delta=1e-3, max_boxes=50_000, kernel=kernel
        ).pave(PHI, BOX, min_width=0.1)
        for got, want in zip(parts, base):
            assert len(got) == len(want)
            for bg, bw in zip(got, want):
                for n in bg.names:
                    assert (bg[n].lo, bg[n].hi) == (bw[n].lo, bw[n].hi)


def test_numba_fallback_solves_identically():
    # with numba absent "numba" degrades to the interpreter; with numba
    # present it must still produce the same status either way
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", RuntimeWarning)
        res = DeltaSolver(
            delta=1e-3, max_boxes=20_000, kernel="numba"
        )._solve_impl(PHI, BOX)
    base = DeltaSolver(delta=1e-3, max_boxes=20_000)._solve_impl(PHI, BOX)
    assert res.status == base.status is Status.DELTA_SAT


# ----------------------------------------------------------------------
# Knob validation and fallback behavior
# ----------------------------------------------------------------------


def test_validate_kernel_boundary():
    assert validate_kernel("numpy") == "numpy"
    assert validate_kernel("numba") == "numba"
    with pytest.raises(ValueError, match="unknown kernel 'avx'"):
        validate_kernel("avx")
    # pyexec is internal-only: the public surface rejects it
    with pytest.raises(ValueError, match="unknown kernel 'pyexec'"):
        validate_kernel(PYEXEC_KERNEL)
    assert validate_kernel(PYEXEC_KERNEL, internal=True) == PYEXEC_KERNEL


def test_solver_options_reject_bad_knobs():
    from repro.api.spec import SolverOptions

    with pytest.raises(ValueError, match="frontier_size must be >= 1, got 0"):
        SolverOptions(frontier_size=0)
    with pytest.raises(ValueError, match="shards must be >= 1, got -2"):
        SolverOptions(shards=-2)
    with pytest.raises(ValueError, match="unknown kernel 'avx'"):
        SolverOptions(kernel="avx")
    with pytest.raises(ValueError, match="unknown kernel"):
        SolverOptions(kernel=PYEXEC_KERNEL)
    # the serve/CLI door builds options through from_dict: same message
    with pytest.raises(ValueError, match="frontier_size must be >= 1"):
        SolverOptions.from_dict({"frontier_size": 0})
    with pytest.raises(ValueError, match="unknown kernel"):
        SolverOptions.from_dict({"kernel": "avx"})


def test_delta_solver_rejects_bad_knobs():
    with pytest.raises(ValueError, match="frontier_size must be >= 1, got 0"):
        DeltaSolver(frontier_size=0)
    with pytest.raises(ValueError, match="shards must be >= 1, got 0"):
        DeltaSolver(shards=0)
    with pytest.raises(ValueError, match="unknown kernel"):
        DeltaSolver(kernel="avx")
    # pyexec is admitted internally (tests drive it through DeltaSolver)
    DeltaSolver(kernel=PYEXEC_KERNEL)


def test_available_kernels_consistent():
    ks = available_kernels()
    assert "numpy" in ks
    assert set(ks) <= set(KERNELS)
    assert ("numba" in ks) == numba_usable()


def test_resolve_kernel_fallback_warns_once():
    import repro.solver.lower as lower

    if numba_usable():
        assert resolve_kernel("numba") == "numba"
        return
    old = lower._warned_fallback
    lower._warned_fallback = False
    try:
        with pytest.warns(RuntimeWarning, match="falling back to the numpy"):
            assert resolve_kernel("numba") == "numpy"
        with warnings.catch_warnings():
            warnings.simplefilter("error")  # second resolve stays silent
            assert resolve_kernel("numba") == "numpy"
    finally:
        lower._warned_fallback = old


@pytest.mark.skipif(not HAS_NUMBA, reason="numba not installed")
def test_numba_canary():
    """CI canary: when numba imports, the lowering must actually engage.

    Without this, a silently broken probe would make the CI kernel job
    test the numpy interpreter twice and report green.
    """
    assert numba_usable(), "numba imported but the probe kernel failed"
    tape = ExprTape(x * y + x ** 2)
    lt = lower_tape(tape, NAMES, "numba")
    assert lt is not None and lt.mode == "numba"


@needs_numba
def test_numba_rational_ops_bit_identical():
    # rational ops share exact IEEE arithmetic everywhere; unlike the
    # libm-backed transcendentals this identity is guaranteed, not
    # merely observed
    expr = (x * y - 0.25) / (y + 3.0) + minimum(x, y) + abs_(x) ** 2
    phi = Atom(expr, strict=False)
    ref = compile_formula(phi, kernel="numpy")
    cf = compile_formula(phi, kernel="numba", names=NAMES)
    rng = np.random.default_rng(11)
    boxes = random_frontier(rng, 256)
    assert (cf.judge(boxes, 0.0) == ref.judge(boxes, 0.0)).all()
    a, b = cf.fixpoint_contract(boxes, tol=1e-2), ref.fixpoint_contract(boxes, tol=1e-2)
    np.testing.assert_array_equal(a.lo, b.lo)
    np.testing.assert_array_equal(a.hi, b.hi)
