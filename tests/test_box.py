"""Unit tests for repro.intervals.Box."""

import random

import pytest

from repro.intervals import Box, Interval


@pytest.fixture
def box():
    return Box.from_bounds({"x": (0.0, 2.0), "y": (-1.0, 1.0)})


class TestConstruction:
    def test_from_bounds(self, box):
        assert box["x"] == Interval(0, 2)
        assert box["y"] == Interval(-1, 1)

    def test_from_point(self):
        b = Box.from_point({"x": 1.0})
        assert b["x"].is_point and b["x"].lo == 1.0

    def test_mapping_protocol(self, box):
        assert set(box) == {"x", "y"}
        assert len(box) == 2
        assert "x" in box and "z" not in box


class TestMeasures:
    def test_max_width(self, box):
        assert box.max_width() == 2.0

    def test_widest_dimension(self, box):
        assert box.widest_dimension() in {"x", "y"}  # both width 2
        b = Box.from_bounds({"x": (0, 1), "y": (0, 5)})
        assert b.widest_dimension() == "y"

    def test_volume(self, box):
        assert box.volume() == 4.0

    def test_empty_box(self):
        b = Box({"x": Interval.make(2, 1)})
        assert b.is_empty
        assert b.volume() == 0.0

    def test_contains_point(self, box):
        assert box.contains_point({"x": 1.0, "y": 0.0})
        assert not box.contains_point({"x": 3.0, "y": 0.0})
        # partial points check only named coordinates
        assert box.contains_point({"x": 1.0})

    def test_contains_box(self, box):
        inner = Box.from_bounds({"x": (0.5, 1.0), "y": (0.0, 0.5)})
        assert box.contains_box(inner)
        assert not inner.contains_box(box)


class TestOperations:
    def test_with_interval(self, box):
        b2 = box.with_interval("x", Interval(5, 6))
        assert b2["x"] == Interval(5, 6)
        assert box["x"] == Interval(0, 2)  # original untouched

    def test_without_restrict(self, box):
        assert set(box.without("y")) == {"x"}
        assert set(box.restrict(["y"])) == {"y"}

    def test_merged(self, box):
        b2 = box.merged(Box.from_bounds({"z": (0, 1)}))
        assert set(b2) == {"x", "y", "z"}

    def test_intersect(self, box):
        other = Box.from_bounds({"x": (1.0, 3.0)})
        inter = box.intersect(other)
        assert inter["x"] == Interval(1, 2)
        assert inter["y"] == Interval(-1, 1)

    def test_hull(self):
        a = Box.from_bounds({"x": (0, 1)})
        b = Box.from_bounds({"x": (2, 3)})
        assert a.hull(b)["x"] == Interval(0, 3)

    def test_split_default_widest(self):
        b = Box.from_bounds({"x": (0, 1), "y": (0, 10)})
        left, right = b.split()
        assert left["y"] == Interval(0, 5) and right["y"] == Interval(5, 10)
        assert left["x"] == b["x"]

    def test_split_named(self, box):
        left, right = box.split("x")
        assert left["x"] == Interval(0, 1) and right["x"] == Interval(1, 2)

    def test_midpoint(self, box):
        mid = box.midpoint()
        assert mid == {"x": 1.0, "y": 0.0}

    def test_corners(self, box):
        corners = box.corners()
        assert len(corners) == 4
        assert {"x": 0.0, "y": -1.0} in corners
        assert {"x": 2.0, "y": 1.0} in corners

    def test_corners_with_point_dim(self):
        b = Box({"x": Interval(0, 1), "y": Interval.point(5.0)})
        assert len(b.corners()) == 2

    def test_sample_random_inside(self, box):
        rng = random.Random(42)
        for _ in range(50):
            assert box.contains_point(box.sample_random(rng))

    def test_sample_grid(self, box):
        pts = box.sample_grid(3)
        assert len(pts) == 9
        assert all(box.contains_point(p) for p in pts)

    def test_inflate(self, box):
        b = box.inflate(0.5)
        assert b["x"] == Interval(-0.5, 2.5)

    def test_eq_hash(self, box):
        same = Box.from_bounds({"x": (0.0, 2.0), "y": (-1.0, 1.0)})
        assert box == same
        assert hash(box) == hash(same)
