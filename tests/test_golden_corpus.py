"""Golden-verdict conformance: every solver path reproduces the corpus.

``tests/golden/`` pins the verdict projection of the golden scenario
set — the hand-written core catalog plus the promoted corpus
discoveries (``repro.tools.golden.PROMOTED_SCENARIOS``; the rest of
the 150+ entry corpus is covered by ``tests/test_corpus_conformance``)
— and the byte-level paving digests of the dedicated conformance
problems.  Each entry is asserted against three execution paths of the
delta-decision machinery -- the legacy scalar loop, the vectorized
frontier loop, and the sharded work-stealing driver -- so any verdict
regression in any path (or a stale snapshot after an intentional
change) fails here.  Regenerate with::

    python -m repro.tools.regen_golden
"""

import json

import pytest

from repro.tools.golden import (
    MODES,
    PAVING_PROBLEMS,
    golden_dir,
    golden_scenario_names,
    paving_digest,
    projection_digest,
    scenario_projection,
)

GOLDEN = golden_dir()

#: Scenarios whose three-path run is expensive (policy search over SMC
#: scoring); exercised only in the full (non-PR) workflow.
SLOW_SCENARIOS = {"ias-policy"}


def _load(stem: str) -> dict:
    path = GOLDEN / f"{stem}.json"
    assert path.exists(), (
        f"missing golden snapshot {path.name}; regenerate the corpus with "
        "`python -m repro.tools.regen_golden`"
    )
    return json.loads(path.read_text())


def test_corpus_is_complete():
    """Exactly one snapshot per golden-set scenario and paving problem.

    A core scenario or promoted corpus entry added without regenerating
    the snapshots (or a stale snapshot for a removed one) fails here
    before any solver runs.
    """
    committed = {p.stem for p in GOLDEN.glob("*.json")}
    expected = set(golden_scenario_names()) | {
        f"paving-{p}" for p in PAVING_PROBLEMS
    }
    assert committed == expected, (
        "golden corpus out of sync with the golden scenario set; "
        "regenerate with `python -m repro.tools.regen_golden`"
    )


def _scenario_params():
    for name in golden_scenario_names():
        for mode in MODES:
            marks = [pytest.mark.slow] if name in SLOW_SCENARIOS else []
            yield pytest.param(name, mode, marks=marks, id=f"{name}-{mode}")


@pytest.mark.parametrize("name,mode", _scenario_params())
def test_scenario_verdict_conformance(name, mode):
    golden = _load(name)
    projection = scenario_projection(name, mode)
    assert projection == golden["projection"], (
        f"{name} via the {mode} solver path diverges from the golden "
        f"verdict {golden['status']!r}"
    )
    assert projection_digest(projection) == golden["digest"]


@pytest.mark.parametrize("mode", sorted(MODES))
@pytest.mark.parametrize("problem", sorted(PAVING_PROBLEMS))
def test_paving_conformance(problem, mode):
    """Serial, vectorized and sharded pavings classify identical boxes."""
    golden = _load(f"paving-{problem}")
    result = paving_digest(problem, mode)
    assert result["counts"] == golden["counts"]
    assert result["digest"] == golden["digest"], (
        f"paving of {problem!r} via the {mode} path classified different "
        "boxes than the golden partition"
    )
