"""Golden-verdict conformance: every solver path reproduces the corpus.

``tests/golden/`` pins the verdict projection of the golden scenario
set — the hand-written core catalog plus the promoted corpus
discoveries (``repro.tools.golden.PROMOTED_SCENARIOS``; the rest of
the 150+ entry corpus is covered by ``tests/test_corpus_conformance``)
— and the byte-level paving digests of the dedicated conformance
problems.  Each entry is asserted against three execution paths of the
delta-decision machinery -- the legacy scalar loop, the vectorized
frontier loop, and the sharded work-stealing driver -- so any verdict
regression in any path (or a stale snapshot after an intentional
change) fails here.  Regenerate with::

    python -m repro.tools.regen_golden
"""

import json

import pytest

from repro.tools.golden import (
    MODES,
    PAVING_PROBLEMS,
    golden_dir,
    golden_scenario_names,
    paving_digest,
    projection_digest,
    scenario_projection,
)

GOLDEN = golden_dir()

#: Scenarios whose three-path run is expensive (policy search over SMC
#: scoring); exercised only in the full (non-PR) workflow.
SLOW_SCENARIOS = {"ias-policy"}


def _load(stem: str) -> dict:
    path = GOLDEN / f"{stem}.json"
    assert path.exists(), (
        f"missing golden snapshot {path.name}; regenerate the corpus with "
        "`python -m repro.tools.regen_golden`"
    )
    return json.loads(path.read_text())


def test_corpus_is_complete():
    """Exactly one snapshot per golden-set scenario and paving problem.

    A core scenario or promoted corpus entry added without regenerating
    the snapshots (or a stale snapshot for a removed one) fails here
    before any solver runs.
    """
    committed = {p.stem for p in GOLDEN.glob("*.json")}
    expected = set(golden_scenario_names()) | {
        f"paving-{p}" for p in PAVING_PROBLEMS
    }
    assert committed == expected, (
        "golden corpus out of sync with the golden scenario set; "
        "regenerate with `python -m repro.tools.regen_golden`"
    )


def _kernels_for(mode: str):
    """The kernel axis of one mode.

    The scalar loop (``serial``) ignores the knob, so only the batched
    paths multiply across kernels.  ``"numba"`` always appears: with
    the [jit] extra installed it exercises the compiled kernels for
    real, without it the one-time-warn fallback must reproduce the
    corpus unchanged (the acceptance contract for numba-less installs).
    """
    return ("numpy",) if mode == "serial" else ("numpy", "numba")


def _scenario_params():
    for name in golden_scenario_names():
        for mode in MODES:
            marks = [pytest.mark.slow] if name in SLOW_SCENARIOS else []
            for kernel in _kernels_for(mode):
                yield pytest.param(
                    name, mode, kernel, marks=marks, id=f"{name}-{mode}-{kernel}"
                )


@pytest.mark.parametrize("name,mode,kernel", _scenario_params())
def test_scenario_verdict_conformance(name, mode, kernel):
    golden = _load(name)
    overrides = None if kernel == "numpy" else {"kernel": kernel}
    projection = scenario_projection(name, mode, overrides)
    assert projection == golden["projection"], (
        f"{name} via the {mode} solver path (kernel={kernel}) diverges "
        f"from the golden verdict {golden['status']!r}"
    )
    assert projection_digest(projection) == golden["digest"]


def _paving_kernels_for(mode: str):
    # pyexec runs the generated per-row kernels in the plain interpreter:
    # genuine lowering coverage even without numba installed (it enters
    # through the internal DeltaSolver surface, not SolverOptions)
    return ("numpy",) if mode == "serial" else ("numpy", "numba", "pyexec")


def _paving_params():
    for problem in sorted(PAVING_PROBLEMS):
        for mode in sorted(MODES):
            for kernel in _paving_kernels_for(mode):
                yield pytest.param(
                    problem, mode, kernel, id=f"{problem}-{mode}-{kernel}"
                )


@pytest.mark.parametrize("problem,mode,kernel", _paving_params())
def test_paving_conformance(problem, mode, kernel):
    """Every solver path x kernel classifies byte-identical boxes."""
    golden = _load(f"paving-{problem}")
    overrides = None if kernel == "numpy" else {"kernel": kernel}
    result = paving_digest(problem, mode, overrides)
    assert result["counts"] == golden["counts"]
    assert result["digest"] == golden["digest"], (
        f"paving of {problem!r} via the {mode} path (kernel={kernel}) "
        "classified different boxes than the golden partition"
    )
