"""The execution engine: one entry point for every analysis.

Since the service redesign the engine is *job-oriented*:
``Engine.submit(spec)`` returns a :class:`~repro.service.jobs.JobHandle`
immediately -- poll its ``status``, block on ``result(timeout=...)``,
``cancel()`` it cooperatively, and read its ordered
:class:`~repro.progress.ProgressEvent` stream.  ``run`` and
``run_batch`` are thin synchronous wrappers over ``submit`` /
``submit_batch``, so every pre-existing caller keeps working unchanged.

Where the work runs is a pluggable
:class:`~repro.service.backends.ExecutorBackend` (``inline``,
``thread``, ``process``), selected per engine or per call.  The process
backend is the old ``run_batch`` parallelism: specs travel to workers
as JSON (nothing non-picklable crosses the boundary) and reports come
back the same way, in submission order; results are identical to serial
execution because every task is deterministic given its seed.

An optional content-addressed :class:`~repro.service.cache.ResultCache`
is consulted before any backend sees a spec: identical scenarios
(canonical spec hash, seed included) are served from cache,
byte-identical to the first run's report.
"""

from __future__ import annotations

import itertools
import threading
import time
import traceback
import warnings
from collections import OrderedDict
from typing import Callable, Iterable

from repro.progress import JobCancelled, ProgressEvent, progress_scope
from repro.service.backends import ExecutorBackend, make_backend
from repro.service.cache import ResultCache, spec_key
from repro.service.jobs import JobHandle, JobState
from repro.status import AnalysisStatus

from .report import AnalysisReport
from .spec import TaskSpec
from .tasks import get_task

__all__ = ["Engine", "run", "run_batch"]

#: Retained (mostly finished) jobs per engine before the oldest are evicted.
_MAX_JOBS = 4096


def _execute(spec: TaskSpec, seed_default: int | None) -> AnalysisReport:
    """Run one spec, timing it and converting failures to ERROR reports.

    :class:`JobCancelled` deliberately passes through the exception
    fence -- the service layer turns it into a cancelled job, not an
    error report.
    """
    if spec.seed is None and seed_default is not None:
        spec = spec.replace(seed=seed_default)
    t0 = time.perf_counter()
    try:
        report = get_task(spec.task).run(spec)
    except JobCancelled:
        raise
    except Exception as exc:  # a bad scenario must not kill the batch
        report = AnalysisReport(
            spec.task,
            AnalysisStatus.ERROR,
            detail=f"{type(exc).__name__}: {exc}",
            payload={"traceback": traceback.format_exc()},
        )
    report.wall_time = time.perf_counter() - t0
    report.name = report.name or spec.name
    if report.seed is None:
        report.seed = spec.seed
    return report


def _run_spec_json(payload: tuple[str, int | None]) -> str:
    """Process-pool worker: JSON spec in, JSON report out."""
    text, seed_default = payload
    return _execute(TaskSpec.from_json(text), seed_default).to_json()


def _cancelled_report(spec: TaskSpec) -> AnalysisReport:
    return AnalysisReport(
        spec.task,
        AnalysisStatus.CANCELLED,
        detail="job cancelled",
        name=spec.name,
        seed=spec.seed,
    )


class Engine:
    """Uniform dispatcher for declarative analysis specs.

    Parameters
    ----------
    workers:
        Default parallelism of pooled backends and of
        :meth:`run_batch` (``None``/``0``/``1`` means serial inline
        execution, as before).
    seed:
        Engine-level default seed, applied to specs whose own ``seed``
        is ``None`` -- one knob makes a whole sweep reproducible.
    backend:
        Default executor backend name (``"inline"``, ``"thread"``,
        ``"process"``).  ``None`` keeps the historical automatics:
        ``run``/single-spec batches inline, multi-spec batches with
        ``workers > 1`` on the process pool, ``submit`` on the thread
        pool (so a lone submit is still asynchronous).
    cache:
        Result cache: ``None`` disables, ``True`` enables an in-memory
        LRU, a path string enables the persistent on-disk store, or
        pass a :class:`ResultCache` (shareable between engines).
    progress:
        Optional engine-level sink ``(job, event) -> None`` receiving
        every job's progress events (the per-job stream on the
        :class:`JobHandle` is always recorded).
    progress_interval:
        Rate limit (seconds) per (source, stage) for delivered events;
        ``0`` delivers every event.  Cancellation is checked on every
        emit regardless.
    """

    def __init__(
        self,
        workers: int | None = None,
        seed: int | None = 0,
        *,
        backend: str | None = None,
        cache: ResultCache | str | bool | None = None,
        progress: Callable[[JobHandle, ProgressEvent], None] | None = None,
        progress_interval: float = 0.0,
    ):
        self.workers = workers
        self.seed = seed
        self.backend = backend
        self.progress = progress
        self.progress_interval = progress_interval
        if cache is None or cache is False:
            self.cache: ResultCache | None = None
        elif cache is True:
            self.cache = ResultCache()
        elif isinstance(cache, ResultCache):
            self.cache = cache
        else:
            self.cache = ResultCache(cache_dir=cache)
        self._backends: dict[tuple[str, int | None], ExecutorBackend] = {}
        self._jobs: OrderedDict[str, JobHandle] = OrderedDict()
        self._lock = threading.Lock()
        self._ids = itertools.count(1)

    # ------------------------------------------------------------------
    # The job-oriented surface
    # ------------------------------------------------------------------
    def submit(
        self,
        spec: TaskSpec | dict | str,
        backend: str | None = None,
        workers: int | None = None,
    ) -> JobHandle:
        """Submit one spec; returns a :class:`JobHandle` immediately.

        The default backend for a lone submit is the thread pool, so
        the call is asynchronous out of the box; pass
        ``backend="inline"`` to run synchronously in this thread.
        """
        name = backend or self.backend or "thread"
        return self._submit_one(self._resolve_spec(spec), name, workers)

    def submit_batch(
        self,
        specs: Iterable[TaskSpec | dict | str],
        workers: int | None = None,
        backend: str | None = None,
    ) -> list[JobHandle]:
        """Submit a scenario sweep; returns handles in submission order."""
        resolved = [self._resolve_spec(s) for s in specs]
        n = workers if workers is not None else self.workers
        name = backend or self.backend
        if name is None:  # historical automatics
            name = "process" if (n and n > 1 and len(resolved) > 1) else "inline"
        return [self._submit_one(s, name, n) for s in resolved]

    def job(self, job_id: str) -> JobHandle | None:
        """Look up a submitted job by id (jobs table / HTTP surface)."""
        with self._lock:
            return self._jobs.get(job_id)

    def jobs(self) -> list[JobHandle]:
        """All retained jobs, oldest first."""
        with self._lock:
            return list(self._jobs.values())

    # ------------------------------------------------------------------
    # Thin synchronous wrappers (the historical API, unchanged)
    # ------------------------------------------------------------------
    def run(self, spec: TaskSpec | dict | str) -> AnalysisReport:
        """Run one spec (a :class:`TaskSpec`, a spec dict, or a path to
        a scenario JSON file) and return its report."""
        job = self.submit(spec, backend="inline")
        report = job.result()
        self._forget(job)
        return report

    def run_batch(
        self,
        specs: Iterable[TaskSpec | dict | str],
        workers: int | None = None,
        backend: str | None = None,
    ) -> list[AnalysisReport]:
        """Run a scenario sweep, optionally across worker processes.

        Reports come back in the order specs were given, and are
        identical to what serial execution produces.
        """
        handles = self.submit_batch(specs, workers, backend)
        reports = [h.result() for h in handles]
        for h in handles:
            self._forget(h)
        return reports

    def _forget(self, job: JobHandle) -> None:
        # synchronous wrappers hand the report straight back; retaining
        # the finished JobHandle (report + events) would be a memory
        # regression for pre-redesign callers that loop over run()
        with self._lock:
            self._jobs.pop(job.id, None)

    # ------------------------------------------------------------------
    def close(self, wait: bool = True) -> None:
        """Shut down the engine's worker pools (idempotent)."""
        with self._lock:
            backends, self._backends = list(self._backends.values()), {}
        for b in backends:
            b.shutdown(wait=wait)

    def __enter__(self) -> "Engine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self) -> None:
        # pools must not outlive a dropped engine (pre-redesign run_batch
        # tore its pool down per call; callers never needed close())
        try:
            self.close(wait=False)
        except Exception:
            pass

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _resolve_spec(self, spec: TaskSpec | dict | str) -> TaskSpec:
        ts = self._coerce(spec)
        if ts.seed is None and self.seed is not None:
            ts = ts.replace(seed=self.seed)
        return ts

    def _submit_one(
        self, ts: TaskSpec, backend_name: str, workers: int | None
    ) -> JobHandle:
        with self._lock:
            job = JobHandle(f"j{next(self._ids):06d}", ts)
            self._jobs[job.id] = job
            if len(self._jobs) > _MAX_JOBS:
                # evict finished jobs oldest-first; skip (never drop) live
                # ones so a stuck head entry cannot pin the whole table
                for jid, old in list(self._jobs.items()):
                    if len(self._jobs) <= _MAX_JOBS:
                        break
                    if old.done():
                        del self._jobs[jid]

        key = spec_key(ts) if self.cache is not None else None
        if key is not None:
            cached = self.cache.get(key)
            if cached is not None:
                job.from_cache = True
                job.backend_name = "cache"
                self._emit_engine_event(job, "cache-hit")
                job._finish(cached, JobState.DONE)
                return job

        backend = self._backend(backend_name, workers)
        payload: str | None = None
        if backend.distributed:
            try:
                payload = ts.to_json()
            except (TypeError, ValueError):
                # Specs whose query holds live domain objects (a BLTL, a
                # TimeSeriesData, ...) cannot travel to a worker; make the
                # degraded parallelism visible instead of silent.
                warnings.warn(
                    f"spec {ts.name or ts.task!r} holds non-serializable query "
                    f"objects and cannot run on the {backend.name!r} backend; "
                    "running it serially in-process instead",
                    RuntimeWarning,
                    stacklevel=3,
                )
                backend = self._backend("inline", None)
        job.backend_name = backend.name

        if backend.distributed:
            self._emit_engine_event(job, "dispatch")
            job._mark_running()  # in-flight to a worker process
            future = backend.submit(_run_spec_json, (payload, None))
            job._future = future
            future.add_done_callback(lambda f: self._finish_remote(job, key, f))
        else:
            future = backend.submit(self._run_job, job, ts, key)
            job._future = future
            # a queued thread-pool future can be cancelled before _run_job
            # ever starts; make sure the job still reaches a terminal state
            future.add_done_callback(
                lambda f: f.cancelled()
                and job._finish(_cancelled_report(ts), JobState.CANCELLED)
            )
        return job

    def _run_job(self, job: JobHandle, ts: TaskSpec, key: str | None) -> None:
        """Inline/thread worker: progress scope, cache store, job finish."""
        if job.cancel_requested:
            job._finish(_cancelled_report(ts), JobState.CANCELLED)
            return
        job._mark_running()
        sink = self._make_sink(job)
        try:
            with progress_scope(
                sink=sink, cancel=job._cancel, interval=self.progress_interval
            ):
                report = _execute(ts, None)
        except JobCancelled:
            job._finish(_cancelled_report(ts), JobState.CANCELLED)
            return
        except Exception as exc:  # infrastructure failure, not a task error
            job._finish(
                AnalysisReport(
                    ts.task,
                    AnalysisStatus.ERROR,
                    detail=f"{type(exc).__name__}: {exc}",
                    name=ts.name,
                ),
                JobState.FAILED,
            )
            return
        self._store(key, report)
        job._finish(report, JobState.DONE)

    def _finish_remote(self, job: JobHandle, key: str | None, future) -> None:
        """Done-callback for process-backend futures.

        Must never raise: concurrent.futures swallows callback
        exceptions, which would leave the job non-terminal and hang
        every ``result()`` waiter.
        """
        try:
            if future.cancelled():
                job._finish(_cancelled_report(job.spec), JobState.CANCELLED)
                return
            exc = future.exception()
            if exc is not None:
                job._finish(
                    AnalysisReport(
                        job.spec.task,
                        AnalysisStatus.ERROR,
                        detail=f"{type(exc).__name__}: {exc}",
                        name=job.spec.name,
                    ),
                    JobState.FAILED,
                )
                return
            report = AnalysisReport.from_json(future.result())
            if job.cancel_requested:
                # the worker could not be interrupted; honor the request anyway
                job._finish(_cancelled_report(job.spec), JobState.CANCELLED)
                return
            self._store(key, report)
            job._finish(report, JobState.DONE)
        except Exception as exc:
            job._finish(
                AnalysisReport(
                    job.spec.task,
                    AnalysisStatus.ERROR,
                    detail=f"{type(exc).__name__}: {exc}",
                    name=job.spec.name,
                ),
                JobState.FAILED,
            )

    def _store(self, key: str | None, report: AnalysisReport) -> None:
        if (
            key is not None
            and self.cache is not None
            and report.status
            not in (AnalysisStatus.ERROR, AnalysisStatus.CANCELLED)
        ):
            try:
                self.cache.put(key, report)
            except OSError as exc:
                # a broken cache store must not lose a finished report
                warnings.warn(
                    f"result cache write failed ({exc}); continuing uncached",
                    RuntimeWarning,
                    stacklevel=2,
                )

    def _make_sink(self, job: JobHandle) -> Callable[[ProgressEvent], None]:
        def sink(event: ProgressEvent) -> None:
            job._record(event)
            if self.progress is not None:
                self.progress(job, event)

        return sink

    def _emit_engine_event(self, job: JobHandle, stage: str) -> None:
        event = ProgressEvent("engine", stage, time=time.time())
        job._record(event)
        if self.progress is not None:
            self.progress(job, event)

    def _backend(self, name: str, workers: int | None) -> ExecutorBackend:
        n = workers if workers is not None else self.workers
        key = (name, n if name != "inline" else None)
        with self._lock:
            backend = self._backends.get(key)
            if backend is None:
                backend = make_backend(name, n)
                self._backends[key] = backend
            return backend

    # ------------------------------------------------------------------
    @staticmethod
    def _coerce(spec: TaskSpec | dict | str) -> TaskSpec:
        if isinstance(spec, TaskSpec):
            return spec
        if isinstance(spec, str):
            return TaskSpec.from_file(spec)
        return TaskSpec.from_dict(spec)


def run(spec: TaskSpec | dict | str, seed: int | None = 0) -> AnalysisReport:
    """Module-level convenience: ``Engine(seed=seed).run(spec)``."""
    return Engine(seed=seed).run(spec)


def run_batch(
    specs: Iterable[TaskSpec | dict | str],
    workers: int | None = None,
    seed: int | None = 0,
) -> list[AnalysisReport]:
    """Module-level convenience: ``Engine(workers, seed).run_batch(specs)``."""
    return Engine(workers=workers, seed=seed).run_batch(specs)
