"""The execution engine: one entry point for every analysis.

Since the service redesign the engine is *job-oriented*:
``Engine.submit(spec)`` returns a :class:`~repro.service.jobs.JobHandle`
immediately -- poll its ``status``, block on ``result(timeout=...)``,
``cancel()`` it cooperatively, and read its ordered
:class:`~repro.progress.ProgressEvent` stream.  ``run`` and
``run_batch`` are thin synchronous wrappers over ``submit`` /
``submit_batch``, so every pre-existing caller keeps working unchanged.

Where the work runs is a pluggable
:class:`~repro.service.backends.ExecutorBackend` (``inline``,
``thread``, ``process``), selected per engine or per call.  The process
backend is the old ``run_batch`` parallelism: specs travel to workers
as JSON (nothing non-picklable crosses the boundary) and reports come
back the same way, in submission order; results are identical to serial
execution because every task is deterministic given its seed.

An optional content-addressed :class:`~repro.service.cache.ResultCache`
is consulted before any backend sees a spec: identical scenarios
(canonical spec hash, seed included) are served from cache,
byte-identical to the first run's report.

With ``dedup=True`` the cache gains a single-flight layer
(:class:`~repro.cluster.singleflight.SingleFlight`): identical specs
submitted *while* the first is still solving collapse onto one leader
solve -- followers do no work, receive forwarded copies of the
leader's progress events, and land with byte-identical report copies
the moment the leader finishes.  The service layer enables this by
default; plain engines keep the historical one-solve-per-submit
behavior.
"""

from __future__ import annotations

import dataclasses
import itertools
import os
import threading
import time
import traceback
import warnings
from collections import OrderedDict
from typing import Callable, Iterable

from repro.progress import JobCancelled, ProgressEvent, progress_scope
from repro.service.backends import ExecutorBackend, make_backend
from repro.service.cache import ResultCache, spec_key
from repro.service.jobs import JobHandle, JobState
from repro.status import AnalysisStatus

from .report import AnalysisReport
from .spec import TaskSpec
from .tasks import get_task

__all__ = ["Engine", "run", "run_batch"]

#: Retained (mostly finished) jobs per engine before the oldest are evicted.
_MAX_JOBS = 4096


def _execute(spec: TaskSpec, seed_default: int | None) -> AnalysisReport:
    """Run one spec, timing it and converting failures to ERROR reports.

    :class:`JobCancelled` deliberately passes through the exception
    fence -- the service layer turns it into a cancelled job, not an
    error report.
    """
    if spec.seed is None and seed_default is not None:
        spec = spec.replace(seed=seed_default)
    t0 = time.perf_counter()
    try:
        report = get_task(spec.task).run(spec)
    except JobCancelled:
        raise
    except Exception as exc:  # a bad scenario must not kill the batch
        report = AnalysisReport(
            spec.task,
            AnalysisStatus.ERROR,
            detail=f"{type(exc).__name__}: {exc}",
            payload={"traceback": traceback.format_exc()},
        )
    report.wall_time = time.perf_counter() - t0
    report.name = report.name or spec.name
    if report.seed is None:
        report.seed = spec.seed
    return report


def _run_spec_json(payload: tuple[str, int | None]) -> str:
    """Process-pool worker: JSON spec in, JSON report out."""
    text, seed_default = payload
    return _execute(TaskSpec.from_json(text), seed_default).to_json()


def _cancelled_report(spec: TaskSpec) -> AnalysisReport:
    return AnalysisReport(
        spec.task,
        AnalysisStatus.CANCELLED,
        detail="job cancelled",
        name=spec.name,
        seed=spec.seed,
    )


class Engine:
    """Uniform dispatcher for declarative analysis specs.

    Parameters
    ----------
    workers:
        Default parallelism of pooled backends and of
        :meth:`run_batch` (``None``/``0``/``1`` means serial inline
        execution, as before).
    seed:
        Engine-level default seed, applied to specs whose own ``seed``
        is ``None`` -- one knob makes a whole sweep reproducible.
    backend:
        Default executor backend name (``"inline"``, ``"thread"``,
        ``"process"``).  ``None`` keeps the historical automatics:
        ``run``/single-spec batches inline, multi-spec batches with
        ``workers > 1`` on the process pool, ``submit`` on the thread
        pool (so a lone submit is still asynchronous).
    cache:
        Result cache: ``None`` disables, ``True`` enables an in-memory
        LRU, a path string enables the persistent on-disk store, or
        pass a :class:`ResultCache` (shareable between engines).
    progress:
        Optional engine-level sink ``(job, event) -> None`` receiving
        every job's progress events (the per-job stream on the
        :class:`JobHandle` is always recorded).
    progress_interval:
        Rate limit (seconds) per (source, stage) for delivered events;
        ``0`` delivers every event.  Cancellation is checked on every
        emit regardless.
    dedup:
        Enable single-flight dedup of identical in-flight specs (the
        service layer turns this on; default off to preserve the
        one-solve-per-submit behavior of plain engines).
    on_job_done:
        Optional hook ``(job) -> None`` fired exactly once per job on
        its terminal transition, whatever path finished it (worker,
        cache hit, follower landing, cancellation).  The service layer
        journals terminal reports through this.
    job_prefix:
        Prefix of generated job ids (service replicas use distinct
        prefixes so N replicas sharing one job store cannot collide).
    paving_store:
        Directory of persistent solve/pave artifacts for warm-started
        re-solves (:mod:`repro.solver.incremental`); injected into the
        solver options of every spec that leaves ``paving_store``
        unset, so near-identical re-submissions reuse stored pavings
        even when the result cache misses.  ``None`` disables.
    """

    def __init__(
        self,
        workers: int | None = None,
        seed: int | None = 0,
        *,
        backend: str | None = None,
        cache: ResultCache | str | bool | None = None,
        progress: Callable[[JobHandle, ProgressEvent], None] | None = None,
        progress_interval: float = 0.0,
        dedup: bool = False,
        on_job_done: Callable[[JobHandle], None] | None = None,
        job_prefix: str = "j",
        paving_store: str | None = None,
    ):
        self.workers = workers
        self.seed = seed
        self.backend = backend
        self.progress = progress
        self.progress_interval = progress_interval
        self.on_job_done = on_job_done
        self.job_prefix = job_prefix
        self.paving_store = os.fspath(paving_store) if paving_store is not None else None
        if dedup:
            from repro.cluster.singleflight import SingleFlight

            self._flights: "SingleFlight | None" = SingleFlight()
        else:
            self._flights = None
        if cache is None or cache is False:
            self.cache: ResultCache | None = None
        elif cache is True:
            self.cache = ResultCache()
        elif isinstance(cache, ResultCache):
            self.cache = cache
        else:
            self.cache = ResultCache(cache_dir=cache)
        self._backends: dict[tuple[str, int | None], ExecutorBackend] = {}
        self._jobs: OrderedDict[str, JobHandle] = OrderedDict()
        self._lock = threading.Lock()
        self._ids = itertools.count(1)

    # ------------------------------------------------------------------
    # The job-oriented surface
    # ------------------------------------------------------------------
    def submit(
        self,
        spec: TaskSpec | dict | str,
        backend: str | None = None,
        workers: int | None = None,
    ) -> JobHandle:
        """Submit one spec; returns a :class:`JobHandle` immediately.

        The default backend for a lone submit is the thread pool, so
        the call is asynchronous out of the box; pass
        ``backend="inline"`` to run synchronously in this thread.
        """
        name = backend or self.backend or "thread"
        return self._submit_one(self._resolve_spec(spec), name, workers)

    def submit_batch(
        self,
        specs: Iterable[TaskSpec | dict | str],
        workers: int | None = None,
        backend: str | None = None,
    ) -> list[JobHandle]:
        """Submit a scenario sweep; returns handles in submission order."""
        resolved = [self._resolve_spec(s) for s in specs]
        n = workers if workers is not None else self.workers
        name = backend or self.backend
        if name is None:  # historical automatics
            name = "process" if (n and n > 1 and len(resolved) > 1) else "inline"
        return [self._submit_one(s, name, n) for s in resolved]

    def job(self, job_id: str) -> JobHandle | None:
        """Look up a submitted job by id (jobs table / HTTP surface)."""
        with self._lock:
            return self._jobs.get(job_id)

    def jobs(self) -> list[JobHandle]:
        """All retained jobs, oldest first."""
        with self._lock:
            return list(self._jobs.values())

    # ------------------------------------------------------------------
    # Thin synchronous wrappers (the historical API, unchanged)
    # ------------------------------------------------------------------
    def run(self, spec: TaskSpec | dict | str) -> AnalysisReport:
        """Run one spec (a :class:`TaskSpec`, a spec dict, or a path to
        a scenario JSON file) and return its report."""
        job = self.submit(spec, backend="inline")
        report = job.result()
        self._forget(job)
        return report

    def run_batch(
        self,
        specs: Iterable[TaskSpec | dict | str],
        workers: int | None = None,
        backend: str | None = None,
    ) -> list[AnalysisReport]:
        """Run a scenario sweep, optionally across worker processes.

        Reports come back in the order specs were given, and are
        identical to what serial execution produces.
        """
        handles = self.submit_batch(specs, workers, backend)
        reports = [h.result() for h in handles]
        for h in handles:
            self._forget(h)
        return reports

    def _forget(self, job: JobHandle) -> None:
        # synchronous wrappers hand the report straight back; retaining
        # the finished JobHandle (report + events) would be a memory
        # regression for pre-redesign callers that loop over run()
        with self._lock:
            self._jobs.pop(job.id, None)

    # ------------------------------------------------------------------
    def close(self, wait: bool = True) -> None:
        """Shut down the engine's worker pools (idempotent)."""
        with self._lock:
            backends, self._backends = list(self._backends.values()), {}
        for b in backends:
            b.shutdown(wait=wait)

    def __enter__(self) -> "Engine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self) -> None:
        # pools must not outlive a dropped engine (pre-redesign run_batch
        # tore its pool down per call; callers never needed close())
        try:
            self.close(wait=False)
        except Exception:
            pass

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _resolve_spec(self, spec: TaskSpec | dict | str) -> TaskSpec:
        ts = self._coerce(spec)
        if ts.seed is None and self.seed is not None:
            ts = ts.replace(seed=self.seed)
        if self.paving_store is not None and ts.solver.paving_store is None:
            ts = ts.replace(
                solver=dataclasses.replace(ts.solver, paving_store=self.paving_store)
            )
        return ts

    def _submit_one(
        self, ts: TaskSpec, backend_name: str, workers: int | None
    ) -> JobHandle:
        job = self._new_job(ts)
        job._backend_args = (backend_name, workers)
        if self._fast_path(job):
            return job
        self._dispatch_backend(job, backend_name, workers)
        return job

    def _new_job(self, ts: TaskSpec, job_id: str | None = None) -> JobHandle:
        """Register a fresh (undispatched) job in the jobs table."""
        with self._lock:
            if job_id is None:
                while True:  # skip ids recovered from a shared job store
                    job_id = f"{self.job_prefix}{next(self._ids):06d}"
                    if job_id not in self._jobs:
                        break
            job = JobHandle(job_id, ts)
            self._jobs[job.id] = job
            if len(self._jobs) > _MAX_JOBS:
                # evict finished jobs oldest-first; skip (never drop) live
                # ones so a stuck head entry cannot pin the whole table
                for jid, old in list(self._jobs.items()):
                    if len(self._jobs) <= _MAX_JOBS:
                        break
                    if old.done():
                        del self._jobs[jid]
        return job

    # -- deferred dispatch (the service scheduler queues, then releases) --
    def submit_deferred(
        self, spec: TaskSpec | dict | str, job_id: str | None = None
    ) -> JobHandle:
        """Register a job *without* dispatching it.

        The job stays PENDING until :meth:`dispatch` releases it (or
        :meth:`cancel_undispatched` retires it).  The service layer
        uses this to apply admission control and fair scheduling
        before any backend sees the spec; ``job_id`` lets a restarting
        server re-register journaled jobs under their original ids.
        """
        return self._new_job(self._resolve_spec(spec), job_id=job_id)

    def dispatch(
        self,
        job: JobHandle,
        backend: str | None = None,
        workers: int | None = None,
    ) -> None:
        """Release a deferred job (cache and single-flight still apply).

        Never raises: a failure to dispatch (an unknown backend name, a
        backend that cannot start) finishes the job with an ERROR
        report via :meth:`fail_dispatch` instead, so scheduler loops
        above can rely on every released job reaching a terminal state
        -- an exception escaping here would leak the job's concurrency
        slot and strand its waiters.
        """
        if job.cancel_requested:
            self._finish_job(job, _cancelled_report(job.spec), JobState.CANCELLED)
            return
        name = backend or self.backend or "thread"
        job._backend_args = (name, workers)
        try:
            if self._fast_path(job):
                return
            self._dispatch_backend(job, name, workers)
        except Exception as exc:
            self.fail_dispatch(job, exc)

    def fail_dispatch(self, job: JobHandle, exc: BaseException) -> None:
        """Finish a job whose dispatch failed with an ERROR report."""
        self._finish_job(
            job,
            AnalysisReport(
                job.spec.task,
                AnalysisStatus.ERROR,
                detail=f"dispatch failed: {type(exc).__name__}: {exc}",
                name=job.spec.name,
            ),
            JobState.FAILED,
        )

    def cancel_undispatched(self, job: JobHandle) -> None:
        """Retire a deferred job that will never dispatch."""
        self._finish_job(job, _cancelled_report(job.spec), JobState.CANCELLED)

    def _fast_path(self, job: JobHandle) -> bool:
        """Serve a job without compute: cache hit or single-flight follow.

        Returns ``True`` if the job needs no dispatch -- it finished
        from cache, or it attached as a follower of an identical
        in-flight leader and will land when the leader does.
        """
        ts = job.spec
        want_key = self.cache is not None or self._flights is not None
        key = spec_key(ts) if want_key else None
        job._cache_key = key
        if key is not None and self.cache is not None:
            cached = self.cache.get(key)
            if cached is not None:
                job.from_cache = True
                job.backend_name = "cache"
                self._emit_engine_event(job, "cache-hit")
                self._finish_job(job, cached, JobState.DONE)
                return True
        if key is not None and self._flights is not None:
            leader = self._flights.lead_or_follow(key, job)
            if leader is not None:
                job.backend_name = "single-flight"
                self._emit_engine_event(job, "follow")
                # a cancelled follower must detach (and terminate) itself;
                # nothing else ever finishes it before the leader lands
                job._on_cancel = lambda: (
                    self._flights.detach(key, job)
                    and self._finish_job(
                        job, _cancelled_report(ts), JobState.CANCELLED
                    )
                )
                return True
        return False

    def _dispatch_backend(
        self, job: JobHandle, backend_name: str, workers: int | None
    ) -> None:
        ts, key = job.spec, job._cache_key
        backend = self._backend(backend_name, workers)
        payload: str | None = None
        if backend.distributed:
            try:
                payload = ts.to_json()
            except (TypeError, ValueError):
                # Specs whose query holds live domain objects (a BLTL, a
                # TimeSeriesData, ...) cannot travel to a worker; make the
                # degraded parallelism visible instead of silent.
                warnings.warn(
                    f"spec {ts.name or ts.task!r} holds non-serializable query "
                    f"objects and cannot run on the {backend.name!r} backend; "
                    "running it serially in-process instead",
                    RuntimeWarning,
                    stacklevel=3,
                )
                backend = self._backend("inline", None)
        job.backend_name = backend.name

        if backend.distributed:
            self._emit_engine_event(job, "dispatch")
            job._mark_running()  # in-flight to a worker process
            future = backend.submit(_run_spec_json, (payload, None))
            job._future = future
            future.add_done_callback(lambda f: self._finish_remote(job, key, f))
        else:
            future = backend.submit(self._run_job, job, ts, key)
            job._future = future
            # a queued thread-pool future can be cancelled before _run_job
            # ever starts; make sure the job still reaches a terminal state
            future.add_done_callback(
                lambda f: f.cancelled()
                and self._finish_job(job, _cancelled_report(ts), JobState.CANCELLED)
            )

    def _finish_job(
        self, job: JobHandle, report: AnalysisReport, state: JobState
    ) -> bool:
        """Route EVERY terminal transition: land followers, fire the hook.

        Idempotent like :meth:`JobHandle._finish`; only the first
        finisher lands followers and fires ``on_job_done``.
        """
        if not job._finish(report, state):
            return False
        key = job._cache_key
        if self._flights is not None and key is not None:
            for follower in self._flights.land(key, job):
                if state is JobState.CANCELLED:
                    # the LEADER was cancelled, not the followers' work:
                    # re-run their fast path (one becomes the new leader)
                    if not self._fast_path(follower):
                        self._dispatch_backend(follower, *follower._backend_args)
                else:
                    copy = AnalysisReport.from_json(report.to_json())
                    self._finish_job(follower, copy, state)
        self._fire_done(job)
        return True

    def _fire_done(self, job: JobHandle) -> None:
        if self.on_job_done is None:
            return
        try:
            self.on_job_done(job)
        except Exception as exc:  # a broken hook must not hang waiters
            warnings.warn(
                f"on_job_done hook failed for {job.id}: "
                f"{type(exc).__name__}: {exc}",
                RuntimeWarning,
                stacklevel=2,
            )

    def dedup_stats(self) -> dict | None:
        """Single-flight counters (``None`` when dedup is disabled)."""
        return None if self._flights is None else self._flights.stats()

    def paving_store_stats(self) -> dict | None:
        """Paving-store reuse counters (``None`` when no store is set).

        Counters aggregate per store path per process; sharded solves on
        the process backend run in worker processes whose counters are
        not visible here (the default thread/inline paths are).
        """
        if self.paving_store is None:
            return None
        from repro.solver.incremental import get_store

        stats = get_store(self.paving_store).stats()
        stats["path"] = self.paving_store
        return stats

    def _run_job(self, job: JobHandle, ts: TaskSpec, key: str | None) -> None:
        """Inline/thread worker: progress scope, cache store, job finish."""
        if job.cancel_requested:
            self._finish_job(job, _cancelled_report(ts), JobState.CANCELLED)
            return
        job._mark_running()
        sink = self._make_sink(job)
        try:
            with progress_scope(
                sink=sink, cancel=job._cancel, interval=self.progress_interval
            ):
                report = _execute(ts, None)
        except JobCancelled:
            self._finish_job(job, _cancelled_report(ts), JobState.CANCELLED)
            return
        except Exception as exc:  # infrastructure failure, not a task error
            self._finish_job(
                job,
                AnalysisReport(
                    ts.task,
                    AnalysisStatus.ERROR,
                    detail=f"{type(exc).__name__}: {exc}",
                    name=ts.name,
                ),
                JobState.FAILED,
            )
            return
        self._store(key, report)
        self._finish_job(job, report, JobState.DONE)

    def _finish_remote(self, job: JobHandle, key: str | None, future) -> None:
        """Done-callback for process-backend futures.

        Must never raise: concurrent.futures swallows callback
        exceptions, which would leave the job non-terminal and hang
        every ``result()`` waiter.
        """
        try:
            if future.cancelled():
                self._finish_job(job, _cancelled_report(job.spec), JobState.CANCELLED)
                return
            exc = future.exception()
            if exc is not None:
                self._finish_job(
                    job,
                    AnalysisReport(
                        job.spec.task,
                        AnalysisStatus.ERROR,
                        detail=f"{type(exc).__name__}: {exc}",
                        name=job.spec.name,
                    ),
                    JobState.FAILED,
                )
                return
            report = AnalysisReport.from_json(future.result())
            if job.cancel_requested:
                # the worker could not be interrupted; honor the request anyway
                self._finish_job(job, _cancelled_report(job.spec), JobState.CANCELLED)
                return
            self._store(key, report)
            self._finish_job(job, report, JobState.DONE)
        except Exception as exc:
            self._finish_job(
                job,
                AnalysisReport(
                    job.spec.task,
                    AnalysisStatus.ERROR,
                    detail=f"{type(exc).__name__}: {exc}",
                    name=job.spec.name,
                ),
                JobState.FAILED,
            )

    def _store(self, key: str | None, report: AnalysisReport) -> None:
        if (
            key is not None
            and self.cache is not None
            and report.status
            not in (AnalysisStatus.ERROR, AnalysisStatus.CANCELLED)
        ):
            try:
                self.cache.put(key, report)
            except OSError as exc:
                # a broken cache store must not lose a finished report
                warnings.warn(
                    f"result cache write failed ({exc}); continuing uncached",
                    RuntimeWarning,
                    stacklevel=2,
                )

    def _make_sink(self, job: JobHandle) -> Callable[[ProgressEvent], None]:
        key = job._cache_key

        def sink(event: ProgressEvent) -> None:
            job._record(event)
            if self.progress is not None:
                self.progress(job, event)
            if self._flights is not None and key is not None:
                # followers see the leader's progress as their own stream
                # (copies: _record stamps job_id/seq per handle)
                for follower in self._flights.followers_of(key, job):
                    follower._record(dataclasses.replace(event))

        return sink

    def _emit_engine_event(self, job: JobHandle, stage: str) -> None:
        event = ProgressEvent("engine", stage, time=time.time())
        job._record(event)
        if self.progress is not None:
            self.progress(job, event)

    def _backend(self, name: str, workers: int | None) -> ExecutorBackend:
        n = workers if workers is not None else self.workers
        key = (name, n if name != "inline" else None)
        with self._lock:
            backend = self._backends.get(key)
            if backend is None:
                backend = make_backend(name, n)
                self._backends[key] = backend
            return backend

    # ------------------------------------------------------------------
    @staticmethod
    def _coerce(spec: TaskSpec | dict | str) -> TaskSpec:
        if isinstance(spec, TaskSpec):
            return spec
        if isinstance(spec, str):
            return TaskSpec.from_file(spec)
        return TaskSpec.from_dict(spec)


def run(spec: TaskSpec | dict | str, seed: int | None = 0) -> AnalysisReport:
    """Module-level convenience: ``Engine(seed=seed).run(spec)``."""
    return Engine(seed=seed).run(spec)


def run_batch(
    specs: Iterable[TaskSpec | dict | str],
    workers: int | None = None,
    seed: int | None = 0,
) -> list[AnalysisReport]:
    """Module-level convenience: ``Engine(workers, seed).run_batch(specs)``."""
    return Engine(workers=workers, seed=seed).run_batch(specs)
