"""The execution engine: one entry point for every analysis.

``Engine.run`` dispatches a :class:`TaskSpec` through the task registry
and wraps the outcome (or failure) in an :class:`AnalysisReport`.
``Engine.run_batch`` fans a scenario sweep out over a
:class:`concurrent.futures.ProcessPoolExecutor`: specs travel to the
workers as JSON (so nothing non-picklable crosses the process
boundary) and reports come back the same way, in submission order.
Results are identical to serial execution because every task is
deterministic given its seed.
"""

from __future__ import annotations

import time
import traceback
from concurrent.futures import ProcessPoolExecutor
from typing import Iterable, Sequence

from repro.status import AnalysisStatus

from .report import AnalysisReport
from .spec import TaskSpec
from .tasks import get_task

__all__ = ["Engine", "run", "run_batch"]


def _execute(spec: TaskSpec, seed_default: int | None) -> AnalysisReport:
    """Run one spec, timing it and converting failures to ERROR reports."""
    if spec.seed is None and seed_default is not None:
        spec = TaskSpec(
            task=spec.task, model=spec.model, query=spec.query,
            solver=spec.solver, sim=spec.sim, seed=seed_default, name=spec.name,
        )
    t0 = time.perf_counter()
    try:
        report = get_task(spec.task).run(spec)
    except Exception as exc:  # a bad scenario must not kill the batch
        report = AnalysisReport(
            spec.task,
            AnalysisStatus.ERROR,
            detail=f"{type(exc).__name__}: {exc}",
            payload={"traceback": traceback.format_exc()},
        )
    report.wall_time = time.perf_counter() - t0
    report.name = report.name or spec.name
    if report.seed is None:
        report.seed = spec.seed
    return report


def _run_spec_json(payload: tuple[str, int | None]) -> str:
    """Process-pool worker: JSON spec in, JSON report out."""
    text, seed_default = payload
    return _execute(TaskSpec.from_json(text), seed_default).to_json()


class Engine:
    """Uniform dispatcher for declarative analysis specs.

    Parameters
    ----------
    workers:
        Default parallelism of :meth:`run_batch` (``None``/``0``/``1``
        means serial execution in-process).
    seed:
        Engine-level default seed, applied to specs whose own ``seed``
        is ``None`` -- one knob makes a whole sweep reproducible.
    """

    def __init__(self, workers: int | None = None, seed: int | None = 0):
        self.workers = workers
        self.seed = seed

    # ------------------------------------------------------------------
    def run(self, spec: TaskSpec | dict | str) -> AnalysisReport:
        """Run one spec (a :class:`TaskSpec`, a spec dict, or a path to
        a scenario JSON file) and return its report."""
        return _execute(self._coerce(spec), self.seed)

    def run_batch(
        self,
        specs: Iterable[TaskSpec | dict | str],
        workers: int | None = None,
    ) -> list[AnalysisReport]:
        """Run a scenario sweep, optionally across worker processes.

        Reports come back in the order specs were given, and are
        identical to what serial execution produces.
        """
        resolved: Sequence[TaskSpec] = [self._coerce(s) for s in specs]
        n = workers if workers is not None else self.workers
        if not n or n <= 1 or len(resolved) <= 1:
            return [_execute(s, self.seed) for s in resolved]
        # Specs whose query holds live domain objects (a BLTL, a
        # TimeSeriesData, ...) cannot travel to a worker; run those
        # in-process instead of killing the batch.
        payloads: list[tuple[int, str]] = []
        local: list[int] = []
        for i, s in enumerate(resolved):
            try:
                payloads.append((i, s.to_json()))
            except TypeError:
                local.append(i)
        reports: list[AnalysisReport | None] = [None] * len(resolved)
        if payloads:
            with ProcessPoolExecutor(max_workers=n) as pool:
                texts = pool.map(
                    _run_spec_json, [(p, self.seed) for _, p in payloads]
                )
                for (i, _), text in zip(payloads, texts):
                    reports[i] = AnalysisReport.from_json(text)
        for i in local:
            reports[i] = _execute(resolved[i], self.seed)
        return reports

    # ------------------------------------------------------------------
    @staticmethod
    def _coerce(spec: TaskSpec | dict | str) -> TaskSpec:
        if isinstance(spec, TaskSpec):
            return spec
        if isinstance(spec, str):
            return TaskSpec.from_file(spec)
        return TaskSpec.from_dict(spec)


def run(spec: TaskSpec | dict | str, seed: int | None = 0) -> AnalysisReport:
    """Module-level convenience: ``Engine(seed=seed).run(spec)``."""
    return Engine(seed=seed).run(spec)


def run_batch(
    specs: Iterable[TaskSpec | dict | str],
    workers: int | None = None,
    seed: int | None = 0,
) -> list[AnalysisReport]:
    """Module-level convenience: ``Engine(workers, seed).run_batch(specs)``."""
    return Engine(workers=workers, seed=seed).run_batch(specs)
