"""Declarative query codec: JSON values <-> domain objects.

Task queries are plain dicts so scenarios can live in version-controlled
JSON files.  This module converts the recurring value shapes:

* **formulas** -- either the native ``{"op": ...}`` tree of
  :mod:`repro.io.native`, a comparison string (``"x >= 0.5"``,
  ``"x - y < 2"``), or a list of either (conjunction);
* **BLTL properties** -- ``{"op": "G"|"F"|"U"|"at"|"prop"|...}`` trees
  over formula leaves;
* **time-series data** -- ``{"samples": ...}`` or ``{"checkpoints":
  ...}`` for the calibration/pipeline tasks;
* **bounds** -- ``{"x": [lo, hi]}`` dicts for parameter ranges,
  regions and disturbances.
"""

from __future__ import annotations

import re
from typing import Any, Mapping, Sequence

from repro.apps import Checkpoint, TimeSeriesData
from repro.expr import parse_expr
from repro.io import formula_from_dict, formula_to_dict
from repro.logic import And, Atom, Formula
from repro.smc import (
    BLTL,
    Always,
    AndOp,
    At,
    Eventually,
    NotOp,
    OrOp,
    Prop,
    Until,
)

__all__ = [
    "formula_from_value",
    "formula_to_value",
    "bltl_from_value",
    "bltl_to_value",
    "timeseries_from_value",
    "timeseries_to_value",
    "bounds_from_value",
    "bounds_to_value",
]


# ----------------------------------------------------------------------
# formulas
# ----------------------------------------------------------------------

_COMPARISON = re.compile(r"(.+?)(<=|>=|<|>)(.+)")


def _formula_from_str(text: str) -> Formula:
    """Parse ``"lhs OP rhs"`` into an L_RF atom (``t >= 0`` form)."""
    m = _COMPARISON.fullmatch(text.strip())
    if not m:
        raise ValueError(
            f"cannot parse formula string {text!r}; expected 'lhs <op> rhs' "
            "with <op> one of <=, >=, <, >"
        )
    lhs, op, rhs = (parse_expr(m.group(1)), m.group(2), parse_expr(m.group(3)))
    term = lhs - rhs if op in (">", ">=") else rhs - lhs
    return Atom(term, strict=op in ("<", ">"))


def formula_from_value(value: Any) -> Formula:
    """Build a formula from a dict tree, comparison string or list."""
    if isinstance(value, Formula):
        return value
    if isinstance(value, str):
        return _formula_from_str(value)
    if isinstance(value, Mapping):
        return formula_from_dict(dict(value))
    if isinstance(value, Sequence):
        return And(*[formula_from_value(v) for v in value])
    raise TypeError(f"cannot interpret {value!r} as a formula")


def formula_to_value(phi: Formula) -> dict[str, Any]:
    """Serialize a formula to its native dict tree."""
    return formula_to_dict(phi)


# ----------------------------------------------------------------------
# BLTL
# ----------------------------------------------------------------------


def bltl_from_value(value: Any) -> BLTL:
    """Build a BLTL property from its dict tree (formula leaves accept
    every form of :func:`formula_from_value`)."""
    if isinstance(value, BLTL):
        return value
    if isinstance(value, (str, list)):
        return Prop(formula_from_value(value))
    if not isinstance(value, Mapping):
        raise TypeError(f"cannot interpret {value!r} as a BLTL property")
    op = str(value.get("op", "")).lower()
    if op == "prop":
        return Prop(formula_from_value(value["formula"]))
    if op == "not":
        return NotOp(bltl_from_value(value["arg"]))
    if op == "and":
        left, right = value["args"]
        return AndOp(bltl_from_value(left), bltl_from_value(right))
    if op == "or":
        left, right = value["args"]
        return OrOp(bltl_from_value(left), bltl_from_value(right))
    if op in ("f", "eventually"):
        return Eventually(float(value["bound"]), bltl_from_value(value["arg"]))
    if op in ("g", "always"):
        return Always(float(value["bound"]), bltl_from_value(value["arg"]))
    if op in ("u", "until"):
        left, right = value["args"]
        return Until(
            float(value["bound"]), bltl_from_value(left), bltl_from_value(right)
        )
    if op == "at":
        return At(float(value["offset"]), bltl_from_value(value["arg"]))
    raise ValueError(f"unknown BLTL op {value.get('op')!r}")


def bltl_to_value(phi: BLTL) -> dict[str, Any]:
    """Serialize a BLTL property to its dict tree."""
    if isinstance(phi, Prop):
        return {"op": "prop", "formula": formula_to_value(phi.formula)}
    if isinstance(phi, NotOp):
        return {"op": "not", "arg": bltl_to_value(phi.arg)}
    if isinstance(phi, AndOp):
        return {"op": "and", "args": [bltl_to_value(phi.left), bltl_to_value(phi.right)]}
    if isinstance(phi, OrOp):
        return {"op": "or", "args": [bltl_to_value(phi.left), bltl_to_value(phi.right)]}
    if isinstance(phi, Eventually):
        return {"op": "F", "bound": phi.bound, "arg": bltl_to_value(phi.arg)}
    if isinstance(phi, Always):
        return {"op": "G", "bound": phi.bound, "arg": bltl_to_value(phi.arg)}
    if isinstance(phi, Until):
        return {
            "op": "U",
            "bound": phi.bound,
            "args": [bltl_to_value(phi.left), bltl_to_value(phi.right)],
        }
    if isinstance(phi, At):
        return {"op": "at", "offset": phi.offset, "arg": bltl_to_value(phi.arg)}
    raise TypeError(f"cannot serialize BLTL node {type(phi).__name__}")


# ----------------------------------------------------------------------
# time series
# ----------------------------------------------------------------------


def timeseries_from_value(value: Any) -> TimeSeriesData:
    """``{"samples": [[t, {var: val}], ...], "tolerance": ..}`` or
    ``{"checkpoints": [{"t": .., "bands": {var: [lo, hi]}}, ...]}``."""
    if isinstance(value, TimeSeriesData):
        return value
    if not isinstance(value, Mapping):
        raise TypeError(f"cannot interpret {value!r} as time-series data")
    if "samples" in value:
        samples = [(float(t), dict(vals)) for t, vals in value["samples"]]
        tol = value.get("tolerance", 0.1)
        tol = dict(tol) if isinstance(tol, Mapping) else float(tol)
        return TimeSeriesData.from_samples(
            samples, tolerance=tol, relative=bool(value.get("relative", False))
        )
    if "checkpoints" in value:
        return TimeSeriesData(
            [
                Checkpoint(
                    float(cp["t"]),
                    {k: (float(lo), float(hi)) for k, (lo, hi) in cp["bands"].items()},
                )
                for cp in value["checkpoints"]
            ]
        )
    raise ValueError("time-series value needs 'samples' or 'checkpoints'")


def timeseries_to_value(data: TimeSeriesData) -> dict[str, Any]:
    """Serialize time-series data to its checkpoint-band dict form."""
    return {
        "checkpoints": [
            {"t": cp.t, "bands": {k: [lo, hi] for k, (lo, hi) in cp.bands.items()}}
            for cp in data.checkpoints
        ]
    }


# ----------------------------------------------------------------------
# bounds
# ----------------------------------------------------------------------


def bounds_from_value(value: Any) -> dict[str, tuple[float, float]]:
    """``{"x": [lo, hi]}`` -> ``{"x": (lo, hi)}``; a bare number is a
    degenerate (point) interval."""
    if not isinstance(value, Mapping):
        raise TypeError(f"cannot interpret {value!r} as bounds")
    out: dict[str, tuple[float, float]] = {}
    for name, pair in value.items():
        if isinstance(pair, (int, float)):
            out[str(name)] = (float(pair), float(pair))
            continue
        try:
            lo, hi = pair
        except (TypeError, ValueError):
            raise ValueError(
                f"bound for {name!r} must be a number or a [lo, hi] pair, "
                f"got {pair!r}"
            ) from None
        out[str(name)] = (float(lo), float(hi))
    return out


def bounds_to_value(bounds: Mapping[str, tuple[float, float]]) -> dict[str, list[float]]:
    """Serialize bounds to ``{"x": [lo, hi]}`` JSON form."""
    return {k: [float(lo), float(hi)] for k, (lo, hi) in bounds.items()}
