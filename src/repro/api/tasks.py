"""The task registry: every analysis of the framework behind one shape.

A *task* adapts one subsystem (delta-decision calibration, dReach-style
BMC, SMC, Lyapunov synthesis, ...) to the uniform contract

    ``Task.run(spec) -> AnalysisReport``

where ``spec`` is a declarative :class:`~repro.api.spec.TaskSpec`.
Tasks register themselves with :func:`register_task`; the
:class:`~repro.api.engine.Engine` dispatches by ``spec.task`` and
``python -m repro list-tasks`` renders the registry.

Query field reference (all values JSON-able; formula/BLTL/time-series
shapes are documented in :mod:`repro.api.serialize`):

========== ==========================================================
task       query fields
========== ==========================================================
calibrate  data, param_ranges, x0 [, paving, min_width]
falsify    method=data|reach|ascent + the method's fields
reach      goal [, goal_mode, max_jumps, time_bound, min_dwell,
           param_ranges, init]
smc        phi, init, horizon [, method=probability|hypothesis|
           bayesian, epsilon, alpha, beta, theta, indifference, n,
           credibility, max_samples]
lyapunov   region [, mode=synthesize|certify, equilibrium, V,
           coeff_bound, max_iterations, exclusion_radius, eps_v,
           eps_dv]
therapy    method=reach|policy + the method's fields
robustness bad, disturbance [, time_bound, max_jumps] or
           method=threshold with stimulus_var, lo, hi
pipeline   train, test, param_ranges, x0 [, smc_epsilon]
========== ==========================================================
"""

from __future__ import annotations

from typing import Any, Mapping, Type

from repro.apps.calibration import CalibrationStatus, SMTCalibrator
from repro.apps.falsification import (
    FalsificationVerdict,
    _falsify_ascent_impl,
    _falsify_reachability_impl,
    _falsify_with_data_impl,
)
from repro.apps.pipeline import AnalysisPipeline
from repro.apps.robustness import _check_robustness_impl, stimulus_threshold
from repro.apps.therapy import (
    _synthesize_reach_therapy_impl,
    _synthesize_threshold_policy_impl,
)
from repro.bmc import BMCChecker, BMCOptions, BMCStatus, ReachSpec
from repro.expr import parse_expr
from repro.lyapunov import LyapunovAnalyzer
from repro.smc import InitialDistribution, StatisticalModelChecker
from repro.solver import Status
from repro.status import AnalysisStatus

from .report import AnalysisReport
from .serialize import (
    bltl_from_value,
    bounds_from_value,
    formula_from_value,
    timeseries_from_value,
)
from .spec import TaskSpec

__all__ = ["Task", "register_task", "get_task", "task_names", "task_table"]

_REGISTRY: dict[str, Type["Task"]] = {}


def register_task(cls: Type["Task"]) -> Type["Task"]:
    """Class decorator: add a :class:`Task` subclass to the registry."""
    if not cls.name:
        raise ValueError(f"{cls.__name__} must set a nonempty 'name'")
    if cls.name in _REGISTRY:
        raise ValueError(f"task {cls.name!r} is already registered")
    _REGISTRY[cls.name] = cls
    return cls


def get_task(name: str) -> "Task":
    """Instantiate the registered task class for ``name``."""
    try:
        return _REGISTRY[name]()
    except KeyError:
        raise ValueError(
            f"unknown task {name!r}; available: {sorted(_REGISTRY)}"
        ) from None


def task_names() -> list[str]:
    """All registered task kinds, sorted."""
    return sorted(_REGISTRY)


def task_table() -> list[tuple[str, str]]:
    """``(name, one-line summary)`` rows for the CLI."""
    return [(n, _REGISTRY[n].summary) for n in sorted(_REGISTRY)]


class Task:
    """Base class of registered analysis tasks."""

    name: str = ""
    summary: str = ""

    def run(self, spec: TaskSpec) -> AnalysisReport:
        """Execute one declarative spec and return the shared envelope."""
        raise NotImplementedError

    # -- shared helpers -------------------------------------------------
    @staticmethod
    def _seed(spec: TaskSpec) -> int:
        return 0 if spec.seed is None else int(spec.seed)

    @staticmethod
    def _q(spec: TaskSpec, key: str) -> Any:
        try:
            return spec.query[key]
        except KeyError:
            raise ValueError(f"task {spec.task!r} needs query field {key!r}") from None


_STATUS = {
    Status.DELTA_SAT: AnalysisStatus.DELTA_SAT,
    Status.UNSAT: AnalysisStatus.UNSAT,
    Status.UNKNOWN: AnalysisStatus.UNKNOWN,
    BMCStatus.DELTA_SAT: AnalysisStatus.DELTA_SAT,
    BMCStatus.UNSAT: AnalysisStatus.UNSAT,
    BMCStatus.UNKNOWN: AnalysisStatus.UNKNOWN,
    CalibrationStatus.DELTA_SAT: AnalysisStatus.DELTA_SAT,
    CalibrationStatus.UNSAT: AnalysisStatus.UNSAT,
    CalibrationStatus.UNKNOWN: AnalysisStatus.UNKNOWN,
}


def _box_bounds(box) -> dict[str, tuple[float, float]] | None:
    if box is None:
        return None
    return {k: (box[k].lo, box[k].hi) for k in box.names}


def _verdict_report(task: str, v: FalsificationVerdict) -> AnalysisReport:
    if v.rejected:
        status = AnalysisStatus.FALSIFIED
    elif v.conclusive:
        status = AnalysisStatus.DELTA_SAT
    else:
        status = AnalysisStatus.UNKNOWN
    return AnalysisReport(
        task,
        status,
        witness=v.witness_params,
        stats={"boxes_processed": float(v.boxes_processed)},
        detail=v.detail,
        payload={"rejected": v.rejected, "conclusive": v.conclusive},
    )


# ----------------------------------------------------------------------
# delta-decision tasks
# ----------------------------------------------------------------------


@register_task
class CalibrateTask(Task):
    """SMT-style parameter calibration from time-series bands (IV-A)."""

    name = "calibrate"
    summary = "fit parameters to time-series bands via delta-decisions"

    def run(self, spec: TaskSpec) -> AnalysisReport:
        """Calibrate (or pave) parameters against time-series bands."""
        o = spec.solver
        calib = SMTCalibrator(
            spec.model.ode,
            timeseries_from_value(self._q(spec, "data")),
            bounds_from_value(self._q(spec, "param_ranges")),
            dict(spec.query.get("x0") or spec.model.initial),
            delta=o.delta,
            max_boxes=o.max_boxes,
            enclosure_step=o.enclosure_step,
            enclosure_order=o.enclosure_order,
            use_simulation_guidance=o.use_simulation_guidance,
        )
        if spec.query.get("paving"):
            sat, unsat, undecided = calib.synthesize_region(
                min_width=float(spec.query.get("min_width", 0.05))
            )
            status = (
                AnalysisStatus.DELTA_SAT if sat
                else AnalysisStatus.UNSAT if not undecided
                else AnalysisStatus.UNKNOWN
            )
            return AnalysisReport(
                self.name,
                status,
                witness=sat[0].midpoint() if sat else None,
                metrics={
                    "sat_boxes": float(len(sat)),
                    "unsat_boxes": float(len(unsat)),
                    "undecided_boxes": float(len(undecided)),
                },
                detail="guaranteed parameter-set synthesis (BioPSy-style paving)",
                payload={
                    "sat": [_box_bounds(b) for b in sat],
                    "undecided": [_box_bounds(b) for b in undecided],
                },
            )
        res = calib._calibrate_impl()
        return AnalysisReport(
            self.name,
            _STATUS[res.status],
            witness=res.params,
            witness_box=_box_bounds(res.param_box),
            stats={"boxes_processed": float(res.boxes_processed)},
            detail=f"calibration {res.status.value}",
        )


@register_task
class FalsifyTask(Task):
    """Model falsification: reject hypotheses that cannot produce the
    desired behavior for any parameters (IV-A, unsat branch)."""

    name = "falsify"
    summary = "reject model hypotheses (data bands, reachability, barrier)"

    def run(self, spec: TaskSpec) -> AnalysisReport:
        """Dispatch to the requested falsification method."""
        o = spec.solver
        method = str(spec.query.get("method", "data"))
        if method == "data":
            v = _falsify_with_data_impl(
                spec.model.ode,
                timeseries_from_value(self._q(spec, "data")),
                bounds_from_value(self._q(spec, "param_ranges")),
                dict(spec.query.get("x0") or spec.model.initial),
                delta=o.delta,
                max_boxes=o.max_boxes,
                enclosure_step=o.enclosure_step,
            )
        elif method == "reach":
            v = _falsify_reachability_impl(
                spec.model.automaton,
                _reach_spec(spec.query),
                param_ranges=(
                    bounds_from_value(spec.query["param_ranges"])
                    if spec.query.get("param_ranges")
                    else None
                ),
                options=_bmc_options(o),
            )
        elif method == "ascent":
            v = _falsify_ascent_impl(
                spec.model.ode,
                str(self._q(spec, "variable")),
                float(self._q(spec, "from_level")),
                float(self._q(spec, "to_level")),
                bounds_from_value(self._q(spec, "state_bounds")),
                param_ranges=(
                    bounds_from_value(spec.query["param_ranges"])
                    if spec.query.get("param_ranges")
                    else None
                ),
                delta=o.delta,
                max_boxes=o.max_boxes,
                frontier_size=o.frontier_size,
                shards=o.shards,
                shard_backend=o.shard_backend,
                paving_store=o.paving_store,
                warm_start=o.warm_start,
                anytime=o.anytime,
                kernel=o.kernel,
            )
        else:
            raise ValueError(f"unknown falsify method {method!r}")
        report = _verdict_report(self.name, v)
        report.payload["method"] = method
        return report


def _bmc_options(o) -> BMCOptions:
    """Map shared :class:`SolverOptions` onto the BMC option group."""
    return BMCOptions(
        delta=o.delta,
        max_boxes_per_path=o.max_boxes,
        enclosure_step=o.enclosure_step,
        enclosure_order=o.enclosure_order,
        contract_tol=o.contract_tol,
        use_simulation_guidance=o.use_simulation_guidance,
        verify_step=o.verify_step,
    )


def _reach_spec(query: Mapping[str, Any]) -> ReachSpec:
    if "goal" not in query:
        raise ValueError("reachability query needs a 'goal' formula")
    return ReachSpec(
        goal=formula_from_value(query["goal"]),
        goal_mode=query.get("goal_mode"),
        max_jumps=int(query.get("max_jumps", 3)),
        time_bound=float(query.get("time_bound", 10.0)),
        min_dwell=float(query.get("min_dwell", 0.0)),
    )


@register_task
class ReachTask(Task):
    """dReach-style bounded reachability / parameter synthesis for
    hybrid automata (Section III-C)."""

    name = "reach"
    summary = "bounded reachability and parameter synthesis (dReach-style BMC)"

    def run(self, spec: TaskSpec) -> AnalysisReport:
        """Run a bounded reachability / parameter-synthesis query."""
        checker = BMCChecker(spec.model.automaton, _bmc_options(spec.solver))
        init_box = None
        if spec.query.get("init"):
            from repro.intervals import Box

            init_box = spec.model.automaton.initial_box().merged(
                Box.from_bounds(bounds_from_value(spec.query["init"]))
            )
        res = checker._check_impl(
            _reach_spec(spec.query),
            param_ranges=(
                bounds_from_value(spec.query["param_ranges"])
                if spec.query.get("param_ranges")
                else None
            ),
            init_box=init_box,
        )
        payload: dict[str, Any] = {}
        if res.path is not None:
            payload["mode_path"] = res.mode_path()
        if res.witness_dwells is not None:
            payload["dwells"] = list(res.witness_dwells)
        if res.witness_x0 is not None:
            payload["x0"] = dict(res.witness_x0)
        witness = dict(res.witness_params or {}) or (
            dict(res.witness_x0) if res.witness_x0 else None
        )
        return AnalysisReport(
            self.name,
            _STATUS[res.status],
            witness=witness,
            stats={
                "boxes_processed": float(res.boxes_processed),
                "paths_explored": float(res.paths_explored),
            },
            detail=f"reachability {res.status.value}",
            payload=payload,
        )


# ----------------------------------------------------------------------
# statistical tasks
# ----------------------------------------------------------------------


def _init_distribution(value: Any) -> InitialDistribution:
    if isinstance(value, InitialDistribution):
        return value
    entries: dict[str, Any] = {}
    for name, v in dict(value).items():
        entries[name] = (float(v[0]), float(v[1])) if isinstance(v, (list, tuple)) else float(v)
    return InitialDistribution(entries)


@register_task
class SMCTask(Task):
    """Statistical model checking of a BLTL property (Fig. 2 left loop)."""

    name = "smc"
    summary = "statistical model checking: estimate/test P(model |= phi)"

    def run(self, spec: TaskSpec) -> AnalysisReport:
        """Estimate or test P(model |= phi) with the requested method."""
        q = spec.query
        phi = bltl_from_value(self._q(spec, "phi"))
        horizon = float(q.get("horizon") or phi.horizon() + 1e-9)
        checker = StatisticalModelChecker(
            spec.model.system,
            _init_distribution(self._q(spec, "init")),
            horizon=horizon,
            seed=self._seed(spec),
            rtol=spec.sim.rtol,
            max_step=spec.sim.max_step,
            kernel=spec.solver.kernel,
        )
        method = str(q.get("method", "probability"))
        if method == "probability":
            p, n = checker.probability(
                phi,
                epsilon=float(q.get("epsilon", 0.05)),
                alpha=float(q.get("alpha", 0.05)),
            )
            return AnalysisReport(
                self.name,
                AnalysisStatus.ESTIMATED,
                metrics={"probability": p, "samples": float(n)},
                stats={"samples": float(n)},
                detail=f"P(model |= phi) ~ {p:.4f} ({n} samples, Chernoff bound)",
            )
        if method == "hypothesis":
            res = checker.hypothesis_test(
                phi,
                theta=float(self._q(spec, "theta")),
                alpha=float(q.get("alpha", 0.05)),
                beta=float(q.get("beta", 0.05)),
                indifference=float(q.get("indifference", 0.05)),
                max_samples=int(q.get("max_samples", 100_000)),
            )
            status = AnalysisStatus.VALIDATED if res.accept else AnalysisStatus.FALSIFIED
            return AnalysisReport(
                self.name,
                status,
                metrics={
                    "samples": float(res.samples_used),
                    "successes": float(res.successes),
                },
                stats={"samples": float(res.samples_used)},
                detail=f"SPRT {res.decision}: P >= theta {'accepted' if res.accept else 'rejected'}",
                payload={"decision": res.decision},
            )
        if method == "bayesian":
            est = checker.bayesian(
                phi,
                n=int(q.get("n", 200)),
                credibility=float(q.get("credibility", 0.95)),
            )
            return AnalysisReport(
                self.name,
                AnalysisStatus.ESTIMATED,
                metrics={
                    "probability": est.mean,
                    "ci_low": est.ci_low,
                    "ci_high": est.ci_high,
                    "samples": float(est.n),
                },
                stats={"samples": float(est.n)},
                detail=f"posterior mean {est.mean:.4f} in [{est.ci_low:.4f}, {est.ci_high:.4f}]",
            )
        raise ValueError(f"unknown smc method {method!r}")


# ----------------------------------------------------------------------
# stability
# ----------------------------------------------------------------------


@register_task
class LyapunovTask(Task):
    """Lyapunov stability: CEGIS synthesis or refutation-based
    certification of a candidate function (IV-C)."""

    name = "lyapunov"
    summary = "Lyapunov function synthesis / certification"

    def run(self, spec: TaskSpec) -> AnalysisReport:
        """Synthesize or certify a Lyapunov function."""
        q = spec.query
        analyzer = LyapunovAnalyzer(
            spec.model.ode,
            bounds_from_value(self._q(spec, "region")),
            equilibrium=q.get("equilibrium"),
            exclusion_radius=float(q.get("exclusion_radius", 0.05)),
            eps_v=float(q.get("eps_v", 1e-3)),
            eps_dv=float(q.get("eps_dv", 1e-4)),
            delta=spec.solver.delta,
            frontier_size=spec.solver.frontier_size,
            shards=spec.solver.shards,
            shard_backend=spec.solver.shard_backend,
            paving_store=spec.solver.paving_store,
            warm_start=spec.solver.warm_start,
            kernel=spec.solver.kernel,
        )
        mode = str(q.get("mode", "synthesize"))
        if mode == "synthesize":
            res = analyzer.synthesize(
                coeff_bound=float(q.get("coeff_bound", 10.0)),
                max_iterations=int(q.get("max_iterations", 40)),
                seed=self._seed(spec),
            )
        elif mode == "certify":
            V = parse_expr(str(self._q(spec, "V")))
            res = analyzer.certify(V, max_boxes=spec.solver.max_boxes)
        else:
            raise ValueError(f"unknown lyapunov mode {mode!r}")
        payload: dict[str, Any] = {"mode": mode}
        if res.V is not None:
            payload["V"] = str(res.V)
        if res.counterexample:
            payload["counterexample"] = dict(res.counterexample)
        return AnalysisReport(
            self.name,
            _STATUS[res.status],
            witness=dict(res.coefficients) or None,
            stats={"iterations": float(res.iterations)},
            detail=(
                "Lyapunov conditions certified"
                if res.status is Status.DELTA_SAT
                else f"lyapunov {mode} {res.status.value}"
            ),
            payload=payload,
        )


# ----------------------------------------------------------------------
# therapy / robustness
# ----------------------------------------------------------------------


@register_task
class TherapyTask(Task):
    """Therapeutic strategy identification (IV-B): shortest drug
    sequence via BMC, or SMC-scored threshold policy search."""

    name = "therapy"
    summary = "synthesize treatment strategies (BMC reach / SMC policy)"

    def run(self, spec: TaskSpec) -> AnalysisReport:
        """Synthesize a treatment strategy (BMC reach or SMC policy)."""
        q = spec.query
        method = str(q.get("method", "reach"))
        if method == "reach":
            plan = _synthesize_reach_therapy_impl(
                spec.model.automaton,
                formula_from_value(self._q(spec, "goal")),
                bounds_from_value(self._q(spec, "threshold_ranges")),
                goal_mode=str(q.get("goal_mode", "live")),
                max_drugs=int(q.get("max_drugs", 3)),
                time_bound=float(q.get("time_bound", 60.0)),
                options=_bmc_options(spec.solver),
                forbidden_modes=tuple(q.get("forbidden_modes", ("death",))),
            )
            status = AnalysisStatus.DELTA_SAT if plan.found else AnalysisStatus.UNSAT
            return AnalysisReport(
                self.name,
                status,
                witness=dict(plan.thresholds) or None,
                metrics={"n_drugs": float(plan.n_drugs)},
                stats={
                    "paths_tried": float(plan.paths_tried),
                    "boxes_processed": float(plan.boxes_processed),
                },
                detail=plan.detail,
                payload={
                    "method": method,
                    "drug_sequence": list(plan.drug_sequence),
                    "mode_path": list(plan.mode_path),
                    "dwell_times": list(plan.dwell_times),
                },
            )
        if method == "policy":
            res = _synthesize_threshold_policy_impl(
                spec.model.automaton,
                bltl_from_value(self._q(spec, "phi")),
                bounds_from_value(self._q(spec, "threshold_ranges")),
                _init_distribution(self._q(spec, "init")),
                float(self._q(spec, "horizon")),
                population=int(q.get("population", 24)),
                iterations=int(q.get("iterations", 12)),
                seed=self._seed(spec),
                confirm_samples=int(q.get("confirm_samples", 40)),
                rtol=spec.sim.rtol,
            )
            status = AnalysisStatus.DELTA_SAT if res.found else AnalysisStatus.UNSAT
            metrics = {"robustness": res.robustness}
            if res.success_probability is not None:
                metrics["success_probability"] = res.success_probability
            return AnalysisReport(
                self.name,
                status,
                witness=dict(res.thresholds) or None,
                metrics=metrics,
                stats={"evaluations": float(res.evaluations)},
                detail=(
                    "policy found and Monte-Carlo confirmed"
                    if res.found
                    else "no positive-robustness policy found"
                ),
                payload={"method": method},
            )
        raise ValueError(f"unknown therapy method {method!r}")


@register_task
class RobustnessTask(Task):
    """Time-bounded robustness: is a bad region unreachable from a whole
    disturbance box of initial conditions (IV-C)?"""

    name = "robustness"
    summary = "prove robustness to disturbance boxes / bracket thresholds"

    def run(self, spec: TaskSpec) -> AnalysisReport:
        """Prove robustness to a disturbance box or bracket a threshold."""
        q = spec.query
        if str(q.get("method", "check")) == "threshold":
            lo, hi = stimulus_threshold(
                spec.model.automaton,
                str(self._q(spec, "stimulus_var")),
                formula_from_value(self._q(spec, "bad")),
                float(self._q(spec, "lo")),
                float(self._q(spec, "hi")),
                time_bound=float(q.get("time_bound", 50.0)),
                max_jumps=int(q.get("max_jumps", 2)),
                iterations=int(q.get("iterations", 6)),
                options=_bmc_options(spec.solver),
            )
            return AnalysisReport(
                self.name,
                AnalysisStatus.ESTIMATED,
                metrics={"robust_below": lo, "excitable_above": hi},
                stats={"iterations": float(q.get("iterations", 6))},
                detail=f"threshold bracketed in [{lo:.6g}, {hi:.6g}]",
                payload={"method": "threshold"},
            )
        res = _check_robustness_impl(
            spec.model.automaton,
            bounds_from_value(self._q(spec, "disturbance")),
            formula_from_value(self._q(spec, "bad")),
            time_bound=float(q.get("time_bound", 50.0)),
            max_jumps=int(q.get("max_jumps", 2)),
            options=_bmc_options(spec.solver),
        )
        if res.robust is True:
            status = AnalysisStatus.VALIDATED
        elif res.robust is False:
            status = AnalysisStatus.FALSIFIED
        else:
            status = AnalysisStatus.UNKNOWN
        return AnalysisReport(
            self.name,
            status,
            witness=res.witness,
            stats={"boxes_processed": float(res.boxes_processed)},
            detail=res.detail,
            payload={"method": "check"},
        )


# ----------------------------------------------------------------------
# the Fig. 2 workflow
# ----------------------------------------------------------------------


@register_task
class PipelineTask(Task):
    """The end-to-end Fig. 2 workflow: calibrate -> validate ->
    (analyze | SMC-refine)."""

    name = "pipeline"
    summary = "full Fig. 2 workflow: calibrate, validate, SMC-refine"

    def run(self, spec: TaskSpec) -> AnalysisReport:
        """Run calibrate -> validate -> (analyze | SMC-refine)."""
        o = spec.solver
        pipeline = AnalysisPipeline(
            spec.model.ode,
            timeseries_from_value(self._q(spec, "train")),
            timeseries_from_value(self._q(spec, "test")),
            bounds_from_value(self._q(spec, "param_ranges")),
            dict(spec.query.get("x0") or spec.model.initial),
            delta=o.delta,
            max_boxes=o.max_boxes,
            enclosure_step=o.enclosure_step,
            seed=self._seed(spec),
        )
        report = pipeline._run_impl(
            smc_samples_epsilon=float(spec.query.get("smc_epsilon", 0.1))
        )
        metrics: dict[str, float] = {}
        if report.smc_probability is not None:
            metrics["smc_probability"] = report.smc_probability
        return AnalysisReport(
            self.name,
            report.stage,  # PipelineStage IS an AnalysisStatus
            witness=report.calibrated_params,
            metrics=metrics,
            stats={"calibration_boxes": float(report.calibration_boxes)},
            detail=report.detail,
            payload={
                "stage": report.stage.value,
                "validation_errors": {
                    str(t): dict(errs) for t, errs in report.validation_errors.items()
                },
            },
        )
