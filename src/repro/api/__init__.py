"""The unified task-oriented analysis API -- the framework's front door.

One pipeline, one surface: wrap a model in a :class:`Model` handle,
describe the analysis as a declarative :class:`TaskSpec`, hand it to the
:class:`Engine`, get back an :class:`AnalysisReport`.  Every subsystem
of the paper's framework -- delta-decision calibration, dReach-style
BMC, statistical model checking, Lyapunov stability, therapy synthesis,
robustness -- registers a task here and answers in the same shape.

    >>> from repro.api import Engine, Model, TaskSpec
    >>> spec = TaskSpec(
    ...     task="calibrate",
    ...     model=Model.builtin("logistic"),
    ...     query={
    ...         "data": {"samples": [[2.0, {"x": 1.45}]], "tolerance": 0.2},
    ...         "param_ranges": {"r": [0.1, 2.0]},
    ...         "x0": {"x": 0.5},
    ...     },
    ... )
    >>> report = Engine().run(spec)
    >>> report.status
    <AnalysisStatus.DELTA_SAT: 'delta-sat'>

Scenario sweeps run in parallel (``Engine.run_batch(specs, workers=8)``)
and everything round-trips through JSON, so scenarios can be files and
``python -m repro run scenario.json`` is a complete workflow.

The engine is job-oriented underneath: ``engine.submit(spec)`` returns
a :class:`JobHandle` immediately (poll ``status``, block on
``result(timeout=...)``, ``cancel()`` cooperatively, read the ordered
progress-event stream), work runs on a pluggable executor backend
(``inline`` / ``thread`` / ``process``), and an optional
content-addressed :class:`ResultCache` serves repeated scenarios
without re-running them.  ``python -m repro serve`` exposes the same
jobs over HTTP.  See :mod:`repro.service`.
"""

from repro.progress import JobCancelled, ProgressEvent
from repro.service import JobHandle, JobState, ResultCache, ServiceServer
from repro.status import AnalysisStatus, PipelineStage

from .engine import Engine, run, run_batch
from .model import Model
from .report import AnalysisReport
from .spec import SimOptions, SolverOptions, TaskSpec
from .tasks import Task, get_task, register_task, task_names, task_table

__all__ = [
    "AnalysisStatus",
    "PipelineStage",
    "Model",
    "TaskSpec",
    "SolverOptions",
    "SimOptions",
    "AnalysisReport",
    "Engine",
    "run",
    "run_batch",
    "Task",
    "register_task",
    "get_task",
    "task_names",
    "task_table",
    "JobHandle",
    "JobState",
    "JobCancelled",
    "ProgressEvent",
    "ResultCache",
    "ServiceServer",
]
