"""Declarative analysis requests: :class:`TaskSpec` plus the shared
option dataclasses.

A spec is the unit of work of the :class:`~repro.api.engine.Engine`:
*which* task to run, on *which* model, with *what* query, under shared
solver/simulation options and one RNG seed.  Specs are plain data --
they serialize to JSON, travel to worker processes, and live in
scenario files executed by ``python -m repro run``.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field, fields
from dataclasses import replace as _dataclass_replace
from typing import Any, Mapping

from repro.solver.lower import validate_kernel

from .model import Model

__all__ = ["SolverOptions", "SimOptions", "TaskSpec"]


def _options_from_dict(cls, d: Mapping[str, Any] | None, label: str):
    d = dict(d or {})
    unknown = set(d) - {f.name for f in fields(cls)}
    if unknown:
        raise ValueError(f"unknown {label} options: {sorted(unknown)}")
    return cls(**d)


@dataclass
class SolverOptions:
    """Knobs of the delta-decision machinery, shared by every task that
    searches boxes (calibrate, falsify, reach, lyapunov, robustness)."""

    delta: float = 0.05
    max_boxes: int = 600
    enclosure_step: float = 0.05
    enclosure_order: int = 2
    contract_tol: float = 1e-2
    use_simulation_guidance: bool = True
    # Width K of the breadth-wise ICP frontier: how many boxes each
    # vectorized tape pass contracts/judges at once (1 = scalar loop).
    frontier_size: int = 64
    # Number of parallel paving shards (1 = in-process search): the
    # initial box splits into this many disjoint sub-boxes paved in
    # lock-step epochs on shard_backend workers with work stealing and
    # a deterministic merge (repro.solver.shard).
    shards: int = 1
    # Executor backend of the sharded driver ("process", "thread",
    # "inline"); processes give true CPU parallelism.
    shard_backend: str = "process"
    # Finer enclosure step for BMC witness verification (None: reuse
    # enclosure_step); lets reach/therapy scenarios search coarsely but
    # confirm witnesses precisely.
    verify_step: float | None = None
    # Directory of persistent solve/pave artifacts for warm-started
    # re-solves (repro.solver.incremental); None disables recording and
    # reuse.  Engines inject their own store here when the spec leaves
    # it unset.
    paving_store: str | None = None
    # Consult the paving store before searching; False still records
    # artifacts but always solves cold (the CLI --cold flag).
    warm_start: bool = True
    # Stream coarse verdict-so-far snapshots through the ProgressEvent
    # hookpoint (stage "anytime"): first answer in milliseconds,
    # monotone refinements after.
    anytime: bool = False
    # Tape execution backend of the batched ICP paths: "numpy" (the
    # default interpreter) or "numba" (fused JIT kernels; falls back to
    # numpy with a one-time RuntimeWarning when numba is missing).
    # Verdicts and pavings are byte-identical across kernels.
    kernel: str = "numpy"

    def __post_init__(self) -> None:
        if self.frontier_size < 1:
            raise ValueError(
                f"frontier_size must be >= 1, got {self.frontier_size}"
            )
        if self.shards < 1:
            raise ValueError(f"shards must be >= 1, got {self.shards}")
        validate_kernel(self.kernel)

    @classmethod
    def from_dict(cls, d: Mapping[str, Any] | None) -> "SolverOptions":
        """Build options from a (possibly partial) dict; rejects unknown keys."""
        return _options_from_dict(cls, d, "solver")


@dataclass
class SimOptions:
    """Numerical-simulation knobs of the sampling-based tasks (smc,
    therapy policy search).  The pipeline task keeps its own fixed
    validation tolerances."""

    rtol: float = 1e-6
    max_step: float | None = None

    @classmethod
    def from_dict(cls, d: Mapping[str, Any] | None) -> "SimOptions":
        """Build options from a (possibly partial) dict; rejects unknown keys."""
        return _options_from_dict(cls, d, "sim")


@dataclass
class TaskSpec:
    """One declarative analysis request.

    Attributes
    ----------
    task:
        A registered task kind (see ``python -m repro list-tasks``).
    model:
        A :class:`Model` handle (anything :meth:`Model.from_dict`
        accepts coerces automatically: inline dicts, ``{"file": ...}``,
        ``{"builtin": ...}``, or raw systems).
    query:
        Task-specific request body (see each task's docstring).
    solver / sim:
        Shared option groups.
    seed:
        RNG seed for every stochastic component of the task; ``None``
        defers to the engine's default so one engine-level seed makes a
        whole batch reproducible.
    name:
        Scenario label, copied onto the report.
    """

    task: str
    model: Model
    query: dict[str, Any] = field(default_factory=dict)
    solver: SolverOptions = field(default_factory=SolverOptions)
    sim: SimOptions = field(default_factory=SimOptions)
    seed: int | None = None
    name: str = ""

    def __post_init__(self):
        if not isinstance(self.model, Model):
            self.model = (
                Model.of(self.model)
                if not isinstance(self.model, Mapping)
                else Model.from_dict(self.model)
            )
        if isinstance(self.solver, Mapping):
            self.solver = SolverOptions.from_dict(self.solver)
        if isinstance(self.sim, Mapping):
            self.sim = SimOptions.from_dict(self.sim)

    # ------------------------------------------------------------------
    def replace(self, **kwargs: Any) -> "TaskSpec":
        """A copy with the given fields swapped out.

        Future fields survive automatically (``dataclasses.replace``
        under the hood), unlike a hand-rolled field-by-field copy.
        """
        return _dataclass_replace(self, **kwargs)

    # ------------------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        """The JSON-able spec form (inverse of :meth:`from_dict`)."""
        return {
            "task": self.task,
            "name": self.name,
            "model": self.model.to_dict(),
            "query": dict(self.query),
            "solver": asdict(self.solver),
            "sim": asdict(self.sim),
            "seed": self.seed,
        }

    @classmethod
    def from_dict(cls, d: Mapping[str, Any]) -> "TaskSpec":
        """Rebuild a spec from its :meth:`to_dict` form."""
        if "task" not in d:
            raise ValueError("spec needs a 'task' field")
        if "model" not in d:
            raise ValueError("spec needs a 'model' field")
        return cls(
            task=str(d["task"]),
            model=Model.from_dict(d["model"]),
            query=dict(d.get("query", {})),
            solver=SolverOptions.from_dict(d.get("solver")),
            sim=SimOptions.from_dict(d.get("sim")),
            seed=None if d.get("seed") is None else int(d["seed"]),
            name=str(d.get("name", "")),
        )

    def to_json(self, indent: int | None = None) -> str:
        """Serialize the spec to JSON text."""
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "TaskSpec":
        """Parse a spec from JSON text."""
        return cls.from_dict(json.loads(text))

    @classmethod
    def from_file(cls, path: str) -> "TaskSpec":
        """Load a spec from a scenario JSON file."""
        with open(path, "r", encoding="utf-8") as fh:
            return cls.from_dict(json.load(fh))
