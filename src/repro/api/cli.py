"""``python -m repro`` -- the command-line front door.

Subcommands
-----------
``run <scenario.json>``
    Execute one scenario file (a single spec dict) and print its report.
``batch <scenarios.json ...> [--workers N] [--backend B] [--progress]
[--cache-dir DIR] [--out reports.json]``
    Execute a sweep: each file holds either one spec dict, a list of
    spec dicts, or ``{"scenarios": [...]}``.  Reports print in order;
    ``--progress`` streams live progress events (and a final jobs
    table) to stderr, ``--cache-dir`` serves repeated scenarios from
    the persistent result cache.
``serve [--host H] [--port P] [--backend B] [--workers N] [--cache-dir DIR]``
    Start the HTTP job service: ``POST /run``, ``GET /jobs``,
    ``GET /jobs/<id>``, ``POST /jobs/<id>/cancel``.
``jobs <url>``
    Render the jobs table of a running ``repro serve`` instance.
``list-tasks``
    Show the registered task kinds.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Sequence

from repro.service import BACKEND_NAMES, ResultCache, ServiceServer

from .engine import Engine
from .report import AnalysisReport
from .spec import TaskSpec
from .tasks import task_table

__all__ = ["main"]


def _load_scenarios(path: str) -> list[TaskSpec]:
    with open(path, "r", encoding="utf-8") as fh:
        payload: Any = json.load(fh)
    if isinstance(payload, dict) and "scenarios" in payload:
        payload = payload["scenarios"]
    if isinstance(payload, dict):
        payload = [payload]
    if not isinstance(payload, list):
        raise ValueError(f"{path}: expected a spec dict or a list of specs")
    return [TaskSpec.from_dict(d) for d in payload]


def _emit(reports: Sequence[AnalysisReport], as_json: bool, out: str | None) -> None:
    if out:
        with open(out, "w", encoding="utf-8") as fh:
            json.dump([r.to_dict() for r in reports], fh, indent=2)
        print(f"wrote {len(reports)} report(s) to {out}")
        return
    if as_json:
        if len(reports) == 1:
            print(reports[0].to_json(indent=2))
        else:
            print(json.dumps([r.to_dict() for r in reports], indent=2))
        return
    for r in reports:
        print(r.summary())


def _print_progress(job, event) -> None:
    print(f"[{job.id} {job.spec.name or job.spec.task}] {event.describe()}",
          file=sys.stderr)


def _jobs_table(rows: Sequence[dict], cache: dict | None = None) -> str:
    """``repro jobs``-style status rendering of job summaries."""
    headers = ("id", "name", "task", "state", "backend", "events", "time")
    table = [headers]
    for d in rows:
        wall = d.get("wall_time")
        table.append((
            str(d.get("id", "")),
            str(d.get("name", "")) or "-",
            str(d.get("task", "")),
            str(d.get("state", "")) + ("*" if d.get("from_cache") else ""),
            str(d.get("backend", "") or "-"),
            str(d.get("events", 0)),
            f"{wall:.3f}s" if isinstance(wall, (int, float)) else "-",
        ))
    widths = [max(len(row[i]) for row in table) for i in range(len(headers))]
    lines = ["  ".join(cell.ljust(w) for cell, w in zip(row, widths)).rstrip()
             for row in table]
    if any(d.get("from_cache") for d in rows):
        lines.append("(* = served from the result cache)")
    if cache:
        lines.append(
            "cache: {hits:g} hit(s), {misses:g} miss(es), "
            "{entries:g} entr(ies)".format(**cache)
        )
    return "\n".join(lines)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Unified task-oriented analysis API (Liu, DAC 2020 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_run = sub.add_parser("run", help="execute one scenario file")
    p_run.add_argument("scenario", help="path to a scenario JSON file")
    p_run.add_argument("--seed", type=int, default=0, help="default RNG seed")
    p_run.add_argument("--json", action="store_true", help="print the raw report JSON")

    p_batch = sub.add_parser("batch", help="execute a scenario sweep")
    p_batch.add_argument("scenarios", nargs="+", help="scenario JSON file(s)")
    p_batch.add_argument("--workers", type=int, default=1, help="worker-pool size")
    p_batch.add_argument(
        "--backend", choices=("auto",) + BACKEND_NAMES, default="auto",
        help="executor backend (auto: process pool when --workers > 1)",
    )
    p_batch.add_argument(
        "--progress", action="store_true",
        help="stream progress events and a jobs table to stderr",
    )
    p_batch.add_argument(
        "--cache-dir", default=None,
        help="persistent result cache; repeated scenarios are not re-run",
    )
    p_batch.add_argument("--seed", type=int, default=0, help="default RNG seed")
    p_batch.add_argument("--json", action="store_true", help="print raw report JSON")
    p_batch.add_argument("--out", default=None, help="write reports to a JSON file")

    p_serve = sub.add_parser("serve", help="start the HTTP job service")
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument("--port", type=int, default=8080)
    p_serve.add_argument(
        "--backend", choices=BACKEND_NAMES, default="thread",
        help="default executor backend for submitted jobs",
    )
    p_serve.add_argument("--workers", type=int, default=None, help="worker-pool size")
    p_serve.add_argument("--cache-dir", default=None, help="persistent result cache")
    p_serve.add_argument("--seed", type=int, default=0, help="default RNG seed")

    p_jobs = sub.add_parser("jobs", help="list jobs of a running serve instance")
    p_jobs.add_argument("url", help="service base URL, e.g. http://127.0.0.1:8080")

    sub.add_parser("list-tasks", help="show the registered task kinds")
    return parser


def _cmd_serve(args: argparse.Namespace) -> int:
    cache = ResultCache(cache_dir=args.cache_dir) if args.cache_dir else True
    engine = Engine(
        workers=args.workers, seed=args.seed, cache=cache,
        progress_interval=0.5,  # bound per-sample event overhead under load
    )
    server = ServiceServer(
        engine, host=args.host, port=args.port, backend=args.backend
    )
    print(f"serving analysis jobs on {server.url} "
          f"(backend={args.backend}, POST /run, GET /jobs)")
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("\nshutting down")
        server.httpd.server_close()
        engine.close()
    return 0


def _cmd_jobs(args: argparse.Namespace) -> int:
    from urllib.error import URLError
    from urllib.request import urlopen

    url = args.url.rstrip("/") + "/jobs"
    try:
        with urlopen(url, timeout=10.0) as resp:
            payload = json.load(resp)
    except (URLError, OSError, json.JSONDecodeError) as exc:
        print(f"error: cannot read {url}: {exc}", file=sys.stderr)
        return 2
    jobs = payload.get("jobs", [])
    if not jobs:
        print("no jobs")
        return 0
    print(_jobs_table(jobs, payload.get("cache")))
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)

    if args.command == "list-tasks":
        rows = task_table()
        width = max(len(name) for name, _ in rows)
        for name, summary in rows:
            print(f"{name:<{width}}  {summary}")
        return 0

    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "jobs":
        return _cmd_jobs(args)

    try:
        if args.command == "run":
            specs = _load_scenarios(args.scenario)
        else:
            specs = [s for path in args.scenarios for s in _load_scenarios(path)]
    except (OSError, json.JSONDecodeError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if not specs:
        print("error: no scenarios to run", file=sys.stderr)
        return 2

    if args.command == "run":
        engine = Engine(seed=args.seed)
        reports = engine.run_batch(specs) if len(specs) > 1 else [engine.run(specs[0])]
        _emit(reports, args.json, None)
        return 0 if all(r.ok for r in reports) else 1

    engine = Engine(
        workers=args.workers,
        seed=args.seed,
        cache=args.cache_dir,
        progress=_print_progress if args.progress else None,
        progress_interval=0.5 if args.progress else 0.0,
    )
    backend = None if args.backend == "auto" else args.backend
    effective = backend or ("process" if args.workers > 1 and len(specs) > 1 else "inline")
    if args.progress and effective == "process":
        print(
            "note: the process backend cannot stream solver-level progress "
            "events (workers run out-of-process); use --backend thread for "
            "live per-iteration progress",
            file=sys.stderr,
        )
    handles = engine.submit_batch(specs, backend=backend)
    reports = [h.result() for h in handles]
    if args.progress:
        print(_jobs_table(
            [h.summary() for h in handles],
            engine.cache.stats() if engine.cache else None,
        ), file=sys.stderr)
    _emit(reports, args.json, args.out)
    engine.close()
    return 0 if all(r.ok for r in reports) else 1


if __name__ == "__main__":
    sys.exit(main())
