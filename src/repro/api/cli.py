"""``python -m repro`` -- the command-line front door.

Subcommands
-----------
``run <scenario.json>``
    Execute one scenario file (a single spec dict) and print its report.
``batch <scenarios.json ...> [--workers N] [--out reports.json]``
    Execute a sweep: each file holds either one spec dict, a list of
    spec dicts, or ``{"scenarios": [...]}``.  Reports print in order.
``list-tasks``
    Show the registered task kinds.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Sequence

from .engine import Engine
from .report import AnalysisReport
from .spec import TaskSpec
from .tasks import task_table

__all__ = ["main"]


def _load_scenarios(path: str) -> list[TaskSpec]:
    with open(path, "r", encoding="utf-8") as fh:
        payload: Any = json.load(fh)
    if isinstance(payload, dict) and "scenarios" in payload:
        payload = payload["scenarios"]
    if isinstance(payload, dict):
        payload = [payload]
    if not isinstance(payload, list):
        raise ValueError(f"{path}: expected a spec dict or a list of specs")
    return [TaskSpec.from_dict(d) for d in payload]


def _emit(reports: Sequence[AnalysisReport], as_json: bool, out: str | None) -> None:
    if out:
        with open(out, "w", encoding="utf-8") as fh:
            json.dump([r.to_dict() for r in reports], fh, indent=2)
        print(f"wrote {len(reports)} report(s) to {out}")
        return
    if as_json:
        if len(reports) == 1:
            print(reports[0].to_json(indent=2))
        else:
            print(json.dumps([r.to_dict() for r in reports], indent=2))
        return
    for r in reports:
        print(r.summary())


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Unified task-oriented analysis API (Liu, DAC 2020 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_run = sub.add_parser("run", help="execute one scenario file")
    p_run.add_argument("scenario", help="path to a scenario JSON file")
    p_run.add_argument("--seed", type=int, default=0, help="default RNG seed")
    p_run.add_argument("--json", action="store_true", help="print the raw report JSON")

    p_batch = sub.add_parser("batch", help="execute a scenario sweep")
    p_batch.add_argument("scenarios", nargs="+", help="scenario JSON file(s)")
    p_batch.add_argument("--workers", type=int, default=1, help="process-pool size")
    p_batch.add_argument("--seed", type=int, default=0, help="default RNG seed")
    p_batch.add_argument("--json", action="store_true", help="print raw report JSON")
    p_batch.add_argument("--out", default=None, help="write reports to a JSON file")

    sub.add_parser("list-tasks", help="show the registered task kinds")
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)

    if args.command == "list-tasks":
        rows = task_table()
        width = max(len(name) for name, _ in rows)
        for name, summary in rows:
            print(f"{name:<{width}}  {summary}")
        return 0

    try:
        if args.command == "run":
            specs = _load_scenarios(args.scenario)
        else:
            specs = [s for path in args.scenarios for s in _load_scenarios(path)]
    except (OSError, json.JSONDecodeError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if not specs:
        print("error: no scenarios to run", file=sys.stderr)
        return 2

    if args.command == "run":
        engine = Engine(seed=args.seed)
        reports = engine.run_batch(specs) if len(specs) > 1 else [engine.run(specs[0])]
        _emit(reports, args.json, None)
        return 0 if all(r.ok for r in reports) else 1

    reports = Engine(workers=args.workers, seed=args.seed).run_batch(specs)
    _emit(reports, args.json, args.out)
    return 0 if all(r.ok for r in reports) else 1


if __name__ == "__main__":
    sys.exit(main())
