"""The :class:`Model` handle: one object for every way a model enters
the framework.

A model can be built in Python (an :class:`ODESystem` or
:class:`HybridAutomaton`), loaded from the native JSON interchange
format, parsed from the SBML subset, or named symbolically (a *builtin*
from :mod:`repro.models`, e.g. ``"logistic"``).  The handle remembers
its declarative source, so a :class:`~repro.api.spec.TaskSpec` holding a
Model serializes to plain JSON and reconstructs bit-identically in a
worker process.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.hybrid import HybridAutomaton
from repro.io import (
    hybrid_from_dict,
    hybrid_to_dict,
    load_sbml,
    ode_from_dict,
    ode_to_dict,
)
from repro.odes import ODESystem

__all__ = ["Model"]


def _builtin_registry() -> dict[str, Any]:
    """Factory functions from :mod:`repro.models`, by name."""
    import repro.models as models

    out: dict[str, Any] = {}
    for name in getattr(models, "__all__", dir(models)):
        fn = getattr(models, name, None)
        if callable(fn):
            out[name] = fn
    return out


@dataclass
class Model:
    """A loaded model plus the declarative recipe that produced it.

    Attributes
    ----------
    system:
        The underlying :class:`ODESystem` or :class:`HybridAutomaton`.
    source:
        A JSON-able dict from which :meth:`from_dict` rebuilds the same
        model: ``{"file": path}``, ``{"builtin": name, "args": {...}}``
        or an inline native model dict.  When absent, :meth:`to_dict`
        falls back to the native serialization of ``system``.
    initial:
        Default initial state, when the source supplies one (SBML
        species concentrations); tasks use it when a spec omits ``x0``.
    """

    system: ODESystem | HybridAutomaton
    source: dict[str, Any] | None = None
    initial: dict[str, float] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def of(cls, system: "ODESystem | HybridAutomaton | Model") -> "Model":
        """Wrap a Python-built system (idempotent on Model instances)."""
        if isinstance(system, Model):
            return system
        if not isinstance(system, (ODESystem, HybridAutomaton)):
            raise TypeError(f"cannot wrap {type(system).__name__} as a Model")
        return cls(system)

    @classmethod
    def from_file(cls, path: str) -> "Model":
        """Load a model file: native JSON, or SBML for ``.xml``/``.sbml``."""
        lower = str(path).lower()
        if lower.endswith((".xml", ".sbml")):
            sbml = load_sbml(path)
            return cls(sbml.system, {"file": str(path)}, dict(sbml.initial))
        import json

        with open(path, "r", encoding="utf-8") as fh:
            payload = json.load(fh)
        model = cls.from_dict(payload)
        model.source = {"file": str(path)}
        return model

    @classmethod
    def builtin(cls, name: str, **args: float) -> "Model":
        """Instantiate a named factory from :mod:`repro.models`."""
        registry = _builtin_registry()
        if name not in registry:
            raise ValueError(
                f"unknown builtin model {name!r}; available: {sorted(registry)}"
            )
        system = registry[name](**args)
        return cls(system, {"builtin": name, "args": dict(args)})

    @classmethod
    def from_dict(cls, d: "Mapping[str, Any] | Model") -> "Model":
        """Rebuild a model from any declarative form (see ``source``)."""
        if isinstance(d, Model):
            return d
        if "file" in d:
            return cls.from_file(d["file"])
        if "builtin" in d:
            return cls.builtin(d["builtin"], **dict(d.get("args", {})))
        kind = d.get("type")
        if kind == "ode":
            return cls(ode_from_dict(dict(d)), dict(d))
        if kind == "hybrid":
            return cls(hybrid_from_dict(dict(d)), dict(d))
        raise ValueError(f"cannot build a Model from {d!r}")

    # ------------------------------------------------------------------
    # introspection / serialization
    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        """The underlying system's name."""
        return self.system.name

    @property
    def is_hybrid(self) -> bool:
        """Whether the wrapped system is a hybrid automaton."""
        return isinstance(self.system, HybridAutomaton)

    @property
    def ode(self) -> ODESystem:
        """The wrapped ODE system; raises for hybrid models."""
        if not isinstance(self.system, ODESystem):
            raise TypeError(f"task needs an ODE model, got hybrid {self.name!r}")
        return self.system

    @property
    def automaton(self) -> HybridAutomaton:
        """The wrapped automaton; raises for single-mode ODE models."""
        if not isinstance(self.system, HybridAutomaton):
            raise TypeError(f"task needs a hybrid model, got ODE {self.name!r}")
        return self.system

    def to_dict(self) -> dict[str, Any]:
        """The declarative recipe (preferring the remembered source)."""
        if self.source is not None:
            return dict(self.source)
        if isinstance(self.system, ODESystem):
            return ode_to_dict(self.system)
        return hybrid_to_dict(self.system)

    def __repr__(self) -> str:
        kind = "hybrid" if self.is_hybrid else "ode"
        return f"Model({self.name!r}, {kind})"
