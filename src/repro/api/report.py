"""The common result envelope every task returns.

Eight subsystems, one shape: an :class:`AnalysisReport` carries the
verdict (:class:`~repro.status.AnalysisStatus`), the witness point/box
if one exists, numeric metrics (probabilities, robustness margins,
thresholds), solver effort counters, wall time, and a task-specific
``payload`` for anything that does not fit the shared fields.  Reports
serialize to JSON, so batch sweeps produce machine-readable artifacts.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from typing import Any, Mapping

from repro.status import AnalysisStatus

__all__ = ["AnalysisStatus", "AnalysisReport"]


@dataclass
class AnalysisReport:
    """Uniform outcome of one analysis task.

    Attributes
    ----------
    task:
        Registered task kind (``"calibrate"``, ``"reach"``, ...).
    status:
        The shared verdict enum.
    witness:
        A point witness (parameters, state, coefficients) when the
        verdict carries one.
    witness_box:
        Bounds around the witness (e.g. the delta-sat box), when known.
    metrics:
        Scalar results: probabilities, sample counts, margins...
    stats:
        Solver effort: boxes processed, paths explored, iterations...
    wall_time:
        Total task wall time in seconds (measured by the engine).
    seed:
        The RNG seed the task actually ran with (reproducibility).
    detail:
        Human-readable one-liner.
    payload:
        Task-specific JSON-able extras (mode paths, stage traces...).
    name:
        The scenario name from the spec, for batch bookkeeping.
    """

    task: str
    status: AnalysisStatus
    witness: dict[str, float] | None = None
    witness_box: dict[str, tuple[float, float]] | None = None
    metrics: dict[str, float] = field(default_factory=dict)
    stats: dict[str, float] = field(default_factory=dict)
    wall_time: float = 0.0
    seed: int | None = None
    detail: str = ""
    payload: dict[str, Any] = field(default_factory=dict)
    name: str = ""

    def __post_init__(self):
        if not isinstance(self.status, AnalysisStatus):
            self.status = AnalysisStatus(self.status)

    # ------------------------------------------------------------------
    @property
    def ok(self) -> bool:
        """The task completed (its verdict may still be negative)."""
        return self.status not in (AnalysisStatus.ERROR, AnalysisStatus.CANCELLED)

    def __bool__(self) -> bool:
        """Truthy iff the task's own question was answered *yes*.

        This mirrors the legacy result types so ported ``if result:``
        code keeps its meaning: a ``falsify`` report is truthy when the
        model IS rejected (as ``FalsificationVerdict.__bool__`` was),
        every other task is truthy on an affirmative verdict (witness
        found / property validated / estimate produced).
        """
        if self.task == "falsify":
            return self.status is AnalysisStatus.FALSIFIED
        return self.status in (
            AnalysisStatus.DELTA_SAT,
            AnalysisStatus.CALIBRATED,
            AnalysisStatus.VALIDATED,
            AnalysisStatus.ESTIMATED,
        )

    # ------------------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        """The JSON-able report form (inverse of :meth:`from_dict`)."""
        d = asdict(self)
        d["status"] = self.status.value
        if self.witness_box is not None:
            d["witness_box"] = {k: list(v) for k, v in self.witness_box.items()}
        return d

    @classmethod
    def from_dict(cls, d: Mapping[str, Any]) -> "AnalysisReport":
        """Rebuild a report from its :meth:`to_dict` form."""
        d = dict(d)
        box = d.get("witness_box")
        if box is not None:
            d["witness_box"] = {k: (float(lo), float(hi)) for k, (lo, hi) in box.items()}
        return cls(**d)

    def to_json(self, indent: int | None = None) -> str:
        """Serialize the report to JSON text."""
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "AnalysisReport":
        """Parse a report from JSON text."""
        return cls.from_dict(json.loads(text))

    # ------------------------------------------------------------------
    def summary(self) -> str:
        """A terminal-friendly multi-line rendering."""
        lines = [f"[{self.task}] {self.name or '(unnamed)'}: {self.status.value}"]
        if self.detail:
            lines.append(f"  detail:  {self.detail}")
        if self.witness:
            pairs = ", ".join(f"{k}={v:.6g}" for k, v in self.witness.items())
            lines.append(f"  witness: {pairs}")
        if self.metrics:
            pairs = ", ".join(f"{k}={v:.6g}" for k, v in self.metrics.items())
            lines.append(f"  metrics: {pairs}")
        if self.stats:
            pairs = ", ".join(f"{k}={v:g}" for k, v in self.stats.items())
            lines.append(f"  stats:   {pairs}")
        seed = "-" if self.seed is None else self.seed
        lines.append(f"  time:    {self.wall_time:.3f}s  seed: {seed}")
        return "\n".join(lines)
