"""Structural simplification of expressions.

A bottom-up rewriting pass applying algebraic identities that preserve
real semantics on the domain of definition (0+x -> x, 1*x -> x, x-x -> 0,
constant folding, double negation, etc.).  Simplification keeps symbolic
derivatives small enough for interval evaluation to stay tight.
"""

from __future__ import annotations

from .ast import Binary, Const, Expr, Unary, Var

__all__ = ["simplify"]


def simplify(e: Expr) -> Expr:
    """Return a simplified expression equivalent to ``e``."""
    prev = e
    for _ in range(8):  # a few passes reach a fixed point in practice
        nxt = _simplify_once(prev)
        if nxt == prev:
            return nxt
        prev = nxt
    return prev


def _is_const(e: Expr, v: float | None = None) -> bool:
    return isinstance(e, Const) and (v is None or e.value == v)


def _simplify_once(e: Expr) -> Expr:
    if isinstance(e, (Var, Const)):
        return e
    if isinstance(e, Unary):
        arg = _simplify_once(e.arg)
        if isinstance(arg, Const):
            try:
                return Const(Unary(e.op, arg).eval({}))
            except ArithmeticError:
                return Unary(e.op, arg)
        if e.op == "neg":
            if isinstance(arg, Unary) and arg.op == "neg":
                return arg.arg  # --x -> x
            if isinstance(arg, Binary) and arg.op == "sub":
                return Binary("sub", arg.right, arg.left)  # -(a-b) -> b-a
        if e.op == "exp" and isinstance(arg, Unary) and arg.op == "log":
            return arg.arg  # exp(log x) -> x (valid where log x defined)
        if e.op == "log" and isinstance(arg, Unary) and arg.op == "exp":
            return arg.arg
        return Unary(e.op, arg)
    if isinstance(e, Binary):
        a = _simplify_once(e.left)
        b = _simplify_once(e.right)
        op = e.op
        if isinstance(a, Const) and isinstance(b, Const):
            try:
                return Const(Binary(op, a, b).eval({}))
            except ArithmeticError:
                return Binary(op, a, b)
        if op == "add":
            if _is_const(a, 0.0):
                return b
            if _is_const(b, 0.0):
                return a
            if isinstance(b, Unary) and b.op == "neg":
                return _simplify_once(Binary("sub", a, b.arg))
        elif op == "sub":
            if _is_const(b, 0.0):
                return a
            if _is_const(a, 0.0):
                return Unary("neg", b)
            if a == b:
                return Const(0.0)
        elif op == "mul":
            if _is_const(a, 0.0) or _is_const(b, 0.0):
                return Const(0.0)
            if _is_const(a, 1.0):
                return b
            if _is_const(b, 1.0):
                return a
            if _is_const(a, -1.0):
                return Unary("neg", b)
            if _is_const(b, -1.0):
                return Unary("neg", a)
        elif op == "div":
            if _is_const(a, 0.0) and not _is_const(b, 0.0):
                return Const(0.0)
            if _is_const(b, 1.0):
                return a
            if a == b and not _is_const(b, 0.0):
                # valid wherever the original was defined
                return Const(1.0)
        elif op == "pow":
            if _is_const(b, 1.0):
                return a
            if _is_const(b, 0.0):
                return Const(1.0)
            if _is_const(a, 1.0):
                return Const(1.0)
        return Binary(op, a, b)
    return e
