"""Vectorised numpy compilation of expressions.

The ODE simulators evaluate vector fields millions of times; walking the
AST per call is too slow.  :func:`compile_numpy` translates an
expression tree once into a Python lambda over numpy arrays, giving
~50x faster evaluation while remaining pure Python.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from .ast import Binary, Const, Expr, Unary, Var

__all__ = ["compile_numpy", "compile_vector_field", "compile_vector_field_batch"]

_UNARY_NP = {
    "neg": "-({0})",
    "abs": "np.abs({0})",
    "sqrt": "np.sqrt({0})",
    "exp": "np.exp({0})",
    "log": "np.log({0})",
    "sin": "np.sin({0})",
    "cos": "np.cos({0})",
    "tan": "np.tan({0})",
    "tanh": "np.tanh({0})",
    "sigmoid": "_sigmoid({0})",
}

_BINARY_NP = {
    "add": "({0}) + ({1})",
    "sub": "({0}) - ({1})",
    "mul": "({0}) * ({1})",
    "div": "({0}) / ({1})",
    "pow": "({0}) ** ({1})",
    "min": "np.minimum({0}, {1})",
    "max": "np.maximum({0}, {1})",
}


def _sigmoid(x):
    # numerically stable logistic for arrays and scalars
    return 0.5 * (1.0 + np.tanh(0.5 * np.asarray(x, dtype=float)))


def _emit(e: Expr, names: dict[str, str]) -> str:
    if isinstance(e, Const):
        return repr(e.value)
    if isinstance(e, Var):
        try:
            return names[e.name]
        except KeyError:
            raise KeyError(f"unbound variable {e.name!r} in compiled expression") from None
    if isinstance(e, Unary):
        return _UNARY_NP[e.op].format(_emit(e.arg, names))
    if isinstance(e, Binary):
        return _BINARY_NP[e.op].format(_emit(e.left, names), _emit(e.right, names))
    raise TypeError(f"cannot compile node {type(e).__name__}")


def compile_numpy(e: Expr, arg_order: Sequence[str]) -> Callable[..., np.ndarray]:
    """Compile ``e`` into ``f(*args)`` with positional args in ``arg_order``.

    Each argument may be a scalar or a numpy array; broadcasting follows
    numpy rules.  Variables of ``e`` not in ``arg_order`` raise KeyError
    at compile time.
    """
    names = {n: f"_a{i}" for i, n in enumerate(arg_order)}
    body = _emit(e, names)
    src = f"def _compiled({', '.join(names.values())}):\n    return {body}\n"
    scope: dict = {"np": np, "_sigmoid": _sigmoid}
    exec(src, scope)  # noqa: S102 -- code is generated from our own AST only
    fn = scope["_compiled"]
    fn.__doc__ = f"compiled: {e}"
    return fn


def compile_vector_field(
    exprs: Sequence[Expr], state_names: Sequence[str], param_names: Sequence[str] = ()
) -> Callable[..., np.ndarray]:
    """Compile a list of expressions into ``f(t, y, params) -> ndarray``.

    ``y`` is indexed in ``state_names`` order; ``params`` is a dict.
    The time variable ``t`` is available to the expressions if they use it.
    """
    names = {n: f"_y[{i}]" for i, n in enumerate(state_names)}
    names["t"] = "_t"
    for p in param_names:
        names.setdefault(p, f"_p[{p!r}]")
    bodies = [_emit(e, names) for e in exprs]
    joined = ", ".join(bodies)
    src = (
        "def _field(_t, _y, _p):\n"
        f"    return np.array([{joined}], dtype=float)\n"
    )
    scope: dict = {"np": np, "_sigmoid": _sigmoid}
    exec(src, scope)  # noqa: S102
    return scope["_field"]


def compile_vector_field_batch(
    exprs: Sequence[Expr],
    state_names: Sequence[str],
    param_names: Sequence[str] = (),
    kernel: str = "numpy",
) -> Callable[..., np.ndarray]:
    """Compile a vector field over a whole *batch* of states at once.

    The returned ``f(t, Y, params) -> ndarray`` takes ``Y`` of shape
    ``(dim, n)`` -- one column per trajectory/particle -- and returns the
    derivatives in the same shape.  Parameters may be scalars or
    ``(n,)`` arrays (per-particle parameters); both broadcast.  Each
    component is assigned into a preallocated output row, so constant
    derivatives broadcast instead of producing ragged arrays.

    ``kernel="numba"`` fuses the per-column evaluation into one jitted
    loop (see :mod:`repro.solver.lower` for the knob's fallback rules);
    any lowering failure silently keeps the numpy closure, so the
    returned callable always works.
    """
    if kernel != "numpy":
        from repro.solver.lower import resolve_kernel

        kernel = resolve_kernel(kernel)
    if kernel == "numba":
        fn = _compile_vector_field_jit(exprs, state_names, param_names)
        if fn is not None:
            return fn
    names = {n: f"_Y[{i}]" for i, n in enumerate(state_names)}
    names["t"] = "_t"
    for p in param_names:
        names.setdefault(p, f"_p[{p!r}]")
    lines = ["def _field(_t, _Y, _p):", "    _out = np.empty_like(_Y)"]
    for i, e in enumerate(exprs):
        lines.append(f"    _out[{i}] = {_emit(e, names)}")
    lines.append("    return _out")
    src = "\n".join(lines) + "\n"
    scope: dict = {"np": np, "_sigmoid": _sigmoid}
    exec(src, scope)  # noqa: S102
    return scope["_field"]


def _emit_jit(e: Expr, names: dict[str, str]) -> str:
    """Scalar (per-column) emitter of the jitted vector field.

    ``pow`` routes through ``_pwf`` so the jitted loop reproduces
    npy_pow's fast paths (``x**2.0 -> x*x``, ``x**0.5 -> sqrt``) and
    stays bit-compatible with the vectorized numpy closure.
    """
    if isinstance(e, Const):
        return repr(e.value)
    if isinstance(e, Var):
        try:
            return names[e.name]
        except KeyError:
            raise KeyError(f"unbound variable {e.name!r} in compiled expression") from None
    if isinstance(e, Unary):
        return _UNARY_NP[e.op].format(_emit_jit(e.arg, names))
    if isinstance(e, Binary):
        if e.op == "pow":
            return "_pwf({0}, {1})".format(
                _emit_jit(e.left, names), _emit_jit(e.right, names)
            )
        return _BINARY_NP[e.op].format(
            _emit_jit(e.left, names), _emit_jit(e.right, names)
        )
    raise TypeError(f"cannot compile node {type(e).__name__}")


def _compile_vector_field_jit(
    exprs: Sequence[Expr],
    state_names: Sequence[str],
    param_names: Sequence[str] = (),
) -> Callable[..., np.ndarray] | None:
    """Jitted column-loop variant of :func:`compile_vector_field_batch`.

    Returns ``None`` when numba is unavailable or the field fails to
    compile/run on a probe column -- callers keep the numpy closure.
    """
    try:
        import numba
    except Exception:  # pragma: no cover - exercised via the [jit] extra
        return None
    params = list(param_names)
    names = {n: f"_Y[{i}, _j]" for i, n in enumerate(state_names)}
    names["t"] = "_t"
    for k, p in enumerate(params):
        names.setdefault(p, f"_P[{k}, _j]")
    try:
        bodies = [_emit_jit(e, names) for e in exprs]
    except (KeyError, TypeError):
        return None
    lines = ["def _field_cols(_t, _Y, _out, _P):", "    for _j in range(_Y.shape[1]):"]
    for i, body in enumerate(bodies):
        lines.append(f"        _out[{i}, _j] = {body}")
    src = "\n".join(lines) + "\n"

    def _pwf(x, y):
        if y == 2.0:
            return x * x
        if y == 0.5:
            return np.sqrt(x)
        return np.power(x, y)

    def _sigmoid_s(x):
        return 0.5 * (1.0 + np.tanh(0.5 * x))

    scope: dict = {
        "np": np,
        "_pwf": numba.njit(cache=False)(_pwf),
        "_sigmoid": numba.njit(cache=False)(_sigmoid_s),
    }
    try:
        exec(src, scope)  # noqa: S102 -- code is generated from our own AST only
        jit_fn = numba.njit(cache=False)(scope["_field_cols"])
        # probe-compile on a 1-column batch so failures fall back here,
        # not at the first integrator step
        dim = len(state_names)
        probe = np.full((dim, 1), 0.5)
        jit_fn(0.0, probe, np.empty_like(probe), np.full((len(params), 1), 0.5))
    except Exception:
        return None

    def _field(_t, _Y, _p):
        Y = np.ascontiguousarray(_Y, dtype=float)
        n = Y.shape[1]
        P = np.empty((len(params), n))
        for k, name in enumerate(params):
            P[k, :] = _p[name]
        out = np.empty_like(Y)
        jit_fn(float(_t), Y, out, P)
        return out

    _field.kernel = "numba"
    return _field
