"""Symbolic expression AST over the reals.

Terms ``t`` of the logic ``L_RF`` (paper Definition 1) are built from
variables, rational constants, and a signature ``F`` of computable
functions.  This module implements that term language with three
interpreters:

* float evaluation (:meth:`Expr.eval`),
* interval evaluation with the inclusion property (:meth:`Expr.eval_interval`),
* vectorised numpy evaluation (:func:`repro.expr.compile.compile_numpy`).

plus symbolic differentiation (:meth:`Expr.diff`) used by the ODE layer
(Jacobians, Lie derivatives for Lyapunov analysis) and structural
simplification.
"""

from __future__ import annotations

import math
from typing import Callable, Iterable, Mapping, Union

from repro.intervals import EMPTY, Interval

__all__ = [
    "Expr",
    "Var",
    "Const",
    "Unary",
    "Binary",
    "ExprLike",
    "as_expr",
    "UNARY_FLOAT",
    "UNARY_INTERVAL",
]

ExprLike = Union["Expr", float, int]

# ----------------------------------------------------------------------
# Operator tables
# ----------------------------------------------------------------------

UNARY_FLOAT: dict[str, Callable[[float], float]] = {
    "neg": lambda x: -x,
    "abs": abs,
    "sqrt": math.sqrt,
    "exp": math.exp,
    "log": math.log,
    "sin": math.sin,
    "cos": math.cos,
    "tan": math.tan,
    "tanh": math.tanh,
    "sigmoid": lambda x: 1.0 / (1.0 + math.exp(-x)) if x >= 0
    else math.exp(x) / (1.0 + math.exp(x)),
}

UNARY_INTERVAL: dict[str, Callable[[Interval], Interval]] = {
    "neg": lambda iv: -iv,
    "abs": abs,
    "sqrt": Interval.sqrt,
    "exp": Interval.exp,
    "log": Interval.log,
    "sin": Interval.sin,
    "cos": Interval.cos,
    "tan": Interval.tan,
    "tanh": Interval.tanh,
    "sigmoid": Interval.sigmoid,
}

_BINARY_OPS = ("add", "sub", "mul", "div", "pow", "min", "max")


class Expr:
    """Base class for expression nodes.

    Expressions are immutable; Python operators are overloaded so models
    read naturally, e.g. ``k1 * s / (km + s) - d * s``.
    """

    __slots__ = ()

    # -- construction helpers ------------------------------------------
    def __add__(self, other: ExprLike) -> "Expr":
        return _mk_binary("add", self, as_expr(other))

    def __radd__(self, other: ExprLike) -> "Expr":
        return _mk_binary("add", as_expr(other), self)

    def __sub__(self, other: ExprLike) -> "Expr":
        return _mk_binary("sub", self, as_expr(other))

    def __rsub__(self, other: ExprLike) -> "Expr":
        return _mk_binary("sub", as_expr(other), self)

    def __mul__(self, other: ExprLike) -> "Expr":
        return _mk_binary("mul", self, as_expr(other))

    def __rmul__(self, other: ExprLike) -> "Expr":
        return _mk_binary("mul", as_expr(other), self)

    def __truediv__(self, other: ExprLike) -> "Expr":
        return _mk_binary("div", self, as_expr(other))

    def __rtruediv__(self, other: ExprLike) -> "Expr":
        return _mk_binary("div", as_expr(other), self)

    def __pow__(self, other: ExprLike) -> "Expr":
        return _mk_binary("pow", self, as_expr(other))

    def __rpow__(self, other: ExprLike) -> "Expr":
        return _mk_binary("pow", as_expr(other), self)

    def __neg__(self) -> "Expr":
        return Unary("neg", self)

    def __pos__(self) -> "Expr":
        return self

    # comparisons build logic atoms lazily (import cycle avoidance)
    def __gt__(self, other: ExprLike):
        from repro.logic import Atom

        return Atom(self - as_expr(other), strict=True)

    def __ge__(self, other: ExprLike):
        from repro.logic import Atom

        return Atom(self - as_expr(other), strict=False)

    def __lt__(self, other: ExprLike):
        from repro.logic import Atom

        return Atom(as_expr(other) - self, strict=True)

    def __le__(self, other: ExprLike):
        from repro.logic import Atom

        return Atom(as_expr(other) - self, strict=False)

    def eq(self, other: ExprLike):
        """Equality atom ``self == other`` (as two weak inequalities)."""
        from repro.logic import And, Atom

        other = as_expr(other)
        return And(Atom(self - other, strict=False).negate_operand(),
                   Atom(other - self, strict=False).negate_operand())

    # -- interpreters ---------------------------------------------------
    def eval(self, env: Mapping[str, float]) -> float:
        """Evaluate to a float under the variable assignment ``env``."""
        raise NotImplementedError

    def eval_interval(self, env: Mapping[str, Interval]) -> Interval:
        """Evaluate to an interval enclosure under interval assignment."""
        raise NotImplementedError

    def diff(self, var: str) -> "Expr":
        """Symbolic partial derivative with respect to ``var``."""
        raise NotImplementedError

    def subs(self, env: Mapping[str, ExprLike]) -> "Expr":
        """Substitute expressions for variables."""
        raise NotImplementedError

    def variables(self) -> frozenset[str]:
        """Free variables of the expression."""
        raise NotImplementedError

    def children(self) -> tuple["Expr", ...]:
        return ()

    # -- utilities ------------------------------------------------------
    def simplify(self) -> "Expr":
        from .simplify import simplify

        return simplify(self)

    def gradient(self, names: Iterable[str]) -> dict[str, "Expr"]:
        return {n: self.diff(n).simplify() for n in names}

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self!s})"

    def __str__(self) -> str:  # overridden below
        raise NotImplementedError

    def __hash__(self) -> int:
        return hash(self._key())

    def __eq__(self, other: object) -> bool:
        # NOTE: structural equality, NOT a logic atom; use .eq() for atoms.
        if not isinstance(other, Expr):
            return NotImplemented
        return self._key() == other._key()

    def _key(self) -> tuple:
        raise NotImplementedError


class Var(Expr):
    """A free real variable, identified by name."""

    __slots__ = ("name",)

    def __init__(self, name: str):
        if not name or not isinstance(name, str):
            raise ValueError(f"invalid variable name: {name!r}")
        self.name = name

    def eval(self, env: Mapping[str, float]) -> float:
        try:
            return float(env[self.name])
        except KeyError:
            raise KeyError(f"variable {self.name!r} not bound in environment") from None

    def eval_interval(self, env: Mapping[str, Interval]) -> Interval:
        try:
            v = env[self.name]
        except KeyError:
            raise KeyError(f"variable {self.name!r} not bound in environment") from None
        if isinstance(v, Interval):
            return v
        return Interval.point(float(v))

    def diff(self, var: str) -> Expr:
        return Const(1.0) if var == self.name else Const(0.0)

    def subs(self, env: Mapping[str, ExprLike]) -> Expr:
        if self.name in env:
            return as_expr(env[self.name])
        return self

    def variables(self) -> frozenset[str]:
        return frozenset({self.name})

    def __str__(self) -> str:
        return self.name

    def _key(self) -> tuple:
        return ("var", self.name)


class Const(Expr):
    """A real constant (0-ary function of the signature F)."""

    __slots__ = ("value",)

    def __init__(self, value: float):
        self.value = float(value)

    def eval(self, env: Mapping[str, float]) -> float:
        return self.value

    def eval_interval(self, env: Mapping[str, Interval]) -> Interval:
        return Interval.point(self.value)

    def diff(self, var: str) -> Expr:
        return Const(0.0)

    def subs(self, env: Mapping[str, ExprLike]) -> Expr:
        return self

    def variables(self) -> frozenset[str]:
        return frozenset()

    def __str__(self) -> str:
        if self.value == int(self.value) and abs(self.value) < 1e15:
            return str(int(self.value))
        return repr(self.value)

    def _key(self) -> tuple:
        return ("const", self.value)


class Unary(Expr):
    """Application of a unary function from the signature F."""

    __slots__ = ("op", "arg")

    def __init__(self, op: str, arg: Expr):
        if op not in UNARY_FLOAT:
            raise ValueError(f"unknown unary operator {op!r}")
        self.op = op
        self.arg = arg

    def eval(self, env: Mapping[str, float]) -> float:
        x = self.arg.eval(env)
        try:
            return UNARY_FLOAT[self.op](x)
        except (ValueError, OverflowError) as exc:
            raise ArithmeticError(f"{self.op}({x}) failed: {exc}") from None

    def eval_interval(self, env: Mapping[str, Interval]) -> Interval:
        return UNARY_INTERVAL[self.op](self.arg.eval_interval(env))

    def diff(self, var: str) -> Expr:
        u = self.arg
        du = u.diff(var)
        if self.op == "neg":
            return -du
        if self.op == "exp":
            return Unary("exp", u) * du
        if self.op == "log":
            return du / u
        if self.op == "sqrt":
            return du / (Const(2.0) * Unary("sqrt", u))
        if self.op == "sin":
            return Unary("cos", u) * du
        if self.op == "cos":
            return -Unary("sin", u) * du
        if self.op == "tan":
            return (Const(1.0) + Unary("tan", u) ** Const(2.0)) * du
        if self.op == "tanh":
            return (Const(1.0) - Unary("tanh", u) ** Const(2.0)) * du
        if self.op == "sigmoid":
            s = Unary("sigmoid", u)
            return s * (Const(1.0) - s) * du
        if self.op == "abs":
            # d|u|/dx = sign(u) * du ; encoded as u/|u| (undefined at 0)
            return (u / Unary("abs", u)) * du
        raise NotImplementedError(self.op)

    def subs(self, env: Mapping[str, ExprLike]) -> Expr:
        return Unary(self.op, self.arg.subs(env))

    def variables(self) -> frozenset[str]:
        return self.arg.variables()

    def children(self) -> tuple[Expr, ...]:
        return (self.arg,)

    def __str__(self) -> str:
        if self.op == "neg":
            return f"(-{self.arg})"
        return f"{self.op}({self.arg})"

    def _key(self) -> tuple:
        return ("unary", self.op, self.arg._key())


class Binary(Expr):
    """Application of a binary operation (add/sub/mul/div/pow/min/max)."""

    __slots__ = ("op", "left", "right")

    def __init__(self, op: str, left: Expr, right: Expr):
        if op not in _BINARY_OPS:
            raise ValueError(f"unknown binary operator {op!r}")
        self.op = op
        self.left = left
        self.right = right

    def eval(self, env: Mapping[str, float]) -> float:
        a = self.left.eval(env)
        b = self.right.eval(env)
        op = self.op
        if op == "add":
            return a + b
        if op == "sub":
            return a - b
        if op == "mul":
            return a * b
        if op == "div":
            if b == 0.0:
                raise ArithmeticError(f"division by zero in {self}")
            return a / b
        if op == "pow":
            try:
                return math.pow(a, b)
            except (ValueError, OverflowError) as exc:
                raise ArithmeticError(f"pow({a}, {b}) failed: {exc}") from None
        if op == "min":
            return min(a, b)
        if op == "max":
            return max(a, b)
        raise NotImplementedError(op)

    def eval_interval(self, env: Mapping[str, Interval]) -> Interval:
        a = self.left.eval_interval(env)
        b = self.right.eval_interval(env)
        if a.is_empty or b.is_empty:
            return EMPTY
        op = self.op
        if op == "add":
            return a + b
        if op == "sub":
            return a - b
        if op == "mul":
            return a * b
        if op == "div":
            return a / b
        if op == "pow":
            if b.is_point:
                return a.pow(b.lo)
            # general interval exponent: via exp(b*log(a)), domain a>0
            return (a.log() * b).exp()
        if op == "min":
            return a.min_with(b)
        if op == "max":
            return a.max_with(b)
        raise NotImplementedError(op)

    def diff(self, var: str) -> Expr:
        u, v = self.left, self.right
        du, dv = u.diff(var), v.diff(var)
        op = self.op
        if op == "add":
            return du + dv
        if op == "sub":
            return du - dv
        if op == "mul":
            return du * v + u * dv
        if op == "div":
            return (du * v - u * dv) / (v * v)
        if op == "pow":
            if isinstance(v, Const):
                n = v.value
                return Const(n) * (u ** Const(n - 1.0)) * du
            # u^v = exp(v log u)
            return (u ** v) * (dv * Unary("log", u) + v * du / u)
        if op in ("min", "max"):
            raise NotImplementedError(f"{op} is not differentiable symbolically")
        raise NotImplementedError(op)

    def subs(self, env: Mapping[str, ExprLike]) -> Expr:
        return Binary(self.op, self.left.subs(env), self.right.subs(env))

    def variables(self) -> frozenset[str]:
        return self.left.variables() | self.right.variables()

    def children(self) -> tuple[Expr, ...]:
        return (self.left, self.right)

    def __str__(self) -> str:
        sym = {"add": "+", "sub": "-", "mul": "*", "div": "/", "pow": "^"}
        if self.op in sym:
            left = str(self.left)
            # a negative constant base must keep its own parentheses so
            # "(-1) ^ 0" does not re-parse as "-(1 ^ 0)"
            if self.op == "pow" and isinstance(self.left, Const) and self.left.value < 0:
                left = f"({left})"
            return f"({left} {sym[self.op]} {self.right})"
        return f"{self.op}({self.left}, {self.right})"

    def _key(self) -> tuple:
        return ("binary", self.op, self.left._key(), self.right._key())


def as_expr(x: ExprLike) -> Expr:
    """Coerce a float/int into a :class:`Const`; pass expressions through."""
    if isinstance(x, Expr):
        return x
    if isinstance(x, (int, float)):
        return Const(float(x))
    raise TypeError(f"cannot convert {type(x).__name__} to Expr")


def _mk_binary(op: str, a: Expr, b: Expr) -> Expr:
    """Binary node with light constant folding at construction."""
    if isinstance(a, Const) and isinstance(b, Const):
        try:
            return Const(Binary(op, a, b).eval({}))
        except ArithmeticError:
            pass
    return Binary(op, a, b)
