"""Infix parser for the expression language.

Accepts standard math syntax with ``^`` or ``**`` for powers and the
function names of the signature F (exp, log, sin, cos, tan, tanh, sqrt,
abs, sigmoid, min, max).  Used by the SBML-lite reader and by tests;
models in :mod:`repro.models` are built with the Python DSL directly.

Grammar (precedence climbing)::

    expr    := term (('+' | '-') term)*
    term    := unary (('*' | '/') unary)*
    unary   := '-' unary | power
    power   := atom (('^' | '**') unary)?      # right associative
    atom    := NUMBER | NAME | NAME '(' expr (',' expr)* ')' | '(' expr ')'
"""

from __future__ import annotations

import re

from .ast import Binary, Const, Expr, Unary, Var

__all__ = ["parse_expr", "ParseError"]


class ParseError(ValueError):
    """Raised on malformed expression text."""


_TOKEN_RE = re.compile(
    r"\s*(?:"
    r"(?P<num>\d+\.?\d*(?:[eE][+-]?\d+)?|\.\d+(?:[eE][+-]?\d+)?)"
    r"|(?P<name>[A-Za-z_][A-Za-z_0-9]*)"
    r"|(?P<op>\*\*|[+\-*/^(),])"
    r")"
)

_UNARY_FUNCS = {
    "exp", "log", "sin", "cos", "tan", "tanh", "sqrt", "abs", "sigmoid", "neg",
}
_BINARY_FUNCS = {"min", "max", "pow"}
_CONSTANTS = {"pi": 3.141592653589793, "e": 2.718281828459045}


def _tokenize(text: str) -> list[str]:
    tokens: list[str] = []
    pos = 0
    while pos < len(text):
        m = _TOKEN_RE.match(text, pos)
        if not m or m.end() == pos:
            rest = text[pos:].strip()
            if not rest:
                break
            raise ParseError(f"unexpected character at {text[pos:pos + 10]!r}")
        tokens.append(m.group("num") or m.group("name") or m.group("op"))
        pos = m.end()
    return tokens


class _Parser:
    def __init__(self, tokens: list[str]):
        self.tokens = tokens
        self.pos = 0

    def peek(self) -> str | None:
        return self.tokens[self.pos] if self.pos < len(self.tokens) else None

    def next(self) -> str:
        tok = self.peek()
        if tok is None:
            raise ParseError("unexpected end of expression")
        self.pos += 1
        return tok

    def expect(self, tok: str) -> None:
        got = self.next()
        if got != tok:
            raise ParseError(f"expected {tok!r}, got {got!r}")

    def parse(self) -> Expr:
        e = self.expr()
        if self.peek() is not None:
            raise ParseError(f"trailing tokens: {self.tokens[self.pos:]}")
        return e

    def expr(self) -> Expr:
        e = self.term()
        while self.peek() in ("+", "-"):
            op = self.next()
            rhs = self.term()
            e = Binary("add" if op == "+" else "sub", e, rhs)
        return e

    def term(self) -> Expr:
        e = self.unary()
        while self.peek() in ("*", "/"):
            op = self.next()
            rhs = self.unary()
            e = Binary("mul" if op == "*" else "div", e, rhs)
        return e

    def unary(self) -> Expr:
        if self.peek() == "-":
            self.next()
            return Unary("neg", self.unary())
        if self.peek() == "+":
            self.next()
            return self.unary()
        return self.power()

    def power(self) -> Expr:
        base = self.atom()
        if self.peek() in ("^", "**"):
            self.next()
            exponent = self.unary()  # right associative, allows -x exponents
            return Binary("pow", base, exponent)
        return base

    def atom(self) -> Expr:
        tok = self.next()
        if tok == "(":
            e = self.expr()
            self.expect(")")
            return e
        if re.fullmatch(r"\d+\.?\d*(?:[eE][+-]?\d+)?|\.\d+(?:[eE][+-]?\d+)?", tok):
            return Const(float(tok))
        if re.fullmatch(r"[A-Za-z_][A-Za-z_0-9]*", tok):
            if self.peek() == "(":
                self.next()
                args = [self.expr()]
                while self.peek() == ",":
                    self.next()
                    args.append(self.expr())
                self.expect(")")
                return self._apply(tok, args)
            if tok in _CONSTANTS:
                return Const(_CONSTANTS[tok])
            return Var(tok)
        raise ParseError(f"unexpected token {tok!r}")

    @staticmethod
    def _apply(name: str, args: list[Expr]) -> Expr:
        if name in _UNARY_FUNCS:
            if len(args) != 1:
                raise ParseError(f"{name}() takes 1 argument, got {len(args)}")
            return Unary(name, args[0])
        if name in _BINARY_FUNCS:
            if len(args) != 2:
                raise ParseError(f"{name}() takes 2 arguments, got {len(args)}")
            if name == "pow":
                return Binary("pow", args[0], args[1])
            return Binary(name, args[0], args[1])
        raise ParseError(f"unknown function {name!r}")


def parse_expr(text: str) -> Expr:
    """Parse infix ``text`` into an :class:`~repro.expr.Expr`."""
    tokens = _tokenize(text)
    if not tokens:
        raise ParseError("empty expression")
    return _Parser(tokens).parse()
