"""Symbolic expression DSL (S2 in DESIGN.md).

The term language of ``L_RF`` (paper Definition 1): variables, constants
and computable functions, with float/interval/numpy interpreters and
symbolic differentiation.
"""

from .ast import Binary, Const, Expr, ExprLike, Unary, Var, as_expr
from .functions import (
    abs_,
    const,
    cos,
    exp,
    heaviside_smooth,
    hill,
    log,
    maximum,
    minimum,
    mm,
    neg,
    sigmoid,
    sin,
    sqrt,
    square,
    tan,
    tanh,
    var,
    variables,
)
from .parser import ParseError, parse_expr
from .simplify import simplify
from .compile import compile_numpy, compile_vector_field

__all__ = [
    "Expr",
    "Var",
    "Const",
    "Unary",
    "Binary",
    "ExprLike",
    "as_expr",
    "var",
    "variables",
    "const",
    "neg",
    "abs_",
    "sqrt",
    "exp",
    "log",
    "sin",
    "cos",
    "tan",
    "tanh",
    "sigmoid",
    "minimum",
    "maximum",
    "square",
    "hill",
    "mm",
    "heaviside_smooth",
    "parse_expr",
    "ParseError",
    "simplify",
    "compile_numpy",
    "compile_vector_field",
]
