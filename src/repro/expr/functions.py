"""Convenience constructors for the function signature F.

These wrap :class:`~repro.expr.ast.Unary`/:class:`~repro.expr.ast.Binary`
so models can be written in plain mathematical notation::

    from repro.expr import var, exp, hill

    s, k = var("s"), var("k")
    rate = k * s / (1 + s)        # Michaelis-Menten
    gate = sigmoid(10 * (s - 1))  # smooth Heaviside
"""

from __future__ import annotations

from .ast import Binary, Const, Expr, ExprLike, Unary, as_expr

__all__ = [
    "var",
    "const",
    "variables",
    "neg",
    "abs_",
    "sqrt",
    "exp",
    "log",
    "sin",
    "cos",
    "tan",
    "tanh",
    "sigmoid",
    "minimum",
    "maximum",
    "hill",
    "mm",
    "heaviside_smooth",
    "square",
]


def var(name: str):
    """A free variable named ``name``."""
    from .ast import Var

    return Var(name)


def variables(names: str):
    """Several variables from a space-separated string: ``variables("x y z")``."""
    return tuple(var(n) for n in names.split())


def const(value: float) -> Const:
    return Const(value)


def _unary(op: str, x: ExprLike) -> Expr:
    x = as_expr(x)
    if isinstance(x, Const):
        try:
            return Const(Unary(op, x).eval({}))
        except ArithmeticError:
            pass
    return Unary(op, x)


def neg(x: ExprLike) -> Expr:
    return _unary("neg", x)


def abs_(x: ExprLike) -> Expr:
    return _unary("abs", x)


def sqrt(x: ExprLike) -> Expr:
    return _unary("sqrt", x)


def exp(x: ExprLike) -> Expr:
    return _unary("exp", x)


def log(x: ExprLike) -> Expr:
    return _unary("log", x)


def sin(x: ExprLike) -> Expr:
    return _unary("sin", x)


def cos(x: ExprLike) -> Expr:
    return _unary("cos", x)


def tan(x: ExprLike) -> Expr:
    return _unary("tan", x)


def tanh(x: ExprLike) -> Expr:
    return _unary("tanh", x)


def sigmoid(x: ExprLike) -> Expr:
    return _unary("sigmoid", x)


def minimum(a: ExprLike, b: ExprLike) -> Expr:
    return Binary("min", as_expr(a), as_expr(b))


def maximum(a: ExprLike, b: ExprLike) -> Expr:
    return Binary("max", as_expr(a), as_expr(b))


def square(x: ExprLike) -> Expr:
    x = as_expr(x)
    return x * x


def hill(x: ExprLike, k: ExprLike, n: float) -> Expr:
    """Hill activation function ``x^n / (k^n + x^n)``.

    The standard sigmoidal response of gene regulation and enzyme
    kinetics; ``n`` is the Hill coefficient.
    """
    x, k = as_expr(x), as_expr(k)
    xn = x ** Const(float(n))
    kn = k ** Const(float(n))
    return xn / (kn + xn)


def mm(x: ExprLike, vmax: ExprLike, km: ExprLike) -> Expr:
    """Michaelis-Menten rate ``vmax * x / (km + x)``."""
    x = as_expr(x)
    return as_expr(vmax) * x / (as_expr(km) + x)


def heaviside_smooth(x: ExprLike, steepness: float = 50.0) -> Expr:
    """Smooth approximation of the Heaviside step via a steep sigmoid.

    Cardiac minimal models (Fenton-Karma, Bueno-Cherry-Fenton) are written
    with Heaviside gates H(u - theta); the hybrid-automaton translation in
    :mod:`repro.models.cardiac` replaces them with mode switching, while
    the single-mode (stiff-ODE) rendering uses this smooth stand-in.
    """
    return sigmoid(as_expr(x) * Const(float(steepness)))
