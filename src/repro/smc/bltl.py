"""Bounded linear temporal logic (BLTL) over sampled trajectories.

The paper's SMC framework ([11]-[13], Fig. 2 left loop) uses bounded
LTL to "encode quantitative behavioral constraints and qualitative
properties of biochemical networks".  Formulas are interpreted over a
finitely sampled trajectory; temporal bounds are in model time units.

Syntax::

    prop(formula)                      state predicate (an L_RF formula)
    ~phi, phi & psi, phi | psi         boolean connectives
    F(T, phi)   "eventually within T"
    G(T, phi)   "always within T"
    U(T, phi, psi)  "phi until psi, within T"

Quantitative robustness semantics (max/min margins) are also provided;
they drive SMC-based parameter search toward satisfaction.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Mapping

from repro.hybrid import formula_margin
from repro.logic import Formula
from repro.odes import Trajectory

__all__ = ["BLTL", "Prop", "NotOp", "AndOp", "OrOp", "Eventually", "Always",
           "Until", "At", "at_time", "prop", "F", "G", "U", "monitor",
           "robustness", "window_times", "WINDOW_EPS"]

#: Tolerance of the closed temporal-window convention: a sample time
#: within ``WINDOW_EPS`` of a window endpoint counts as lying *on* it.
WINDOW_EPS = 1e-12


class BLTL:
    """Base class of BLTL formulas."""

    __slots__ = ()

    def __and__(self, other: "BLTL") -> "BLTL":
        return AndOp(self, other)

    def __or__(self, other: "BLTL") -> "BLTL":
        return OrOp(self, other)

    def __invert__(self) -> "BLTL":
        return NotOp(self)

    def horizon(self) -> float:
        """The time window the formula can look ahead."""
        raise NotImplementedError


@dataclass(frozen=True)
class Prop(BLTL):
    """Atomic state predicate: an L_RF formula over the state variables."""

    formula: Formula

    def horizon(self) -> float:
        return 0.0


@dataclass(frozen=True)
class NotOp(BLTL):
    arg: BLTL

    def horizon(self) -> float:
        return self.arg.horizon()


@dataclass(frozen=True)
class AndOp(BLTL):
    left: BLTL
    right: BLTL

    def horizon(self) -> float:
        return max(self.left.horizon(), self.right.horizon())


@dataclass(frozen=True)
class OrOp(BLTL):
    left: BLTL
    right: BLTL

    def horizon(self) -> float:
        return max(self.left.horizon(), self.right.horizon())


@dataclass(frozen=True)
class Eventually(BLTL):
    bound: float
    arg: BLTL

    def horizon(self) -> float:
        return self.bound + self.arg.horizon()


@dataclass(frozen=True)
class Always(BLTL):
    bound: float
    arg: BLTL

    def horizon(self) -> float:
        return self.bound + self.arg.horizon()


@dataclass(frozen=True)
class Until(BLTL):
    bound: float
    left: BLTL
    right: BLTL

    def horizon(self) -> float:
        return self.bound + max(self.left.horizon(), self.right.horizon())


@dataclass(frozen=True)
class At(BLTL):
    """Time-anchored check: ``arg`` holds exactly ``offset`` time units
    from the evaluation instant (checkpoint-band encoding helper)."""

    offset: float
    arg: BLTL

    def horizon(self) -> float:
        return self.offset + self.arg.horizon()


def prop(formula: Formula) -> Prop:
    return Prop(formula)


def F(bound: float, phi: BLTL | Formula) -> Eventually:
    """Eventually within ``bound`` time units."""
    return Eventually(float(bound), _as_bltl(phi))


def G(bound: float, phi: BLTL | Formula) -> Always:
    """Always during the next ``bound`` time units."""
    return Always(float(bound), _as_bltl(phi))


def U(bound: float, phi: BLTL | Formula, psi: BLTL | Formula) -> Until:
    """``phi`` holds until ``psi``, with ``psi`` within ``bound``."""
    return Until(float(bound), _as_bltl(phi), _as_bltl(psi))


def at_time(offset: float, phi: BLTL | Formula) -> At:
    """``phi`` holds exactly ``offset`` time units ahead."""
    return At(float(offset), _as_bltl(phi))


def _as_bltl(x: BLTL | Formula) -> BLTL:
    if isinstance(x, BLTL):
        return x
    if isinstance(x, Formula):
        return Prop(x)
    raise TypeError(f"expected BLTL or Formula, got {type(x).__name__}")


# ----------------------------------------------------------------------
# Boolean monitoring
# ----------------------------------------------------------------------


def monitor(
    phi: BLTL | Formula,
    traj: Trajectory,
    t_start: float = 0.0,
    extra_env: Mapping[str, float] | None = None,
) -> bool:
    """Does the sampled trajectory satisfy ``phi`` from ``t_start``?

    Temporal operators quantify over the trajectory's sample times
    within their bound (plus the exact window endpoints).
    """
    phi = _as_bltl(phi)
    if t_start + phi.horizon() > traj.t_end + 1e-9:
        raise ValueError(
            f"trajectory ends at {traj.t_end}, but formula needs horizon "
            f"{t_start + phi.horizon()}"
        )
    env = dict(extra_env or {})
    return _sat(phi, traj, float(t_start), env)


def window_times(times, lo: float, hi: float,
                 t_min: float | None = None,
                 t_max: float | None = None) -> list[float]:
    """Evaluation instants of the temporal window ``[lo, hi]``.

    This is the single place that defines the discretization convention
    of every temporal operator, shared by the batch monitor
    (:func:`monitor` / :func:`robustness`) and the online monitor
    (:mod:`repro.monitor.automaton`):

    * The window is **closed on both endpoints**.  Every sample time in
      ``times`` lying within ``WINDOW_EPS`` of ``[lo, hi]`` is an
      evaluation instant (a sample within tolerance of an endpoint
      *stands in* for that endpoint -- the exact endpoint is then not
      inserted).
    * When no sample covers an endpoint, the exact endpoint is inserted
      so the window never evaluates over an empty or truncated instant
      set: ``lo`` is prepended when the first selected sample lies more
      than ``WINDOW_EPS`` after it, and ``hi`` is appended when the last
      instant lies more than ``WINDOW_EPS`` before it.  Both endpoint
      rules use the same ``WINDOW_EPS`` tolerance.
    * Inserted endpoints are clamped into ``[t_min, t_max]`` when given
      (the sampled span of the trajectory), so a window that overshoots
      the final sample by less than the :func:`monitor` horizon slack
      evaluates at the last sample instead of asking the dense-output
      interpolant for a time it cannot reach.

    Parameters
    ----------
    times:
        Sorted sample times (a numpy array).
    lo, hi:
        The closed window bounds (``lo <= hi``).
    t_min, t_max:
        Optional clamp range for *inserted* endpoints (selected sample
        times are never clamped).
    """
    def clamp(point: float) -> float:
        if t_min is not None:
            point = max(point, t_min)
        if t_max is not None:
            point = min(point, t_max)
        return point

    ts = times[(times >= lo - WINDOW_EPS) & (times <= hi + WINDOW_EPS)]
    out = list(map(float, ts))
    if not out or out[0] > lo + WINDOW_EPS:
        out.insert(0, clamp(lo))
    if out[-1] < hi - WINDOW_EPS:
        out.append(clamp(hi))
    return out


def _times_in(traj: Trajectory, lo: float, hi: float) -> list[float]:
    return window_times(traj.times, lo, hi, traj.t0, traj.t_end)


def _sat(phi: BLTL, traj: Trajectory, t: float, env: dict[str, float]) -> bool:
    if isinstance(phi, Prop):
        return phi.formula.eval({**env, **traj.at(t)})
    if isinstance(phi, NotOp):
        return not _sat(phi.arg, traj, t, env)
    if isinstance(phi, AndOp):
        return _sat(phi.left, traj, t, env) and _sat(phi.right, traj, t, env)
    if isinstance(phi, OrOp):
        return _sat(phi.left, traj, t, env) or _sat(phi.right, traj, t, env)
    if isinstance(phi, Eventually):
        return any(
            _sat(phi.arg, traj, u, env) for u in _times_in(traj, t, t + phi.bound)
        )
    if isinstance(phi, Always):
        return all(
            _sat(phi.arg, traj, u, env) for u in _times_in(traj, t, t + phi.bound)
        )
    if isinstance(phi, Until):
        times = _times_in(traj, t, t + phi.bound)
        for i, u in enumerate(times):
            if _sat(phi.right, traj, u, env):
                return all(_sat(phi.left, traj, w, env) for w in times[:i])
        return False
    if isinstance(phi, At):
        return _sat(phi.arg, traj, t + phi.offset, env)
    raise TypeError(type(phi).__name__)


# ----------------------------------------------------------------------
# Quantitative robustness
# ----------------------------------------------------------------------


def robustness(
    phi: BLTL | Formula,
    traj: Trajectory,
    t_start: float = 0.0,
    extra_env: Mapping[str, float] | None = None,
) -> float:
    """Quantitative satisfaction margin (positive iff satisfied).

    Standard max/min semantics: Eventually = max over window, Always =
    min over window, negation flips sign.  Used as the fitness signal of
    SMC-based parameter search.
    """
    phi = _as_bltl(phi)
    env = dict(extra_env or {})
    return _rob(phi, traj, float(t_start), env)


def _rob(phi: BLTL, traj: Trajectory, t: float, env: dict[str, float]) -> float:
    if isinstance(phi, Prop):
        return formula_margin(phi.formula, {**env, **traj.at(t)})
    if isinstance(phi, NotOp):
        return -_rob(phi.arg, traj, t, env)
    if isinstance(phi, AndOp):
        return min(_rob(phi.left, traj, t, env), _rob(phi.right, traj, t, env))
    if isinstance(phi, OrOp):
        return max(_rob(phi.left, traj, t, env), _rob(phi.right, traj, t, env))
    if isinstance(phi, Eventually):
        return max(
            _rob(phi.arg, traj, u, env) for u in _times_in(traj, t, t + phi.bound)
        )
    if isinstance(phi, Always):
        return min(
            _rob(phi.arg, traj, u, env) for u in _times_in(traj, t, t + phi.bound)
        )
    if isinstance(phi, Until):
        times = _times_in(traj, t, t + phi.bound)
        best = -math.inf
        for i, u in enumerate(times):
            r_right = _rob(phi.right, traj, u, env)
            r_left = min(
                (_rob(phi.left, traj, w, env) for w in times[:i]), default=math.inf
            )
            best = max(best, min(r_right, r_left))
        return best
    if isinstance(phi, At):
        return _rob(phi.arg, traj, t + phi.offset, env)
    raise TypeError(type(phi).__name__)
