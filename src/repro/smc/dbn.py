"""Dynamic Bayesian network approximation of ODE dynamics.

The paper's future-work direction (Section V): "to cope with the model
complexity, an idea is to approximate the hybrid system as a multi-mode
network of DBNs by extending the approximation technique we have
developed for a single system of ODEs [5]."  This module implements
that single-system technique as a prototype:

1. discretize each state variable's range into intervals,
2. sample many trajectories from a distribution of initial states,
3. estimate, per variable, the conditional transition probabilities
   ``P(x_i(t+dt) in I' | parents(t) in J)`` where the parents are the
   variables appearing in ``dx_i/dt`` (the network structure is read
   off the vector field — no structure learning needed), and
4. answer probabilistic queries by factored forward filtering
   (a product-of-marginals frontier, the "factored frontier" of [7]).

The result trades exactness for orders-of-magnitude cheaper repeated
queries; probabilities are approximations (both sampling and the
factored frontier introduce error), which matches the published
technique's contract.
"""

from __future__ import annotations

import bisect
import random
from dataclasses import dataclass, field
from typing import Mapping, Sequence

import numpy as np

from repro.odes import ODESystem, rk4

__all__ = ["Discretization", "DBNApproximation", "build_dbn"]


@dataclass(frozen=True)
class Discretization:
    """Per-variable interval partition of the state space."""

    edges: Mapping[str, tuple[float, ...]]  # sorted inner edges per variable

    def n_levels(self, name: str) -> int:
        return len(self.edges[name]) + 1

    def level(self, name: str, value: float) -> int:
        """Index of the interval containing ``value`` (clamped)."""
        return bisect.bisect_right(self.edges[name], value)

    @staticmethod
    def uniform(
        ranges: Mapping[str, tuple[float, float]], levels: int
    ) -> "Discretization":
        """``levels`` equal-width cells per variable over its range."""
        if levels < 2:
            raise ValueError("need at least 2 levels")
        edges = {}
        for name, (lo, hi) in ranges.items():
            if hi <= lo:
                raise ValueError(f"empty range for {name!r}")
            step = (hi - lo) / levels
            edges[name] = tuple(lo + step * i for i in range(1, levels))
        return Discretization(edges)


@dataclass
class DBNApproximation:
    """A learned two-slice DBN over the discretized state space."""

    system: ODESystem
    disc: Discretization
    dt: float
    parents: dict[str, list[str]]
    # cpt[var][parent-level-tuple] = probability vector over var levels
    cpt: dict[str, dict[tuple[int, ...], np.ndarray]] = field(default_factory=dict)

    # ------------------------------------------------------------------
    def marginal_after(
        self,
        initial: Mapping[str, Sequence[float]],
        steps: int,
    ) -> dict[str, np.ndarray]:
        """Factored-frontier filtering: propagate per-variable marginals
        ``steps`` transitions forward from the initial marginals."""
        state = {k: np.asarray(v, dtype=float) for k, v in initial.items()}
        for name, vec in state.items():
            if len(vec) != self.disc.n_levels(name):
                raise ValueError(f"marginal for {name!r} has wrong length")
            total = vec.sum()
            if total <= 0:
                raise ValueError(f"marginal for {name!r} sums to zero")
            state[name] = vec / total
        for _ in range(steps):
            state = self._step(state)
        return state

    def _step(self, marginals: dict[str, np.ndarray]) -> dict[str, np.ndarray]:
        out: dict[str, np.ndarray] = {}
        for name in self.system.state_names:
            parents = self.parents[name]
            n = self.disc.n_levels(name)
            acc = np.zeros(n)
            # enumerate parent joint assignments under the product
            # (factored) approximation
            self._accumulate(name, parents, 0, (), 1.0, marginals, acc)
            total = acc.sum()
            out[name] = acc / total if total > 0 else np.full(n, 1.0 / n)
        return out

    def _accumulate(
        self,
        name: str,
        parents: list[str],
        idx: int,
        levels: tuple[int, ...],
        weight: float,
        marginals: dict[str, np.ndarray],
        acc: np.ndarray,
    ) -> None:
        if weight <= 0.0:
            return
        if idx == len(parents):
            row = self.cpt[name].get(levels)
            if row is None:
                # unseen configuration: keep the variable where it is
                # (self-parent level if available, else uniform)
                if name in parents:
                    stay = levels[parents.index(name)]
                    acc[stay] += weight
                else:
                    acc += weight / len(acc)
                return
            acc += weight * row
            return
        p = parents[idx]
        vec = marginals[p]
        for lvl, prob in enumerate(vec):
            if prob > 0.0:
                self._accumulate(
                    name, parents, idx + 1, levels + (lvl,), weight * prob,
                    marginals, acc,
                )

    # ------------------------------------------------------------------
    def probability(
        self,
        initial: Mapping[str, Sequence[float]],
        variable: str,
        level_range: tuple[int, int],
        steps: int,
    ) -> float:
        """P(variable's level in [lo, hi] after ``steps`` transitions)."""
        marginals = self.marginal_after(initial, steps)
        lo, hi = level_range
        return float(marginals[variable][lo : hi + 1].sum())


def build_dbn(
    system: ODESystem,
    ranges: Mapping[str, tuple[float, float]],
    init_sampler,
    dt: float = 0.1,
    levels: int = 8,
    n_samples: int = 2000,
    horizon_steps: int = 50,
    seed: int = 0,
    dirichlet_prior: float = 0.5,
) -> DBNApproximation:
    """Learn a DBN approximation of ``system`` from sampled trajectories.

    Parameters
    ----------
    ranges:
        State-space box to discretize (values outside are clamped).
    init_sampler:
        ``rng -> dict`` producing initial states (cell-to-cell
        variability; use e.g. ``InitialDistribution(...).sample``).
    dt:
        DBN slice duration (one transition = ``dt`` time units).
    levels:
        Discretization levels per variable.
    n_samples / horizon_steps:
        Trajectories sampled and transitions harvested per trajectory.
    dirichlet_prior:
        Additive smoothing for unseen transitions.
    """
    missing = set(system.state_names) - set(ranges)
    if missing:
        raise ValueError(f"ranges missing for {sorted(missing)}")
    disc = Discretization.uniform(
        {k: ranges[k] for k in system.state_names}, levels
    )
    # network structure from the vector field: parents of x are the
    # state variables its derivative mentions (plus x itself)
    parents: dict[str, list[str]] = {}
    for name in system.state_names:
        used = system.derivatives[name].variables() & set(system.state_names)
        ps = sorted(used | {name})
        parents[name] = ps

    rng = random.Random(seed)
    counts: dict[str, dict[tuple[int, ...], np.ndarray]] = {
        name: {} for name in system.state_names
    }
    n_lv = {name: disc.n_levels(name) for name in system.state_names}

    for _ in range(n_samples):
        x0 = init_sampler(rng)
        traj = rk4(
            system, x0, (0.0, dt * horizon_steps), dt=dt / 4.0
        )
        prev_levels = {
            name: disc.level(name, traj.value(name, 0.0))
            for name in system.state_names
        }
        for step in range(1, horizon_steps + 1):
            t = step * dt
            cur_levels = {
                name: disc.level(name, traj.value(name, t))
                for name in system.state_names
            }
            for name in system.state_names:
                key = tuple(prev_levels[p] for p in parents[name])
                table = counts[name]
                if key not in table:
                    table[key] = np.full(n_lv[name], dirichlet_prior)
                table[key][cur_levels[name]] += 1.0
            prev_levels = cur_levels

    cpt: dict[str, dict[tuple[int, ...], np.ndarray]] = {}
    for name, table in counts.items():
        cpt[name] = {k: v / v.sum() for k, v in table.items()}
    return DBNApproximation(system, disc, dt, parents, cpt)
