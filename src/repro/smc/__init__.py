"""Statistical model checking (S8 in DESIGN.md).

Bounded LTL monitoring, SPRT/Chernoff/Bayesian statistics, probabilistic
initial states, and SMC-driven parameter search -- the left loop of the
paper's Fig. 2 workflow ([11]-[13]).
"""

from .bltl import (
    BLTL,
    Always,
    AndOp,
    At,
    Eventually,
    NotOp,
    OrOp,
    Prop,
    Until,
    F,
    G,
    U,
    at_time,
    monitor,
    prop,
    robustness,
    window_times,
)
from .stats import (
    BayesianEstimate,
    SPRTResult,
    SPRTState,
    bayesian_estimate,
    chernoff_sample_size,
    estimate_probability,
    sprt,
)
from .engine import InitialDistribution, StatisticalModelChecker
from .dbn import DBNApproximation, Discretization, build_dbn
from .search import SearchResult, cross_entropy_search, genetic_search, smc_objective

__all__ = [
    "BLTL",
    "Prop",
    "NotOp",
    "AndOp",
    "OrOp",
    "Eventually",
    "Always",
    "Until",
    "At",
    "at_time",
    "prop",
    "F",
    "G",
    "U",
    "monitor",
    "robustness",
    "window_times",
    "SPRTResult",
    "SPRTState",
    "sprt",
    "chernoff_sample_size",
    "estimate_probability",
    "BayesianEstimate",
    "bayesian_estimate",
    "InitialDistribution",
    "StatisticalModelChecker",
    "SearchResult",
    "smc_objective",
    "cross_entropy_search",
    "genetic_search",
    "DBNApproximation",
    "Discretization",
    "build_dbn",
]
