"""Statistical machinery for SMC: SPRT, Chernoff bounds, Bayesian estimation.

These are the standard ingredients of statistical model checking as used
by the paper's SMC framework [11]-[13]: Wald's sequential probability
ratio test for hypothesis testing ``P(phi) >= theta``, the
Okamoto/Chernoff fixed-sample bound for probability estimation, and a
Beta-posterior Bayesian estimator.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Iterator

__all__ = [
    "SPRTResult",
    "sprt",
    "chernoff_sample_size",
    "estimate_probability",
    "BayesianEstimate",
    "bayesian_estimate",
]


@dataclass
class SPRTResult:
    """Outcome of a sequential probability ratio test."""

    accept: bool  # True: H0 (p >= p0) accepted, False: H1 (p <= p1) accepted
    samples_used: int
    successes: int

    @property
    def decision(self) -> str:
        return "H0" if self.accept else "H1"


def sprt(
    sampler: Callable[[], bool] | Iterator[bool],
    theta: float,
    alpha: float = 0.05,
    beta: float = 0.05,
    indifference: float = 0.05,
    max_samples: int = 100_000,
) -> SPRTResult:
    """Wald's SPRT for ``H0: p >= theta + indifference`` vs
    ``H1: p <= theta - indifference``.

    ``sampler`` produces i.i.d. Bernoulli observations (one simulation =
    one sample).  Error bounds: P(accept H1 | H0) <= alpha,
    P(accept H0 | H1) <= beta.  If the budget runs out, the decision is
    by the empirical mean (best effort).
    """
    p0 = min(theta + indifference, 1.0 - 1e-9)
    p1 = max(theta - indifference, 1e-9)
    if p1 >= p0:
        raise ValueError("indifference region collapsed; reduce indifference")
    a = math.log(beta / (1.0 - alpha))       # accept H0 at or below
    b = math.log((1.0 - beta) / alpha)       # accept H1 at or above
    llr = 0.0
    n = 0
    k = 0
    succ_inc = math.log(p1 / p0)
    fail_inc = math.log((1.0 - p1) / (1.0 - p0))
    draw = sampler if callable(sampler) else lambda it=iter(sampler): next(it)
    while n < max_samples:
        x = bool(draw())
        n += 1
        if x:
            k += 1
            llr += succ_inc
        else:
            llr += fail_inc
        if llr <= a:
            return SPRTResult(accept=True, samples_used=n, successes=k)
        if llr >= b:
            return SPRTResult(accept=False, samples_used=n, successes=k)
    return SPRTResult(accept=(k / max(n, 1)) >= theta, samples_used=n, successes=k)


def chernoff_sample_size(epsilon: float, alpha: float) -> int:
    """Okamoto/Chernoff bound: samples needed so that
    ``P(|p_hat - p| >= epsilon) <= alpha``."""
    if not (0 < epsilon < 1) or not (0 < alpha < 1):
        raise ValueError("epsilon and alpha must be in (0, 1)")
    return math.ceil(math.log(2.0 / alpha) / (2.0 * epsilon * epsilon))


def estimate_probability(
    sampler: Callable[[], bool],
    epsilon: float = 0.05,
    alpha: float = 0.05,
) -> tuple[float, int]:
    """Fixed-size estimation: returns ``(p_hat, n)`` with the Chernoff
    guarantee ``P(|p_hat - p| >= epsilon) <= alpha``."""
    n = chernoff_sample_size(epsilon, alpha)
    k = sum(1 for _ in range(n) if sampler())
    return k / n, n


@dataclass
class BayesianEstimate:
    """Beta-posterior summary of a Bernoulli probability."""

    mean: float
    ci_low: float
    ci_high: float
    n: int
    successes: int


def bayesian_estimate(
    sampler: Callable[[], bool],
    n: int,
    prior_a: float = 1.0,
    prior_b: float = 1.0,
    credibility: float = 0.95,
) -> BayesianEstimate:
    """Draw ``n`` samples and summarize the Beta posterior.

    The credible interval uses the Beta quantile function (via scipy).
    """
    from scipy.stats import beta as beta_dist

    k = sum(1 for _ in range(n) if sampler())
    a = prior_a + k
    b = prior_b + (n - k)
    lo = (1.0 - credibility) / 2.0
    return BayesianEstimate(
        mean=a / (a + b),
        ci_low=float(beta_dist.ppf(lo, a, b)),
        ci_high=float(beta_dist.ppf(1.0 - lo, a, b)),
        n=n,
        successes=k,
    )
