"""Statistical machinery for SMC: SPRT, Chernoff bounds, Bayesian estimation.

These are the standard ingredients of statistical model checking as used
by the paper's SMC framework [11]-[13]: Wald's sequential probability
ratio test for hypothesis testing ``P(phi) >= theta``, the
Okamoto/Chernoff fixed-sample bound for probability estimation, and a
Beta-posterior Bayesian estimator.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Iterator

__all__ = [
    "SPRTResult",
    "SPRTState",
    "sprt",
    "chernoff_sample_size",
    "estimate_probability",
    "BayesianEstimate",
    "bayesian_estimate",
]


@dataclass
class SPRTResult:
    """Outcome of a sequential probability ratio test."""

    accept: bool  # True: H0 (p >= p0) accepted, False: H1 (p <= p1) accepted
    samples_used: int
    successes: int

    @property
    def decision(self) -> str:
        return "H0" if self.accept else "H1"


@dataclass
class SPRTState:
    """Incremental Wald SPRT for ``H0: p >= theta + indifference`` vs
    ``H1: p <= theta - indifference``.

    Observations are fed **one at a time** via :meth:`update`, which
    returns the :class:`SPRTResult` the moment the log-likelihood ratio
    crosses a decision threshold and ``None`` while the test is still
    undecided.  The batch :func:`sprt` entry point is a thin driver
    around this state, so both paths share one likelihood accumulator --
    the online monitoring layer (:mod:`repro.monitor`) keeps one
    ``SPRTState`` per telemetry stream and concludes hypothesis tests
    as verdicts arrive, without buffering outcomes.

    Error bounds: P(accept H1 | H0) <= alpha, P(accept H0 | H1) <= beta.
    If ``max_samples`` observations arrive without a crossing, the
    decision falls back to the empirical mean (best effort), exactly as
    the batch call always did.
    """

    theta: float
    alpha: float = 0.05
    beta: float = 0.05
    indifference: float = 0.05
    max_samples: int = 100_000

    def __post_init__(self):
        p0 = min(self.theta + self.indifference, 1.0 - 1e-9)
        p1 = max(self.theta - self.indifference, 1e-9)
        if p1 >= p0:
            raise ValueError("indifference region collapsed; reduce indifference")
        self._accept_h0_at = math.log(self.beta / (1.0 - self.alpha))
        self._accept_h1_at = math.log((1.0 - self.beta) / self.alpha)
        self._succ_inc = math.log(p1 / p0)
        self._fail_inc = math.log((1.0 - p1) / (1.0 - p0))
        self._llr = 0.0
        self._n = 0
        self._k = 0
        self._result: SPRTResult | None = None

    # ------------------------------------------------------------------
    @property
    def samples(self) -> int:
        """Observations consumed so far."""
        return self._n

    @property
    def successes(self) -> int:
        """Successful observations so far."""
        return self._k

    @property
    def result(self) -> SPRTResult | None:
        """The decision, or ``None`` while the test is running."""
        return self._result

    @property
    def decided(self) -> bool:
        """Whether the test has concluded."""
        return self._result is not None

    def describe(self) -> str:
        """Short status string (``H0``/``H1``/``n=k/N``) for tables."""
        if self._result is not None:
            return self._result.decision
        return f"{self._k}/{self._n}"

    # ------------------------------------------------------------------
    def update(self, success: bool) -> SPRTResult | None:
        """Consume one Bernoulli observation.

        Returns the decision the moment it is reached (and keeps
        returning it for any further -- ignored -- observations), or
        ``None`` while undecided.
        """
        if self._result is not None:
            return self._result
        self._n += 1
        if success:
            self._k += 1
            self._llr += self._succ_inc
        else:
            self._llr += self._fail_inc
        if self._llr <= self._accept_h0_at:
            self._result = SPRTResult(True, self._n, self._k)
        elif self._llr >= self._accept_h1_at:
            self._result = SPRTResult(False, self._n, self._k)
        elif self._n >= self.max_samples:
            self._result = self.conclude()
        return self._result

    def conclude(self) -> SPRTResult:
        """Force a best-effort decision by the empirical mean.

        Used when the observation budget runs out (batch path) or a
        stream closes before the likelihood ratio crosses a threshold.
        """
        if self._result is not None:
            return self._result
        accept = (self._k / max(self._n, 1)) >= self.theta
        return SPRTResult(accept=accept, samples_used=self._n, successes=self._k)


def sprt(
    sampler: Callable[[], bool] | Iterator[bool],
    theta: float,
    alpha: float = 0.05,
    beta: float = 0.05,
    indifference: float = 0.05,
    max_samples: int = 100_000,
) -> SPRTResult:
    """Wald's SPRT for ``H0: p >= theta + indifference`` vs
    ``H1: p <= theta - indifference``.

    ``sampler`` produces i.i.d. Bernoulli observations (one simulation =
    one sample).  Error bounds: P(accept H1 | H0) <= alpha,
    P(accept H0 | H1) <= beta.  If the budget runs out, the decision is
    by the empirical mean (best effort).

    This is a batch driver over :class:`SPRTState`; feeding the same
    outcomes one-by-one through :meth:`SPRTState.update` reaches the
    identical decision after the identical number of samples.
    """
    state = SPRTState(theta, alpha, beta, indifference, max_samples)
    draw = sampler if callable(sampler) else lambda it=iter(sampler): next(it)
    while state.samples < max_samples:
        result = state.update(bool(draw()))
        if result is not None:
            return result
    return state.conclude()


def chernoff_sample_size(epsilon: float, alpha: float) -> int:
    """Okamoto/Chernoff bound: samples needed so that
    ``P(|p_hat - p| >= epsilon) <= alpha``."""
    if not (0 < epsilon < 1) or not (0 < alpha < 1):
        raise ValueError("epsilon and alpha must be in (0, 1)")
    return math.ceil(math.log(2.0 / alpha) / (2.0 * epsilon * epsilon))


def estimate_probability(
    sampler: Callable[[], bool],
    epsilon: float = 0.05,
    alpha: float = 0.05,
) -> tuple[float, int]:
    """Fixed-size estimation: returns ``(p_hat, n)`` with the Chernoff
    guarantee ``P(|p_hat - p| >= epsilon) <= alpha``."""
    n = chernoff_sample_size(epsilon, alpha)
    k = sum(1 for _ in range(n) if sampler())
    return k / n, n


@dataclass
class BayesianEstimate:
    """Beta-posterior summary of a Bernoulli probability."""

    mean: float
    ci_low: float
    ci_high: float
    n: int
    successes: int


def bayesian_estimate(
    sampler: Callable[[], bool],
    n: int,
    prior_a: float = 1.0,
    prior_b: float = 1.0,
    credibility: float = 0.95,
) -> BayesianEstimate:
    """Draw ``n`` samples and summarize the Beta posterior.

    The credible interval uses the Beta quantile function (via scipy).
    """
    from scipy.stats import beta as beta_dist

    k = sum(1 for _ in range(n) if sampler())
    a = prior_a + k
    b = prior_b + (n - k)
    lo = (1.0 - credibility) / 2.0
    return BayesianEstimate(
        mean=a / (a + b),
        ci_low=float(beta_dist.ppf(lo, a, b)),
        ci_high=float(beta_dist.ppf(1.0 - lo, a, b)),
        n=n,
        successes=k,
    )
