"""Statistical model checking engine for ODE and hybrid models.

Paper Fig. 2 (left loop) and [11]-[13]: ODE systems with *probabilistic
initial states* (and/or probabilistic parameters) are analyzed by
sampling trajectories and monitoring a BLTL property; satisfaction
probabilities are tested (SPRT) or estimated (Chernoff / Bayesian).
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass, field
from typing import Callable, Mapping

from repro.hybrid import HybridAutomaton, simulate_hybrid
from repro.odes import ODESystem, rk4_batch, rk45
from repro.progress import emit as _progress

from .bltl import BLTL, monitor
from .stats import (
    BayesianEstimate,
    SPRTResult,
    bayesian_estimate,
    estimate_probability,
    sprt,
)

__all__ = ["InitialDistribution", "StatisticalModelChecker"]


Sampler = Callable[[random.Random], float]


@dataclass
class InitialDistribution:
    """Probabilistic initial states (and optionally parameters).

    Each entry maps a variable/parameter name to either

    * a constant float,
    * a ``(lo, hi)`` tuple -- uniform on the interval, or
    * a callable ``rng -> float`` for arbitrary distributions.
    """

    entries: Mapping[str, float | tuple[float, float] | Sampler] = field(
        default_factory=dict
    )

    def sample(self, rng: random.Random) -> dict[str, float]:
        out: dict[str, float] = {}
        for name, spec in self.entries.items():
            if callable(spec):
                out[name] = float(spec(rng))
            elif isinstance(spec, tuple):
                lo, hi = spec
                out[name] = rng.uniform(float(lo), float(hi))
            else:
                out[name] = float(spec)
        return out


class StatisticalModelChecker:
    """Sampling-based verifier for BLTL properties.

    Parameters
    ----------
    model:
        An :class:`ODESystem` or :class:`HybridAutomaton`.
    init:
        Distribution over initial states (names must cover the model's
        state variables) and, optionally, over parameters.
    horizon:
        Simulation time per sample; must cover the property's horizon.
    seed:
        RNG seed for reproducibility.
    batch_size:
        How many particles are drawn and propagated per vectorized
        integration pass (plain ODE models only; hybrid models simulate
        per sample because mode switching desynchronizes the batch).

    Notes
    -----
    The batched ODE path integrates with *fixed-step* RK4 at
    ``dt = max_step`` (default ``horizon/200``) -- the same step the
    adaptive integrator was previously capped at; ``rtol`` governs the
    adaptive rk45 retry of blown-up particles, hybrid-model sampling,
    and :meth:`sample_trajectory`.  Set ``max_step`` smaller (or
    ``batch_size=1``-equivalent accuracy via a tiny ``max_step``) for
    stiff models where step-size control matters.
    """

    def __init__(
        self,
        model: ODESystem | HybridAutomaton,
        init: InitialDistribution | Mapping,
        horizon: float,
        seed: int = 0,
        rtol: float = 1e-6,
        max_step: float | None = None,
        batch_size: int = 64,
        kernel: str = "numpy",
    ):
        self.model = model
        self.init = (
            init if isinstance(init, InitialDistribution) else InitialDistribution(dict(init))
        )
        self.horizon = float(horizon)
        self.rng = random.Random(seed)
        self.rtol = rtol
        self.max_step = max_step
        self.batch_size = max(1, int(batch_size))
        # vector-field execution backend of the batched RK4 pass
        # ("numpy" or "numba"; see repro.odes.integrators.rk4_batch)
        self.kernel = kernel
        if isinstance(model, HybridAutomaton):
            self._states = list(model.variables)
            self._params = set(model.params)
        else:
            self._states = list(model.state_names)
            self._params = set(model.params)

    # ------------------------------------------------------------------
    def sample_trajectory(self):
        """One random trajectory (flattened for hybrid models)."""
        draw = self.init.sample(self.rng)
        x0, p = self._split_draw(draw)
        if isinstance(self.model, HybridAutomaton):
            htraj = simulate_hybrid(
                self.model, x0, t_final=self.horizon, params=p, rtol=self.rtol,
                max_step=self.max_step,
            )
            return htraj.flatten()
        return rk45(
            self.model, x0, (0.0, self.horizon), params=p, rtol=self.rtol,
            max_step=self.max_step if self.max_step else self.horizon / 200.0,
        )

    def _split_draw(self, draw: Mapping[str, float]) -> tuple[dict, dict]:
        x0 = {k: v for k, v in draw.items() if k in self._states}
        p = {k: v for k, v in draw.items() if k in self._params}
        missing = set(self._states) - set(x0)
        if missing:
            raise ValueError(f"initial distribution misses states {sorted(missing)}")
        return x0, p

    def _propagate_population(self, n: int) -> list:
        """Draw ``n`` initial conditions and integrate them in one
        batched RK4 pass (the SMC batch axis).

        Particles the fixed-step pass loses to blow-up are retried with
        the adaptive per-sample integrator; if that fails too, the
        failure propagates like a scalar simulation failure would.
        """
        draws = [self.init.sample(self.rng) for _ in range(n)]
        splits = [self._split_draw(d) for d in draws]
        dt = self.max_step if self.max_step else self.horizon / 200.0
        trajs = rk4_batch(
            self.model,
            [x0 for x0, _ in splits],
            (0.0, self.horizon),
            dt=dt,
            params=[p for _, p in splits],
            kernel=self.kernel,
        )
        for i, traj in enumerate(trajs):
            if traj is None:
                x0, p = splits[i]
                trajs[i] = rk45(
                    self.model, x0, (0.0, self.horizon), params=p, rtol=self.rtol,
                    max_step=self.max_step if self.max_step else self.horizon / 200.0,
                )
        return trajs

    def _bernoulli(self, phi: BLTL) -> Callable[[], bool]:
        counter = itertools.count(1)

        if isinstance(self.model, HybridAutomaton):
            def draw() -> bool:
                _progress("smc", "sampling", samples=next(counter))
                traj = self.sample_trajectory()
                return monitor(phi, traj)

            return draw

        buffer: list[bool] = []

        def draw_batched() -> bool:
            _progress("smc", "sampling", samples=next(counter))
            if not buffer:
                trajs = self._propagate_population(self.batch_size)
                buffer.extend(monitor(phi, t) for t in trajs)
            return buffer.pop(0)

        return draw_batched

    # ------------------------------------------------------------------
    # The three SMC queries
    # ------------------------------------------------------------------
    def probability(
        self, phi: BLTL, epsilon: float = 0.05, alpha: float = 0.05
    ) -> tuple[float, int]:
        """Chernoff-guaranteed estimate of ``P(model |= phi)``."""
        return estimate_probability(self._bernoulli(phi), epsilon, alpha)

    def hypothesis_test(
        self,
        phi: BLTL,
        theta: float,
        alpha: float = 0.05,
        beta: float = 0.05,
        indifference: float = 0.05,
        max_samples: int = 100_000,
    ) -> SPRTResult:
        """SPRT for ``P(model |= phi) >= theta``."""
        return sprt(
            self._bernoulli(phi), theta, alpha, beta, indifference, max_samples
        )

    def bayesian(
        self, phi: BLTL, n: int = 200, credibility: float = 0.95
    ) -> BayesianEstimate:
        """Beta-posterior estimate of ``P(model |= phi)``."""
        return bayesian_estimate(self._bernoulli(phi), n, credibility=credibility)
