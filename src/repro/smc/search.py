"""SMC-based parameter estimation (paper Fig. 2 left loop, [11]-[13]).

When delta-decision calibration rejects a model (or is too expensive),
the paper's framework falls back to statistical search: equip a global
parameter-search algorithm with an SMC/robustness-based fitness.  We
implement two engines used in the cited work:

* **Cross-entropy method**: iteratively refit a Gaussian proposal to the
  elite fraction of sampled parameter vectors.
* **Genetic algorithm**: tournament selection, blend crossover, Gaussian
  mutation.

Fitness is the mean BLTL robustness (or a user objective) over sampled
trajectories, so probabilistic initial states are supported for free.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Callable, Mapping

from repro.intervals import Box
from repro.odes import ODESystem, rk4_batch, rk45
from repro.hybrid import HybridAutomaton, simulate_hybrid
from repro.progress import emit as _progress

from .bltl import BLTL, robustness
from .engine import InitialDistribution

__all__ = ["SearchResult", "smc_objective", "cross_entropy_search", "genetic_search"]


@dataclass
class SearchResult:
    """Outcome of a stochastic parameter search."""

    best_params: dict[str, float]
    best_fitness: float
    history: list[float] = field(default_factory=list)
    evaluations: int = 0

    @property
    def satisfied(self) -> bool:
        """Positive robustness = the property holds for the best params."""
        return self.best_fitness > 0.0


def smc_objective(
    model: ODESystem | HybridAutomaton,
    phi: BLTL,
    init: InitialDistribution | Mapping,
    horizon: float,
    n_samples: int = 4,
    seed: int = 0,
    rtol: float = 1e-6,
    kernel: str = "numpy",
) -> Callable[[Mapping[str, float]], float]:
    """Fitness: mean BLTL robustness over sampled initial conditions.

    Returns a function ``params -> fitness`` suitable for the search
    engines below.  Simulation failures score ``-inf``.

    ODE models propagate all ``n_samples`` draws in one batched
    fixed-step RK4 pass (``dt = horizon/400``); ``rtol`` governs the
    per-sample adaptive retry of blown-up particles and hybrid-model
    simulation.
    """
    init = init if isinstance(init, InitialDistribution) else InitialDistribution(dict(init))
    if isinstance(model, HybridAutomaton):
        states = list(model.variables)
    else:
        states = list(model.state_names)

    def fitness(params: Mapping[str, float]) -> float:
        rng = random.Random(seed)  # common random numbers across candidates
        total = 0.0
        if isinstance(model, HybridAutomaton):
            for _ in range(n_samples):
                draw = init.sample(rng)
                x0 = {k: draw[k] for k in states}
                try:
                    traj = simulate_hybrid(
                        model, x0, t_final=horizon, params=dict(params), rtol=rtol
                    ).flatten()
                    total += robustness(phi, traj)
                except Exception:
                    return -math.inf
            return total / n_samples
        # ODE models: draw the whole sample population and propagate it
        # in one batched RK4 pass (per-particle rk45 retry on blow-up).
        draws = [init.sample(rng) for _ in range(n_samples)]
        x0s = [{k: d[k] for k in states} for d in draws]
        try:
            trajs = rk4_batch(
                model, x0s, (0.0, horizon), dt=horizon / 400.0,
                params=dict(params), kernel=kernel,
            )
            for x0, traj in zip(x0s, trajs):
                if traj is None:
                    traj = rk45(model, x0, (0.0, horizon), params=dict(params), rtol=rtol)
                total += robustness(phi, traj)
        except Exception:
            return -math.inf
        return total / n_samples

    return fitness


def cross_entropy_search(
    objective: Callable[[Mapping[str, float]], float],
    param_box: Box | Mapping[str, tuple[float, float]],
    population: int = 40,
    elite_frac: float = 0.25,
    iterations: int = 20,
    seed: int = 0,
    smoothing: float = 0.7,
    target: float | None = None,
) -> SearchResult:
    """Cross-entropy method over a bounded parameter box.

    Proposal: independent Gaussians per dimension, clipped to the box;
    refit to the elite samples each iteration with smoothing.  Stops
    early when ``target`` fitness is reached.
    """
    box = param_box if isinstance(param_box, Box) else Box.from_bounds(dict(param_box))
    rng = random.Random(seed)
    names = box.names
    mu = {k: box[k].midpoint() for k in names}
    sigma = {k: max(box[k].width() / 4.0, 1e-12) for k in names}
    n_elite = max(2, int(population * elite_frac))

    best: dict[str, float] | None = None
    best_fit = -math.inf
    history: list[float] = []
    evals = 0

    for it in range(iterations):
        samples: list[tuple[float, dict[str, float]]] = []
        for _ in range(population):
            _progress(
                "search", "cross-entropy",
                iteration=it + 1, evaluations=evals, best=best_fit,
            )
            cand = {
                k: min(max(rng.gauss(mu[k], sigma[k]), box[k].lo), box[k].hi)
                for k in names
            }
            fit = objective(cand)
            evals += 1
            samples.append((fit, cand))
        samples.sort(key=lambda s: s[0], reverse=True)
        if samples[0][0] > best_fit:
            best_fit, best = samples[0]
        history.append(best_fit)
        if target is not None and best_fit >= target:
            break
        elite = [c for _, c in samples[:n_elite]]
        for k in names:
            vals = [e[k] for e in elite]
            m = sum(vals) / len(vals)
            s = math.sqrt(sum((v - m) ** 2 for v in vals) / len(vals)) + 1e-12
            mu[k] = smoothing * m + (1 - smoothing) * mu[k]
            sigma[k] = smoothing * s + (1 - smoothing) * sigma[k]

    assert best is not None
    return SearchResult(best, best_fit, history, evals)


def genetic_search(
    objective: Callable[[Mapping[str, float]], float],
    param_box: Box | Mapping[str, tuple[float, float]],
    population: int = 40,
    generations: int = 20,
    seed: int = 0,
    mutation_rate: float = 0.2,
    tournament: int = 3,
    target: float | None = None,
) -> SearchResult:
    """Simple real-coded genetic algorithm over a bounded parameter box."""
    box = param_box if isinstance(param_box, Box) else Box.from_bounds(dict(param_box))
    rng = random.Random(seed)
    names = box.names

    def clip(k: str, v: float) -> float:
        return min(max(v, box[k].lo), box[k].hi)

    pop = [box.sample_random(rng) for _ in range(population)]
    fits = [objective(ind) for ind in pop]
    evals = population
    history: list[float] = []
    best_idx = max(range(population), key=lambda i: fits[i])
    best, best_fit = dict(pop[best_idx]), fits[best_idx]

    for gen in range(generations):
        _progress(
            "search", "genetic",
            generation=gen + 1, evaluations=evals, best=best_fit,
        )
        new_pop: list[dict[str, float]] = [dict(best)]  # elitism
        while len(new_pop) < population:
            # tournament selection of two parents
            def select() -> dict[str, float]:
                idxs = [rng.randrange(population) for _ in range(tournament)]
                return pop[max(idxs, key=lambda i: fits[i])]

            pa, pb = select(), select()
            alpha = rng.random()
            child = {k: clip(k, alpha * pa[k] + (1 - alpha) * pb[k]) for k in names}
            for k in names:
                if rng.random() < mutation_rate:
                    child[k] = clip(k, child[k] + rng.gauss(0.0, box[k].width() / 10.0))
            new_pop.append(child)
        pop = new_pop
        fits = [objective(ind) for ind in pop]
        evals += population
        gen_best = max(range(population), key=lambda i: fits[i])
        if fits[gen_best] > best_fit:
            best, best_fit = dict(pop[gen_best]), fits[gen_best]
        history.append(best_fit)
        if target is not None and best_fit >= target:
            break

    return SearchResult(best, best_fit, history, evals)
