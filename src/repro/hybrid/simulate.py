"""Concrete (point) simulation of hybrid automata.

Produces hybrid trajectories in the sense of paper Definitions 8-10: a
hybrid time domain of dwell intervals, a labeling of steps to modes, and
a piecewise-continuous state evolution with resets at jumps.

The simulator uses urgent jump semantics by default (a transition fires
as soon as its guard becomes true, located by bisection), which matches
the "molecular signature triggers treatment" reading of the paper's
Fig. 3.  Nondeterminism among simultaneously enabled jumps is resolved
by declaration order.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Mapping

import numpy as np

from repro.logic import And, Atom, Exists, FalseFormula, Forall, Formula, Or, TrueFormula
from repro.odes import Trajectory, rk45

from .automaton import HybridAutomaton, Jump

__all__ = ["HybridSegment", "HybridTrajectory", "simulate_hybrid", "formula_margin"]


def formula_margin(phi: Formula, env: Mapping[str, float]) -> float:
    """A continuous satisfaction margin: ``>= 0`` iff ``phi`` holds.

    Atoms map to their term value, conjunction to min, disjunction to
    max -- the standard quantitative semantics used for event location.
    """
    if isinstance(phi, TrueFormula):
        return math.inf
    if isinstance(phi, FalseFormula):
        return -math.inf
    if isinstance(phi, Atom):
        return phi.term.eval(env)
    if isinstance(phi, And):
        return min(formula_margin(p, env) for p in phi.parts)
    if isinstance(phi, Or):
        return max(formula_margin(p, env) for p in phi.parts)
    if isinstance(phi, (Exists, Forall)):
        raise TypeError("quantified guards are not supported in simulation")
    raise TypeError(type(phi).__name__)


@dataclass
class HybridSegment:
    """One continuous dwell: mode name plus the trajectory inside it."""

    mode: str
    trajectory: Trajectory

    @property
    def t0(self) -> float:
        return self.trajectory.t0

    @property
    def t_end(self) -> float:
        return self.trajectory.t_end


@dataclass
class HybridTrajectory:
    """A trajectory of a hybrid automaton (Definition 10).

    ``segments[i]`` is the i-th continuous flow; consecutive segments
    are linked by jumps (resets may make the state discontinuous).
    """

    segments: list[HybridSegment]
    jumps_taken: list[Jump] = field(default_factory=list)
    stopped_reason: str = "time"  # "time" | "invariant" | "deadlock" | "max_jumps"

    @property
    def t_end(self) -> float:
        return self.segments[-1].t_end if self.segments else 0.0

    @property
    def t0(self) -> float:
        return self.segments[0].t0 if self.segments else 0.0

    def mode_path(self) -> list[str]:
        """The discrete mode sequence (labeling function of Def. 10)."""
        return [seg.mode for seg in self.segments]

    def mode_at(self, t: float) -> str:
        for seg in self.segments:
            if seg.t0 - 1e-12 <= t <= seg.t_end + 1e-12:
                return seg.mode
        raise ValueError(f"time {t} outside trajectory")

    def at(self, t: float) -> dict[str, float]:
        """Continuous state at time ``t`` (first matching segment)."""
        for seg in self.segments:
            if seg.t0 - 1e-12 <= t <= seg.t_end + 1e-12:
                return seg.trajectory.at(min(max(t, seg.t0), seg.t_end))
        raise ValueError(f"time {t} outside trajectory")

    def value(self, name: str, t: float) -> float:
        return self.at(t)[name]

    def final(self) -> dict[str, float]:
        return self.segments[-1].trajectory.final()

    def dwell_times(self) -> list[float]:
        return [seg.t_end - seg.t0 for seg in self.segments]

    def flatten(self) -> Trajectory:
        """Concatenate segments into one trajectory (resets appear as
        repeated time samples with different states)."""
        names = self.segments[0].trajectory.names
        times: list[float] = []
        rows: list[np.ndarray] = []
        for seg in self.segments:
            times.extend(seg.trajectory.times.tolist())
            rows.extend(list(seg.trajectory.states))
        # enforce strictly increasing times by nudging duplicates
        out_t = np.array(times)
        for i in range(1, len(out_t)):
            if out_t[i] <= out_t[i - 1]:
                out_t[i] = np.nextafter(out_t[i - 1], np.inf)
        return Trajectory(out_t, np.array(rows), names)


def simulate_hybrid(
    automaton: HybridAutomaton,
    x0: Mapping[str, float] | None = None,
    t_final: float = 10.0,
    params: Mapping[str, float] | None = None,
    max_jumps: int = 100,
    jump_policy: str = "urgent",
    rtol: float = 1e-7,
    max_step: float | None = None,
    min_dwell: float = 1e-9,
) -> HybridTrajectory:
    """Simulate ``automaton`` from ``x0`` for ``t_final`` time units.

    Parameters
    ----------
    x0:
        Initial continuous state; defaults to the midpoint of the
        initial box.
    jump_policy:
        ``"urgent"``: the earliest enabled jump fires at its guard's
        zero-crossing.  ``"boundary"``: jumps fire only when the mode
        invariant is about to be violated (and some guard is enabled).
    min_dwell:
        Zeno guard -- a fired jump must be preceded by at least this
        much dwell, except immediately after a reset.
    """
    p = {**automaton.params, **(params or {})}
    if x0 is None:
        x0 = automaton.initial_box().midpoint()
    state = {k: float(x0[k]) for k in automaton.variables}
    mode_name = automaton.initial_mode

    segments: list[HybridSegment] = []
    jumps_taken: list[Jump] = []
    t = 0.0
    reason = "time"

    while True:
        if t >= t_final - 1e-12:
            break
        system = automaton.mode_system(mode_name)
        seg_traj = rk45(
            system,
            state,
            (t, t_final),
            params=p,
            rtol=rtol,
            max_step=max_step if max_step is not None else (t_final - t) / 50.0,
        )
        mode = automaton.mode(mode_name)
        outgoing = automaton.jumps_from(mode_name)

        event_t, fired = _first_event(
            seg_traj, mode.invariant, outgoing, p, jump_policy
        )

        if event_t is None:
            segments.append(HybridSegment(mode_name, seg_traj))
            t = seg_traj.t_end
            break

        clipped = seg_traj.restricted(seg_traj.t0, event_t)
        segments.append(HybridSegment(mode_name, clipped))
        state_at_event = clipped.final()

        if fired is None:
            # invariant violated with no enabled jump
            reason = "invariant"
            t = event_t
            break

        if len(jumps_taken) >= max_jumps:
            reason = "max_jumps"
            t = event_t
            break

        state = fired.apply_reset(state_at_event, p)
        jumps_taken.append(fired)
        mode_name = fired.target
        t = event_t
        if event_t - clipped.t0 < min_dwell and len(jumps_taken) > 3:
            reason = "zeno"
            break

    if not segments:
        # degenerate zero-length trajectory
        names = automaton.variables
        seg = Trajectory(
            np.array([t, t]),
            np.array([[state[n] for n in names]] * 2),
            list(names),
        )
        segments.append(HybridSegment(mode_name, seg))

    return HybridTrajectory(segments, jumps_taken, reason)


def _first_event(
    traj: Trajectory,
    invariant: Formula,
    outgoing: list[Jump],
    params: Mapping[str, float],
    jump_policy: str,
) -> tuple[float | None, Jump | None]:
    """Earliest invariant exit or guard activation along ``traj``.

    Returns ``(event_time, jump)``; ``jump`` is None for a pure
    invariant violation.  ``(None, None)`` means no event.
    """

    def margin_fn(phi: Formula) -> Callable[[dict[str, float]], float]:
        def fn(state: dict[str, float]) -> float:
            return formula_margin(phi, {**params, **state})

        return fn

    candidates: list[tuple[float, Jump | None]] = []

    if not isinstance(invariant, TrueFormula):
        t_inv = _first_crossing(traj, margin_fn(invariant), falling=True)
        if t_inv is not None:
            candidates.append((t_inv, None))

    if jump_policy == "urgent":
        for j in outgoing:
            g = margin_fn(j.guard)
            # already enabled at segment start?
            if g(traj.at(traj.t0)) >= 0.0:
                candidates.append((traj.t0, j))
                continue
            t_g = _first_crossing(traj, g, falling=False)
            if t_g is not None:
                candidates.append((t_g, j))
    elif jump_policy == "boundary":
        # jumps fire only at invariant exit; choose the first enabled one
        if candidates:
            t_exit = candidates[0][0]
            st = traj.at(t_exit)
            for j in outgoing:
                if margin_fn(j.guard)(st) >= 0.0:
                    candidates = [(t_exit, j)]
                    break
    else:
        raise ValueError(f"unknown jump policy {jump_policy!r}")

    if not candidates:
        return None, None
    candidates.sort(key=lambda c: (c[0], c[1] is None))
    return candidates[0]


def _first_crossing(
    traj: Trajectory,
    fn: Callable[[dict[str, float]], float],
    falling: bool,
    tol: float = 1e-10,
) -> float | None:
    """First time ``fn`` crosses zero (rising by default)."""
    sign = -1.0 if falling else 1.0
    values = [sign * fn(dict(zip(traj.names, row))) for row in traj.states]
    for i in range(1, len(values)):
        a, b = values[i - 1], values[i]
        if a < 0.0 <= b:
            lo, hi = float(traj.times[i - 1]), float(traj.times[i])
            flo = a
            while hi - lo > tol * max(1.0, abs(hi)):
                mid = 0.5 * (lo + hi)
                fmid = sign * fn(traj.at(mid))
                if (flo < 0.0) == (fmid < 0.0):
                    lo, flo = mid, fmid
                else:
                    hi = mid
            return hi
    return None
