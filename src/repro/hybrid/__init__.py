"""Hybrid automata (S6 in DESIGN.md).

The multi-mode model class of paper Section III-B: modes with nonlinear
ODE flows, guarded jumps with resets, invariants, parameterization, and
a concrete simulator producing hybrid trajectories (Definitions 8-10).
"""

from .automaton import HybridAutomaton, Jump, Mode
from .simulate import (
    HybridSegment,
    HybridTrajectory,
    formula_margin,
    simulate_hybrid,
)

__all__ = [
    "HybridAutomaton",
    "Mode",
    "Jump",
    "HybridSegment",
    "HybridTrajectory",
    "simulate_hybrid",
    "formula_margin",
]
