"""Hybrid automata with L_RF-representable components.

Implements the model class of paper Section III-B: a hybrid automaton
``H = <X, Q, flow, jump, inv, init>`` (Definition 6) where each mode's
flow is a symbolic ODE system, and guards, invariants, resets and
initial conditions are L_RF formulas/expressions over the continuous
variables and parameters.  Parameterization (Definition 12) falls out
naturally: parameters are free symbols shared by all components, and
the synthesis layers search over them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from repro.expr import ExprLike, as_expr
from repro.intervals import Box
from repro.logic import TRUE, Formula
from repro.odes import ODESystem

__all__ = ["Mode", "Jump", "HybridAutomaton"]


@dataclass
class Mode:
    """A discrete control mode with its continuous dynamics.

    Parameters
    ----------
    name:
        Mode identifier (element of Q).
    derivatives:
        Vector field of the mode, mapping each state variable to its
        time derivative (the mode's ``flow`` predicate).
    invariant:
        Formula over states/parameters that must hold while the system
        dwells in this mode (``inv``); default unconstrained.
    """

    name: str
    derivatives: Mapping[str, ExprLike]
    invariant: Formula = TRUE

    def __post_init__(self):
        self.derivatives = {k: as_expr(v) for k, v in self.derivatives.items()}


@dataclass
class Jump:
    """A discrete transition (element of the ``jump`` relation).

    Parameters
    ----------
    source, target:
        Mode names.
    guard:
        Enabling condition over states/parameters; the transition may
        (urgent semantics: must) fire when it becomes true.
    reset:
        Mapping from state name to its post-jump value as an expression
        over the pre-jump states; unmentioned states are unchanged.
    """

    source: str
    target: str
    guard: Formula = TRUE
    reset: Mapping[str, ExprLike] = field(default_factory=dict)

    def __post_init__(self):
        self.reset = {k: as_expr(v) for k, v in self.reset.items()}

    def apply_reset(
        self, state: Mapping[str, float], params: Mapping[str, float]
    ) -> dict[str, float]:
        env = {**params, **state}
        out = dict(state)
        for k, e in self.reset.items():
            out[k] = e.eval(env)
        return out

    def __repr__(self) -> str:
        return f"Jump({self.source} -> {self.target}, guard={self.guard})"


@dataclass
class HybridAutomaton:
    """``H = <X, Q, flow, jump, inv, init>`` with symbolic components.

    Parameters
    ----------
    variables:
        Names of the continuous state variables (dimension of X).
    modes:
        The discrete modes Q with their flows and invariants.
    jumps:
        The discrete transitions.
    initial_mode:
        q0 (the paper assumes a unique initial mode).
    init:
        Either a :class:`Box` over the state variables or a
        :class:`Formula`; describes ``init_q0``.
    params:
        Default values of the shared parameters; synthesis layers
        treat a chosen subset as unknowns.
    name:
        Human-readable model name.
    """

    variables: list[str]
    modes: list[Mode]
    jumps: list[Jump]
    initial_mode: str
    init: Box | Formula
    params: Mapping[str, float] = field(default_factory=dict)
    name: str = "hybrid"

    def __post_init__(self):
        self.params = dict(self.params)
        self._mode_map = {m.name: m for m in self.modes}
        if len(self._mode_map) != len(self.modes):
            raise ValueError("duplicate mode names")
        if self.initial_mode not in self._mode_map:
            raise ValueError(f"unknown initial mode {self.initial_mode!r}")
        states = set(self.variables)
        clash = states & set(self.params)
        if clash:
            raise ValueError(f"names used as both state and parameter: {sorted(clash)}")
        for m in self.modes:
            if set(m.derivatives) != states:
                raise ValueError(
                    f"mode {m.name!r} derivatives cover {sorted(m.derivatives)}, "
                    f"expected {sorted(states)}"
                )
            self._check_symbols(m.invariant.variables(), f"invariant of {m.name!r}")
            for k, e in m.derivatives.items():
                self._check_symbols(e.variables(), f"flow of {m.name!r}.{k}")
        for j in self.jumps:
            if j.source not in self._mode_map or j.target not in self._mode_map:
                raise ValueError(f"jump references unknown mode: {j}")
            self._check_symbols(j.guard.variables(), f"guard {j.source}->{j.target}")
            for k, e in j.reset.items():
                if k not in states:
                    raise ValueError(f"reset of unknown variable {k!r}")
                self._check_symbols(e.variables(), f"reset {j.source}->{j.target}.{k}")

    def _check_symbols(self, symbols: frozenset[str], where: str) -> None:
        unknown = symbols - set(self.variables) - set(self.params) - {"t"}
        if unknown:
            raise ValueError(f"{where} mentions unbound symbols {sorted(unknown)}")

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    def mode(self, name: str) -> Mode:
        return self._mode_map[name]

    @property
    def mode_names(self) -> list[str]:
        return [m.name for m in self.modes]

    def jumps_from(self, mode_name: str) -> list[Jump]:
        return [j for j in self.jumps if j.source == mode_name]

    def mode_system(self, mode_name: str) -> ODESystem:
        """The mode's flow as an :class:`ODESystem` (params inherited)."""
        m = self._mode_map[mode_name]
        return ODESystem(m.derivatives, self.params, name=f"{self.name}.{mode_name}")

    def initial_box(self) -> Box:
        """The initial set as a box (requires ``init`` to be a Box)."""
        if isinstance(self.init, Box):
            return self.init
        raise TypeError("init is a formula; use init_formula() instead")

    def init_formula(self) -> Formula:
        """The initial set as a formula over the state variables."""
        if isinstance(self.init, Box):
            from repro.logic import box_formula

            return box_formula(self.init)
        return self.init

    # ------------------------------------------------------------------
    # Transformation
    # ------------------------------------------------------------------
    def with_params(self, **overrides: float) -> "HybridAutomaton":
        unknown = set(overrides) - set(self.params)
        if unknown:
            raise KeyError(f"unknown parameters: {sorted(unknown)}")
        return HybridAutomaton(
            list(self.variables),
            self.modes,
            self.jumps,
            self.initial_mode,
            self.init,
            {**self.params, **overrides},
            name=self.name,
        )

    def single_mode(self) -> ODESystem | None:
        """If |Q| == 1, the automaton degenerates to a plain ODE system."""
        if len(self.modes) == 1:
            return self.mode_system(self.modes[0].name)
        return None

    def __repr__(self) -> str:
        return (
            f"HybridAutomaton({self.name!r}, |Q|={len(self.modes)}, "
            f"dim={len(self.variables)}, jumps={len(self.jumps)})"
        )
