"""ODE substrate (S5 in DESIGN.md).

Symbolic vector fields, numerical integrators (RK4, Dormand-Prince
RK45) with dense output and event location, and validated interval
enclosures that realize ODE flows as computable functions (paper
Definition 7).
"""

from .system import ODESystem
from .integrators import (
    IntegrationError,
    Trajectory,
    find_event,
    rk4,
    rk4_batch,
    rk45,
    simulate,
)
from .enclosure import EnclosureError, ReachTube, TubeStep, flow_enclosure

__all__ = [
    "ODESystem",
    "Trajectory",
    "IntegrationError",
    "rk4",
    "rk4_batch",
    "rk45",
    "simulate",
    "find_event",
    "ReachTube",
    "TubeStep",
    "flow_enclosure",
    "EnclosureError",
]
