"""Symbolic ODE systems.

An :class:`ODESystem` is the single-mode model class of the paper
(Section I: "a standard approach of modeling the dynamics of a
biochemical network is through a system of ordinary differential
equations"): a vector field ``dx/dt = f(x, p, t)`` given symbolically,
so it can be simulated numerically, enclosed with interval arithmetic
(making the flow a *computable function* in the sense of Definition 7),
and differentiated for Jacobians and Lie derivatives.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping, Sequence

import numpy as np

from repro.expr import Expr, ExprLike, as_expr, compile_vector_field
from repro.expr.compile import compile_vector_field_batch
from repro.intervals import Box, Interval

__all__ = ["ODESystem"]


@dataclass
class ODESystem:
    """A parameterized system of ODEs ``dx_i/dt = f_i(x, p, t)``.

    Parameters
    ----------
    derivatives:
        Mapping from state-variable name to its time derivative as an
        expression.  Expressions may mention states, parameters and the
        reserved time variable ``t``.
    params:
        Default parameter values.  Every free variable of the
        derivatives that is not a state and not ``t`` must appear here.
    name:
        Optional human-readable model name.
    """

    derivatives: Mapping[str, ExprLike]
    params: Mapping[str, float] = field(default_factory=dict)
    name: str = "ode"

    def __post_init__(self):
        self.derivatives = {k: as_expr(v) for k, v in self.derivatives.items()}
        self.params = dict(self.params)
        free = set().union(*(e.variables() for e in self.derivatives.values())) if self.derivatives else set()
        states = set(self.derivatives)
        unknown = free - states - set(self.params) - {"t"}
        if unknown:
            raise ValueError(
                f"vector field mentions unbound symbols {sorted(unknown)}; "
                "add them to params or states"
            )
        self._compiled: Callable | None = None
        self._compiled_batch: dict[str, Callable] = {}

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def state_names(self) -> list[str]:
        return list(self.derivatives)

    @property
    def param_names(self) -> list[str]:
        return list(self.params)

    @property
    def dim(self) -> int:
        return len(self.derivatives)

    def is_autonomous(self) -> bool:
        return all("t" not in e.variables() for e in self.derivatives.values())

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def rhs(self) -> Callable[[float, np.ndarray, Mapping[str, float]], np.ndarray]:
        """Compiled vector field ``f(t, y, params) -> ndarray``."""
        if self._compiled is None:
            self._compiled = compile_vector_field(
                list(self.derivatives.values()),
                self.state_names,
                self.param_names,
            )
        return self._compiled

    def rhs_batch(
        self, kernel: str = "numpy"
    ) -> Callable[[float, np.ndarray, Mapping], np.ndarray]:
        """Compiled batched vector field ``f(t, Y, params) -> ndarray``.

        ``Y`` has shape ``(dim, n)`` -- one column per particle; params
        may be scalars or per-particle ``(n,)`` arrays.  ``kernel``
        selects the execution backend (``"numpy"`` or ``"numba"``; the
        jitted field falls back to numpy when unavailable); one compiled
        field is cached per kernel.
        """
        if kernel not in self._compiled_batch:
            self._compiled_batch[kernel] = compile_vector_field_batch(
                list(self.derivatives.values()),
                self.state_names,
                self.param_names,
                kernel=kernel,
            )
        return self._compiled_batch[kernel]

    def eval_field(
        self, state: Mapping[str, float], params: Mapping[str, float] | None = None,
        t: float = 0.0,
    ) -> dict[str, float]:
        """Evaluate the vector field at a named state point."""
        env = {**self.params, **(params or {}), **state, "t": t}
        return {k: e.eval(env) for k, e in self.derivatives.items()}

    def eval_field_interval(
        self, box: Box, param_box: Box | None = None, t: Interval | None = None
    ) -> dict[str, Interval]:
        """Interval enclosure of the vector field over a state box."""
        env: dict[str, Interval] = {
            k: Interval.point(v) for k, v in self.params.items()
        }
        if param_box is not None:
            env.update(dict(param_box))
        env.update(dict(box))
        env["t"] = t if t is not None else Interval.point(0.0)
        return {k: e.eval_interval(env) for k, e in self.derivatives.items()}

    # ------------------------------------------------------------------
    # Calculus
    # ------------------------------------------------------------------
    def jacobian(self) -> dict[str, dict[str, Expr]]:
        """Symbolic Jacobian ``J[i][j] = d f_i / d x_j``."""
        return {
            i: {j: self.derivatives[i].diff(j).simplify() for j in self.state_names}
            for i in self.state_names
        }

    def lie_derivative(self, v: ExprLike) -> Expr:
        """Lie derivative of scalar field ``v`` along the flow.

        ``dV/dt = sum_i (dV/dx_i) * f_i`` -- the quantity that must be
        negative for a Lyapunov function (paper Section IV-C).
        """
        v = as_expr(v)
        total: Expr = as_expr(0.0)
        for name, f in self.derivatives.items():
            total = total + v.diff(name) * f
        return total.simplify()

    # ------------------------------------------------------------------
    # Transformation
    # ------------------------------------------------------------------
    def with_params(self, **overrides: float) -> "ODESystem":
        """Copy with some default parameters replaced."""
        unknown = set(overrides) - set(self.params)
        if unknown:
            raise KeyError(f"unknown parameters: {sorted(unknown)}")
        return ODESystem(
            self.derivatives, {**self.params, **overrides}, name=self.name
        )

    def substitute_params(self, names: Sequence[str] | None = None) -> "ODESystem":
        """Inline (some) parameter values into the expressions.

        Inlined parameters disappear from ``params``; the remaining ones
        stay symbolic.  Used when synthesizing over a subset of
        parameters: the searched ones stay free variables.
        """
        names = list(self.params) if names is None else list(names)
        env = {n: self.params[n] for n in names}
        remaining = {k: v for k, v in self.params.items() if k not in env}
        return ODESystem(
            {k: e.subs(env) for k, e in self.derivatives.items()},
            remaining,
            name=self.name,
        )

    def equilibria_conditions(self):
        """The formula ``f(x) = 0`` (conjunction of equality bands).

        Solving it with the delta-solver locates steady states.
        """
        from repro.logic import And, eq_zero

        return And(*[eq_zero(e) for e in self.derivatives.values()])

    def __repr__(self) -> str:
        eqs = ", ".join(f"d{k}/dt={e}" for k, e in list(self.derivatives.items())[:3])
        more = "..." if self.dim > 3 else ""
        return f"ODESystem({self.name!r}: {eqs}{more})"
