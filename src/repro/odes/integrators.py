"""Numerical ODE integration: fixed-step RK4 and adaptive Dormand-Prince.

Written from scratch (no scipy dependency in the hot path) because the
hybrid simulator needs dense output and bisection-based event location
under our control, and the SMC layer needs deterministic, seedable,
cheap trajectories.

The integrators return a :class:`Trajectory` supporting interpolation,
which the BLTL monitor (:mod:`repro.smc`) and the feature extractors
(:mod:`repro.models.cardiac`) consume.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping

import numpy as np

from .system import ODESystem

__all__ = ["Trajectory", "IntegrationError", "rk4", "rk4_batch", "rk45", "simulate"]


class IntegrationError(RuntimeError):
    """Raised when integration fails (blow-up, step underflow)."""


@dataclass
class Trajectory:
    """A sampled solution ``x(t)`` with dense-output access.

    Attributes
    ----------
    times:
        Strictly increasing sample times, shape ``(n,)``.
    states:
        Sampled states, shape ``(n, dim)``.
    names:
        State variable names (column order of ``states``).
    derivs:
        Optional vector-field samples matching ``states``; when present,
        interpolation is cubic Hermite (high-accuracy dense output),
        otherwise linear.
    """

    times: np.ndarray
    states: np.ndarray
    names: list[str]
    derivs: np.ndarray | None = None

    def __post_init__(self):
        self.times = np.asarray(self.times, dtype=float)
        self.states = np.asarray(self.states, dtype=float)
        if self.states.ndim == 1:
            self.states = self.states.reshape(-1, 1)
        if len(self.times) != len(self.states):
            raise ValueError("times/states length mismatch")
        if self.derivs is not None:
            self.derivs = np.asarray(self.derivs, dtype=float)
            if self.derivs.shape != self.states.shape:
                raise ValueError("derivs/states shape mismatch")

    def _interp_row(self, t: float) -> np.ndarray:
        """Dense-output state at ``t`` (Hermite if derivatives stored)."""
        idx = int(np.searchsorted(self.times, t, side="right")) - 1
        idx = min(max(idx, 0), len(self.times) - 2) if len(self.times) > 1 else 0
        if len(self.times) == 1:
            return self.states[0]
        t0, t1 = self.times[idx], self.times[idx + 1]
        h = t1 - t0
        y0, y1 = self.states[idx], self.states[idx + 1]
        if h <= 0:
            return y0
        s = (t - t0) / h
        if self.derivs is None:
            return y0 + s * (y1 - y0)
        d0, d1 = self.derivs[idx], self.derivs[idx + 1]
        h00 = (1 + 2 * s) * (1 - s) ** 2
        h10 = s * (1 - s) ** 2
        h01 = s * s * (3 - 2 * s)
        h11 = s * s * (s - 1)
        return h00 * y0 + h10 * h * d0 + h01 * y1 + h11 * h * d1

    @property
    def t0(self) -> float:
        return float(self.times[0])

    @property
    def t_end(self) -> float:
        return float(self.times[-1])

    def __len__(self) -> int:
        return len(self.times)

    def column(self, name: str) -> np.ndarray:
        return self.states[:, self.names.index(name)]

    def at(self, t: float) -> dict[str, float]:
        """State at time ``t`` by dense-output interpolation."""
        t = float(t)
        if not (self.t0 - 1e-12 <= t <= self.t_end + 1e-12):
            raise ValueError(f"time {t} outside trajectory [{self.t0}, {self.t_end}]")
        row = self._interp_row(min(max(t, self.t0), self.t_end))
        return dict(zip(self.names, map(float, row)))

    def value(self, name: str, t: float) -> float:
        return self.at(t)[name]

    def final(self) -> dict[str, float]:
        return dict(zip(self.names, map(float, self.states[-1])))

    def restricted(self, t_from: float, t_to: float) -> "Trajectory":
        """Sub-trajectory on ``[t_from, t_to]`` (endpoints interpolated)."""
        mask = (self.times > t_from) & (self.times < t_to)
        ts = np.concatenate([[t_from], self.times[mask], [t_to]])
        rows = [self._interp_row(t_from)] + [r for r in self.states[mask]] + [
            self._interp_row(t_to)
        ]
        derivs = None
        if self.derivs is not None:
            # endpoint derivatives approximated by the nearest sample
            i0 = int(np.searchsorted(self.times, t_from))
            i1 = int(np.searchsorted(self.times, t_to)) - 1
            i0 = min(max(i0, 0), len(self.times) - 1)
            i1 = min(max(i1, 0), len(self.times) - 1)
            derivs = np.vstack(
                [self.derivs[i0], self.derivs[mask], self.derivs[i1]]
            )
        return Trajectory(ts, np.array(rows), list(self.names), derivs)

    def concat(self, other: "Trajectory") -> "Trajectory":
        """Join two trajectories end-to-start (shared sample dropped)."""
        if other.names != self.names:
            raise ValueError("state name mismatch")
        skip = 1 if abs(other.t0 - self.t_end) < 1e-12 else 0
        derivs = None
        if self.derivs is not None and other.derivs is not None:
            derivs = np.vstack([self.derivs, other.derivs[skip:]])
        return Trajectory(
            np.concatenate([self.times, other.times[skip:]]),
            np.vstack([self.states, other.states[skip:]]),
            list(self.names),
            derivs,
        )


# ----------------------------------------------------------------------
# Fixed-step classic RK4
# ----------------------------------------------------------------------


def rk4(
    system: ODESystem,
    x0: Mapping[str, float],
    t_span: tuple[float, float],
    dt: float,
    params: Mapping[str, float] | None = None,
) -> Trajectory:
    """Classic 4th-order Runge-Kutta with fixed step ``dt``."""
    f = system.rhs()
    p = {**system.params, **(params or {})}
    names = system.state_names
    t0, t1 = map(float, t_span)
    if t1 <= t0:
        raise ValueError("t_span must be increasing")
    if dt <= 0:
        raise ValueError("dt must be positive")
    y = np.array([float(x0[n]) for n in names])
    times = [t0]
    rows = [y.copy()]
    derivs = [f(t0, y, p)]
    t = t0
    while t < t1 - 1e-12:
        h = min(dt, t1 - t)
        k1 = f(t, y, p)
        k2 = f(t + 0.5 * h, y + 0.5 * h * k1, p)
        k3 = f(t + 0.5 * h, y + 0.5 * h * k2, p)
        k4 = f(t + h, y + h * k3, p)
        y = y + (h / 6.0) * (k1 + 2 * k2 + 2 * k3 + k4)
        if not np.all(np.isfinite(y)):
            raise IntegrationError(f"state blew up at t={t + h:.6g}")
        t += h
        times.append(t)
        rows.append(y.copy())
        derivs.append(f(t, y, p))
    return Trajectory(np.array(times), np.array(rows), names, np.array(derivs))


# ----------------------------------------------------------------------
# Batched fixed-step RK4: all particles advance in lockstep
# ----------------------------------------------------------------------


def rk4_batch(
    system: ODESystem,
    x0s: "list[Mapping[str, float]]",
    t_span: tuple[float, float],
    dt: float,
    params: "list[Mapping[str, float]] | Mapping[str, float] | None" = None,
    kernel: str = "numpy",
) -> "list[Trajectory | None]":
    """Classic RK4 over a whole batch of initial conditions at once.

    The state carries a batched axis: integration runs on a ``(dim, n)``
    array, so one vectorized vector-field evaluation advances every
    particle simultaneously -- this is what lets the SMC layer propagate
    whole particle populations instead of simulating trajectories one by
    one.

    ``params`` may be one mapping shared by all particles or a list of
    per-particle mappings (values become ``(n,)`` arrays).

    Returns one :class:`Trajectory` per initial condition, in order.
    Particles whose state leaves the finite range are frozen and
    reported as ``None`` (the batch keeps going for the others), so the
    caller decides whether a blow-up is an error or a failed sample.

    ``kernel`` selects the vector-field execution backend (``"numpy"``
    or ``"numba"``; see :meth:`ODESystem.rhs_batch`).
    """
    f = system.rhs_batch(kernel)
    names = system.state_names
    t0, t1 = map(float, t_span)
    if t1 <= t0:
        raise ValueError("t_span must be increasing")
    if dt <= 0:
        raise ValueError("dt must be positive")
    n = len(x0s)
    if n == 0:
        return []
    Y = np.array([[float(x0[name]) for x0 in x0s] for name in names])
    if params is None or isinstance(params, Mapping):
        overrides = [dict(params or {})] * n
    else:
        overrides = [dict(p) for p in params]
    p: dict[str, np.ndarray | float] = {}
    for pname, default in system.params.items():
        vals = [float(o.get(pname, default)) for o in overrides]
        p[pname] = vals[0] if all(v == vals[0] for v in vals) else np.array(vals)

    alive = np.ones(n, dtype=bool)
    times = [t0]
    with np.errstate(all="ignore"):
        rows = [Y.copy()]
        derivs = [f(t0, Y, p)]
        bad0 = ~np.isfinite(Y).all(axis=0)
        alive &= ~bad0
        t = t0
        while t < t1 - 1e-12:
            h = min(dt, t1 - t)
            k1 = derivs[-1]  # f at (t, Y), stored by the previous step
            k2 = f(t + 0.5 * h, Y + 0.5 * h * k1, p)
            k3 = f(t + 0.5 * h, Y + 0.5 * h * k2, p)
            k4 = f(t + h, Y + h * k3, p)
            Y_new = Y + (h / 6.0) * (k1 + 2 * k2 + 2 * k3 + k4)
            bad = ~np.isfinite(Y_new).all(axis=0)
            newly_dead = bad & alive
            if newly_dead.any():
                # freeze blown-up particles at their last finite state
                Y_new[:, newly_dead] = Y[:, newly_dead]
                alive &= ~newly_dead
            t += h
            Y = Y_new
            times.append(t)
            rows.append(Y.copy())
            derivs.append(f(t, Y, p))

    times_arr = np.array(times)
    states = np.array(rows)   # (steps, dim, n)
    dstack = np.array(derivs)
    out: list[Trajectory | None] = []
    for i in range(n):
        if not alive[i]:
            out.append(None)
            continue
        di = dstack[:, :, i]
        if not np.isfinite(di).all():
            di = None  # frozen-neighbour NaNs never leak; drop Hermite data
        out.append(Trajectory(times_arr, states[:, :, i], list(names), di))
    return out


# ----------------------------------------------------------------------
# Adaptive Dormand-Prince RK45
# ----------------------------------------------------------------------

# Butcher tableau of Dormand-Prince 5(4)
_DP_C = np.array([0.0, 1 / 5, 3 / 10, 4 / 5, 8 / 9, 1.0, 1.0])
_DP_A = [
    [],
    [1 / 5],
    [3 / 40, 9 / 40],
    [44 / 45, -56 / 15, 32 / 9],
    [19372 / 6561, -25360 / 2187, 64448 / 6561, -212 / 729],
    [9017 / 3168, -355 / 33, 46732 / 5247, 49 / 176, -5103 / 18656],
    [35 / 384, 0.0, 500 / 1113, 125 / 192, -2187 / 6784, 11 / 84],
]
_DP_B5 = np.array([35 / 384, 0.0, 500 / 1113, 125 / 192, -2187 / 6784, 11 / 84, 0.0])
_DP_B4 = np.array(
    [5179 / 57600, 0.0, 7571 / 16695, 393 / 640, -92097 / 339200, 187 / 2100, 1 / 40]
)


def rk45(
    system: ODESystem,
    x0: Mapping[str, float],
    t_span: tuple[float, float],
    params: Mapping[str, float] | None = None,
    rtol: float = 1e-6,
    atol: float = 1e-9,
    max_step: float | None = None,
    first_step: float | None = None,
    max_steps: int = 1_000_000,
) -> Trajectory:
    """Adaptive Dormand-Prince 5(4) integration with PI step control."""
    f = system.rhs()
    p = {**system.params, **(params or {})}
    names = system.state_names
    t0, t1 = map(float, t_span)
    if t1 <= t0:
        raise ValueError("t_span must be increasing")
    span = t1 - t0
    hmax = max_step if max_step is not None else span / 10.0
    y = np.array([float(x0[n]) for n in names])
    h = first_step if first_step is not None else min(hmax, span / 100.0)
    times = [t0]
    rows = [y.copy()]
    derivs = [f(t0, y, p)]
    t = t0
    steps = 0
    while t < t1 - 1e-12:
        if steps > max_steps:
            raise IntegrationError("max step count exceeded")
        steps += 1
        h = min(h, t1 - t, hmax)
        if h < 1e-14 * max(1.0, abs(t)):
            raise IntegrationError(f"step size underflow at t={t:.6g}")
        ks = np.empty((7, len(y)))
        ks[0] = f(t, y, p)
        for i in range(1, 7):
            yi = y + h * sum(a * ks[j] for j, a in enumerate(_DP_A[i]))
            ks[i] = f(t + _DP_C[i] * h, yi, p)
        y5 = y + h * (_DP_B5 @ ks)
        y4 = y + h * (_DP_B4 @ ks)
        if not np.all(np.isfinite(y5)):
            h *= 0.25
            continue
        scale = atol + rtol * np.maximum(np.abs(y), np.abs(y5))
        err = float(np.sqrt(np.mean(((y5 - y4) / scale) ** 2)))
        if err <= 1.0:
            t += h
            y = y5
            times.append(t)
            rows.append(y.copy())
            derivs.append(ks[6])  # FSAL: k7 = f(t+h, y5)
        # PI controller
        factor = 0.9 * (err + 1e-16) ** (-0.2)
        h *= min(5.0, max(0.2, factor))
    return Trajectory(np.array(times), np.array(rows), names, np.array(derivs))


def simulate(
    system: ODESystem,
    x0: Mapping[str, float],
    t_span: tuple[float, float],
    params: Mapping[str, float] | None = None,
    method: str = "rk45",
    **kwargs,
) -> Trajectory:
    """Front door: ``simulate(system, x0, (0, 10))``."""
    if method == "rk45":
        return rk45(system, x0, t_span, params, **kwargs)
    if method == "rk4":
        dt = kwargs.pop("dt", (t_span[1] - t_span[0]) / 1000.0)
        return rk4(system, x0, t_span, dt, params)
    raise ValueError(f"unknown method {method!r}")


# ----------------------------------------------------------------------
# Event location
# ----------------------------------------------------------------------


def find_event(
    traj: Trajectory,
    event: Callable[[dict[str, float]], float],
    direction: int = 0,
    refine: Callable[[float], dict[str, float]] | None = None,
    tol: float = 1e-10,
) -> float | None:
    """First time the scalar ``event(state)`` crosses zero.

    ``direction`` restricts to rising (+1), falling (-1) or any (0)
    crossings.  The crossing is located by bisection on the
    (interpolated) trajectory; ``refine`` may supply a more accurate
    state lookup (e.g. a re-integration).
    """
    lookup = refine if refine is not None else traj.at
    values = [event(dict(zip(traj.names, row))) for row in traj.states]
    for i in range(1, len(values)):
        a, b = values[i - 1], values[i]
        if a == 0.0:
            continue
        crossed = (a < 0 <= b) if direction >= 0 else False
        crossed = crossed or ((a > 0 >= b) if direction <= 0 else False)
        if not crossed:
            continue
        lo, hi = float(traj.times[i - 1]), float(traj.times[i])
        flo = a
        while hi - lo > tol * max(1.0, abs(hi)):
            mid = 0.5 * (lo + hi)
            fmid = event(lookup(mid))
            if (flo < 0) == (fmid < 0):
                lo, flo = mid, fmid
            else:
                hi = mid
        return 0.5 * (lo + hi)
    return None
