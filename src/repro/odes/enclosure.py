"""Validated interval enclosures of ODE flows.

This is what makes a Lipschitz ODE flow a *computable function* usable
inside ``L_RF`` formulas (paper Definition 7 and Section III-C): given a
box of initial states and a box of parameters, we compute interval boxes
guaranteed to contain every solution over each time step.

Two methods are provided (``method=`` of :func:`flow_enclosure`):

``"taylor"`` -- classic two-phase validated integration:

1. **A priori enclosure** by Picard-Lindelof iteration: find a box ``B``
   with ``X0 + [0, h] * f(B) subseteq B``; then every solution starting
   in ``X0`` stays in ``B`` for the whole step ``[0, h]``.
2. **Tightening** of the step endpoint with a first- or second-order
   interval Taylor step using the a priori box for the remainder term:
   ``x(h) in X0 + h f(X0) + h^2/2 (Jf . f)(B)``.

``"lognorm"`` (default) -- a Lohner-style center/radius decomposition
that avoids the exponential wrapping of direct interval Taylor on
*stable* dynamics (which all the paper's biology models are):

* the box center is propagated with a narrow interval Taylor enclosure
  (its width is pure integration error), and
* the box radius obeys the differential inequality
  ``rho' <= mu(J) * rho + nu`` where ``mu`` is the logarithmic
  infinity-norm of the interval Jacobian over the a priori box and
  ``nu`` bounds the parameter-uncertainty forcing
  ``|df/dp| * rad(P)``; for contractive dynamics ``mu < 0`` and the
  radius *shrinks* along the flow instead of exploding.

Both are sound; ``taylor`` can be tighter for very short horizons,
``lognorm`` is dramatically tighter for long stable horizons.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Mapping

import numpy as np

from repro.expr import Expr
from repro.intervals import Box, Interval

from .system import ODESystem

__all__ = ["TubeStep", "ReachTube", "flow_enclosure", "EnclosureError"]


class EnclosureError(RuntimeError):
    """Raised when no valid a priori enclosure can be established."""


@dataclass
class TubeStep:
    """One step of a reach tube.

    ``enclosure`` contains x(s) for all s in ``time`` and all initial
    states/parameters; ``end`` contains x(time.hi).
    """

    time: Interval
    enclosure: Box
    end: Box


@dataclass
class ReachTube:
    """A validated flow pipe: consecutive :class:`TubeStep` segments."""

    steps: list[TubeStep]
    names: list[str]

    @property
    def t_end(self) -> float:
        return self.steps[-1].time.hi if self.steps else 0.0

    def final(self) -> Box:
        """Enclosure of the states at the end of the tube."""
        return self.steps[-1].end

    def enclosure_over(self, window: Interval) -> Box | None:
        """Hull of step enclosures intersecting the time ``window``."""
        hull: Box | None = None
        for step in self.steps:
            if step.time.overlaps(window):
                hull = step.enclosure if hull is None else hull.hull(step.enclosure)
        return hull

    def whole(self) -> Box:
        """Hull over the entire tube."""
        hull = self.steps[0].enclosure
        for step in self.steps[1:]:
            hull = hull.hull(step.enclosure)
        return hull

    def max_width(self) -> float:
        return max(step.end.max_width() for step in self.steps)


def _field_over(
    system: ODESystem,
    box: Box,
    param_box: Box | None,
) -> dict[str, Interval]:
    return system.eval_field_interval(box, param_box)


def _a_priori_box(
    system: ODESystem,
    x0: Box,
    h: float,
    param_box: Box | None,
    max_tries: int = 12,
) -> Box:
    """Picard-Lindelof rectangle: B with X0 + [0,h] f(B) inside B."""
    names = system.state_names
    hs = Interval(0.0, h)
    # initial guess: Euler range, inflated per-dimension proportionally
    # to the local motion scale (absolute inflation would swamp
    # small-magnitude dimensions and ruin guard pruning downstream)
    f0 = _field_over(system, x0, param_box)
    cand = Box(
        {
            n: x0[n].hull(x0[n] + hs * f0[n]).inflate(
                1e-12 + 0.1 * h * max(f0[n].magnitude(), 1e-9)
            )
            for n in names
        }
    )
    for _ in range(max_tries):
        f = _field_over(system, cand, param_box)
        image = Box({n: x0[n].hull(x0[n] + hs * f[n]) for n in names})
        if cand.contains_box(image):
            return cand
        # inflate each violated dimension past the image by the
        # overshoot amount (geometric progress toward a fixed point)
        new = {}
        for n in names:
            ci, im = cand[n], image[n]
            overshoot = max(ci.lo - im.lo, im.hi - ci.hi, 0.0)
            new[n] = ci.hull(im).inflate(1e-12 + overshoot)
        cand = Box(new)
    raise EnclosureError(
        f"no a priori enclosure for step h={h:.3g}; reduce the step size"
    )


def flow_enclosure(
    system: ODESystem,
    x0: Box | Mapping[str, tuple[float, float]],
    duration: float,
    param_box: Box | None = None,
    max_step: float = 0.1,
    order: int = 2,
    max_growth: float = 1e3,
    method: str = "lognorm",
) -> ReachTube:
    """Validated reach tube of ``system`` from the initial box ``x0``.

    Parameters
    ----------
    duration:
        Total integration time ``T``; the tube covers ``[0, T]``.
    param_box:
        Interval uncertainty for (a subset of) parameters; remaining
        parameters take their default point values.
    max_step:
        Upper bound on the per-step horizon; steps adapt downward when
        the Picard iteration fails.
    order:
        For ``method="taylor"``: 1 = interval Euler endpoint, 2 = adds
        the second-order Taylor term via the symbolic Jacobian.
    max_growth:
        Abort when the tube's widest dimension exceeds this (wrapping
        blow-up guard).
    method:
        ``"lognorm"`` (default, contractive-friendly) or ``"taylor"``
        (see module docstring).
    """
    if not isinstance(x0, Box):
        x0 = Box.from_bounds(dict(x0))
    names = system.state_names
    missing = set(names) - set(x0.names)
    if missing:
        raise ValueError(f"initial box misses state dimensions {sorted(missing)}")
    x0 = x0.restrict(names)
    if method == "lognorm":
        return _lognorm_tube(system, x0, duration, param_box, max_step, max_growth)
    if method != "taylor":
        raise ValueError(f"unknown enclosure method {method!r}")

    jac: dict[str, dict[str, Expr]] | None = system.jacobian() if order >= 2 else None

    steps: list[TubeStep] = []
    t = 0.0
    current = x0
    h = max_step
    while t < duration - 1e-12:
        h = min(h, duration - t)
        # establish an a priori box, halving h on failure
        while True:
            try:
                apriori = _a_priori_box(system, current, h, param_box)
                break
            except EnclosureError:
                h *= 0.5
                if h < 1e-9:
                    raise
        fB = _field_over(system, apriori, param_box)
        hs = Interval(0.0, h)
        enclosure = Box({n: current[n].hull(current[n] + hs * fB[n]) for n in names})

        if order >= 2 and jac is not None:
            fX = _field_over(system, current, param_box)
            env: dict[str, Interval] = {
                k: Interval.point(v) for k, v in system.params.items()
            }
            if param_box is not None:
                env.update(dict(param_box))
            env.update(dict(apriori))
            env["t"] = Interval(t, t + h)
            end = {}
            for i in names:
                # second-order remainder: (Jf . f)(B)
                rem = Interval.point(0.0)
                for j in names:
                    rem = rem + jac[i][j].eval_interval(env) * fB[j]
                end[i] = current[i] + Interval.point(h) * fX[i] + (
                    Interval.point(0.5 * h * h) * rem
                )
            endpoint = Box(end)
            # endpoint must stay inside the step enclosure; intersect for safety
            endpoint = endpoint.intersect(enclosure)
        else:
            endpoint = Box({n: current[n] + Interval.point(h) * fB[n] for n in names})
            endpoint = endpoint.intersect(enclosure)

        steps.append(TubeStep(Interval(t, t + h), enclosure, endpoint))
        t += h
        current = endpoint
        if current.max_width() > max_growth:
            raise EnclosureError(
                f"enclosure exceeded width {max_growth} at t={t:.4g} "
                "(wrapping blow-up); reduce duration or initial box width"
            )
        # gentle step growth back toward max_step
        h = min(max_step, h * 1.5)
    return ReachTube(steps, names)


# ----------------------------------------------------------------------
# Logarithmic-norm (Lohner-lite) enclosures
# ----------------------------------------------------------------------


def _log_norm_inf(
    jac, env: dict[str, Interval], names: list[str],
    weights: dict[str, float] | None = None,
) -> float:
    """Upper bound on the logarithmic infinity-norm of the Jacobian over
    the environment, in the ``d``-weighted norm ``|x| = max |x_i|/d_i``:

        mu_D = max_i ( J_ii.hi + sum_{j!=i} |J_ij|.mag * d_j / d_i )

    Any positive weight vector yields a valid norm, so the bound stays
    sound regardless of how the weights were chosen.
    """
    mu = -math.inf
    for i in names:
        row = jac[i]
        di = weights[i] if weights else 1.0
        total = row[i].eval_interval(env).hi
        for j in names:
            if j == i:
                continue
            dj = weights[j] if weights else 1.0
            total += row[j].eval_interval(env).magnitude() * (dj / di)
        mu = max(mu, total)
    return mu


def _perron_weights(
    jac, center_env: dict[str, float], names: list[str]
) -> dict[str, float]:
    """Near-optimal norm weights: the Perron-like eigenvector of the
    Metzler comparison matrix ``M_ii = J_ii``, ``M_ij = |J_ij|`` at the
    box center.  For Metzler matrices the optimal diagonal scaling of
    the infinity-log-norm achieves the spectral abscissa, with the
    positive eigenvector as weights.  Heuristic floats only -- soundness
    is independent of the choice (see :func:`_log_norm_inf`)."""
    n = len(names)
    M = np.zeros((n, n))
    for a, i in enumerate(names):
        for b, j in enumerate(names):
            try:
                v = jac[i][j].eval(center_env)
            except (ArithmeticError, KeyError):
                return {k: 1.0 for k in names}
            M[a, b] = v if a == b else abs(v)
    try:
        eigvals, eigvecs = np.linalg.eig(M)
    except np.linalg.LinAlgError:
        return {k: 1.0 for k in names}
    idx = int(np.argmax(eigvals.real))
    vec = np.abs(eigvecs[:, idx].real)
    top = float(vec.max())
    if top <= 0.0 or not np.all(np.isfinite(vec)):
        return {k: 1.0 for k in names}
    floor = 1e-3 * top
    return {k: max(float(v), floor) for k, v in zip(names, vec)}


def _center_step(
    system: ODESystem,
    center: Box,
    h: float,
    param_mid: Box | None,
    jac,
    t: float,
) -> Box:
    """Second-order interval Taylor endpoint for a (near-point) box."""
    names = system.state_names
    apriori = _a_priori_box(system, center, h, param_mid)
    fB = _field_over(system, apriori, param_mid)
    fX = _field_over(system, center, param_mid)
    env: dict[str, Interval] = {k: Interval.point(v) for k, v in system.params.items()}
    if param_mid is not None:
        env.update(dict(param_mid))
    env.update(dict(apriori))
    env["t"] = Interval(t, t + h)
    out = {}
    for i in names:
        rem = Interval.point(0.0)
        for j in names:
            rem = rem + jac[i][j].eval_interval(env) * fB[j]
        out[i] = center[i] + Interval.point(h) * fX[i] + Interval.point(0.5 * h * h) * rem
    return Box(out)


def _lognorm_tube(
    system: ODESystem,
    x0: Box,
    duration: float,
    param_box: Box | None,
    max_step: float,
    max_growth: float,
) -> ReachTube:
    """Center/radius enclosure driven by the logarithmic norm bound."""
    names = system.state_names
    jac = system.jacobian()
    param_jac: dict[str, dict[str, Expr]] | None = None
    param_rad: dict[str, float] = {}
    param_mid: Box | None = None
    if param_box is not None and len(param_box):
        pnames = param_box.names
        param_jac = {
            i: {p: system.derivatives[i].diff(p).simplify() for p in pnames}
            for i in names
        }
        param_rad = {p: param_box[p].radius() for p in pnames}
        param_mid = Box.from_point(param_box.midpoint())

    center = Box.from_point(x0.midpoint())
    radius: dict[str, float] = {n: x0[n].radius() for n in names}

    steps: list[TubeStep] = []
    t = 0.0
    h = max_step
    while t < duration - 1e-12:
        h = min(h, duration - t)
        if max(radius.values()) > max_growth:
            raise EnclosureError(
                f"enclosure radius exceeded {max_growth} at t={t:.4g}; "
                "split the initial/parameter box"
            )
        current = Box({n: center[n].inflate(radius[n]) for n in names})
        # a priori box for the whole current enclosure (halving the step
        # helps only for step-size problems, not radius blow-up: cap it)
        tries = 0
        while True:
            try:
                apriori = _a_priori_box(system, current, h, param_box)
                break
            except EnclosureError:
                h *= 0.5
                tries += 1
                if tries > 6 or h < 1e-9:
                    raise
        env: dict[str, Interval] = {
            k: Interval.point(v) for k, v in system.params.items()
        }
        if param_box is not None:
            env.update(dict(param_box))
        env.update(dict(apriori))
        env["t"] = Interval(t, t + h)

        # near-optimal norm weights from the center-point Jacobian
        center_env = {**system.params, **center.midpoint(), "t": t}
        if param_mid is not None:
            center_env.update(param_mid.midpoint())
        d = _perron_weights(jac, center_env, names)
        mu = _log_norm_inf(jac, env, names, d)

        # rho is the radius in the d-weighted norm
        rho = max(radius[n] / d[n] for n in names)
        nu = 0.0
        if param_jac is not None:
            for i in names:
                total = 0.0
                for p, rad in param_rad.items():
                    total += param_jac[i][p].eval_interval(env).magnitude() * rad
                nu = max(nu, total / d[i])

        # radius ODE: rho' <= mu * rho + nu, integrated over [0, h]
        # (outward-rounded exponential via interval arithmetic)
        growth = Interval.point(mu * h).exp().hi
        if abs(mu) > 1e-12:
            forcing = nu * max((growth - 1.0) / mu, h)
        else:
            forcing = nu * h
        # center propagation (narrow box: pure integration error)
        try:
            new_center_enc = _center_step(system, center, h, param_mid, jac, t)
        except EnclosureError:
            h *= 0.5
            if h < 1e-9:
                raise
            continue
        rho_new = growth * rho + forcing
        radius = {
            n: rho_new * d[n] + new_center_enc[n].radius() for n in names
        }
        center = Box.from_point(new_center_enc.midpoint())

        endpoint = Box({n: new_center_enc[n].inflate(radius[n]) for n in names})
        enclosure = apriori.hull(endpoint).restrict(names)
        steps.append(TubeStep(Interval(t, t + h), enclosure, endpoint))
        t += h
        h = min(max_step, h * 1.5)
    return ReachTube(steps, names)
