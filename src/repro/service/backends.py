"""Pluggable executor backends: where a job's work function runs.

The :class:`~repro.api.Engine` hands each job to an
:class:`ExecutorBackend` and gets a :class:`concurrent.futures.Future`
back; everything else (cache, events, job-state transitions) lives
above this layer, so backends stay tiny:

``inline``
    Runs the work in the submitting thread, returning an
    already-completed future.  Serial, zero overhead -- the default for
    ``Engine.run`` and single-worker batches, and the fallback for
    specs that cannot travel to a process worker.
``thread``
    A shared :class:`ThreadPoolExecutor`.  Concurrency for
    I/O-light/numpy-heavy work *with* live progress events and
    checkpoint cancellation (workers share the process, so the
    progress scope is active).
``process``
    A shared :class:`ProcessPoolExecutor` -- today's ``run_batch``
    parallelism.  True CPU parallelism; work functions and arguments
    must be picklable, and a task already running in a worker cannot
    be interrupted mid-run (cancellation drops the result instead).
``cluster``
    The distributed worker pool of :mod:`repro.cluster`: a lease
    coordinator plus ``repro worker`` processes, possibly on other
    machines.  ``"cluster"`` spawns a local pool of ``workers``
    subprocesses; ``"cluster:HOST:PORT"`` binds that address and waits
    for external workers to join.  Imported lazily so the service
    layer has no hard dependency on the cluster stack.
"""

from __future__ import annotations

import os
from concurrent.futures import Future, ProcessPoolExecutor, ThreadPoolExecutor
from typing import Any, Callable

__all__ = [
    "ExecutorBackend",
    "InlineBackend",
    "ThreadBackend",
    "ProcessBackend",
    "make_backend",
    "validate_backend_name",
    "BACKEND_NAMES",
]


class ExecutorBackend:
    """Protocol: submit a callable, get a future; shut down when done.

    ``distributed`` tells the engine whether work leaves the current
    process (so progress scopes cannot follow and arguments must be
    picklable).
    """

    name: str = ""
    distributed: bool = False

    def submit(self, fn: Callable[..., Any], /, *args: Any) -> Future:
        raise NotImplementedError

    def shutdown(self, wait: bool = True) -> None:
        """Release pool resources (no-op for poolless backends)."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class InlineBackend(ExecutorBackend):
    """Run the work immediately in the calling thread."""

    name = "inline"

    def submit(self, fn: Callable[..., Any], /, *args: Any) -> Future:
        future: Future = Future()
        future.set_running_or_notify_cancel()
        try:
            future.set_result(fn(*args))
        except BaseException as exc:  # the future is the error channel
            future.set_exception(exc)
        return future


class _PooledBackend(ExecutorBackend):
    """Shared lazy pool; created on first submit, reusable after shutdown."""

    _pool_cls: type

    def __init__(self, workers: int | None = None):
        self.workers = workers or (os.cpu_count() or 2)
        self._pool = None

    def _ensure(self):
        if self._pool is None:
            self._pool = self._pool_cls(max_workers=self.workers)
        return self._pool

    def submit(self, fn: Callable[..., Any], /, *args: Any) -> Future:
        return self._ensure().submit(fn, *args)

    def shutdown(self, wait: bool = True) -> None:
        pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=wait)

    def __repr__(self) -> str:
        return f"{type(self).__name__}(workers={self.workers})"


class ThreadBackend(_PooledBackend):
    """In-process worker threads: progress + cancellation fully live."""

    name = "thread"
    _pool_cls = ThreadPoolExecutor


class ProcessBackend(_PooledBackend):
    """Worker processes: CPU parallelism, pickle transport."""

    name = "process"
    distributed = True
    _pool_cls = ProcessPoolExecutor


_BACKENDS: dict[str, type[ExecutorBackend]] = {
    "inline": InlineBackend,
    "thread": ThreadBackend,
    "process": ProcessBackend,
}

BACKEND_NAMES = tuple(sorted(_BACKENDS)) + ("cluster",)


def validate_backend_name(name: str) -> None:
    """Raise ``ValueError`` unless ``name`` names a dispatchable backend.

    Cheap (no pools, no sockets, no imports beyond address parsing), so
    callers that accept backend names from untrusted input -- the HTTP
    ``/run`` handler foremost -- can reject a bad name at the door
    instead of discovering it when a scheduler releases the job.
    """
    if name == "cluster":
        return
    if name.startswith("cluster:"):
        from repro.cluster.protocol import parse_address

        parse_address(name[len("cluster:"):])  # ValueError on a bad address
        return
    if name not in _BACKENDS:
        raise ValueError(
            f"unknown backend {name!r}; available: {', '.join(BACKEND_NAMES)}"
        )


def make_backend(name: str, workers: int | None = None) -> ExecutorBackend:
    """Instantiate a backend by name (``inline`` ignores ``workers``).

    ``"cluster"`` builds a local worker pool; ``"cluster:HOST:PORT"``
    binds the given address for external ``repro worker`` joins (and
    spawns no local workers unless ``workers`` says otherwise).
    """
    validate_backend_name(name)
    if name == "cluster" or name.startswith("cluster:"):
        from repro.cluster.backend import ClusterBackend
        from repro.cluster.protocol import parse_address

        if name == "cluster":
            return ClusterBackend(workers)
        host, port = parse_address(name[len("cluster:"):])
        return ClusterBackend(0 if workers is None else workers, host=host, port=port)
    cls = _BACKENDS[name]
    if cls is InlineBackend:
        return cls()
    return cls(workers)
