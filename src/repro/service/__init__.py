"""The job-oriented service layer underneath :class:`repro.api.Engine`.

The analyses of this framework are long-running (ICP branch-and-prune,
SMC sampling sweeps, the full Fig. 2 pipeline), and the ROADMAP's north
star is serving them at scale.  This package turns every analysis into
a *job*:

- :mod:`repro.service.jobs` -- :class:`JobHandle`: submit / poll /
  cancel, an ordered per-job :class:`~repro.progress.ProgressEvent`
  stream, and blocking ``result(timeout=...)``.
- :mod:`repro.service.cache` -- :class:`ResultCache`: content-addressed
  (canonical-spec-hash) report cache, in-memory LRU plus an optional
  on-disk JSON store, consulted by every backend.
- :mod:`repro.service.backends` -- the :class:`ExecutorBackend`
  protocol with ``inline``, ``thread`` and ``process`` implementations.
- :mod:`repro.service.server` -- a minimal stdlib ``http.server``-based
  network surface: ``POST /run``, ``GET /jobs``, ``GET /jobs/<id>``,
  ``POST /jobs/<id>/cancel``, ``GET /cluster``; with optional per-tenant
  quotas, a persistent job journal, and graceful SIGTERM draining.

The distributed pieces (the ``cluster`` executor backend, the
persistent :class:`~repro.cluster.jobstore.JobStore`, single-flight
dedup, tenant quotas) live in :mod:`repro.cluster` and plug into this
layer through the same protocols.

The user-facing entry point stays :class:`repro.api.Engine`
(``engine.submit(spec) -> JobHandle``); this package holds the moving
parts.
"""

from repro.progress import JobCancelled, ProgressEvent

from .backends import (
    BACKEND_NAMES,
    ExecutorBackend,
    InlineBackend,
    ProcessBackend,
    ThreadBackend,
    make_backend,
)
from .cache import ResultCache, spec_key
from .jobs import JobHandle, JobState
from .server import ServiceServer

__all__ = [
    "ProgressEvent",
    "JobCancelled",
    "JobHandle",
    "JobState",
    "ResultCache",
    "spec_key",
    "ExecutorBackend",
    "InlineBackend",
    "ThreadBackend",
    "ProcessBackend",
    "make_backend",
    "BACKEND_NAMES",
    "ServiceServer",
]
