"""Job handles: the asynchronous unit of work of the service layer.

A :class:`JobHandle` is what :meth:`repro.api.Engine.submit` returns:
a thread-safe view of one analysis in flight.  Callers poll
:attr:`status`, block on :meth:`result`, request cooperative
cancellation with :meth:`cancel`, and read the ordered
:class:`~repro.progress.ProgressEvent` stream with :meth:`events` /
:meth:`wait_event`.

The handle itself never runs anything -- the engine's backend workers
drive it through the internal ``_mark_running`` / ``_record`` /
``_finish`` transitions.
"""

from __future__ import annotations

import enum
import threading
import time
from collections import deque
from typing import TYPE_CHECKING, Any

from repro.progress import ProgressEvent

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an api import
    from repro.api.report import AnalysisReport
    from repro.api.spec import TaskSpec

__all__ = ["JobState", "JobHandle"]


class JobState(str, enum.Enum):
    """Lifecycle of a submitted job."""

    PENDING = "pending"      # queued, not yet picked up by a worker
    RUNNING = "running"      # executing (or dispatched to a process worker)
    DONE = "done"            # finished with a report (possibly an ERROR report)
    CANCELLED = "cancelled"  # stopped at a progress checkpoint / before start
    FAILED = "failed"        # the backend itself broke (infrastructure error)

    def __str__(self) -> str:
        return self.value


_TERMINAL = frozenset((JobState.DONE, JobState.CANCELLED, JobState.FAILED))


class JobHandle:
    """One submitted analysis: poll it, await it, cancel it, watch it.

    Parameters
    ----------
    job_id:
        Engine-assigned identifier (stable across the engine's jobs
        table and the HTTP surface).
    spec:
        The resolved :class:`~repro.api.spec.TaskSpec` (seed already
        applied), kept for bookkeeping and cancelled-report synthesis.
    max_events:
        Bound on the retained event window; older events are dropped
        (``event_count`` keeps the true total).
    """

    def __init__(self, job_id: str, spec: "TaskSpec", max_events: int = 512):
        self.id = job_id
        self.spec = spec
        self.created = time.time()
        self.from_cache = False
        self.backend_name = ""
        self.tenant = ""  # X-Tenant attribution (service layer)
        self._cond = threading.Condition()
        self._state = JobState.PENDING
        self._report: "AnalysisReport | None" = None
        self._cancel = threading.Event()
        self._events: deque[ProgressEvent] = deque(maxlen=max_events)
        self._event_count = 0
        self._future: Any = None  # set by the engine for pooled backends
        self._cache_key: str | None = None  # content address (engine-set)
        self._backend_args: tuple = ("thread", None)  # re-dispatch info
        self._on_cancel: Any = None  # engine callback (single-flight detach)

    # -- public surface -------------------------------------------------
    @property
    def status(self) -> JobState:
        with self._cond:
            return self._state

    def done(self) -> bool:
        with self._cond:
            return self._state in _TERMINAL

    @property
    def cancel_requested(self) -> bool:
        return self._cancel.is_set()

    def cancel(self) -> bool:
        """Request cooperative cancellation.

        Returns ``True`` if the job had not already finished.  A pending
        job on a pooled backend is cancelled immediately when the pool
        allows it; a running job on the ``inline``/``thread`` backends
        stops at its next progress checkpoint.  A job already running in
        a *process* worker cannot be interrupted mid-task (documented
        limitation) but its result is discarded as cancelled.
        """
        with self._cond:
            if self._state in _TERMINAL:
                return False
            self._cancel.set()
            future = self._future
            on_cancel = self._on_cancel
        if future is not None:
            future.cancel()  # only succeeds while still queued
        if on_cancel is not None:
            on_cancel()  # outside the lock: may take engine-level locks
        return True

    def result(self, timeout: float | None = None) -> "AnalysisReport":
        """Block until the job finishes and return its report.

        Raises :class:`TimeoutError` if ``timeout`` elapses first.
        """
        with self._cond:
            if not self._cond.wait_for(
                lambda: self._state in _TERMINAL, timeout=timeout
            ):
                raise TimeoutError(
                    f"job {self.id} still {self._state.value} after {timeout}s"
                )
            assert self._report is not None
            return self._report

    def events(self) -> list[ProgressEvent]:
        """Snapshot of the retained (ordered) event window."""
        with self._cond:
            return list(self._events)

    @property
    def event_count(self) -> int:
        """Total events emitted by this job (including dropped ones)."""
        with self._cond:
            return self._event_count

    def wait_event(self, min_count: int = 1, timeout: float | None = None) -> bool:
        """Block until at least ``min_count`` events arrived (or the job
        finished).  Returns whether the count was reached."""
        with self._cond:
            self._cond.wait_for(
                lambda: self._event_count >= min_count or self._state in _TERMINAL,
                timeout=timeout,
            )
            return self._event_count >= min_count

    def summary(self, with_report: bool = False, recent_events: int = 0) -> dict:
        """JSON-able description for jobs tables and the HTTP surface."""
        with self._cond:
            d: dict[str, Any] = {
                "id": self.id,
                "name": self.spec.name,
                "task": self.spec.task,
                "state": self._state.value,
                "backend": self.backend_name,
                "from_cache": self.from_cache,
                "events": self._event_count,
                "created": self.created,
            }
            if self.tenant:
                d["tenant"] = self.tenant
            report = self._report
            events = list(self._events)[-recent_events:] if recent_events else []
        if report is not None:
            d["status"] = report.status.value
            d["detail"] = report.detail
            d["wall_time"] = report.wall_time
            if with_report:
                d["report"] = report.to_dict()
        if events:
            d["recent_events"] = [e.to_dict() for e in events]
        return d

    def __repr__(self) -> str:
        return (
            f"JobHandle({self.id!r}, task={self.spec.task!r}, "
            f"state={self.status.value!r})"
        )

    # -- engine-side transitions ---------------------------------------
    def _mark_running(self) -> None:
        with self._cond:
            if self._state is JobState.PENDING:
                self._state = JobState.RUNNING
                self._cond.notify_all()

    def _record(self, event: ProgressEvent) -> None:
        """Append one event to the ordered per-job stream."""
        with self._cond:
            event.job_id = self.id
            event.seq = self._event_count
            self._event_count += 1
            self._events.append(event)
            self._cond.notify_all()

    def _finish(self, report: "AnalysisReport", state: JobState) -> bool:
        """Terminal transition; idempotent (first finisher wins)."""
        with self._cond:
            if self._state in _TERMINAL:
                return False
            self._state = state
            self._report = report
            self._cond.notify_all()
            return True
