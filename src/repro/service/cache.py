"""Content-addressed result cache: canonical spec hash -> report.

Every task of this framework is deterministic given its resolved spec
(model recipe, query, options, seed), so identical scenarios submitted
under load can be served from cache instead of re-running minutes of
branch-and-prune.  The key is the SHA-256 of the spec's canonical JSON
(sorted keys, no whitespace) *after* engine-level seed resolution; specs
whose query holds live domain objects simply are not cacheable
(:func:`spec_key` returns ``None``) and run every time.

Reports are stored as their serialized JSON text, so a cache hit
deserializes a fresh object -- byte-identical ``to_json()`` output,
no aliasing between callers.  An optional on-disk store (one
``<hash>.json`` per report under ``cache_dir``) persists results across
processes and services; the in-memory LRU fronts it.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
import warnings
from collections import OrderedDict
from typing import TYPE_CHECKING

from repro.api.report import AnalysisReport

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.api.spec import TaskSpec

__all__ = ["spec_key", "ResultCache"]


#: Task kinds already warned about for non-JSON-able specs (once each:
#: a sweep of a thousand uncacheable specs should not emit a thousand
#: warnings).
_UNCACHEABLE_WARNED: set[str] = set()
_WARNED_LOCK = threading.Lock()


def spec_key(spec: "TaskSpec") -> str | None:
    """The content hash of a spec, or ``None`` if it is not JSON-able.

    A ``None`` key silently disabled caching *and* single-flight dedup
    for the spec; that is sometimes intended (live domain objects in the
    query) but more often an accidentally non-serializable value, so the
    first occurrence per task kind raises a :class:`RuntimeWarning`.
    """
    try:
        text = json.dumps(spec.to_dict(), sort_keys=True, separators=(",", ":"))
    except (TypeError, ValueError):
        task = getattr(spec, "task", "<unknown>")
        with _WARNED_LOCK:
            first = task not in _UNCACHEABLE_WARNED
            if first:
                _UNCACHEABLE_WARNED.add(task)
        if first:
            warnings.warn(
                f"spec for task {task!r} is not JSON-serializable; result "
                "caching and single-flight dedup are disabled for it "
                "(pass JSON-able values in the query to re-enable)",
                RuntimeWarning,
                stacklevel=2,
            )
        return None
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


class ResultCache:
    """Thread-safe LRU of report JSON, optionally backed by a directory.

    Parameters
    ----------
    max_entries:
        In-memory LRU capacity (eviction does not touch the disk store).
    cache_dir:
        Optional directory for the persistent JSON store; created on
        first write.
    """

    def __init__(self, max_entries: int = 256, cache_dir: str | os.PathLike | None = None):
        self.max_entries = int(max_entries)
        self.cache_dir = os.fspath(cache_dir) if cache_dir is not None else None
        self._mem: OrderedDict[str, str] = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.quarantined = 0

    # ------------------------------------------------------------------
    def get(self, key: str) -> AnalysisReport | None:
        """Look up a report; counts a hit or a miss.

        A corrupt or schema-incompatible stored entry (truncated disk
        file from a writer killed mid-``os.replace`` on a non-atomic
        filesystem, a hand-edited file, a report shape from an older
        version) counts as a miss -- the analysis re-runs and
        overwrites it -- instead of poisoning every future submission
        of that spec.  A corrupt *disk* file is additionally
        quarantined to ``<key>.corrupt`` so the evidence survives for
        inspection and the next ``put`` starts clean.
        """
        with self._lock:
            text = self._mem.get(key)
        from_disk = False
        if text is None and self.cache_dir is not None:
            try:
                with open(self._path(key), "r", encoding="utf-8") as fh:
                    text = fh.read()
                from_disk = True
            except OSError:
                text = None
        report = None
        if text is not None:
            try:
                report = AnalysisReport.from_json(text)
            except (ValueError, KeyError, TypeError, AttributeError):
                report = None  # ValueError covers json.JSONDecodeError
        if report is None and from_disk:
            self._quarantine(key)
        with self._lock:
            if report is None:
                self._mem.pop(key, None)
                self.misses += 1
            else:
                self._remember(key, text)  # (re-)insert and bump to MRU
                self.hits += 1
        return report

    def _quarantine(self, key: str) -> None:
        """Move an unreadable disk entry aside (mirrors the journal's
        torn-tail tolerance: damage is preserved, not re-served)."""
        assert self.cache_dir is not None
        try:
            os.replace(
                self._path(key), os.path.join(self.cache_dir, f"{key}.corrupt")
            )
        except OSError:
            return  # a concurrent writer already replaced or removed it
        with self._lock:
            self.quarantined += 1

    def put(self, key: str, report: AnalysisReport) -> None:
        """Store a report under its spec hash (memory + disk)."""
        text = report.to_json()
        with self._lock:
            self._remember(key, text)
            self.stores += 1
        if self.cache_dir is not None:
            os.makedirs(self.cache_dir, exist_ok=True)
            path = self._path(key)
            tmp = f"{path}.tmp.{os.getpid()}.{threading.get_ident()}"
            with open(tmp, "w", encoding="utf-8") as fh:
                fh.write(text)
            os.replace(tmp, path)  # atomic under concurrent writers

    def stats(self) -> dict[str, float]:
        """Hit/miss/store counters plus current occupancy."""
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "stores": self.stores,
                "quarantined": self.quarantined,
                "entries": len(self._mem),
            }

    def clear(self) -> None:
        """Drop the in-memory LRU (the disk store is left alone)."""
        with self._lock:
            self._mem.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._mem)

    # ------------------------------------------------------------------
    def _remember(self, key: str, text: str) -> None:
        # caller holds the lock
        self._mem[key] = text
        self._mem.move_to_end(key)
        while len(self._mem) > self.max_entries:
            self._mem.popitem(last=False)

    def _path(self, key: str) -> str:
        assert self.cache_dir is not None
        return os.path.join(self.cache_dir, f"{key}.json")
