"""The first network-facing surface: a stdlib-only job service.

``python -m repro serve`` starts a :class:`ServiceServer`, a thin
``http.server`` wrapper around one :class:`~repro.api.Engine`:

=======  ====================  =========================================
method   path                  meaning
=======  ====================  =========================================
POST     ``/run``              submit a spec; returns ``{"job": id}``
GET      ``/jobs``             jobs table + cache counters
GET      ``/jobs/<id>``        one job: state, events, report when done
POST     ``/jobs/<id>/cancel`` request cooperative cancellation
GET      ``/health``           liveness + registered task kinds
=======  ====================  =========================================

The POST body of ``/run`` is either a bare spec dict (the same JSON a
scenario file holds) or ``{"spec": {...}, "backend": "thread"}``.
Submission is asynchronous -- the response carries the job id, and
clients poll ``GET /jobs/<id>`` (or a ``wait`` query parameter blocks
server-side for a bounded time).  Everything is JSON over
``ThreadingHTTPServer``; no third-party dependencies.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any

__all__ = ["ServiceServer"]


class ServiceServer:
    """A job service bound to one engine.

    Parameters
    ----------
    engine:
        The engine jobs are submitted to; by default a fresh
        ``Engine(cache=True)`` so repeated scenarios are served from
        the result cache.
    host / port:
        Bind address; ``port=0`` picks an ephemeral port (exposed as
        :attr:`port` after construction).
    backend:
        Default executor backend for submitted jobs (overridable per
        request).
    """

    def __init__(
        self,
        engine=None,
        host: str = "127.0.0.1",
        port: int = 8080,
        backend: str = "thread",
    ):
        if engine is None:
            from repro.api.engine import Engine  # deferred: api imports service

            # rate-limit recorded events: a serve engine handles many
            # concurrent jobs, and per-sample recording is hot-loop cost
            engine = Engine(cache=True, progress_interval=0.5)
        self.engine = engine
        self.backend = backend
        service = self

        class Handler(BaseHTTPRequestHandler):
            protocol_version = "HTTP/1.1"

            def log_message(self, fmt: str, *args: Any) -> None:
                pass  # keep the server quiet; clients see JSON errors

            def _reply(self, code: int, payload: dict) -> None:
                body = json.dumps(payload).encode("utf-8")
                self.send_response(code)
                self.send_header("Content-Type", "application/json")
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def _error(self, code: int, message: str) -> None:
                self._reply(code, {"error": message})

            # ---------------------------------------------------------
            def do_GET(self) -> None:  # noqa: N802 (stdlib naming)
                try:
                    service._get(self)
                except Exception as exc:  # one request must not kill the server
                    self._error(500, f"{type(exc).__name__}: {exc}")

            def do_POST(self) -> None:  # noqa: N802
                try:
                    service._post(self)
                except Exception as exc:
                    self._error(500, f"{type(exc).__name__}: {exc}")

        self.httpd = ThreadingHTTPServer((host, port), Handler)
        self.httpd.daemon_threads = True
        self.host, self.port = self.httpd.server_address[:2]
        self._thread: threading.Thread | None = None

    # -- lifecycle ------------------------------------------------------
    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def serve_forever(self) -> None:
        self.httpd.serve_forever()

    def start(self) -> "ServiceServer":
        """Serve on a background thread (for tests and embedding)."""
        self._thread = threading.Thread(
            target=self.httpd.serve_forever, name="repro-serve", daemon=True
        )
        self._thread.start()
        return self

    def shutdown(self) -> None:
        self.httpd.shutdown()
        self.httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def __enter__(self) -> "ServiceServer":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.shutdown()

    # -- request handling ----------------------------------------------
    def _get(self, req: Any) -> None:
        path, _, query = req.path.partition("?")
        parts = [p for p in path.split("/") if p]
        if parts == ["health"]:
            from repro.api.tasks import task_names  # deferred: api imports service

            req._reply(200, {"ok": True, "tasks": task_names()})
            return
        if parts == ["jobs"]:
            req._reply(
                200,
                {
                    "jobs": [j.summary() for j in self.engine.jobs()],
                    "cache": self.engine.cache.stats() if self.engine.cache else None,
                },
            )
            return
        if len(parts) == 2 and parts[0] == "jobs":
            job = self.engine.job(parts[1])
            if job is None:
                req._error(404, f"no such job: {parts[1]}")
                return
            wait = _query_float(query, "wait")
            if wait is not None:
                try:
                    job.result(timeout=min(wait, 60.0))
                except TimeoutError:
                    pass
            req._reply(200, job.summary(with_report=True, recent_events=10))
            return
        req._error(404, f"no such resource: {path}")

    def _post(self, req: Any) -> None:
        # always drain the body first: unread bytes would be parsed as
        # the next request line on an HTTP/1.1 keep-alive connection
        length = int(req.headers.get("Content-Length") or 0)
        body = req.rfile.read(length) if length else b""
        parts = [p for p in req.path.split("/") if p]
        if parts == ["run"]:
            try:
                payload = json.loads(body or b"{}")
            except json.JSONDecodeError as exc:
                req._error(400, f"invalid JSON body: {exc}")
                return
            if not isinstance(payload, dict):
                req._error(400, "body must be a spec object")
                return
            spec = payload.get("spec", payload)
            if not isinstance(spec, dict):
                # a string spec would hit TaskSpec.from_file -- network
                # clients must not be able to read server-local paths
                req._error(400, "spec must be a JSON object, not a path")
                return
            backend = str(payload.get("backend") or self.backend)
            try:
                job = self.engine.submit(spec, backend=backend)
            except (ValueError, KeyError, TypeError) as exc:
                req._error(400, f"bad spec: {exc}")
                return
            req._reply(202, {"job": job.id, "state": job.status.value})
            return
        if len(parts) == 3 and parts[0] == "jobs" and parts[2] == "cancel":
            job = self.engine.job(parts[1])
            if job is None:
                req._error(404, f"no such job: {parts[1]}")
                return
            job.cancel()
            req._reply(200, job.summary())
            return
        req._error(404, f"no such resource: {req.path}")


def _query_float(query: str, name: str) -> float | None:
    for part in query.split("&"):
        key, _, value = part.partition("=")
        if key == name and value:
            try:
                return float(value)
            except ValueError:
                return None
    return None
