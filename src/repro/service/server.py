"""The first network-facing surface: a stdlib-only job service.

``python -m repro serve`` starts a :class:`ServiceServer`, a thin
``http.server`` wrapper around one :class:`~repro.api.Engine`:

=======  ====================  =========================================
method   path                  meaning
=======  ====================  =========================================
POST     ``/run``              submit a spec; returns ``{"job": id}``
GET      ``/jobs``             jobs table + cache counters
GET      ``/jobs/<id>``        one job: state, events, report when done
POST     ``/jobs/<id>/cancel`` request cooperative cancellation
GET      ``/cluster``          dedup / scheduler / store / pool status
GET      ``/health``           liveness + registered task kinds
=======  ====================  =========================================

The POST body of ``/run`` is either a bare spec dict (the same JSON a
scenario file holds) or ``{"spec": {...}, "backend": "thread"}``.
Submission is asynchronous -- the response carries the job id, and
clients poll ``GET /jobs/<id>`` (or a ``wait`` query parameter blocks
server-side for a bounded time).  Everything is JSON over
``ThreadingHTTPServer``; no third-party dependencies.

Service-grade features, all optional:

Tenancy
    Requests carry an ``X-Tenant`` header (absent = the default
    tenant).  A :class:`~repro.cluster.quota.TenantScheduler` applies
    token-bucket admission (over-rate submissions get 429 +
    ``Retry-After``) and weighted fair dequeue under a global
    ``max_running`` concurrency cap.
Durability
    A :class:`~repro.cluster.jobstore.JobStore` journals every
    accepted spec and every terminal report.  A restarting server
    recovers the journal: jobs that never finished (queued, running,
    or drain-``interrupted``) are re-submitted under their original
    ids; completed jobs stay readable at ``GET /jobs/<id>``.  On a
    journal shared by N replicas, recovery only re-runs jobs minted
    under this replica's own job-id prefix -- another replica's
    unfinished jobs are (most likely) still live over there.
Graceful shutdown
    :meth:`graceful_shutdown` (wired to SIGTERM/SIGINT by
    :meth:`serve_until_shutdown`) stops accepting, journals live jobs
    as ``interrupted``, cooperatively cancels them, flushes the store,
    and returns within a bounded drain timeout.
Dedup
    The default engine enables single-flight dedup: concurrent
    identical specs collapse onto one solve (see
    :mod:`repro.cluster.singleflight`).
"""

from __future__ import annotations

import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import TYPE_CHECKING, Any

from repro.service.backends import validate_backend_name

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cluster.jobstore import JobStore
    from repro.cluster.quota import TenantScheduler

__all__ = ["ServiceServer"]


class ServiceServer:
    """A job service bound to one engine.

    Parameters
    ----------
    engine:
        The engine jobs are submitted to; by default a fresh
        ``Engine(cache=True, dedup=True)`` so repeated scenarios are
        served from the result cache and concurrent identical specs
        collapse to one solve.
    host / port:
        Bind address; ``port=0`` picks an ephemeral port (exposed as
        :attr:`port` after construction).
    backend:
        Default executor backend for submitted jobs (overridable per
        request).
    job_store:
        Optional :class:`~repro.cluster.jobstore.JobStore` (or a path
        string) journaling submissions and terminal reports; on
        construction the journal is recovered -- unfinished jobs
        re-submit under their original ids.
    scheduler:
        Optional :class:`~repro.cluster.quota.TenantScheduler`; by
        default an unbounded one (no admission limits, no concurrency
        cap) so tenancy accounting is always available.
    drain_timeout:
        Bound (seconds) on how long :meth:`graceful_shutdown` waits
        for cancelled jobs to reach a terminal state.
    """

    def __init__(
        self,
        engine=None,
        host: str = "127.0.0.1",
        port: int = 8080,
        backend: str = "thread",
        *,
        job_store: "JobStore | str | None" = None,
        scheduler: "TenantScheduler | None" = None,
        drain_timeout: float = 10.0,
    ):
        if engine is None:
            from repro.api.engine import Engine  # deferred: api imports service

            # rate-limit recorded events: a serve engine handles many
            # concurrent jobs, and per-sample recording is hot-loop cost
            engine = Engine(cache=True, progress_interval=0.5, dedup=True)
        self.engine = engine
        self.backend = backend
        self.drain_timeout = float(drain_timeout)

        if isinstance(job_store, str):
            from repro.cluster.jobstore import JobStore as _JobStore

            job_store = _JobStore(job_store)
        self.job_store = job_store
        if scheduler is None:
            from repro.cluster.quota import TenantScheduler as _TenantScheduler

            scheduler = _TenantScheduler()
        self.scheduler = scheduler

        self._draining = False
        self._drained = threading.Event()
        self._drain_lock = threading.Lock()
        self._pump_mutex = threading.Lock()
        self._pump_active = False
        self._pump_pending = False
        #: terminal jobs recovered from the journal (readable by id)
        self._recovered: dict[str, dict] = {}

        # chain the terminal hook: release scheduler slots, journal the
        # report, then whatever hook the caller had installed
        self._prev_done_hook = getattr(engine, "on_job_done", None)
        engine.on_job_done = self._job_done

        service = self

        class Handler(BaseHTTPRequestHandler):
            protocol_version = "HTTP/1.1"

            def log_message(self, fmt: str, *args: Any) -> None:
                pass  # keep the server quiet; clients see JSON errors

            def _reply(
                self, code: int, payload: dict, headers: dict | None = None
            ) -> None:
                body = json.dumps(payload).encode("utf-8")
                self.send_response(code)
                self.send_header("Content-Type", "application/json")
                self.send_header("Content-Length", str(len(body)))
                for key, value in (headers or {}).items():
                    self.send_header(key, value)
                self.end_headers()
                self.wfile.write(body)

            def _error(self, code: int, message: str) -> None:
                self._reply(code, {"error": message})

            # ---------------------------------------------------------
            def do_GET(self) -> None:  # noqa: N802 (stdlib naming)
                try:
                    service._get(self)
                except Exception as exc:  # one request must not kill the server
                    self._error(500, f"{type(exc).__name__}: {exc}")

            def do_POST(self) -> None:  # noqa: N802
                try:
                    service._post(self)
                except Exception as exc:
                    self._error(500, f"{type(exc).__name__}: {exc}")

        self.httpd = ThreadingHTTPServer((host, port), Handler)
        self.httpd.daemon_threads = True
        self.host, self.port = self.httpd.server_address[:2]
        self._thread: threading.Thread | None = None

        if self.job_store is not None:
            self._recover()

    # -- lifecycle ------------------------------------------------------
    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def serve_forever(self) -> None:
        self.httpd.serve_forever()

    def serve_until_shutdown(self) -> None:
        """Serve in this thread until SIGTERM/SIGINT, then drain and return."""
        self.install_signal_handlers()
        try:
            self.httpd.serve_forever()
        except KeyboardInterrupt:
            pass
        self.graceful_shutdown()

    def install_signal_handlers(self) -> None:
        """Route SIGTERM/SIGINT into :meth:`graceful_shutdown`.

        Must run in the main thread (a CPython signal constraint); the
        handler only nudges a drain thread, so it is safe inside the
        signal context.
        """
        import signal

        def _handle(signum: int, frame: Any) -> None:
            threading.Thread(
                target=self.graceful_shutdown,
                name="repro-serve-drain",
                daemon=True,
            ).start()

        signal.signal(signal.SIGTERM, _handle)
        signal.signal(signal.SIGINT, _handle)

    def start(self) -> "ServiceServer":
        """Serve on a background thread (for tests and embedding)."""
        self._thread = threading.Thread(
            target=self.httpd.serve_forever, name="repro-serve", daemon=True
        )
        self._thread.start()
        return self

    def shutdown(self) -> None:
        """Stop serving immediately (no drain; tests and embedding)."""
        self.httpd.shutdown()
        self.httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def graceful_shutdown(self, timeout: float | None = None) -> None:
        """Drain and stop: the SIGTERM path.  Idempotent and blocking.

        Stops accepting requests, journals every unfinished job as
        ``interrupted`` (so a restart re-runs it), requests cooperative
        cancellation, waits up to ``timeout`` (default
        ``drain_timeout``) for the jobs to settle, flushes and closes
        the job store, and shuts the engine's pools down.  Concurrent
        callers block until the first caller finishes the drain.
        """
        timeout = self.drain_timeout if timeout is None else float(timeout)
        with self._drain_lock:
            if self._draining:
                drain_leader = False
            else:
                self._draining = True
                drain_leader = True
        if not drain_leader:
            self._drained.wait(timeout=timeout + 10.0)
            return

        self.httpd.shutdown()  # stop accepting; in-flight handlers finish

        live = [j for j in self.engine.jobs() if not j.done()]
        if self.job_store is not None:
            for job in live:
                if self.job_store.knows(job.id):
                    # journal FIRST: "interrupted" must beat the hook's
                    # "cancelled" (record_done is first-write-wins), so a
                    # restart re-runs drained work instead of dropping it
                    self.job_store.record_done(job.id, "interrupted")
        for job in live:
            if not self.scheduler.remove(job):
                job.cancel()
                continue
            # still queued: retire it without ever dispatching
            self.engine.cancel_undispatched(job)

        deadline = time.monotonic() + timeout
        for job in live:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                break
            try:
                job.result(timeout=remaining)
            except TimeoutError:
                pass  # bounded drain: a stuck job must not block exit

        if self.job_store is not None:
            self.job_store.close()
        self.engine.close(wait=False)
        self.httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        self._drained.set()

    def __enter__(self) -> "ServiceServer":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.shutdown()

    # -- scheduling -----------------------------------------------------
    def _offer(self, job: Any) -> None:
        """Queue one accepted job and pump the scheduler."""
        self.scheduler.enqueue(job)
        self._pump()

    def _pump(self) -> None:
        """Dispatch released jobs until the scheduler withholds.

        Re-entrancy-safe without recursion: a dispatch that completes
        synchronously (cache hit, inline backend) fires the done-hook,
        which calls ``_pump`` again -- the nested call just flags more
        work for the active loop instead of growing the stack.
        """
        with self._pump_mutex:
            self._pump_pending = True
            if self._pump_active:
                return
            self._pump_active = True
        while True:
            with self._pump_mutex:
                if not self._pump_pending:
                    self._pump_active = False
                    return
                self._pump_pending = False
            while True:
                job = self.scheduler.next_job()
                if job is None:
                    break
                try:
                    self.engine.dispatch(job, *job._backend_args)
                except Exception as exc:
                    # Engine.dispatch never raises by contract; if that
                    # contract ever breaks, the job must still reach a
                    # terminal state (its done-hook frees the scheduler
                    # slot) or _pump_active stays True forever and the
                    # server stops dispatching for every tenant.
                    self.engine.fail_dispatch(job, exc)

    def _job_done(self, job: Any) -> None:
        """Engine terminal hook: free the slot, journal, chain."""
        released = self.scheduler.release(job)
        if self.job_store is not None and self.job_store.knows(job.id):
            self.job_store.record_job(job)
        if released and not self._draining:
            self._pump()
        if self._prev_done_hook is not None:
            self._prev_done_hook(job)

    def _recover(self) -> None:
        """Replay the job store: re-submit unfinished work, index the rest.

        Recovery is scoped to this replica's job-id prefix: with N
        replicas sharing one journal, an unfinished job whose id was
        minted by another replica is very likely still queued/running
        over there -- re-submitting it here would duplicate-execute it.
        Foreign records (finished or not) stay readable by id.
        """
        from repro.cluster.jobstore import RERUN_STATES

        prefix = getattr(self.engine, "job_prefix", "")
        for job_id, record in self.job_store.recover().items():
            if record["state"] in RERUN_STATES and job_id.startswith(prefix):
                try:
                    job = self.engine.submit_deferred(
                        record["spec"], job_id=job_id
                    )
                except (ValueError, KeyError, TypeError):
                    continue  # a spec this build cannot parse anymore
                job.tenant = record["tenant"]
                job._backend_args = (self.backend, None)
                # re-journal so THIS process's done-hook owns the id
                self.job_store.record_submit(
                    job.id, record["spec"], record["tenant"]
                )
                self._offer(job)
            else:
                self._recovered[job_id] = record

    # -- request handling ----------------------------------------------
    def _get(self, req: Any) -> None:
        path, _, query = req.path.partition("?")
        parts = [p for p in path.split("/") if p]
        if parts == ["health"]:
            from repro.api.tasks import task_names  # deferred: api imports service

            req._reply(200, {"ok": True, "tasks": task_names(),
                             "draining": self._draining})
            return
        if parts == ["jobs"]:
            req._reply(
                200,
                {
                    "jobs": [j.summary() for j in self.engine.jobs()],
                    "cache": self.engine.cache.stats() if self.engine.cache else None,
                },
            )
            return
        if parts == ["cluster"]:
            req._reply(200, self.cluster_status())
            return
        if len(parts) == 2 and parts[0] == "jobs":
            job = self.engine.job(parts[1])
            if job is None:
                record = self._recovered.get(parts[1])
                if record is not None:
                    req._reply(200, _recovered_summary(parts[1], record))
                    return
                req._error(404, f"no such job: {parts[1]}")
                return
            wait = _query_float(query, "wait")
            if wait is not None:
                try:
                    job.result(timeout=min(wait, 60.0))
                except TimeoutError:
                    pass
            req._reply(200, job.summary(with_report=True, recent_events=10))
            return
        req._error(404, f"no such resource: {path}")

    def _post(self, req: Any) -> None:
        # always drain the body first: unread bytes would be parsed as
        # the next request line on an HTTP/1.1 keep-alive connection
        length = int(req.headers.get("Content-Length") or 0)
        body = req.rfile.read(length) if length else b""
        parts = [p for p in req.path.split("/") if p]
        if parts == ["run"]:
            if self._draining:
                req._error(503, "server is draining")
                return
            try:
                payload = json.loads(body or b"{}")
            except json.JSONDecodeError as exc:
                req._error(400, f"invalid JSON body: {exc}")
                return
            if not isinstance(payload, dict):
                req._error(400, "body must be a spec object")
                return
            spec = payload.get("spec", payload)
            if not isinstance(spec, dict):
                # a string spec would hit TaskSpec.from_file -- network
                # clients must not be able to read server-local paths
                req._error(400, "spec must be a JSON object, not a path")
                return
            backend = str(payload.get("backend") or self.backend)
            try:
                # reject a bad backend name at the door (and before
                # admission, so it never burns quota): once enqueued,
                # dispatch happens long after this response is gone
                validate_backend_name(backend)
            except ValueError as exc:
                req._error(400, f"bad backend: {exc}")
                return
            tenant = str(req.headers.get("X-Tenant") or "")
            retry_after = self.scheduler.admit(tenant)
            if retry_after > 0.0:
                req._reply(
                    429,
                    {"error": f"tenant {tenant or 'default'!r} over rate limit",
                     "retry_after": round(retry_after, 3)},
                    headers={"Retry-After": str(max(1, int(retry_after + 0.999)))},
                )
                return
            try:
                job = self.engine.submit_deferred(spec)
            except (ValueError, KeyError, TypeError) as exc:
                req._error(400, f"bad spec: {exc}")
                return
            job.tenant = tenant
            job._backend_args = (backend, None)
            if self.job_store is not None:
                self.job_store.record_submit(
                    job.id, job.spec.to_dict(), tenant
                )
            self._offer(job)
            req._reply(202, {"job": job.id, "state": job.status.value})
            return
        if len(parts) == 3 and parts[0] == "jobs" and parts[2] == "cancel":
            job = self.engine.job(parts[1])
            if job is None:
                req._error(404, f"no such job: {parts[1]}")
                return
            if self.scheduler.remove(job):
                # never dispatched: retire it here (no backend will)
                self.engine.cancel_undispatched(job)
            else:
                job.cancel()
            req._reply(200, job.summary())
            return
        req._error(404, f"no such resource: {req.path}")

    # ------------------------------------------------------------------
    def cluster_status(self) -> dict[str, Any]:
        """The ``GET /cluster`` payload: every scale-out subsystem at once."""
        status: dict[str, Any] = {
            "draining": self._draining,
            "dedup": self.engine.dedup_stats(),
            "paving_store": self.engine.paving_store_stats(),
            "scheduler": self.scheduler.snapshot(),
            "store": None,
            "pool": None,
        }
        if self.job_store is not None:
            status["store"] = {
                "path": self.job_store.path,
                "appended": self.job_store.appended,
                "recovered_terminal": len(self._recovered),
            }
        for backend in list(getattr(self.engine, "_backends", {}).values()):
            if backend.name == "cluster":
                try:
                    status["pool"] = backend.status()
                except Exception:  # pool may be mid-shutdown
                    pass
        return status


def _recovered_summary(job_id: str, record: dict) -> dict:
    """A ``GET /jobs/<id>`` payload for a journal-recovered job."""
    report = record.get("report")
    d: dict[str, Any] = {
        "id": job_id,
        "name": (record.get("spec") or {}).get("name"),
        "task": (record.get("spec") or {}).get("task"),
        "state": record["state"],
        "backend": "journal",
        "from_cache": False,
        "events": 0,
        "recovered": True,
    }
    if record.get("tenant"):
        d["tenant"] = record["tenant"]
    if report is not None:
        d["status"] = report.get("status")
        d["detail"] = report.get("detail")
        d["wall_time"] = report.get("wall_time")
        d["report"] = report
    return d


def _query_float(query: str, name: str) -> float | None:
    for part in query.split("&"):
        key, _, value = part.partition("=")
        if key == name and value:
            try:
                return float(value)
            except ValueError:
                return None
    return None
