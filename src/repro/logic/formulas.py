"""First-order formulas of ``L_RF`` (paper Definitions 1-4).

Atomic formulas are ``t > 0`` and ``t >= 0`` where ``t`` is an
expression term; formulas are closed under conjunction, disjunction and
bounded quantification (Definition 2).  Negation is the *inductively
defined* operation of the paper: it swaps strict/weak atoms with negated
operands, swaps conjunction/disjunction, and swaps quantifiers -- so
formulas are effectively kept in negation normal form.

Delta-weakening (Definition 4) replaces ``t > 0`` with ``t > -delta``
and ``t >= 0`` with ``t >= -delta``; delta-strengthening is the dual and
is what an unsat answer for the weakened complement certifies.
"""

from __future__ import annotations

from typing import Iterable, Mapping

from repro.expr import Const, Expr, ExprLike, as_expr

__all__ = [
    "Formula",
    "Atom",
    "TrueFormula",
    "FalseFormula",
    "And",
    "Or",
    "Not",
    "Implies",
    "Exists",
    "Forall",
    "TRUE",
    "FALSE",
]


class Formula:
    """Base class of quantifier-free and bounded-quantifier formulas."""

    __slots__ = ()

    def variables(self) -> frozenset[str]:
        """Free variables of the formula."""
        raise NotImplementedError

    def negate(self) -> "Formula":
        """The paper's inductive negation (stays in NNF)."""
        raise NotImplementedError

    def delta_weaken(self, delta: float) -> "Formula":
        """``phi^delta`` of Definition 4: relax every atom by ``delta``."""
        raise NotImplementedError

    def delta_strengthen(self, delta: float) -> "Formula":
        """Tighten every atom by ``delta`` (dual of weakening)."""
        return self.delta_weaken(-delta)

    def eval(self, env: Mapping[str, float]) -> bool:
        """Ground truth value under a full real assignment."""
        raise NotImplementedError

    def subs(self, env: Mapping[str, ExprLike]) -> "Formula":
        """Substitute expressions for free variables."""
        raise NotImplementedError

    def atoms(self) -> list["Atom"]:
        """All atomic subformulas, in syntactic order."""
        raise NotImplementedError

    # -- connectives as operators --------------------------------------
    def __and__(self, other: "Formula") -> "Formula":
        return And(self, other)

    def __or__(self, other: "Formula") -> "Formula":
        return Or(self, other)

    def __invert__(self) -> "Formula":
        return self.negate()

    def implies(self, other: "Formula") -> "Formula":
        return Implies(self, other)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Formula):
            return NotImplemented
        return self._key() == other._key()

    def __hash__(self) -> int:
        return hash(self._key())

    def _key(self) -> tuple:
        raise NotImplementedError


class TrueFormula(Formula):
    """The constant true."""

    __slots__ = ()

    def variables(self) -> frozenset[str]:
        return frozenset()

    def negate(self) -> Formula:
        return FALSE

    def delta_weaken(self, delta: float) -> Formula:
        return self

    def eval(self, env: Mapping[str, float]) -> bool:
        return True

    def subs(self, env: Mapping[str, ExprLike]) -> Formula:
        return self

    def atoms(self) -> list["Atom"]:
        return []

    def __str__(self) -> str:
        return "true"

    def _key(self) -> tuple:
        return ("true",)


class FalseFormula(Formula):
    """The constant false."""

    __slots__ = ()

    def variables(self) -> frozenset[str]:
        return frozenset()

    def negate(self) -> Formula:
        return TRUE

    def delta_weaken(self, delta: float) -> Formula:
        return self

    def eval(self, env: Mapping[str, float]) -> bool:
        return False

    def subs(self, env: Mapping[str, ExprLike]) -> Formula:
        return self

    def atoms(self) -> list["Atom"]:
        return []

    def __str__(self) -> str:
        return "false"

    def _key(self) -> tuple:
        return ("false",)


TRUE = TrueFormula()
FALSE = FalseFormula()


class Atom(Formula):
    """Atomic formula ``term > 0`` (strict) or ``term >= 0`` (weak)."""

    __slots__ = ("term", "strict")

    def __init__(self, term: ExprLike, strict: bool):
        self.term = as_expr(term)
        self.strict = bool(strict)

    def variables(self) -> frozenset[str]:
        return self.term.variables()

    def negate(self) -> Formula:
        # not(t > 0) == -t >= 0 ; not(t >= 0) == -t > 0   (paper Sec. III-A)
        return Atom(-self.term, strict=not self.strict)

    def negate_operand(self) -> "Atom":
        """Atom with operand negated but the same relation (-t R 0)."""
        return Atom(-self.term, strict=self.strict)

    def delta_weaken(self, delta: float) -> "Atom":
        if delta == 0.0:
            return self
        return Atom(self.term + Const(float(delta)), strict=self.strict)

    def eval(self, env: Mapping[str, float]) -> bool:
        v = self.term.eval(env)
        return v > 0.0 if self.strict else v >= 0.0

    def subs(self, env: Mapping[str, ExprLike]) -> Formula:
        return Atom(self.term.subs(env), strict=self.strict)

    def atoms(self) -> list["Atom"]:
        return [self]

    def __str__(self) -> str:
        rel = ">" if self.strict else ">="
        return f"({self.term} {rel} 0)"

    def _key(self) -> tuple:
        return ("atom", self.term._key(), self.strict)


def _flatten(cls, parts: Iterable[Formula]) -> list[Formula]:
    out: list[Formula] = []
    for p in parts:
        if isinstance(p, cls):
            out.extend(p.parts)
        else:
            out.append(p)
    return out


class And(Formula):
    """N-ary conjunction (flattened, constant-absorbed)."""

    __slots__ = ("parts",)

    def __new__(cls, *parts: Formula):
        flat = _flatten(And, parts)
        flat = [p for p in flat if not isinstance(p, TrueFormula)]
        if any(isinstance(p, FalseFormula) for p in flat):
            return FALSE
        if not flat:
            return TRUE
        if len(flat) == 1:
            return flat[0]
        obj = object.__new__(cls)
        obj.parts = tuple(flat)
        return obj

    def variables(self) -> frozenset[str]:
        out: frozenset[str] = frozenset()
        for p in self.parts:
            out |= p.variables()
        return out

    def negate(self) -> Formula:
        return Or(*[p.negate() for p in self.parts])

    def delta_weaken(self, delta: float) -> Formula:
        return And(*[p.delta_weaken(delta) for p in self.parts])

    def eval(self, env: Mapping[str, float]) -> bool:
        return all(p.eval(env) for p in self.parts)

    def subs(self, env: Mapping[str, ExprLike]) -> Formula:
        return And(*[p.subs(env) for p in self.parts])

    def atoms(self) -> list[Atom]:
        return [a for p in self.parts for a in p.atoms()]

    def __reduce__(self):
        # the absorbing __new__ takes the parts positionally, so the
        # default slot-state pickling (which calls __new__ with no
        # arguments and gets TRUE back) cannot reconstruct conjunctions;
        # rebuilding from the flattened parts round-trips exactly
        return (And, tuple(self.parts))

    def __str__(self) -> str:
        return "(" + " /\\ ".join(str(p) for p in self.parts) + ")"

    def _key(self) -> tuple:
        return ("and",) + tuple(p._key() for p in self.parts)


class Or(Formula):
    """N-ary disjunction (flattened, constant-absorbed)."""

    __slots__ = ("parts",)

    def __new__(cls, *parts: Formula):
        flat = _flatten(Or, parts)
        flat = [p for p in flat if not isinstance(p, FalseFormula)]
        if any(isinstance(p, TrueFormula) for p in flat):
            return TRUE
        if not flat:
            return FALSE
        if len(flat) == 1:
            return flat[0]
        obj = object.__new__(cls)
        obj.parts = tuple(flat)
        return obj

    def variables(self) -> frozenset[str]:
        out: frozenset[str] = frozenset()
        for p in self.parts:
            out |= p.variables()
        return out

    def negate(self) -> Formula:
        return And(*[p.negate() for p in self.parts])

    def delta_weaken(self, delta: float) -> Formula:
        return Or(*[p.delta_weaken(delta) for p in self.parts])

    def eval(self, env: Mapping[str, float]) -> bool:
        return any(p.eval(env) for p in self.parts)

    def subs(self, env: Mapping[str, ExprLike]) -> Formula:
        return Or(*[p.subs(env) for p in self.parts])

    def atoms(self) -> list[Atom]:
        return [a for p in self.parts for a in p.atoms()]

    def __reduce__(self):
        # see And.__reduce__: the absorbing __new__ breaks default pickling
        return (Or, tuple(self.parts))

    def __str__(self) -> str:
        return "(" + " \\/ ".join(str(p) for p in self.parts) + ")"

    def _key(self) -> tuple:
        return ("or",) + tuple(p._key() for p in self.parts)


def Not(phi: Formula) -> Formula:
    """Negation as the paper's inductive rewrite (returns NNF directly)."""
    return phi.negate()


def Implies(a: Formula, b: Formula) -> Formula:
    """``a -> b`` defined as ``not a \\/ b`` (paper Section III-A)."""
    return Or(a.negate(), b)


class _Quantifier(Formula):
    """Common machinery of bounded Exists/Forall (Definition 2)."""

    __slots__ = ("name", "lo", "hi", "body")

    def __init__(self, name: str, lo: ExprLike, hi: ExprLike, body: Formula):
        self.name = name
        self.lo = as_expr(lo)
        self.hi = as_expr(hi)
        self.body = body
        bound_vars = self.lo.variables() | self.hi.variables()
        if name in bound_vars:
            raise ValueError(
                f"bounds of quantified variable {name!r} must not mention it"
            )

    def variables(self) -> frozenset[str]:
        return (self.body.variables() - {self.name}) | self.lo.variables() | self.hi.variables()

    def atoms(self) -> list[Atom]:
        return self.body.atoms()

    def _grid(self, env: Mapping[str, float], n: int = 64) -> list[float]:
        lo = self.lo.eval(env)
        hi = self.hi.eval(env)
        if lo > hi:
            return []
        if lo == hi:
            return [lo]
        step = (hi - lo) / (n - 1)
        return [lo + i * step for i in range(n)]


class Exists(_Quantifier):
    """Bounded existential ``exists x in [lo, hi]. body``."""

    def negate(self) -> Formula:
        return Forall(self.name, self.lo, self.hi, self.body.negate())

    def delta_weaken(self, delta: float) -> Formula:
        return Exists(self.name, self.lo, self.hi, self.body.delta_weaken(delta))

    def eval(self, env: Mapping[str, float]) -> bool:
        # Grid check: sound only as an approximation; the solver handles
        # quantifiers rigorously, this is for testing/ground-truthing.
        return any(
            self.body.eval({**env, self.name: v}) for v in self._grid(env)
        )

    def subs(self, env: Mapping[str, ExprLike]) -> Formula:
        env2 = {k: v for k, v in env.items() if k != self.name}
        return Exists(self.name, self.lo.subs(env2), self.hi.subs(env2), self.body.subs(env2))

    def __str__(self) -> str:
        return f"(exists {self.name} in [{self.lo}, {self.hi}]. {self.body})"

    def _key(self) -> tuple:
        return ("exists", self.name, self.lo._key(), self.hi._key(), self.body._key())


class Forall(_Quantifier):
    """Bounded universal ``forall x in [lo, hi]. body``."""

    def negate(self) -> Formula:
        return Exists(self.name, self.lo, self.hi, self.body.negate())

    def delta_weaken(self, delta: float) -> Formula:
        return Forall(self.name, self.lo, self.hi, self.body.delta_weaken(delta))

    def eval(self, env: Mapping[str, float]) -> bool:
        return all(
            self.body.eval({**env, self.name: v}) for v in self._grid(env)
        )

    def subs(self, env: Mapping[str, ExprLike]) -> Formula:
        env2 = {k: v for k, v in env.items() if k != self.name}
        return Forall(self.name, self.lo.subs(env2), self.hi.subs(env2), self.body.subs(env2))

    def __str__(self) -> str:
        return f"(forall {self.name} in [{self.lo}, {self.hi}]. {self.body})"

    def _key(self) -> tuple:
        return ("forall", self.name, self.lo._key(), self.hi._key(), self.body._key())
