"""L_RF logic layer (S3 in DESIGN.md).

First-order formulas over the reals with computable functions, bounded
quantifiers and delta-weakening, per paper Definitions 1-4.
"""

from .formulas import (
    FALSE,
    TRUE,
    And,
    Atom,
    Exists,
    FalseFormula,
    Forall,
    Formula,
    Implies,
    Not,
    Or,
    TrueFormula,
)
from .builders import box_formula, conjoin, eq_zero, equals_within, in_range

__all__ = [
    "Formula",
    "Atom",
    "And",
    "Or",
    "Not",
    "Implies",
    "Exists",
    "Forall",
    "TrueFormula",
    "FalseFormula",
    "TRUE",
    "FALSE",
    "in_range",
    "equals_within",
    "eq_zero",
    "box_formula",
    "conjoin",
]
