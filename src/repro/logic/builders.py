"""Helper constructors for common constraint shapes.

These express the recurring encodings of the paper's applications:
data-fit bands for calibration (Section IV-A), goal regions for
reachability (Definition 11/13), and equality-as-band atoms.
"""

from __future__ import annotations

from typing import Mapping

from repro.expr import Const, Expr, ExprLike, as_expr
from repro.intervals import Box

from .formulas import And, Atom, Formula

__all__ = [
    "in_range",
    "equals_within",
    "box_formula",
    "conjoin",
    "eq_zero",
]


def in_range(term: ExprLike, lo: float, hi: float) -> Formula:
    """``lo <= term <= hi`` as a conjunction of weak atoms."""
    term = as_expr(term)
    return And(
        Atom(term - Const(float(lo)), strict=False),
        Atom(Const(float(hi)) - term, strict=False),
    )


def equals_within(term: ExprLike, value: float, tol: float) -> Formula:
    """``|term - value| <= tol`` -- the data-fit band of BioPSy-style
    calibration (each experimental sample becomes one such band)."""
    return in_range(term, value - tol, value + tol)


def eq_zero(term: ExprLike) -> Formula:
    """``term == 0`` as ``term >= 0 /\\ -term >= 0``."""
    term = as_expr(term)
    return And(Atom(term, strict=False), Atom(-term, strict=False))


def box_formula(box: Box | Mapping[str, tuple[float, float]]) -> Formula:
    """Membership constraint for a named box (goal/initial regions)."""
    from repro.expr import var

    if isinstance(box, Box):
        items = [(k, (iv.lo, iv.hi)) for k, iv in box.items()]
    else:
        items = list(box.items())
    parts = [in_range(var(name), lo, hi) for name, (lo, hi) in items]
    return And(*parts)


def conjoin(formulas) -> Formula:
    """Conjunction of an iterable of formulas."""
    return And(*list(formulas))
