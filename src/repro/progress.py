"""Progress events and cooperative cancellation for long-running analyses.

The solvers of this framework (ICP branch-and-prune, SMC sampling,
stochastic parameter search, the Fig. 2 pipeline) are deep loops that
used to run to completion silently.  This module gives them one cheap
hookpoint::

    from repro.progress import emit

    while work:
        emit("icp", "branch-and-prune", boxes=n, queue=len(heap))
        ...

``emit`` is a no-op unless a *progress scope* is active, so the hot
loops pay one context-variable read when nobody is listening.  The
service layer (:mod:`repro.service`) opens a scope around each job::

    with progress_scope(sink=record, cancel=job_cancel_event):
        run_the_task()

Inside a scope every ``emit`` call

* delivers a :class:`ProgressEvent` to the sink (subject to an optional
  per-(source, stage) rate limit), and
* doubles as the cooperative **cancellation checkpoint**: when the
  scope's cancel event is set, ``emit`` raises :class:`JobCancelled`,
  unwinding the solver within one progress-event interval.

The scope lives in a :mod:`contextvars` variable, so concurrently
running jobs in one process (thread-backend workers) each see their own
sink and cancel flag.
"""

from __future__ import annotations

import contextvars
import math
import threading
import time
from contextlib import contextmanager
from dataclasses import asdict, dataclass, field
from typing import Any, Callable, Iterator

__all__ = [
    "ProgressEvent",
    "JobCancelled",
    "progress_scope",
    "emit",
    "active",
    "set_default_sink",
]


class JobCancelled(Exception):
    """The surrounding job was cancelled; raised at a progress checkpoint.

    Deliberately *not* converted to an error report by the engine's
    exception fence -- it unwinds to the service layer, which marks the
    job as cancelled.
    """


@dataclass
class ProgressEvent:
    """One observation from inside a running analysis.

    Attributes
    ----------
    source:
        The emitting subsystem (``"icp"``, ``"calibrate"``, ``"smc"``,
        ``"search"``, ``"pipeline"``, ``"engine"``).
    stage:
        The phase within that subsystem (``"branch-and-prune"``,
        ``"sampling"``, ``"validate"``, ...).
    counters:
        Numeric progress indicators: iteration counts, queue depths,
        sample counts, best fitness so far.
    message:
        Optional human-readable note.
    job_id / seq:
        Filled in by the service layer when the event is recorded on a
        :class:`~repro.service.jobs.JobHandle` (ordered per job).
    time:
        Unix timestamp of emission.
    """

    source: str
    stage: str
    counters: dict[str, float] = field(default_factory=dict)
    message: str = ""
    job_id: str = ""
    seq: int = 0
    time: float = 0.0

    def to_dict(self) -> dict[str, Any]:
        return asdict(self)

    def describe(self) -> str:
        parts = ", ".join(f"{k}={v:g}" for k, v in self.counters.items())
        text = f"{self.source}/{self.stage}"
        if parts:
            text += f" [{parts}]"
        if self.message:
            text += f" {self.message}"
        return text


@dataclass
class _Scope:
    sink: Callable[[ProgressEvent], None] | None
    cancel: threading.Event | None
    interval: float
    last_emit: dict[tuple[str, str], float] = field(default_factory=dict)


_SCOPE: contextvars.ContextVar[_Scope | None] = contextvars.ContextVar(
    "repro_progress_scope", default=None
)

#: Process-wide fallback sink: receives events emitted outside any
#: progress scope (and inside cancel-only scopes that carry no sink).
_DEFAULT_SINK: Callable[[ProgressEvent], None] | None = None


def active() -> bool:
    """Whether a progress scope is currently listening."""
    return _SCOPE.get() is not None


def set_default_sink(
    sink: Callable[[ProgressEvent], None] | None,
) -> Callable[[ProgressEvent], None] | None:
    """Install a process-wide fallback sink; returns the previous one.

    Historically ``emit`` silently dropped its counters whenever no
    progress scope was active, which made long-lived emitters (the
    :mod:`repro.monitor` fleet supervisor, ad-hoc scripts) invisible
    unless they ran under the service layer.  With a default sink set,
    unscoped emissions -- and emissions inside a cancel-only scope
    whose ``sink`` is ``None`` -- are delivered there instead of being
    discarded.  Scoped sinks always take precedence, and cancellation
    semantics are unchanged.  Pass ``None`` to uninstall.
    """
    global _DEFAULT_SINK
    previous = _DEFAULT_SINK
    _DEFAULT_SINK = sink
    return previous


@contextmanager
def progress_scope(
    sink: Callable[[ProgressEvent], None] | None = None,
    cancel: threading.Event | None = None,
    interval: float = 0.0,
) -> Iterator[None]:
    """Activate progress delivery (and cancellation) for the block.

    Parameters
    ----------
    sink:
        Receives every (rate-limited) :class:`ProgressEvent`.
    cancel:
        A :class:`threading.Event`; once set, the next ``emit`` inside
        the block raises :class:`JobCancelled`.  Cancellation is checked
        on *every* emit call, before rate limiting.
    interval:
        Minimum seconds between delivered events per (source, stage)
        pair; ``0`` delivers everything.
    """
    token = _SCOPE.set(_Scope(sink, cancel, interval))
    try:
        yield
    finally:
        _SCOPE.reset(token)


def emit(source: str, stage: str, message: str = "", **counters: float) -> None:
    """Progress checkpoint: report counters and honor cancellation.

    No-op without an active scope unless a process-wide fallback sink
    is installed (:func:`set_default_sink`).  Raises
    :class:`JobCancelled` when the active scope's cancel event is set.
    """
    scope = _SCOPE.get()
    if scope is None:
        if _DEFAULT_SINK is None:
            return
        sink = _DEFAULT_SINK
    else:
        if scope.cancel is not None and scope.cancel.is_set():
            raise JobCancelled(f"cancelled during {source}/{stage}")
        sink = scope.sink if scope.sink is not None else _DEFAULT_SINK
        if sink is None:
            return
        if scope.interval > 0.0:
            key = (source, stage)
            now = time.monotonic()
            last = scope.last_emit.get(key)
            if last is not None and now - last < scope.interval:
                return
            scope.last_emit[key] = now
    sink(
        ProgressEvent(
            source,
            stage,
            # drop non-finite values (e.g. a -inf best-so-far): counter
            # dicts end up in strict-JSON HTTP responses
            {
                k: float(v)
                for k, v in counters.items()
                if math.isfinite(float(v))
            },
            message,
            time=time.time(),
        )
    )
