"""Delta-decision procedures (S4 in DESIGN.md).

A pure-Python delta-complete decision procedure for bounded L_RF
sentences (paper Section III, Theorem 1): breadth-wise ICP
branch-and-prune over batches of boxes (formulas compile once into flat
evaluation tapes judged/contracted with the vectorized interval
kernel), a sharded work-stealing driver paving disjoint sub-boxes in
parallel worker processes with a deterministic merge
(:mod:`repro.solver.shard`), plus a CEGIS exists-forall solver used for
Lyapunov synthesis (Section IV-C).
"""

from .contractor import contract_formula, fixpoint_contract, hc4_revise
from .eval3 import Certainty, certainly_delta_sat, eval_formula
from .icp import DeltaSolver, Result, SolverStats, Status, solve
from .exists_forall import EFResult, ExistsForallSolver
from .shard import ShardPlan, pave_sharded, solve_sharded, split_into_shards
from .tape import CompiledFormula, ExprTape, compile_formula, judge_batch

__all__ = [
    "hc4_revise",
    "contract_formula",
    "fixpoint_contract",
    "Certainty",
    "eval_formula",
    "certainly_delta_sat",
    "CompiledFormula",
    "ExprTape",
    "compile_formula",
    "judge_batch",
    "DeltaSolver",
    "Result",
    "SolverStats",
    "Status",
    "solve",
    "EFResult",
    "ExistsForallSolver",
    "ShardPlan",
    "split_into_shards",
    "solve_sharded",
    "pave_sharded",
]
