"""Delta-decision procedures (S4 in DESIGN.md).

A pure-Python delta-complete decision procedure for bounded L_RF
sentences (paper Section III, Theorem 1): ICP branch-and-prune with
HC4 contractors, plus a CEGIS exists-forall solver used for Lyapunov
synthesis (Section IV-C).
"""

from .contractor import contract_formula, fixpoint_contract, hc4_revise
from .eval3 import Certainty, certainly_delta_sat, eval_formula
from .icp import DeltaSolver, Result, SolverStats, Status, solve
from .exists_forall import EFResult, ExistsForallSolver

__all__ = [
    "hc4_revise",
    "contract_formula",
    "fixpoint_contract",
    "Certainty",
    "eval_formula",
    "certainly_delta_sat",
    "DeltaSolver",
    "Result",
    "SolverStats",
    "Status",
    "solve",
    "EFResult",
    "ExistsForallSolver",
]
