"""Sharded, work-stealing parallel paving across worker processes.

The batched frontier loop of :mod:`repro.solver.icp` saturates one core;
this module is the step from "one fast core" to "all cores".  The ICP
search is embarrassingly shardable -- disjoint sub-boxes can be paved
independently and merged -- *provided* the merge is verdict-exact and
deterministic.  The driver here guarantees both:

* the initial box is expanded in-coordinator through the *same*
  contract-and-split tree the non-sharded loop walks, until there are
  at least ``shards`` disjoint pending sub-boxes; those are dealt to
  the shard queues (widest first, lexicographic ties, round-robin), so
  the sharded search explores the identical box tree -- an exhaustive
  paving therefore classifies the identical leaves for *every* shard
  count, and a solve with budget to spare keeps the identical verdict
  (the certified witness box may differ between shard counts; under a
  binding ``max_boxes`` budget the exploration order differs, so a
  budget-bound verdict can too -- both answers stay sound);
* every **epoch** each shard's widest pending boxes are shipped to a
  worker through the pluggable :class:`~repro.service.backends.ExecutorBackend`
  protocol (``process`` for true parallelism, ``thread``/``inline`` for
  tests, ``cluster``/``cluster:HOST:PORT`` to lease epochs to
  ``repro worker`` processes on other machines -- see
  :mod:`repro.cluster`), where one vectorized contract/judge/certify/split
  pass of the compiled tape runs over the whole chunk;
* epochs are **lock-step**: the coordinator waits for every in-flight
  chunk before acting on any result, so all scheduling decisions are
  pure functions of epoch-complete state and two sharded runs are
  byte-identical regardless of backend, worker count or OS scheduling;
* after each epoch the coordinator **rebalances** by stealing the widest
  pending boxes from overloaded shards through a shared steal queue and
  dealing them to starved shards (deterministically, in shard order);
* results merge under the *total* lexicographic box order of
  :func:`lex_key` -- ties between equal-width boxes never depend on
  arrival order.

Worker-side formula compilation is cached per process keyed on the
pickled formula, so each worker compiles each formula once no matter how
many epochs it serves.  Cooperative cancellation rides on the normal
progress checkpoints: the coordinator emits one per-shard
:class:`~repro.progress.ProgressEvent` per epoch, and a cancel request
unwinds the driver, which drains and shuts down its worker pool before
re-raising (no orphaned processes).
"""

from __future__ import annotations

import heapq
import itertools
import pickle
from dataclasses import dataclass

import numpy as np

from repro.intervals import Box, BoxArray, Interval
from repro.logic import Formula
from repro.progress import emit as _progress
from repro.service.backends import ExecutorBackend, make_backend

from .incremental import shell_slabs
from .tape import CERTAIN_FALSE, CERTAIN_TRUE, CompiledFormula, compile_formula

__all__ = ["ShardPlan", "split_into_shards", "lex_key", "solve_sharded", "pave_sharded"]


# ----------------------------------------------------------------------
# Deterministic ordering helpers
# ----------------------------------------------------------------------


def lex_key(lo, hi) -> tuple:
    """Total lexicographic order on box bounds (all lows, then all highs).

    This is the tie-breaker that makes every ordering decision of the
    sharded search -- heap ties, witness selection among simultaneous
    certifications, merged paving order -- independent of arrival order.
    """
    return tuple(float(v) for v in lo) + tuple(float(v) for v in hi)


def box_sort_key(box: Box) -> tuple:
    """:func:`lex_key` of a :class:`Box` in its own name order."""
    return lex_key([box[k].lo for k in box.names], [box[k].hi for k in box.names])


def _rebox(names: tuple[str, ...], lo, hi) -> Box:
    return Box({k: Interval(float(a), float(b)) for k, a, b in zip(names, lo, hi)})


# ----------------------------------------------------------------------
# Shard decomposition
# ----------------------------------------------------------------------


def split_into_shards(box: Box, shards: int) -> list[Box]:
    """Bisect ``box`` into ``shards`` disjoint sub-boxes.

    Repeatedly splits the currently-widest piece along its widest
    dimension (scalar midpoint rule, ties by :func:`box_sort_key`), so
    the decomposition is the first levels of the serial bisection tree.
    The returned list is sorted lexicographically.

    This is the *geometric* decomposition -- useful for domain
    decomposition of a raw box.  The solver drivers below instead
    bootstrap through the contract-and-split tree so the sharded search
    classifies exactly the boxes the non-sharded search classifies.
    """
    if shards < 1:
        raise ValueError(f"shards must be >= 1, got {shards}")
    pieces = [box]
    while len(pieces) < shards:
        pieces.sort(key=lambda b: (-b.max_width(), box_sort_key(b)))
        widest = pieces.pop(0)
        if widest.max_width() <= 0.0:
            pieces.append(widest)  # cannot subdivide a point box further
            break
        left, right = widest.split()
        pieces.extend((left, right))
    pieces.sort(key=box_sort_key)
    return pieces


# ----------------------------------------------------------------------
# Worker side: one vectorized epoch pass per chunk
# ----------------------------------------------------------------------

#: Per-process compiled-tape cache, keyed on the pickled formula plus
#: the execution kernel and variable order, so one worker process
#: compiles each (formula, kernel) pair exactly once across epochs.
_TAPE_CACHE: dict[tuple, CompiledFormula] = {}


def _compiled(
    phi_blob: bytes,
    kernel: str = "numpy",
    names: tuple[str, ...] | None = None,
) -> CompiledFormula:
    key = (phi_blob, kernel, names)
    tape = _TAPE_CACHE.get(key)
    if tape is None:
        if len(_TAPE_CACHE) >= 32:
            _TAPE_CACHE.clear()
        tape = compile_formula(pickle.loads(phi_blob), kernel=kernel, names=names)
        _TAPE_CACHE[key] = tape
    return tape


def _solve_epoch(
    phi_blob: bytes,
    names: tuple[str, ...],
    lo: np.ndarray,
    hi: np.ndarray,
    depths: np.ndarray,
    delta: float,
    contract_tol: float,
    min_width: float,
    record_cover: bool = False,
    kernel: str = "numpy",
) -> dict:
    """One branch-and-prune pass over a chunk of a shard's frontier.

    Returns certified witness rows, too-narrow unresolved rows, the
    split children that go back on the shard's queue, and counters.
    Pure function of its arguments -- the coordinator's determinism
    rests on that.

    With ``record_cover`` the chunk's contribution to the UNSAT cover
    (:mod:`repro.solver.incremental`) ships back too: pruned boxes plus
    the shells contraction peeled off pruned and split nodes.
    """
    compiled = _compiled(phi_blob, kernel, names)
    frontier = BoxArray(names, lo, hi)
    contracted = compiled.fixpoint_contract(frontier, tol=contract_tol)
    judgment = compiled.judge(contracted, 0.0)
    dead = contracted.is_empty | (judgment == CERTAIN_FALSE)
    cover: list | None = [] if record_cover else None
    if record_cover:
        for i in np.flatnonzero(dead):
            if contracted.is_empty[i]:
                cover.append((lo[i].copy(), hi[i].copy()))
            else:
                cover.append((contracted.lo[i].copy(), contracted.hi[i].copy()))
                cover.extend(
                    shell_slabs(lo[i], hi[i], contracted.lo[i], contracted.hi[i])
                )
    out = {
        "processed": int(len(frontier)),
        "pruned": int(dead.sum()),
        "splits": 0,
        "witnesses": [],
        "unresolved": [],
        "children": None,
        "max_depth": int(depths.max(initial=0)),
        "cover": cover,
    }
    live_idx = np.flatnonzero(~dead)
    if not live_idx.size:
        return out
    live = contracted.take(live_idx)
    certified = compiled.judge(live, delta) == CERTAIN_TRUE
    for i in np.flatnonzero(certified):
        out["witnesses"].append((live.lo[i].copy(), live.hi[i].copy()))
    if certified.any():
        return out  # this chunk is done: a witness ends the whole search
    narrow = live.max_width() <= min_width
    for i in np.flatnonzero(narrow):
        out["unresolved"].append((live.lo[i].copy(), live.hi[i].copy()))
    splittable = np.flatnonzero(~narrow)
    if splittable.size:
        if record_cover:
            for j in splittable:
                g = int(live_idx[j])
                cover.extend(
                    shell_slabs(lo[g], hi[g], contracted.lo[g], contracted.hi[g])
                )
        parents = live.take(splittable)
        children = parents.split_widest()
        out["splits"] = int(splittable.size)
        out["children"] = (
            children.lo,
            children.hi,
            np.repeat(depths[live_idx[splittable]] + 1, 2),
        )
    return out


def _pave_epoch(
    phi_blob: bytes,
    names: tuple[str, ...],
    lo: np.ndarray,
    hi: np.ndarray,
    delta: float,
    contract_tol: float,
    min_width: float,
    kernel: str = "numpy",
) -> dict:
    """One paving pass over a chunk: classify rows or split them."""
    compiled = _compiled(phi_blob, kernel, names)
    frontier = BoxArray(names, lo, hi)
    contracted = compiled.fixpoint_contract(frontier, tol=contract_tol)
    judgment = compiled.judge(contracted, 0.0)
    certified = compiled.judge(contracted, delta) == CERTAIN_TRUE
    widths = contracted.max_width()
    empty = contracted.is_empty
    sat, unsat, undecided = [], [], []
    splittable: list[int] = []
    for i in range(len(frontier)):
        if empty[i] or judgment[i] == CERTAIN_FALSE:
            unsat.append((lo[i].copy(), hi[i].copy()))  # the original box
        elif certified[i]:
            # the pruned-away shell contains no solutions
            sat.append((contracted.lo[i].copy(), contracted.hi[i].copy()))
        elif widths[i] <= min_width:
            undecided.append((contracted.lo[i].copy(), contracted.hi[i].copy()))
        else:
            splittable.append(i)
    out = {
        "processed": int(len(frontier)),
        "sat": sat,
        "unsat": unsat,
        "undecided": undecided,
        "children": None,
        "splits": len(splittable),
    }
    if splittable:
        children = contracted.take(np.array(splittable)).split_widest()
        out["children"] = (children.lo, children.hi)
    return out


# ----------------------------------------------------------------------
# Coordinator side
# ----------------------------------------------------------------------


class _ShardQueue:
    """Pending boxes of one shard: a widest-first heap with lex ties.

    Entries are ``(-width, lex_key, tie, lo, hi, depth)``; the counter
    (shared between the queues of one driver run, so stolen entries
    keep their identity) only shields the ndarray payload from tuple
    comparison -- equal ``lex_key`` already implies identical bounds.
    """

    __slots__ = ("entries", "_tie")

    def __init__(self, tie: "itertools.count | None" = None):
        self.entries: list[tuple] = []
        self._tie = tie if tie is not None else itertools.count()

    def push(self, lo: np.ndarray, hi: np.ndarray, depth: int) -> None:
        # NaN-safe width: a degenerate infinite dimension ([inf, inf])
        # would make ``hi - lo`` NaN and the heap ordering ill-defined
        # (matches Interval.width / BoxArray.widths).
        with np.errstate(invalid="ignore"):
            w = hi - lo
        w = np.where(np.isnan(w), 0.0, w)
        width = float(np.max(w, initial=0.0))
        heapq.heappush(
            self.entries,
            (-width, lex_key(lo, hi), next(self._tie), lo, hi, depth),
        )

    def __len__(self) -> int:
        return len(self.entries)

    def take_chunk(self, k: int) -> list[tuple]:
        """Remove and return the ``k`` widest entries (deterministic)."""
        return [heapq.heappop(self.entries)
                for _ in range(min(k, len(self.entries)))]

    def steal(self, k: int) -> list[tuple]:
        """Give away the ``k`` widest entries to the shared steal queue."""
        return self.take_chunk(k)

    def receive(self, entries: list[tuple]) -> None:
        for entry in entries:
            heapq.heappush(self.entries, entry)


def _root_arrays(box: Box, names: tuple[str, ...]) -> tuple[np.ndarray, np.ndarray]:
    return (
        np.array([box[k].lo for k in names], dtype=float),
        np.array([box[k].hi for k in names], dtype=float),
    )


def _deal(boot: _ShardQueue, shards: int) -> list[_ShardQueue]:
    """Deal bootstrapped pending boxes to shard queues, widest first.

    The queues share the boot queue's tie counter so stolen entries
    keep globally-unique ties.
    """
    queues = [_ShardQueue(boot._tie) for _ in range(shards)]
    entries = sorted(boot.entries, key=lambda e: (e[0], e[1]))
    for i, entry in enumerate(entries):
        queues[i % shards].receive([entry])
    return queues


@dataclass
class ShardPlan:
    """Resolved sharding configuration of one driver run."""

    shards: int
    backend: ExecutorBackend
    owns_backend: bool

    def shutdown(self) -> None:
        """Release the worker pool if this run created it (idempotent).

        Backends the driver instantiated from a name are drained and
        shut down; a caller-injected :class:`ExecutorBackend` instance
        is left running (it may be serving other work), and its
        lifecycle stays with the caller.
        """
        if self.owns_backend:
            self.backend.shutdown(wait=True)


def _resolve_plan(
    shards: int, backend: str | ExecutorBackend, workers: int | None
) -> ShardPlan:
    if isinstance(backend, ExecutorBackend):
        return ShardPlan(shards, backend, owns_backend=False)
    return ShardPlan(
        shards, make_backend(backend, workers or shards), owns_backend=True
    )


def _wait_all(futures: list) -> list:
    """Lock-step barrier: collect every chunk result (or raise the first
    worker failure after draining, so no future is left running)."""
    results, first_error = [], None
    for f in futures:
        try:
            results.append(f.result())
        except BaseException as exc:  # noqa: BLE001 - re-raised below
            if first_error is None:
                first_error = exc
    if first_error is not None:
        raise first_error
    return results


def _rebalance(queues: list[_ShardQueue]) -> int:
    """Work stealing: move widest boxes from overloaded to starved shards.

    Shards above the mean load surrender their widest pending boxes to a
    shared steal queue; shards below the mean take from it (widest first,
    dealt in shard order).  Runs between lock-step epochs, so the
    outcome is deterministic.  Returns the number of boxes stolen.
    """
    total = sum(len(q) for q in queues)
    if total == 0:
        return 0
    target = -(-total // len(queues))  # ceil
    pool: list[tuple] = []
    for q in queues:
        if len(q) > target:
            pool.extend(q.steal(len(q) - target))
    if not pool:
        return 0
    pool.sort(key=lambda e: (e[0], e[1]))
    stolen = len(pool)
    for q in queues:
        if not pool:
            break
        if len(q) < target:
            take = min(target - len(q), len(pool))
            q.receive(pool[:take])
            del pool[:take]
    if pool:  # everyone at target: deal the remainder round-robin
        for i, entry in enumerate(pool):
            queues[i % len(queues)].receive([entry])
    return stolen


def solve_sharded(
    phi: Formula,
    box: Box,
    *,
    delta: float,
    max_boxes: int,
    contract_tol: float,
    min_width: float,
    frontier_size: int,
    shards: int,
    backend: str | ExecutorBackend = "process",
    workers: int | None = None,
    recorder=None,
    anytime: bool = False,
    kernel: str = "numpy",
):
    """Decide ``exists box . phi`` across ``shards`` parallel pavers.

    Same verdict contract as :meth:`DeltaSolver.solve`; the run is a
    pure function of the arguments (byte-identical results regardless of
    backend or scheduling).  ``phi`` must already be existential-hoisted
    (the :class:`~repro.solver.icp.DeltaSolver` entry point does this).

    ``recorder`` (a :class:`~repro.solver.incremental.CoverRecorder`)
    collects the UNSAT cover shipped back from the worker epochs;
    ``anytime`` streams per-epoch verdict-so-far snapshots.
    """
    from .icp import Result, SolverStats, Status  # local: avoid import cycle

    import time

    t0 = time.perf_counter()
    stats = SolverStats()
    names = tuple(box.names)
    phi_blob = pickle.dumps(phi)
    frontier_size = max(2, int(frontier_size))
    record_cover = recorder is not None

    unresolved: tuple[tuple, np.ndarray, np.ndarray] | None = None
    epoch = 0
    steals = 0

    def finish(status: Status, witness: Box | None) -> Result:
        stats.wall_time = time.perf_counter() - t0
        return Result(status, witness, delta, stats)

    def absorb(res: dict, into: _ShardQueue) -> list[tuple]:
        nonlocal unresolved
        stats.boxes_processed += res["processed"]
        stats.boxes_pruned += res["pruned"]
        stats.splits += res["splits"]
        stats.max_depth = max(stats.max_depth, res["max_depth"])
        if record_cover and res.get("cover"):
            recorder.extend_pairs(res["cover"])
        for lo_r, hi_r in res["unresolved"]:
            cand = (lex_key(lo_r, hi_r), lo_r, hi_r)
            if unresolved is None or cand[0] < unresolved[0]:
                unresolved = cand
        if res["children"] is not None:
            c_lo, c_hi, c_depth = res["children"]
            for j in range(c_lo.shape[0]):
                into.push(c_lo[j], c_hi[j], int(c_depth[j]))
        return res["witnesses"]

    # Bootstrap in-coordinator: walk the same contract-and-split tree
    # the non-sharded loop walks until every shard can be given work,
    # so sharding never changes *which* boxes get classified.
    boot = _ShardQueue()
    boot.push(*_root_arrays(box, names), 0)
    while boot and len(boot) < shards and stats.boxes_processed < max_boxes:
        chunk = boot.take_chunk(
            min(frontier_size, len(boot), max_boxes - stats.boxes_processed)
        )
        _progress(
            "shard", "bootstrap",
            pending=len(boot), boxes=stats.boxes_processed, shards=shards,
        )
        witnesses = absorb(
            _solve_epoch(
                phi_blob, names,
                np.array([e[3] for e in chunk]), np.array([e[4] for e in chunk]),
                np.array([e[5] for e in chunk], dtype=int),
                delta, contract_tol, min_width, record_cover, kernel,
            ),
            boot,
        )
        if witnesses:
            lo_w, hi_w = min(witnesses, key=lambda w: lex_key(w[0], w[1]))
            return finish(Status.DELTA_SAT, _rebox(names, lo_w, hi_w))
    queues = _deal(boot, shards)

    plan = _resolve_plan(shards, backend, workers)
    try:
        while any(queues):
            budget = max_boxes - stats.boxes_processed
            if budget <= 0:
                if unresolved is not None:
                    return finish(Status.UNKNOWN, _rebox(names, *unresolved[1:]))
                # deterministic fallback: the widest pending box, lex ties
                best = min(
                    (e for q in queues for e in q.entries),
                    key=lambda e: (e[0], e[1]),
                )
                return finish(Status.UNKNOWN, _rebox(names, best[3], best[4]))

            epoch += 1
            chunks: list[tuple[int, list[tuple]]] = []
            for i, q in enumerate(queues):
                if not q or budget <= 0:
                    continue
                k = min(frontier_size, len(q), budget)
                budget -= k
                chunks.append((i, q.take_chunk(k)))

            # progress checkpoints fire BEFORE any submit: a cancel can
            # then only unwind between epochs, with no future in flight
            if anytime:
                _progress(
                    "icp", "anytime", message=Status.UNKNOWN.value,
                    settled=stats.boxes_processed, pruned=stats.boxes_pruned,
                    final=0,
                )
            for i, chunk in chunks:
                _progress(
                    "shard", "branch-and-prune",
                    shard=i, epoch=epoch, chunk=len(chunk),
                    pending=len(queues[i]), boxes=stats.boxes_processed,
                    steals=steals,
                )
            futures = [
                plan.backend.submit(
                    _solve_epoch, phi_blob, names,
                    np.array([e[3] for e in chunk]),
                    np.array([e[4] for e in chunk]),
                    np.array([e[5] for e in chunk], dtype=int),
                    delta, contract_tol, min_width, record_cover, kernel,
                )
                for i, chunk in chunks
            ]
            results = _wait_all(futures)

            witnesses: list[tuple] = []
            for (i, _), res in zip(chunks, results):
                witnesses.extend(absorb(res, queues[i]))

            if witnesses:
                # lock-step determinism: every chunk of this epoch was
                # collected, so the winning witness is the lex-least of a
                # scheduling-independent set
                lo_w, hi_w = min(witnesses, key=lambda w: lex_key(w[0], w[1]))
                return finish(Status.DELTA_SAT, _rebox(names, lo_w, hi_w))

            steals += _rebalance(queues)

        if unresolved is not None:
            return finish(Status.UNKNOWN, _rebox(names, *unresolved[1:]))
        return finish(Status.UNSAT, None)
    finally:
        plan.shutdown()


def pave_sharded(
    phi: Formula,
    box: Box,
    *,
    delta: float,
    max_boxes: int,
    contract_tol: float,
    min_width: float,
    frontier_size: int,
    shards: int,
    backend: str | ExecutorBackend = "process",
    workers: int | None = None,
    seeds: list[Box] | None = None,
    anytime: bool = False,
    kernel: str = "numpy",
) -> tuple[list[Box], list[Box], list[Box], int, bool]:
    """Partition ``box`` into (delta-sat, unsat, undecided) sub-boxes
    across ``shards`` parallel pavers.

    Shard pavings merge under the total lexicographic order of
    :func:`box_sort_key`, so two sharded runs (any backend, any
    scheduling) return byte-identical lists.

    ``seeds`` replaces the root box with an explicit frontier (the
    warm-start resume path of :mod:`repro.solver.incremental` paves only
    the boxes whose stored classification can flip).  Also returns the
    processed-box count and whether the ``max_boxes`` budget truncated
    the paving.
    """
    names = tuple(box.names)
    phi_blob = pickle.dumps(phi)
    frontier_size = max(2, int(frontier_size))

    sat: list[Box] = []
    unsat: list[Box] = []
    undecided: list[Box] = []
    processed = 0
    truncated = False
    epoch = 0
    steals = 0

    def absorb(res: dict, into: _ShardQueue) -> None:
        nonlocal processed
        processed += res["processed"]
        sat.extend(_rebox(names, lo_r, hi_r) for lo_r, hi_r in res["sat"])
        unsat.extend(_rebox(names, lo_r, hi_r) for lo_r, hi_r in res["unsat"])
        undecided.extend(
            _rebox(names, lo_r, hi_r) for lo_r, hi_r in res["undecided"]
        )
        if res["children"] is not None:
            c_lo, c_hi = res["children"]
            for j in range(c_lo.shape[0]):
                into.push(c_lo[j], c_hi[j], 0)

    # Bootstrap (see solve_sharded): same tree, hence same classified
    # leaves as the non-sharded paving, regardless of the shard count.
    boot = _ShardQueue()
    if seeds is None:
        boot.push(*_root_arrays(box, names), 0)
    else:
        for seed in seeds:
            boot.push(*_root_arrays(seed, names), 0)
    while boot and len(boot) < shards and processed < max_boxes:
        chunk = boot.take_chunk(
            min(frontier_size, len(boot), max_boxes - processed)
        )
        _progress(
            "shard", "bootstrap",
            pending=len(boot), boxes=processed, shards=shards,
        )
        absorb(
            _pave_epoch(
                phi_blob, names,
                np.array([e[3] for e in chunk]), np.array([e[4] for e in chunk]),
                delta, contract_tol, min_width, kernel,
            ),
            boot,
        )
    queues = _deal(boot, shards)

    plan = _resolve_plan(shards, backend, workers)
    try:
        while any(queues):
            remaining = max_boxes - processed
            if remaining <= 0:
                undecided.extend(
                    _rebox(names, e[3], e[4]) for q in queues for e in q.entries
                )
                truncated = True
                break

            epoch += 1
            chunks: list[tuple[int, list[tuple]]] = []
            for i, q in enumerate(queues):
                if not q or remaining <= 0:
                    continue
                k = min(frontier_size, len(q), remaining)
                remaining -= k
                chunks.append((i, q.take_chunk(k)))

            # see solve_sharded: checkpoints precede submits so a cancel
            # never strands an in-flight future
            if anytime:
                _progress(
                    "icp", "anytime", message="paving",
                    sat=len(sat), unsat=len(unsat),
                    undecided=len(undecided), final=0,
                )
            for i, chunk in chunks:
                _progress(
                    "shard", "paving",
                    shard=i, epoch=epoch, chunk=len(chunk),
                    pending=len(queues[i]), boxes=processed,
                    sat=len(sat), unsat=len(unsat), steals=steals,
                )
            futures = [
                plan.backend.submit(
                    _pave_epoch, phi_blob, names,
                    np.array([e[3] for e in chunk]),
                    np.array([e[4] for e in chunk]),
                    delta, contract_tol, min_width, kernel,
                )
                for i, chunk in chunks
            ]
            results = _wait_all(futures)

            for (i, _), res in zip(chunks, results):
                absorb(res, queues[i])

            steals += _rebalance(queues)
    finally:
        plan.shutdown()

    sat.sort(key=box_sort_key)
    unsat.sort(key=box_sort_key)
    undecided.sort(key=box_sort_key)
    return sat, unsat, undecided, processed, truncated
