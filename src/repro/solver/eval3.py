"""Three-valued interval evaluation of formulas over boxes.

For a box ``B`` and formula ``phi`` we compute one of

* ``CERTAIN_TRUE``  -- every point of ``B`` satisfies ``phi``,
* ``CERTAIN_FALSE`` -- no point of ``B`` satisfies ``phi``,
* ``UNKNOWN``       -- the interval test is inconclusive.

This is the "theory solver" judgment used both for pruning (certainly
false boxes are discarded) and for delta-sat verification: a box on
which the delta-weakening ``phi^delta`` is CERTAIN_TRUE witnesses
delta-satisfiability (paper Theorem 1's delta-sat case).
"""

from __future__ import annotations

import enum
import warnings

from repro.intervals import Box, Interval
from repro.logic import (
    And,
    Atom,
    Exists,
    FalseFormula,
    Forall,
    Formula,
    Or,
    TrueFormula,
)

__all__ = ["Certainty", "eval_formula", "certainly_delta_sat"]


class Certainty(enum.Enum):
    CERTAIN_FALSE = -1
    UNKNOWN = 0
    CERTAIN_TRUE = 1


def eval_formula(phi: Formula, box: Box, delta: float = 0.0) -> Certainty:
    """Three-valued judgment of ``phi^delta`` over ``box``.

    .. deprecated:: 0.3
        The scalar AST walk is deprecated; this shim compiles the
        formula to a flat tape (:mod:`repro.solver.tape`) and judges a
        batch of one box.  Batch callers should compile once with
        :func:`repro.solver.tape.compile_formula` and judge whole
        :class:`~repro.intervals.BoxArray` frontiers.
    """
    warnings.warn(
        "eval_formula is deprecated; submit boxes in batches through "
        "repro.solver.tape.compile_formula(...).judge(...) instead",
        DeprecationWarning,
        stacklevel=2,
    )
    from repro.intervals import BoxArray

    from .tape import compile_formula

    verdict = compile_formula(phi).judge(BoxArray.from_box(box), delta)
    return Certainty(int(verdict[0]))


def certainly_delta_sat(phi: Formula, box: Box, delta: float) -> bool:
    """True when every point of ``box`` satisfies ``phi^delta``.

    This is the verification step of the delta-sat answer: the returned
    witness box then consists entirely of delta-solutions.
    """
    return _certainly_delta_sat_impl(phi, box, delta)


def _eval_atom(atom: Atom, box: Box, delta: float) -> Certainty:
    """Judge ``t > -delta`` / ``t >= -delta`` over the box."""
    iv = atom.term.eval_interval(box)
    if iv.is_empty:
        return Certainty.CERTAIN_FALSE
    threshold = -delta
    if atom.strict:
        if iv.lo > threshold:
            return Certainty.CERTAIN_TRUE
        if iv.hi <= threshold:
            return Certainty.CERTAIN_FALSE
    else:
        if iv.lo >= threshold:
            return Certainty.CERTAIN_TRUE
        if iv.hi < threshold:
            return Certainty.CERTAIN_FALSE
    return Certainty.UNKNOWN


def _eval_formula_impl(phi: Formula, box: Box, delta: float = 0.0) -> Certainty:
    """Scalar three-valued judgment of ``phi^delta`` over ``box``.

    Kept as the single-box reference implementation (the BMC layer's
    per-box guard checks and the ``frontier_size=1`` solver path use it;
    the public :func:`eval_formula` shim routes through the tape).

    ``delta=0`` judges the formula itself.  Quantified subformulas are
    judged by extending the box with the quantifier's full domain
    interval: for ``Forall`` this is exact in spirit (true-on-domain =>
    forall true); for ``Exists`` a CERTAIN_TRUE judgment is sound
    (true everywhere => true somewhere) while CERTAIN_FALSE requires the
    body to be false on the whole domain, which is also sound.
    """
    if isinstance(phi, TrueFormula):
        return Certainty.CERTAIN_TRUE
    if isinstance(phi, FalseFormula):
        return Certainty.CERTAIN_FALSE
    if isinstance(phi, Atom):
        return _eval_atom(phi, box, delta)
    if isinstance(phi, And):
        result = Certainty.CERTAIN_TRUE
        for part in phi.parts:
            c = _eval_formula_impl(part, box, delta)
            if c is Certainty.CERTAIN_FALSE:
                return Certainty.CERTAIN_FALSE
            if c is Certainty.UNKNOWN:
                result = Certainty.UNKNOWN
        return result
    if isinstance(phi, Or):
        result = Certainty.CERTAIN_FALSE
        for part in phi.parts:
            c = _eval_formula_impl(part, box, delta)
            if c is Certainty.CERTAIN_TRUE:
                return Certainty.CERTAIN_TRUE
            if c is Certainty.UNKNOWN:
                result = Certainty.UNKNOWN
        return result
    if isinstance(phi, (Forall, Exists)):
        lo_iv = phi.lo.eval_interval(box)
        hi_iv = phi.hi.eval_interval(box)
        if lo_iv.is_empty or hi_iv.is_empty:
            return Certainty.CERTAIN_FALSE
        domain = Interval(lo_iv.lo, hi_iv.hi)
        if domain.is_empty:
            # empty domain: forall vacuously true, exists false
            return (
                Certainty.CERTAIN_TRUE
                if isinstance(phi, Forall)
                else Certainty.CERTAIN_FALSE
            )
        inner = box.merged({phi.name: domain})
        c = _eval_formula_impl(phi.body, inner, delta)
        if c is Certainty.UNKNOWN:
            return Certainty.UNKNOWN
        if isinstance(phi, Forall):
            # body certainly true on whole domain => forall true;
            # body certainly false on whole domain => forall false
            # (domain is nonempty here).
            return c
        # Exists: true-everywhere => true-somewhere; false-everywhere =>
        # false-somewhere-is-impossible, i.e. exists is false.
        return c
    raise TypeError(f"cannot evaluate {type(phi).__name__}")


def _certainly_delta_sat_impl(phi: Formula, box: Box, delta: float) -> bool:
    return _eval_formula_impl(phi, box, delta) is Certainty.CERTAIN_TRUE
