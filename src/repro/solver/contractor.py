"""HC4-revise interval contractors.

The workhorse of the ICP-based delta-decision procedure (paper Section
III-A; [52] dReal combines DPLL(T) with exactly this kind of interval
constraint propagation).  Given an atomic constraint ``t(x) >= 0`` and a
box ``B``, HC4-revise runs

* a **forward** pass computing interval enclosures bottom-up, then
* a **backward** pass pushing the output constraint ``[0, +inf)`` down
  through the expression tree, narrowing variable domains.

Both passes only ever *remove* points that cannot satisfy the
constraint, so contraction is sound: no solution of the constraint in
``B`` is lost.
"""

from __future__ import annotations

import math
from typing import Mapping

from repro.expr import Binary, Const, Expr, Unary, Var
from repro.intervals import EMPTY, Box, Interval
from repro.logic import And, Atom, Formula, Or

__all__ = ["hc4_revise", "contract_formula", "fixpoint_contract"]

_INF = math.inf
_POS = Interval(0.0, _INF)  # closure of both {t > 0} and {t >= 0}


def hc4_revise(atom: Atom, box: Box) -> Box:
    """Contract ``box`` w.r.t. the single atomic constraint ``atom``.

    Returns a sub-box of ``box`` (possibly empty) containing all points
    of ``box`` satisfying the atom.
    """
    env: dict[str, Interval] = dict(box)
    cache: dict[int, Interval] = {}
    root_iv = _forward(atom.term, env, cache)
    if root_iv.is_empty:
        return Box({k: EMPTY for k in box})
    # Constrain the root to t >= 0 (closure also covers strict atoms).
    want = root_iv.intersect(_POS)
    if want.is_empty:
        return Box({k: EMPTY for k in box})
    _backward(atom.term, want, env, cache)
    return Box({k: env[k] for k in box})


def _forward(e: Expr, env: Mapping[str, Interval], cache: dict[int, Interval]) -> Interval:
    key = id(e)
    if key in cache:
        return cache[key]
    iv = e.eval_interval(env) if isinstance(e, (Var, Const)) else _forward_node(e, env, cache)
    cache[key] = iv
    return iv


def _forward_node(e: Expr, env: Mapping[str, Interval], cache: dict[int, Interval]) -> Interval:
    if isinstance(e, Unary):
        arg = _forward(e.arg, env, cache)
        return _apply_unary(e.op, arg)
    if isinstance(e, Binary):
        a = _forward(e.left, env, cache)
        b = _forward(e.right, env, cache)
        return _apply_binary(e.op, a, b)
    raise TypeError(type(e).__name__)


def _apply_unary(op: str, iv: Interval) -> Interval:
    from repro.expr.ast import UNARY_INTERVAL

    return UNARY_INTERVAL[op](iv)


def _apply_binary(op: str, a: Interval, b: Interval) -> Interval:
    if a.is_empty or b.is_empty:
        return EMPTY
    if op == "add":
        return a + b
    if op == "sub":
        return a - b
    if op == "mul":
        return a * b
    if op == "div":
        return a / b
    if op == "pow":
        if b.is_point:
            return a.pow(b.lo)
        return (a.log() * b).exp()
    if op == "min":
        return a.min_with(b)
    if op == "max":
        return a.max_with(b)
    raise NotImplementedError(op)


def _backward(e: Expr, want: Interval, env: dict[str, Interval], cache: dict[int, Interval]) -> None:
    """Narrow sub-term enclosures so the value of ``e`` stays in ``want``."""
    if want.is_empty:
        _poison(env)
        return
    if isinstance(e, Var):
        env[e.name] = env[e.name].intersect(want)
        if env[e.name].is_empty:
            _poison(env)
        return
    if isinstance(e, Const):
        if not want.contains(e.value):
            _poison(env)
        return
    if isinstance(e, Unary):
        arg_iv = cache[id(e.arg)]
        new_arg = _invert_unary(e.op, want, arg_iv)
        new_arg = arg_iv.intersect(new_arg)
        if new_arg != arg_iv:
            cache[id(e.arg)] = new_arg
            _backward(e.arg, new_arg, env, cache)
        elif isinstance(e.arg, (Var,)):
            _backward(e.arg, new_arg, env, cache)
        return
    if isinstance(e, Binary):
        a = cache[id(e.left)]
        b = cache[id(e.right)]
        new_a, new_b = _invert_binary(e.op, want, a, b)
        new_a = a.intersect(new_a)
        new_b = b.intersect(new_b)
        cache[id(e.left)] = new_a
        cache[id(e.right)] = new_b
        _backward(e.left, new_a, env, cache)
        _backward(e.right, new_b, env, cache)
        return
    raise TypeError(type(e).__name__)


def _poison(env: dict[str, Interval]) -> None:
    for k in env:
        env[k] = EMPTY


def _invert_unary(op: str, want: Interval, arg: Interval) -> Interval:
    """Preimage over-approximation of ``want`` under the unary ``op``."""
    if op == "neg":
        return -want
    if op == "exp":
        return want.log()
    if op == "log":
        return want.exp()
    if op == "sqrt":
        w = want.intersect(_POS)
        return w.sqr()
    if op == "abs":
        w = want.intersect(_POS)
        if w.is_empty:
            return EMPTY
        return Interval(-w.hi, w.hi)
    if op == "tanh":
        w = want.intersect(Interval(-1.0, 1.0))
        if w.is_empty:
            return EMPTY
        lo = -_INF if w.lo <= -1.0 else math.atanh(w.lo)
        hi = _INF if w.hi >= 1.0 else math.atanh(w.hi)
        return Interval(lo, hi).inflate(1e-12)
    if op == "sigmoid":
        w = want.intersect(Interval(0.0, 1.0))
        if w.is_empty:
            return EMPTY

        def logit(p: float) -> float:
            if p <= 0.0:
                return -_INF
            if p >= 1.0:
                return _INF
            return math.log(p / (1.0 - p))

        return Interval(logit(w.lo), logit(w.hi)).inflate(1e-12)
    # sin / cos / tan: multivalued inverse -- no contraction (sound identity)
    return Interval.entire()


def _invert_binary(
    op: str, want: Interval, a: Interval, b: Interval
) -> tuple[Interval, Interval]:
    """Componentwise preimage over-approximations for binary ops."""
    if op == "add":
        return want - b, want - a
    if op == "sub":
        return want + b, a - want
    if op == "mul":
        new_a = want / b if not b.contains(0.0) or b.mignitude() > 0 else _safe_div(want, b)
        new_b = want / a if not a.contains(0.0) or a.mignitude() > 0 else _safe_div(want, a)
        return new_a, new_b
    if op == "div":
        # want = a / b  =>  a = want * b, b = a / want
        return want * b, _safe_div(a, want)
    if op == "pow":
        if b.is_point and (b.lo == int(b.lo)):
            n = int(b.lo)
            return _invert_int_pow(want, a, n), b
        return Interval.entire(), Interval.entire()
    if op in ("min", "max"):
        # value between both operands' reachable ranges; weak but sound:
        # each operand must be >= want.lo for min (resp. <= want.hi for max)
        if op == "min":
            return (
                Interval(want.lo, _INF),
                Interval(want.lo, _INF),
            )
        return (
            Interval(-_INF, want.hi),
            Interval(-_INF, want.hi),
        )
    raise NotImplementedError(op)


def _safe_div(num: Interval, den: Interval) -> Interval:
    """num/den, returning the entire line when den spans zero."""
    if den.contains(0.0):
        return Interval.entire()
    return num / den


def _invert_int_pow(want: Interval, base: Interval, n: int) -> Interval:
    if n == 0:
        return Interval.entire() if want.contains(1.0) else EMPTY
    if n < 0:
        inv = want.inverse()
        return _invert_int_pow(inv, base, -n)
    if n % 2 == 1:

        def root(v: float) -> float:
            return math.copysign(abs(v) ** (1.0 / n), v) if math.isfinite(v) else v

        return Interval(root(want.lo), root(want.hi)).inflate(1e-12)
    # even power: preimage is symmetric
    w = want.intersect(_POS)
    if w.is_empty:
        return EMPTY
    hi_root = w.hi ** (1.0 / n) if math.isfinite(w.hi) else _INF
    lo_root = w.lo ** (1.0 / n)
    pos = Interval(lo_root, hi_root).inflate(1e-12)
    neg = -pos
    # keep both branches but restrict to base's current sign info
    if base.lo >= 0.0:
        return pos
    if base.hi <= 0.0:
        return neg
    return neg.hull(pos)


# ----------------------------------------------------------------------
# Formula-level contraction
# ----------------------------------------------------------------------


def contract_formula(phi: Formula, box: Box) -> Box:
    """One contraction sweep of ``box`` with respect to formula ``phi``.

    Conjunctions intersect the contractions of their parts (applied
    sequentially so narrowing compounds); disjunctions take the hull of
    per-disjunct contractions; quantified subformulas are left alone
    (identity contraction is sound).
    """
    from repro.logic import Exists, Forall, FalseFormula, TrueFormula

    if isinstance(phi, Atom):
        return hc4_revise(phi, box)
    if isinstance(phi, And):
        for part in phi.parts:
            box = contract_formula(part, box)
            if box.is_empty:
                return box
        return box
    if isinstance(phi, Or):
        hull: Box | None = None
        for part in phi.parts:
            contracted = contract_formula(part, box)
            if contracted.is_empty:
                continue
            hull = contracted if hull is None else hull.hull(contracted)
        if hull is None:
            return Box({k: EMPTY for k in box})
        return hull
    if isinstance(phi, TrueFormula):
        return box
    if isinstance(phi, FalseFormula):
        return Box({k: EMPTY for k in box})
    if isinstance(phi, (Exists, Forall)):
        return box  # handled by hoisting / verification, identity is sound
    raise TypeError(f"cannot contract {type(phi).__name__}")


def fixpoint_contract(
    phi: Formula, box: Box, tol: float = 1e-3, max_sweeps: int = 30
) -> Box:
    """Iterate :func:`contract_formula` until the box stops shrinking.

    ``tol`` is the relative reduction in max width below which iteration
    stops (classic ICP fixed-point loop with a progress threshold).
    """
    def total_width(b: Box) -> float:
        return sum(min(iv.width(), 1e9) for iv in b.values())

    for _ in range(max_sweeps):
        before = total_width(box)
        box = contract_formula(phi, box)
        if box.is_empty:
            return box
        after = total_width(box)
        if before <= 0.0 or (before - after) < tol * before:
            return box
    return box
