"""Flat evaluation tapes: compile a formula once, run it over box batches.

The scalar theory solver re-walks the expression AST for every box it
judges or contracts, which makes Python call overhead the dominant cost
of the whole delta-decision procedure.  This module compiles each
``L_RF`` formula *once* into

* one flat register **tape** per distinct expression term (a linear
  instruction list over a register file, shared subterms deduplicated),
  and
* a small tree of judgment/contraction **nodes** mirroring the logical
  structure (atoms, and/or, bounded quantifiers),

and then evaluates the whole batch of boxes (a
:class:`~repro.intervals.BoxArray`) in vectorized
:class:`~repro.intervals.IntervalArray` operations:

* :meth:`CompiledFormula.judge` is the batched three-valued interval
  judgment of :mod:`repro.solver.eval3` (``-1`` certainly false, ``0``
  unknown, ``+1`` certainly true, per row);
* :meth:`CompiledFormula.contract` is the batched HC4-revise sweep of
  :mod:`repro.solver.contractor` (forward enclosures up the tape, the
  output constraint pushed back down, all rows at once);
* :meth:`CompiledFormula.fixpoint_contract` iterates contraction with
  the scalar loop's per-row progress threshold.

Soundness is inherited row-wise from the vectorized kernel's inclusion
property: judgments are conservative and contraction only removes
points that cannot satisfy the constraint.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from repro.expr import Binary, Const, Expr, Unary, Var
from repro.intervals import Box
from repro.intervals.array import BoxArray, IntervalArray
from repro.logic import (
    And,
    Atom,
    Exists,
    FalseFormula,
    Forall,
    Formula,
    Or,
    TrueFormula,
)
from repro.solver.lower import lower_tape, resolve_kernel

__all__ = ["ExprTape", "CompiledFormula", "compile_formula", "judge_batch"]

_INF = math.inf

CERTAIN_FALSE = -1
UNKNOWN = 0
CERTAIN_TRUE = 1


def _inflate(ia: IntervalArray, eps: float) -> IntervalArray:
    lo = np.where(ia.is_empty, ia.lo, ia.lo - eps)
    hi = np.where(ia.is_empty, ia.hi, ia.hi + eps)
    return IntervalArray(lo, hi)


# ----------------------------------------------------------------------
# Expression tapes
# ----------------------------------------------------------------------


class ExprTape:
    """A linear register program computing one expression term.

    Instructions (``dst`` is always a fresh register):

    ``("var", dst, name)``
        load a box column,
    ``("const", dst, value)``
        load a constant,
    ``("un", dst, op, a)``
        unary op on register ``a``,
    ``("bin", dst, op, a, b)``
        binary op,
    ``("pow_const", dst, a, n)``
        power with a compile-time constant exponent.

    Shared sub-expressions (same node object) are emitted once, so the
    tape is the flattened DAG of the term.
    """

    __slots__ = ("instrs", "n_regs", "root")

    def __init__(self, expr: Expr):
        self.instrs: list[tuple] = []
        memo: dict[int, int] = {}
        self.root = self._emit(expr, memo)
        self.n_regs = len(self.instrs)

    def _emit(self, e: Expr, memo: dict[int, int]) -> int:
        key = id(e)
        if key in memo:
            return memo[key]
        if isinstance(e, Var):
            dst = len(self.instrs)
            self.instrs.append(("var", dst, e.name))
        elif isinstance(e, Const):
            dst = len(self.instrs)
            self.instrs.append(("const", dst, float(e.value)))
        elif isinstance(e, Unary):
            a = self._emit(e.arg, memo)
            dst = len(self.instrs)
            self.instrs.append(("un", dst, e.op, a))
        elif isinstance(e, Binary):
            a = self._emit(e.left, memo)
            if e.op == "pow" and isinstance(e.right, Const):
                dst = len(self.instrs)
                self.instrs.append(("pow_const", dst, a, float(e.right.value)))
            else:
                b = self._emit(e.right, memo)
                dst = len(self.instrs)
                self.instrs.append(("bin", dst, e.op, a, b))
        else:
            raise TypeError(f"cannot compile node {type(e).__name__}")
        memo[key] = dst
        return dst

    # ------------------------------------------------------------------
    def forward(self, boxes: BoxArray) -> list[IntervalArray]:
        """Bottom-up interval enclosures of every register over the batch."""
        n = len(boxes)
        regs: list[IntervalArray] = [None] * self.n_regs  # type: ignore[list-item]
        for ins in self.instrs:
            tag, dst = ins[0], ins[1]
            if tag == "var":
                regs[dst] = boxes.column(ins[2])
            elif tag == "const":
                regs[dst] = IntervalArray.constant(ins[2], n)
            elif tag == "un":
                regs[dst] = _UNARY[ins[2]](regs[ins[3]])
            elif tag == "pow_const":
                regs[dst] = regs[ins[2]].pow_scalar(ins[3])
            else:  # bin
                op, a, b = ins[2], ins[3], ins[4]
                regs[dst] = _apply_binary(op, regs[a], regs[b])
        return regs

    def eval(self, boxes: BoxArray) -> IntervalArray:
        return self.forward(boxes)[self.root]

    # ------------------------------------------------------------------
    def hc4(self, boxes: BoxArray, strict: bool) -> BoxArray:
        """Batched HC4-revise of ``term >= 0`` (closure covers strict).

        Returns the contracted batch; rows where the constraint is
        infeasible come back empty.
        """
        fwd = self.forward(boxes)
        n = len(boxes)
        root_iv = fwd[self.root]
        # Output constraint: the term must be able to reach [0, +inf).
        want_root = root_iv.intersect(
            IntervalArray(np.zeros(n), np.full(n, _INF))
        )
        dead = root_iv.is_empty | want_root.is_empty

        # Per-register accumulated targets, narrowed by every consumer
        # before the register's own instruction is inverted (registers
        # are in topological order, so a reverse sweep visits consumers
        # first -- the DAG analogue of the scalar top-down recursion).
        want: list[IntervalArray] = [iv.copy() for iv in fwd]
        want[self.root] = want_root

        new_lo = boxes.lo.copy()
        new_hi = boxes.hi.copy()
        col = boxes._index

        for ins in reversed(self.instrs):
            tag, dst = ins[0], ins[1]
            w = want[dst]
            if tag == "var":
                j = col[ins[2]]
                new_lo[:, j] = np.maximum(new_lo[:, j], w.lo)
                new_hi[:, j] = np.minimum(new_hi[:, j], w.hi)
                dead = dead | (new_lo[:, j] > new_hi[:, j])
            elif tag == "const":
                dead = dead | ~w.contains(ins[2])
            elif tag == "un":
                op, a = ins[2], ins[3]
                inv = _invert_unary(op, w, want[a])
                want[a] = want[a].intersect(inv)
                dead = dead | want[a].is_empty
            elif tag == "pow_const":
                a, nexp = ins[2], ins[3]
                if float(nexp).is_integer():
                    inv = _invert_int_pow(w, want[a], int(nexp))
                else:
                    inv = IntervalArray.entire(n)
                want[a] = want[a].intersect(inv)
                dead = dead | want[a].is_empty
            else:  # bin
                op, a, b = ins[2], ins[3], ins[4]
                inv_a, inv_b = _invert_binary(op, w, want[a], want[b])
                want[a] = want[a].intersect(inv_a)
                want[b] = want[b].intersect(inv_b)
                dead = dead | want[a].is_empty | want[b].is_empty
        if dead.any():
            new_lo[dead] = _INF
            new_hi[dead] = -_INF
        return BoxArray(boxes.names, new_lo, new_hi)


# ----------------------------------------------------------------------
# Vectorized operator tables (forward)
# ----------------------------------------------------------------------

_UNARY = {
    "neg": IntervalArray.__neg__,
    "abs": IntervalArray.__abs__,
    "sqrt": IntervalArray.sqrt,
    "exp": IntervalArray.exp,
    "log": IntervalArray.log,
    "sin": IntervalArray.sin,
    "cos": IntervalArray.cos,
    "tan": IntervalArray.tan,
    "tanh": IntervalArray.tanh,
    "sigmoid": IntervalArray.sigmoid,
}


def _apply_binary(op: str, a: IntervalArray, b: IntervalArray) -> IntervalArray:
    if op == "add":
        return a + b
    if op == "sub":
        return a - b
    if op == "mul":
        return a * b
    if op == "div":
        return a / b
    if op == "min":
        return a.min_with(b)
    if op == "max":
        return a.max_with(b)
    if op == "pow":
        return _pow_general(a, b)
    raise NotImplementedError(op)


def _pow_general(a: IntervalArray, b: IntervalArray) -> IntervalArray:
    """Runtime-exponent power: exp(b*log a), with the scalar kernel's
    per-row point-exponent specialization grafted back on."""
    out = (a.log() * b).exp()
    point = ~b.is_empty & (b.lo == b.hi)
    if point.any():
        for nval in np.unique(b.lo[point]):
            rows = point & (b.lo == nval)
            fixed = a.take(rows).pow_scalar(float(nval))
            lo, hi = out.lo.copy(), out.hi.copy()
            lo[rows] = fixed.lo
            hi[rows] = fixed.hi
            out = IntervalArray(lo, hi)
    return out._propagate_empty(a, b)


# ----------------------------------------------------------------------
# Vectorized inversion rules (backward)
# ----------------------------------------------------------------------


def _invert_unary(op: str, want: IntervalArray, arg: IntervalArray) -> IntervalArray:
    n = len(want)
    if op == "neg":
        return -want
    if op == "exp":
        return want.log()
    if op == "log":
        return want.exp()
    if op == "sqrt":
        return want.intersect(IntervalArray(np.zeros(n), np.full(n, _INF))).sqr()
    if op == "abs":
        w = want.intersect(IntervalArray(np.zeros(n), np.full(n, _INF)))
        return IntervalArray(-w.hi, w.hi)  # empty w stays empty (-(-inf) > -inf)
    if op == "tanh":
        w = want.intersect(IntervalArray(np.full(n, -1.0), np.full(n, 1.0)))
        with np.errstate(all="ignore"):
            lo = np.where(w.lo <= -1.0, -_INF, np.arctanh(w.lo))
            hi = np.where(w.hi >= 1.0, _INF, np.arctanh(w.hi))
        out = _inflate(IntervalArray(lo, hi), 1e-12)
        return out._propagate_empty(w)
    if op == "sigmoid":
        w = want.intersect(IntervalArray(np.zeros(n), np.full(n, 1.0)))
        with np.errstate(all="ignore"):
            lo = np.where(w.lo <= 0.0, -_INF, np.log(w.lo / (1.0 - w.lo)))
            hi = np.where(w.hi >= 1.0, _INF, np.log(w.hi / (1.0 - w.hi)))
        out = _inflate(IntervalArray(lo, hi), 1e-12)
        return out._propagate_empty(w)
    # sin / cos / tan: multivalued inverse -- no contraction (sound identity)
    return IntervalArray.entire(n)


def _where_ia(mask: np.ndarray, a: IntervalArray, b: IntervalArray) -> IntervalArray:
    return IntervalArray(np.where(mask, a.lo, b.lo), np.where(mask, a.hi, b.hi))


def _safe_div(num: IntervalArray, den: IntervalArray) -> IntervalArray:
    """num/den rows; the entire line where den spans zero."""
    return _where_ia(den.contains_zero(), IntervalArray.entire(len(num)), num / den)


def _invert_binary(
    op: str, want: IntervalArray, a: IntervalArray, b: IntervalArray
) -> tuple[IntervalArray, IntervalArray]:
    n = len(want)
    if op == "add":
        return want - b, want - a
    if op == "sub":
        return want + b, a - want
    if op == "mul":
        return _safe_div(want, b), _safe_div(want, a)
    if op == "div":
        # want = a / b  =>  a = want * b, b = a / want
        return want * b, _safe_div(a, want)
    if op == "min":
        bound = IntervalArray(want.lo, np.full(n, _INF))
        return bound, bound.copy()
    if op == "max":
        bound = IntervalArray(np.full(n, -_INF), want.hi)
        return bound, bound.copy()
    if op == "pow":
        # runtime exponent: no reliable componentwise preimage
        return IntervalArray.entire(n), IntervalArray.entire(n)
    raise NotImplementedError(op)


def _invert_int_pow(want: IntervalArray, base: IntervalArray, n: int) -> IntervalArray:
    rows = len(want)
    if n == 0:
        return _where_ia(
            want.contains(1.0), IntervalArray.entire(rows), IntervalArray.empty(rows)
        )
    if n < 0:
        return _invert_int_pow(want.inverse(), base, -n)
    with np.errstate(all="ignore"):
        if n % 2 == 1:
            root_lo = np.where(
                np.isfinite(want.lo),
                np.copysign(np.abs(want.lo) ** (1.0 / n), want.lo),
                want.lo,
            )
            root_hi = np.where(
                np.isfinite(want.hi),
                np.copysign(np.abs(want.hi) ** (1.0 / n), want.hi),
                want.hi,
            )
            return _inflate(IntervalArray(root_lo, root_hi), 1e-12)
        w = want.intersect(IntervalArray(np.zeros(rows), np.full(rows, _INF)))
        hi_root = np.where(np.isfinite(w.hi), w.hi ** (1.0 / n), _INF)
        lo_root = w.lo ** (1.0 / n)
        pos = _inflate(IntervalArray(lo_root, hi_root), 1e-12)
    neg = -pos
    both = neg.hull(pos)
    out = _where_ia(base.lo >= 0.0, pos, _where_ia(base.hi <= 0.0, neg, both))
    return out._propagate_empty(w)


# ----------------------------------------------------------------------
# Formula-level compilation
# ----------------------------------------------------------------------


class _CNode:
    """Base of compiled formula nodes."""

    __slots__ = ()

    def judge(self, boxes: BoxArray, delta: float) -> np.ndarray:
        raise NotImplementedError

    def contract(self, boxes: BoxArray) -> BoxArray:
        raise NotImplementedError


class _CTrue(_CNode):
    __slots__ = ()

    def judge(self, boxes, delta):
        return np.full(len(boxes), CERTAIN_TRUE, dtype=np.int8)

    def contract(self, boxes):
        return boxes


class _CFalse(_CNode):
    __slots__ = ()

    def judge(self, boxes, delta):
        return np.full(len(boxes), CERTAIN_FALSE, dtype=np.int8)

    def contract(self, boxes):
        lo = np.full_like(boxes.lo, _INF)
        hi = np.full_like(boxes.hi, -_INF)
        return BoxArray(boxes.names, lo, hi)


def _tape_eval(tape: ExprTape, boxes: BoxArray, kernel: str) -> IntervalArray:
    """Forward-evaluate ``tape`` with the selected kernel.

    Non-numpy kernels use the fused per-row lowering when the tape
    admits one; otherwise (oversized tape, exotic op) the numpy
    interpreter is the transparent fallback -- results are identical
    either way, by the lowering's bit-identity contract.
    """
    if kernel != "numpy":
        lowered = lower_tape(tape, boxes.names, kernel)
        if lowered is not None:
            return lowered.eval(boxes)
    return tape.eval(boxes)


class _CAtom(_CNode):
    __slots__ = ("tape", "strict", "kernel")

    def __init__(self, atom: Atom, kernel: str = "numpy"):
        self.tape = ExprTape(atom.term)
        self.strict = atom.strict
        self.kernel = kernel

    def judge(self, boxes, delta):
        iv = _tape_eval(self.tape, boxes, self.kernel)
        threshold = -delta
        out = np.zeros(len(boxes), dtype=np.int8)
        if self.strict:
            out[iv.lo > threshold] = CERTAIN_TRUE
            out[iv.hi <= threshold] = CERTAIN_FALSE
        else:
            out[iv.lo >= threshold] = CERTAIN_TRUE
            out[iv.hi < threshold] = CERTAIN_FALSE
        out[iv.is_empty] = CERTAIN_FALSE
        return out

    def contract(self, boxes):
        if self.kernel != "numpy":
            lowered = lower_tape(self.tape, boxes.names, self.kernel)
            if lowered is not None:
                return lowered.hc4(boxes)
        return self.tape.hc4(boxes, self.strict)


class _CAnd(_CNode):
    __slots__ = ("parts",)

    def __init__(self, parts):
        self.parts = parts

    def judge(self, boxes, delta):
        out = self.parts[0].judge(boxes, delta)
        for p in self.parts[1:]:
            if (out == CERTAIN_FALSE).all():
                break
            out = np.minimum(out, p.judge(boxes, delta))
        return out

    def contract(self, boxes):
        for p in self.parts:
            boxes = p.contract(boxes)
            if boxes.is_empty.all():
                return boxes
        return boxes


class _COr(_CNode):
    __slots__ = ("parts",)

    def __init__(self, parts):
        self.parts = parts

    def judge(self, boxes, delta):
        out = self.parts[0].judge(boxes, delta)
        for p in self.parts[1:]:
            if (out == CERTAIN_TRUE).all():
                break
            out = np.maximum(out, p.judge(boxes, delta))
        return out

    def contract(self, boxes):
        hull_lo = np.full_like(boxes.lo, _INF)
        hull_hi = np.full_like(boxes.hi, -_INF)
        for p in self.parts:
            c = p.contract(boxes)
            live = ~c.is_empty
            if live.any():
                hull_lo[live] = np.minimum(hull_lo[live], c.lo[live])
                hull_hi[live] = np.maximum(hull_hi[live], c.hi[live])
        return BoxArray(boxes.names, hull_lo, hull_hi)


class _CQuant(_CNode):
    __slots__ = ("is_forall", "name", "lo_tape", "hi_tape", "body", "kernel")

    def __init__(self, phi: Exists | Forall, body: _CNode, kernel: str = "numpy"):
        self.is_forall = isinstance(phi, Forall)
        self.name = phi.name
        self.lo_tape = ExprTape(phi.lo)
        self.hi_tape = ExprTape(phi.hi)
        self.body = body
        self.kernel = kernel

    def judge(self, boxes, delta):
        lo_iv = _tape_eval(self.lo_tape, boxes, self.kernel)
        hi_iv = _tape_eval(self.hi_tape, boxes, self.kernel)
        bad = lo_iv.is_empty | hi_iv.is_empty
        domain = IntervalArray(lo_iv.lo, hi_iv.hi)
        vacuous = ~bad & domain.is_empty
        # judge the body on every row; vacuous rows get a dummy domain
        safe = _where_ia(domain.is_empty, IntervalArray.point(np.zeros(len(boxes))), domain)
        inner = boxes.with_column(self.name, safe)
        out = self.body.judge(inner, delta)
        out = np.where(
            vacuous,
            np.int8(CERTAIN_TRUE if self.is_forall else CERTAIN_FALSE),
            out,
        )
        out = np.where(bad, np.int8(CERTAIN_FALSE), out)
        return out.astype(np.int8, copy=False)

    def contract(self, boxes):
        return boxes  # handled by hoisting / verification, identity is sound


def _compile_node(phi: Formula, kernel: str = "numpy") -> _CNode:
    if isinstance(phi, TrueFormula):
        return _CTrue()
    if isinstance(phi, FalseFormula):
        return _CFalse()
    if isinstance(phi, Atom):
        return _CAtom(phi, kernel)
    if isinstance(phi, And):
        return _CAnd([_compile_node(p, kernel) for p in phi.parts])
    if isinstance(phi, Or):
        return _COr([_compile_node(p, kernel) for p in phi.parts])
    if isinstance(phi, (Exists, Forall)):
        return _CQuant(phi, _compile_node(phi.body, kernel), kernel)
    raise TypeError(f"cannot compile {type(phi).__name__}")


def _prewarm_node(node: _CNode, names: tuple[str, ...]) -> None:
    """Pay lowering/jit cost for every tape upfront (shard workers do
    this once per formula so the first epoch is not the slow one)."""
    if isinstance(node, _CAtom):
        lower_tape(node.tape, names, node.kernel)
    elif isinstance(node, (_CAnd, _COr)):
        for p in node.parts:
            _prewarm_node(p, names)
    elif isinstance(node, _CQuant):
        lower_tape(node.lo_tape, names, node.kernel)
        lower_tape(node.hi_tape, names, node.kernel)
        inner = names if node.name in names else names + (node.name,)
        _prewarm_node(node.body, inner)


class CompiledFormula:
    """A formula compiled for batch judgment and contraction.

    ``kernel`` selects the tape execution backend (see
    :mod:`repro.solver.lower`): ``"numpy"`` interprets instruction by
    instruction over the whole batch, ``"numba"`` runs the fused
    per-row jitted lowering (resolved with a one-time warning to
    ``"numpy"`` when unavailable).  ``names`` optionally pre-lowers
    every tape for boxes over that variable tuple.
    """

    __slots__ = ("formula", "root", "kernel")

    def __init__(
        self,
        phi: Formula,
        kernel: str = "numpy",
        names: Sequence[str] | None = None,
    ):
        self.formula = phi
        self.kernel = resolve_kernel(kernel)
        self.root = _compile_node(phi, self.kernel)
        if names is not None and self.kernel != "numpy":
            _prewarm_node(self.root, tuple(names))

    # ------------------------------------------------------------------
    def judge(self, boxes: BoxArray, delta: float = 0.0) -> np.ndarray:
        """Row-wise three-valued judgment of ``phi^delta``: an ``int8``
        array of ``-1`` (certainly false) / ``0`` / ``+1`` (certainly
        true), matching :func:`repro.solver.eval3.eval_formula`."""
        return self.root.judge(boxes, delta)

    def contract(self, boxes: BoxArray) -> BoxArray:
        """One batched contraction sweep (HC4 through the structure)."""
        return self.root.contract(boxes)

    def fixpoint_contract(
        self, boxes: BoxArray, tol: float = 1e-3, max_sweeps: int = 30
    ) -> BoxArray:
        """Iterate contraction per row until progress drops below ``tol``
        (the scalar fixed-point loop, applied to every row independently)."""
        out = boxes.copy()
        active = np.arange(len(boxes))
        for _ in range(max_sweeps):
            sub = out.take(active)
            before = sub.total_width()
            contracted = self.root.contract(sub)
            out.lo[active] = contracted.lo
            out.hi[active] = contracted.hi
            after = contracted.total_width()
            keep = (
                ~contracted.is_empty
                & (before > 0.0)
                & ((before - after) >= tol * before)
            )
            active = active[keep]
            if active.size == 0:
                break
        return out


def compile_formula(
    phi: Formula,
    kernel: str = "numpy",
    names: Sequence[str] | None = None,
) -> CompiledFormula:
    """Compile ``phi`` into its batched tape form under ``kernel``."""
    return CompiledFormula(phi, kernel=kernel, names=names)


def judge_batch(
    phi: Formula,
    boxes: Sequence[Box] | BoxArray,
    delta: float = 0.0,
    kernel: str = "numpy",
) -> np.ndarray:
    """One-shot convenience: compile ``phi`` and judge a batch of boxes."""
    if not isinstance(boxes, BoxArray):
        boxes = BoxArray.from_boxes(list(boxes))
    return compile_formula(phi, kernel=kernel).judge(boxes, delta)
