"""Compiled tape kernels: fused per-row lowering of expression tapes.

The numpy tape interpreter (:mod:`repro.solver.tape`) pays one Python
call and several array temporaries per instruction per sweep.  This
module lowers an :class:`~repro.solver.tape.ExprTape` into a single
generated function that walks every frontier row once, computing the
whole forward pass (and for HC4 the backward pass) in straight-line
scalar code -- the shape ``@njit`` compiles into one fused loop with no
allocation.

Two execution modes run the *same* generated source:

``"numba"``
    the source is wrapped in ``numba.njit`` (only offered when numba
    imports and a probe kernel compiles -- see :func:`numba_usable`);
``"pyexec"``
    the source runs through the plain interpreter.  This is the
    internal test mode: it exercises the lowering bit-for-bit against
    the numpy interpreter even where numba is not installed, because
    every helper calls the very same numpy scalar ufuncs the array
    kernel calls.

Bit-identity with the interpreter is the design contract, not an
accident.  Every helper below mirrors one :class:`IntervalArray`
operation *in evaluation order*: the same ``nextafter`` outward bumps,
the same TwoSum/Dekker exactness shortcuts, the same NaN scrubbing of
``0 * inf`` corner products, the same tie behavior as
``np.maximum``/``np.minimum`` (second argument wins, NaN propagates),
and the same ``npy_pow`` fast paths (``x ** 2.0 -> x * x``,
``x ** 0.5 -> sqrt(x)``).  Deviating in any of these breaks the golden
byte-identity the conformance suite enforces.

Public knob surface: :data:`KERNELS` (``"numpy"``/``"numba"``) is what
``SolverOptions.kernel`` accepts; :func:`resolve_kernel` maps a request
onto what the process can actually run, warning once on fallback.
"""

from __future__ import annotations

import math
import warnings

import numpy as np

from repro.intervals.array import BoxArray, IntervalArray

__all__ = [
    "HAS_NUMBA",
    "KERNELS",
    "PYEXEC_KERNEL",
    "LoweredTape",
    "available_kernels",
    "lower_tape",
    "numba_usable",
    "resolve_kernel",
    "validate_kernel",
]

try:  # pragma: no cover - exercised only where numba is installed
    import numba

    HAS_NUMBA = True
except ImportError:  # pragma: no cover
    numba = None
    HAS_NUMBA = False

#: Kernels selectable through ``SolverOptions`` / ``--kernel``.
KERNELS = ("numpy", "numba")

#: Internal test-only kernel: runs the generated per-row source through
#: the plain interpreter, so the lowering itself is exercised even
#: where numba is absent.  Accepted by ``DeltaSolver`` but rejected at
#: the ``SolverOptions`` (API/CLI/serve) boundary.
PYEXEC_KERNEL = "pyexec"

_INF = math.inf
_SPLITTER = 134217729.0  # 2**27 + 1, Dekker splitting constant
_PI = math.pi
_TWO_PI = 2.0 * math.pi

#: Tapes longer than this fall back to the numpy interpreter: the
#: generated function grows ~8 locals per register and jit compile time
#: stops paying for itself.
_MAX_LOWER_REGS = 128


class _Unlowerable(Exception):
    """Raised during codegen for tapes the lowering cannot express."""


# ----------------------------------------------------------------------
# Kernel selection
# ----------------------------------------------------------------------

_warned_fallback = False
_numba_ok: bool | None = None


def available_kernels() -> tuple[str, ...]:
    """The kernels this process can actually execute."""
    return KERNELS if numba_usable() else ("numpy",)


def validate_kernel(kernel: str, *, internal: bool = False) -> str:
    """Check a kernel name, raising the boundary ``ValueError``.

    ``internal=True`` additionally admits :data:`PYEXEC_KERNEL` (the
    test-only mode), which the public option surface rejects.
    """
    allowed = KERNELS + ((PYEXEC_KERNEL,) if internal else ())
    if kernel not in allowed:
        raise ValueError(
            f"unknown kernel {kernel!r}: expected one of "
            + ", ".join(repr(k) for k in KERNELS)
        )
    return kernel


def resolve_kernel(kernel: str) -> str:
    """Map a requested kernel onto what this process can run.

    ``"numba"`` degrades to ``"numpy"`` -- with a single
    :class:`RuntimeWarning` per process -- when numba is missing or its
    probe kernel fails to compile.  Results are unchanged by the
    fallback; only throughput differs.
    """
    global _warned_fallback
    validate_kernel(kernel, internal=True)
    if kernel == "numba" and not numba_usable():
        if not _warned_fallback:
            _warned_fallback = True
            reason = (
                "numba is not installed"
                if not HAS_NUMBA
                else "the numba kernel failed to initialize"
            )
            warnings.warn(
                f"kernel='numba' requested but {reason}; falling back to "
                "the numpy tape interpreter",
                RuntimeWarning,
                stacklevel=3,
            )
        return "numpy"
    return kernel


def numba_usable() -> bool:
    """True when the jitted lowering is genuinely available.

    Compiles and runs a tiny probe kernel touching the risky primitives
    (``nextafter`` bumps, trig, integer-power inversion) the first time
    it is asked, so a partial numba install degrades to the interpreter
    instead of failing deep inside a solve.
    """
    global _numba_ok
    if not HAS_NUMBA:
        return False
    if _numba_ok is None:
        try:
            ns = dict(_ops_namespace("numba"))
            src = (
                "def _probe(lo, hi, out_lo, out_hi):\n"
                "    for _i in range(lo.shape[0]):\n"
                "        a_lo, a_hi = B_add(lo[_i, 0], hi[_i, 0], 1.0, 1.0)\n"
                "        b_lo, b_hi = U_sin(a_lo, a_hi)\n"
                "        c_lo, c_hi = B_powi(b_lo, b_hi, 2)\n"
                "        d_lo, d_hi = I_powi(c_lo, c_hi, b_lo, b_hi, 3)\n"
                "        out_lo[_i] = d_lo\n"
                "        out_hi[_i] = d_hi\n"
            )
            exec(compile(src, "<kernel-probe>", "exec"), ns)
            fn = numba.njit(cache=False)(ns["_probe"])
            out_lo, out_hi = np.empty(1), np.empty(1)
            fn(np.array([[0.25]]), np.array([[0.5]]), out_lo, out_hi)
            _numba_ok = bool(np.isfinite(out_lo[0]))
        except Exception:  # pragma: no cover - depends on the install
            _numba_ok = False
    return _numba_ok


# ----------------------------------------------------------------------
# Scalar op library (mirrors IntervalArray operation by operation)
# ----------------------------------------------------------------------


def _make_ops(jit):
    """Build the helper namespace, each function wrapped by ``jit``.

    Helpers reference each other through closure cells, so the jitted
    namespace calls jitted helpers and the plain namespace calls plain
    ones.
    """

    def dn(x):
        return np.nextafter(x, -_INF)

    dn = jit(dn)

    def up(x):
        return np.nextafter(x, _INF)

    up = jit(up)

    def MX(a, b):
        # np.maximum semantics: NaN propagates, second argument wins ties
        if a != a:
            return a
        if b != b:
            return b
        if a > b:
            return a
        return b

    MX = jit(MX)

    def MN(a, b):
        if a != a:
            return a
        if b != b:
            return b
        if a < b:
            return a
        return b

    MN = jit(MN)

    def pwf(x, y):
        # npy_pow fast paths, replicated so the jitted kernel agrees
        # with numpy's power ufunc bit-for-bit
        if y == 2.0:
            return x * x
        if y == 0.5:
            return np.sqrt(x)
        return np.power(x, y)

    pwf = jit(pwf)

    def mexact(a, b, p):
        if (not np.isfinite(p)) or np.abs(a) > 1e150 or np.abs(b) > 1e150:
            return p == 0.0 and (a == 0.0 or b == 0.0)
        ca = _SPLITTER * a
        ah = ca - (ca - a)
        al = a - ah
        cb = _SPLITTER * b
        bh = cb - (cb - b)
        bl = b - bh
        err = ((ah * bh - p) + ah * bl + al * bh) + al * bl
        return err == 0.0

    mexact = jit(mexact)

    # -- forward ops ---------------------------------------------------

    def B_add(al, ah, bl, bh):
        if al > ah or bl > bh:
            return _INF, -_INF
        s = al + bl
        bb = s - al
        err = (al - (s - bb)) + (bl - bb)
        if np.isfinite(s) and err == 0.0:
            rl = s
        else:
            rl = dn(s)
        t = ah + bh
        bb2 = t - ah
        err2 = (ah - (t - bb2)) + (bh - bb2)
        if np.isfinite(t) and err2 == 0.0:
            rh = t
        else:
            rh = up(t)
        return rl, rh

    B_add = jit(B_add)

    def U_neg(al, ah):
        return -ah, -al

    U_neg = jit(U_neg)

    def B_sub(al, ah, bl, bh):
        return B_add(al, ah, -bh, -bl)

    B_sub = jit(B_sub)

    def B_mul(al, ah, bl, bh):
        if al > ah or bl > bh:
            return _INF, -_INF
        p0 = al * bl
        if p0 != p0:
            p0 = 0.0
        p1 = al * bh
        if p1 != p1:
            p1 = 0.0
        p2 = ah * bl
        if p2 != p2:
            p2 = 0.0
        p3 = ah * bh
        if p3 != p3:
            p3 = 0.0
        plo = MN(MN(p0, p1), MN(p2, p3))
        phi = MX(MX(p0, p1), MX(p2, p3))
        if p0 == plo:
            xa, xb = al, bl
        elif p1 == plo:
            xa, xb = al, bh
        elif p2 == plo:
            xa, xb = ah, bl
        else:
            xa, xb = ah, bh
        if mexact(xa, xb, plo):
            rl = plo
        else:
            rl = dn(plo)
        if p0 == phi:
            ya, yb = al, bl
        elif p1 == phi:
            ya, yb = al, bh
        elif p2 == phi:
            ya, yb = ah, bl
        else:
            ya, yb = ah, bh
        if mexact(ya, yb, phi):
            rh = phi
        else:
            rh = up(phi)
        return rl, rh

    B_mul = jit(B_mul)

    def U_inv(al, ah):
        if al > ah:
            return _INF, -_INF
        if al == 0.0 and ah == 0.0:
            return _INF, -_INF
        if al <= 0.0 <= ah:
            if al == 0.0:
                return dn(1.0 / ah), _INF
            if ah == 0.0:
                return -_INF, up(1.0 / al)
            return -_INF, _INF
        return dn(1.0 / ah), up(1.0 / al)

    U_inv = jit(U_inv)

    def B_div(al, ah, bl, bh):
        if al > ah or bl > bh:
            return _INF, -_INF
        il, ih = U_inv(bl, bh)
        return B_mul(al, ah, il, ih)

    B_div = jit(B_div)

    def U_abs(al, ah):
        if al > ah:
            return _INF, -_INF
        if al >= 0.0:
            return al, ah
        if ah <= 0.0:
            return -ah, -al
        return 0.0, MX(-al, ah)

    U_abs = jit(U_abs)

    def U_sqr(al, ah):
        if al > ah:
            return _INF, -_INF
        bl, bh = U_abs(al, ah)
        return dn(bl * bl), up(bh * bh)

    U_sqr = jit(U_sqr)

    def U_sqrt(al, ah):
        sl = MX(al, 0.0)
        if sl > ah:
            return _INF, -_INF
        return dn(np.sqrt(sl)), up(np.sqrt(ah))

    U_sqrt = jit(U_sqrt)

    def U_exp(al, ah):
        if al > ah:
            return _INF, -_INF
        return MX(0.0, dn(np.exp(al))), up(np.exp(ah))

    U_exp = jit(U_exp)

    def U_log(al, ah):
        sl = MX(al, 0.0)
        if sl == 0.0:
            rl = -_INF
        else:
            rl = dn(np.log(sl))
        if ah == 0.0:
            rh = -_INF
        else:
            rh = up(np.log(ah))
        if rl != rl or rh != rh:  # IntervalArray.make: NaN bounds -> empty
            return _INF, -_INF
        if sl > ah:
            return _INF, -_INF
        return rl, rh

    U_log = jit(U_log)

    def T_trig(al, ah, offset, use_sin):
        if al > ah:
            return _INF, -_INF
        if al == ah:
            w = 0.0
        else:
            w = ah - al
        wide = (w >= _TWO_PI) or (not np.isfinite(al)) or (not np.isfinite(ah))
        if use_sin:
            lov = np.sin(al)
            hiv = np.sin(ah)
        else:
            lov = np.cos(al)
            hiv = np.cos(ah)
        rl = MN(lov, hiv)
        rh = MX(lov, hiv)
        k_max = np.ceil((al + offset - _PI / 2.0) / _TWO_PI)
        if (_PI / 2.0 - offset) + k_max * _TWO_PI <= ah:
            rh = 1.0
        k_min = np.ceil((al + offset + _PI / 2.0) / _TWO_PI)
        if (-_PI / 2.0 - offset) + k_min * _TWO_PI <= ah:
            rl = -1.0
        if wide:
            return -1.0, 1.0
        return MX(-1.0, dn(rl)), MN(1.0, up(rh))

    T_trig = jit(T_trig)

    def U_sin(al, ah):
        return T_trig(al, ah, 0.0, True)

    U_sin = jit(U_sin)

    def U_cos(al, ah):
        return T_trig(al, ah, _PI / 2.0, False)

    U_cos = jit(U_cos)

    def U_tan(al, ah):
        if al > ah:
            return _INF, -_INF
        if al == ah:
            w = 0.0
        else:
            w = ah - al
        k_lo = np.floor((al - _PI / 2.0) / _PI)
        k_hi = np.floor((ah - _PI / 2.0) / _PI)
        if (
            (w >= _PI)
            or (k_lo != k_hi)
            or (not np.isfinite(al))
            or (not np.isfinite(ah))
        ):
            return -_INF, _INF
        return dn(np.tan(al)), up(np.tan(ah))

    U_tan = jit(U_tan)

    def U_tanh(al, ah):
        if al > ah:
            return _INF, -_INF
        return MX(-1.0, dn(np.tanh(al))), MN(1.0, up(np.tanh(ah)))

    U_tanh = jit(U_tanh)

    def sig(x):
        if x >= 0:
            return 1.0 / (1.0 + np.exp(-x))
        e = np.exp(x)
        return e / (1.0 + e)

    sig = jit(sig)

    def U_sigmoid(al, ah):
        if al > ah:
            return _INF, -_INF
        return MX(0.0, dn(sig(al))), MN(1.0, up(sig(ah)))

    U_sigmoid = jit(U_sigmoid)

    def B_min(al, ah, bl, bh):
        if al > ah or bl > bh:
            return _INF, -_INF
        return MN(al, bl), MN(ah, bh)

    B_min = jit(B_min)

    def B_max(al, ah, bl, bh):
        if al > ah or bl > bh:
            return _INF, -_INF
        return MX(al, bl), MX(ah, bh)

    B_max = jit(B_max)

    def B_powi(al, ah, n):
        if al > ah:
            return _INF, -_INF
        if n == 0:
            return 1.0, 1.0
        if n < 0:
            m = -n
            if m % 2 == 0:
                xl, xh = U_abs(al, ah)
            else:
                xl, xh = al, ah
            pl = dn(pwf(xl, 1.0 * m))
            ph = up(pwf(xh, 1.0 * m))
            return U_inv(pl, ph)
        if n % 2 == 0:
            xl, xh = U_abs(al, ah)
        else:
            xl, xh = al, ah
        return dn(pwf(xl, 1.0 * n)), up(pwf(xh, 1.0 * n))

    B_powi = jit(B_powi)

    def B_powf(al, ah, n):
        # pow_scalar's fractional-exponent branch, row-local
        bl = MX(al, 0.0)
        bh = ah
        ll, lh = U_log(bl, bh)
        ml, mh = B_mul(ll, lh, n, n)
        pl, ph = U_exp(ml, mh)
        if n < 0.0:
            tl = MX(0.0, dn(pwf(bh, n)))
            th = _INF
            at_zero = bh == 0.0
        else:
            fl = MX(bl, 1e-300)
            l2l, l2h = U_log(fl, bh)
            m2l, m2h = B_mul(l2l, l2h, n, n)
            el, eh = U_exp(m2l, m2h)
            tl = MN(el, 0.0)
            th = MX(eh, 0.0)
            at_zero = False
        if bl <= 0.0:
            if at_zero:
                return _INF, -_INF
            rl, rh = tl, th
        else:
            rl, rh = pl, ph
        if bl > bh:
            return _INF, -_INF
        return rl, rh

    B_powf = jit(B_powf)

    def B_powg(al, ah, bl, bh):
        # runtime exponent: exp(b * log a) with the per-row
        # point-exponent specialization of _pow_general
        ll, lh = U_log(al, ah)
        ml, mh = B_mul(ll, lh, bl, bh)
        rl, rh = U_exp(ml, mh)
        if bl <= bh and bl == bh:
            n = bl
            if np.isfinite(n) and n == np.floor(n) and np.abs(n) <= 9.007199254740992e15:
                rl, rh = B_powi(al, ah, int(n))
            else:
                rl, rh = B_powf(al, ah, n)
        if al > ah or bl > bh:
            return _INF, -_INF
        return rl, rh

    B_powg = jit(B_powg)

    # -- inversion (backward) ops --------------------------------------

    def I_neg(wl, wh):
        return -wh, -wl

    I_neg = jit(I_neg)

    def I_exp(wl, wh):
        return U_log(wl, wh)

    I_exp = jit(I_exp)

    def I_log(wl, wh):
        return U_exp(wl, wh)

    I_log = jit(I_log)

    def I_sqrt(wl, wh):
        return U_sqr(MX(wl, 0.0), wh)

    I_sqrt = jit(I_sqrt)

    def I_abs(wl, wh):
        h = wh  # intersect with [0, inf) only moves the lower bound
        return -h, h

    I_abs = jit(I_abs)

    def I_tanh(wl, wh):
        l = MX(wl, -1.0)
        h = MN(wh, 1.0)
        if l <= -1.0:
            rl = -_INF
        else:
            rl = np.arctanh(l)
        if h >= 1.0:
            rh = _INF
        else:
            rh = np.arctanh(h)
        if not (rl > rh):
            rl = rl - 1e-12
            rh = rh + 1e-12
        if l > h:
            return _INF, -_INF
        return rl, rh

    I_tanh = jit(I_tanh)

    def I_sigmoid(wl, wh):
        l = MX(wl, 0.0)
        h = MN(wh, 1.0)
        if l <= 0.0:
            rl = -_INF
        else:
            rl = np.log(l / (1.0 - l))
        if h >= 1.0:
            rh = _INF
        else:
            rh = np.log(h / (1.0 - h))
        if not (rl > rh):
            rl = rl - 1e-12
            rh = rh + 1e-12
        if l > h:
            return _INF, -_INF
        return rl, rh

    I_sigmoid = jit(I_sigmoid)

    def SDIV(nl, nh, dl, dh):
        if dl <= dh and dl <= 0.0 <= dh:
            return -_INF, _INF
        return B_div(nl, nh, dl, dh)

    SDIV = jit(SDIV)

    def I_add(wl, wh, al, ah, bl, bh):
        xl, xh = B_sub(wl, wh, bl, bh)
        yl, yh = B_sub(wl, wh, al, ah)
        return xl, xh, yl, yh

    I_add = jit(I_add)

    def I_sub(wl, wh, al, ah, bl, bh):
        xl, xh = B_add(wl, wh, bl, bh)
        yl, yh = B_sub(al, ah, wl, wh)
        return xl, xh, yl, yh

    I_sub = jit(I_sub)

    def I_mul(wl, wh, al, ah, bl, bh):
        xl, xh = SDIV(wl, wh, bl, bh)
        yl, yh = SDIV(wl, wh, al, ah)
        return xl, xh, yl, yh

    I_mul = jit(I_mul)

    def I_div(wl, wh, al, ah, bl, bh):
        xl, xh = B_mul(wl, wh, bl, bh)
        yl, yh = SDIV(al, ah, wl, wh)
        return xl, xh, yl, yh

    I_div = jit(I_div)

    def I_min(wl, wh, al, ah, bl, bh):
        return wl, _INF, wl, _INF

    I_min = jit(I_min)

    def I_max(wl, wh, al, ah, bl, bh):
        return -_INF, wh, -_INF, wh

    I_max = jit(I_max)

    def I_powi(wl, wh, al, ah, n):
        if n == 0:
            if wl <= wh and wl <= 1.0 <= wh:
                return -_INF, _INF
            return _INF, -_INF
        if n < 0:
            wl, wh = U_inv(wl, wh)
            n = -n
        if n % 2 == 1:
            if np.isfinite(wl):
                rl = np.copysign(pwf(np.abs(wl), 1.0 / n), wl)
            else:
                rl = wl
            if np.isfinite(wh):
                rh = np.copysign(pwf(np.abs(wh), 1.0 / n), wh)
            else:
                rh = wh
            if not (rl > rh):
                rl = rl - 1e-12
                rh = rh + 1e-12
            return rl, rh
        el = MX(wl, 0.0)
        eh = wh
        if np.isfinite(eh):
            hr = pwf(eh, 1.0 / n)
        else:
            hr = _INF
        pl = pwf(el, 1.0 / n)
        ph = hr
        if not (pl > ph):
            pl = pl - 1e-12
            ph = ph + 1e-12
        nl = -ph
        nh = -pl
        if nl > nh:
            hl, hh = pl, ph
        elif pl > ph:
            hl, hh = nl, nh
        else:
            hl = MN(nl, pl)
            hh = MX(nh, ph)
        if al >= 0.0:
            rl, rh = pl, ph
        elif ah <= 0.0:
            rl, rh = nl, nh
        else:
            rl, rh = hl, hh
        if el > eh:
            return _INF, -_INF
        return rl, rh

    I_powi = jit(I_powi)

    return {
        "np": np,
        "_INF": _INF,
        "dn": dn,
        "up": up,
        "MX": MX,
        "MN": MN,
        "pwf": pwf,
        "mexact": mexact,
        "B_add": B_add,
        "B_sub": B_sub,
        "B_mul": B_mul,
        "B_div": B_div,
        "B_min": B_min,
        "B_max": B_max,
        "B_powi": B_powi,
        "B_powf": B_powf,
        "B_powg": B_powg,
        "U_neg": U_neg,
        "U_inv": U_inv,
        "U_abs": U_abs,
        "U_sqr": U_sqr,
        "U_sqrt": U_sqrt,
        "U_exp": U_exp,
        "U_log": U_log,
        "U_sin": U_sin,
        "U_cos": U_cos,
        "U_tan": U_tan,
        "U_tanh": U_tanh,
        "U_sigmoid": U_sigmoid,
        "I_neg": I_neg,
        "I_exp": I_exp,
        "I_log": I_log,
        "I_sqrt": I_sqrt,
        "I_abs": I_abs,
        "I_tanh": I_tanh,
        "I_sigmoid": I_sigmoid,
        "SDIV": SDIV,
        "I_add": I_add,
        "I_sub": I_sub,
        "I_mul": I_mul,
        "I_div": I_div,
        "I_min": I_min,
        "I_max": I_max,
        "I_powi": I_powi,
    }


_OPS_CACHE: dict[str, dict] = {}


def _ops_namespace(mode: str) -> dict:
    ns = _OPS_CACHE.get(mode)
    if ns is None:
        if mode == "numba":
            jit = numba.njit(cache=False)
        else:
            jit = lambda f: f  # noqa: E731 - identity "jit" for pyexec
        ns = _make_ops(jit)
        _OPS_CACHE[mode] = ns
    return ns


# ----------------------------------------------------------------------
# Codegen
# ----------------------------------------------------------------------

_UNARY_FWD = {
    "neg": "U_neg",
    "abs": "U_abs",
    "sqrt": "U_sqrt",
    "exp": "U_exp",
    "log": "U_log",
    "sin": "U_sin",
    "cos": "U_cos",
    "tan": "U_tan",
    "tanh": "U_tanh",
    "sigmoid": "U_sigmoid",
}
#: unary ops whose inverse is the sound identity (multivalued)
_UNARY_INV = {
    "neg": "I_neg",
    "exp": "I_exp",
    "log": "I_log",
    "sqrt": "I_sqrt",
    "abs": "I_abs",
    "tanh": "I_tanh",
    "sigmoid": "I_sigmoid",
}
_BINARY_FWD = {
    "add": "B_add",
    "sub": "B_sub",
    "mul": "B_mul",
    "div": "B_div",
    "min": "B_min",
    "max": "B_max",
    "pow": "B_powg",
}
#: binary ops with a componentwise preimage ("pow" has none)
_BINARY_INV = {
    "add": "I_add",
    "sub": "I_sub",
    "mul": "I_mul",
    "div": "I_div",
    "min": "I_min",
    "max": "I_max",
}


def _const_lit(v: float) -> str:
    if math.isnan(v):
        return "np.nan"
    if v == _INF:
        return "_INF"
    if v == -_INF:
        return "-_INF"
    return repr(float(v))


def _forward_lines(instrs, col) -> list[str]:
    lines = []
    for ins in instrs:
        tag, dst = ins[0], ins[1]
        if tag == "var":
            if ins[2] not in col:
                raise _Unlowerable(f"unbound variable {ins[2]!r}")
            j = col[ins[2]]
            lines.append(f"r{dst}_lo = lo[_i, {j}]")
            lines.append(f"r{dst}_hi = hi[_i, {j}]")
        elif tag == "const":
            lit = _const_lit(ins[2])
            lines.append(f"r{dst}_lo = {lit}")
            lines.append(f"r{dst}_hi = {lit}")
        elif tag == "un":
            fn = _UNARY_FWD.get(ins[2])
            if fn is None:
                raise _Unlowerable(f"unary op {ins[2]!r}")
            a = ins[3]
            lines.append(f"r{dst}_lo, r{dst}_hi = {fn}(r{a}_lo, r{a}_hi)")
        elif tag == "pow_const":
            a, nexp = ins[2], ins[3]
            if float(nexp).is_integer():
                lines.append(
                    f"r{dst}_lo, r{dst}_hi = B_powi(r{a}_lo, r{a}_hi, {int(nexp)})"
                )
            else:
                lines.append(
                    f"r{dst}_lo, r{dst}_hi = B_powf(r{a}_lo, r{a}_hi, "
                    f"{_const_lit(float(nexp))})"
                )
        elif tag == "bin":
            op, a, b = ins[2], ins[3], ins[4]
            fn = _BINARY_FWD.get(op)
            if fn is None:
                raise _Unlowerable(f"binary op {op!r}")
            lines.append(
                f"r{dst}_lo, r{dst}_hi = {fn}(r{a}_lo, r{a}_hi, r{b}_lo, r{b}_hi)"
            )
        else:
            raise _Unlowerable(f"instruction {tag!r}")
    return lines


def _backward_lines(instrs, col) -> list[str]:
    lines = []
    for ins in reversed(instrs):
        tag, d = ins[0], ins[1]
        if tag == "var":
            j = col[ins[2]]
            lines.append(f"_t = MX(out_lo[_i, {j}], w{d}_lo)")
            lines.append(f"out_lo[_i, {j}] = _t")
            lines.append(f"_t2 = MN(out_hi[_i, {j}], w{d}_hi)")
            lines.append(f"out_hi[_i, {j}] = _t2")
            lines.append("_d = _d or (_t > _t2)")
        elif tag == "const":
            lit = _const_lit(ins[2])
            lines.append(f"_d = _d or not (w{d}_lo <= {lit} <= w{d}_hi)")
        elif tag == "un":
            op, a = ins[2], ins[3]
            fn = _UNARY_INV.get(op)
            if fn is not None:
                lines.append(f"_il, _ih = {fn}(w{d}_lo, w{d}_hi)")
                lines.append(f"w{a}_lo = MX(w{a}_lo, _il)")
                lines.append(f"w{a}_hi = MN(w{a}_hi, _ih)")
            lines.append(f"_d = _d or (w{a}_lo > w{a}_hi)")
        elif tag == "pow_const":
            a, nexp = ins[2], ins[3]
            if float(nexp).is_integer():
                lines.append(
                    f"_il, _ih = I_powi(w{d}_lo, w{d}_hi, w{a}_lo, w{a}_hi, "
                    f"{int(nexp)})"
                )
                lines.append(f"w{a}_lo = MX(w{a}_lo, _il)")
                lines.append(f"w{a}_hi = MN(w{a}_hi, _ih)")
            lines.append(f"_d = _d or (w{a}_lo > w{a}_hi)")
        else:  # bin
            op, a, b = ins[2], ins[3], ins[4]
            fn = _BINARY_INV.get(op)
            if fn is not None:
                lines.append(
                    f"_al, _ah, _bl, _bh = {fn}(w{d}_lo, w{d}_hi, "
                    f"w{a}_lo, w{a}_hi, w{b}_lo, w{b}_hi)"
                )
                lines.append(f"w{a}_lo = MX(w{a}_lo, _al)")
                lines.append(f"w{a}_hi = MN(w{a}_hi, _ah)")
                lines.append(f"w{b}_lo = MX(w{b}_lo, _bl)")
                lines.append(f"w{b}_hi = MN(w{b}_hi, _bh)")
            lines.append(
                f"_d = _d or (w{a}_lo > w{a}_hi) or (w{b}_lo > w{b}_hi)"
            )
    return lines


def _emit_source(instrs, root: int, col: dict[str, int]) -> str:
    fwd = _forward_lines(instrs, col)
    body = "        "
    ev = [
        "def _t_eval(lo, hi, out_lo, out_hi):",
        "    for _i in range(lo.shape[0]):",
    ]
    ev += [body + ln for ln in fwd]
    ev += [body + f"out_lo[_i] = r{root}_lo", body + f"out_hi[_i] = r{root}_hi"]

    hc = [
        "def _t_hc4(lo, hi, out_lo, out_hi, dead):",
        "    for _i in range(lo.shape[0]):",
    ]
    hc += [body + ln for ln in fwd]
    # output constraint: the root term must be able to reach [0, +inf)
    hc += [
        body + f"w{root}_lo = MX(r{root}_lo, 0.0)",
        body + f"w{root}_hi = r{root}_hi",
        body + f"_d = (r{root}_lo > r{root}_hi) or (w{root}_lo > w{root}_hi)",
    ]
    for k in range(len(instrs)):
        if k != root:
            hc += [body + f"w{k}_lo = r{k}_lo", body + f"w{k}_hi = r{k}_hi"]
    hc += [body + ln for ln in _backward_lines(instrs, col)]
    hc += [body + "dead[_i] = _d"]
    return "\n".join(ev) + "\n\n" + "\n".join(hc) + "\n"


# ----------------------------------------------------------------------
# Lowered tape objects
# ----------------------------------------------------------------------


class LoweredTape:
    """A tape lowered to one fused per-row function (eval + HC4)."""

    __slots__ = ("names", "mode", "source", "_eval_fn", "_hc4_fn")

    def __init__(self, instrs, root: int, names: tuple[str, ...], mode: str):
        self.names = tuple(names)
        self.mode = mode
        col = {n: j for j, n in enumerate(self.names)}
        self.source = _emit_source(instrs, root, col)
        ns = dict(_ops_namespace(mode))
        exec(compile(self.source, f"<lowered-tape-{mode}>", "exec"), ns)
        ev, hc = ns["_t_eval"], ns["_t_hc4"]
        if mode == "numba":
            ev = numba.njit(cache=False)(ev)
            hc = numba.njit(cache=False)(hc)
        self._eval_fn = ev
        self._hc4_fn = hc

    def eval(self, boxes: BoxArray) -> IntervalArray:
        n = len(boxes)
        out_lo = np.empty(n)
        out_hi = np.empty(n)
        with np.errstate(all="ignore"):
            self._eval_fn(boxes.lo, boxes.hi, out_lo, out_hi)
        return IntervalArray(out_lo, out_hi)

    def hc4(self, boxes: BoxArray) -> BoxArray:
        new_lo = boxes.lo.copy()
        new_hi = boxes.hi.copy()
        dead = np.zeros(len(boxes), dtype=np.bool_)
        with np.errstate(all="ignore"):
            self._hc4_fn(boxes.lo, boxes.hi, new_lo, new_hi, dead)
        if dead.any():
            new_lo[dead] = _INF
            new_hi[dead] = -_INF
        return BoxArray(boxes.names, new_lo, new_hi)


#: (instrs, root, names, mode) -> LoweredTape | False (False caches
#: "not lowerable" so unsupported tapes skip codegen on every call).
_LOWER_CACHE: dict[tuple, "LoweredTape | bool"] = {}
_LOWER_CACHE_MAX = 256


def lower_tape(tape, names, mode: str) -> LoweredTape | None:
    """Lower ``tape`` for boxes over ``names``; None -> use the interpreter.

    Lowered kernels are cached process-wide by tape content, so the
    one-time (jit) compile cost is shared across every
    ``CompiledFormula`` built from the same terms.
    """
    if tape.n_regs > _MAX_LOWER_REGS:
        return None
    key = (tuple(tape.instrs), tape.root, tuple(names), mode)
    hit = _LOWER_CACHE.get(key)
    if hit is None:
        try:
            hit = LoweredTape(tape.instrs, tape.root, tuple(names), mode)
        except _Unlowerable:
            hit = False
        if len(_LOWER_CACHE) >= _LOWER_CACHE_MAX:
            _LOWER_CACHE.clear()
        _LOWER_CACHE[key] = hit
    return hit or None
