"""The delta-complete decision procedure (ICP branch-and-prune).

Implements the algorithm behind paper Theorem 1 for bounded ``L_RF``
sentences: given a quantifier-free (or existentially quantified) formula
``phi`` and an initial bounding box, answer

* ``UNSAT``     -- ``phi`` has no solution in the box (exact, one-sided), or
* ``DELTA_SAT`` -- the delta-weakening ``phi^delta`` is satisfiable, with a
  witness box every point of which satisfies ``phi^delta``.

The loop alternates HC4 fixed-point contraction (pruning) with bisection
(branching), exactly the DPLL(T)+ICP combination the paper cites as a
delta-complete procedure [52].  Soundness of UNSAT follows from
contractor soundness; soundness of DELTA_SAT from the certain-truth
verification of the weakened formula over the candidate box.

Since the batch-of-boxes rework the search is *breadth-wise*: the
formula is compiled once into a flat evaluation tape
(:mod:`repro.solver.tape`) and each iteration pops a frontier of up to
``frontier_size`` of the widest pending boxes, contracting, judging,
certifying and splitting all of them in vectorized array passes.  With
``frontier_size=1`` the legacy scalar loop is used instead (same
verdicts, one box at a time) -- that path is kept as the reference
baseline for ``benchmarks/icp_throughput.py``.
"""

from __future__ import annotations

import enum
import heapq
import itertools
import time
import warnings
from dataclasses import dataclass, field

import numpy as np

from repro.expr import var as _var
from repro.intervals import Box, BoxArray
from repro.logic import And, Exists, Formula, Or
from repro.progress import emit as _progress

from .contractor import fixpoint_contract
from .eval3 import Certainty, _certainly_delta_sat_impl, _eval_formula_impl
from .incremental import (
    CoverRecorder,
    formula_fingerprint,
    get_store,
    record_pave,
    record_solve,
    try_warm_pave,
    try_warm_solve,
)
from .lower import validate_kernel
from .shard import box_sort_key, lex_key, pave_sharded, solve_sharded
from .tape import CERTAIN_FALSE, CERTAIN_TRUE, compile_formula

__all__ = ["Status", "Result", "SolverStats", "DeltaSolver", "solve"]


class Status(enum.Enum):
    DELTA_SAT = "delta-sat"
    UNSAT = "unsat"
    UNKNOWN = "unknown"  # budget exhausted before a verdict


@dataclass
class SolverStats:
    """Counters describing a solver run."""

    boxes_processed: int = 0
    boxes_pruned: int = 0
    splits: int = 0
    max_depth: int = 0
    wall_time: float = 0.0


@dataclass
class Result:
    """Outcome of a delta-decision query."""

    status: Status
    witness_box: Box | None = None
    delta: float = 0.0
    stats: SolverStats = field(default_factory=SolverStats)

    @property
    def witness(self) -> dict[str, float] | None:
        """A point witness (midpoint of the witness box), if delta-sat."""
        if self.witness_box is None:
            return None
        return self.witness_box.midpoint()

    def __bool__(self) -> bool:
        return self.status is Status.DELTA_SAT

    def __repr__(self) -> str:
        w = f", witness={self.witness}" if self.witness_box is not None else ""
        return f"Result({self.status.value}{w})"


def _hoist_existentials(phi: Formula, box: Box) -> tuple[Formula, Box]:
    """Pull bounded existentials into the search box.

    Existential variables are just extra search dimensions for ICP.  We
    hoist ``Exists`` nodes occurring positively outside any ``Forall``;
    names are freshened on clashes.  Remaining quantifiers are handled
    by interval judgment inside the tape evaluator.
    """
    counter = itertools.count()
    new_dims: dict[str, tuple[float, float]] = {}

    def fresh(name: str) -> str:
        while True:
            cand = f"{name}#{next(counter)}"
            if cand not in box and cand not in new_dims:
                return cand

    def walk(f: Formula) -> Formula:
        if isinstance(f, Exists):
            lo_iv = f.lo.eval_interval(box)
            hi_iv = f.hi.eval_interval(box)
            name = f.name
            if name in box or name in new_dims:
                name2 = fresh(name)
                body = f.body.subs({name: _var(name2)})
                name = name2
            else:
                body = f.body
            new_dims[name] = (lo_iv.lo, hi_iv.hi)
            return walk(body)
        if isinstance(f, And):
            return And(*[walk(p) for p in f.parts])
        if isinstance(f, Or):
            return Or(*[walk(p) for p in f.parts])
        return f

    phi2 = walk(phi)
    if new_dims:
        box = box.merged(Box.from_bounds(new_dims))
    return phi2, box


@dataclass
class DeltaSolver:
    """A delta-complete decision procedure for bounded L_RF sentences.

    Parameters
    ----------
    delta:
        The perturbation bound of Definition 4.  Smaller deltas give
        sharper answers but more search work.
    max_boxes:
        Branch-and-prune budget; exceeding it yields ``Status.UNKNOWN``
        together with the most promising unresolved box.
    contract_tol:
        Progress threshold of the fixed-point contraction loop.
    min_width:
        Boxes narrower than this in every dimension are submitted to
        delta-verification even if interval judgment is still UNKNOWN
        (they then count as unresolved if verification fails).
    frontier_size:
        Width ``K`` of the breadth-wise search frontier: how many boxes
        are popped, contracted and judged per vectorized tape pass.
        ``1`` selects the legacy scalar loop.
    shards:
        Number of parallel paving shards (:mod:`repro.solver.shard`).
        ``1`` (the default) keeps the search in-process; ``> 1`` splits
        the initial box into that many disjoint sub-boxes and paves them
        in lock-step epochs on ``shard_backend`` workers, with
        work-stealing rebalancing and a deterministic merge.
    shard_backend:
        Executor backend of the sharded driver: a backend name
        (``"process"``, ``"thread"``, ``"inline"``) or a live
        :class:`~repro.service.backends.ExecutorBackend` instance.
        Named backends are instantiated per call and shut down on exit
        (including cancellation); an injected instance is left running
        for reuse -- its lifecycle stays with the caller.
    shard_workers:
        Worker-pool size of the sharded driver (default: ``shards``).
    paving_store:
        Where completed solve/pave artifacts persist for warm-started
        re-solves (:mod:`repro.solver.incremental`): a directory path
        (one shared :class:`~repro.solver.incremental.PavingStore` per
        path per process) or a live store instance.  ``None`` (the
        default) disables artifact recording and reuse entirely.
    warm_start:
        Whether to *consult* the paving store before searching.  With a
        store configured and ``warm_start=False`` the solver still
        records artifacts but always solves cold (the CLI ``--cold``
        flag; useful for repopulating a store or benchmarking).
    anytime:
        Stream coarse verdict-so-far snapshots through the
        :mod:`repro.progress` hookpoint (``stage="anytime"``): one event
        immediately on entry, one per frontier iteration, and a final
        event carrying the terminal verdict.  Snapshots are monotone --
        settled-box counters never decrease and the verdict only moves
        from ``unknown`` to a terminal answer.
    kernel:
        Tape execution backend for the batched paths: ``"numpy"`` (the
        default interpreter) or ``"numba"`` (fused JIT-compiled
        contract/judge kernels via :mod:`repro.solver.lower`; falls back
        to ``"numpy"`` with a one-time :class:`RuntimeWarning` when
        numba is unavailable).  Verdicts and pavings are byte-identical
        across kernels.  Ignored by the scalar loop
        (``frontier_size=1``).
    """

    delta: float = 1e-3
    max_boxes: int = 100_000
    contract_tol: float = 1e-2
    min_width: float = 1e-12
    frontier_size: int = 64
    shards: int = 1
    shard_backend: object = "process"
    shard_workers: int | None = None
    paving_store: object = None
    warm_start: bool = True
    anytime: bool = False
    kernel: str = "numpy"

    def __post_init__(self) -> None:
        if self.frontier_size < 1:
            raise ValueError(
                f"frontier_size must be >= 1, got {self.frontier_size}"
            )
        if self.shards < 1:
            raise ValueError(f"shards must be >= 1, got {self.shards}")
        validate_kernel(self.kernel, internal=True)

    def solve(self, phi: Formula, box: Box) -> Result:
        """Decide ``exists box. phi`` in the delta-relaxed sense.

        .. deprecated:: 0.2
            Direct calls are deprecated in favor of the unified facade
            (``repro.api.Engine`` / ``repro.run``); this shim delegates
            unchanged.
        """
        warnings.warn(
            "DeltaSolver.solve is deprecated; submit specs through the "
            "unified repro.api facade (repro.run / Engine.run) instead",
            DeprecationWarning,
            stacklevel=2,
        )
        return self._solve_impl(phi, box)

    # ------------------------------------------------------------------
    # Entry points
    # ------------------------------------------------------------------
    def _resolved_store(self):
        if self.paving_store is None:
            return None
        return get_store(self.paving_store)

    def _solve_impl(self, phi: Formula, box: Box) -> Result:
        phi, box = _hoist_existentials(phi, box)
        missing = phi.variables() - set(box.names)
        if missing:
            raise ValueError(f"free variables without bounds: {sorted(missing)}")
        if self.anytime:
            # first coarse snapshot before any search work
            _progress("icp", "anytime", message=Status.UNKNOWN.value,
                      settled=0, pruned=0, final=0)
        store = self._resolved_store()
        recorder = None
        if store is not None:
            fp = formula_fingerprint(phi)
            if self.warm_start:
                reused = try_warm_solve(
                    store, phi, fp, box,
                    delta=self.delta, contract_tol=self.contract_tol,
                    min_width=self.min_width, max_boxes=self.max_boxes,
                )
                if reused is not None:
                    return self._finish_solve(reused)
            recorder = CoverRecorder()
        result = self._dispatch_solve(phi, box, recorder)
        if store is not None:
            record_solve(
                store, fp, box,
                delta=self.delta, contract_tol=self.contract_tol,
                min_width=self.min_width, max_boxes=self.max_boxes,
                result=result, recorder=recorder,
            )
        return self._finish_solve(result)

    def _finish_solve(self, result: Result) -> Result:
        if self.anytime:
            _progress(
                "icp", "anytime", message=result.status.value,
                settled=result.stats.boxes_processed,
                pruned=result.stats.boxes_pruned, final=1,
            )
        return result

    def _dispatch_solve(
        self, phi: Formula, box: Box, recorder: CoverRecorder | None
    ) -> Result:
        if self.shards > 1:
            return solve_sharded(
                phi, box,
                delta=self.delta, max_boxes=self.max_boxes,
                contract_tol=self.contract_tol, min_width=self.min_width,
                frontier_size=self.frontier_size, shards=self.shards,
                backend=self.shard_backend, workers=self.shard_workers,
                recorder=recorder, anytime=self.anytime,
                kernel=self.kernel,
            )
        if self.frontier_size <= 1:
            return self._solve_scalar(phi, box, recorder)
        return self._solve_batched(phi, box, recorder)

    def pave(
        self, phi: Formula, box: Box, min_width: float = 1e-2
    ) -> tuple[list[Box], list[Box], list[Box]]:
        """Partition ``box`` into (delta-sat, unsat, undecided) sub-boxes.

        This is the guaranteed parameter-set synthesis of BioPSy [53]:
        green boxes consist entirely of delta-solutions, red boxes contain
        no solutions, yellow boxes are smaller than ``min_width`` and
        remain undecided.

        Each returned list is sorted by the total lexicographic box
        order, so pavings are byte-identical across ``frontier_size``
        and ``shards`` settings of equal classification.

        With a ``paving_store`` configured, completed pavings persist as
        reusable artifacts and a re-pave under an equal or tightened
        ``delta`` / ``min_width`` resumes from the stored leaves instead
        of re-paving from scratch (unsat leaves carry over verbatim;
        stored sat/undecided leaves are re-judged or width-checked and
        only the boxes whose classification can flip re-enter the
        frontier).
        """
        if self.anytime:
            _progress("icp", "anytime", message="paving",
                      sat=0, unsat=0, undecided=0, final=0)
        store = self._resolved_store()
        if store is None:
            sat, unsat, und, _, _ = self._dispatch_pave(phi, box, min_width, None)
            return self._finish_pave(sat, unsat, und)
        fp = formula_fingerprint(phi)
        if self.warm_start:
            plan = try_warm_pave(
                store, phi, fp, box,
                delta=self.delta, contract_tol=self.contract_tol,
                min_width=min_width, max_boxes=self.max_boxes,
            )
            if plan is not None:
                if not plan.seeds:
                    return self._finish_pave(plan.sat, plan.unsat, plan.undecided)
                n_sat, n_unsat, n_und, _, _ = self._dispatch_pave(
                    phi, box, min_width, plan.seeds
                )
                sat, unsat, und = _sorted_paving(
                    plan.sat + n_sat, plan.unsat + n_unsat, plan.undecided + n_und
                )
                return self._finish_pave(sat, unsat, und)
        sat, unsat, und, processed, truncated = self._dispatch_pave(
            phi, box, min_width, None
        )
        record_pave(
            store, fp, box,
            delta=self.delta, contract_tol=self.contract_tol,
            min_width=min_width, max_boxes=self.max_boxes,
            sat=sat, unsat=unsat, undecided=und,
            processed=processed, truncated=truncated,
        )
        return self._finish_pave(sat, unsat, und)

    def _finish_pave(
        self, sat: list[Box], unsat: list[Box], undecided: list[Box]
    ) -> tuple[list[Box], list[Box], list[Box]]:
        if self.anytime:
            _progress(
                "icp", "anytime", message="paved",
                sat=len(sat), unsat=len(unsat), undecided=len(undecided),
                final=1,
            )
        return sat, unsat, undecided

    def _dispatch_pave(
        self,
        phi: Formula,
        box: Box,
        min_width: float,
        seeds: list[Box] | None,
    ) -> tuple[list[Box], list[Box], list[Box], int, bool]:
        if self.shards > 1:
            return pave_sharded(
                phi, box,
                delta=self.delta, max_boxes=self.max_boxes,
                contract_tol=self.contract_tol, min_width=min_width,
                frontier_size=self.frontier_size, shards=self.shards,
                backend=self.shard_backend, workers=self.shard_workers,
                seeds=seeds, anytime=self.anytime,
                kernel=self.kernel,
            )
        if self.frontier_size <= 1:
            return self._pave_scalar(phi, box, min_width, seeds)
        return self._pave_batched(phi, box, min_width, seeds)

    # ------------------------------------------------------------------
    # Batched frontier search
    # ------------------------------------------------------------------
    def _solve_batched(
        self, phi: Formula, box: Box, recorder: CoverRecorder | None = None
    ) -> Result:
        t0 = time.perf_counter()
        stats = SolverStats()
        names = tuple(box.names)
        compiled = compile_formula(phi, kernel=self.kernel, names=names)
        root = BoxArray.from_box(box, names)

        # Priority queue: explore widest boxes first (fair coverage).
        # Equal-width ties break on the total lexicographic box order,
        # not insertion order, so pop order (and hence the witness and
        # serialized Result) is the same for equivalent runs; the
        # counter only shields the ndarray payload from comparison.
        tie = itertools.count()
        heap: list[tuple[float, tuple, int, int, np.ndarray, np.ndarray]] = []

        def push_rows(boxes: BoxArray, depths: np.ndarray) -> None:
            for w, d, lo, hi in zip(boxes.max_width(), depths, boxes.lo, boxes.hi):
                heapq.heappush(
                    heap, (-float(w), lex_key(lo, hi), next(tie), int(d), lo, hi)
                )

        push_rows(root, np.zeros(1, dtype=int))
        unresolved: Box | None = None

        while heap:
            budget = self.max_boxes - stats.boxes_processed
            if budget <= 0:
                stats.wall_time = time.perf_counter() - t0
                fallback = unresolved if unresolved is not None else _rebox(names, heap[0])
                return Result(Status.UNKNOWN, fallback, self.delta, stats)
            k = min(self.frontier_size, budget, len(heap))
            popped = [heapq.heappop(heap) for _ in range(k)]
            depths = np.array([p[3] for p in popped])
            frontier = BoxArray(
                names,
                np.array([p[4] for p in popped]),
                np.array([p[5] for p in popped]),
            )
            stats.boxes_processed += k
            stats.max_depth = max(stats.max_depth, int(depths.max()))
            _progress(
                "icp", "branch-and-prune",
                boxes=stats.boxes_processed, queue=len(heap),
                depth=int(depths.max()), splits=stats.splits,
                frontier=k,
            )
            if self.anytime:
                _progress(
                    "icp", "anytime", message=Status.UNKNOWN.value,
                    settled=stats.boxes_processed, pruned=stats.boxes_pruned,
                    final=0,
                )

            contracted = compiled.fixpoint_contract(frontier, tol=self.contract_tol)
            judgment = compiled.judge(contracted, 0.0)
            dead = contracted.is_empty | (judgment == CERTAIN_FALSE)
            stats.boxes_pruned += int(dead.sum())
            if recorder is not None:
                for i in np.flatnonzero(dead):
                    recorder.add_pruned(
                        frontier.lo[i], frontier.hi[i],
                        contracted.lo[i], contracted.hi[i],
                        bool(contracted.is_empty[i]),
                    )
            if dead.all():
                continue
            live_idx = np.flatnonzero(~dead)
            live = contracted.take(live_idx)

            # Try to certify delta-sat on the surviving boxes directly.
            certified = compiled.judge(live, self.delta) == CERTAIN_TRUE
            if certified.any():
                stats.wall_time = time.perf_counter() - t0
                # lex-least certified row: the winner must not depend on
                # which equal-priority box happened to be popped first
                win = min(
                    (int(i) for i in np.flatnonzero(certified)),
                    key=lambda i: lex_key(live.lo[i], live.hi[i]),
                )
                return Result(Status.DELTA_SAT, live.row(win), self.delta, stats)

            narrow = live.max_width() <= self.min_width
            if narrow.any() and unresolved is None:
                # Cannot split further; remember as unresolved.
                unresolved = live.row(int(np.flatnonzero(narrow)[0]))
            splittable = np.flatnonzero(~narrow)
            if splittable.size:
                if recorder is not None:
                    # shells contracted away at split nodes belong to the
                    # UNSAT cover too (their children only tile the
                    # contracted box)
                    for j in splittable:
                        g = int(live_idx[j])
                        recorder.add_shells(
                            frontier.lo[g], frontier.hi[g],
                            contracted.lo[g], contracted.hi[g],
                        )
                parents = live.take(splittable)
                children = parents.split_widest()
                stats.splits += int(splittable.size)
                push_rows(children, np.repeat(depths[live_idx[splittable]] + 1, 2))

        stats.wall_time = time.perf_counter() - t0
        if unresolved is not None:
            return Result(Status.UNKNOWN, unresolved, self.delta, stats)
        return Result(Status.UNSAT, None, self.delta, stats)

    def _pave_batched(
        self,
        phi: Formula,
        box: Box,
        min_width: float,
        seeds: list[Box] | None = None,
    ) -> tuple[list[Box], list[Box], list[Box], int, bool]:
        names = tuple(box.names)
        compiled = compile_formula(phi, kernel=self.kernel, names=names)
        sat_boxes: list[Box] = []
        unsat_boxes: list[Box] = []
        undecided: list[Box] = []
        work: list[Box] = list(seeds) if seeds is not None else [box]
        processed = 0
        truncated = False
        while work:
            remaining = self.max_boxes - processed
            if remaining <= 0:
                undecided.extend(work)
                truncated = True
                break
            k = min(self.frontier_size, remaining, len(work))
            frontier_boxes = [work.pop() for _ in range(k)]
            processed += k
            _progress(
                "icp", "paving",
                boxes=processed, queue=len(work),
                sat=len(sat_boxes), unsat=len(unsat_boxes),
            )
            if self.anytime:
                _progress(
                    "icp", "anytime", message="paving",
                    sat=len(sat_boxes), unsat=len(unsat_boxes),
                    undecided=len(undecided), final=0,
                )
            frontier = BoxArray.from_boxes(frontier_boxes, names)
            contracted = compiled.fixpoint_contract(frontier, tol=self.contract_tol)
            judgment = compiled.judge(contracted, 0.0)
            certified = compiled.judge(contracted, self.delta) == CERTAIN_TRUE
            widths = contracted.max_width()
            empty = contracted.is_empty
            for i, original in enumerate(frontier_boxes):
                if empty[i] or judgment[i] == CERTAIN_FALSE:
                    unsat_boxes.append(original)
                elif certified[i]:
                    # the pruned-away shell contains no solutions
                    sat_boxes.append(contracted.row(i))
                elif widths[i] <= min_width:
                    undecided.append(contracted.row(i))
                else:
                    left, right = contracted.row(i).split()
                    work.append(left)
                    work.append(right)
        sat_boxes, unsat_boxes, undecided = _sorted_paving(
            sat_boxes, unsat_boxes, undecided
        )
        return sat_boxes, unsat_boxes, undecided, processed, truncated

    # ------------------------------------------------------------------
    # Legacy scalar loop (frontier_size=1; benchmark baseline)
    # ------------------------------------------------------------------
    def _solve_scalar(
        self, phi: Formula, box: Box, recorder: CoverRecorder | None = None
    ) -> Result:
        t0 = time.perf_counter()
        names = tuple(box.names)

        def bounds(b: Box) -> tuple[np.ndarray, np.ndarray]:
            return (
                np.array([b[k].lo for k in names], dtype=float),
                np.array([b[k].hi for k in names], dtype=float),
            )
        stats = SolverStats()

        # Priority queue: explore widest boxes first (fair coverage),
        # equal widths in total lexicographic box order (see the batched
        # loop: pop order must not depend on insertion order).
        tie = itertools.count()
        heap: list[tuple[float, tuple, int, int, Box]] = []

        def push(b: Box, depth: int) -> None:
            heapq.heappush(
                heap, (-b.max_width(), box_sort_key(b), next(tie), depth, b)
            )

        push(box, 0)
        unresolved: Box | None = None

        while heap:
            if stats.boxes_processed >= self.max_boxes:
                stats.wall_time = time.perf_counter() - t0
                return Result(Status.UNKNOWN, unresolved or heap[0][4], self.delta, stats)
            __, __, __, depth, current = heapq.heappop(heap)
            stats.boxes_processed += 1
            stats.max_depth = max(stats.max_depth, depth)
            _progress(
                "icp", "branch-and-prune",
                boxes=stats.boxes_processed, queue=len(heap),
                depth=depth, splits=stats.splits,
            )
            if self.anytime:
                _progress(
                    "icp", "anytime", message=Status.UNKNOWN.value,
                    settled=stats.boxes_processed, pruned=stats.boxes_pruned,
                    final=0,
                )

            contracted = fixpoint_contract(phi, current, tol=self.contract_tol)
            if contracted.is_empty:
                stats.boxes_pruned += 1
                if recorder is not None:
                    recorder.add(*bounds(current))
                continue

            judgment = _eval_formula_impl(phi, contracted, delta=0.0)
            if judgment is Certainty.CERTAIN_FALSE:
                stats.boxes_pruned += 1
                if recorder is not None:
                    recorder.add(*bounds(contracted))
                    recorder.add_shells(*bounds(current), *bounds(contracted))
                continue

            # Try to certify delta-sat on this box directly.
            if _certainly_delta_sat_impl(phi, contracted, self.delta):
                stats.wall_time = time.perf_counter() - t0
                return Result(Status.DELTA_SAT, contracted, self.delta, stats)

            if contracted.max_width() <= self.min_width:
                # Cannot split further; remember as unresolved.
                if unresolved is None:
                    unresolved = contracted
                continue

            if recorder is not None:
                recorder.add_shells(*bounds(current), *bounds(contracted))
            left, right = contracted.split()
            stats.splits += 1
            push(left, depth + 1)
            push(right, depth + 1)

        stats.wall_time = time.perf_counter() - t0
        if unresolved is not None:
            return Result(Status.UNKNOWN, unresolved, self.delta, stats)
        return Result(Status.UNSAT, None, self.delta, stats)

    def _pave_scalar(
        self,
        phi: Formula,
        box: Box,
        min_width: float,
        seeds: list[Box] | None = None,
    ) -> tuple[list[Box], list[Box], list[Box], int, bool]:
        sat_boxes: list[Box] = []
        unsat_boxes: list[Box] = []
        undecided: list[Box] = []
        work = list(seeds) if seeds is not None else [box]
        processed = 0
        truncated = False
        while work:
            processed += 1
            if processed > self.max_boxes:
                processed -= 1
                undecided.extend(work)
                truncated = True
                break
            current = work.pop()
            _progress(
                "icp", "paving",
                boxes=processed, queue=len(work),
                sat=len(sat_boxes), unsat=len(unsat_boxes),
            )
            if self.anytime:
                _progress(
                    "icp", "anytime", message="paving",
                    sat=len(sat_boxes), unsat=len(unsat_boxes),
                    undecided=len(undecided), final=0,
                )
            contracted = fixpoint_contract(phi, current, tol=self.contract_tol)
            if contracted.is_empty:
                unsat_boxes.append(current)
                continue
            judgment = _eval_formula_impl(phi, contracted, delta=0.0)
            if judgment is Certainty.CERTAIN_FALSE:
                unsat_boxes.append(current)
                continue
            if _certainly_delta_sat_impl(phi, contracted, self.delta):
                sat_boxes.append(contracted)
                # the pruned-away shell contains no solutions
                continue
            if contracted.max_width() <= min_width:
                undecided.append(contracted)
                continue
            left, right = contracted.split()
            work.append(left)
            work.append(right)
        sat_boxes, unsat_boxes, undecided = _sorted_paving(
            sat_boxes, unsat_boxes, undecided
        )
        return sat_boxes, unsat_boxes, undecided, processed, truncated


def _sorted_paving(
    sat: list[Box], unsat: list[Box], undecided: list[Box]
) -> tuple[list[Box], list[Box], list[Box]]:
    """Deterministic paving order: box lists sorted lexicographically.

    The classification order of the work loop depends on pop order
    (stack depth, frontier width, shard scheduling); sorting makes the
    serialized result a pure function of the classification itself.
    """
    return (
        sorted(sat, key=box_sort_key),
        sorted(unsat, key=box_sort_key),
        sorted(undecided, key=box_sort_key),
    )


def _rebox(names: tuple[str, ...], entry: tuple) -> Box:
    from repro.intervals import Interval

    return Box({k: Interval(float(lo), float(hi))
                for k, lo, hi in zip(names, entry[4], entry[5])})


def solve(phi: Formula, box: Box, delta: float = 1e-3, **kwargs) -> Result:
    """Convenience wrapper: ``DeltaSolver(delta, **kwargs).solve(phi, box)``.

    .. deprecated:: 0.2
        Use the unified facade (``repro.run`` / ``Engine.run``) instead.
    """
    warnings.warn(
        "repro.solver.solve is deprecated; submit specs through the "
        "unified repro.api facade (repro.run / Engine.run) instead",
        DeprecationWarning,
        stacklevel=2,
    )
    return DeltaSolver(delta=delta, **kwargs)._solve_impl(phi, box)
