"""CEGIS solver for exists-forall formulas over the reals.

Paper Section IV-C(i): Lyapunov function synthesis is encoded as an
``exists p . forall x in X . phi(p, x)`` problem and solved with
delta-decision procedures [57].  We implement the standard
counterexample-guided inductive synthesis (CEGIS) loop:

1. **Propose** a candidate ``p`` consistent with all counterexamples
   collected so far (a delta-SAT query over the parameter box).
2. **Verify** the candidate by searching for a counterexample ``x``
   with ``not phi(p, x)`` (another delta-SAT query over the state box).
   UNSAT here *proves* the forall and the loop returns the candidate.
3. Otherwise add the counterexample and repeat.

The verification step inherits the one-sided delta guarantee: a
returned candidate is certified in the delta-relaxed sense (the
verifier's UNSAT is exact for the delta-strengthened inner formula).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.intervals import Box
from repro.logic import And, Formula

from .icp import DeltaSolver, Result, Status

__all__ = ["EFResult", "ExistsForallSolver"]


@dataclass
class EFResult:
    """Outcome of an exists-forall synthesis run."""

    status: Status
    candidate: dict[str, float] | None = None
    counterexamples: list[dict[str, float]] = field(default_factory=list)
    iterations: int = 0

    def __bool__(self) -> bool:
        return self.status is Status.DELTA_SAT


@dataclass
class ExistsForallSolver:
    """CEGIS loop solving ``exists p in P . forall x in X . phi(p, x)``.

    Parameters
    ----------
    delta:
        Delta of the inner delta-decision queries.
    max_iterations:
        Bound on propose/verify rounds.
    n_seed_samples:
        Random state-space samples used as initial "counterexamples" so
        the first candidate is already plausible.
    """

    delta: float = 1e-3
    max_iterations: int = 30
    n_seed_samples: int = 8
    seed: int = 0
    propose_budget: int = 20_000
    verify_budget: int = 50_000
    frontier_size: int = 64
    shards: int = 1
    shard_backend: object = "process"
    # Paving-artifact store for warm-started re-solves (see
    # repro.solver.incremental): CEGIS re-verifies near-identical
    # queries every round, so stored witnesses/covers short-circuit
    # whole propose/verify solves.
    paving_store: object = None
    warm_start: bool = True
    # Tape execution kernel of the inner propose/verify solvers
    # ("numpy" or "numba"; see repro.solver.lower).
    kernel: str = "numpy"

    def solve(self, phi: Formula, param_box: Box, state_box: Box) -> EFResult:
        """Solve ``exists param_box . forall state_box . phi``.

        ``phi``'s free variables must be covered by the two boxes, which
        must be disjoint in names.
        """
        overlap = set(param_box.names) & set(state_box.names)
        if overlap:
            raise ValueError(f"parameter/state boxes share names: {sorted(overlap)}")
        missing = phi.variables() - set(param_box.names) - set(state_box.names)
        if missing:
            raise ValueError(f"unbounded variables: {sorted(missing)}")

        rng = random.Random(self.seed)
        counterexamples: list[dict[str, float]] = [
            state_box.sample_random(rng) for _ in range(self.n_seed_samples)
        ]
        not_phi = phi.negate()
        # resolve a named shard backend ONCE: the sharded driver leaves
        # injected instances running, so every propose/verify solve of
        # the CEGIS loop reuses one worker pool instead of spawning and
        # tearing down a pool per call
        backend = self.shard_backend
        owns_pool = self.shards > 1 and isinstance(backend, str)
        if owns_pool:
            from repro.service.backends import make_backend

            backend = make_backend(self.shard_backend, self.shards)
        proposer = DeltaSolver(
            delta=self.delta, max_boxes=self.propose_budget,
            frontier_size=self.frontier_size,
            shards=self.shards, shard_backend=backend,
            paving_store=self.paving_store, warm_start=self.warm_start,
            kernel=self.kernel,
        )
        verifier = DeltaSolver(
            delta=self.delta, max_boxes=self.verify_budget,
            frontier_size=self.frontier_size,
            shards=self.shards, shard_backend=backend,
            paving_store=self.paving_store, warm_start=self.warm_start,
            kernel=self.kernel,
        )
        try:
            return self._cegis(
                phi, not_phi, param_box, state_box,
                counterexamples, proposer, verifier,
            )
        finally:
            if owns_pool:
                backend.shutdown(wait=True)

    def _cegis(
        self,
        phi: Formula,
        not_phi: Formula,
        param_box: Box,
        state_box: Box,
        counterexamples: list[dict[str, float]],
        proposer: DeltaSolver,
        verifier: DeltaSolver,
    ) -> EFResult:
        for it in range(1, self.max_iterations + 1):
            # -- propose: parameters satisfying phi at every counterexample
            constraint = And(*[phi.subs(ce) for ce in counterexamples])
            proposal: Result = proposer._solve_impl(constraint, param_box)
            if proposal.status is Status.UNSAT:
                return EFResult(Status.UNSAT, None, counterexamples, it)
            if proposal.status is Status.UNKNOWN:
                return EFResult(Status.UNKNOWN, None, counterexamples, it)
            candidate = {k: proposal.witness[k] for k in param_box.names}

            # -- verify: search for a state falsifying phi at the candidate
            refutation: Result = verifier._solve_impl(not_phi.subs(candidate), state_box)
            if refutation.status is Status.UNSAT:
                return EFResult(Status.DELTA_SAT, candidate, counterexamples, it)
            if refutation.status is Status.UNKNOWN:
                # cannot refute but cannot verify either: treat the
                # unresolved box's midpoint as a soft counterexample
                ce = {k: refutation.witness_box.midpoint()[k] for k in state_box.names}
            else:
                ce = {k: refutation.witness[k] for k in state_box.names}
            counterexamples.append(ce)

        return EFResult(Status.UNKNOWN, None, counterexamples, self.max_iterations)
