"""Incremental solving: reusable paving artifacts and warm-started re-solves.

The delta-decision procedures of :mod:`repro.solver.icp` re-pave the
search box from scratch on every query, yet the hottest callers --
cohort sweeps, the EF-CEGIS propose/verify loop, the service's
per-tenant job stream -- solve *near-identical* specs back to back.
The :class:`~repro.service.cache.ResultCache` only hits on
byte-identical specs, so a one-coefficient perturbation or a delta
tightening pays full price.

This module closes that gap with a content-addressed, on-disk
**PavingStore** (same hashing + atomic-write + corrupt-quarantine
idioms as ``service/cache.py``) that persists the *final frontier* of
every completed solve and paving, keyed by the formula's structural
**fingerprint**:

``formula_fingerprint(phi)``
    splits a formula into its constant-free *skeleton* (the compiled
    tape's shape: operators, variables, comparison senses) and the
    ordered tuple of its numeric constants.  Two queries that differ
    only in a bound or coefficient share a skeleton -- exactly the
    "tape-level sensitivity" unit at which stored boxes can be
    re-checked under the new constants.

On a re-solve the warm-start planner classifies the stored artifact by
*what changed* and reuses only what provably survives:

solve artifacts
    * **exact** config -- the stored verdict is returned verbatim.
    * **delta tightened** (same constants/box/tolerance, stored
      ``UNSAT``) -- UNSAT pruning judges at delta ``0`` and is
      delta-independent, and certification at a tighter delta implies
      certification at the looser one, so the cold re-solve replays the
      identical tree: UNSAT is returned with zero search work.
    * **perturbed constants / shrunk box** (stored ``UNSAT`` with a
      recorded :class:`cover <CoverRecorder>`) -- one vectorized judge
      pass of the stored cover under the *new* tape; if every cover box
      is certainly false at the new delta, no delta-solutions exist and
      the verdict is UNSAT.
    * **stored ``DELTA_SAT``** -- the stored witness box is re-judged
      at delta ``0`` under the new tape; certain truth means real
      solutions exist, so UNSAT is impossible and the witness carries
      over.
pave artifacts
    * **exact** config -- the stored partition is returned verbatim.
    * **delta / min_width tightened** -- unsat leaves are
      delta-independent and kept; stored sat/undecided leaves are
      *resumed* (re-judged at the new delta, width-checked, split)
      without re-contracting, seeding the normal frontier loop with
      only the boxes whose classification can flip.

Everything else falls back to a cold solve -- reuse is mandatory-safe,
never heuristic.  Reused verdicts and resumed pavings are byte-identical
to cold solves whenever the cold run's budget does not bind (artifacts
from budget-bound runs are never reused).
"""

from __future__ import annotations

import base64
import hashlib
import json
import os
import threading
from dataclasses import dataclass

import numpy as np

from repro.expr import Binary, Const, Expr, Unary, Var
from repro.intervals import Box, BoxArray, Interval
from repro.logic import (
    And,
    Atom,
    Exists,
    FalseFormula,
    Forall,
    Formula,
    Or,
    TrueFormula,
)

from .tape import CERTAIN_FALSE, CERTAIN_TRUE, compile_formula

__all__ = [
    "Fingerprint",
    "formula_fingerprint",
    "CoverRecorder",
    "shell_slabs",
    "PavingStore",
    "get_store",
    "try_warm_solve",
    "record_solve",
    "try_warm_pave",
    "record_pave",
]

#: Artifact schema version; bump on incompatible layout changes (old
#: entries are then quarantined like any other unreadable artifact).
ARTIFACT_VERSION = 1

#: Cover boxes retained per solve artifact before recording gives up
#: (an overflowing cover disables perturbed-constant reuse for that
#: artifact, never correctness).
COVER_CAP = 100_000

#: Cover boxes judged per vectorized chunk during reuse checks.
_JUDGE_CHUNK = 50_000


# ----------------------------------------------------------------------
# Formula fingerprinting (skeleton vs. constants)
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class Fingerprint:
    """A formula split into structure and numbers.

    ``skeleton`` is the SHA-256 of the constant-free structural form
    (operators, variable names, comparison senses, quantifier shapes);
    ``constants`` is the tuple of numeric constants in deterministic
    preorder.  Same skeleton + same constants == structurally identical
    formula.
    """

    skeleton: str
    constants: tuple[float, ...]


def _fp_expr(e: Expr, out: list[str], consts: list[float]) -> None:
    if isinstance(e, Const):
        out.append(f"c{len(consts)}")
        consts.append(float(e.value))
    elif isinstance(e, Var):
        out.append(f"v:{e.name}")
    elif isinstance(e, Unary):
        out.append(f"u:{e.op}(")
        _fp_expr(e.arg, out, consts)
        out.append(")")
    elif isinstance(e, Binary):
        out.append(f"b:{e.op}(")
        _fp_expr(e.left, out, consts)
        out.append(",")
        _fp_expr(e.right, out, consts)
        out.append(")")
    else:
        raise TypeError(f"cannot fingerprint expression node {type(e).__name__}")


def _fp_formula(phi: Formula, out: list[str], consts: list[float]) -> None:
    if isinstance(phi, TrueFormula):
        out.append("T")
    elif isinstance(phi, FalseFormula):
        out.append("F")
    elif isinstance(phi, Atom):
        out.append(f"A{int(phi.strict)}(")
        _fp_expr(phi.term, out, consts)
        out.append(")")
    elif isinstance(phi, (And, Or)):
        out.append("&(" if isinstance(phi, And) else "|(")
        for p in phi.parts:
            _fp_formula(p, out, consts)
            out.append(",")
        out.append(")")
    elif isinstance(phi, (Exists, Forall)):
        out.append(("E" if isinstance(phi, Exists) else "L") + f":{phi.name}[")
        _fp_expr(phi.lo, out, consts)
        out.append(",")
        _fp_expr(phi.hi, out, consts)
        out.append("](")
        _fp_formula(phi.body, out, consts)
        out.append(")")
    else:
        raise TypeError(f"cannot fingerprint formula node {type(phi).__name__}")


def formula_fingerprint(phi: Formula) -> Fingerprint:
    """Split ``phi`` into its structural skeleton digest and constants."""
    out: list[str] = []
    consts: list[float] = []
    _fp_formula(phi, out, consts)
    digest = hashlib.sha256("".join(out).encode("utf-8")).hexdigest()
    return Fingerprint(digest, tuple(consts))


# ----------------------------------------------------------------------
# UNSAT covers
# ----------------------------------------------------------------------


def shell_slabs(
    b_lo: np.ndarray, b_hi: np.ndarray, c_lo: np.ndarray, c_hi: np.ndarray
) -> list[tuple[np.ndarray, np.ndarray]]:
    """Decompose ``B \\ C`` (C contracted inside B) into closed slabs.

    Peels one pair of slabs per dimension where contraction shrank the
    box; the returned slabs together with ``C`` cover ``B``.  Sound for
    covers (overlapping closed boundaries are fine), and empty when the
    contraction did not move (the common case).
    """
    slabs: list[tuple[np.ndarray, np.ndarray]] = []
    cur_lo, cur_hi = b_lo.astype(float).copy(), b_hi.astype(float).copy()
    for d in range(len(cur_lo)):
        if c_lo[d] > cur_lo[d]:
            s_lo, s_hi = cur_lo.copy(), cur_hi.copy()
            s_hi[d] = c_lo[d]
            slabs.append((s_lo, s_hi))
            cur_lo[d] = c_lo[d]
        if c_hi[d] < cur_hi[d]:
            s_lo, s_hi = cur_lo.copy(), cur_hi.copy()
            s_lo[d] = c_hi[d]
            slabs.append((s_lo, s_hi))
            cur_hi[d] = c_hi[d]
    return slabs


class CoverRecorder:
    """Accumulates the UNSAT cover of one cold solve.

    The cover consists of (a) every pruned box -- the contracted box
    for judge-pruned nodes (plus the contraction shell peeled off as
    slabs), the pre-contraction box for contraction-empty nodes -- and
    (b) the contraction shells of every split node.  By induction over
    the branch-and-prune tree the recorded boxes cover the root box of
    a completed UNSAT run, so a later re-solve under perturbed
    constants can prove UNSAT with a single vectorized judge pass over
    the cover instead of a full search.
    """

    __slots__ = ("lo", "hi", "overflow", "cap")

    def __init__(self, cap: int = COVER_CAP):
        self.lo: list[np.ndarray] = []
        self.hi: list[np.ndarray] = []
        self.overflow = False
        self.cap = cap

    def __len__(self) -> int:
        return len(self.lo)

    def add(self, lo: np.ndarray, hi: np.ndarray) -> None:
        """Record one cover box (bounds copied)."""
        if self.overflow:
            return
        if len(self.lo) >= self.cap:
            self.overflow = True
            self.lo.clear()
            self.hi.clear()
            return
        self.lo.append(np.asarray(lo, dtype=float).copy())
        self.hi.append(np.asarray(hi, dtype=float).copy())

    def add_shells(
        self, b_lo: np.ndarray, b_hi: np.ndarray, c_lo: np.ndarray, c_hi: np.ndarray
    ) -> None:
        """Record the slabs of ``B \\ C`` (no-op when C fills B)."""
        for s_lo, s_hi in shell_slabs(b_lo, b_hi, c_lo, c_hi):
            self.add(s_lo, s_hi)

    def add_pruned(
        self,
        pre_lo: np.ndarray,
        pre_hi: np.ndarray,
        con_lo: np.ndarray,
        con_hi: np.ndarray,
        empty: bool,
    ) -> None:
        """Record one pruned node: its contracted box + shell, or the
        whole pre-contraction box when contraction emptied it."""
        if empty:
            self.add(pre_lo, pre_hi)
        else:
            self.add(con_lo, con_hi)
            self.add_shells(pre_lo, pre_hi, con_lo, con_hi)

    def extend_pairs(self, pairs: list[tuple[np.ndarray, np.ndarray]]) -> None:
        """Absorb cover pieces shipped back from a shard epoch."""
        for lo, hi in pairs:
            self.add(lo, hi)

    def arrays(self) -> tuple[np.ndarray, np.ndarray] | None:
        """The cover as ``(n, dim)`` arrays, or ``None`` on overflow."""
        if self.overflow:
            return None
        if not self.lo:
            return np.empty((0, 0)), np.empty((0, 0))
        return np.array(self.lo), np.array(self.hi)


# ----------------------------------------------------------------------
# Packing helpers (exact float64 round-trips, compact on disk)
# ----------------------------------------------------------------------


def _pack_rows(lo: np.ndarray, hi: np.ndarray) -> dict:
    """Pack box rows as base64 little-endian float64 (bit-exact)."""
    lo = np.ascontiguousarray(lo, dtype="<f8")
    hi = np.ascontiguousarray(hi, dtype="<f8")
    return {
        "n": int(lo.shape[0]),
        "lo": base64.b64encode(lo.tobytes()).decode("ascii"),
        "hi": base64.b64encode(hi.tobytes()).decode("ascii"),
    }


def _unpack_rows(payload: dict, dim: int) -> tuple[np.ndarray, np.ndarray]:
    n = int(payload["n"])
    lo = np.frombuffer(base64.b64decode(payload["lo"]), dtype="<f8")
    hi = np.frombuffer(base64.b64decode(payload["hi"]), dtype="<f8")
    if lo.size != n * dim or hi.size != n * dim:
        raise ValueError("packed box payload has the wrong size")
    return lo.reshape(n, dim).astype(float), hi.reshape(n, dim).astype(float)


def _pack_boxes(boxes: list[Box], names: tuple[str, ...]) -> dict:
    lo = np.array([[b[k].lo for k in names] for b in boxes], dtype=float)
    hi = np.array([[b[k].hi for k in names] for b in boxes], dtype=float)
    if not boxes:
        lo = lo.reshape(0, len(names))
        hi = hi.reshape(0, len(names))
    return _pack_rows(lo, hi)


def _unpack_boxes(payload: dict, names: tuple[str, ...]) -> list[Box]:
    lo, hi = _unpack_rows(payload, len(names))
    return [
        Box({k: Interval(float(a), float(b)) for k, a, b in zip(names, row_lo, row_hi)})
        for row_lo, row_hi in zip(lo, hi)
    ]


def _box_bounds(box: Box, names: tuple[str, ...]) -> tuple[list[float], list[float]]:
    return [box[k].lo for k in names], [box[k].hi for k in names]


# ----------------------------------------------------------------------
# The on-disk store
# ----------------------------------------------------------------------


class PavingStore:
    """Content-addressed, on-disk paving artifacts with reuse counters.

    Layout: ``<root>/<group>/<ident>.json`` where ``group`` hashes the
    invariant identity ``(kind, skeleton, variable names)`` -- every
    artifact a warm-start could possibly reuse for a query lives in one
    directory -- and ``ident`` hashes the exact solve configuration
    (constants, box, delta, min_width, contract_tol), so re-solving the
    identical problem overwrites in place.  Writes are atomic
    (tmp + ``os.replace``); unreadable or schema-incompatible artifacts
    are quarantined to ``<ident>.corrupt`` exactly like
    :class:`~repro.service.cache.ResultCache` entries.

    Counters (:meth:`stats`): ``hits`` (exact-config reuse),
    ``partial`` (delta-tightened / cover-rejudge / witness-recheck /
    paving-resume reuse), ``misses`` (cold fall-back), ``stores``,
    ``quarantined``.
    """

    def __init__(self, root: str | os.PathLike, max_group_entries: int = 64):
        self.root = os.fspath(root)
        self.max_group_entries = int(max_group_entries)
        self._lock = threading.Lock()
        self.hits = 0
        self.partial = 0
        self.misses = 0
        self.stores = 0
        self.quarantined = 0

    # -- counters ------------------------------------------------------
    def stats(self) -> dict[str, float]:
        """Reuse counters of this store instance."""
        with self._lock:
            return {
                "hits": self.hits,
                "partial": self.partial,
                "misses": self.misses,
                "stores": self.stores,
                "quarantined": self.quarantined,
            }

    def count(self, outcome: str) -> None:
        """Bump one reuse counter (``hit`` / ``partial`` / ``miss``)."""
        with self._lock:
            if outcome == "hit":
                self.hits += 1
            elif outcome == "partial":
                self.partial += 1
            else:
                self.misses += 1

    # -- addressing ----------------------------------------------------
    def _group_dir(self, kind: str, skeleton: str, names: tuple[str, ...]) -> str:
        blob = json.dumps([kind, skeleton, list(names)], separators=(",", ":"))
        return os.path.join(
            self.root, hashlib.sha256(blob.encode("utf-8")).hexdigest()[:40]
        )

    @staticmethod
    def _ident(payload_identity: list) -> str:
        blob = json.dumps(payload_identity, separators=(",", ":"))
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:40]

    # -- read ----------------------------------------------------------
    def candidates(
        self, kind: str, skeleton: str, names: tuple[str, ...]
    ) -> list[dict]:
        """Load every readable artifact of one (kind, skeleton, names)
        group, newest first; unreadable entries are quarantined."""
        group = self._group_dir(kind, skeleton, names)
        try:
            entries = [e for e in os.scandir(group) if e.name.endswith(".json")]
        except OSError:
            return []
        entries.sort(key=lambda e: (-self._mtime(e), e.name))
        out: list[dict] = []
        for entry in entries:
            try:
                with open(entry.path, "r", encoding="utf-8") as fh:
                    payload = json.load(fh)
                if (
                    payload.get("version") != ARTIFACT_VERSION
                    or payload.get("kind") != kind
                    or tuple(payload.get("names", ())) != names
                ):
                    raise ValueError("artifact schema mismatch")
            except OSError:
                continue
            except (ValueError, KeyError, TypeError):
                self._quarantine(entry.path)
                continue
            out.append(payload)
        return out

    @staticmethod
    def _mtime(entry: os.DirEntry) -> float:
        try:
            return entry.stat().st_mtime
        except OSError:
            return 0.0

    def _quarantine(self, path: str) -> None:
        try:
            os.replace(path, path[: -len(".json")] + ".corrupt")
        except OSError:
            return  # a concurrent writer already replaced or removed it
        with self._lock:
            self.quarantined += 1

    # -- write ---------------------------------------------------------
    def put(
        self,
        kind: str,
        skeleton: str,
        names: tuple[str, ...],
        identity: list,
        payload: dict,
    ) -> None:
        """Atomically store one artifact under its exact-config address."""
        group = self._group_dir(kind, skeleton, names)
        os.makedirs(group, exist_ok=True)
        path = os.path.join(group, f"{self._ident(identity)}.json")
        tmp = f"{path}.tmp.{os.getpid()}.{threading.get_ident()}"
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, separators=(",", ":"))
        os.replace(tmp, path)  # atomic under concurrent writers
        with self._lock:
            self.stores += 1
        self._prune(group)

    def _prune(self, group: str) -> None:
        """Keep each group bounded: drop the oldest artifacts."""
        try:
            entries = [e for e in os.scandir(group) if e.name.endswith(".json")]
        except OSError:
            return
        excess = len(entries) - self.max_group_entries
        if excess <= 0:
            return
        entries.sort(key=lambda e: (self._mtime(e), e.name))
        for entry in entries[:excess]:
            try:
                os.remove(entry.path)
            except OSError:
                pass


#: One shared store instance per canonical path per process, so every
#: engine/solver in a serving process aggregates into one counter set
#: (GET /cluster reports these).
_STORES: dict[str, PavingStore] = {}
_STORES_LOCK = threading.Lock()


def get_store(path: str | os.PathLike | PavingStore) -> PavingStore:
    """The process-wide :class:`PavingStore` for ``path`` (one per path)."""
    if isinstance(path, PavingStore):
        return path
    canonical = os.path.abspath(os.fspath(path))
    with _STORES_LOCK:
        store = _STORES.get(canonical)
        if store is None:
            store = PavingStore(canonical)
            _STORES[canonical] = store
        return store


# ----------------------------------------------------------------------
# Solve artifacts: record + warm-start planning
# ----------------------------------------------------------------------


def record_solve(
    store: PavingStore,
    fp: Fingerprint,
    box: Box,
    *,
    delta: float,
    contract_tol: float,
    min_width: float,
    max_boxes: int,
    result,
    recorder: CoverRecorder | None,
) -> None:
    """Persist a completed solve (UNSAT cover / DELTA_SAT witness).

    ``UNKNOWN`` results are never stored: a budget-starved verdict
    certifies nothing a re-solve could reuse.
    """
    from .icp import Status  # local: avoid import cycle

    if result.status is Status.UNKNOWN:
        return
    names = tuple(box.names)
    box_lo, box_hi = _box_bounds(box, names)
    processed = int(result.stats.boxes_processed)
    payload: dict = {
        "version": ARTIFACT_VERSION,
        "kind": "solve",
        "skeleton": fp.skeleton,
        "constants": list(fp.constants),
        "names": list(names),
        "box_lo": box_lo,
        "box_hi": box_hi,
        "delta": float(delta),
        "contract_tol": float(contract_tol),
        "min_width": float(min_width),
        "processed": processed,
        "budget_bound": processed >= int(max_boxes),
        "status": result.status.value,
        "witness": None,
        "cover": None,
    }
    if result.witness_box is not None:
        w_lo, w_hi = _box_bounds(result.witness_box, names)
        payload["witness"] = {"lo": w_lo, "hi": w_hi}
    if result.status is Status.UNSAT and recorder is not None:
        arrays = recorder.arrays()
        if arrays is not None:
            payload["cover"] = _pack_rows(*arrays)
    identity = [
        list(fp.constants), box_lo, box_hi,
        float(delta), float(contract_tol), float(min_width),
    ]
    store.put("solve", fp.skeleton, names, identity, payload)


def _judge_all_false(phi: Formula, names, lo: np.ndarray, hi: np.ndarray,
                     delta: float) -> bool:
    """One chunked vectorized judge pass: every row certainly false?"""
    if lo.shape[0] == 0:
        return True
    compiled = compile_formula(phi)
    for start in range(0, lo.shape[0], _JUDGE_CHUNK):
        chunk = BoxArray(names, lo[start:start + _JUDGE_CHUNK],
                         hi[start:start + _JUDGE_CHUNK])
        if not (compiled.judge(chunk, delta) == CERTAIN_FALSE).all():
            return False
    return True


def try_warm_solve(
    store: PavingStore,
    phi: Formula,
    fp: Fingerprint,
    box: Box,
    *,
    delta: float,
    contract_tol: float,
    min_width: float,
    max_boxes: int,
):
    """Plan a warm-started solve; ``None`` means fall back cold.

    Applies the reuse rules documented in the module docstring, in
    priority order (exact > delta-tightened > cover-rejudge >
    witness-recheck).  Counts a ``hit`` / ``partial`` / ``miss`` on the
    store either way.
    """
    from .icp import Result, SolverStats, Status  # local: avoid import cycle

    names = tuple(box.names)
    box_lo, box_hi = _box_bounds(box, names)
    candidates = [
        a for a in store.candidates("solve", fp.skeleton, names)
        if not a.get("budget_bound")
        and a.get("status") in (Status.UNSAT.value, Status.DELTA_SAT.value)
    ]
    constants = list(fp.constants)

    def finish(status, witness_box, outcome: str) -> Result:
        store.count(outcome)
        return Result(status, witness_box, delta, SolverStats())

    # Rule 1: exact configuration -- the stored verdict, verbatim.
    for art in candidates:
        if (
            art["constants"] == constants
            and art["box_lo"] == box_lo and art["box_hi"] == box_hi
            and art["delta"] == delta
            and art["contract_tol"] == contract_tol
            and art["min_width"] == min_width
            and max_boxes >= art["processed"]
        ):
            witness = None
            if art["witness"] is not None:
                witness = _rebox_bounds(names, art["witness"]["lo"],
                                        art["witness"]["hi"])
            return finish(Status(art["status"]), witness, "hit")

    # Rule 2: delta/min_width tightened, stored UNSAT -- pruning judges
    # at delta 0 (delta-independent) and tighter-delta certification
    # implies looser-delta certification, so the cold tree replays
    # identically: UNSAT with zero search work.
    for art in candidates:
        if (
            art["status"] == Status.UNSAT.value
            and art["constants"] == constants
            and art["box_lo"] == box_lo and art["box_hi"] == box_hi
            and art["contract_tol"] == contract_tol
            and delta <= art["delta"]
            and min_width <= art["min_width"]
            and max_boxes >= art["processed"]
        ):
            return finish(Status.UNSAT, None, "partial")

    # Rule 3: stored UNSAT cover, new box inside the stored box --
    # re-judge the cover under the NEW tape (perturbed constants /
    # changed delta / changed tolerance all allowed).  All certainly
    # false at the new delta => no delta-solutions anywhere => UNSAT.
    for art in candidates:
        if art["status"] != Status.UNSAT.value or art["cover"] is None:
            continue
        if not _bounds_within(box_lo, box_hi, art["box_lo"], art["box_hi"]):
            continue
        try:
            cover_lo, cover_hi = _unpack_rows(art["cover"], len(names))
        except (ValueError, KeyError, TypeError):
            continue
        if _judge_all_false(phi, names, cover_lo, cover_hi, delta):
            return finish(Status.UNSAT, None, "partial")

    # Rule 4: stored DELTA_SAT witness inside the new box, certainly
    # true at delta 0 under the NEW tape -- real solutions exist, UNSAT
    # is impossible, and the witness satisfies the new delta-weakening.
    for art in candidates:
        if art["status"] != Status.DELTA_SAT.value or art["witness"] is None:
            continue
        w_lo, w_hi = art["witness"]["lo"], art["witness"]["hi"]
        if not _bounds_within(w_lo, w_hi, box_lo, box_hi):
            continue
        chunk = BoxArray(names, np.array([w_lo], dtype=float),
                         np.array([w_hi], dtype=float))
        if (compile_formula(phi).judge(chunk, 0.0) == CERTAIN_TRUE).all():
            witness = _rebox_bounds(names, w_lo, w_hi)
            return finish(Status.DELTA_SAT, witness, "partial")

    store.count("miss")
    return None


def _bounds_within(lo, hi, outer_lo, outer_hi) -> bool:
    return all(float(a) >= float(oa) for a, oa in zip(lo, outer_lo)) and all(
        float(b) <= float(ob) for b, ob in zip(hi, outer_hi)
    )


def _rebox_bounds(names: tuple[str, ...], lo, hi) -> Box:
    return Box({k: Interval(float(a), float(b))
                for k, a, b in zip(names, lo, hi)})


# ----------------------------------------------------------------------
# Pave artifacts: record + warm-start planning
# ----------------------------------------------------------------------


def record_pave(
    store: PavingStore,
    fp: Fingerprint,
    box: Box,
    *,
    delta: float,
    contract_tol: float,
    min_width: float,
    max_boxes: int,
    sat: list[Box],
    unsat: list[Box],
    undecided: list[Box],
    processed: int,
    truncated: bool,
) -> None:
    """Persist one completed paving (its three classified leaf lists)."""
    names = tuple(box.names)
    box_lo, box_hi = _box_bounds(box, names)
    payload = {
        "version": ARTIFACT_VERSION,
        "kind": "pave",
        "skeleton": fp.skeleton,
        "constants": list(fp.constants),
        "names": list(names),
        "box_lo": box_lo,
        "box_hi": box_hi,
        "delta": float(delta),
        "contract_tol": float(contract_tol),
        "min_width": float(min_width),
        "processed": int(processed),
        "budget_bound": bool(truncated) or int(processed) >= int(max_boxes),
        "sat": _pack_boxes(sat, names),
        "unsat": _pack_boxes(unsat, names),
        "undecided": _pack_boxes(undecided, names),
    }
    identity = [
        list(fp.constants), box_lo, box_hi,
        float(delta), float(contract_tol), float(min_width),
    ]
    store.put("pave", fp.skeleton, names, identity, payload)


@dataclass
class PaveResume:
    """A planned warm paving.

    ``seeds`` empty means the stored partition carries over whole (a
    full hit); otherwise the kept lists are final and ``seeds`` must be
    run through the normal frontier loop (they are the split children
    of stored leaves whose classification could flip under the new
    delta / min_width).
    """

    sat: list[Box]
    unsat: list[Box]
    undecided: list[Box]
    seeds: list[Box]
    outcome: str  # "hit" | "partial"


def try_warm_pave(
    store: PavingStore,
    phi: Formula,
    fp: Fingerprint,
    box: Box,
    *,
    delta: float,
    contract_tol: float,
    min_width: float,
    max_boxes: int,
) -> PaveResume | None:
    """Plan a warm paving; ``None`` means fall back cold.

    Reusable deltas: exact config (full hit), or delta and/or
    ``min_width`` tightened with everything else identical (resume).
    Unsat leaves are judge-at-0 / contraction facts and carry over
    verbatim; stored sat leaves are re-judged at the new delta and kept,
    demoted to undecided, or split into seeds; stored undecided leaves
    are width-checked against the new ``min_width``.  The stored leaves
    are already post-contraction, so the resume pass performs *no*
    re-contraction -- exactly the classification steps the cold tree
    would replay at those nodes.
    """
    names = tuple(box.names)
    box_lo, box_hi = _box_bounds(box, names)
    constants = list(fp.constants)
    art = None
    for cand in store.candidates("pave", fp.skeleton, names):
        if (
            not cand.get("budget_bound")
            and cand["constants"] == constants
            and cand["box_lo"] == box_lo and cand["box_hi"] == box_hi
            and cand["contract_tol"] == contract_tol
            and delta <= cand["delta"]
            and min_width <= cand["min_width"]
            and max_boxes >= cand["processed"]
        ):
            art = cand
            break
    if art is None:
        store.count("miss")
        return None

    try:
        sat = _unpack_boxes(art["sat"], names)
        unsat = _unpack_boxes(art["unsat"], names)
        undecided = _unpack_boxes(art["undecided"], names)
    except (ValueError, KeyError, TypeError):
        store.count("miss")
        return None

    if art["delta"] == delta and art["min_width"] == min_width:
        store.count("hit")
        return PaveResume(sat, unsat, undecided, [], "hit")

    keep_sat: list[Box] = []
    keep_und: list[Box] = []
    seeds: list[Box] = []

    # Stored sat leaves: still certified at the tighter delta?  (Their
    # judge-at-0 value cannot be FALSE -- the recording run checked.)
    if sat:
        batch = BoxArray.from_boxes(sat, names)
        still = compile_formula(phi).judge(batch, delta) == CERTAIN_TRUE
        for keep, b in zip(still, sat):
            if keep:
                keep_sat.append(b)
            elif b.max_width() <= min_width:
                keep_und.append(b)
            else:
                seeds.extend(b.split())

    # Stored undecided leaves: certification at a tighter delta is
    # impossible (they failed at the looser one), so only the width
    # check can change.
    if min_width == art["min_width"]:
        keep_und.extend(undecided)
    else:
        for b in undecided:
            if b.max_width() <= min_width:
                keep_und.append(b)
            else:
                seeds.extend(b.split())

    store.count("hit" if not seeds else "partial")
    return PaveResume(
        keep_sat, unsat, keep_und, seeds, "hit" if not seeds else "partial"
    )
