"""Developer tooling: golden-corpus generation and conformance digests."""
