"""Golden-verdict conformance corpus: digests guarding every solver path.

The corpus (``tests/golden/``) pins, for every catalog scenario at its
fixed seed, the verdict the framework must produce -- and it must
produce the *same* verdict through every execution path of the
delta-decision machinery:

``serial``
    the legacy scalar ICP loop (``frontier_size=1``),
``vectorized``
    the batched frontier loop (the scenario's own solver defaults),
``sharded``
    the work-stealing parallel driver (``shards=2``).

A snapshot stores the mode-invariant *projection* of the report (task,
name, status, rounded metrics, witness variable names) plus its SHA-256
digest.  Mode-dependent fields (wall time, boxes processed, exact
witness coordinates -- the scalar and batched searches may certify
different boxes of equal validity) are deliberately excluded, so a
digest mismatch always means a real verdict regression.

Alongside the scenario snapshots, ``paving-*.json`` entries pin the
**byte-exact** paving digests of dedicated synthesis problems: for
pavings the serial, vectorized and sharded kernels classify the very
same sub-boxes bound-for-bound, and the corpus proves it stays that
way.

Regenerate with ``python -m repro.tools.regen_golden`` after an
intentional behavior change; CI fails on stale snapshots.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import replace as _dataclass_replace
from pathlib import Path
from typing import Any, Mapping

__all__ = [
    "MODES",
    "PAVING_PROBLEMS",
    "PROMOTED_SCENARIOS",
    "golden_dir",
    "golden_scenario_names",
    "project_report",
    "projection_digest",
    "scenario_projection",
    "paving_digest",
]

#: Solver-option overrides selecting each conformance execution path.
#: ``None`` keeps the scenario's own default for that field.
MODES: dict[str, dict[str, Any]] = {
    "serial": {"frontier_size": 1, "shards": 1},
    "vectorized": {"shards": 1},
    "sharded": {"shards": 2, "shard_backend": "thread"},
}


#: Corpus discoveries promoted into the golden set: ingested/generated
#: entries whose verdicts sit close to the machinery's edges and are
#: cheap enough to pin on every solver path alongside the hand-written
#: core.  Highlights: ``fk-s2020-03-dome`` is a perturbed Fenton-Karma
#: barrier whose 10% jitter *flips* the paper's structural ``falsified``
#: verdict to ``delta-sat`` (a near-delta-boundary disagreement
#: candidate), and the ``unknown`` entries pin budget-bound paving
#: exhaustion identically across paths.
PROMOTED_SCENARIOS: tuple[str, ...] = (
    "ma-s2020-00-drain",      # cycle network, budget-bound unknown
    "ma-s2020-02-drain",      # cycle network, delta-sat ascent witness
    "ma-s2020-05-drain",      # chain network, head provably drains
    "sbml-net00-rise",        # ingested SBML, unknown at corpus budget
    "sbml-enzyme00-settle",   # boundary-species MM import, falsified
    "fk-s2020-03-dome",       # perturbation flips the FK dome verdict
    "sw-s2020-01-safe",       # generated hybrid robustness, validated
    "ias-s2020-00-burden",    # perturbed IAS cohort SMC, estimated
)


def golden_scenario_names() -> list[str]:
    """The golden-pinned scenario set: hand-written core + promoted.

    The full corpus is conformance-checked by
    ``tests/test_corpus_conformance.py``; the golden snapshots pin the
    core catalog plus :data:`PROMOTED_SCENARIOS` byte-for-byte.
    """
    from repro.scenarios import core_scenario_names, scenario_names

    names = set(core_scenario_names())
    registered = set(scenario_names())
    names.update(p for p in PROMOTED_SCENARIOS if p in registered)
    return sorted(names)


def golden_dir(start: Path | None = None) -> Path:
    """The ``tests/golden`` directory of the repository checkout."""
    here = Path(start or __file__).resolve()
    for parent in here.parents:
        candidate = parent / "tests" / "golden"
        if (parent / "pyproject.toml").exists():
            return candidate
    raise FileNotFoundError("cannot locate the repository root (pyproject.toml)")


# ----------------------------------------------------------------------
# Report projection
# ----------------------------------------------------------------------


def project_report(report) -> dict[str, Any]:
    """The mode-invariant projection of an :class:`AnalysisReport`.

    Everything here must agree across the serial, vectorized and
    sharded solver paths; volatile fields (timings, box counts, exact
    witness coordinates) are excluded by construction.
    """
    return {
        "task": report.task,
        "name": report.name,
        "status": report.status.value,
        "witness_vars": (
            None if report.witness is None else sorted(report.witness)
        ),
        "metrics": {
            k: round(float(v), 9) for k, v in sorted(report.metrics.items())
        },
    }


def projection_digest(projection: Mapping[str, Any]) -> str:
    """Canonical SHA-256 of a projection (sorted keys, no whitespace)."""
    blob = json.dumps(projection, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def _mode_spec(spec, mode: str, overrides: Mapping[str, Any] | None = None):
    merged = dict(MODES[mode])
    if overrides:
        merged.update(overrides)
    return spec.replace(solver=_dataclass_replace(spec.solver, **merged))


def scenario_projection(
    name: str, mode: str, overrides: Mapping[str, Any] | None = None
) -> dict[str, Any]:
    """Run one catalog scenario through one solver path and project it.

    ``overrides`` layers extra solver-option replacements on top of the
    mode's own -- the cluster conformance tests use it to swap
    ``shard_backend`` for a live
    :class:`~repro.cluster.backend.ClusterBackend` while keeping every
    other knob identical to the golden ``sharded`` path.
    """
    from repro.api import Engine
    from repro.scenarios import get_scenario

    spec = _mode_spec(get_scenario(name).spec(), mode, overrides)
    with Engine(seed=0) as engine:
        return project_report(engine.run(spec))


# ----------------------------------------------------------------------
# Byte-exact paving conformance
# ----------------------------------------------------------------------


def _annulus():
    from repro.expr import sin, variables
    from repro.intervals import Box
    from repro.logic import And, in_range

    x, y = variables("x y")
    phi = And(
        in_range(x ** 2 + y ** 2 + 0.3 * sin(3 * x) * sin(3 * y), 0.55, 0.95),
        in_range(x * y, -0.2, 0.6),
    )
    return phi, Box.from_bounds({"x": (-1.5, 1.5), "y": (-1.5, 1.5)})


def _cubic_band():
    from repro.expr import var
    from repro.intervals import Box
    from repro.logic import in_range

    x = var("x")
    phi = in_range(x * x * x - x, -0.1, 0.1)
    return phi, Box.from_bounds({"x": (-2.0, 2.0)})


def _bilinear_wedge():
    from repro.expr import variables
    from repro.intervals import Box
    from repro.logic import And

    x, y = variables("x y")
    phi = And(x * y - 0.25 >= 0, x + y <= 1.6)
    return phi, Box.from_bounds({"x": (0.0, 2.0), "y": (0.0, 2.0)})


#: name -> (problem factory, min_width): the dedicated paving workloads
#: whose partitions must be byte-identical across every solver path.
PAVING_PROBLEMS = {
    "annulus": (_annulus, 0.05),
    "cubic-band": (_cubic_band, 0.01),
    "bilinear-wedge": (_bilinear_wedge, 0.05),
}


def paving_digest(
    problem: str, mode: str, overrides: Mapping[str, Any] | None = None
) -> dict[str, Any]:
    """Pave one conformance problem through one solver path.

    Returns the box counts plus a SHA-256 over the bounds of every
    classified box, in the solver's deterministic lexicographic output
    order.  Bounds are hashed at 10 significant digits: the scalar and
    vectorized fixpoint loops agree bound-for-bound only up to
    single-ulp contraction differences (see
    ``benchmarks/icp_throughput.py``), and the digest must pin the
    partition, not that noise.  ``overrides`` layers extra solver
    attributes on top of the mode's (the cluster conformance tests pass
    a live ``shard_backend`` here).
    """
    from repro.solver import DeltaSolver

    factory, min_width = PAVING_PROBLEMS[problem]
    phi, box = factory()
    solver = DeltaSolver(delta=1e-3, max_boxes=1_000_000)
    merged = dict(MODES[mode])
    if overrides:
        merged.update(overrides)
    for k, v in merged.items():
        setattr(solver, k, v)
    sat, unsat, undecided = solver.pave(phi, box, min_width=min_width)
    h = hashlib.sha256()
    for part in (sat, unsat, undecided):
        h.update(b"|")
        for b in part:
            for name in b.names:
                iv = b[name]
                # + 0.0 canonicalizes the sign of IEEE negative zeros,
                # which differ between the scalar and vectorized kernels
                h.update(f"{name}:{iv.lo + 0.0:.10g}:{iv.hi + 0.0:.10g};".encode())
    return {
        "counts": [len(sat), len(unsat), len(undecided)],
        "digest": h.hexdigest(),
    }
