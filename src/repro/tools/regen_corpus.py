"""Regenerate the committed scenario corpus (``data/corpus.json``).

Usage::

    python -m repro.tools.regen_corpus [--seed N] [--skip-triage]

Four deterministic steps:

1. rewrite the SBML file corpus (``src/repro/scenarios/data/sbml/``)
   via :func:`repro.scenarios.generate.write_sbml_corpus`;
2. bulk-ingest it with :func:`repro.scenarios.ingest.ingest_dir` — the
   run **fails** if any committed file is skipped, because the shipped
   corpus must ingest cleanly;
3. generate every procedural family at its default size;
4. triage each entry's expected verdict with a budget-bound solve and
   write the combined, name-sorted JSON array.

Rerun after changing the generators, the ingestion templates or solver
behavior that shifts verdicts, then commit the diff (and rerun
``python -m repro.tools.regen_golden`` for the promoted entries).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path


def main(argv: list[str] | None = None) -> int:
    """Regenerate SBML files + corpus JSON; nonzero exit on skips."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seed", type=int, default=None,
                        help="corpus seed (default: generate.DEFAULT_SEED)")
    parser.add_argument("--out", default=None,
                        help="output JSON path (default: data/corpus.json)")
    parser.add_argument("--skip-triage", action="store_true",
                        help="leave expected verdicts unset (fast dry run)")
    args = parser.parse_args(argv)

    from repro.scenarios.corpus import CORPUS_FILE, SBML_DIR
    from repro.scenarios.generate import (
        DEFAULT_SEED, generate_corpus, write_sbml_corpus,
    )
    from repro.scenarios.ingest import entries_json, ingest_dir, triage

    seed = DEFAULT_SEED if args.seed is None else args.seed
    out = Path(args.out) if args.out else CORPUS_FILE

    files = write_sbml_corpus(SBML_DIR, seed=seed)
    print(f"wrote {len(files)} SBML files to {SBML_DIR}")

    result = ingest_dir(SBML_DIR)
    print(f"ingested: {result.summary()}")
    if result.skipped:
        for name, reason in result.skipped:
            print(f"SKIP {name}: {reason}", file=sys.stderr)
        print("committed corpus files must ingest cleanly", file=sys.stderr)
        return 1

    generated = generate_corpus(seed=seed)
    print(f"generated: {len(generated)} entries across families")

    entries = sorted(result.entries + generated, key=lambda s: s.name)
    names = [s.name for s in entries]
    if len(set(names)) != len(names):
        dupes = sorted({n for n in names if names.count(n) > 1})
        print(f"duplicate corpus names: {dupes}", file=sys.stderr)
        return 1

    if not args.skip_triage:
        t0 = time.time()
        done = [0]

        def progress(name: str, status: str) -> None:
            done[0] += 1
            if done[0] % 20 == 0 or done[0] == len(entries):
                print(f"  triaged {done[0]}/{len(entries)} "
                      f"({time.time() - t0:.1f}s) last: {name} -> {status}")

        entries = triage(entries, progress=progress)
        verdicts: dict[str, int] = {}
        for s in entries:
            verdicts[s.expected] = verdicts.get(s.expected, 0) + 1
        print("verdicts:", json.dumps(dict(sorted(verdicts.items()))))

    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(entries_json(entries), encoding="utf-8")
    print(f"wrote {len(entries)} corpus entries to {out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
