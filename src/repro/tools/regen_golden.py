"""Regenerate the golden-verdict conformance corpus (``tests/golden/``).

Usage::

    python -m repro.tools.regen_golden [--out DIR]

For every golden-set scenario (the hand-written core catalog plus the
promoted corpus discoveries in ``PROMOTED_SCENARIOS``) the three solver
paths (serial, vectorized, sharded) are executed and their report
projections compared; the run
**fails** if any path disagrees, so a snapshot is only ever written for
a verdict the whole stack reproduces.  The dedicated paving problems
are digested the same way (their digests must be byte-identical across
paths).  CI and ``tests/test_golden_corpus.py`` fail on stale
snapshots; rerun this tool after an intentional behavior change and
commit the diff.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from .golden import (
    MODES,
    PAVING_PROBLEMS,
    golden_dir,
    paving_digest,
    projection_digest,
    scenario_projection,
)


def _write(path: Path, payload: dict) -> None:
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")


def main(argv: list[str] | None = None) -> int:
    """Regenerate every snapshot; nonzero exit on cross-path divergence."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--out", default=None, help="output directory (default: tests/golden)"
    )
    args = parser.parse_args(argv)

    from .golden import golden_scenario_names

    names = golden_scenario_names()
    out = Path(args.out) if args.out else golden_dir()
    out.mkdir(parents=True, exist_ok=True)
    failures = 0

    for name in names:
        projections = {m: scenario_projection(name, m) for m in MODES}
        reference = projections["vectorized"]
        diverged = {m: p for m, p in projections.items() if p != reference}
        if diverged:
            failures += 1
            print(f"FAIL {name}: solver paths disagree", file=sys.stderr)
            for m, p in projections.items():
                print(f"  {m}: {json.dumps(p, sort_keys=True)}", file=sys.stderr)
            continue
        _write(out / f"{name}.json", {
            "scenario": name,
            "status": reference["status"],
            "projection": reference,
            "digest": projection_digest(reference),
        })
        print(f"ok   {name}: {reference['status']}")

    for problem in PAVING_PROBLEMS:
        digests = {m: paving_digest(problem, m) for m in MODES}
        reference = digests["vectorized"]
        if any(d != reference for d in digests.values()):
            failures += 1
            print(f"FAIL paving-{problem}: paths disagree: {digests}",
                  file=sys.stderr)
            continue
        _write(out / f"paving-{problem}.json", {
            "problem": problem, **reference,
        })
        print(f"ok   paving-{problem}: {reference['counts']}")

    if failures:
        print(f"{failures} divergence(s); no snapshot written for them",
              file=sys.stderr)
        return 1
    print(f"wrote {len(names) + len(PAVING_PROBLEMS)} snapshot(s) to {out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
